// Link sleeping: run the Hypnos baseline over the synthetic Tier-2 ISP
// and account for the savings the way §8 does — showing why the refined
// power model predicts far smaller savings than the literature's naive
// estimate.
package main

import (
	"fmt"
	"log"
	"time"

	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
)

func main() {
	fmt.Println("Building the 107-router synthetic ISP...")
	network, err := ispnet.Build(ispnet.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	topo, traffic, err := hypnos.FromNetwork(network)
	if err != nil {
		log.Fatal(err)
	}
	ifaceShare, trxShare := hypnos.ExternalShare(network)
	fmt.Printf("Backbone: %d internal links; %.0f%% of interfaces are external\n",
		len(topo.Links), ifaceShare*100)
	fmt.Printf("(external links hold %.0f%% of transceiver power and cannot sleep)\n\n",
		trxShare*100)

	fmt.Println("Running Hypnos over one week (hourly steps)...")
	sched, err := hypnos.Run(topo, traffic, hypnos.Options{
		Start:  network.Config.Start,
		Window: 7 * 24 * time.Hour,
		Step:   time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := hypnos.Evaluate(sched)
	fmt.Printf("Sleeping on average %.0f links (%.0f%% of the backbone)\n\n",
		s.MeanSleepingLinks, s.SleepableFraction*100)
	fmt.Printf("%-42s %8.0f W\n", "Naive estimate (full Pport+Ptrx, both ends):", s.Naive.Watts())
	fmt.Printf("%-42s %8.0f W\n", "Refined lower bound (Ptrx,up = 0):", s.RefinedLow.Watts())
	fmt.Printf("%-42s %8.0f W\n", "Refined upper bound (Ptrx,up = Ptrx):", s.RefinedHigh.Watts())
	fmt.Printf("%-42s %8.0f W\n", "Table 5 point estimate:", s.Table5.Watts())
	fmt.Println("\nBecause transceivers keep drawing Ptrx,in while plugged (§7), the")
	fmt.Println("real savings sit near the lower bound — link sleeping yields less")
	fmt.Println("than the literature anticipated (§8).")
}
