// Fleet monitor: the full measurement pipeline over real sockets on one
// machine — simulated routers expose SNMP agents (UDP), a poller collects
// their PSU power and counters, and an Autopower unit meters one router
// externally (TCP), reproducing the paper's three data sources side by
// side.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fantasticjoules/internal/autopower"
	"fantasticjoules/internal/device"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/snmp"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

func main() {
	g := units.GigabitPerSecond

	// --- Three simulated routers with live traffic ---
	fleetModels := []string{"8201-32FH", "NCS-55A1-24H", "Nexus9336-FX2"}
	var routers []*device.Router
	var agents []*snmp.Agent
	var addrs []string
	for i, name := range fleetModels {
		spec, err := device.Spec(name)
		if err != nil {
			log.Fatal(err)
		}
		r, err := device.New(spec, fmt.Sprintf("mon-rtr-%d", i+1), int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		trx := model.PassiveDAC
		if spec.PortType == model.QSFP28 && name == "Nexus9336-FX2" {
			trx = model.LR
		}
		ifNames := r.InterfaceNames()[:4]
		handles := make([]device.Handle, len(ifNames))
		for i, ifName := range ifNames {
			must(r.PlugTransceiver(ifName, trx, 100*g))
			must(r.SetAdmin(ifName, true))
			must(r.SetLink(ifName, true))
			h, err := r.Handle(ifName)
			must(err)
			handles[i] = h
		}
		pkts := units.PacketRateFor(5*g, trafficgen.IMIXMeanSize(), trafficgen.EthernetOverhead)
		step := r.BeginStep()
		for _, h := range handles {
			must(step.SetTraffic(h, 5*g, pkts))
		}
		step.End()
		routers = append(routers, r)

		var mib snmp.MIB
		snmp.BindRouter(&mib, r)
		agent := snmp.NewAgent(&mib, "public")
		addr, err := agent.Start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		agents = append(agents, agent)
		addrs = append(addrs, addr)
		fmt.Printf("agent for %-14s on %s\n", name, addr)
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()

	// --- Autopower server + one unit metering the first router ---
	srv := autopower.NewServer()
	apAddr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	mtr := meter.New(99)
	must(mtr.Attach(0, routers[0]))
	unit, err := autopower.NewUnit(autopower.UnitConfig{
		UnitID: "unit-1", Router: routers[0].Name(), ServerAddr: apAddr,
		Meter: mtr, SampleInterval: 100 * time.Millisecond, UploadEvery: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
	defer cancel()
	go func() { _ = unit.Run(ctx) }()
	fmt.Printf("autopower unit metering %s via %s\n\n", routers[0].Name(), apAddr)

	// --- Poll each agent over UDP (two rounds, 1 s apart) ---
	for round := 1; round <= 2; round++ {
		for _, r := range routers {
			r.Advance(time.Second)
		}
		fmt.Printf("poll round %d:\n", round)
		for i, addr := range addrs {
			c, err := snmp.Dial(addr, snmp.ClientOptions{Community: "public"})
			if err != nil {
				log.Fatal(err)
			}
			name, _ := c.Get(snmp.OIDSysName)
			psuRows, err := c.Walk(snmp.OIDPSUPower)
			if err != nil {
				log.Fatal(err)
			}
			var psuTotal uint64
			for _, vb := range psuRows {
				psuTotal += vb.Value.Uint
			}
			octets, err := c.Walk(snmp.OIDIfHCInOctets)
			if err != nil {
				log.Fatal(err)
			}
			var inOctets uint64
			for _, vb := range octets {
				inOctets += vb.Value.Uint
			}
			fmt.Printf("  %-12s psu-reported %4d W | in-octets %d | true wall %6.1f W\n",
				string(name[0].Value.Bytes), psuTotal, inOctets, routers[i].WallPower().Watts())
			c.Close()
		}
		time.Sleep(time.Second)
	}

	// --- Compare the external measurement with the PSU reports ---
	<-ctx.Done()
	series, err := srv.Series("unit-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nautopower collected %d samples for %s, median %.1f W\n",
		series.Len(), routers[0].Name(), series.Median())
	fmt.Println("(the 8201's PSU reports sit a constant ≈17 W above this — Fig. 4a)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
