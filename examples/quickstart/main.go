// Quickstart: load a published router power model, describe a deployment
// configuration, and predict its power draw with a full term breakdown —
// the core §4 workflow in a dozen lines.
package main

import (
	"fmt"
	"log"

	fantasticjoules "fantasticjoules"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

func main() {
	// The paper's published model for the Cisco 8201-32FH (Table 2c).
	m, err := fantasticjoules.PublishedModel("8201-32FH")
	if err != nil {
		log.Fatal(err)
	}
	g := units.GigabitPerSecond
	dac := model.ProfileKey{Port: model.QSFP, Transceiver: model.PassiveDAC, Speed: 100 * g}

	// A small deployment: two loaded interfaces, one idle-but-up, and one
	// transceiver left plugged into a downed port (the §7 spare).
	cfg := model.Config{Interfaces: []model.Interface{
		{
			Name: "eth0", Profile: dac,
			TransceiverPresent: true, AdminUp: true, OperUp: true,
			Bits:    60 * g,
			Packets: units.PacketRateFor(60*g, units.ByteSize(1500), trafficgen.EthernetOverhead),
		},
		{
			Name: "eth1", Profile: dac,
			TransceiverPresent: true, AdminUp: true, OperUp: true,
			Bits:    15 * g,
			Packets: units.PacketRateFor(15*g, units.ByteSize(353), trafficgen.EthernetOverhead),
		},
		{
			Name: "eth2", Profile: dac,
			TransceiverPresent: true, AdminUp: true, OperUp: true,
		},
		{
			Name: "eth3", Profile: dac,
			TransceiverPresent: true, // plugged spare: pays Ptrx,in anyway
		},
	}}

	b, err := m.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Predicted power for a 8201-32FH with this configuration:\n  %s\n\n", b)
	fmt.Printf("Static share:  %s\n", b.Static())
	fmt.Printf("Dynamic share: %s — traffic barely moves router power (§7)\n\n", b.Dynamic())

	// What would taking eth1 down save? Not the full interface power:
	// the transceiver keeps drawing Ptrx,in while plugged (§7/§8).
	savings, err := m.InterfaceSavings(dac)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sleeping one %s interface saves %s (Pport + Ptrx,up),\n", dac, savings)
	fmt.Println("not the full interface power — \"down\" does not mean \"off\".")
}
