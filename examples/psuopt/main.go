// PSU optimization: take the fleet's one-time PSU sensor export and
// estimate the §9 savings vectors — more efficient supplies, right-sized
// capacities, and single-PSU operation.
package main

import (
	"fmt"
	"log"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/psu"
)

func main() {
	fmt.Println("Simulating one day of the synthetic ISP to collect PSU snapshots...")
	ds, err := ispnet.Simulate(ispnet.Config{
		Seed:          42,
		Duration:      24 * time.Hour,
		SNMPStep:      time.Hour,
		AutopowerStep: 30 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fleet := ds.PSUSnapshots
	total := psu.FleetInputPower(fleet)
	fmt.Printf("Fleet: %d routers, %.1f kW total input power\n\n", len(fleet), total.Kilowatts())

	// Where do the PSUs sit on their efficiency curves today?
	var worst, best psu.Snapshot
	worstEff, bestEff := 1.0, 0.0
	for _, r := range fleet {
		for _, s := range r.PSUs {
			if s.Pin <= 0 {
				continue
			}
			if e := s.Efficiency(); e < worstEff {
				worstEff, worst = e, s
			} else if e > bestEff {
				bestEff, best = e, s
			}
		}
	}
	fmt.Printf("Efficiency spread: %.0f%% (at %.0f%% load) … %.0f%% (at %.0f%% load)\n\n",
		worstEff*100, worst.Load()*100, bestEff*100, best.Load()*100)

	fmt.Println("§9.3.2 — raise every PSU to an 80 Plus level:")
	for _, r := range psu.Ratings() {
		fmt.Printf("  %-9s %s\n", r, psu.SavingsAtStandard(fleet, r))
	}
	fmt.Printf("\n§9.3.4 — load only one PSU per router: %s\n", psu.SavingsSinglePSU(fleet))
	fmt.Println("\n§9.3.5 — both measures combined:")
	for _, r := range psu.Ratings() {
		fmt.Printf("  %-9s %s\n", r, psu.SavingsCombined(fleet, r))
	}

	fmt.Println("\n§9.3.3 — right-size the PSU capacity (k=2 keeps failover headroom):")
	for _, k := range []float64{1, 2} {
		fmt.Printf("  k=%.0f:", k)
		for _, c := range psu.CapacityOptions() {
			sv, err := psu.SavingsResize(fleet, k, c, psu.CapacityOptions())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %4.0fW→%s", c.Watts(), sv)
		}
		fmt.Println()
	}
	fmt.Println("\nOver-dimensioning costs less than poor efficiency — but both are")
	fmt.Println("on the table, and neither touches the routing state (§9.4).")
}
