// Linecards: the §4.3 future-work extension in action — derive a
// Plinecard term for a modular chassis exactly the way transceiver terms
// are derived, then predict a mixed-card configuration.
package main

import (
	"fmt"
	"log"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/labbench"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
)

func main() {
	spec, err := device.Spec("ASR-9910")
	if err != nil {
		log.Fatal(err)
	}
	dut, err := device.New(spec, "lab-chassis", 1)
	if err != nil {
		log.Fatal(err)
	}
	m := meter.New(2)
	if err := m.Attach(0, dut); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Deriving linecard power for the %s (%d slots)...\n", spec.Name, spec.Slots)
	res, err := labbench.DeriveLinecards(dut, m, labbench.LinecardConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  empty chassis: %.0f W\n", res.PBase.Watts())
	for name, p := range res.PLinecard {
		fmt.Printf("  %-13s %.0f W per card (fit %s)\n", name, p.Watts(), res.Fits[name])
	}

	// Extend a power model and predict a realistic line-up.
	pm := model.New(spec.Name, res.PBase)
	res.ExtendModel(pm)
	cfg := model.Config{Linecards: map[string]int{
		"A99-48X10GE": 4,
		"A99-8X100GE": 2,
	}}
	pred, err := pm.PredictPower(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPredicted power with 4× A99-48X10GE + 2× A99-8X100GE: %.0f W\n", pred.Watts())

	// Compare against the chassis itself.
	for card, n := range cfg.Linecards {
		for i := 0; i < n; i++ {
			if err := dut.InstallLinecard(card); err != nil {
				log.Fatal(err)
			}
		}
	}
	var truth float64
	for i := 0; i < 30; i++ {
		truth += dut.WallPower().Watts()
	}
	truth /= 30
	fmt.Printf("True wall power of that configuration:                 %.0f W\n", truth)
	fmt.Println("\nThe paper's sketch holds: Plinecard derives just like Ptrx (§4.3).")
}
