// Model derivation: run the complete §5 lab methodology (NetPowerBench)
// against a simulated DUT — the Base/Idle/Port/Trx/Snake experiments and
// their regressions — and compare the recovered parameters against the
// paper's published model for the same hardware.
package main

import (
	"fmt"
	"log"

	fantasticjoules "fantasticjoules"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

func main() {
	const router = "NCS-55A1-24H"
	g := units.GigabitPerSecond

	fmt.Printf("Deriving a power model for %s (Passive DAC @ 100G)...\n", router)
	fmt.Println("  experiments: Base → Idle → Port sweep → Trx sweep → Snake sweeps")
	res, err := fantasticjoules.DeriveModel(router, model.PassiveDAC, 100*g, 1)
	if err != nil {
		log.Fatal(err)
	}

	pub, err := fantasticjoules.PublishedModel(router)
	if err != nil {
		log.Fatal(err)
	}
	pubProfile, _ := pub.Profile(res.Profile.Key)

	fmt.Printf("\n%-10s %12s %12s\n", "Term", "Derived", "Published")
	row := func(name string, got, want float64, unit string) {
		fmt.Printf("%-10s %9.2f %s %9.2f %s\n", name, got, unit, want, unit)
	}
	row("Pbase", res.Model.PBase.Watts(), pub.PBase.Watts(), "W ")
	row("Pport", res.Profile.PPort.Watts(), pubProfile.PPort.Watts(), "W ")
	row("Ptrx,in", res.Profile.PTrxIn.Watts(), pubProfile.PTrxIn.Watts(), "W ")
	row("Ptrx,up", res.Profile.PTrxUp.Watts(), pubProfile.PTrxUp.Watts(), "W ")
	row("Ebit", res.Profile.EBit.Picojoules(), pubProfile.EBit.Picojoules(), "pJ")
	row("Epkt", res.Profile.EPkt.Nanojoules(), pubProfile.EPkt.Nanojoules(), "nJ")
	row("Poffset", res.Profile.POffset.Watts(), pubProfile.POffset.Watts(), "W ")

	fmt.Printf("\nRegression quality (weakest R²): %.4f\n", res.Report.FitQuality())
	fmt.Printf("Port sweep: %s\n", res.Report.PortFit)
	fmt.Printf("Energy fit: %s\n", res.Report.EnergyFit)
	fmt.Println("\nThe derivation only ever saw wall-power measurements — the")
	fmt.Println("device's hidden parameters were recovered, not copied.")
}
