// Command joules regenerates the tables and figures of "Fantastic Joules
// and Where to Find Them" from the simulated substrates and prints them in
// the paper's layout.
//
// Usage:
//
//	joules run all            regenerate everything
//	joules run table1         one artifact (fig1, fig2b, table1, table2,
//	                          table3, table4, table5, table6, fig4, fig5,
//	                          fig6, fig8, fig9, section7, section8,
//	                          ablations)
//	joules list               list the artifacts
//	joules -seed 7 run fig4   change the simulation seed
//	joules -workers 1 run all force the serial substrate paths (the
//	                          default fans the fleet simulation and lab
//	                          derivations out over all CPUs; the output
//	                          is identical either way)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"fantasticjoules/internal/experiments"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/zoo"
)

type artifact struct {
	name  string
	about string
	run   func(*experiments.Suite) error
}

func artifacts() []artifact {
	return []artifact{
		{"fig1", "network-wide power and traffic over time", runFig1},
		{"fig2a", "ASIC efficiency trend (redrawn)", runFig2a},
		{"fig2b", "datasheet efficiency trend", runFig2b},
		{"table1", "measured median vs datasheet typical power", runTable1},
		{"table2", "derived power models (four routers)", runTable2},
		{"table6", "additional derived power models", runTable6},
		{"fig4", "PSU vs Autopower vs model predictions", runFig4},
		{"fig9", "offset-corrected model precision", runFig9},
		{"fig5", "PSU efficiency curve and 80 Plus levels", runFig5},
		{"fig6", "fleet PSU efficiency scatter", runFig6},
		{"table3", "savings from better PSUs / one PSU / both", runTable3},
		{"table4", "savings from right-sizing PSU capacity", runTable4},
		{"table5", "per-port-type power constants", runTable5},
		{"fig8", "OS-upgrade fan power bump", runFig8},
		{"section7", "traffic vs transceiver power split", runSection7},
		{"section8", "Hypnos link-sleeping savings", runSection8},
		{"baselines", "lab models vs datasheet-interpolation baseline (§2)", runBaselines},
		{"ablations", "design-choice ablations", runAblations},
	}
}

func main() {
	seed := flag.Int64("seed", 42, "simulation seed (changes the synthetic dataset)")
	workers := flag.Int("workers", 0, "simulation/derivation concurrency: 0 = all CPUs, 1 = serial; the output is identical either way")
	zooDir := flag.String("zoo", "", "export derived models and traces into a Network Power Zoo store at this directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, a := range artifacts() {
			fmt.Printf("  %-9s %s\n", a.name, a.about)
		}
	case "run":
		if len(args) < 2 {
			usage()
			os.Exit(2)
		}
		if err := run(*seed, *workers, *zooDir, args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "joules:", err)
			os.Exit(1)
		}
	case "report":
		if err := writeReport(os.Stdout, newSuite(*seed, *workers), *seed); err != nil {
			fmt.Fprintln(os.Stderr, "joules:", err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: joules [-seed N] [-workers N] [-zoo dir] run <artifact|all> | joules report | joules list`)
}

// newSuite builds a suite with the requested substrate concurrency.
func newSuite(seed int64, workers int) *experiments.Suite {
	suite := experiments.New(seed)
	suite.SetWorkers(workers)
	return suite
}

func run(seed int64, workers int, zooDir string, names []string) error {
	byName := map[string]artifact{}
	var order []string
	for _, a := range artifacts() {
		byName[a.name] = a
		order = append(order, a.name)
	}
	var selected []string
	if len(names) == 1 && names[0] == "all" {
		selected = order
	} else {
		for _, n := range names {
			if _, ok := byName[strings.ToLower(n)]; !ok {
				known := append([]string(nil), order...)
				sort.Strings(known)
				return fmt.Errorf("unknown artifact %q (known: %s, all)", n, strings.Join(known, ", "))
			}
			selected = append(selected, strings.ToLower(n))
		}
	}
	suite := newSuite(seed, workers)
	for _, n := range selected {
		a := byName[n]
		fmt.Printf("━━━ %s — %s ━━━\n", strings.ToUpper(a.name), a.about)
		if err := a.run(suite); err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		fmt.Println()
	}
	if zooDir != "" {
		n, err := exportZoo(suite, zooDir)
		if err != nil {
			return fmt.Errorf("zoo export: %w", err)
		}
		fmt.Printf("exported %d records to the zoo at %s\n", n, zooDir)
	}
	return nil
}

// exportZoo publishes the suite's derived models and measurement traces
// into a Network Power Zoo store, so other tools can consume them.
func exportZoo(suite *experiments.Suite, dir string) (int, error) {
	store, err := zoo.Open(dir)
	if err != nil {
		return 0, err
	}
	count := 0

	// Derived models, assembled per router from the Table 2/6 rows.
	var rows []experiments.ModelRow
	for _, fetch := range []func() ([]experiments.ModelRow, error){suite.Table2, suite.Table6} {
		rs, err := fetch()
		if err != nil {
			return count, err
		}
		rows = append(rows, rs...)
	}
	models := map[string]*model.Model{}
	for _, row := range rows {
		m, ok := models[row.Router]
		if !ok {
			m = model.New(row.Router, row.PBase)
			models[row.Router] = m
		}
		m.AddProfile(row.Derived)
	}
	var names []string
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := store.PutModel(models[name]); err != nil {
			return count, err
		}
		count++
	}

	// Autopower and PSU traces of the instrumented routers.
	ds, err := suite.Dataset()
	if err != nil {
		return count, err
	}
	for name, series := range ds.Autopower {
		if err := store.PutTrace(name+".autopower", series); err != nil {
			return count, err
		}
		count++
	}
	for name, series := range ds.SNMPPower {
		if err := store.PutTrace(name+".psu", series); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}
