// Command joules regenerates the tables and figures of "Fantastic Joules
// and Where to Find Them" from the simulated substrates and prints them in
// the paper's layout.
//
// Usage:
//
//	joules run all            regenerate everything
//	joules run table1         one artifact; `joules list` (or -h) prints
//	                          the catalog, generated from the artifact
//	                          table itself so it never drifts
//	joules list               list the artifacts
//	joules report             render the paper-vs-measured markdown report
//	joules -seed 7 run fig4   change the simulation seed
//	joules -workers 1 run all force the serial substrate paths (the
//	                          default fans the fleet simulation and lab
//	                          derivations out over all CPUs; the output
//	                          is identical either way)
//	joules -optimize          run the closed-loop energy optimizer over the
//	                          full study window and report the realized
//	                          (measured) savings against the §8 estimate
//	joules -optimize -routers 1000
//	                          close the loop on a generated 1000-router
//	                          hierarchical fleet instead of the calibrated
//	                          build, against the same estimate envelope
//	joules -stream            run the bounded-memory streaming scale study
//	                          over the default fleet ladder (107, 1k, 10k)
//	joules -stream -routers 50000
//	                          stream one generated 50k-router fleet; the
//	                          row reports tiers, subscribers, energy, and
//	                          simulated joules per wall-clock second
//	joules -metrics :9090 run all
//	                          serve live process telemetry while the run
//	                          executes: /metrics (Prometheus text, or
//	                          ?format=json) and /debug/pprof
//	joules -cpuprofile cpu.pb.gz -memprofile mem.pb.gz run fig1
//	                          write pprof profiles of an offline artifact
//	                          run, without standing up the HTTP server;
//	                          inspect with `go tool pprof <file>`
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
	"sort"
	"strings"

	"fantasticjoules/internal/experiments"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/telemetry"
	"fantasticjoules/internal/zoo"
)

type artifact struct {
	name  string
	about string
	run   func(*experiments.Suite) error
}

func artifacts() []artifact {
	return []artifact{
		{"fig1", "network-wide power and traffic over time", runFig1},
		{"fig2a", "ASIC efficiency trend (redrawn)", runFig2a},
		{"fig2b", "datasheet efficiency trend", runFig2b},
		{"table1", "measured median vs datasheet typical power", runTable1},
		{"table2", "derived power models (four routers)", runTable2},
		{"table6", "additional derived power models", runTable6},
		{"fig4", "PSU vs Autopower vs model predictions", runFig4},
		{"fig9", "offset-corrected model precision", runFig9},
		{"fig5", "PSU efficiency curve and 80 Plus levels", runFig5},
		{"fig6", "fleet PSU efficiency scatter", runFig6},
		{"table3", "savings from better PSUs / one PSU / both", runTable3},
		{"table4", "savings from right-sizing PSU capacity", runTable4},
		{"table5", "per-port-type power constants", runTable5},
		{"fig8", "OS-upgrade fan power bump", runFig8},
		{"section7", "traffic vs transceiver power split", runSection7},
		{"section8", "Hypnos link-sleeping savings", runSection8},
		{"section8online", "closed-loop optimizer: realized vs estimated savings", runSection8Online},
		{"baselines", "lab models vs datasheet-interpolation baseline (§2)", runBaselines},
		{"ablations", "design-choice ablations", runAblations},
		{"scale", "streaming fleet-scale study (hierarchical topologies; honors -routers)", runScale},
		{"optscale", "closed-loop optimizer on a generated hierarchical fleet (honors -routers)", runOptimizeScale},
	}
}

func main() {
	seed := flag.Int64("seed", 42, "simulation seed (changes the synthetic dataset)")
	workers := flag.Int("workers", 0, "simulation/derivation concurrency: 0 = all CPUs, 1 = serial; the output is identical either way")
	zooDir := flag.String("zoo", "", "export derived models and traces into a Network Power Zoo store at this directory")
	metricsAddr := flag.String("metrics", "", "serve live telemetry on this address while running (/metrics and /debug/pprof); :0 picks a free port")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof format)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file when the run finishes")
	optimize := flag.Bool("optimize", false, "run the closed-loop energy optimizer (shorthand for `run section8online`)")
	routers := flag.Int("routers", 0, "fleet size for the scale artifact: 107 = the calibrated build, anything else generates a hierarchical fleet; 0 sweeps a ladder")
	stream := flag.Bool("stream", false, "run the bounded-memory streaming scale study (shorthand for `run scale`)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if *optimize && len(args) == 0 {
		// Bare -optimize runs the calibrated section8online acceptance run;
		// with -routers N it closes the loop on a generated N-router fleet.
		if *routers > 0 {
			args = []string{"run", "optscale"}
		} else {
			args = []string{"run", "section8online"}
		}
	}
	if *stream && len(args) == 0 {
		args = []string{"run", "scale"}
	}
	scaleSeed, scaleRouters = *seed, *routers
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *metricsAddr != "" {
		if err := serveMetrics(*metricsAddr); err != nil {
			fmt.Fprintln(os.Stderr, "joules:", err)
			os.Exit(1)
		}
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "joules:", err)
		os.Exit(1)
	}
	// exit flushes the profiles before terminating: os.Exit skips deferred
	// calls, so every exit path below goes through here.
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}
	switch args[0] {
	case "list":
		for _, a := range artifacts() {
			fmt.Printf("  %-9s %s\n", a.name, a.about)
		}
	case "run":
		if len(args) < 2 {
			usage()
			exit(2)
		}
		if err := run(*seed, *workers, *zooDir, args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "joules:", err)
			exit(1)
		}
	case "report":
		if err := writeReport(os.Stdout, newSuite(*seed, *workers), *seed); err != nil {
			fmt.Fprintln(os.Stderr, "joules:", err)
			exit(1)
		}
	default:
		usage()
		exit(2)
	}
	exit(0)
}

// startProfiles starts CPU profiling and/or arranges an end-of-run heap
// profile, returning the function that stops and flushes both. Either
// path may be empty. This is the offline counterpart of the -metrics
// pprof endpoint: artifact runs (and their error exits) produce profiles
// without an HTTP server in the loop.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := runtimepprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			runtimepprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "joules: cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "joules: memprofile:", err)
				return
			}
			// Up-to-date allocation stats, as `go test -memprofile` does.
			runtime.GC()
			if err := runtimepprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "joules: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "joules: memprofile:", err)
			}
		}
	}, nil
}

// usage prints the command synopsis, flags, and the artifact catalog. The
// catalog is generated from artifacts() — the same table run and list
// consult — so the help text can never drift from what run accepts.
func usage() {
	fmt.Fprintln(os.Stderr, `usage: joules [flags] run <artifact...|all> | joules report | joules list

flags:`)
	flag.PrintDefaults()
	fmt.Fprintln(os.Stderr, "\nartifacts:")
	for _, a := range artifacts() {
		fmt.Fprintf(os.Stderr, "  %-9s %s\n", a.name, a.about)
	}
}

// serveMetrics exposes the telemetry registry and the pprof profiles on
// addr for the lifetime of the process, logging the resolved address so
// `-metrics :0` is usable.
func serveMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Default().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "joules: telemetry on http://%s/metrics (pprof on /debug/pprof/)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "joules: metrics server:", err)
		}
	}()
	return nil
}

// newSuite builds a suite with the requested substrate concurrency.
func newSuite(seed int64, workers int) *experiments.Suite {
	suite := experiments.New(seed)
	suite.SetWorkers(workers)
	return suite
}

func run(seed int64, workers int, zooDir string, names []string) error {
	byName := map[string]artifact{}
	var order []string
	for _, a := range artifacts() {
		byName[a.name] = a
		order = append(order, a.name)
	}
	var selected []string
	if len(names) == 1 && names[0] == "all" {
		selected = order
	} else {
		for _, n := range names {
			if _, ok := byName[strings.ToLower(n)]; !ok {
				known := append([]string(nil), order...)
				sort.Strings(known)
				return fmt.Errorf("unknown artifact %q (known: %s, all)", n, strings.Join(known, ", "))
			}
			selected = append(selected, strings.ToLower(n))
		}
	}
	suite := newSuite(seed, workers)
	for _, n := range selected {
		a := byName[n]
		fmt.Printf("━━━ %s — %s ━━━\n", strings.ToUpper(a.name), a.about)
		if err := a.run(suite); err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		fmt.Println()
	}
	if zooDir != "" {
		n, err := exportZoo(suite, zooDir)
		if err != nil {
			return fmt.Errorf("zoo export: %w", err)
		}
		fmt.Printf("exported %d records to the zoo at %s\n", n, zooDir)
	}
	return nil
}

// exportZoo publishes the suite's derived models and measurement traces
// into a Network Power Zoo store, so other tools can consume them.
func exportZoo(suite *experiments.Suite, dir string) (int, error) {
	store, err := zoo.Open(dir)
	if err != nil {
		return 0, err
	}
	count := 0

	// Derived models, assembled per router from the Table 2/6 rows.
	var rows []experiments.ModelRow
	for _, fetch := range []func() ([]experiments.ModelRow, error){suite.Table2, suite.Table6} {
		rs, err := fetch()
		if err != nil {
			return count, err
		}
		rows = append(rows, rs...)
	}
	models := map[string]*model.Model{}
	for _, row := range rows {
		m, ok := models[row.Router]
		if !ok {
			m = model.New(row.Router, row.PBase)
			models[row.Router] = m
		}
		m.AddProfile(row.Derived)
	}
	var names []string
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := store.PutModel(models[name]); err != nil {
			return count, err
		}
		count++
	}

	// Autopower and PSU traces of the instrumented routers.
	ds, err := suite.Dataset()
	if err != nil {
		return count, err
	}
	for name, series := range ds.Autopower {
		if err := store.PutTrace(name+".autopower", series); err != nil {
			return count, err
		}
		count++
	}
	for name, series := range ds.SNMPPower {
		if err := store.PutTrace(name+".psu", series); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}
