package main

import (
	"fmt"
	"time"

	"fantasticjoules/internal/experiments"
)

// optscaleWindow keeps the closed-loop row interactive at every size:
// a week of hourly control steps up to 2k routers, two days beyond.
func optscaleWindow(routers int) time.Duration {
	if routers > 2000 {
		return 2 * 24 * time.Hour
	}
	return 7 * 24 * time.Hour
}

// runOptimizeScale closes the loop on a generated hierarchical fleet
// (default 1000 routers; -routers picks another size) and prints the
// realized savings against the estimate envelope. Wall-clock timing
// lives here — the experiments package is determinism-linted and must
// not read the clock.
func runOptimizeScale(*experiments.Suite) error {
	routers := scaleRouters
	if routers <= 0 {
		routers = 1000
	}
	start := time.Now()
	row, err := experiments.RunOptimizeScale(experiments.OptimizeScaleConfig{
		Seed:    scaleSeed,
		Routers: routers,
		Window:  optscaleWindow(routers),
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	mode := "live shards"
	if row.ChunkRetained {
		mode = "chunk-retained"
	}
	fmt.Printf("fleet: %d routers (%s), %d internal links, %s retention\n",
		row.Routers, tierCensus(row.Tiers), row.Links, mode)
	fmt.Printf("control: %d steps, %d actions, %d vetoes, %d resimulates, %d transitions, %d guardrail violations\n",
		row.Steps, row.Actions, row.Vetoes, row.Resimulates, row.Transitions, row.GuardrailViolations)
	fmt.Printf("baseline: %.1f kW mean wall power\n", row.BaselineMeanPower.Watts()/1e3)
	fmt.Printf("realized: %.1f kW saved (%.1f%% of baseline), %.3g J over the window\n",
		row.RealizedSavedWatts.Watts()/1e3, 100*row.RealizedShare,
		row.RealizedSavedJoules.Joules())
	verdict := "within"
	if !row.WithinEnvelope {
		verdict = "OUTSIDE"
	}
	fmt.Printf("envelope: [%.1f, %.1f] kW — realized %s\n",
		row.EnvelopeLow.Watts()/1e3, row.EnvelopeHigh.Watts()/1e3, verdict)
	fmt.Printf("psu shed: %d supplies, %.3g J additional\n",
		row.PSUsShed, row.PSUSavedJoules.Joules())
	fmt.Printf("wall: %.2fs\n", wall.Seconds())
	return nil
}
