package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fantasticjoules/internal/experiments"
	"fantasticjoules/internal/timeseries"
)

// sparkline renders a series as a one-line unicode chart, the terminal
// stand-in for the paper's plots.
func sparkline(s *timeseries.Series, width int) string {
	if s.Len() == 0 {
		return "(empty)"
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	vals := s.Values()
	bucket := len(vals) / width
	if bucket < 1 {
		bucket = 1
	}
	var compressed []float64
	for i := 0; i < len(vals); i += bucket {
		end := i + bucket
		if end > len(vals) {
			end = len(vals)
		}
		var sum float64
		for _, v := range vals[i:end] {
			sum += v
		}
		compressed = append(compressed, sum/float64(end-i))
	}
	min, max := compressed[0], compressed[0]
	for _, v := range compressed {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range compressed {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(levels)-1))
		}
		sb.WriteRune(levels[idx])
	}
	return fmt.Sprintf("%s  [%.1f … %.1f]", sb.String(), min, max)
}

func runFig1(s *experiments.Suite) error {
	res, err := s.Fig1()
	if err != nil {
		return err
	}
	fmt.Printf("Total power   (W):    %s\n", sparkline(res.Power, 64))
	fmt.Printf("Total traffic (Tbps): %s\n", sparkline(res.Traffic.Scale(1e-12), 64))
	fmt.Printf("mean power %.1f kW | mean traffic %.2f Tbps (%.1f%% of %.1f Tbps capacity)\n",
		res.Power.Mean()/1e3, res.Traffic.Mean()/1e12,
		100*res.Traffic.Mean()/res.CapacityBps, res.CapacityBps/1e12)
	fmt.Printf("power–traffic correlation: %.2f (invisible at network scale, §7)\n",
		res.PowerTrafficCorrelation)
	days := res.Power.At(res.Power.Len()-1).T.Sub(res.Power.At(0).T).Hours() / 24
	if days > 0 {
		kwh := timeseries.IntegratePower(res.Power) / 3.6e6
		fmt.Printf("energy over the %.0f-day window: %.0f kWh (%.0f kWh/day)\n",
			days, kwh, kwh/days)
	}
	return nil
}

func runFig2a(s *experiments.Suite) error {
	for _, p := range s.Fig2a() {
		fmt.Printf("  %d  %-10s %5.1f W/100Gbps\n", p.Year, p.Model, p.Efficiency)
	}
	return nil
}

func runFig2b(s *experiments.Suite) error {
	res, err := s.Fig2b()
	if err != nil {
		return err
	}
	// Per-year summary of the scatter.
	byYear := map[int][]float64{}
	for _, p := range res.Points {
		byYear[p.Year] = append(byYear[p.Year], p.Efficiency)
	}
	var years []int
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	for _, y := range years {
		vs := byYear[y]
		var sum, max float64
		min := vs[0]
		for _, v := range vs {
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		fmt.Printf("  %d  n=%-3d mean %5.1f  range [%5.1f, %6.1f] W/100Gbps\n",
			y, len(vs), sum/float64(len(vs)), min, max)
	}
	fmt.Printf("trend: %.2f W/100Gbps per year (R²=%.2f) over %d models — no clear router-level trend\n",
		res.Fit.Slope, res.Fit.R2, res.Plotted)
	return nil
}

func runTable1(s *experiments.Suite) error {
	rows, err := s.Table1()
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %10s %8s\n", "Router model", "Measured", "Datasheet", "Overest.")
	for _, r := range rows {
		fmt.Printf("%-20s %8.0f W %8.0f W %7.0f%%\n",
			r.Model, r.Measured.Watts(), r.Datasheet.Watts(), r.Overestimate*100)
	}
	return nil
}

func renderModelRows(rows []experiments.ModelRow) {
	fmt.Printf("%-19s %-28s %7s %7s %8s %8s %7s %7s %8s\n",
		"Router", "Profile", "Pbase", "Pport", "Ptrx,in", "Ptrx,up", "Ebit", "Epkt", "Poffset")
	for _, r := range rows {
		fmt.Printf("%-19s %-28s %6.0fW %6.2fW %7.2fW %7.2fW %5.1fpJ %5.1fnJ %7.2fW\n",
			r.Router, r.Key.String(),
			r.PBase.Watts(), r.Derived.PPort.Watts(), r.Derived.PTrxIn.Watts(),
			r.Derived.PTrxUp.Watts(), r.Derived.EBit.Picojoules(),
			r.Derived.EPkt.Nanojoules(), r.Derived.POffset.Watts())
		if r.Published != nil {
			fmt.Printf("%-19s %-28s %6.0fW %6.2fW %7.2fW %7.2fW %5.1fpJ %5.1fnJ %7.2fW\n",
				"  (published)", "",
				r.PBasePublished.Watts(), r.Published.PPort.Watts(), r.Published.PTrxIn.Watts(),
				r.Published.PTrxUp.Watts(), r.Published.EBit.Picojoules(),
				r.Published.EPkt.Nanojoules(), r.Published.POffset.Watts())
		}
	}
}

func runTable2(s *experiments.Suite) error {
	rows, err := s.Table2()
	if err != nil {
		return err
	}
	renderModelRows(rows)
	return nil
}

func runTable6(s *experiments.Suite) error {
	rows, err := s.Table6()
	if err != nil {
		return err
	}
	renderModelRows(rows)
	return nil
}

func runFig4(s *experiments.Suite) error {
	rows, err := s.Fig4()
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%s (%s)\n", r.Router, r.Model)
		fmt.Printf("  Autopower: %s\n", sparkline(r.Autopower, 56))
		if r.SNMP != nil {
			fmt.Printf("  PSU      : %s  (offset %+.1f W, shape corr %.2f)\n",
				sparkline(r.SNMP, 56), r.SNMPOffset.Watts(), r.SNMPShapeCorrelation)
		} else {
			fmt.Printf("  PSU      : (this model does not report PSU power)\n")
		}
		fmt.Printf("  Model    : %s  (underestimates by %.1f W, shape corr %.2f)\n",
			sparkline(r.Prediction, 56), r.ModelOffset.Watts(), r.ModelShapeCorrelation)
	}
	return nil
}

func runFig9(s *experiments.Suite) error {
	rows, err := s.Fig9()
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%s (%s)\n", r.Router, r.Model)
		fmt.Printf("  Autopower     : %s\n", sparkline(r.Autopower, 56))
		fmt.Printf("  Model+offset  : %s  residual RMSE %.2f W\n",
			sparkline(r.ShiftedPrediction, 56), r.ResidualRMSE.Watts())
	}
	return nil
}

func runFig5(s *experiments.Suite) error {
	res := s.Fig5()
	fmt.Println("PFE600-12-054xA efficiency curve:")
	for _, p := range res.PFE600 {
		fmt.Printf("  %5.1f%% load → %5.1f%%\n", p.Load*100, p.Efficiency*100)
	}
	fmt.Println("80 Plus set points:")
	for _, level := range []string{"Bronze", "Silver", "Gold", "Platinum", "Titanium"} {
		fmt.Printf("  %-9s", level)
		for _, p := range res.SetPoints[level] {
			fmt.Printf("  %3.0f%%→%2.0f%%", p.Load*100, p.Efficiency*100)
		}
		fmt.Println()
	}
	return nil
}

func runFig6(s *experiments.Suite) error {
	res, err := s.Fig6()
	if err != nil {
		return err
	}
	summarize := func(name string, pts []experiments.Fig6Point) {
		if len(pts) == 0 {
			return
		}
		var sum float64
		min, max := 1.0, 0.0
		for _, p := range pts {
			sum += p.Efficiency
			if p.Efficiency < min {
				min = p.Efficiency
			}
			if p.Efficiency > max {
				max = p.Efficiency
			}
		}
		fmt.Printf("  %-20s n=%-4d eff mean %4.1f%%  range [%4.1f%%, %5.1f%%]\n",
			name, len(pts), 100*sum/float64(len(pts)), 100*min, 100*max)
	}
	summarize("all PSUs", res.All)
	for _, m := range []string{"NCS-55A1-24H", "8201-32FH", "ASR-920-24SZ-M"} {
		summarize(m, res.ByModel[m])
	}
	return nil
}

func runTable3(s *experiments.Suite) error {
	res, err := s.Table3()
	if err != nil {
		return err
	}
	levels := []string{"Bronze", "Silver", "Gold", "Platinum", "Titanium"}
	fmt.Printf("%-28s", "Measure \\ 80 Plus standard")
	for _, l := range levels {
		fmt.Printf(" %14s", l)
	}
	fmt.Println()
	fmt.Printf("%-28s", "More efficient PSUs")
	for _, l := range levels {
		fmt.Printf(" %14s", res.MoreEfficient[l].String())
	}
	fmt.Println()
	fmt.Printf("%-28s %14s\n", "Only one PSU", res.SinglePSU.String())
	fmt.Printf("%-28s", "Both")
	for _, l := range levels {
		fmt.Printf(" %14s", res.Combined[l].String())
	}
	fmt.Println()
	fmt.Printf("(fleet input power: %.1f kW)\n", res.FleetInput.Kilowatts())
	return nil
}

func runTable4(s *experiments.Suite) error {
	res, err := s.Table4()
	if err != nil {
		return err
	}
	fmt.Printf("%-6s", "k \\ C")
	for _, c := range res.Capacities {
		fmt.Printf(" %13.0fW", c.Watts())
	}
	fmt.Println()
	fmt.Printf("%-6s", "k=1")
	for _, sv := range res.K1 {
		fmt.Printf(" %14s", sv.String())
	}
	fmt.Println()
	fmt.Printf("%-6s", "k=2")
	for _, sv := range res.K2 {
		fmt.Printf(" %14s", sv.String())
	}
	fmt.Println()
	return nil
}

func runTable5(s *experiments.Suite) error {
	fmt.Printf("%-10s %10s %10s\n", "Port type", "Pport", "Ptrx,up")
	for _, r := range s.Table5() {
		fmt.Printf("%-10s %9.3fW %9.3fW\n", r.Port, r.PPort.Watts(), r.PTrxUp.Watts())
	}
	return nil
}

func runFig8(s *experiments.Suite) error {
	res, err := s.Fig8()
	if err != nil {
		return err
	}
	fmt.Printf("PSU-reported power: %s\n", sparkline(res.Power, 64))
	fmt.Printf("OS upgrade on %s: +%.1f W (%.1f%%) from the new fan management\n",
		res.UpgradeAt.Format(time.DateOnly), res.Bump.Watts(), res.RelativeBump*100)
	return nil
}

func runSection7(s *experiments.Suite) error {
	res, err := s.Section7()
	if err != nil {
		return err
	}
	fmt.Printf("Forwarding the network's traffic costs %.1f W — %.3f%% of the %.1f kW total.\n",
		res.TrafficPower.Watts(), res.TrafficShare*100, res.TotalPower.Kilowatts())
	fmt.Printf("Transceivers collectively draw %.1f kW — %.1f%% of total power.\n",
		res.TransceiverPower.Kilowatts(), res.TransceiverShare*100)
	return nil
}

func runSection8(s *experiments.Suite) error {
	res, err := s.Section8()
	if err != nil {
		return err
	}
	fmt.Printf("Hypnos puts %.0f of %d internal links to sleep on average (%.0f%%).\n",
		res.Savings.MeanSleepingLinks, res.InternalLinks, res.Savings.SleepableFraction*100)
	fmt.Printf("Naive accounting (full Pport+Ptrx):  %6.0f W (%.1f%%)\n",
		res.Savings.Naive.Watts(), res.NaiveShare*100)
	fmt.Printf("Refined savings range:              %6.0f – %.0f W (%.1f–%.1f%%)\n",
		res.Savings.RefinedLow.Watts(), res.Savings.RefinedHigh.Watts(),
		res.LowShare*100, res.HighShare*100)
	fmt.Printf("Table 5 point estimate:             %6.0f W (near the lower end — Ptrx,in dominates)\n",
		res.Savings.Table5.Watts())
	fmt.Printf("External interfaces: %.0f%% of interfaces, %.0f%% of transceiver power (unsleepable).\n",
		res.ExternalIfaceShare*100, res.ExternalTrxPowerShare*100)
	return nil
}

func runBaselines(s *experiments.Suite) error {
	rows, err := s.Baselines()
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12s %14s %14s\n", "Router", "Lab MAE", "Baseline MAE", "Baseline bias")
	for _, r := range rows {
		fmt.Printf("%-22s %10.1f W %12.1f W %+12.1f W\n",
			r.Model, r.LabModelMAE.Watts(), r.BaselineMAE.Watts(), r.BaselineBias.Watts())
	}
	fmt.Println("(the datasheet-interpolation model of [16,33] misses by whole tens")
	fmt.Println(" of watts — the §2 motivation for lab-derived models)")
	return nil
}

func runAblations(s *experiments.Suite) error {
	dyn, err := s.AblationDynamicTerms()
	if err != nil {
		return err
	}
	fmt.Println("Dynamic-term ablation (prediction RMSE on a loaded router):")
	for _, r := range dyn {
		fmt.Printf("  %-12s %6.2f W\n", r.Variant, r.RMSE.Watts())
	}
	sm, err := s.AblationSmoothing()
	if err != nil {
		return err
	}
	fmt.Println("Smoothing-window ablation (offset-corrected residual):")
	for _, r := range sm {
		fmt.Printf("  %-8s %6.2f W\n", r.Window, r.ResidualRMSE.Watts())
	}
	sd, err := s.AblationSweepDensity()
	if err != nil {
		return err
	}
	fmt.Println("Rate-sweep density ablation:")
	for _, r := range sd {
		fmt.Printf("  %d rates: Ebit error %.1f%%, fit R² %.3f\n", r.Rates, r.EBitErrorPct, r.FitQuality)
	}
	ht, err := s.AblationHypnosThreshold()
	if err != nil {
		return err
	}
	fmt.Println("Hypnos utilization-cap ablation:")
	for _, r := range ht {
		fmt.Printf("  cap %.0f%%: %.0f links asleep, ≥%.0f W saved\n",
			r.MaxUtilization*100, r.SleepingLinks, r.RefinedLow.Watts())
	}
	return nil
}

func runSection8Online(s *experiments.Suite) error {
	res, err := s.Section8Online()
	if err != nil {
		return err
	}
	days := res.Window.Hours() / 24
	fmt.Printf("Closed-loop run: %d hourly steps over %.0f days, %d actions (%d link transitions).\n",
		res.Steps, days, res.Actions, res.Transitions)
	fmt.Printf("Guardrail: %d vetoes, %d violations (must be 0), %d fleet resimulations.\n",
		res.Vetoes, res.GuardrailViolations, res.Resimulates)
	fmt.Printf("Realized sleep saving (measured at the wall):  %6.0f W (%.2f%% of fleet power, %.2e J)\n",
		res.RealizedSavedWatts.Watts(), res.RealizedShare*100, res.RealizedSavedJoules.Joules())
	fmt.Printf("Estimate envelope for the realized schedule:   %6.0f – %.0f W  → within: %v\n",
		res.EnvelopeLow.Watts(), res.EnvelopeHigh.Watts(), res.WithinEnvelope)
	fmt.Printf("Offline §8 estimate (hypothetical schedule):   %6.0f – %.0f W (%.1f–%.1f%%)\n",
		res.Offline.Savings.RefinedLow.Watts(), res.Offline.Savings.RefinedHigh.Watts(),
		res.Offline.LowShare*100, res.Offline.HighShare*100)
	fmt.Printf("PSU shedding: %d supplies offlined, %.2e J saved on top (§9.3.4 provisioning).\n",
		res.PSUsShed, res.PSUSavedJoules.Joules())
	return nil
}
