package main

import (
	"strings"
	"testing"
	"time"

	"fantasticjoules/internal/timeseries"
)

func TestSparkline(t *testing.T) {
	t0 := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	s := timeseries.New("x")
	for i := 0; i < 128; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	line := sparkline(s, 64)
	if !strings.Contains(line, "[0.") {
		t.Errorf("sparkline missing range: %q", line)
	}
	// A ramp starts at the lowest glyph and ends at the highest.
	runes := []rune(line)
	if runes[0] != '▁' {
		t.Errorf("ramp start glyph = %q", string(runes[0]))
	}
	if !strings.Contains(line, "█") {
		t.Errorf("ramp missing peak glyph: %q", line)
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if got := sparkline(timeseries.New("empty"), 10); got != "(empty)" {
		t.Errorf("empty = %q", got)
	}
	t0 := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	flat := timeseries.New("flat")
	for i := 0; i < 5; i++ {
		flat.Append(t0.Add(time.Duration(i)*time.Minute), 42)
	}
	line := sparkline(flat, 10)
	if strings.Contains(line, "█") {
		t.Errorf("flat series should render at the floor: %q", line)
	}
}

func TestArtifactRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range artifacts() {
		if a.name == "" || a.about == "" || a.run == nil {
			t.Errorf("incomplete artifact %+v", a)
		}
		if seen[a.name] {
			t.Errorf("duplicate artifact %q", a.name)
		}
		seen[a.name] = true
	}
	// Every table and figure of the evaluation must be present.
	for _, want := range []string{
		"fig1", "fig2a", "fig2b", "table1", "table2", "table6",
		"fig4", "fig9", "fig5", "fig6", "table3", "table4", "table5",
		"fig8", "section7", "section8", "ablations",
	} {
		if !seen[want] {
			t.Errorf("missing artifact %q", want)
		}
	}
}

func TestRunRejectsUnknownArtifact(t *testing.T) {
	if err := run(1, 0, "", []string{"fig99"}); err == nil {
		t.Error("unknown artifact accepted")
	}
}
