package main

import (
	"os"
	"strings"
	"testing"
)

// TestRunCheapArtifacts exercises the CLI pipeline end-to-end for the
// artifacts that need no fleet simulation (corpus- and constant-backed
// ones), capturing stdout to check the rendering.
func TestRunCheapArtifacts(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(1, 0, "", []string{"fig2a", "fig2b", "fig5", "table5"})
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	output := string(out[:n])

	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	for _, want := range []string{
		"FIG2A", "Tomahawk",
		"FIG2B", "no clear router-level trend",
		"FIG5", "PFE600",
		"TABLE5", "QSFP28",
	} {
		if !strings.Contains(output, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunAllSelectsEveryArtifact(t *testing.T) {
	// "all" must expand to the full registry (checked without executing).
	names := map[string]bool{}
	for _, a := range artifacts() {
		names[a.name] = true
	}
	if len(names) < 17 {
		t.Errorf("registry has %d artifacts", len(names))
	}
}
