package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fantasticjoules/internal/experiments"
)

// The scale artifact is parameterized from the command line rather than
// the suite: -routers picks one fleet size, and without it the artifact
// sweeps a decade ladder. Wall-clock timing lives here — the experiments
// package is determinism-linted and must not read the clock.
var (
	// scaleSeed and scaleRouters are set by main from -seed and -routers.
	scaleSeed    int64 = 42
	scaleRouters int
)

// scaleSweep is the default fleet ladder when -routers is absent.
var scaleSweep = []int{107, 1000, 10000}

// scaleWindow picks a study window that keeps the row interactive while
// still exercising a multi-day diurnal cycle at every size.
func scaleWindow(routers int) (time.Duration, time.Duration) {
	switch {
	case routers <= 200:
		return 7 * 24 * time.Hour, 15 * time.Minute
	case routers <= 2000:
		return 7 * 24 * time.Hour, time.Hour
	default:
		return 2 * 24 * time.Hour, time.Hour
	}
}

// runScale streams fleets through the bounded-memory replay and prints
// one row per size: topology census, synthesized population, simulated
// energy, spill volume, and simulated-joules-per-wallclock-second.
func runScale(*experiments.Suite) error {
	sizes := scaleSweep
	if scaleRouters > 0 {
		sizes = []int{scaleRouters}
	}
	fmt.Printf("%8s  %-34s  %11s  %6s  %11s  %9s  %8s  %12s\n",
		"routers", "tiers", "subscribers", "steps", "mean power", "spilled", "wall", "joules/s")
	for _, n := range sizes {
		dur, step := scaleWindow(n)
		start := time.Now()
		row, err := experiments.RunScale(experiments.ScaleConfig{
			Seed: scaleSeed, Routers: n, Duration: dur, Step: step,
		})
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Printf("%8d  %-34s  %11d  %6d  %9.1f kW  %7.1f MB  %7.2fs  %12.3g\n",
			row.Routers, tierCensus(row.Tiers), row.Subscribers, row.Steps,
			float64(row.MeanPower)/1e3, float64(row.SpilledBytes)/(1<<20),
			wall.Seconds(), row.Joules/wall.Seconds())
	}
	return nil
}

// tierCensus renders the per-tier router counts compactly.
func tierCensus(tiers map[string]int) string {
	if len(tiers) == 0 {
		return "calibrated"
	}
	names := make([]string, 0, len(tiers))
	for name := range tiers {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s:%d", name, tiers[name])
	}
	return strings.Join(parts, " ")
}
