// Command powerzoo serves the Network Power Zoo: the HTTP database that
// aggregates datasheet extractions, power models, and measurement traces.
//
// Usage:
//
//	powerzoo -addr 127.0.0.1:8600 -dir ./zoo-data [-preload]
//
// With -preload the zoo starts populated with the paper's eight published
// power models and the extracted synthetic datasheet corpus.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fantasticjoules/internal/datasheet"
	"fantasticjoules/internal/httpd"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/zoo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8600", "listen address")
	dir := flag.String("dir", "zoo-data", "storage directory")
	preload := flag.Bool("preload", false, "preload published models and the datasheet corpus")
	flag.Parse()

	store, err := zoo.Open(*dir)
	if err != nil {
		fatal(err)
	}
	if *preload {
		n, err := preloadStore(store)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("preloaded %d records into %s\n", n, *dir)
	}
	fmt.Printf("Network Power Zoo on http://%s/api/v1/{datasheets,models,traces}\n", *addr)
	// Configured timeouts and graceful SIGINT/SIGTERM shutdown with a
	// drain deadline; the zoo previously ran a bare http.ListenAndServe.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := httpd.ListenAndServe(ctx, *addr, zoo.Handler(store), httpd.Config{}); err != nil {
		fatal(err)
	}
	fmt.Println("shut down cleanly")
}

func preloadStore(store *zoo.Store) (int, error) {
	n := 0
	for _, name := range model.PublishedModels() {
		m, err := model.Published(name)
		if err != nil {
			return n, err
		}
		if err := store.PutModel(m); err != nil {
			return n, err
		}
		n++
	}
	for _, rec := range datasheet.ExtractAll(datasheet.Generate(42)) {
		if err := store.PutDatasheet(rec); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powerzoo:", err)
	os.Exit(1)
}
