// Command autopower runs the paper's Autopower measurement system (§6.1):
// a collection server and measurement units that meter simulated routers.
//
// Usage:
//
//	autopower serve -addr 127.0.0.1:7600
//	autopower unit  -server 127.0.0.1:7600 -id unit-1 -router 8201-32FH
//	autopower demo                         run server + 3 units in-process
//
// Real deployments run `serve` centrally and one `unit` per Raspberry
// Pi + meter; here the unit meters a simulated router so the whole
// pipeline is exercisable on one machine.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fantasticjoules/internal/autopower"
	"fantasticjoules/internal/device"
	"fantasticjoules/internal/httpd"
	"fantasticjoules/internal/meter"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "unit":
		err = unit(os.Args[2:])
	case "demo":
		err = demo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopower:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: autopower serve|unit|demo [flags]")
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7600", "listen address")
	webAddr := fs.String("web", "127.0.0.1:7680", "web interface address (empty to disable)")
	interval := fs.Duration("status", 10*time.Second, "status print interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := autopower.NewServer()
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("autopower server listening on", bound)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var webDone chan error // nil (blocks forever) when the web interface is disabled
	if *webAddr != "" {
		webDone = make(chan error, 1)
		go func() {
			// Configured timeouts plus graceful drain on shutdown — a
			// bare http.ListenAndServe here left trace downloads to die
			// mid-transfer on SIGTERM.
			webDone <- httpd.ListenAndServe(ctx, *webAddr, srv.WebHandler(), httpd.Config{})
		}()
		fmt.Printf("web interface on http://%s/\n", *webAddr)
	}
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			if webDone != nil {
				if err := <-webDone; err != nil {
					fmt.Fprintln(os.Stderr, "autopower: web interface:", err)
				}
			}
			return nil
		case err := <-webDone:
			if err != nil {
				return fmt.Errorf("web interface: %w", err)
			}
			webDone = nil // web server exited cleanly; keep the status loop
		case <-ticker.C:
			for _, u := range srv.Units() {
				fmt.Printf("  %-12s router=%-16s connected=%-5v samples=%d\n",
					u.UnitID, u.Router, u.Connected, u.Samples)
			}
		}
	}
}

func unit(args []string) error {
	fs := flag.NewFlagSet("unit", flag.ExitOnError)
	server := fs.String("server", "127.0.0.1:7600", "autopower server address")
	id := fs.String("id", "unit-1", "unit identifier")
	router := fs.String("router", "8201-32FH", "simulated router model to meter")
	seed := fs.Int64("seed", 1, "simulation seed")
	interval := fs.Duration("interval", 500*time.Millisecond, "sample interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, _, err := newSimulatedUnit(*id, *router, *server, *seed, *interval)
	if err != nil {
		return err
	}
	fmt.Printf("unit %s measuring a simulated %s, uploading to %s\n", *id, *router, *server)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	_ = u.Run(ctx)
	return nil
}

// newSimulatedUnit builds an Autopower unit metering a freshly deployed
// simulated router.
func newSimulatedUnit(id, routerModel, server string, seed int64, interval time.Duration) (*autopower.Unit, *device.Router, error) {
	spec, err := device.Spec(routerModel)
	if err != nil {
		return nil, nil, err
	}
	dev, err := device.New(spec, id+"-"+routerModel, seed)
	if err != nil {
		return nil, nil, err
	}
	m := meter.New(seed + 7)
	if err := m.Attach(0, dev); err != nil {
		return nil, nil, err
	}
	u, err := autopower.NewUnit(autopower.UnitConfig{
		UnitID:         id,
		Router:         dev.Name(),
		ServerAddr:     server,
		Meter:          m,
		SampleInterval: interval,
		UploadEvery:    10,
	})
	if err != nil {
		return nil, nil, err
	}
	return u, dev, nil
}

func demo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	duration := fs.Duration("for", 10*time.Second, "how long to run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := autopower.NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("demo server on", addr)

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	routers := []string{"8201-32FH", "NCS-55A1-24H", "N540X-8Z16G-SYS-A"}
	for i, r := range routers {
		u, _, err := newSimulatedUnit(fmt.Sprintf("unit-%d", i+1), r, addr, int64(i+1), 100*time.Millisecond)
		if err != nil {
			return err
		}
		go func() { _ = u.Run(ctx) }()
	}
	<-ctx.Done()
	fmt.Println("\ncollected:")
	for _, u := range srv.Units() {
		series, err := srv.Series(u.UnitID)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s %-28s %4d samples, median %.1f W\n",
			u.UnitID, u.Router, series.Len(), series.Median())
	}
	return nil
}
