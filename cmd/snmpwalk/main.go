// Command snmpwalk is a small SNMPv2c poller for the simulated routers'
// agents (and any v2c agent speaking the supported subset).
//
// Usage:
//
//	snmpwalk -agent 127.0.0.1:16100 -community public .1.3.6.1.2.1.31.1.1.1.6
//	snmpwalk -demo        start a simulated router agent and walk it
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/snmp"
	"fantasticjoules/internal/units"
)

func main() {
	agent := flag.String("agent", "", "agent address (host:port)")
	community := flag.String("community", "public", "community string")
	demo := flag.Bool("demo", false, "start a demo agent backed by a simulated router and walk it")
	flag.Parse()

	if *demo {
		if err := runDemo(*community); err != nil {
			fatal(err)
		}
		return
	}
	if *agent == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: snmpwalk -agent host:port [-community c] <oid> | snmpwalk -demo")
		os.Exit(2)
	}
	oid, err := snmp.ParseOID(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := walk(*agent, *community, oid); err != nil {
		fatal(err)
	}
}

func walk(addr, community string, oid snmp.OID) error {
	c, err := snmp.Dial(addr, snmp.ClientOptions{Community: community})
	if err != nil {
		return err
	}
	defer c.Close()
	vbs, err := c.Walk(oid)
	if err != nil {
		return err
	}
	for _, vb := range vbs {
		fmt.Printf("%s = %s\n", vb.OID, vb.Value)
	}
	fmt.Printf("(%d objects)\n", len(vbs))
	return nil
}

func runDemo(community string) error {
	spec, err := device.Spec("NCS-55A1-24H")
	if err != nil {
		return err
	}
	r, err := device.New(spec, "demo-rtr", 1)
	if err != nil {
		return err
	}
	// Bring up a few loaded interfaces so the counters move.
	names := r.InterfaceNames()[:4]
	handles := make([]device.Handle, len(names))
	for i, name := range names {
		if err := r.PlugTransceiver(name, model.PassiveDAC, 100*units.GigabitPerSecond); err != nil {
			return err
		}
		if err := r.SetAdmin(name, true); err != nil {
			return err
		}
		if err := r.SetLink(name, true); err != nil {
			return err
		}
		h, err := r.Handle(name)
		if err != nil {
			return err
		}
		handles[i] = h
	}
	step := r.BeginStep()
	for _, h := range handles {
		if err := step.SetTraffic(h, 8*units.GigabitPerSecond, units.PacketRate(1e6)); err != nil {
			step.End()
			return err
		}
	}
	step.End()
	r.Advance(5 * time.Minute)

	var mib snmp.MIB
	snmp.BindRouter(&mib, r)
	agent := snmp.NewAgent(&mib, community)
	addr, err := agent.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer agent.Close()
	fmt.Println("demo agent on", addr)
	for _, prefix := range []snmp.OID{
		snmp.MustOID(".1.3.6.1.2.1.1"), // system subtree
		snmp.OIDIfHCInOctets,
		snmp.OIDPSUPower,
	} {
		if err := walk(addr, community, prefix); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snmpwalk:", err)
	os.Exit(1)
}
