// Command netpowerbench runs the paper's §5 lab methodology against a
// simulated device under test and prints the derived power model next to
// the regression diagnostics — the open-source NetPowerBench workflow.
//
// Usage:
//
//	netpowerbench -dut NCS-55A1-24H -trx "Passive DAC" -speed 100G
//	netpowerbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/labbench"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

func main() {
	dutName := flag.String("dut", "", "router model to derive (see -list)")
	trx := flag.String("trx", string(model.PassiveDAC), "transceiver type (e.g. \"Passive DAC\", LR4, T)")
	speedStr := flag.String("speed", "100G", "interface speed (e.g. 100G, 25G, 1G)")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list available router models and exit")
	flag.Parse()

	if *list {
		for _, name := range device.CatalogNames() {
			spec, _ := device.Spec(name)
			var profiles []string
			for key := range spec.Truth {
				profiles = append(profiles, key.String())
			}
			sort.Strings(profiles)
			fmt.Printf("%-20s %2d ports  %s\n", name, spec.NumPorts, strings.Join(profiles, ", "))
		}
		return
	}
	if *dutName == "" {
		fmt.Fprintln(os.Stderr, "netpowerbench: -dut is required (see -list)")
		os.Exit(2)
	}
	speed, err := units.ParseBitRate(*speedStr)
	if err != nil {
		fatal(err)
	}
	spec, err := device.Spec(*dutName)
	if err != nil {
		fatal(err)
	}
	dut, err := device.New(spec, "dut", *seed)
	if err != nil {
		fatal(err)
	}
	m := meter.New(*seed + 1)
	if err := m.Attach(0, dut); err != nil {
		fatal(err)
	}
	orch, err := labbench.New(dut, m, labbench.Config{
		Transceiver: model.TransceiverType(*trx),
		Speed:       speed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Deriving %s / %s @ %s (%d port pairs)...\n", *dutName, *trx, speed, spec.NumPorts/2)
	res, err := orch.Run()
	if err != nil {
		fatal(err)
	}
	p := res.Profile
	u := res.Uncertainty
	fmt.Printf("\nDerived model for %s (± is the 95%% CI where the term is regression-derived):\n", *dutName)
	fmt.Printf("  Pbase   = %8.2f W\n", res.Model.PBase.Watts())
	fmt.Printf("  Pport   = %8.3f W  ± %.3f\n", p.PPort.Watts(), u.PPort.Watts())
	fmt.Printf("  Ptrx,in = %8.3f W\n", p.PTrxIn.Watts())
	fmt.Printf("  Ptrx,up = %8.3f W  ± %.3f\n", p.PTrxUp.Watts(), u.PTrxUp.Watts())
	fmt.Printf("  Ebit    = %8.2f pJ ± %.2f\n", p.EBit.Picojoules(), u.EBit.Picojoules())
	fmt.Printf("  Epkt    = %8.2f nJ ± %.2f\n", p.EPkt.Nanojoules(), u.EPkt.Nanojoules())
	fmt.Printf("  Poffset = %8.3f W\n", p.POffset.Watts())
	fmt.Printf("\nRegression diagnostics:\n")
	fmt.Printf("  port sweep: %s\n", res.Report.PortFit)
	fmt.Printf("  trx sweep : %s\n", res.Report.TrxFit)
	fmt.Printf("  energy fit: %s\n", res.Report.EnergyFit)
	fmt.Printf("  weakest R²: %.4f\n", res.Report.FitQuality())
	if err := res.Model.Validate(); err != nil {
		fmt.Printf("  validation: %v\n", err)
	} else {
		fmt.Printf("  validation: ok\n")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netpowerbench:", err)
	os.Exit(1)
}
