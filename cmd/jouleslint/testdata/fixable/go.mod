module example.com/fixable

go 1.22
