// Package telemetry is the minimal registry surface the metricname
// analyzer matches on; the fixable module seeds misnamed registrations
// against it for the -fix round-trip test.
package telemetry

// Registry registers metrics.
type Registry struct{}

// Counter is a metric handle.
type Counter struct{}

// Gauge is a metric handle.
type Gauge struct{}

// Default returns the process registry.
func Default() *Registry { return &Registry{} }

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }
