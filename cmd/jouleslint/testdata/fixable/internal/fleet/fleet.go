// Package fleet seeds mechanically fixable metricname violations: a
// counter without its _total suffix and a camelCase gauge. jouleslint
// -fix must rewrite both literals and leave a clean, gofmt-stable tree.
package fleet

import "example.com/fixable/internal/telemetry"

var (
	runs    = telemetry.Default().Counter("fleet_runs", "fleet replays started")
	pending = telemetry.Default().Gauge("fleetPendingShards", "shards awaiting their fold turn")
)
