// Package ispnet seeds one determinism violation for the multichecker
// smoke test: jouleslint must exit 1 over this module.
package ispnet

import "time"

// Stamp reads the wall clock inside a simulation-scoped package.
func Stamp() time.Time {
	return time.Now()
}
