module example.com/violating

go 1.22
