// Package clean holds nothing any analyzer objects to: jouleslint must
// exit 0 over this module.
package clean

// Add is as deterministic as it gets.
func Add(a, b int) int { return a + b }
