// Command jouleslint is the multichecker for the repository's custom
// static analyzers: the machine-checked simulation, locking,
// wire-protocol, telemetry-naming, and unit-dimension invariants.
//
// Usage:
//
//	jouleslint [-analyzers a,b] [-list] [packages...]
//
// With no packages it checks ./... . It exits 1 when any finding is
// reported, 2 on usage or load errors, and prints findings as
//
//	path/file.go:12:3: [deadline] Read on a conn without a deadline: ...
//
// Suppress an individual finding with a trailing
// //jouleslint:ignore <analyzer> -- <reason> comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fantasticjoules/internal/lint"
	"fantasticjoules/internal/lint/analysis"
	"fantasticjoules/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("jouleslint", flag.ContinueOnError)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	dir := fs.String("C", "", "change to this directory before loading packages")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(loader.Config{Dir: *dir}, analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "jouleslint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// firstLine returns the summary line of an analyzer doc.
func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}

// Interface assertion: every registered analyzer must carry a name and a
// Run function; catching a half-registered analyzer here beats a nil
// dereference mid-run.
var _ = func() []*analysis.Analyzer {
	for _, a := range lint.Analyzers() {
		if a.Name == "" || a.Run == nil {
			panic("jouleslint: misregistered analyzer")
		}
	}
	return nil
}()
