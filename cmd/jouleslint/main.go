// Command jouleslint is the multichecker for the repository's custom
// static analyzers: the machine-checked simulation, locking,
// wire-protocol, telemetry-naming, and unit-dimension invariants.
//
// Usage:
//
//	jouleslint [-analyzers a,b] [-list] [-fix] [-json] [-time] [packages...]
//
// With no packages it checks ./... . It exits 1 when any finding is
// reported, 2 on usage or load errors, and prints findings as
//
//	path/file.go:12:3: [deadline] Read on a conn without a deadline: ...
//
// -fix applies every suggested fix to the files in place (gofmt-clean and
// idempotent: a fixed finding does not re-fire), leaving only the findings
// with no mechanical cure. -json emits the findings as a JSON array for
// tooling; -time prints per-fact and per-analyzer wall times to stderr.
//
// Suppress an individual finding with a trailing
// //jouleslint:ignore <analyzer> -- <reason> comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fantasticjoules/internal/lint"
	"fantasticjoules/internal/lint/analysis"
	"fantasticjoules/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("jouleslint", flag.ContinueOnError)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	dir := fs.String("C", "", "change to this directory before loading packages")
	fix := fs.Bool("fix", false, "apply suggested fixes in place; only unfixable findings fail the run")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array instead of plain lines")
	timing := fs.Bool("time", false, "print per-fact and per-analyzer wall times to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, stats, err := lint.RunWithStats(loader.Config{Dir: *dir}, analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *timing {
		for _, s := range stats {
			fmt.Fprintf(os.Stderr, "%-24s %v\n", s.Name, s.Elapsed)
		}
	}
	if *fix {
		applied, remaining, err := applyFixes(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "jouleslint: applied %d fix(es)\n", applied)
		}
		findings = remaining
	}
	if *jsonOut {
		if err := printJSON(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "jouleslint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the -json wire shape of one finding.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Fixable    bool   `json:"fixable"`
	FixMessage string `json:"fix_message,omitempty"`
}

// printJSON writes the findings as one indented JSON array on stdout. An
// empty run prints [] so consumers always get valid JSON.
func printJSON(findings []lint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer:   f.Analyzer,
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Column:     f.Pos.Column,
			Message:    f.Message,
			Fixable:    len(f.Fix) > 0,
			FixMessage: f.FixMessage,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// firstLine returns the summary line of an analyzer doc.
func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}

// Interface assertion: every registered analyzer must carry a name and a
// Run function; catching a half-registered analyzer here beats a nil
// dereference mid-run.
var _ = func() []*analysis.Analyzer {
	for _, a := range lint.Analyzers() {
		if a.Name == "" || a.Run == nil {
			panic("jouleslint: misregistered analyzer")
		}
	}
	return nil
}()
