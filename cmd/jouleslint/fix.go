package main

import (
	"fmt"
	"go/format"
	"os"
	"sort"

	"fantasticjoules/internal/lint"
)

// applyFixes applies every finding's resolved suggested-fix edits to the
// files on disk and returns the findings that remain: those with no
// mechanical fix, plus any whose edits overlapped an already-applied fix
// (a re-run picks those up — the applier never guesses about conflicting
// rewrites). Rewritten files are gofmt-formatted before writing, so a
// clean tree stays clean byte-for-byte and the whole operation is
// idempotent: fixed findings do not re-fire.
func applyFixes(findings []lint.Finding) (applied int, remaining []lint.Finding, err error) {
	type span struct{ start, end int }
	accepted := make(map[string][]span)
	overlaps := func(fe lint.FixEdit) bool {
		for _, s := range accepted[fe.Filename] {
			if fe.Start < s.end && s.start < fe.End {
				return true
			}
		}
		return false
	}

	edits := make(map[string][]lint.FixEdit)
	for _, f := range findings {
		if len(f.Fix) == 0 {
			remaining = append(remaining, f)
			continue
		}
		conflict := false
		for _, fe := range f.Fix {
			if overlaps(fe) {
				conflict = true
				break
			}
		}
		if conflict {
			remaining = append(remaining, f)
			continue
		}
		for _, fe := range f.Fix {
			accepted[fe.Filename] = append(accepted[fe.Filename], span{fe.Start, fe.End})
			edits[fe.Filename] = append(edits[fe.Filename], fe)
		}
		applied++
	}

	files := make([]string, 0, len(edits))
	for name := range edits {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		if err := rewriteFile(name, edits[name]); err != nil {
			return applied, remaining, err
		}
	}
	return applied, remaining, nil
}

// rewriteFile splices the edits into one file, back to front so earlier
// offsets stay valid, formats the result, and writes it back under the
// file's original permissions.
func rewriteFile(name string, edits []lint.FixEdit) error {
	src, err := os.ReadFile(name)
	if err != nil {
		return err
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
	for _, e := range edits {
		if e.Start < 0 || e.End > len(src) || e.Start > e.End {
			return fmt.Errorf("jouleslint: fix edit out of range in %s: [%d,%d) of %d bytes", name, e.Start, e.End, len(src))
		}
		src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
	}
	formatted, err := format.Source(src)
	if err != nil {
		return fmt.Errorf("jouleslint: fixed %s does not parse: %v", name, err)
	}
	mode := os.FileMode(0o644)
	if st, err := os.Stat(name); err == nil {
		mode = st.Mode().Perm()
	}
	return os.WriteFile(name, formatted, mode)
}
