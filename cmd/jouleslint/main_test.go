package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExitsZero(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("jouleslint -list = %d, want 0", got)
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	if got := run([]string{"-analyzers", "nope"}); got != 2 {
		t.Fatalf("jouleslint -analyzers nope = %d, want 2", got)
	}
}

// TestSeededViolation is the end-to-end gate check: a module with one
// planted determinism violation must fail the multichecker.
func TestSeededViolation(t *testing.T) {
	if got := run([]string{"-C", "testdata/violating", "./..."}); got != 1 {
		t.Fatalf("jouleslint over seeded violation = %d, want 1", got)
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	if got := run([]string{"-C", "testdata/clean", "./..."}); got != 0 {
		t.Fatalf("jouleslint over clean module = %d, want 0", got)
	}
}

// copyTree copies a testdata module into dst so -fix can rewrite it.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
}

// snapshotGoFiles returns path->contents for every .go file under dir.
func snapshotGoFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[path] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("snapshot %s: %v", dir, err)
	}
	return out
}

// TestFixRewritesAndConverges drives -fix end to end: the seeded
// fixable module must come back clean in one pass, the rewritten
// literals must carry the corrected names, and a second -fix pass must
// be a byte-for-byte no-op (idempotence, the property CI enforces with
// git diff --exit-code).
func TestFixRewritesAndConverges(t *testing.T) {
	tmp := t.TempDir()
	copyTree(t, filepath.Join("testdata", "fixable"), tmp)

	if got := run([]string{"-C", tmp, "-fix", "./..."}); got != 0 {
		t.Fatalf("jouleslint -fix over fixable module = %d, want 0 (all findings fixable)", got)
	}
	fixed := snapshotGoFiles(t, tmp)
	joined := ""
	for _, content := range fixed {
		joined += content
	}
	for _, want := range []string{`"fleet_runs_total"`, `"fleet_pending_shards"`} {
		if !strings.Contains(joined, want) {
			t.Errorf("after -fix, no file contains %s", want)
		}
	}
	for _, stale := range []string{`"fleet_runs"`, `"fleetPendingShards"`} {
		if strings.Contains(joined, stale) {
			t.Errorf("after -fix, stale literal %s survives", stale)
		}
	}

	if got := run([]string{"-C", tmp, "-fix", "./..."}); got != 0 {
		t.Fatalf("second jouleslint -fix = %d, want 0", got)
	}
	again := snapshotGoFiles(t, tmp)
	for path, content := range fixed {
		if again[path] != content {
			t.Errorf("-fix is not idempotent: %s changed on the second pass", path)
		}
	}
}

// TestJSONOutput checks the -json stream: valid JSON, one entry per
// finding, fixability flagged.
func TestJSONOutput(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run([]string{"-C", "testdata/fixable", "-json", "./..."})
	w.Close()
	os.Stdout = old
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("jouleslint -json over fixable module = %d, want 1", code)
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
		Fixable  bool   `json:"fixable"`
	}
	if err := json.Unmarshal(data, &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, data)
	}
	if len(findings) != 2 {
		t.Fatalf("-json reported %d findings, want 2:\n%s", len(findings), data)
	}
	for _, f := range findings {
		if f.Analyzer != "metricname" || !f.Fixable || f.File == "" || f.Line == 0 {
			t.Errorf("malformed finding in -json output: %+v", f)
		}
	}
}
