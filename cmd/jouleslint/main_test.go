package main

import "testing"

func TestListExitsZero(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("jouleslint -list = %d, want 0", got)
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	if got := run([]string{"-analyzers", "nope"}); got != 2 {
		t.Fatalf("jouleslint -analyzers nope = %d, want 2", got)
	}
}

// TestSeededViolation is the end-to-end gate check: a module with one
// planted determinism violation must fail the multichecker.
func TestSeededViolation(t *testing.T) {
	if got := run([]string{"-C", "testdata/violating", "./..."}); got != 1 {
		t.Fatalf("jouleslint over seeded violation = %d, want 1", got)
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	if got := run([]string{"-C", "testdata/clean", "./..."}); got != 0 {
		t.Fatalf("jouleslint over clean module = %d, want 0", got)
	}
}
