#!/usr/bin/env bash
# doccheck.sh — documentation gate for CI.
#
# Enforces:
#   1. `go vet ./...` is clean.
#   2. Every internal package carries a package-level doc comment
#      (`// Package <name> ...`) in exactly the file layout gofmt expects.
#   3. In the fully documented packages (internal/telemetry,
#      internal/ispnet, internal/experiments), every exported top-level
#      declaration is immediately preceded by a doc comment.
#
# The export check is a lexical heuristic (top-level `func F`, `type T`,
# `var V`, `const C`, and exported methods), which matches this
# repository's style: grouped const/var blocks document the group.
set -u
cd "$(dirname "$0")/.."

fail=0

echo "doccheck: go vet"
if ! go vet ./...; then
    fail=1
fi

# The repo's own analyzers ride along with vet: the documented invariants
# below (package docs, export docs) are only half the contract — the
# machine-checked half lives in cmd/jouleslint.
echo "doccheck: jouleslint"
if ! go run ./cmd/jouleslint ./...; then
    fail=1
fi

echo "doccheck: package doc comments"
for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -l -q "^// Package $pkg " "$dir"*.go 2>/dev/null; then
        echo "doccheck: package $pkg has no '// Package $pkg ...' doc comment" >&2
        fail=1
    fi
done

echo "doccheck: exported symbol docs"
for dir in internal/telemetry internal/ispnet internal/experiments; do
    for f in "$dir"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        awk -v file="$f" '
            /^(func|type|var|const) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
                if (prev !~ /^\/\//) {
                    printf "doccheck: %s:%d: undocumented export: %s\n", file, NR, $0
                    found = 1
                }
            }
            { prev = $0 }
            END { exit found }
        ' "$f" >&2 || fail=1
    done
done

if [ "$fail" -ne 0 ]; then
    echo "doccheck: FAIL" >&2
    exit 1
fi
echo "doccheck: ok"
