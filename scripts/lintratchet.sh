#!/usr/bin/env sh
# lintratchet.sh — suppression-budget ratchet for jouleslint.
#
# Counts the //jouleslint:ignore <analyzer> directives in the tree
# (testdata trees excluded — golden suites deliberately exercise the
# suppression syntax) and compares each analyzer's count against the
# checked-in budget in lint_budget.txt. A count above budget fails: new
# suppressions need a reviewed budget bump in the same diff. A count
# below budget is reported so the budget can be tightened.
#
# Usage: scripts/lintratchet.sh
set -u
cd "$(dirname "$0")/.."

budget_file="lint_budget.txt"
if [ ! -f "$budget_file" ]; then
    echo "lintratchet: missing $budget_file" >&2
    exit 2
fi

# count_ignores <analyzer> — real directives only: the leading-comment
# and trailing-comment forms, but not directives quoted inside another
# comment (doc examples render as "//\t//jouleslint:ignore ...").
count_ignores() {
    grep -rn --include='*.go' "//jouleslint:ignore $1 " . \
        | grep -v '/testdata/' \
        | grep -cv ':[0-9]*:[[:space:]]*//.*//jouleslint:ignore' || true
}

fail=0
while read -r analyzer budget; do
    case "$analyzer" in
        ''|'#'*) continue ;;
    esac
    count=$(count_ignores "$analyzer")
    if [ "$count" -gt "$budget" ]; then
        echo "lintratchet: $analyzer has $count ignores, budget is $budget — fix a suppression or bump lint_budget.txt in a reviewed diff" >&2
        fail=1
    elif [ "$count" -lt "$budget" ]; then
        echo "lintratchet: $analyzer has $count ignores, budget is $budget — tighten the budget"
    else
        echo "lintratchet: $analyzer $count/$budget"
    fi
done < "$budget_file"

# An ignore naming no registered analyzer suppresses nothing; catch the
# typo here rather than letting the finding and the directive coexist.
known=$(go run ./cmd/jouleslint -list | awk '{printf "%s|", $1}' | sed 's/|$//')
unknown=$(grep -rn --include='*.go' '//jouleslint:ignore [a-z]' . \
    | grep -v '/testdata/' \
    | grep -v ':[0-9]*:[[:space:]]*//.*//jouleslint:ignore' \
    | grep -Ev "//jouleslint:ignore ($known) " || true)
if [ -n "$unknown" ]; then
    echo "lintratchet: directives naming unknown analyzers:" >&2
    echo "$unknown" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "lintratchet: FAIL" >&2
    exit 1
fi
echo "lintratchet: ok"
