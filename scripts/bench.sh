#!/usr/bin/env sh
# bench.sh runs the full benchmark suite once and records every benchmark's
# ns/op, B/op, and allocs/op in BENCH_<label>.json, so the perf trajectory
# is tracked across PRs.
#
# Usage:
#   scripts/bench.sh [label] [extra go test args...]
#
# Without a label the next free integer is used (BENCH_0.json,
# BENCH_1.json, ...). Extra args are passed to `go test`, e.g.
# `scripts/bench.sh pr12 -benchtime=3x`.
set -eu
cd "$(dirname "$0")/.."

label="${1:-}"
[ "$#" -gt 0 ] && shift
if [ -z "$label" ]; then
    n=0
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    label=$n
fi
out="BENCH_${label}.json"

go test -run '^$' -bench . -benchtime=1x -benchmem "$@" ./... | tee /dev/stderr | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    entry = sprintf("  %c%s%c: {\"ns_per_op\": %s", 34, name, 34, ns)
    if (bytes != "")  entry = entry sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") entry = entry sprintf(", \"allocs_per_op\": %s", allocs)
    entry = entry "}"
    entries[n_entries++] = entry
}
END {
    print "{"
    for (i = 0; i < n_entries; i++)
        printf "%s%s\n", entries[i], (i < n_entries - 1 ? "," : "")
    print "}"
}' > "$out"

echo "wrote $out" >&2
