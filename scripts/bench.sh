#!/usr/bin/env sh
# bench.sh runs the full benchmark suite and records every benchmark's
# ns/op, B/op, and allocs/op in BENCH_<label>.json, so the perf trajectory
# is tracked across PRs.
#
# Usage:
#   scripts/bench.sh [label] [extra go test args...]
#
# Without a label the next free integer is used (BENCH_0.json,
# BENCH_1.json, ...). Extra args are passed to `go test`, e.g.
# `scripts/bench.sh pr12 -benchtime=3x`.
#
# The suite is run BENCH_RUNS times (default 3) in separate `go test`
# processes and the per-benchmark minimum is recorded: a single
# -benchtime=1x iteration of a 100 ms benchmark swings tens of percent
# with scheduler noise on a shared box, and the minimum is the standard
# noise-robust estimate of a benchmark's true cost. Separate processes —
# not -count — so suite-cached benchmarks keep their cold-first-run
# semantics and the numbers stay comparable across recordings.
#
# When a prior BENCH_<n>.json exists, a benchstat-style delta table
# (time/op, B/op, allocs/op with percent change per benchmark) is printed
# against the *latest* prior recording — regressions are judged against
# where the tree actually is, not against a baseline many PRs stale — and
# the run fails (exit 1) when any benchmark regressed by more than the
# gate: time/op beyond BENCH_GATE_PCT percent (default 20), or allocs/op
# beyond BENCH_GATE_ALLOC_PCT percent (default 20). That failure is what
# lets the bench-hotpath CI job actually gate. Small baselines are
# reported but not judged — time/op under BENCH_GATE_FLOOR_NS (default
# 1e6 ns) is scheduler noise at -benchtime=1x, and allocs/op under
# BENCH_GATE_ALLOC_FLOOR (default 100) flips on incidental one-off
# allocations rather than a hot-path change.
set -eu
cd "$(dirname "$0")/.."

# Preflight: the benchmarks time code that must first pass the repo's own
# static analyzers — a run over lint-dirty code is not worth recording.
scripts/lint.sh

label="${1:-}"
[ "$#" -gt 0 ] && shift
if [ -z "$label" ]; then
    n=0
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    label=$n
fi
out="BENCH_${label}.json"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
runs="${BENCH_RUNS:-3}"
r=0
while [ "$r" -lt "$runs" ]; do
    echo "bench: run $((r + 1))/$runs" >&2
    go test -run '^$' -bench . -benchtime=1x -benchmem "$@" ./... | tee /dev/stderr >> "$raw"
    r=$((r + 1))
done

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; jps = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "joules/s") jps = $(i - 1)
    }
    if (ns == "") next
    if (!(name in seen)) {
        seen[name] = 1
        names[n_names++] = name
        min_ns[name] = ns; min_by[name] = bytes; min_al[name] = allocs
        max_jps[name] = jps
        next
    }
    if (ns + 0 < min_ns[name] + 0) min_ns[name] = ns
    if (bytes != "" && (min_by[name] == "" || bytes + 0 < min_by[name] + 0)) min_by[name] = bytes
    if (allocs != "" && (min_al[name] == "" || allocs + 0 < min_al[name] + 0)) min_al[name] = allocs
    # joules/s is a throughput: keep the best (max) run, the noise-robust
    # counterpart of the time/op minimum. Recorded, never gated.
    if (jps != "" && (max_jps[name] == "" || jps + 0 > max_jps[name] + 0)) max_jps[name] = jps
}
END {
    print "{"
    for (i = 0; i < n_names; i++) {
        name = names[i]
        entry = sprintf("  %c%s%c: {\"ns_per_op\": %s", 34, name, 34, min_ns[name])
        if (min_by[name] != "") entry = entry sprintf(", \"bytes_per_op\": %s", min_by[name])
        if (min_al[name] != "") entry = entry sprintf(", \"allocs_per_op\": %s", min_al[name])
        if (max_jps[name] != "") entry = entry sprintf(", \"joules_per_wallclock_s\": %s", max_jps[name])
        entry = entry "}"
        printf "%s%s\n", entry, (i < n_names - 1 ? "," : "")
    }
    print "}"
}' "$raw" > "$out"

echo "wrote $out" >&2

# Benchstat-style comparison against the most recent prior recording: the
# highest-numbered BENCH_<n>.json that is not the file just written (so a
# re-run of an old label still compares forward). One section per metric,
# each row old -> new with the percent change. Pure awk on the JSON we
# just wrote (one "name": {...} entry per line), so no extra tools.
base=""
n=0
while [ -e "BENCH_${n}.json" ]; do
    [ "BENCH_${n}.json" != "$out" ] && base="BENCH_${n}.json"
    n=$((n + 1))
done
if [ -n "$base" ]; then
    awk -v base="$base" -v gate="${BENCH_GATE_PCT:-20}" -v floor="${BENCH_GATE_FLOOR_NS:-1000000}" \
        -v agate="${BENCH_GATE_ALLOC_PCT:-20}" -v afloor="${BENCH_GATE_ALLOC_FLOOR:-100}" '
    function metric(s, key,   m) {
        if (match(s, "\"" key "\": [0-9.eE+-]+")) {
            m = substr(s, RSTART, RLENGTH)
            sub(/.*: /, "", m)
            return m
        }
        return ""
    }
    /^  "/ {
        split($0, q, "\"")
        name = q[2]
        if (FILENAME == base) {
            in_base[name] = 1
            b_ns[name] = metric($0, "ns_per_op")
            b_by[name] = metric($0, "bytes_per_op")
            b_al[name] = metric($0, "allocs_per_op")
        } else if (!(name in seen)) {
            seen[name] = 1
            names[n_names++] = name
            n_ns[name] = metric($0, "ns_per_op")
            n_by[name] = metric($0, "bytes_per_op")
            n_al[name] = metric($0, "allocs_per_op")
        }
    }
    function section(title, bv, nv,   i, name, ov, cv, delta) {
        printf "\n%-44s %15s %15s %9s\n", title, "old", "new", "delta"
        for (i = 0; i < n_names; i++) {
            name = names[i]
            if (!(name in in_base)) continue
            ov = bv[name]; cv = nv[name]
            if (ov == "" || cv == "") continue
            if (ov + 0 == 0)
                delta = (cv + 0 == 0) ? "+0.0%" : "n/a"
            else
                delta = sprintf("%+.1f%%", (cv - ov) / ov * 100)
            printf "%-44s %15.0f %15.0f %9s\n", name, ov, cv, delta
        }
    }
    END {
        printf "\ndelta vs %s:\n", base
        section("time/op (ns)", b_ns, n_ns)
        section("alloc/op (B)", b_by, n_by)
        section("allocs/op", b_al, n_al)
        # Regression gates: fail on any time/op or allocs/op increase
        # beyond its threshold. Only benchmarks present in both files and
        # above the metric floor are judged.
        bad = 0
        for (i = 0; i < n_names; i++) {
            name = names[i]
            if (!(name in in_base)) continue
            ov = b_ns[name]; cv = n_ns[name]
            if (ov != "" && cv != "" && ov + 0 >= floor + 0) {
                pct = (cv - ov) / ov * 100
                if (pct > gate + 0) {
                    printf "bench: %s time/op regressed %+.1f%% (gate %s%%)\n", name, pct, gate
                    bad = 1
                }
            }
            ov = b_al[name]; cv = n_al[name]
            if (ov != "" && cv != "" && ov + 0 >= afloor + 0) {
                pct = (cv - ov) / ov * 100
                if (pct > agate + 0) {
                    printf "bench: %s allocs/op regressed %+.1f%% (gate %s%%)\n", name, pct, agate
                    bad = 1
                }
            }
        }
        exit bad
    }' "$base" "$out" >&2 || {
        echo "bench: FAIL — regression beyond gate (time/op ${BENCH_GATE_PCT:-20}%, allocs/op ${BENCH_GATE_ALLOC_PCT:-20}%) vs $base" >&2
        exit 1
    }
fi
