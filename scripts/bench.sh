#!/usr/bin/env sh
# bench.sh runs the full benchmark suite once and records every benchmark's
# ns/op, B/op, and allocs/op in BENCH_<label>.json, so the perf trajectory
# is tracked across PRs.
#
# Usage:
#   scripts/bench.sh [label] [extra go test args...]
#
# Without a label the next free integer is used (BENCH_0.json,
# BENCH_1.json, ...). Extra args are passed to `go test`, e.g.
# `scripts/bench.sh pr12 -benchtime=3x`.
#
# When the output is not BENCH_0.json itself and a BENCH_0.json baseline
# exists, a benchstat-style delta table (time/op, B/op, allocs/op with
# percent change per benchmark) is printed against that baseline, and the
# run fails (exit 1) when any benchmark's time/op regressed by more than
# BENCH_GATE_PCT percent (default 20) — that failure is what lets the
# bench-hotpath CI job actually gate. Benchmarks whose baseline time/op
# is under BENCH_GATE_FLOOR_NS (default 1e6 ns) are reported but not
# judged: a single -benchtime=1x iteration of a microsecond-scale
# benchmark is scheduler noise, not signal.
set -eu
cd "$(dirname "$0")/.."

# Preflight: the benchmarks time code that must first pass the repo's own
# static analyzers — a run over lint-dirty code is not worth recording.
scripts/lint.sh

label="${1:-}"
[ "$#" -gt 0 ] && shift
if [ -z "$label" ]; then
    n=0
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    label=$n
fi
out="BENCH_${label}.json"

go test -run '^$' -bench . -benchtime=1x -benchmem "$@" ./... | tee /dev/stderr | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    entry = sprintf("  %c%s%c: {\"ns_per_op\": %s", 34, name, 34, ns)
    if (bytes != "")  entry = entry sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") entry = entry sprintf(", \"allocs_per_op\": %s", allocs)
    entry = entry "}"
    entries[n_entries++] = entry
}
END {
    print "{"
    for (i = 0; i < n_entries; i++)
        printf "%s%s\n", entries[i], (i < n_entries - 1 ? "," : "")
    print "}"
}' > "$out"

echo "wrote $out" >&2

# Benchstat-style comparison against the BENCH_0.json baseline: one section
# per metric, each row old -> new with the percent change. Pure awk on the
# JSON we just wrote (one "name": {...} entry per line), so no extra tools.
base="BENCH_0.json"
if [ -e "$base" ] && [ "$out" != "$base" ]; then
    awk -v base="$base" -v gate="${BENCH_GATE_PCT:-20}" -v floor="${BENCH_GATE_FLOOR_NS:-1000000}" '
    function metric(s, key,   m) {
        if (match(s, "\"" key "\": [0-9.eE+-]+")) {
            m = substr(s, RSTART, RLENGTH)
            sub(/.*: /, "", m)
            return m
        }
        return ""
    }
    /^  "/ {
        split($0, q, "\"")
        name = q[2]
        if (FILENAME == base) {
            in_base[name] = 1
            b_ns[name] = metric($0, "ns_per_op")
            b_by[name] = metric($0, "bytes_per_op")
            b_al[name] = metric($0, "allocs_per_op")
        } else if (!(name in seen)) {
            seen[name] = 1
            names[n_names++] = name
            n_ns[name] = metric($0, "ns_per_op")
            n_by[name] = metric($0, "bytes_per_op")
            n_al[name] = metric($0, "allocs_per_op")
        }
    }
    function section(title, bv, nv,   i, name, ov, cv, delta) {
        printf "\n%-44s %15s %15s %9s\n", title, "old", "new", "delta"
        for (i = 0; i < n_names; i++) {
            name = names[i]
            if (!(name in in_base)) continue
            ov = bv[name]; cv = nv[name]
            if (ov == "" || cv == "") continue
            if (ov + 0 == 0)
                delta = (cv + 0 == 0) ? "+0.0%" : "n/a"
            else
                delta = sprintf("%+.1f%%", (cv - ov) / ov * 100)
            printf "%-44s %15.0f %15.0f %9s\n", name, ov, cv, delta
        }
    }
    END {
        printf "\ndelta vs %s:\n", base
        section("time/op (ns)", b_ns, n_ns)
        section("alloc/op (B)", b_by, n_by)
        section("allocs/op", b_al, n_al)
        # Regression gate: fail on any time/op increase beyond the
        # threshold. Only benchmarks present in both files and above the
        # baseline-time floor are judged.
        bad = 0
        for (i = 0; i < n_names; i++) {
            name = names[i]
            if (!(name in in_base)) continue
            ov = b_ns[name]; cv = n_ns[name]
            if (ov == "" || cv == "" || ov + 0 < floor + 0) continue
            pct = (cv - ov) / ov * 100
            if (pct > gate + 0) {
                printf "bench: %s time/op regressed %+.1f%% (gate %s%%)\n", name, pct, gate
                bad = 1
            }
        }
        exit bad
    }' "$base" "$out" >&2 || {
        echo "bench: FAIL — time/op regression beyond ${BENCH_GATE_PCT:-20}% vs $base" >&2
        exit 1
    }
fi
