#!/usr/bin/env bash
# lint.sh — jouleslint gate for CI.
#
# Runs the repository's custom static-analyzer suite (cmd/jouleslint)
# over every package: determinism of the simulation packages, the
# *Locked/BeginStep lock discipline, deadline coverage on the collection
# plane's conns, telemetry metric naming, unit-dimension safety, and the
# interprocedural trio — hot-path allocation discipline, scratch-arena
# escapes, and epoch-bump coverage. Per-fact and per-analyzer wall times
# go to stderr (-time) so a slow analyzer is visible in the CI log, not
# just as a slower total.
#
# jouleslint exits 1 on findings and 2 on load errors; both fail the
# gate. Individual findings are suppressed in the source with
# `//jouleslint:ignore <analyzer> -- <reason>`, never here — and
# scripts/lintratchet.sh budgets those suppressions.
set -u
cd "$(dirname "$0")/.."

echo "lint: jouleslint -time ./..."
if ! go run ./cmd/jouleslint -time ./...; then
    echo "lint: FAIL" >&2
    exit 1
fi
echo "lint: ok"
