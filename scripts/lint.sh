#!/usr/bin/env bash
# lint.sh — jouleslint gate for CI.
#
# Runs the repository's custom static-analyzer suite (cmd/jouleslint)
# over every package: determinism of the simulation packages, the
# *Locked/BeginStep lock discipline, deadline coverage on the collection
# plane's conns, telemetry metric naming, and unit-dimension safety.
#
# jouleslint exits 1 on findings and 2 on load errors; both fail the
# gate. Individual findings are suppressed in the source with
# `//jouleslint:ignore <analyzer> -- <reason>`, never here.
set -u
cd "$(dirname "$0")/.."

echo "lint: jouleslint ./..."
if ! go run ./cmd/jouleslint ./...; then
    echo "lint: FAIL" >&2
    exit 1
fi
echo "lint: ok"
