package fantasticjoules

import (
	"testing"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

func TestPublishedModelFacade(t *testing.T) {
	names := PublishedModels()
	if len(names) != 8 {
		t.Fatalf("published models = %d, want 8", len(names))
	}
	m, err := PublishedModel("8201-32FH")
	if err != nil {
		t.Fatal(err)
	}
	power, err := m.PredictPower(model.Config{Interfaces: []model.Interface{{
		Profile: model.ProfileKey{
			Port:        model.QSFP,
			Transceiver: model.PassiveDAC,
			Speed:       100 * units.GigabitPerSecond,
		},
		TransceiverPresent: true, AdminUp: true, OperUp: true,
		Bits: 40 * units.GigabitPerSecond, Packets: 4e6,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if power < m.PBase {
		t.Errorf("predicted %v below base %v", power, m.PBase)
	}
	if _, err := PublishedModel("nope"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestRouterModelsFacade(t *testing.T) {
	if len(RouterModels()) < 10 {
		t.Errorf("catalog = %v", RouterModels())
	}
}

func TestDeriveModelFacade(t *testing.T) {
	res, err := DeriveModel("Wedge100BF-32X", model.PassiveDAC, 100*units.GigabitPerSecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.PBase <= 0 || res.Report.FitQuality() < 0.9 {
		t.Errorf("derivation: pbase %v quality %v", res.Model.PBase, res.Report.FitQuality())
	}
	if _, err := DeriveModel("ghost", model.PassiveDAC, 100*units.GigabitPerSecond, 7); err == nil {
		t.Error("unknown router must error")
	}
}

func TestSimulateISPFacade(t *testing.T) {
	ds, err := SimulateISP(ispnet.Config{
		Seed:          1,
		Duration:      24 * time.Hour,
		SNMPStep:      30 * time.Minute,
		AutopowerStep: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalPower.Len() == 0 {
		t.Error("empty power trace")
	}
}

func TestNewExperimentSuiteFacade(t *testing.T) {
	s := NewExperimentSuite(1)
	if rows := s.Table5(); len(rows) != 4 {
		t.Errorf("table5 = %d rows", len(rows))
	}
}
