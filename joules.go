// Package fantasticjoules is a library-scale reproduction of "Fantastic
// Joules and Where to Find Them: Modeling and Optimizing Router Energy
// Demand" (IMC '25): router power models, the lab methodology that derives
// them, the measurement systems that validate them, and the energy-saving
// analyses built on top.
//
// The package is a facade over the implementation packages:
//
//   - Power models (§4): the additive router power model with per-interface
//     profiles, plus the paper's eight published models (Tables 2 and 6).
//   - NetPowerBench (§5): derive a model for any simulated router with the
//     five-experiment methodology (Base/Idle/Port/Trx/Snake).
//   - Autopower (§6.1) and SNMP: the collection systems, runnable over
//     loopback.
//   - A synthetic Tier-2 ISP (107 routers) calibrated to the paper's
//     dataset, and an experiment suite regenerating every table and figure.
//
// # Quick start
//
//	m, _ := fantasticjoules.PublishedModel("8201-32FH")
//	power, _ := m.PredictPower(model.Config{Interfaces: []model.Interface{{
//	    Profile: model.ProfileKey{
//	        Port:        model.QSFP,
//	        Transceiver: model.PassiveDAC,
//	        Speed:       100 * units.GigabitPerSecond,
//	    },
//	    TransceiverPresent: true, AdminUp: true, OperUp: true,
//	    Bits: 40 * units.GigabitPerSecond, Packets: 4e6,
//	}}})
//
// See the examples directory for runnable programs and cmd/joules for the
// CLI that regenerates the paper's tables and figures.
package fantasticjoules

import (
	"fantasticjoules/internal/device"
	"fantasticjoules/internal/experiments"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/labbench"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

// PublishedModel returns the paper's power model for a router (Tables 2
// and 6 of the paper). See PublishedModels for the available names.
func PublishedModel(router string) (*model.Model, error) {
	return model.Published(router)
}

// PublishedModels lists the routers with published power models.
func PublishedModels() []string {
	return model.PublishedModels()
}

// RouterModels lists the simulated router hardware models available to
// DeriveModel and the fleet simulation.
func RouterModels() []string {
	return device.CatalogNames()
}

// DeriveModel runs the full §5 lab methodology against a simulated router
// of the named hardware model and derives the power profile for one
// transceiver/speed combination. The returned result carries the model,
// the derived profile, and the regression diagnostics.
func DeriveModel(router string, trx model.TransceiverType, speed units.BitRate, seed int64) (*labbench.Result, error) {
	spec, err := device.Spec(router)
	if err != nil {
		return nil, err
	}
	dut, err := device.New(spec, "lab-"+router, seed)
	if err != nil {
		return nil, err
	}
	m := meter.New(seed + 1)
	if err := m.Attach(0, dut); err != nil {
		return nil, err
	}
	orch, err := labbench.New(dut, m, labbench.Config{Transceiver: trx, Speed: speed})
	if err != nil {
		return nil, err
	}
	return orch.Run()
}

// SimulateISP builds and runs the synthetic Tier-2 ISP network (107
// routers calibrated to the paper's dataset) and returns its measurement
// dataset: SNMP power traces, Autopower traces, interface counters, PSU
// snapshots, and deployment events.
func SimulateISP(cfg ispnet.Config) (*ispnet.Dataset, error) {
	return ispnet.Simulate(cfg)
}

// NewExperimentSuite returns the experiment suite that regenerates every
// table and figure of the paper; results are cached per suite.
func NewExperimentSuite(seed int64) *experiments.Suite {
	return experiments.New(seed)
}
