package chaos

import (
	"errors"
	"net"
	"sync/atomic"
)

// ErrInjectedReset is the error surfaced by a scheduled connection reset.
// It satisfies the same handling paths as a kernel "connection reset by
// peer": the underlying connection is closed, so every later operation
// fails too.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// Conn wraps a stream connection with the profile's fault schedule. Safe
// for the usual net.Conn concurrency contract (one reader plus one writer
// goroutine, Close from anywhere).
type Conn struct {
	net.Conn
	p Profile
	d *dice
}

// WrapConn wraps c with the profile's stream faults. The extra seed term
// decorrelates multiple connections sharing one profile; pass a
// connection index or any stable discriminator.
func WrapConn(c net.Conn, p Profile, seed int64) *Conn {
	return &Conn{Conn: c, p: p, d: newDice(mixSeed(p.Seed, seed))}
}

// Read applies latency, short reads, resets, and byte flips, then
// delegates.
func (c *Conn) Read(b []byte) (int, error) {
	c.d.sleep(c.p)
	if c.d.roll(c.p.Reset) {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	if len(b) > 1 && c.d.roll(c.p.ShortRead) {
		b = b[:1+c.d.intn(len(b)-1)]
	}
	n, err := c.Conn.Read(b)
	if n > 0 && c.d.roll(c.p.Corrupt) {
		b[c.d.intn(n)] ^= 1 << uint(c.d.intn(8))
	}
	return n, err
}

// Write applies latency, resets (a torn write: a prefix is delivered,
// then the connection dies), byte flips (on a copy — the caller's buffer
// is never modified), and write fragmentation, then delegates.
func (c *Conn) Write(b []byte) (int, error) {
	c.d.sleep(c.p)
	if c.d.roll(c.p.Reset) {
		n := 0
		if len(b) > 1 {
			n, _ = c.Conn.Write(b[:c.d.intn(len(b))])
		}
		c.Conn.Close()
		return n, ErrInjectedReset
	}
	if c.d.roll(c.p.Corrupt) {
		cp := make([]byte, len(b))
		copy(cp, b)
		if len(cp) > 0 {
			cp[c.d.intn(len(cp))] ^= 1 << uint(c.d.intn(8))
		}
		b = cp
	}
	if len(b) > 1 && c.d.roll(c.p.SplitWrite) {
		cut := 1 + c.d.intn(len(b)-1)
		n, err := c.Conn.Write(b[:cut])
		if err != nil {
			return n, err
		}
		c.d.sleep(c.p)
		m, err := c.Conn.Write(b[cut:])
		return n + m, err
	}
	return c.Conn.Write(b)
}

// Listener wraps a net.Listener so every accepted connection carries the
// profile's fault schedule, each with its own per-connection seed.
type Listener struct {
	net.Listener
	p Profile
	n atomic.Int64
}

// WrapListener wraps ln with the profile.
func WrapListener(ln net.Listener, p Profile) *Listener {
	return &Listener{Listener: ln, p: p}
}

// Accept accepts from the underlying listener and wraps the connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.p, l.n.Add(1)), nil
}
