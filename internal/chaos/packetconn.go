package chaos

import (
	"net"
)

// PacketConn wraps a datagram socket with the profile's datagram faults:
// loss, duplication, corruption, and latency. Wrapping an SNMP agent's
// socket subjects both the requests it receives and the responses it
// sends to the schedule, which is how the scenario runner models a lossy
// management network without touching the agent or collector code.
type PacketConn struct {
	net.PacketConn
	p Profile
	d *dice
}

// WrapPacketConn wraps pc with the profile's datagram faults.
func WrapPacketConn(pc net.PacketConn, p Profile, seed int64) *PacketConn {
	return &PacketConn{PacketConn: pc, p: p, d: newDice(mixSeed(p.Seed, seed))}
}

// ReadFrom delegates, invisibly dropping and corrupting inbound
// datagrams. A dropped datagram never returns to the caller — the read
// blocks for the next one, exactly as if the network had eaten it.
func (c *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(b)
		if err != nil {
			return n, addr, err
		}
		if c.d.roll(c.p.Drop) {
			continue
		}
		if n > 0 && c.d.roll(c.p.Corrupt) {
			b[c.d.intn(n)] ^= 1 << uint(c.d.intn(8))
		}
		return n, addr, nil
	}
}

// WriteTo applies latency, then drops, duplicates, or corrupts the
// outbound datagram. A dropped datagram reports success — the sender
// cannot tell, exactly as with a real lossy network.
func (c *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.d.sleep(c.p)
	if c.d.roll(c.p.Drop) {
		return len(b), nil
	}
	if c.d.roll(c.p.Corrupt) {
		cp := make([]byte, len(b))
		copy(cp, b)
		if len(cp) > 0 {
			cp[c.d.intn(len(cp))] ^= 1 << uint(c.d.intn(8))
		}
		b = cp
	}
	if c.d.roll(c.p.Duplicate) {
		if _, err := c.PacketConn.WriteTo(b, addr); err != nil {
			return 0, err
		}
	}
	return c.PacketConn.WriteTo(b, addr)
}
