// Package chaos is a deterministic fault-injection layer for the
// collection plane: seeded wrappers around net.Conn, net.Listener, and
// net.PacketConn that inject the failure modes a measurement substrate
// meets over weeks of unattended operation against flaky hardware —
// latency, fragmented and torn writes, short reads, connection resets,
// byte flips, and dropped/duplicated/corrupted datagrams.
//
// A Profile is a fault schedule: per-operation probabilities and
// magnitudes plus a seed. Every wrapper draws its decisions from its own
// rand.Rand derived from that seed, so a given (profile, connection
// index) pair replays the same fault sequence run after run; only the
// interleaving with goroutine scheduling varies. Faults never violate
// interface contracts — a torn write reports the bytes actually written
// together with an error, exactly as a kernel socket would.
//
// The scenario runners (RunAutopower, RunSNMP) replay the full Autopower
// unit↔server pipeline and the SNMP collector under a profile and check
// the collection-plane invariants: no acked sample lost, spool/ack
// bookkeeping aligned, series timestamps strictly monotonic, polls
// bounded by their retry budget, and no goroutine leaks. The bugs this
// harness originally flushed out — Server.Close wedging on pre-hello
// connections, unbounded frame writes against stalled peers, lockstep
// reconnect storms, silently swallowed meter glitches, and byte flips
// surviving JSON decoding — are fixed in internal/autopower,
// internal/snmp, and internal/meter; the suite in scenario_test.go keeps
// them fixed.
package chaos

import (
	"math/rand"
	"sync"
	"time"
)

// Profile is a deterministic fault schedule. The zero value injects
// nothing; wrappers built from it are transparent. Probabilities are per
// operation (one Read, Write, ReadFrom, or WriteTo) in [0, 1].
type Profile struct {
	// Name labels the profile in reports and test output.
	Name string
	// Seed anchors every random decision; wrappers mix in a per-
	// connection index so concurrent connections draw independent but
	// reproducible streams.
	Seed int64

	// Latency is injected before every operation, plus a uniform extra
	// in [0, LatencyJitter).
	Latency       time.Duration
	LatencyJitter time.Duration

	// Stream faults (Conn / Listener).
	//
	// SplitWrite fragments a Write into two underlying writes,
	// exercising reassembly on the peer's read path. ShortRead truncates
	// the buffer handed to the underlying Read to a small random prefix.
	// Corrupt flips one byte per affected operation (write side: on a
	// copy, the caller's buffer is never modified). Reset tears the
	// connection: a Write delivers a prefix and fails, a Read fails
	// immediately, and the underlying conn is closed.
	SplitWrite float64
	ShortRead  float64
	Corrupt    float64
	Reset      float64

	// Datagram faults (PacketConn). Drop discards the datagram (silently
	// on the write side, invisibly on the read side), Duplicate sends it
	// twice, and Corrupt above flips one byte.
	Drop      float64
	Duplicate float64
}

// enabled reports whether the profile can inject anything at all.
func (p Profile) enabled() bool {
	return p.Latency > 0 || p.LatencyJitter > 0 ||
		p.SplitWrite > 0 || p.ShortRead > 0 || p.Corrupt > 0 || p.Reset > 0 ||
		p.Drop > 0 || p.Duplicate > 0
}

// dice is a mutex-guarded rand.Rand: connection wrappers are used from
// multiple goroutines (a reader and a writer), and rand.Rand is not
// concurrency-safe.
type dice struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newDice(seed int64) *dice {
	return &dice{rng: rand.New(rand.NewSource(seed))}
}

// roll returns true with probability p.
func (d *dice) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rng.Float64() < p
}

// intn returns a uniform int in [0, n).
func (d *dice) intn(n int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rng.Intn(n)
}

// sleep injects the profile's base latency plus jitter.
func (d *dice) sleep(p Profile) {
	delay := p.Latency
	if p.LatencyJitter > 0 {
		delay += time.Duration(d.intn(int(p.LatencyJitter)))
	}
	if delay > 0 {
		time.Sleep(delay)
	}
}

// mixSeed derives a per-connection seed from the profile seed and a
// connection index, so each accepted or dialed connection replays its own
// deterministic fault stream.
func mixSeed(seed, index int64) int64 {
	x := uint64(seed) ^ (uint64(index)+1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int64(x)
}
