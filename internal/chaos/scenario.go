package chaos

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fantasticjoules/internal/autopower"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/snmp"
	"fantasticjoules/internal/units"
)

// sampleEpochMilli anchors the scenarios' synthetic clocks. Samples carry
// synthetic timestamps (strictly increasing, 500 ms apart per unit) so the
// invariant checks are exact: every produced sample has a unique
// timestamp, which makes the server's overlap dedup distinguish a genuine
// re-upload from a lost sample.
const sampleEpochMilli = 1_700_000_000_000

// AutopowerScenario configures one replay of the Autopower unit↔server
// pipeline under a fault profile. Zero fields take the listed defaults,
// chosen so a full profile sweep stays inside a few seconds of test time.
type AutopowerScenario struct {
	Profile Profile
	// Units is the fleet size (default 3).
	Units int
	// Duration is how long the pipeline runs (default 500 ms).
	Duration time.Duration
	// SampleInterval is the unit cadence (default 2 ms).
	SampleInterval time.Duration
	// UploadEvery batches samples per upload (default 5).
	UploadEvery int
	// MaxSpool bounds each unit's spool (default 1<<20); small values
	// exercise the overflow-drop bookkeeping.
	MaxSpool int
	// GlitchEvery makes every nth meter read fail (default 0: none).
	GlitchEvery int
}

// UnitOutcome is the per-unit result of an Autopower scenario.
type UnitOutcome struct {
	UnitID string
	// Stats is the unit's final spool/ack bookkeeping.
	Stats autopower.SpoolStats
	// Stored is how many of the unit's samples the server holds.
	Stored int
}

// AutopowerReport summarizes an Autopower scenario run.
type AutopowerReport struct {
	Profile string
	Units   []UnitOutcome
}

// RunAutopower replays the full unit↔server pipeline under the scenario's
// fault profile and checks the collection-plane invariants:
//
//   - spool/ack alignment: Produced - Acked == SpoolLen for every unit;
//   - no acked sample lost: the server stores at least every
//     acknowledged, non-overflow-dropped sample, and never more samples
//     than were produced (byte flips must not forge data past the frame
//     checksum);
//   - per-unit server series have strictly increasing timestamps;
//   - every pipeline goroutine exits after shutdown.
//
// A violated invariant — or a leak — is returned as an error naming the
// profile.
func RunAutopower(sc AutopowerScenario) (AutopowerReport, error) {
	if sc.Units <= 0 {
		sc.Units = 3
	}
	if sc.Duration <= 0 {
		sc.Duration = 500 * time.Millisecond
	}
	if sc.SampleInterval <= 0 {
		sc.SampleInterval = 2 * time.Millisecond
	}
	if sc.UploadEvery <= 0 {
		sc.UploadEvery = 5
	}
	report := AutopowerReport{Profile: sc.Profile.Name}

	srv := autopower.NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return report, err
	}
	if err := srv.StartListener(WrapListener(ln, sc.Profile)); err != nil {
		ln.Close()
		return report, err
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), sc.Duration)
	defer cancel()

	type runningUnit struct {
		id   string
		unit *autopower.Unit
	}
	var fleet []runningUnit
	var wg sync.WaitGroup
	for i := 0; i < sc.Units; i++ {
		id := fmt.Sprintf("chaos-%02d", i)
		m := meter.New(sc.Profile.Seed + int64(i))
		watts := 150 + 10*i
		if err := m.Attach(0, meter.SourceFunc(func() units.Power {
			return units.Power(watts)
		})); err != nil {
			cancel()
			srv.Close()
			return report, err
		}
		if sc.GlitchEvery > 0 {
			m.GlitchEvery(sc.GlitchEvery)
		}
		var tick atomic.Int64
		connSeed := int64(i)
		u, err := autopower.NewUnit(autopower.UnitConfig{
			UnitID:              id,
			Router:              "chaos-rtr",
			ServerAddr:          addr,
			Meter:               m,
			SampleInterval:      sc.SampleInterval,
			UploadEvery:         sc.UploadEvery,
			MaxSpool:            sc.MaxSpool,
			ReconnectBackoff:    5 * time.Millisecond,
			MaxReconnectBackoff: 40 * time.Millisecond,
			WriteTimeout:        250 * time.Millisecond,
			Dial: func(ctx context.Context, addr string) (net.Conn, error) {
				d := net.Dialer{Timeout: time.Second}
				c, err := d.DialContext(ctx, "tcp", addr)
				if err != nil {
					return nil, err
				}
				return WrapConn(c, sc.Profile, 1000+connSeed), nil
			},
			Now: func() time.Time {
				return time.UnixMilli(sampleEpochMilli + tick.Add(1)*500)
			},
		})
		if err != nil {
			cancel()
			srv.Close()
			return report, err
		}
		fleet = append(fleet, runningUnit{id: id, unit: u})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = u.Run(ctx)
		}()
	}

	<-ctx.Done()
	wg.Wait()
	if err := srv.Close(); err != nil {
		return report, fmt.Errorf("chaos[%s]: server close: %w", sc.Profile.Name, err)
	}

	for _, ru := range fleet {
		stats := ru.unit.Stats()
		stored := 0
		var prevMilli int64
		if series, err := srv.Series(ru.id); err == nil {
			stored = series.Len()
			for _, p := range series.Points() {
				milli := p.T.UnixMilli()
				if milli <= prevMilli && prevMilli != 0 {
					return report, fmt.Errorf("chaos[%s]: %s: non-monotonic server series at %v",
						sc.Profile.Name, ru.id, p.T)
				}
				prevMilli = milli
			}
		}
		report.Units = append(report.Units, UnitOutcome{UnitID: ru.id, Stats: stats, Stored: stored})

		if stats.Produced-stats.Acked != uint64(stats.SpoolLen) {
			return report, fmt.Errorf("chaos[%s]: %s: spool/ack misaligned: produced=%d acked=%d spool=%d",
				sc.Profile.Name, ru.id, stats.Produced, stats.Acked, stats.SpoolLen)
		}
		ackedKept := int64(stats.Acked) - int64(stats.Dropped)
		if int64(stored) < ackedKept {
			return report, fmt.Errorf("chaos[%s]: %s: acked sample lost: server stores %d, acked-and-kept %d",
				sc.Profile.Name, ru.id, stored, ackedKept)
		}
		if uint64(stored) > stats.Produced {
			return report, fmt.Errorf("chaos[%s]: %s: server stores %d samples but only %d were produced (forged data)",
				sc.Profile.Name, ru.id, stored, stats.Produced)
		}
	}

	if leaked := LeakedGoroutines(3 * time.Second); len(leaked) > 0 {
		return report, fmt.Errorf("chaos[%s]: %d leaked goroutines:\n%s",
			sc.Profile.Name, len(leaked), leaked[0])
	}
	return report, nil
}

// SNMPScenario configures one replay of the SNMP collector pipeline under
// a fault profile.
type SNMPScenario struct {
	Profile Profile
	// Targets is the number of simulated router agents (default 2).
	Targets int
	// Rounds is how many PollOnce rounds to run (default 3).
	Rounds int
	// Timeout is the per-request client timeout (default 40 ms); the
	// collector's retry budget per round trip is 2×Timeout (one retry).
	Timeout time.Duration
}

// SNMPReport summarizes an SNMP scenario run.
type SNMPReport struct {
	Profile string
	// FailedPolls is the collector's per-router failed-poll count.
	FailedPolls map[string]int
	// PowerPoints counts collected PSU power samples per router.
	PowerPoints map[string]int
	// MaxPoll is the slowest observed PollOnce round.
	MaxPoll time.Duration
	// Budget is the per-round upper bound implied by the client's retry
	// budget; MaxPoll exceeding it is an invariant violation.
	Budget time.Duration
	// Malformed is how many datagrams failed BER decoding during the run.
	Malformed uint64
}

// RunSNMP replays the fleet poller against fault-injected agents and
// checks the collector-side invariants:
//
//   - every poll round returns within the configured retry budget
//     (3 walks × 2 attempts × Timeout per target, plus slack for
//     scheduling) — a malformed-datagram flood must not stretch it;
//   - collected power series have strictly increasing timestamps;
//   - every agent goroutine exits after shutdown.
func RunSNMP(sc SNMPScenario) (SNMPReport, error) {
	if sc.Targets <= 0 {
		sc.Targets = 2
	}
	if sc.Rounds <= 0 {
		sc.Rounds = 3
	}
	if sc.Timeout <= 0 {
		sc.Timeout = 40 * time.Millisecond
	}
	report := SNMPReport{Profile: sc.Profile.Name}
	malformedBefore := snmp.MalformedDatagrams()

	var agents []*snmp.Agent
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	var targets []snmp.Target
	for i := 0; i < sc.Targets; i++ {
		mib := &snmp.MIB{}
		for p := 1; p <= 2; p++ {
			mib.RegisterScalar(snmp.OIDPSUPower.Append(uint32(p)), snmp.Gauge32Value(uint32(400+10*p)))
		}
		for ifIdx := 1; ifIdx <= 4; ifIdx++ {
			octets := new(atomic.Uint64)
			mib.RegisterScalar(snmp.OIDIfName.Append(uint32(ifIdx)), snmp.StringValue(fmt.Sprintf("et-0/0/%d", ifIdx)))
			mib.Register(snmp.OIDIfHCInOctets.Append(uint32(ifIdx)), func() snmp.Value {
				return snmp.Counter64Value(octets.Add(1 << 20))
			})
		}
		agent := snmp.NewAgent(mib, "public")
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return report, err
		}
		addr, err := agent.StartPacketConn(WrapPacketConn(pc, sc.Profile, int64(i)))
		if err != nil {
			pc.Close()
			return report, err
		}
		agents = append(agents, agent)
		targets = append(targets, snmp.Target{Router: fmt.Sprintf("rtr-%02d", i), Addr: addr})
	}

	var round atomic.Int64
	coll, err := snmp.NewCollector(targets, snmp.CollectorConfig{
		Timeout: sc.Timeout,
		Now: func() time.Time {
			return time.UnixMilli(sampleEpochMilli).Add(time.Duration(round.Load()) * 5 * time.Minute)
		},
	})
	if err != nil {
		return report, err
	}

	// Per round: each target runs 3 walks, each typically one round trip
	// of at most 2 attempts × Timeout. Allow one extra sweep per walk
	// plus scheduling slack.
	report.Budget = time.Duration(sc.Targets)*3*2*2*sc.Timeout + 250*time.Millisecond
	for r := 0; r < sc.Rounds; r++ {
		round.Store(int64(r))
		start := time.Now()
		coll.PollOnce()
		if d := time.Since(start); d > report.MaxPoll {
			report.MaxPoll = d
		}
	}
	report.FailedPolls = coll.Errors()
	report.PowerPoints = make(map[string]int)
	for _, t := range targets {
		s, ok := coll.PowerSeries(t.Router)
		if !ok {
			continue
		}
		report.PowerPoints[t.Router] = s.Len()
		prev := time.Time{}
		for _, p := range s.Points() {
			if !p.T.After(prev) {
				return report, fmt.Errorf("chaos[%s]: %s: non-monotonic power series at %v",
					sc.Profile.Name, t.Router, p.T)
			}
			prev = p.T
		}
	}
	report.Malformed = snmp.MalformedDatagrams() - malformedBefore

	if report.MaxPoll > report.Budget {
		return report, fmt.Errorf("chaos[%s]: poll round took %v, budget %v",
			sc.Profile.Name, report.MaxPoll, report.Budget)
	}
	for _, a := range agents {
		if err := a.Close(); err != nil {
			return report, fmt.Errorf("chaos[%s]: agent close: %w", sc.Profile.Name, err)
		}
	}
	agents = nil
	if leaked := LeakedGoroutines(3 * time.Second); len(leaked) > 0 {
		return report, fmt.Errorf("chaos[%s]: %d leaked goroutines:\n%s",
			sc.Profile.Name, len(leaked), leaked[0])
	}
	return report, nil
}
