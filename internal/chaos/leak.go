package chaos

import (
	"runtime"
	"strings"
	"time"
)

// LeakedGoroutines waits up to timeout for every collection-plane
// goroutine to exit and returns the stacks of any that remain. A scenario
// that returns with live unit, server, agent, or collector goroutines has
// leaked — the exact failure mode that lets a long-running deployment
// slowly strangle itself after weeks of reconnect churn.
func LeakedGoroutines(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		gs := collectionGoroutines()
		if len(gs) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return gs
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// collectionGoroutines returns the stacks of goroutines still running
// collection-plane code. The caller's own stack (a test or scenario
// function) is excluded by filtering out goroutines parked in testing or
// in this function itself.
func collectionGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(g, "fantasticjoules/internal/") {
			continue
		}
		if strings.Contains(g, "testing.tRunner") ||
			strings.Contains(g, "testing.(*M).Run") ||
			strings.Contains(g, "collectionGoroutines") {
			continue
		}
		out = append(out, g)
	}
	return out
}
