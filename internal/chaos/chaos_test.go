package chaos

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// pipeThrough writes payload through a fault-wrapped side of a TCP pair
// and returns what the peer received before the connection ended.
func pipeThrough(t *testing.T, p Profile, seed int64, payload []byte) []byte {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	acceptc := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		acceptc <- acceptResult{c, err}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ar := <-acceptc
	if ar.err != nil {
		t.Fatal(ar.err)
	}
	defer ar.conn.Close()

	wrapped := WrapConn(raw, p, seed)
	go func() {
		defer wrapped.Close()
		_, _ = wrapped.Write(payload)
	}()
	var got bytes.Buffer
	buf := make([]byte, 4096)
	_ = ar.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		n, err := ar.conn.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			return got.Bytes()
		}
	}
}

func TestZeroProfileIsTransparent(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	got := pipeThrough(t, Profile{}, 1, payload)
	if !bytes.Equal(got, payload) {
		t.Errorf("zero profile altered the stream: %q", got)
	}
}

func TestCorruptIsDeterministic(t *testing.T) {
	p := Profile{Name: "corrupt", Seed: 42, Corrupt: 1}
	payload := bytes.Repeat([]byte("abcdefgh"), 32)
	first := pipeThrough(t, p, 7, payload)
	second := pipeThrough(t, p, 7, payload)
	if bytes.Equal(first, payload) {
		t.Fatal("Corrupt=1 left the payload intact")
	}
	if !bytes.Equal(first, second) {
		t.Error("same (profile, seed) produced different corruption")
	}
	other := pipeThrough(t, p, 8, payload)
	if bytes.Equal(first, other) {
		t.Error("different connection seeds produced identical corruption")
	}
}

func TestResetTearsTheConnection(t *testing.T) {
	p := Profile{Name: "reset", Seed: 3, Reset: 1}
	payload := bytes.Repeat([]byte{0xAA}, 1024)
	got := pipeThrough(t, p, 1, payload)
	if len(got) >= len(payload) {
		t.Errorf("reset delivered the full %d-byte payload", len(got))
	}
}

func TestSplitWriteDeliversEverything(t *testing.T) {
	p := Profile{Name: "split", Seed: 5, SplitWrite: 1}
	payload := bytes.Repeat([]byte("xy"), 512)
	got := pipeThrough(t, p, 1, payload)
	if !bytes.Equal(got, payload) {
		t.Errorf("split write lost or altered bytes: got %d of %d", len(got), len(payload))
	}
}

// udpPair returns a wrapped sender socket and a plain receiver socket.
func udpPair(t *testing.T, p Profile) (*PacketConn, net.PacketConn, net.Addr) {
	t.Helper()
	recv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	send, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })
	return WrapPacketConn(send, p, 1), recv, recv.LocalAddr()
}

func TestPacketConnDrop(t *testing.T) {
	send, recv, addr := udpPair(t, Profile{Name: "drop", Seed: 9, Drop: 1})
	if _, err := send.WriteTo([]byte("doomed"), addr); err != nil {
		t.Fatal(err)
	}
	_ = recv.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	if n, _, err := recv.ReadFrom(buf); err == nil {
		t.Errorf("Drop=1 delivered %d bytes", n)
	}
}

func TestPacketConnDuplicate(t *testing.T) {
	send, recv, addr := udpPair(t, Profile{Name: "dup", Seed: 9, Duplicate: 1})
	if _, err := send.WriteTo([]byte("twice"), addr); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 2; i++ {
		_ = recv.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := recv.ReadFrom(buf)
		if err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
		if string(buf[:n]) != "twice" {
			t.Fatalf("copy %d = %q", i, buf[:n])
		}
	}
}

func TestLeakedGoroutinesCleanAtRest(t *testing.T) {
	if leaked := LeakedGoroutines(500 * time.Millisecond); len(leaked) > 0 {
		t.Errorf("collection-plane goroutines at rest:\n%s", leaked[0])
	}
}
