package chaos

import (
	"testing"
	"time"

	"fantasticjoules/internal/telemetry"
)

// autopowerProfiles is the fault sweep of the Autopower scenario suite:
// each profile isolates one failure mode of a unit↔server deployment.
var autopowerProfiles = []Profile{
	{Name: "clean", Seed: 1},
	{Name: "latency", Seed: 2, Latency: time.Millisecond, LatencyJitter: 2 * time.Millisecond},
	{Name: "resets", Seed: 3, Reset: 0.02},
	{Name: "fragmentation", Seed: 4, SplitWrite: 0.5, ShortRead: 0.5},
	{Name: "corruption", Seed: 5, Corrupt: 0.05},
	{Name: "everything", Seed: 6, Latency: 500 * time.Microsecond, SplitWrite: 0.3, ShortRead: 0.3, Corrupt: 0.02, Reset: 0.01},
}

func TestAutopowerFaultProfiles(t *testing.T) {
	for _, p := range autopowerProfiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			report, err := RunAutopower(AutopowerScenario{Profile: p})
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range report.Units {
				t.Logf("%s: produced=%d acked=%d dropped=%d spool=%d stored=%d",
					u.UnitID, u.Stats.Produced, u.Stats.Acked, u.Stats.Dropped, u.Stats.SpoolLen, u.Stored)
				if u.Stats.Produced == 0 {
					t.Errorf("%s produced no samples", u.UnitID)
				}
			}
			if p.Name == "clean" {
				for _, u := range report.Units {
					if u.Stored == 0 {
						t.Errorf("%s: clean run stored nothing at the server", u.UnitID)
					}
				}
			}
		})
	}
}

// TestAutopowerSpoolOverflow blackholes the server (every operation
// resets) with a tiny spool: the unit must keep measuring, shed the
// oldest samples, and keep its bookkeeping aligned — the exact regime of
// a unit whose uplink dies for longer than its buffer.
func TestAutopowerSpoolOverflow(t *testing.T) {
	report, err := RunAutopower(AutopowerScenario{
		Profile:  Profile{Name: "blackhole", Seed: 11, Reset: 1},
		Units:    1,
		MaxSpool: 16,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := report.Units[0]
	if u.Stats.Dropped == 0 {
		t.Errorf("blackholed unit with MaxSpool=16 dropped nothing: %+v", u.Stats)
	}
	if u.Stats.SpoolLen > 16 {
		t.Errorf("spool exceeded its bound: %+v", u.Stats)
	}
}

// TestAutopowerMeterGlitches injects periodic meter read failures and
// verifies the pipeline survives and the glitch counter moves — the
// sample loop used to swallow these errors invisibly.
func TestAutopowerMeterGlitches(t *testing.T) {
	glitches := telemetry.Default().Counter("autopower_meter_glitches_total", "")
	before := glitches.Value()
	report, err := RunAutopower(AutopowerScenario{
		Profile:     Profile{Name: "glitchy-meter", Seed: 12},
		Units:       1,
		GlitchEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Units[0].Stored == 0 {
		t.Error("glitchy meter stored nothing at the server")
	}
	if glitches.Value() == before {
		t.Error("autopower_meter_glitches_total did not move under injected glitches")
	}
}

// snmpProfiles is the fault sweep of the SNMP collector suite.
var snmpProfiles = []Profile{
	{Name: "clean", Seed: 21},
	{Name: "latency", Seed: 22, Latency: 2 * time.Millisecond, LatencyJitter: 3 * time.Millisecond},
	{Name: "loss", Seed: 23, Drop: 0.2},
	{Name: "duplication", Seed: 24, Duplicate: 0.5},
	{Name: "corruption", Seed: 25, Corrupt: 0.3},
	{Name: "heavy-loss", Seed: 26, Drop: 0.5},
}

func TestSNMPFaultProfiles(t *testing.T) {
	for _, p := range snmpProfiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			report, err := RunSNMP(SNMPScenario{Profile: p})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("maxPoll=%v budget=%v failed=%v points=%v malformed=%d",
				report.MaxPoll, report.Budget, report.FailedPolls, report.PowerPoints, report.Malformed)
			switch p.Name {
			case "clean":
				if len(report.FailedPolls) > 0 {
					t.Errorf("clean run failed polls: %v", report.FailedPolls)
				}
				for r, n := range report.PowerPoints {
					if n != 3 {
						t.Errorf("%s: clean run collected %d power points, want 3", r, n)
					}
				}
			case "corruption":
				if report.Malformed == 0 {
					t.Error("corruption run saw no malformed datagrams")
				}
			}
		})
	}
}
