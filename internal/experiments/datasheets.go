package experiments

import (
	"fmt"
	"sort"

	"fantasticjoules/internal/datasheet"
	"fantasticjoules/internal/stats"
	"fantasticjoules/internal/units"
)

// Fig2a returns the ASIC efficiency trend of Fig. 2a (redrawn vendor
// data): the clean baseline the router-level trend is compared against.
func (s *Suite) Fig2a() []datasheet.EfficiencyPoint {
	return datasheet.ASICTrend()
}

// Fig2bResult is the datasheet-level efficiency trend of Fig. 2b.
type Fig2bResult struct {
	Points []datasheet.EfficiencyPoint
	// Fit is the linear trend over release years; the paper's observation
	// is its weakness: a shallow slope against a wide spread.
	Fit stats.LinearFit
	// CorpusSize and Plotted document the filtering (≥100 Gbps, outliers
	// removed).
	CorpusSize int
	Plotted    int
}

// Fig2b computes the router-level efficiency trend from the extracted
// datasheet corpus.
func (s *Suite) Fig2b() (Fig2bResult, error) {
	records := s.Records()
	pts, fit, err := datasheet.EfficiencyTrend(records, datasheet.DefaultTrendOptions())
	if err != nil {
		return Fig2bResult{}, fmt.Errorf("fig2b: %w", err)
	}
	return Fig2bResult{Points: pts, Fit: fit, CorpusSize: len(records), Plotted: len(pts)}, nil
}

// Table1 compares each fleet model's measured median power against its
// datasheet "typical" value, sorted by overestimation — the Table 1 rows.
func (s *Suite) Table1() ([]datasheet.AccuracyRow, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	// Median of the per-router medians for each hardware model, as the
	// paper's per-model row.
	perModel := map[string][]float64{}
	for name, med := range ds.RouterWallMedian {
		r, ok := ds.Network.RouterByName(name)
		if !ok {
			return nil, fmt.Errorf("table1: unknown router %s", name)
		}
		perModel[r.Device.Model()] = append(perModel[r.Device.Model()], med.Watts())
	}
	measured := map[string]units.Power{}
	for m, vals := range perModel {
		measured[m] = units.Power(stats.Median(vals))
	}
	rows := datasheet.CompareMeasured(measured, s.Records())
	// Keep only the eight models the paper lists (those with a stated
	// typical or max power); drop the rest for the table.
	table1Models := map[string]bool{
		"NCS-55A1-24H": true, "ASR-920-24SZ-M": true, "NCS-55A1-24Q6H-SS": true,
		"NCS-55A1-48Q6H": true, "ASR-9001": true, "N540-24Z8Q2C-M": true,
		"8201-32FH": true, "8201-24H8FH": true,
	}
	var out []datasheet.AccuracyRow
	for _, r := range rows {
		if table1Models[r.Model] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Overestimate > out[j].Overestimate })
	return out, nil
}
