package experiments

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/telemetry"
	"fantasticjoules/internal/timeseries"
)

// TestInvalidateUnknownArtifact: Invalidate resolves names against the
// cell registry and rejects handles that do not exist with the named
// sentinel, so callers in the DAG cascade path can distinguish "no such
// cell" from a real failure instead of failing silently.
func TestInvalidateUnknownArtifact(t *testing.T) {
	s := New(99)
	err := s.Invalidate("no-such-artifact")
	if err == nil {
		t.Fatal("Invalidate of unknown artifact: want error, got nil")
	}
	if !errors.Is(err, ErrUnknownArtifact) {
		t.Fatalf("Invalidate error = %v, want errors.Is(ErrUnknownArtifact)", err)
	}
	if !strings.Contains(err.Error(), "no-such-artifact") {
		t.Fatalf("Invalidate error %q does not name the artifact", err)
	}
	// Dynamic cells only exist once used.
	if err := s.Invalidate("predict("); !errors.Is(err, ErrUnknownArtifact) {
		t.Fatalf("Invalidate of never-created dynamic cell = %v, want ErrUnknownArtifact", err)
	}
	// A known cell never trips the sentinel.
	if err := s.Invalidate("corpus"); err != nil {
		t.Fatalf("Invalidate(corpus) = %v, want nil", err)
	}
}

// TestInvalidateCascade exercises the epoch machinery on the cheap
// corpus→records chain: an invalidation walks downstream, stops at
// already-stale cells, and forces exactly the stale slice to recompute.
func TestInvalidateCascade(t *testing.T) {
	s := New(123)
	s.Records() // computes corpus, then records on top of it

	inv0 := metricEpochInvalidations.Value()
	if err := s.Invalidate("corpus"); err != nil {
		t.Fatal(err)
	}
	if got := metricEpochInvalidations.Value() - inv0; got != 2 {
		t.Fatalf("invalidations after Invalidate(corpus) = %d, want 2 (corpus+records)", got)
	}
	// Re-invalidating a stale cell is a no-op: the cascade stops at
	// already-stale nodes (their dependents were marked the first time).
	if err := s.Invalidate("corpus"); err != nil {
		t.Fatal(err)
	}
	if got := metricEpochInvalidations.Value() - inv0; got != 2 {
		t.Fatalf("invalidations after repeated Invalidate = %d, want still 2", got)
	}

	miss0 := metricMemoMisses.Value()
	s.Records()
	if got := metricMemoMisses.Value() - miss0; got != 2 {
		t.Fatalf("misses after recompute = %d, want 2 (corpus and records recompute)", got)
	}
	hits0 := metricMemoHits.Value()
	s.Records()
	if got := metricMemoHits.Value() - hits0; got != 1 {
		t.Fatalf("hits after recompute settled = %d, want 1 (a valid cell never pulls its parents)", got)
	}

	// Invalidating only the leaf leaves the parent cached.
	inv1 := metricEpochInvalidations.Value()
	if err := s.Invalidate("records"); err != nil {
		t.Fatal(err)
	}
	if got := metricEpochInvalidations.Value() - inv1; got != 1 {
		t.Fatalf("invalidations after Invalidate(records) = %d, want 1", got)
	}
}

// TestPerturbDirtySet verifies the dependency DAG Perturb walks: the
// dataset and every artifact downstream of it go stale, while the
// datasheet corpus, the lab derivations, and the isolated Fig. 8
// scenario stay cached. No recomputation happens here — the test reads
// cell validity straight off the registry.
func TestPerturbDirtySet(t *testing.T) {
	s := New(42)
	if _, err := s.Fig4(); err != nil { // pulls dataset, models, predictions
		t.Fatal(err)
	}
	if _, err := s.Fig1(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig8(); err != nil { // isolated scenario, no dataset edge
		t.Fatal(err)
	}
	s.Records()

	ds, err := s.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	auto := ds.Network.AutopowerRouters()
	if len(auto) == 0 {
		t.Fatal("no instrumented routers")
	}
	if err := s.Perturb(ispnet.FleetEvent{
		At:     ds.Network.Config.Start.Add(21 * 24 * time.Hour),
		Router: auto[0].Name,
		Op:     ispnet.OpScaleLoad,
		Factor: 1.5,
	}); err != nil {
		t.Fatal(err)
	}

	s.cellMu.Lock()
	defer s.cellMu.Unlock()
	for name, n := range s.cells {
		valid := n.valid.Load()
		var want bool
		switch {
		case strings.HasPrefix(name, "derive/"): // lab results are seed-only
			want = true
		case name == "corpus" || name == "records" || name == "fig8":
			want = true
		case name == "dataset", name == "fig1", name == "fig4":
			want = false
		case strings.HasPrefix(name, "model/"), strings.HasPrefix(name, "predict/"):
			want = false
		default:
			// Figure cells never computed (fig9, section7, ...) are stale
			// trivially; skip them.
			continue
		}
		if valid != want {
			t.Errorf("after Perturb: cell %q valid = %v, want %v", name, valid, want)
		}
	}
}

// TestPerturbRemeasure is the experiments-level incremental golden test:
// perturbing a warm suite and re-requesting its figures must produce
// bit-identical results to a fresh suite given the same perturbation,
// and the replay underneath must only touch the dirty router's shard.
func TestPerturbRemeasure(t *testing.T) {
	reused := telemetry.Default().Counter("ispnet_shards_reused_total",
		"router shards spliced back unchanged by Fleet.Resimulate")

	s1 := New(42)
	fig1Cold, err := s1.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	fig4Cold, err := s1.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s1.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	auto := ds.Network.AutopowerRouters()
	ev := ispnet.FleetEvent{
		At:     ds.Network.Config.Start.Add(21 * 24 * time.Hour),
		Router: auto[0].Name,
		Op:     ispnet.OpScaleLoad,
		Factor: 1.5,
	}

	if err := s1.Perturb(ev); err != nil {
		t.Fatal(err)
	}
	reused0 := reused.Value()
	fig1Inc, err := s1.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	fig4Inc, err := s1.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	wantReused := uint64(len(ds.Network.Routers) - 1)
	if got := reused.Value() - reused0; got != wantReused {
		t.Errorf("shards reused during incremental remeasure = %d, want %d", got, wantReused)
	}

	// The perturbation must actually show up in the figure.
	if seriesBitEqual(fig1Cold.Traffic, fig1Inc.Traffic) {
		t.Error("scale-load perturbation left Fig1 traffic unchanged")
	}

	// A fresh suite given the same perturbation must agree bit for bit.
	s2 := New(42)
	if err := s2.Perturb(ev); err != nil {
		t.Fatal(err)
	}
	fig1Fresh, err := s2.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	fig4Fresh, err := s2.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesBitEqual(t, "fig1 power", fig1Inc.Power, fig1Fresh.Power)
	assertSeriesBitEqual(t, "fig1 traffic", fig1Inc.Traffic, fig1Fresh.Traffic)
	if fig1Inc.PowerTrafficCorrelation != fig1Fresh.PowerTrafficCorrelation {
		t.Errorf("fig1 correlation diverged: %v vs %v",
			fig1Inc.PowerTrafficCorrelation, fig1Fresh.PowerTrafficCorrelation)
	}
	if len(fig4Inc) != len(fig4Fresh) || len(fig4Inc) != len(fig4Cold) {
		t.Fatalf("fig4 row counts diverged: %d inc, %d fresh, %d cold",
			len(fig4Inc), len(fig4Fresh), len(fig4Cold))
	}
	for i := range fig4Inc {
		a, b := fig4Inc[i], fig4Fresh[i]
		if a.Router != b.Router || a.ModelOffset != b.ModelOffset ||
			a.ModelShapeCorrelation != b.ModelShapeCorrelation {
			t.Errorf("fig4 row %s diverged from fresh suite", a.Router)
		}
		assertSeriesBitEqual(t, "fig4 "+a.Router+" prediction", a.Prediction, b.Prediction)
		assertSeriesBitEqual(t, "fig4 "+a.Router+" autopower", a.Autopower, b.Autopower)
	}

	// Cached figures are still single-flight memo cells: repeated calls
	// return the identical value without recompute.
	fig1Again, err := s1.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if fig1Again.Power != fig1Inc.Power {
		t.Error("repeated Fig1 call recomputed a valid cell")
	}
}

func seriesBitEqual(a, b *timeseries.Series) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.NanoAt(i) != b.NanoAt(i) ||
			math.Float64bits(a.Value(i)) != math.Float64bits(b.Value(i)) {
			return false
		}
	}
	return true
}

func assertSeriesBitEqual(t *testing.T, what string, a, b *timeseries.Series) {
	t.Helper()
	if !seriesBitEqual(a, b) {
		t.Errorf("%s: series not bit-identical", what)
	}
}
