package experiments

import (
	"fmt"
	"time"

	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/optimizer"
	"fantasticjoules/internal/units"
)

// The optimize-scale study closes the loop on generated fleets: where
// the scale artifact streams a hierarchical fleet through a counting
// sink, this one stands up the full control rig on it — chunk-retained
// incremental fleet, derived hypnos topology, per-link observed traffic
// — runs the §8 controller, and measures the realized wall-side joules
// against the same estimate envelope the calibrated section8online
// artifact uses. It is the proof that nothing in the control plane is
// pinned to the 107-router build.

// OptimizeScaleConfig shapes one closed-loop run on a generated fleet.
type OptimizeScaleConfig struct {
	Seed    int64
	Routers int
	// Window is both the dataset duration and the control window; Step is
	// both the SNMP grid and the control interval, so every control
	// decision lands on a sample boundary.
	Window time.Duration
	Step   time.Duration
}

func (c *OptimizeScaleConfig) applyDefaults() {
	if c.Routers <= 0 {
		c.Routers = 1000
	}
	if c.Window <= 0 {
		c.Window = 7 * 24 * time.Hour
	}
	if c.Step <= 0 {
		c.Step = time.Hour
	}
}

// OptimizeScaleRow is one fleet size's closed-loop summary: the control
// trace accounting plus the realized-vs-estimated savings envelope.
type OptimizeScaleRow struct {
	Routers int
	// Tiers counts routers per tier; Links is the derived topology's
	// internal link count; ChunkRetained reports the fleet's retention
	// mode (true for generated hierarchical fleets).
	Tiers         map[string]int
	Links         int
	ChunkRetained bool
	// Control-loop accounting over the window.
	Steps               int
	Actions             int
	Vetoes              int
	Resimulates         int
	GuardrailViolations int
	Transitions         int
	PSUsShed            int
	// BaselineMeanPower is the no-op fleet's mean wall power.
	// RealizedSavedJoules / RealizedSavedWatts are the measured wall-side
	// saving of the sleep schedule; RealizedShare is the fraction of the
	// baseline mean. PSUSavedJoules is the provisioning pass, separately
	// accounted.
	BaselineMeanPower   units.Power
	RealizedSavedJoules units.Energy
	RealizedSavedWatts  units.Power
	RealizedShare       float64
	PSUSavedJoules      units.Energy
	// The acceptance envelope, as in Section8Online: the realized watts
	// must land in [EnvelopeLow, EnvelopeHigh], where the bounds price the
	// realized schedule with the §7 refined accounting and amplify the
	// ceiling by the worst-case PSU conversion.
	EnvelopeLow    units.Power
	EnvelopeHigh   units.Power
	WithinEnvelope bool
}

// RunOptimizeScale stands up the control rig on a generated fleet and
// runs the closed loop over the window. A free function, not a Suite
// artifact, for the same reason RunScale is: the fleet is parameterized
// by size and must not pin per-size datasets in the suite cache.
// Deterministic: same config, same trace and the same joules, bit for
// bit.
func RunOptimizeScale(cfg OptimizeScaleConfig) (OptimizeScaleRow, error) {
	cfg.applyDefaults()
	rig, err := optimizer.NewRig(ispnet.Config{
		Seed:     cfg.Seed,
		Routers:  cfg.Routers,
		Duration: cfg.Window,
		SNMPStep: cfg.Step,
	})
	if err != nil {
		return OptimizeScaleRow{}, fmt.Errorf("optimize-scale rig (%d routers): %w", cfg.Routers, err)
	}
	net := rig.Fleet.Network()
	ctl, err := rig.Controller(optimizer.Config{
		Start:  net.Config.Start,
		Window: cfg.Window,
		Step:   cfg.Step,
		// The EXPERIMENTS.md optimizer-scenario hysteresis setting.
		MinDwellSteps:  4,
		MaxUtilization: optimizer.DefaultMaxUtilization,
		PSUShed:        true,
		PSUMaxLoad:     optimizer.DefaultPSUMaxLoad,
	})
	if err != nil {
		return OptimizeScaleRow{}, err
	}
	rep, err := ctl.Run()
	if err != nil {
		return OptimizeScaleRow{}, fmt.Errorf("optimize-scale run (%d routers): %w", cfg.Routers, err)
	}

	// Price the realized schedule with the offline accounting, exactly as
	// section8online does, so the envelope compares the same sleeping
	// link-hours at every fleet size.
	times := make([]time.Time, len(rep.Steps))
	sleeping := make([][]int, len(rep.Steps))
	for i, st := range rep.Steps {
		times[i] = st.Time
		sleeping[i] = st.Sleeping
	}
	estimate := hypnos.Evaluate(hypnos.NewSchedule(rig.Topo, times, sleeping))

	row := OptimizeScaleRow{
		Routers:             cfg.Routers,
		Links:               len(rig.Topo.Links),
		ChunkRetained:       rig.Fleet.ChunkRetained(),
		Steps:               len(rep.Steps),
		Actions:             rep.Actions,
		Vetoes:              rep.Vetoes,
		Resimulates:         rep.Resimulates,
		GuardrailViolations: rep.GuardrailViolations,
		Transitions:         rep.Transitions(),
		PSUsShed:            rep.PSUsShed,
		RealizedSavedJoules: rep.SleepSavedJoules,
		RealizedSavedWatts:  rep.SleepSavedWatts,
		PSUSavedJoules:      rep.PSUSavedJoules,
		EnvelopeLow:         estimate.RefinedLow,
		EnvelopeHigh:        units.Power(estimate.RefinedHigh.Watts() / onlinePSUEfficiencyFloor),
	}
	if net.Hierarchical() {
		row.Tiers = make(map[string]int)
		for _, r := range net.Routers {
			row.Tiers[r.Tier]++
		}
	}
	row.BaselineMeanPower = units.Power(rep.BaselineJoules.Joules() / cfg.Window.Seconds())
	if row.BaselineMeanPower > 0 {
		row.RealizedShare = row.RealizedSavedWatts.Watts() / row.BaselineMeanPower.Watts()
	}
	row.WithinEnvelope = row.RealizedSavedWatts >= row.EnvelopeLow &&
		row.RealizedSavedWatts <= row.EnvelopeHigh
	return row, nil
}
