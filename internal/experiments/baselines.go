package experiments

import (
	"fmt"
	"math"
	"sort"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// BaselineRow compares the datasheet-interpolation baseline ([16, 33],
// discussed in §2) against the lab-derived model on one validation router:
// how far each prediction sits from the external ground truth.
type BaselineRow struct {
	Router string
	Model  string
	// LabModelMAE is the mean absolute error of the lab-derived model
	// (including its constant offset — no post-hoc correction).
	LabModelMAE units.Power
	// BaselineMAE is the datasheet-interpolation model's error.
	BaselineMAE units.Power
	// BaselineBias is the baseline's median signed error (its estimate
	// minus the measurement): datasheet "typical" values overshoot or
	// undershoot by whole tens of watts (Table 1), and it shows here.
	BaselineBias units.Power
}

// Baselines quantifies §2's criticism of datasheet-driven power models:
// for each Autopower-instrumented router it predicts the deployment trace
// with (a) the lab-derived model and (b) the datasheet interpolation, and
// reports both errors against the external measurement.
func (s *Suite) Baselines() ([]BaselineRow, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	var rows []BaselineRow
	for _, r := range ds.Network.AutopowerRouters() {
		spec, err := device.Spec(r.Device.Model())
		if err != nil {
			return nil, err
		}
		idle := spec.DatasheetTypical
		if idle == 0 {
			idle = spec.DatasheetMax / 2 // the N540X states no typical value
		}
		baseline, err := model.NewDatasheetBaseline(spec.Name, idle, spec.DatasheetMax, spec.DatasheetBandwidth)
		if err != nil {
			return nil, fmt.Errorf("baseline for %s: %w", spec.Name, err)
		}

		// Baseline prediction: total traffic per poll from the counter view.
		var total *timeseries.Series
		for _, series := range ds.IfaceRates[r.Name] {
			if total == nil {
				total = series
				continue
			}
			sum, err := timeseries.SumAligned("traffic", ds.Network.Config.SNMPStep, total, series)
			if err != nil {
				return nil, err
			}
			total = sum
		}
		if total == nil {
			return nil, fmt.Errorf("baseline: no traffic for %s", r.Name)
		}
		basePred := timeseries.New(r.Name + ".baseline")
		for _, p := range total.Points() {
			basePred.Append(p.T, baseline.PredictPower(units.BitRate(p.V)).Watts())
		}

		labModel, err := s.DerivedModel(r.Device.Model(), deployedProfiles(ds, r.Name, r.Device.Model()))
		if err != nil {
			return nil, err
		}
		labPred, err := PredictFromCounters(labModel, ds, r.Name)
		if err != nil {
			return nil, err
		}

		truth := ds.Autopower[r.Name].Smooth(SmoothingWindow)
		labMAE, err := maeAgainst(truth, labPred.Smooth(SmoothingWindow))
		if err != nil {
			return nil, err
		}
		baseMAE, err := maeAgainst(truth, basePred.Smooth(SmoothingWindow))
		if err != nil {
			return nil, err
		}
		diff, err := timeseries.Sub(basePred, ds.Autopower[r.Name])
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			Router:       r.Name,
			Model:        r.Device.Model(),
			LabModelMAE:  labMAE,
			BaselineMAE:  baseMAE,
			BaselineBias: units.Power(diff.Median()),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Model < rows[j].Model })
	return rows, nil
}

// maeAgainst aligns prediction to truth and returns the mean absolute
// error.
func maeAgainst(truth, pred *timeseries.Series) (units.Power, error) {
	diff, err := timeseries.Sub(truth, pred)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range diff.Points() {
		sum += math.Abs(p.V)
	}
	if diff.Len() == 0 {
		return 0, fmt.Errorf("experiments: no overlapping samples")
	}
	return units.Power(sum / float64(diff.Len())), nil
}
