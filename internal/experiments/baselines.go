package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// BaselineRow compares the datasheet-interpolation baseline ([16, 33],
// discussed in §2) against the lab-derived model on one validation router:
// how far each prediction sits from the external ground truth.
type BaselineRow struct {
	Router string
	Model  string
	// LabModelMAE is the mean absolute error of the lab-derived model
	// (including its constant offset — no post-hoc correction).
	LabModelMAE units.Power
	// BaselineMAE is the datasheet-interpolation model's error.
	BaselineMAE units.Power
	// BaselineBias is the baseline's median signed error (its estimate
	// minus the measurement): datasheet "typical" values overshoot or
	// undershoot by whole tens of watts (Table 1), and it shows here.
	BaselineBias units.Power
}

// Baselines quantifies §2's criticism of datasheet-driven power models:
// for each Autopower-instrumented router it predicts the deployment trace
// with (a) the lab-derived model and (b) the datasheet interpolation, and
// reports both errors against the external measurement.
func (s *Suite) Baselines() ([]BaselineRow, error) {
	return s.baselines.get(func() ([]BaselineRow, error) {
		defer observeArtifact("baselines", time.Now())
		return s.baselinesUncached()
	})
}

func (s *Suite) baselinesUncached() ([]BaselineRow, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	var rows []BaselineRow
	for _, r := range ds.Network.AutopowerRouters() {
		spec, err := device.Spec(r.Device.Model())
		if err != nil {
			return nil, err
		}
		idle := spec.DatasheetTypical
		if idle == 0 {
			idle = spec.DatasheetMax / 2 // the N540X states no typical value
		}
		baseline, err := model.NewDatasheetBaseline(spec.Name, idle, spec.DatasheetMax, spec.DatasheetBandwidth)
		if err != nil {
			return nil, fmt.Errorf("baseline for %s: %w", spec.Name, err)
		}

		// Baseline prediction: total traffic per poll from the counter view.
		var total *timeseries.Series
		for _, series := range ds.IfaceRates[r.Name] {
			if total == nil {
				total = series
				continue
			}
			sum, err := timeseries.SumAligned("traffic", ds.Network.Config.SNMPStep, total, series)
			if err != nil {
				return nil, err
			}
			total = sum
		}
		if total == nil {
			return nil, fmt.Errorf("baseline: no traffic for %s", r.Name)
		}
		basePred := timeseries.NewWithCap(r.Name+".baseline", total.Len())
		for i := 0; i < total.Len(); i++ {
			basePred.Append(total.At(i).T, baseline.PredictPower(units.BitRate(total.Value(i))).Watts())
		}

		labPred, err := s.prediction(ds, r.Name, r.Device.Model())
		if err != nil {
			return nil, err
		}

		truth, smoothed, diff := s.scratch.get(), s.scratch.get(), s.scratch.get()
		ds.Autopower[r.Name].SmoothInto(SmoothingWindow, truth)
		labMAE, err := s.maeAgainst(truth, labPred.SmoothInto(SmoothingWindow, smoothed))
		if err != nil {
			s.scratch.put(truth, smoothed, diff)
			return nil, err
		}
		baseMAE, err := s.maeAgainst(truth, basePred.SmoothInto(SmoothingWindow, smoothed))
		if err != nil {
			s.scratch.put(truth, smoothed, diff)
			return nil, err
		}
		if _, err := timeseries.SubInto(basePred, ds.Autopower[r.Name], diff); err != nil {
			s.scratch.put(truth, smoothed, diff)
			return nil, err
		}
		rows = append(rows, BaselineRow{
			Router:       r.Name,
			Model:        r.Device.Model(),
			LabModelMAE:  labMAE,
			BaselineMAE:  baseMAE,
			BaselineBias: units.Power(diff.Median()),
		})
		s.scratch.put(truth, smoothed, diff)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Model < rows[j].Model })
	return rows, nil
}

// maeAgainst aligns prediction to truth and returns the mean absolute
// error. The difference series lives in arena scratch.
func (s *Suite) maeAgainst(truth, pred *timeseries.Series) (units.Power, error) {
	diff := s.scratch.get()
	defer s.scratch.put(diff)
	if _, err := timeseries.SubInto(truth, pred, diff); err != nil {
		return 0, err
	}
	var sum float64
	for i := 0; i < diff.Len(); i++ {
		sum += math.Abs(diff.Value(i))
	}
	if diff.Len() == 0 {
		return 0, fmt.Errorf("experiments: no overlapping samples")
	}
	return units.Power(sum / float64(diff.Len())), nil
}
