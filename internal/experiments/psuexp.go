package experiments

import (
	"fmt"
	"sort"

	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/units"
)

// Fig5Result carries the PSU efficiency reference curve and the 80 Plus
// set points of Fig. 5.
type Fig5Result struct {
	// PFE600 is the Platinum-rated reference curve.
	PFE600 []psu.CurvePoint
	// SetPoints maps each 80 Plus level to its certification points.
	SetPoints map[string][]psu.CurvePoint
}

// Fig5 returns the Fig. 5 data.
func (s *Suite) Fig5() Fig5Result {
	res := Fig5Result{
		PFE600:    psu.PFE600().Points(),
		SetPoints: make(map[string][]psu.CurvePoint),
	}
	for _, r := range psu.Ratings() {
		res.SetPoints[r.String()] = r.SetPoints()
	}
	return res
}

// Fig6Point is one PSU's (load, efficiency) snapshot in the Fig. 6
// scatter.
type Fig6Point struct {
	Router     string
	Model      string
	Load       float64
	Efficiency float64
}

// Fig6Result groups the fleet PSU snapshot by the panels the paper shows.
type Fig6Result struct {
	// All is every PSU point (Fig. 6a).
	All []Fig6Point
	// ByModel holds the per-model panels (Fig. 6b–d use NCS-55A1-24H,
	// 8201-32FH, and ASR-920-24SZ-M).
	ByModel map[string][]Fig6Point
}

// Fig6 computes the PSU efficiency scatter from the fleet's one-time
// sensor export.
func (s *Suite) Fig6() (Fig6Result, error) {
	ds, err := s.Dataset()
	if err != nil {
		return Fig6Result{}, err
	}
	res := Fig6Result{ByModel: make(map[string][]Fig6Point)}
	for _, router := range ds.PSUSnapshots {
		for _, snap := range router.PSUs {
			if snap.Pin <= 0 {
				continue
			}
			pt := Fig6Point{
				Router:     router.Router,
				Model:      router.Model,
				Load:       snap.Load(),
				Efficiency: snap.Efficiency(),
			}
			res.All = append(res.All, pt)
			res.ByModel[router.Model] = append(res.ByModel[router.Model], pt)
		}
	}
	sort.Slice(res.All, func(i, j int) bool {
		if res.All[i].Router != res.All[j].Router {
			return res.All[i].Router < res.All[j].Router
		}
		return res.All[i].Load < res.All[j].Load
	})
	return res, nil
}

// Table3Result is the §9 savings table: one row per measure, columns per
// 80 Plus level (only Bronze applies to the single-PSU measure).
type Table3Result struct {
	// MoreEfficient maps level name to the §9.3.2 savings.
	MoreEfficient map[string]psu.Savings
	// SinglePSU is the §9.3.4 estimate.
	SinglePSU psu.Savings
	// Combined maps level name to the §9.3.5 savings.
	Combined map[string]psu.Savings
	// FleetInput is the total wall power the percentages refer to.
	FleetInput units.Power
}

// Table3 computes the PSU energy-saving estimates of Table 3.
func (s *Suite) Table3() (Table3Result, error) {
	ds, err := s.Dataset()
	if err != nil {
		return Table3Result{}, err
	}
	fleet := ds.PSUSnapshots
	res := Table3Result{
		MoreEfficient: make(map[string]psu.Savings),
		Combined:      make(map[string]psu.Savings),
		SinglePSU:     psu.SavingsSinglePSU(fleet),
		FleetInput:    psu.FleetInputPower(fleet),
	}
	for _, r := range psu.Ratings() {
		res.MoreEfficient[r.String()] = psu.SavingsAtStandard(fleet, r)
		res.Combined[r.String()] = psu.SavingsCombined(fleet, r)
	}
	return res, nil
}

// Table4Result is the PSU right-sizing grid of Table 4: k ∈ {1, 2} by
// minimum capacity.
type Table4Result struct {
	Capacities []units.Power
	// K1 and K2 hold one savings estimate per capacity column.
	K1, K2 []psu.Savings
}

// Table4 computes the right-sizing estimates of Table 4.
func (s *Suite) Table4() (Table4Result, error) {
	ds, err := s.Dataset()
	if err != nil {
		return Table4Result{}, err
	}
	fleet := ds.PSUSnapshots
	res := Table4Result{Capacities: psu.CapacityOptions()}
	for _, minCap := range res.Capacities {
		s1, err := psu.SavingsResize(fleet, 1, minCap, res.Capacities)
		if err != nil {
			return Table4Result{}, fmt.Errorf("table4 k=1: %w", err)
		}
		s2, err := psu.SavingsResize(fleet, 2, minCap, res.Capacities)
		if err != nil {
			return Table4Result{}, fmt.Errorf("table4 k=2: %w", err)
		}
		res.K1 = append(res.K1, s1)
		res.K2 = append(res.K2, s2)
	}
	return res, nil
}
