// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrates: the datasheet analyses (§3),
// the lab model derivations (§5, Tables 2 and 6), the validation against
// external measurements (§6, Fig. 4/9), the router power insights (§7),
// the link-sleeping savings (§8), and the PSU analyses (§9, Fig. 5/6,
// Tables 3 and 4).
//
// Each experiment is a method on Suite returning typed rows/series — the
// same rows the paper prints — so the CLI renders them and the benchmarks
// time them. Expensive artifacts (the fleet simulation, lab derivations)
// are computed once per Suite and cached behind per-artifact memo cells:
// concurrent artifact requests neither duplicate work nor serialize behind
// an unrelated artifact's build (a Table 2 derivation never waits for the
// fleet simulation). Independent lab derivations additionally fan out over
// a bounded worker pool sized by SetWorkers.
//
// The suite is instrumented on the process-wide telemetry registry
// (metrics.go): memo-cell hits/misses and per-artifact computation times
// under experiments_artifact_seconds{artifact="..."} — watch them live
// with `joules -metrics :9090 run all`.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"fantasticjoules/internal/datasheet"
	"fantasticjoules/internal/device"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/labbench"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// Suite carries the cached artifacts shared by the experiments. All
// methods are safe for concurrent use.
//
// Artifacts are memoized in epoch-keyed cells (epoch.go) wired into a
// dependency DAG: a perturbation of the fleet (Perturb) invalidates the
// dataset cell and exactly the artifacts downstream of it — the figure
// and prediction caches — while the datasheet corpus and every lab
// derivation stay cached. Re-requesting an invalidated figure therefore
// costs O(what actually changed): the fleet replays only its dirty
// router shards (ispnet.Fleet) and the figures reassemble from cached
// lab models.
type Suite struct {
	seed    int64
	workers int

	// cellMu guards the cell registry (name → node) Invalidate resolves.
	cellMu sync.Mutex
	cells  map[string]*node

	// fleetMu guards the lazily built retained fleet behind the dataset
	// cell.
	fleetMu sync.Mutex
	fleet   *ispnet.Fleet

	dataset *ecell[*ispnet.Dataset]
	corpus  *ecell[[]datasheet.Document]
	records *ecell[[]datasheet.Extracted]

	fig1     *ecell[Fig1Result]
	fig4     *ecell[[]Fig4Row]
	fig9     *ecell[[]Fig9Row]
	fig8     *ecell[Fig8Result]
	section7 *ecell[Section7Result]
	section8 *ecell[Section8Result]
	// section8online depends on section8 (it embeds the offline estimate);
	// the dataset edge is transitive through it.
	section8online *ecell[Section8OnlineResult]
	baselines      *ecell[[]BaselineRow]
	smoothing      *ecell[[]SmoothingResult]

	// mu guards only the memo maps below, never their computations: Derive
	// and DerivedModel insert an empty cell under the lock and compute
	// outside it, so two different profiles derive in parallel while two
	// requests for the same profile share one run.
	mu      sync.Mutex
	derived map[string]*ecell[*labbench.Result]   // keyed by router|trx|speed
	models  map[string]*ecell[*model.Model]       // fully derived model per router hardware
	predict map[string]*ecell[*timeseries.Series] // counter-driven prediction per router name

	// scratch pools transient series buffers for the hot aggregation
	// paths; see arena in epoch.go for the ownership rules.
	scratch arena
}

// New returns a suite seeded for reproducibility.
func New(seed int64) *Suite {
	s := &Suite{
		seed:    seed,
		cells:   make(map[string]*node),
		derived: make(map[string]*ecell[*labbench.Result]),
		models:  make(map[string]*ecell[*model.Model]),
		predict: make(map[string]*ecell[*timeseries.Series]),
	}
	// The static artifact graph. Per-router cells (model/predict/derive)
	// join lazily on first use.
	s.dataset = newCell[*ispnet.Dataset](s, "dataset")
	s.corpus = newCell[[]datasheet.Document](s, "corpus")
	s.records = newCell[[]datasheet.Extracted](s, "records", &s.corpus.node)
	s.fig1 = newCell[Fig1Result](s, "fig1", &s.dataset.node)
	s.fig4 = newCell[[]Fig4Row](s, "fig4", &s.dataset.node)
	s.fig9 = newCell[[]Fig9Row](s, "fig9", &s.fig4.node, &s.dataset.node)
	s.fig8 = newCell[Fig8Result](s, "fig8")
	s.section7 = newCell[Section7Result](s, "section7", &s.dataset.node)
	s.section8 = newCell[Section8Result](s, "section8", &s.dataset.node)
	s.section8online = newCell[Section8OnlineResult](s, "section8online", &s.section8.node)
	s.baselines = newCell[[]BaselineRow](s, "baselines", &s.dataset.node)
	s.smoothing = newCell[[]SmoothingResult](s, "ablation-smoothing", &s.dataset.node, &s.fig4.node)
	return s
}

// SetWorkers bounds the concurrency of the suite's substrates: the
// fleet-simulation router shards and the fan-out over independent lab
// derivations. 0 (the default) uses runtime.GOMAXPROCS(0); 1 forces the
// serial paths. Cached artifacts are unaffected — results are identical
// for every worker count — so it may be called at any time, though setting
// it before the first artifact is the useful order.
//
//jouleslint:ignore epochdiscipline -- workers only bounds fan-out; artifacts are bit-identical at any worker count, so no cell can go stale
func (s *Suite) SetWorkers(n int) { s.workers = n }

// poolSize resolves the effective fan-out width.
func (s *Suite) poolSize() int {
	if s.workers > 0 {
		return s.workers
	}
	return runtime.GOMAXPROCS(0)
}

// DatasetConfig returns the fleet-simulation configuration the suite uses:
// the paper's 9-week study window at a 15-minute poll step (a multiple of
// the deployed 5-minute cadence, chosen so the full suite regenerates in
// seconds; pass the result to ispnet.Simulate with SNMPStep overridden for
// the full-resolution run).
func (s *Suite) DatasetConfig() ispnet.Config {
	return ispnet.Config{
		Seed:          s.seed,
		SNMPStep:      15 * time.Minute,
		AutopowerStep: 5 * time.Minute,
		Workers:       s.workers,
	}
}

// Dataset returns the (cached) fleet simulation output. The first call
// pays the cold fleet simulation; after a Perturb, the recompute replays
// only the dirty router shards.
func (s *Suite) Dataset() (*ispnet.Dataset, error) {
	return s.dataset.get(func() (*ispnet.Dataset, error) {
		defer observeArtifact("dataset", time.Now())
		f, err := s.ensureFleet()
		if err != nil {
			return nil, err
		}
		return f.Resimulate()
	})
}

// ensureFleet lazily builds the retained fleet (paying the one cold
// full-window simulation).
func (s *Suite) ensureFleet() (*ispnet.Fleet, error) {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	if s.fleet == nil {
		f, err := ispnet.NewFleet(s.DatasetConfig())
		if err != nil {
			return nil, err
		}
		s.fleet = f
	}
	return s.fleet, nil
}

// Perturb queues declarative fleet events and invalidates the dataset
// and every artifact downstream of it. Nothing recomputes here: the next
// artifact request replays only the dirty routers and reassembles from
// cached lab models — the perturb-and-remeasure loop of the optimizer
// costs O(dirty), not O(fleet).
func (s *Suite) Perturb(events ...ispnet.FleetEvent) error {
	f, err := s.ensureFleet()
	if err != nil {
		return err
	}
	if err := f.Perturb(events...); err != nil {
		return err
	}
	return s.Invalidate("dataset")
}

// Corpus returns the (cached) synthetic datasheet corpus.
func (s *Suite) Corpus() []datasheet.Document {
	docs, _ := s.corpus.get(func() ([]datasheet.Document, error) {
		defer observeArtifact("corpus", time.Now())
		return datasheet.Generate(s.seed), nil
	})
	return docs
}

// Records returns the (cached) extracted datasheet records.
func (s *Suite) Records() []datasheet.Extracted {
	recs, _ := s.records.get(func() ([]datasheet.Extracted, error) {
		defer observeArtifact("records", time.Now())
		return datasheet.ExtractAll(s.Corpus()), nil
	})
	return recs
}

// profileSpec names one lab derivation target.
type profileSpec struct {
	router string
	// portOverride restricts the DUT to a specific port bank; empty uses
	// the spec's default (e.g. the Nexus 93108TC's QSFP28 uplinks vs its
	// RJ45 front panel).
	portOverride model.PortType
	trx          model.TransceiverType
	speed        units.BitRate
}

func (p profileSpec) key() string {
	return fmt.Sprintf("%s|%s|%s|%g", p.router, p.portOverride, p.trx, p.speed.BitsPerSecond())
}

// Derive runs (or returns the cached) lab derivation for one interface
// profile of one router model, exactly as §5 prescribes: a fresh DUT, an
// external meter, the five experiment types, and the regressions.
// Concurrent calls for the same profile share one derivation; calls for
// different profiles run independently.
func (s *Suite) Derive(router string, portOverride model.PortType, trx model.TransceiverType, speed units.BitRate) (*labbench.Result, error) {
	ps := profileSpec{router: router, portOverride: portOverride, trx: trx, speed: speed}
	s.mu.Lock()
	c, ok := s.derived[ps.key()]
	if !ok {
		// Lab derivations depend only on the seed — no dataset edge, so
		// fleet perturbations never re-run the lab.
		c = newCell[*labbench.Result](s, "derive/"+ps.key())
		s.derived[ps.key()] = c
	}
	s.mu.Unlock()
	return c.get(func() (*labbench.Result, error) {
		defer observeArtifact("derive/"+ps.router, time.Now())
		return s.runDerivation(ps)
	})
}

// runDerivation is the uncached §5 lab methodology for one profile.
func (s *Suite) runDerivation(ps profileSpec) (*labbench.Result, error) {
	spec, err := device.Spec(ps.router)
	if err != nil {
		return nil, err
	}
	if ps.portOverride != "" {
		spec.PortType = ps.portOverride
		// A port bank is smaller than the full chassis; six uplinks is
		// the common layout and enough pairs for the sweeps.
		if spec.NumPorts > 8 {
			spec.NumPorts = 8
		}
	}
	dut, err := device.New(spec, "lab-"+ps.router, s.seed+int64(len(ps.key())))
	if err != nil {
		return nil, err
	}
	m := meter.New(s.seed + 77)
	if err := m.Attach(0, dut); err != nil {
		return nil, err
	}
	orch, err := labbench.New(dut, m, labbench.Config{Transceiver: ps.trx, Speed: ps.speed})
	if err != nil {
		return nil, err
	}
	res, err := orch.Run()
	if err != nil {
		return nil, fmt.Errorf("derive %s %s@%s: %w", ps.router, ps.trx, ps.speed, err)
	}
	return res, nil
}

// deriveAll fans the derivations out over the suite's worker pool and
// returns the results in target order.
func (s *Suite) deriveAll(targets []profileSpec) ([]*labbench.Result, error) {
	results := make([]*labbench.Result, len(targets))
	err := forEachLimit(len(targets), s.poolSize(), func(i int) error {
		res, err := s.Derive(targets[i].router, targets[i].portOverride, targets[i].trx, targets[i].speed)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// DerivedModel assembles (and caches) a router's full power model from lab
// derivations of every profile its deployed configuration uses. The
// profile derivations fan out over the suite's worker pool.
func (s *Suite) DerivedModel(router string, profiles []profileSpec) (*model.Model, error) {
	s.mu.Lock()
	c, ok := s.models[router]
	if !ok {
		// The profile list is read off the dataset's inventory view, so
		// the assembled model is downstream of the dataset (reassembly is
		// cheap: the underlying derivations have no dataset edge).
		c = newCell[*model.Model](s, "model/"+router, &s.dataset.node)
		s.models[router] = c
	}
	s.mu.Unlock()
	return c.get(func() (*model.Model, error) {
		defer observeArtifact("model/"+router, time.Now())
		if len(profiles) == 0 {
			return nil, fmt.Errorf("experiments: no profiles requested for %s", router)
		}
		results, err := s.deriveAll(profiles)
		if err != nil {
			return nil, err
		}
		full := model.New(router, results[0].Model.PBase)
		for _, res := range results {
			full.AddProfile(res.Profile)
		}
		return full, nil
	})
}

// forEachLimit runs f(0..n-1) on at most workers goroutines and returns
// the lowest-index error, so failures are deterministic under concurrency.
func forEachLimit(n, workers int, f func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// prediction returns the (cached) counter-driven prediction for one
// instrumented router: its lab-derived model evaluated over its rate
// traces. Downstream of the dataset and the router's model cell, so a
// fleet perturbation invalidates it while the lab derivations underneath
// stay warm.
func (s *Suite) prediction(ds *ispnet.Dataset, routerName, hardware string) (*timeseries.Series, error) {
	// Resolve the model first: its cell must exist before the prediction
	// cell can wire an edge onto it.
	m, err := s.DerivedModel(hardware, deployedProfiles(ds, routerName, hardware))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	c, ok := s.predict[routerName]
	if !ok {
		c = newCell[*timeseries.Series](s, "predict/"+routerName,
			&s.dataset.node, &s.models[hardware].node)
		s.predict[routerName] = c
	}
	s.mu.Unlock()
	return c.get(func() (*timeseries.Series, error) {
		defer observeArtifact("predict/"+routerName, time.Now())
		return PredictFromCounters(m, ds, routerName)
	})
}

// deployedProfiles lists the profiles an Autopower router's deployment
// ever used (from the dataset's inventory view), so its full model can be
// derived in the lab (§6.2: "we performed all the lab measurements
// required to derive power models for those routers").
func deployedProfiles(ds *ispnet.Dataset, routerName, routerModel string) []profileSpec {
	byIface := ds.IfaceProfiles[routerName]
	ifaceNames := make([]string, 0, len(byIface))
	for name := range byIface {
		ifaceNames = append(ifaceNames, name)
	}
	sort.Strings(ifaceNames)
	seen := map[string]bool{}
	var out []profileSpec
	for _, name := range ifaceNames {
		key := byIface[name]
		ps := profileSpec{router: routerModel, trx: key.Transceiver, speed: key.Speed}
		if seen[ps.key()] {
			continue
		}
		seen[ps.key()] = true
		out = append(out, ps)
	}
	return out
}
