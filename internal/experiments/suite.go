// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrates: the datasheet analyses (§3),
// the lab model derivations (§5, Tables 2 and 6), the validation against
// external measurements (§6, Fig. 4/9), the router power insights (§7),
// the link-sleeping savings (§8), and the PSU analyses (§9, Fig. 5/6,
// Tables 3 and 4).
//
// Each experiment is a method on Suite returning typed rows/series — the
// same rows the paper prints — so the CLI renders them and the benchmarks
// time them. Expensive artifacts (the fleet simulation, lab derivations)
// are computed once per Suite and cached.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"fantasticjoules/internal/datasheet"
	"fantasticjoules/internal/device"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/labbench"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

// Suite carries the cached artifacts shared by the experiments.
type Suite struct {
	seed int64

	mu      sync.Mutex
	dataset *ispnet.Dataset
	dsErr   error
	corpus  []datasheet.Document
	records []datasheet.Extracted
	derived map[string]*labbench.Result // keyed by router|trx|speed
	models  map[string]*model.Model     // fully derived model per router
}

// New returns a suite seeded for reproducibility.
func New(seed int64) *Suite {
	return &Suite{
		seed:    seed,
		derived: make(map[string]*labbench.Result),
		models:  make(map[string]*model.Model),
	}
}

// DatasetConfig returns the fleet-simulation configuration the suite uses:
// the paper's 9-week study window at a 15-minute poll step (a multiple of
// the deployed 5-minute cadence, chosen so the full suite regenerates in
// seconds; pass the result to ispnet.Simulate with SNMPStep overridden for
// the full-resolution run).
func (s *Suite) DatasetConfig() ispnet.Config {
	return ispnet.Config{
		Seed:          s.seed,
		SNMPStep:      15 * time.Minute,
		AutopowerStep: 5 * time.Minute,
	}
}

// Dataset returns the (cached) fleet simulation output.
func (s *Suite) Dataset() (*ispnet.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dataset == nil && s.dsErr == nil {
		s.dataset, s.dsErr = ispnet.Simulate(s.DatasetConfig())
	}
	return s.dataset, s.dsErr
}

// Corpus returns the (cached) synthetic datasheet corpus.
func (s *Suite) Corpus() []datasheet.Document {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.corpus == nil {
		s.corpus = datasheet.Generate(s.seed)
	}
	return s.corpus
}

// Records returns the (cached) extracted datasheet records.
func (s *Suite) Records() []datasheet.Extracted {
	corpus := s.Corpus()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.records == nil {
		s.records = datasheet.ExtractAll(corpus)
	}
	return s.records
}

// profileSpec names one lab derivation target.
type profileSpec struct {
	router string
	// portOverride restricts the DUT to a specific port bank; empty uses
	// the spec's default (e.g. the Nexus 93108TC's QSFP28 uplinks vs its
	// RJ45 front panel).
	portOverride model.PortType
	trx          model.TransceiverType
	speed        units.BitRate
}

func (p profileSpec) key() string {
	return fmt.Sprintf("%s|%s|%s|%g", p.router, p.portOverride, p.trx, p.speed.BitsPerSecond())
}

// Derive runs (or returns the cached) lab derivation for one interface
// profile of one router model, exactly as §5 prescribes: a fresh DUT, an
// external meter, the five experiment types, and the regressions.
func (s *Suite) Derive(router string, portOverride model.PortType, trx model.TransceiverType, speed units.BitRate) (*labbench.Result, error) {
	ps := profileSpec{router: router, portOverride: portOverride, trx: trx, speed: speed}
	s.mu.Lock()
	if res, ok := s.derived[ps.key()]; ok {
		s.mu.Unlock()
		return res, nil
	}
	s.mu.Unlock()

	spec, err := device.Spec(router)
	if err != nil {
		return nil, err
	}
	if portOverride != "" {
		spec.PortType = portOverride
		// A port bank is smaller than the full chassis; six uplinks is
		// the common layout and enough pairs for the sweeps.
		if spec.NumPorts > 8 {
			spec.NumPorts = 8
		}
	}
	dut, err := device.New(spec, "lab-"+router, s.seed+int64(len(ps.key())))
	if err != nil {
		return nil, err
	}
	m := meter.New(s.seed + 77)
	if err := m.Attach(0, dut); err != nil {
		return nil, err
	}
	orch, err := labbench.New(dut, m, labbench.Config{Transceiver: trx, Speed: speed})
	if err != nil {
		return nil, err
	}
	res, err := orch.Run()
	if err != nil {
		return nil, fmt.Errorf("derive %s %s@%s: %w", router, trx, speed, err)
	}

	s.mu.Lock()
	s.derived[ps.key()] = res
	s.mu.Unlock()
	return res, nil
}

// DerivedModel assembles (and caches) a router's full power model from lab
// derivations of every profile its deployed configuration uses.
func (s *Suite) DerivedModel(router string, profiles []profileSpec) (*model.Model, error) {
	s.mu.Lock()
	if m, ok := s.models[router]; ok {
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()

	var full *model.Model
	for _, ps := range profiles {
		res, err := s.Derive(ps.router, ps.portOverride, ps.trx, ps.speed)
		if err != nil {
			return nil, err
		}
		if full == nil {
			full = model.New(router, res.Model.PBase)
		}
		full.AddProfile(res.Profile)
	}
	if full == nil {
		return nil, fmt.Errorf("experiments: no profiles requested for %s", router)
	}
	s.mu.Lock()
	s.models[router] = full
	s.mu.Unlock()
	return full, nil
}

// deployedProfiles lists the profiles an Autopower router's deployment
// ever used (from the dataset's inventory view), so its full model can be
// derived in the lab (§6.2: "we performed all the lab measurements
// required to derive power models for those routers").
func deployedProfiles(ds *ispnet.Dataset, routerName, routerModel string) []profileSpec {
	seen := map[string]bool{}
	var out []profileSpec
	for _, key := range ds.IfaceProfiles[routerName] {
		ps := profileSpec{router: routerModel, trx: key.Transceiver, speed: key.Speed}
		if seen[ps.key()] {
			continue
		}
		seen[ps.key()] = true
		out = append(out, ps)
	}
	return out
}
