package experiments

import (
	"time"

	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/stats"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

// Fig1Result is the network-wide power and traffic picture of Fig. 1.
type Fig1Result struct {
	// Power is the total router power (W) over time.
	Power *timeseries.Series
	// Traffic is the total carried traffic (bit/s) over time.
	Traffic *timeseries.Series
	// CapacityBps converts traffic to the percent axis.
	CapacityBps float64
	// PowerTrafficCorrelation quantifies the §7 observation that the
	// correlation between power and traffic is invisible at network
	// scale.
	PowerTrafficCorrelation float64
}

// Fig1 regenerates the network-wide power/traffic figure. Cached until a
// perturbation invalidates the dataset underneath.
func (s *Suite) Fig1() (Fig1Result, error) {
	return s.fig1.get(func() (Fig1Result, error) {
		defer observeArtifact("fig1", time.Now())
		ds, err := s.Dataset()
		if err != nil {
			return Fig1Result{}, err
		}
		res := Fig1Result{
			Power:       ds.TotalPower.Smooth(2 * time.Hour),
			Traffic:     ds.TotalTraffic.Smooth(2 * time.Hour),
			CapacityBps: ds.TotalCapacity.BitsPerSecond(),
		}
		res.PowerTrafficCorrelation, err = s.alignedCorrelation(ds.TotalPower, ds.TotalTraffic)
		if err != nil {
			return Fig1Result{}, err
		}
		return res, nil
	})
}

// Table5Row re-exports the per-port-type power constants used by the §8
// evaluation.
type Table5Row = model.PortTypePower

// Table5 returns the per-port-type Pport and Ptrx,up values.
func (s *Suite) Table5() []Table5Row {
	return model.Table5()
}

// Section7Result carries the headline §7 insight numbers.
type Section7Result struct {
	// TrafficPower is the model-estimated power spent forwarding the
	// network's entire traffic; TrafficShare its share of total power
	// (the paper: ≈5.9 W, 0.02 %).
	TrafficPower units.Power
	TrafficShare float64
	// TransceiverPower is the fleet's total transceiver draw per
	// datasheet values; TransceiverShare its share (paper: ≈2.2 kW,
	// ≈10 %).
	TransceiverPower units.Power
	TransceiverShare float64
	// TotalPower is the fleet mean power.
	TotalPower units.Power
}

// Section7 computes the traffic-vs-transceiver power split of §7 using
// the paper's average energy costs (5 pJ/bit, 15 nJ/packet) and datasheet
// transceiver values.
func (s *Suite) Section7() (Section7Result, error) {
	return s.section7.get(func() (Section7Result, error) {
		defer observeArtifact("section7", time.Now())
		return s.section7Uncached()
	})
}

func (s *Suite) section7Uncached() (Section7Result, error) {
	ds, err := s.Dataset()
	if err != nil {
		return Section7Result{}, err
	}
	res := Section7Result{TotalPower: units.Power(ds.TotalPower.Mean())}

	// Traffic cost: every carried bit crosses two interfaces (in and out
	// of the network path's routers are already counted per-interface in
	// the rate sums; the dataset total counts each link once).
	const eBit = 5e-12
	const ePkt = 15e-9
	meanTraffic := ds.TotalTraffic.Mean() * 2 // both interfaces of each link
	pktRate := units.PacketRateFor(units.BitRate(meanTraffic), trafficgen.IMIXMeanSize(), trafficgen.EthernetOverhead)
	res.TrafficPower = units.Power(eBit*meanTraffic + ePkt*pktRate.PacketsPerSecond())
	res.TrafficShare = res.TrafficPower.Watts() / res.TotalPower.Watts()

	// Transceiver cost from datasheet values over the inventory
	// (including plugged spares — they draw power too).
	var trx float64
	for _, r := range ds.Network.Routers {
		for _, itf := range r.Interfaces {
			if p, ok := model.TransceiverDatasheetPower(itf.Profile.Transceiver, itf.Profile.Speed); ok {
				trx += p.Watts()
			}
		}
	}
	res.TransceiverPower = units.Power(trx)
	res.TransceiverShare = trx / res.TotalPower.Watts()
	return res, nil
}

// Section8Result carries the link-sleeping evaluation of §8.
type Section8Result struct {
	// Savings holds the schedule's worth under the §8 accountings.
	Savings hypnos.Savings
	// LowShare and HighShare are the refined savings range as fractions
	// of total network power (paper: 0.4–1.9 %).
	LowShare, HighShare float64
	// NaiveShare is the literature-style estimate's fraction.
	NaiveShare float64
	// ExternalIfaceShare and ExternalTrxPowerShare are the §8 context
	// numbers (paper: 51 % and 52 %).
	ExternalIfaceShare    float64
	ExternalTrxPowerShare float64
	// InternalLinks is the sleepable backbone size.
	InternalLinks int
}

// Section8 runs Hypnos over the synthetic network for a month and
// evaluates the savings under the refined accounting.
func (s *Suite) Section8() (Section8Result, error) {
	return s.section8.get(func() (Section8Result, error) {
		defer observeArtifact("section8", time.Now())
		return s.section8Uncached()
	})
}

func (s *Suite) section8Uncached() (Section8Result, error) {
	ds, err := s.Dataset()
	if err != nil {
		return Section8Result{}, err
	}
	topo, traffic, err := hypnos.FromNetwork(ds.Network)
	if err != nil {
		return Section8Result{}, err
	}
	sched, err := hypnos.Run(topo, traffic, hypnos.Options{
		Start:  ds.Network.Config.Start,
		Window: 30 * 24 * time.Hour,
		Step:   time.Hour,
	})
	if err != nil {
		return Section8Result{}, err
	}
	sv := hypnos.Evaluate(sched)
	total := ds.TotalPower.Mean()
	ifaceShare, trxShare := hypnos.ExternalShare(ds.Network)
	return Section8Result{
		Savings:               sv,
		LowShare:              sv.RefinedLow.Watts() / total,
		HighShare:             sv.RefinedHigh.Watts() / total,
		NaiveShare:            sv.Naive.Watts() / total,
		ExternalIfaceShare:    ifaceShare,
		ExternalTrxPowerShare: trxShare,
		InternalLinks:         len(topo.Links),
	}, nil
}

// Fig8Result is the OS-upgrade fan event of Fig. 8.
type Fig8Result struct {
	// Power is the PSU-reported trace across the upgrade.
	Power *timeseries.Series
	// UpgradeAt is the OS upgrade time.
	UpgradeAt time.Time
	// Bump is the mean power step across the upgrade; RelativeBump its
	// fraction of the pre-upgrade level (paper: ≈45 W, ≈+12 %).
	Bump         units.Power
	RelativeBump float64
}

// Fig8 regenerates the OS-upgrade power-bump scenario. Its cell has no
// dataset edge: the scenario simulates an isolated router, so fleet
// perturbations never touch it.
func (s *Suite) Fig8() (Fig8Result, error) {
	return s.fig8.get(func() (Fig8Result, error) {
		defer observeArtifact("fig8", time.Now())
		return s.fig8Uncached()
	})
}

func (s *Suite) fig8Uncached() (Fig8Result, error) {
	series, upgrade, err := ispnet.SimulateOSUpgrade(s.seed)
	if err != nil {
		return Fig8Result{}, err
	}
	before := series.Between(upgrade.Add(-7*24*time.Hour), upgrade)
	after := series.Between(upgrade, upgrade.Add(7*24*time.Hour))
	bump := stats.Mean(after.Values()) - stats.Mean(before.Values())
	return Fig8Result{
		Power:        series,
		UpgradeAt:    upgrade,
		Bump:         units.Power(bump),
		RelativeBump: bump / stats.Mean(before.Values()),
	}, nil
}
