package experiments

import (
	"fmt"
	"math"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/labbench"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

// Ablations quantify the design choices DESIGN.md calls out: what each
// model term buys, how much the 30-minute smoothing matters, and how
// dense the rate sweep needs to be.

// AblationResult is one variant's prediction error.
type AblationResult struct {
	Variant string
	// RMSE is the root-mean-square prediction error against true wall
	// power over the evaluation sweep.
	RMSE units.Power
}

// AblationDynamicTerms measures what the dynamic model terms contribute:
// it derives the NCS-55A1-24H model, then predicts a loaded router's power
// with the full model and with each dynamic term zeroed. The full model
// must win; dropping Epkt hurts most at small packets.
func (s *Suite) AblationDynamicTerms() ([]AblationResult, error) {
	res, err := s.Derive("NCS-55A1-24H", "", model.PassiveDAC, 100*g)
	if err != nil {
		return nil, err
	}
	full := res.Model

	zeroed := func(name string, strip func(*model.InterfaceProfile)) *model.Model {
		m := model.New(name, full.PBase)
		for _, p := range full.Profiles() {
			strip(&p)
			m.AddProfile(p)
		}
		return m
	}
	variants := []struct {
		name string
		m    *model.Model
	}{
		{"full", full},
		{"no-epkt", zeroed("no-epkt", func(p *model.InterfaceProfile) { p.EPkt = 0 })},
		{"no-ebit", zeroed("no-ebit", func(p *model.InterfaceProfile) { p.EBit = 0 })},
		{"no-poffset", zeroed("no-poffset", func(p *model.InterfaceProfile) { p.POffset = 0 })},
		{"static-only", zeroed("static-only", func(p *model.InterfaceProfile) {
			p.EPkt, p.EBit, p.POffset = 0, 0, 0
		})},
	}

	// Evaluation device: a fresh router of the same hardware, 12
	// interfaces up, swept across loads and packet sizes.
	spec, err := device.Spec("NCS-55A1-24H")
	if err != nil {
		return nil, err
	}
	dut, err := device.New(spec, "ablation-dut", s.seed+5)
	if err != nil {
		return nil, err
	}
	key := model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}
	names := dut.InterfaceNames()[:12]
	for _, n := range names {
		if err := dut.PlugTransceiver(n, model.PassiveDAC, 100*g); err != nil {
			return nil, err
		}
		if err := dut.SetAdmin(n, true); err != nil {
			return nil, err
		}
		if err := dut.SetLink(n, true); err != nil {
			return nil, err
		}
	}

	type point struct {
		cfg   model.Config
		truth float64
	}
	handles := make([]device.Handle, len(names))
	for i, n := range names {
		h, err := dut.Handle(n)
		if err != nil {
			return nil, err
		}
		handles[i] = h
	}
	var points []point
	for _, gbps := range []float64{0, 5, 20, 50, 90} {
		for _, pkt := range []units.ByteSize{128, 512, 1500} {
			bits := units.BitRate(gbps) * g
			pkts := units.PacketRateFor(bits, pkt, trafficgen.EthernetOverhead)
			cfg := model.Config{}
			step := dut.BeginStep()
			for _, h := range handles {
				if err := step.SetTraffic(h, bits, pkts); err != nil {
					step.End()
					return nil, err
				}
				cfg.Interfaces = append(cfg.Interfaces, model.Interface{
					Profile: key, TransceiverPresent: true, AdminUp: true, OperUp: true,
					Bits: bits, Packets: pkts,
				})
			}
			step.End()
			// Average the jittered truth.
			var sum float64
			const samples = 20
			for i := 0; i < samples; i++ {
				sum += dut.WallPower().Watts()
			}
			points = append(points, point{cfg: cfg, truth: sum / samples})
		}
	}

	var out []AblationResult
	for _, v := range variants {
		var ss float64
		for _, pt := range points {
			pred, err := v.m.PredictPower(pt.cfg)
			if err != nil {
				return nil, fmt.Errorf("ablation %s: %w", v.name, err)
			}
			d := pred.Watts() - pt.truth
			ss += d * d
		}
		out = append(out, AblationResult{
			Variant: v.name,
			RMSE:    units.Power(math.Sqrt(ss / float64(len(points)))),
		})
	}
	return out, nil
}

// SmoothingResult is one smoothing window's effect on the Fig. 4
// model-vs-measurement agreement.
type SmoothingResult struct {
	Window time.Duration
	// ResidualRMSE is the offset-corrected error between smoothed
	// measurement and smoothed prediction.
	ResidualRMSE units.Power
}

// AblationSmoothing sweeps the Fig. 4 smoothing window and reports the
// offset-corrected residual: wider windows suppress meter and jitter
// noise until real events dominate.
//
// The sweep is the repo's smoothing hot path: every window smooths the
// full-resolution Autopower trace and the model prediction. All
// intermediates run through arena scratch buffers (SmoothInto/
// BetweenInto/SubInto), so repeated sweeps — and the perturb-and-
// remeasure loop that invalidates this cell — allocate almost nothing.
func (s *Suite) AblationSmoothing() ([]SmoothingResult, error) {
	return s.smoothing.get(func() ([]SmoothingResult, error) {
		defer observeArtifact("ablation-smoothing", time.Now())
		return s.ablationSmoothingUncached()
	})
}

func (s *Suite) ablationSmoothingUncached() ([]SmoothingResult, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	var target *Fig4Row
	rows, err := s.Fig4()
	if err != nil {
		return nil, err
	}
	for i := range rows {
		if rows[i].Model == "8201-32FH" {
			target = &rows[i]
		}
	}
	if target == nil {
		return nil, fmt.Errorf("ablation: no 8201-32FH fig4 row")
	}
	raw := ds.Autopower[target.Router]
	pred, err := s.prediction(ds, target.Router, target.Model)
	if err != nil {
		return nil, err
	}
	// Evaluate on an event-free window (before the Fig. 4 transceiver
	// removal and flapping events), where the residual reflects noise
	// rather than inventory mismatches.
	quietFrom := ds.Network.Config.Start.Add(5 * 24 * time.Hour)
	quietTo := ds.Network.Config.Start.Add(20 * 24 * time.Hour)
	smoothed, ap, pr, diff := s.scratch.get(), s.scratch.get(), s.scratch.get(), s.scratch.get()
	defer s.scratch.put(smoothed, ap, pr, diff)
	var out []SmoothingResult
	for _, w := range []time.Duration{0, 5 * time.Minute, 30 * time.Minute, 2 * time.Hour} {
		raw.SmoothInto(w, smoothed).BetweenInto(quietFrom, quietTo, ap)
		pred.SmoothInto(w, smoothed).BetweenInto(quietFrom, quietTo, pr)
		if _, err := timeseries.SubInto(ap, pr, diff); err != nil {
			return nil, err
		}
		med := diff.Median()
		var ss float64
		for i := 0; i < diff.Len(); i++ {
			d := diff.Value(i) - med
			ss += d * d
		}
		out = append(out, SmoothingResult{
			Window:       w,
			ResidualRMSE: units.Power(math.Sqrt(ss / float64(diff.Len()))),
		})
	}
	return out, nil
}

// HypnosThresholdResult is one utilization cap's link-sleeping outcome.
type HypnosThresholdResult struct {
	// MaxUtilization is the §8 scheduler's load cap on remaining links.
	MaxUtilization float64
	// SleepingLinks is the time-averaged sleeping count.
	SleepingLinks float64
	// RefinedLow is the conservative savings under that schedule.
	RefinedLow units.Power
}

// AblationHypnosThreshold sweeps the scheduler's utilization cap: looser
// caps let more links sleep but erode the failover headroom — the §8
// design trade-off quantified.
func (s *Suite) AblationHypnosThreshold() ([]HypnosThresholdResult, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	topo, traffic, err := hypnos.FromNetwork(ds.Network)
	if err != nil {
		return nil, err
	}
	var out []HypnosThresholdResult
	for _, maxUtil := range []float64{0.25, 0.5, 0.8} {
		sched, err := hypnos.Run(topo, traffic, hypnos.Options{
			Start:          ds.Network.Config.Start,
			Window:         3 * 24 * time.Hour,
			Step:           3 * time.Hour,
			MaxUtilization: maxUtil,
		})
		if err != nil {
			return nil, err
		}
		sv := hypnos.Evaluate(sched)
		out = append(out, HypnosThresholdResult{
			MaxUtilization: maxUtil,
			SleepingLinks:  sv.MeanSleepingLinks,
			RefinedLow:     sv.RefinedLow,
		})
	}
	return out, nil
}

// SweepDensityResult is one rate-sweep density's derivation quality.
type SweepDensityResult struct {
	Rates int
	// EBitErrorPct is the relative error of the derived Ebit against the
	// dense-sweep reference.
	EBitErrorPct float64
	// FitQuality is the weakest regression R².
	FitQuality float64
}

// AblationSweepDensity derives the same profile with 2, 3, and 7 rate
// points per packet size: the paper's methodology regresses over rates,
// and this quantifies how many points that regression actually needs.
func (s *Suite) AblationSweepDensity() ([]SweepDensityResult, error) {
	ref, err := s.Derive("NCS-55A1-24H", "", model.PassiveDAC, 100*g)
	if err != nil {
		return nil, err
	}
	refEBit := ref.Profile.EBit.Picojoules()

	var out []SweepDensityResult
	rateSets := [][]units.BitRate{
		{10 * g, 100 * g},
		{10 * g, 50 * g, 100 * g},
		{2.5 * g, 5 * g, 10 * g, 25 * g, 50 * g, 75 * g, 100 * g},
	}
	for i, rates := range rateSets {
		spec, err := device.Spec("NCS-55A1-24H")
		if err != nil {
			return nil, err
		}
		dut, err := device.New(spec, "sweep-dut", s.seed+100+int64(i))
		if err != nil {
			return nil, err
		}
		m := meter.New(s.seed + 200 + int64(i))
		if err := m.Attach(0, dut); err != nil {
			return nil, err
		}
		orch, err := labbench.New(dut, m, labbench.Config{
			Transceiver: model.PassiveDAC,
			Speed:       100 * g,
			Rates:       rates,
		})
		if err != nil {
			return nil, err
		}
		res, err := orch.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, SweepDensityResult{
			Rates:        len(rates),
			EBitErrorPct: 100 * math.Abs(res.Profile.EBit.Picojoules()-refEBit) / refEBit,
			FitQuality:   res.Report.FitQuality(),
		})
	}
	return out, nil
}
