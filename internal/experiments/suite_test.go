package experiments

import (
	"sync"
	"testing"

	"fantasticjoules/internal/labbench"
	"fantasticjoules/internal/model"
)

// TestDeriveSingleFlight checks the per-artifact memoization: concurrent
// Derive calls for the same profile must share exactly one lab run (the
// returned pointers are identical), not duplicate it.
func TestDeriveSingleFlight(t *testing.T) {
	s := New(42)
	const callers = 8
	results := make([]*labbench.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Derive("NCS-55A1-24H", "", model.PassiveDAC, 100*g)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different derivation instance", i)
		}
	}
}

// TestDatasetSingleFlight checks that concurrent Dataset calls share one
// fleet simulation.
func TestDatasetSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation skipped in -short mode")
	}
	s := New(42)
	const callers = 4
	dss := make([]any, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ds, err := s.Dataset()
			dss[i], errs[i] = ds, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if dss[i] != dss[0] {
			t.Fatalf("caller %d got a different dataset instance", i)
		}
	}
}

// TestConcurrentIndependentArtifacts drives cheap corpus-backed artifacts
// and lab derivations from many goroutines at once. Under -race this is
// the static-analysis gate for the suite's per-artifact caching: no
// artifact may serialize behind or corrupt another.
func TestConcurrentIndependentArtifacts(t *testing.T) {
	s := New(42)
	s.SetWorkers(4)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	jobs := []func() error{
		func() error { _, err := s.Fig2b(); return err },
		func() error {
			if pts := s.Fig2a(); len(pts) == 0 {
				t.Error("empty fig2a")
			}
			return nil
		},
		func() error { _, err := s.Table2(); return err },
		func() error { _, err := s.Table2(); return err },
		func() error {
			if rows := s.Table5(); len(rows) != 4 {
				t.Error("bad table5")
			}
			return nil
		},
		func() error {
			if res := s.Fig5(); len(res.PFE600) == 0 {
				t.Error("empty fig5")
			}
			return nil
		},
		func() error { _, err := s.Derive("8201-32FH", "", model.PassiveDAC, 100*g); return err },
		func() error { _, err := s.Fig8(); return err },
	}
	for _, job := range jobs {
		wg.Add(1)
		go func(job func() error) {
			defer wg.Done()
			if err := job(); err != nil {
				errc <- err
			}
		}(job)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestTableRowsIdenticalAcrossWorkerCounts checks the derivation fan-out
// is deterministic: Table 2 computed serially equals Table 2 computed by
// the pool, row for row.
func TestTableRowsIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := New(42)
	serial.SetWorkers(1)
	pooled := New(42)
	pooled.SetWorkers(8)

	a, err := serial.Table2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pooled.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Router != b[i].Router || a[i].Key != b[i].Key {
			t.Fatalf("row %d identity differs: %v vs %v", i, a[i], b[i])
		}
		if a[i].PBase != b[i].PBase || a[i].Derived != b[i].Derived || a[i].FitQuality != b[i].FitQuality {
			t.Fatalf("row %d values differ between worker counts", i)
		}
	}
}
