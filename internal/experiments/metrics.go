package experiments

import (
	"time"

	"fantasticjoules/internal/telemetry"
)

// Suite instrumentation: memo-cell effectiveness and per-artifact
// derivation cost, on the process-wide telemetry registry. Metrics are
// write-only — no experiment result depends on them — and updates happen
// at artifact frequency, so the suite's outputs and caching behaviour
// are unchanged by instrumentation.
var (
	metricMemoHits = telemetry.Default().Counter("experiments_memo_hits_total",
		"artifact requests served from a memo cell without recomputation")
	metricMemoMisses = telemetry.Default().Counter("experiments_memo_misses_total",
		"artifact requests that computed their memo cell")
	metricEpochInvalidations = telemetry.Default().Counter("experiments_cell_epoch_invalidations_total",
		"epoch cells marked stale by invalidation cascades (Perturb/Invalidate)")
)

// observeArtifact records the duration of one artifact computation under
// experiments_artifact_seconds{artifact="<name>"}. Only memo misses are
// timed — cache hits cost nothing and would drown the signal.
func observeArtifact(name string, start time.Time) {
	telemetry.Default().Histogram(
		telemetry.Label("experiments_artifact_seconds", "artifact", name),
		"wall-clock time to compute one suite artifact (memo misses only)",
		nil,
	).ObserveSince(start)
}
