package experiments

import (
	"testing"
)

// TestShapeHoldsAcrossSeeds re-checks the headline shape claims under
// different random universes: the reproduction must not depend on seed 42.
// Skipped under -short (each seed builds a fresh fleet and lab).
func TestShapeHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for _, seed := range []int64{7, 1234} {
		seed := seed
		t.Run(map[int64]string{7: "seed7", 1234: "seed1234"}[seed], func(t *testing.T) {
			s := New(seed)

			// Table 1: the two 8000-series underestimate, everything else
			// overestimates.
			rows, err := s.Table1()
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				is8000 := r.Model == "8201-32FH" || r.Model == "8201-24H8FH"
				if is8000 && r.Overestimate >= 0 {
					t.Errorf("%s should underestimate, got %+.0f%%", r.Model, r.Overestimate*100)
				}
				if !is8000 && r.Overestimate <= 0 {
					t.Errorf("%s should overestimate, got %+.0f%%", r.Model, r.Overestimate*100)
				}
			}

			// Fig 4: the model underestimates on every instrumented router
			// and tracks the shape.
			f4, err := s.Fig4()
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range f4 {
				if row.ModelOffset <= 0 {
					t.Errorf("%s (%s): offset %+.1f W, want positive",
						row.Router, row.Model, row.ModelOffset.Watts())
				}
				// The N540X's traffic-induced signal is ≈0.1 W against
				// meter noise, so its correlation is fragile by nature
				// (the paper's Fig. 9c panel is the noisiest too).
				minCorr := 0.5
				if row.Model == "N540X-8Z16G-SYS-A" {
					minCorr = 0.35
				}
				if row.ModelShapeCorrelation < minCorr {
					t.Errorf("%s: shape corr %.2f", row.Model, row.ModelShapeCorrelation)
				}
			}

			// §8: refined savings stay a small share, below the naive view.
			s8, err := s.Section8()
			if err != nil {
				t.Fatal(err)
			}
			if s8.HighShare > 0.04 || s8.LowShare <= 0 {
				t.Errorf("savings range %.2f%%–%.2f%% out of band",
					s8.LowShare*100, s8.HighShare*100)
			}
			if s8.Savings.Table5 > s8.Savings.RefinedHigh || s8.Savings.Table5 < s8.Savings.RefinedLow {
				t.Errorf("point estimate outside its own bounds")
			}

			// Table 3: Titanium combined stays the best measure.
			t3, err := s.Table3()
			if err != nil {
				t.Fatal(err)
			}
			if t3.Combined["Titanium"].Watts < t3.MoreEfficient["Titanium"].Watts {
				t.Error("combined measure lost to its component")
			}
		})
	}
}
