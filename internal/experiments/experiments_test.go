package experiments

import (
	"math"
	"sync"
	"testing"
)

// The suite is expensive (fleet simulation + lab derivations); all tests
// share one instance.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() { suite = New(42) })
	return suite
}

func TestFig1(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if mean := res.Power.Mean(); mean < 20000 || mean > 23000 {
		t.Errorf("fig1 power mean = %.0f W, want ≈21.5–22 kW", mean)
	}
	if tr := res.Traffic.Mean(); tr < 0.4e12 || tr > 1.6e12 {
		t.Errorf("fig1 traffic mean = %.2f Tbps", tr/1e12)
	}
	// §7: the power/traffic correlation is invisible at network scale —
	// the decommissioning steps and noise dominate any traffic effect.
	if c := res.PowerTrafficCorrelation; math.Abs(c) > 0.5 {
		t.Errorf("power–traffic correlation = %.2f, should be weak", c)
	}
}

func TestFig2(t *testing.T) {
	s := sharedSuite(t)
	asic := s.Fig2a()
	if len(asic) < 5 {
		t.Error("fig2a too small")
	}
	res, err := s.Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plotted < 50 {
		t.Errorf("fig2b points = %d", res.Plotted)
	}
	if res.Fit.Slope >= 0 {
		t.Errorf("fig2b slope = %v, want mildly negative", res.Fit.Slope)
	}
	if res.Fit.R2 > 0.5 {
		t.Errorf("fig2b R² = %v — the router trend must be noisy, unlike fig2a", res.Fit.R2)
	}
}

func TestTable1Shape(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("table1 rows = %d, want 8", len(rows))
	}
	// The headline finding: most datasheets overestimate, but the two
	// Cisco 8000s underestimate (negative rows at the bottom).
	neg := map[string]bool{}
	for _, r := range rows {
		if r.Overestimate < 0 {
			neg[r.Model] = true
		}
	}
	if !neg["8201-32FH"] || !neg["8201-24H8FH"] || len(neg) != 2 {
		t.Errorf("underestimating models = %v, want exactly the two 8000-series", neg)
	}
	// Sorted descending; the NCS-55A1-24H leads with ≈40 %.
	if rows[0].Model != "NCS-55A1-24H" {
		t.Errorf("top row = %s, want NCS-55A1-24H", rows[0].Model)
	}
	if rows[0].Overestimate < 0.30 || rows[0].Overestimate > 0.50 {
		t.Errorf("top overestimate = %.0f%%, want ≈40%%", rows[0].Overestimate*100)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Overestimate > rows[i-1].Overestimate {
			t.Error("rows not sorted by overestimation")
		}
	}
}

func TestTable2MatchesPublished(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("table2 rows = %d, want 7", len(rows))
	}
	for _, row := range rows {
		if row.Published == nil {
			t.Errorf("%s %s: no published reference", row.Router, row.Key)
			continue
		}
		// Derived Pbase within 20 % of published (our simulated units'
		// PSU quality legitimately differs from the authors' — the 8201's
		// poor supplies raise its wall-referenced base).
		if d := relErr(row.PBase.Watts(), row.PBasePublished.Watts()); d > 0.20 {
			t.Errorf("%s: Pbase %.1f vs published %.1f (%.0f%%)",
				row.Router, row.PBase.Watts(), row.PBasePublished.Watts(), d*100)
		}
		// Ebit within 25 % on high-speed profiles (the paper itself flags
		// the 1G derivation as imprecise).
		if row.Key.Speed >= 10*g {
			if d := relErr(row.Derived.EBit.Picojoules(), row.Published.EBit.Picojoules()); d > 0.25 {
				t.Errorf("%s %s: Ebit %.1f pJ vs published %.1f pJ",
					row.Router, row.Key, row.Derived.EBit.Picojoules(), row.Published.EBit.Picojoules())
			}
		}
	}
}

func TestTable6Derives(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("table6 rows = %d, want 9", len(rows))
	}
	for _, row := range rows {
		if row.PBase <= 0 {
			t.Errorf("%s: non-positive Pbase", row.Router)
		}
		// High-speed fits must be clean; low-speed ones (and small port
		// banks) may be noisy — the paper flags exactly this.
		if row.Key.Speed >= 100*g && row.FitQuality < 0.9 {
			t.Errorf("%s %s: fit quality %.3f", row.Router, row.Key, row.FitQuality)
		}
	}
}

func TestFig4Validation(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("fig4 rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		// The model consistently underestimates: spares and unmodeled
		// factors make Autopower ≥ prediction. Offsets of ≈2–25 W.
		if off := row.ModelOffset.Watts(); off < 0.5 || off > 30 {
			t.Errorf("%s (%s): model offset %.1f W, want a small positive offset",
				row.Router, row.Model, off)
		}
		// Shapes must match.
		if row.ModelShapeCorrelation < 0.6 {
			t.Errorf("%s: model shape correlation %.2f, want high", row.Model, row.ModelShapeCorrelation)
		}
		switch row.Model {
		case "N540X-8Z16G-SYS-A":
			if row.SNMP != nil {
				t.Error("the N540X must have no PSU trace (Fig. 4c)")
			}
		case "8201-32FH":
			if row.SNMP == nil {
				t.Fatal("8201 must report PSU power")
			}
			// Precise but not accurate: strong shape, constant offset.
			if row.SNMPShapeCorrelation < 0.8 {
				t.Errorf("8201 SNMP shape correlation = %.2f", row.SNMPShapeCorrelation)
			}
			if off := row.SNMPOffset.Watts(); off < 10 || off > 25 {
				t.Errorf("8201 SNMP offset = %.1f W, want ≈15–20", off)
			}
		case "NCS-55A1-24H":
			if row.SNMP == nil {
				t.Fatal("NCS must report PSU power")
			}
			// Pseudo-constant: the PSU trace explains much less of the
			// ground truth's shape than the 8201's offset sensor does.
			if row.SNMPShapeCorrelation > 0.7 {
				t.Errorf("NCS SNMP correlation = %.2f, want weak (pseudo-constant sensor)",
					row.SNMPShapeCorrelation)
			}
		}
	}
}

func TestFig9Precision(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("fig9 rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Autopower.Len() == 0 || row.ShiftedPrediction.Len() == 0 {
			t.Fatalf("%s: empty zoom window", row.Router)
		}
		// After offset correction the model tracks within ≈2 W RMS.
		if row.ResidualRMSE.Watts() > 3 {
			t.Errorf("%s: residual RMSE %.2f W, want ≤3 (the model is precise)",
				row.Model, row.ResidualRMSE.Watts())
		}
	}
}

func TestFig5(t *testing.T) {
	s := sharedSuite(t)
	res := s.Fig5()
	if len(res.PFE600) < 5 {
		t.Error("fig5 curve too sparse")
	}
	if len(res.SetPoints) != 5 {
		t.Errorf("fig5 standards = %d, want 5", len(res.SetPoints))
	}
}

func TestFig6Spread(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) < 180 {
		t.Fatalf("fig6 points = %d, want ≈2 per router", len(res.All))
	}
	var min, max = 1.0, 0.0
	for _, p := range res.All {
		if p.Efficiency < min {
			min = p.Efficiency
		}
		if p.Efficiency > max {
			max = p.Efficiency
		}
		if p.Load <= 0 || p.Load > 0.5 {
			t.Errorf("PSU load %.2f outside the lightly-loaded regime", p.Load)
		}
	}
	// §9.3.1: efficiencies from very good (>95 %) to very poor (<70 %).
	if min > 0.70 {
		t.Errorf("min efficiency = %.2f, want poor outliers", min)
	}
	if max < 0.93 {
		t.Errorf("max efficiency = %.2f, want very good units", max)
	}
	// Per-model panels: NCS fares well, 8201 poorly, ASR-920 spans wide.
	ncs := efficiencies(res.ByModel["NCS-55A1-24H"])
	cisco8k := efficiencies(res.ByModel["8201-32FH"])
	if mean(ncs) < mean(cisco8k) {
		t.Errorf("NCS mean eff %.2f must beat 8201 %.2f", mean(ncs), mean(cisco8k))
	}
	if mean(cisco8k) > 0.80 {
		t.Errorf("8201 mean efficiency = %.2f, want ≤0.80 (Fig. 6c)", mean(cisco8k))
	}
	asr := efficiencies(res.ByModel["ASR-920-24SZ-M"])
	if spread(asr) < spread(ncs) {
		t.Errorf("ASR-920 spread %.2f must exceed NCS spread %.2f (Fig. 6d)",
			spread(asr), spread(ncs))
	}
}

func TestTable3Shape(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Monotone across standards, Titanium the best; paper: 2–7 %.
	prev := -1.0
	for _, level := range []string{"Bronze", "Silver", "Gold", "Platinum", "Titanium"} {
		sv := res.MoreEfficient[level]
		if sv.Fraction < prev {
			t.Errorf("savings not monotone at %s", level)
		}
		prev = sv.Fraction
	}
	if f := res.MoreEfficient["Titanium"].Fraction; f < 0.03 || f > 0.12 {
		t.Errorf("Titanium savings = %.1f%%, want ≈7%%", f*100)
	}
	if f := res.SinglePSU.Fraction; f < 0.015 || f > 0.09 {
		t.Errorf("single-PSU savings = %.1f%%, want ≈4%%", f*100)
	}
	// Combined beats either measure alone, Titanium combined ≈9 %.
	for _, level := range []string{"Bronze", "Titanium"} {
		both := res.Combined[level]
		if both.Watts < res.MoreEfficient[level].Watts || both.Watts < res.SinglePSU.Watts {
			t.Errorf("%s combined %v below its parts", level, both)
		}
	}
	if f := res.Combined["Titanium"].Fraction; f < 0.05 || f > 0.15 {
		t.Errorf("Titanium combined = %.1f%%, want ≈9%%", f*100)
	}
}

func TestTable4Shape(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.K1) != 6 || len(res.K2) != 6 {
		t.Fatalf("table4 columns = %d/%d", len(res.K1), len(res.K2))
	}
	// Tight sizing saves, forced over-provisioning costs; k=1 first
	// column is the best case; savings decrease along the row.
	if res.K1[0].Watts <= 0 {
		t.Errorf("k=1 @250W = %v, want positive savings", res.K1[0])
	}
	last := len(res.K1) - 1
	if res.K1[last].Watts >= 0 {
		t.Errorf("k=1 @2700W = %v, want a cost (negative)", res.K1[last])
	}
	for i := 1; i < len(res.K1); i++ {
		if res.K1[i].Watts > res.K1[i-1].Watts+1 {
			t.Errorf("k=1 savings rise along the capacity row at %v", res.Capacities[i])
		}
	}
	// Large capacity columns saturate: k no longer matters.
	if math.Abs(res.K1[last].Watts.Watts()-res.K2[last].Watts.Watts()) > 1 {
		t.Errorf("k=1 and k=2 must agree at 2700 W: %v vs %v", res.K1[last], res.K2[last])
	}
}

func TestSection7Numbers(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Section7()
	if err != nil {
		t.Fatal(err)
	}
	// Traffic is a rounding error: tens of watts, far below 1 %.
	if res.TrafficShare > 0.005 {
		t.Errorf("traffic share = %.4f, want ≪1%%", res.TrafficShare)
	}
	if res.TrafficPower.Watts() < 1 || res.TrafficPower.Watts() > 100 {
		t.Errorf("traffic power = %v, want tens of watts", res.TrafficPower)
	}
	// Transceivers: ≈10 % of total power (paper: 2.2 kW of 22 kW).
	if res.TransceiverShare < 0.05 || res.TransceiverShare > 0.15 {
		t.Errorf("transceiver share = %.1f%%, want ≈10%%", res.TransceiverShare*100)
	}
}

func TestSection8Numbers(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Section8()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: savings of 0.4–1.9 % of total power; and clearly below the
	// naive expectation.
	if res.LowShare < 0.001 || res.LowShare > 0.012 {
		t.Errorf("low share = %.2f%%, want sub-1%%", res.LowShare*100)
	}
	if res.HighShare < 0.005 || res.HighShare > 0.035 {
		t.Errorf("high share = %.2f%%, want ≈1–2%%", res.HighShare*100)
	}
	if res.HighShare <= res.LowShare {
		t.Error("high bound must exceed low bound")
	}
	// The Table 5 point estimate lands near the lower end — the paper's
	// conclusion about Ptrx,in dominating.
	point := res.Savings.Table5.Watts()
	low, high := res.Savings.RefinedLow.Watts(), res.Savings.RefinedHigh.Watts()
	if point-low > (high-low)/2 {
		t.Errorf("point estimate %.0f W should sit in the lower half of [%.0f, %.0f]", point, low, high)
	}
	if res.ExternalIfaceShare < 0.40 || res.ExternalIfaceShare > 0.62 {
		t.Errorf("external iface share = %.2f, want ≈0.51", res.ExternalIfaceShare)
	}
	if res.InternalLinks < 100 {
		t.Errorf("internal links = %d", res.InternalLinks)
	}
}

func TestFig8Bump(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if b := res.Bump.Watts(); b < 35 || b > 55 {
		t.Errorf("fig8 bump = %.1f W, want ≈45", b)
	}
	if res.RelativeBump < 0.08 || res.RelativeBump > 0.16 {
		t.Errorf("fig8 relative bump = %.1f%%, want ≈12%%", res.RelativeBump*100)
	}
}

func TestTable5Export(t *testing.T) {
	s := sharedSuite(t)
	rows := s.Table5()
	if len(rows) != 4 {
		t.Fatalf("table5 rows = %d", len(rows))
	}
}

func TestAblationDynamicTerms(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.AblationDynamicTerms()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range res {
		byName[r.Variant] = r.RMSE.Watts()
	}
	if byName["full"] >= byName["static-only"] {
		t.Errorf("full model RMSE %.2f must beat static-only %.2f", byName["full"], byName["static-only"])
	}
	if byName["full"] >= byName["no-ebit"] {
		t.Errorf("full model RMSE %.2f must beat no-ebit %.2f", byName["full"], byName["no-ebit"])
	}
	if byName["full"] >= byName["no-epkt"] {
		t.Errorf("full model RMSE %.2f must beat no-epkt %.2f", byName["full"], byName["no-epkt"])
	}
}

func TestAblationSmoothing(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.AblationSmoothing()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 3 {
		t.Fatalf("smoothing variants = %d", len(res))
	}
	// Smoothing must reduce the residual versus the raw traces.
	raw := res[0].ResidualRMSE.Watts()
	smoothed := res[2].ResidualRMSE.Watts() // 30 min
	if smoothed >= raw {
		t.Errorf("30-min smoothing residual %.2f must beat raw %.2f", smoothed, raw)
	}
}

func TestAblationSweepDensity(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.AblationSweepDensity()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("density variants = %d", len(res))
	}
	for _, r := range res {
		// Even the sparse sweep recovers Ebit reasonably; all fits clean.
		if r.EBitErrorPct > 15 {
			t.Errorf("%d rates: Ebit error %.1f%%", r.Rates, r.EBitErrorPct)
		}
		if r.FitQuality < 0.95 {
			t.Errorf("%d rates: fit quality %.3f", r.Rates, r.FitQuality)
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func efficiencies(pts []Fig6Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Efficiency
	}
	return out
}

func mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func spread(xs []float64) float64 {
	min, max := 1.0, 0.0
	for _, v := range xs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

func TestAblationHypnosThreshold(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.AblationHypnosThreshold()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("variants = %d", len(res))
	}
	// A looser cap can only sleep at least as many links.
	for i := 1; i < len(res); i++ {
		if res[i].MaxUtilization <= res[i-1].MaxUtilization {
			t.Error("caps must ascend")
		}
		if res[i].SleepingLinks < res[i-1].SleepingLinks-1e-9 {
			t.Errorf("looser cap slept fewer links: %.1f @%.2f vs %.1f @%.2f",
				res[i].SleepingLinks, res[i].MaxUtilization,
				res[i-1].SleepingLinks, res[i-1].MaxUtilization)
		}
	}
}

func TestBaselinesQuantifySection2(t *testing.T) {
	s := sharedSuite(t)
	rows, err := s.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("baseline rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		// The refined lab model must beat the datasheet interpolation
		// clearly on every router — §2's point made quantitative.
		if r.LabModelMAE >= r.BaselineMAE {
			t.Errorf("%s (%s): lab MAE %.1f not below baseline MAE %.1f",
				r.Router, r.Model, r.LabModelMAE.Watts(), r.BaselineMAE.Watts())
		}
		if r.BaselineMAE.Watts() < 10 {
			t.Errorf("%s: baseline MAE %.1f suspiciously good; datasheets are off by tens of watts",
				r.Model, r.BaselineMAE.Watts())
		}
	}
}
