package experiments

import (
	"testing"
	"time"
)

// TestOptimizeScale1k closes the loop on a generated 1k-router fleet
// over a short window (the 7-day default lives behind the CLI artifact):
// the rig must come up chunk-retained, the controller must act, the
// guardrail must never fire, and the realized wall-side saving must land
// in the advertised estimate envelope — the scale-agnostic twin of
// TestSection8OnlineWindow.
func TestOptimizeScale1k(t *testing.T) {
	if testing.Short() {
		t.Skip("1k closed-loop run in -short mode")
	}
	row, err := RunOptimizeScale(OptimizeScaleConfig{
		Seed: 42, Routers: 1000, Window: 24 * time.Hour, Step: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !row.ChunkRetained {
		t.Error("1k fleet not in chunk-retained mode")
	}
	if len(row.Tiers) != 3 {
		t.Errorf("Tiers = %v, want 3 tiers", row.Tiers)
	}
	if row.Steps != 24 {
		t.Errorf("Steps = %d, want 24 (1 day at 1h)", row.Steps)
	}
	if row.Links == 0 {
		t.Error("derived topology has no links")
	}
	if row.Actions == 0 {
		t.Error("optimizer took no actions on the 1k fleet")
	}
	if row.GuardrailViolations != 0 {
		t.Errorf("GuardrailViolations = %d, want 0", row.GuardrailViolations)
	}
	if row.RealizedSavedJoules <= 0 {
		t.Errorf("RealizedSavedJoules = %v, want > 0", row.RealizedSavedJoules)
	}
	if row.PSUsShed == 0 || row.PSUSavedJoules <= 0 {
		t.Errorf("PSU shed pass: shed=%d saved=%v, want both > 0",
			row.PSUsShed, row.PSUSavedJoules)
	}
	if row.EnvelopeLow <= 0 || row.EnvelopeHigh <= row.EnvelopeLow {
		t.Errorf("degenerate envelope [%v, %v]", row.EnvelopeLow, row.EnvelopeHigh)
	}
	if !row.WithinEnvelope {
		t.Errorf("realized %v W outside envelope [%v, %v] W",
			row.RealizedSavedWatts.Watts(),
			row.EnvelopeLow.Watts(), row.EnvelopeHigh.Watts())
	}
	if row.BaselineMeanPower <= 0 || row.RealizedShare <= 0 {
		t.Errorf("baseline mean %v / share %v not populated",
			row.BaselineMeanPower, row.RealizedShare)
	}
}
