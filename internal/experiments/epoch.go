package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fantasticjoules/internal/timeseries"
)

// ErrUnknownArtifact is returned (wrapped) by Suite.Invalidate when the
// artifact name resolves to no registered cell — a misspelled handle
// would otherwise silently invalidate nothing and leave the caller
// believing the cascade ran. Test with errors.Is.
var ErrUnknownArtifact = errors.New("experiments: unknown artifact")

// node is the dependency-graph core of an epoch cell: a name, a validity
// flag, and the downstream edges the invalidation cascade walks. The
// graph is a DAG whose edges point downstream (parent → dependents);
// invalidating a node marks it and everything below it stale, and the
// next get() of a stale cell recomputes by pulling its parents.
//
// The cascade maintains one invariant: a valid cell's transitive parents
// are all valid (a cell only becomes valid by computing, which pulls its
// parents valid first). That is why invalidate can stop at an
// already-stale node — its dependents were marked when it was.
type node struct {
	name string

	// valid is flipped false by invalidate and true by get — true
	// *before* the compute runs, so an invalidation that lands while the
	// compute is in flight sticks and forces the next get to recompute
	// (the in-flight compute may have read pre-invalidation inputs).
	valid atomic.Bool

	// mu serializes same-cell computes (single-flight: concurrent gets of
	// one artifact share one computation) and guards the value slots of
	// the owning ecell. Distinct cells never share a mutex, so
	// independent artifacts never serialize behind each other; a compute
	// that pulls a parent takes the parent's mutex while holding its own,
	// which is deadlock-free because edges form a DAG.
	mu sync.Mutex

	// edgeMu guards dependents: cells register downstream edges lazily
	// (per-router cells are created on first use) while an invalidation
	// may be walking the slice.
	edgeMu     sync.Mutex
	dependents []*node
}

// dependOn registers n as a dependent of each parent.
func (n *node) dependOn(parents ...*node) {
	for _, p := range parents {
		p.edgeMu.Lock()
		p.dependents = append(p.dependents, n)
		p.edgeMu.Unlock()
	}
}

// invalidate marks the node and its transitive dependents stale. Returns
// without descending when the node was already stale (see the invariant
// above). Each newly staled cell counts one epoch invalidation.
func (n *node) invalidate() {
	if !n.valid.CompareAndSwap(true, false) {
		return
	}
	metricEpochInvalidations.Inc()
	n.edgeMu.Lock()
	deps := make([]*node, len(n.dependents))
	copy(deps, n.dependents)
	n.edgeMu.Unlock()
	for _, d := range deps {
		d.invalidate()
	}
}

// ecell is an epoch-keyed memo cell: like the one-shot cell it replaces,
// the first get computes and every later get returns the cached value —
// until an upstream input is invalidated, after which exactly the stale
// downstream slice of the graph recomputes on demand.
type ecell[T any] struct {
	node
	val T
	err error
}

// newCell allocates a cell, registers it in the suite's cell registry
// under name (the handle Suite.Invalidate resolves), and wires its
// upstream edges.
func newCell[T any](s *Suite, name string, parents ...*node) *ecell[T] {
	c := &ecell[T]{}
	c.name = name
	c.dependOn(parents...)
	s.cellMu.Lock()
	s.cells[name] = &c.node
	s.cellMu.Unlock()
	return c
}

func (c *ecell[T]) get(compute func() (T, error)) (T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.valid.Load() {
		metricMemoHits.Inc()
		return c.val, c.err
	}
	metricMemoMisses.Inc()
	// Mark valid before computing so a mid-compute invalidation wins:
	// the value stored below may then be stale, and the next get will
	// recompute it.
	c.valid.Store(true)
	c.val, c.err = compute()
	return c.val, c.err
}

// Invalidate marks the named artifact cell and everything downstream of
// it stale; the next request for any of them recomputes. Artifact names
// are the cell-registry handles: the inputs ("dataset", "corpus",
// "records"), the figure caches ("fig1", "fig4", "fig9", "section7",
// "section8", "baselines", "ablation-smoothing", "fig8"), and the
// per-router dynamic cells ("model/<hardware>", "predict/<router>",
// "derive/<profile-key>") once they exist.
func (s *Suite) Invalidate(artifact string) error {
	s.cellMu.Lock()
	n, ok := s.cells[artifact]
	s.cellMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownArtifact, artifact)
	}
	n.invalidate()
	return nil
}

// arena is the suite's scratch-buffer pool for transient series: the
// smoothing/resampling/subtraction intermediates of the validation and
// ablation paths borrow a buffer, fill it with an Into-variant, and
// return it. Buffers keep their capacity across uses, so steady-state
// analyses allocate nothing for intermediates.
//
// Ownership rules (DESIGN.md §11): a borrowed series is owned by the
// borrower until put back; anything cached or returned to a caller must
// be a freshly allocated series, never a scratch buffer — and an Into
// destination must not alias its source.
type arena struct {
	pool sync.Pool
}

func (a *arena) get() *timeseries.Series {
	if s, ok := a.pool.Get().(*timeseries.Series); ok {
		return s
	}
	return timeseries.New("")
}

func (a *arena) put(series ...*timeseries.Series) {
	for _, s := range series {
		if s != nil {
			a.pool.Put(s)
		}
	}
}
