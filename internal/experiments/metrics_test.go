package experiments

import (
	"testing"
)

// TestMemoMetrics checks the suite's memo-cell instrumentation: the
// first request for an artifact is a miss, repeats are hits. Deltas are
// used because the registry is process-wide and shared with the other
// tests in this package.
func TestMemoMetrics(t *testing.T) {
	s := New(4242)
	hits0, misses0 := metricMemoHits.Value(), metricMemoMisses.Value()

	s.Corpus()
	if got := metricMemoMisses.Value() - misses0; got != 1 {
		t.Fatalf("misses after first Corpus = %d, want 1", got)
	}
	s.Corpus()
	s.Corpus()
	if got := metricMemoHits.Value() - hits0; got != 2 {
		t.Fatalf("hits after repeated Corpus = %d, want 2", got)
	}
	// Records computes its own cell (miss) and reads the corpus cell
	// (hit).
	s.Records()
	if got := metricMemoMisses.Value() - misses0; got != 2 {
		t.Fatalf("misses after Records = %d, want 2", got)
	}
	if got := metricMemoHits.Value() - hits0; got != 3 {
		t.Fatalf("hits after Records = %d, want 3", got)
	}
}
