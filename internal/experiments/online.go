package experiments

import (
	"time"

	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/optimizer"
	"fantasticjoules/internal/units"
)

// onlinePSUEfficiencyFloor bounds the wall-side amplification of a
// DC-side saving: every watt the sleep schedule removes downstream of
// the PSUs removes up to 1/η watts at the wall, and the fleet's supplies
// never convert worse than this in their operating range (Fig. 5).
const onlinePSUEfficiencyFloor = 0.8

// Section8OnlineResult compares what the online optimizer *realized* on
// the simulated fleet against the offline §8 estimate. The offline
// analysis prices a hypothetical schedule with Table 5 constants; the
// online run actuates a schedule and measures the wall-power delta the
// device models actually produce — through the PSU conversion loss, with
// the true (not averaged) per-profile port and transceiver terms.
type Section8OnlineResult struct {
	// Offline is the §8 estimate over the same fleet (the hypothetical
	// 30-day hypnos schedule, Table 5 accounting).
	Offline Section8Result
	// Estimate prices the *realized* schedule (hysteresis included) with
	// the same Table 5 accounting, so the envelope below compares like
	// with like: same sleeping link-hours, estimated vs measured worth.
	Estimate hypnos.Savings
	// Window and Steps describe the control run.
	Window time.Duration
	Steps  int
	// Control-loop accounting.
	Actions             int
	Vetoes              int
	Resimulates         int
	GuardrailViolations int
	Transitions         int
	PSUsShed            int
	// RealizedSavedJoules / RealizedSavedWatts are the measured wall-side
	// saving of the sleep schedule vs the no-op baseline (watts = joules
	// averaged over the control window). RealizedShare is the fraction of
	// the baseline's mean wall power. PSUSavedJoules is the additional
	// saving of the PSU-shedding pass, separately accounted.
	RealizedSavedJoules units.Energy
	RealizedSavedWatts  units.Power
	RealizedShare       float64
	PSUSavedJoules      units.Energy
	// The acceptance envelope: realized watts must land in
	// [Estimate.RefinedLow, Estimate.RefinedHigh / onlinePSUEfficiencyFloor].
	// The lower bound is the §7 refined floor (only Pport is certainly
	// saved); the upper bound is the refined ceiling (full datasheet
	// Ptrx,up) amplified by the worst-case PSU conversion, since the
	// estimate is DC-side and the measurement is wall-side.
	EnvelopeLow    units.Power
	EnvelopeHigh   units.Power
	WithinEnvelope bool
}

// Section8Online runs the closed-loop optimizer over the full study
// window on a dedicated fleet (the suite's shared fleet is never
// actuated, so every other artifact's cache stays valid) and scores the
// realized savings against the offline §8 estimate. Cached; same seed,
// same decision trace and the same joules, bit for bit.
func (s *Suite) Section8Online() (Section8OnlineResult, error) {
	return s.section8online.get(func() (Section8OnlineResult, error) {
		defer observeArtifact("section8online", time.Now())
		return s.section8OnlineUncached(0)
	})
}

// section8OnlineUncached runs the control loop over window (0 = the full
// dataset duration, the seeded 9-week acceptance run).
func (s *Suite) section8OnlineUncached(window time.Duration) (Section8OnlineResult, error) {
	offline, err := s.Section8()
	if err != nil {
		return Section8OnlineResult{}, err
	}

	// A dedicated rig: the controller perturbs its fleet's event
	// schedule, which must never leak into the suite's shared dataset.
	cfg := s.DatasetConfig()
	rig, err := optimizer.NewRig(cfg)
	if err != nil {
		return Section8OnlineResult{}, err
	}
	topo := rig.Topo
	if window == 0 {
		window = rig.Fleet.Network().Config.Duration
	}

	ctl, err := rig.Controller(optimizer.Config{
		Start:  rig.Fleet.Network().Config.Start,
		Window: window,
		Step:   time.Hour,
		// Operational hysteresis: a link that transitions holds its state
		// for four control steps, the EXPERIMENTS.md optimizer-scenario
		// setting (flapping is the §6.2 cautionary tale).
		MinDwellSteps:  4,
		MaxUtilization: optimizer.DefaultMaxUtilization,
		PSUShed:        true,
		PSUMaxLoad:     optimizer.DefaultPSUMaxLoad,
	})
	if err != nil {
		return Section8OnlineResult{}, err
	}
	rep, err := ctl.Run()
	if err != nil {
		return Section8OnlineResult{}, err
	}

	// Price the realized schedule with the offline accounting, so the
	// envelope compares the same sleeping link-hours.
	times := make([]time.Time, len(rep.Steps))
	sleeping := make([][]int, len(rep.Steps))
	for i, st := range rep.Steps {
		times[i] = st.Time
		sleeping[i] = st.Sleeping
	}
	estimate := hypnos.Evaluate(hypnos.NewSchedule(topo, times, sleeping))

	res := Section8OnlineResult{
		Offline:             offline,
		Estimate:            estimate,
		Window:              window,
		Steps:               len(rep.Steps),
		Actions:             rep.Actions,
		Vetoes:              rep.Vetoes,
		Resimulates:         rep.Resimulates,
		GuardrailViolations: rep.GuardrailViolations,
		Transitions:         rep.Transitions(),
		PSUsShed:            rep.PSUsShed,
		RealizedSavedJoules: rep.SleepSavedJoules,
		RealizedSavedWatts:  rep.SleepSavedWatts,
		PSUSavedJoules:      rep.PSUSavedJoules,
		EnvelopeLow:         estimate.RefinedLow,
		EnvelopeHigh:        units.Power(estimate.RefinedHigh.Watts() / onlinePSUEfficiencyFloor),
	}
	// Share of the suite's (unactuated) dataset mean — the same
	// denominator Section8's Low/HighShare use, so the shares compare.
	if ds, err := s.Dataset(); err == nil {
		if mean := ds.TotalPower.Mean(); mean > 0 {
			res.RealizedShare = res.RealizedSavedWatts.Watts() / mean
		}
	}
	res.WithinEnvelope = res.RealizedSavedWatts >= res.EnvelopeLow &&
		res.RealizedSavedWatts <= res.EnvelopeHigh
	return res, nil
}
