package experiments

import (
	"fmt"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// The scale study exercises the hierarchical topology generator and the
// bounded-memory streaming replay together: it builds fleets across
// several orders of magnitude, streams a study window through a counting
// sink, and reports how the synthesized population and the simulated
// energy behave as the fleet grows. The CLI (`joules run scale`) wraps
// each row with a wall-clock timer and prints simulated joules per
// wall-clock second; the timer lives in the CLI because this package is
// determinism-linted and must not read the clock.

// ScaleRow is one fleet size's streaming-run summary.
type ScaleRow struct {
	// Routers is the requested fleet size (107 = the calibrated build).
	Routers int
	// Tiers counts routers per tier; empty for the calibrated build.
	Tiers map[string]int
	// Subscribers is the synthesized population behind the fleet.
	Subscribers int64
	// Steps is the number of SNMP grid steps simulated.
	Steps int
	// MeanPower is the fleet's mean total power over the window.
	MeanPower units.Power
	// Joules is the total simulated energy over the window.
	Joules float64
	// SpilledChunks and SpilledBytes tally the sink-side volume — the
	// data a retained run would have held on the heap.
	SpilledChunks int64
	SpilledBytes  int64
}

// ScaleConfig shapes one streaming scale run.
type ScaleConfig struct {
	Seed     int64
	Routers  int
	Duration time.Duration
	Step     time.Duration
}

// RunScale streams one fleet through its study window and summarizes the
// run. It is a free function, not a Suite artifact: scale fleets are
// parameterized by size, gain nothing from the 107-router memo graph, and
// must not pin multi-gigabyte datasets in the suite cache.
func RunScale(cfg ScaleConfig) (ScaleRow, error) {
	if cfg.Routers <= 0 {
		cfg.Routers = ispnet.NumRouters
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 7 * 24 * time.Hour
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Hour
	}
	var sink ispnet.DiscardSink
	ds, err := ispnet.SimulateStream(ispnet.Config{
		Seed:          cfg.Seed,
		Routers:       cfg.Routers,
		Duration:      cfg.Duration,
		SNMPStep:      cfg.Step,
		AutopowerStep: cfg.Step,
	}, &sink)
	if err != nil {
		return ScaleRow{}, fmt.Errorf("scale run (%d routers): %w", cfg.Routers, err)
	}

	row := ScaleRow{
		Routers:       cfg.Routers,
		Subscribers:   ds.Network.TotalSubscribers(),
		Steps:         ds.TotalPower.Len(),
		Joules:        timeseries.IntegratePower(ds.TotalPower),
		SpilledChunks: sink.Chunks,
		SpilledBytes:  sink.Bytes,
	}
	if ds.Network.Hierarchical() {
		row.Tiers = make(map[string]int)
		for _, r := range ds.Network.Routers {
			row.Tiers[r.Tier]++
		}
	}
	if row.Steps > 0 {
		var sum float64
		for i := 0; i < row.Steps; i++ {
			sum += ds.TotalPower.Value(i)
		}
		row.MeanPower = units.Power(sum / float64(row.Steps))
	}
	return row, nil
}
