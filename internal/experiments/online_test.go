package experiments

import (
	"testing"
	"time"
)

// TestSection8OnlineWindow runs the online artifact's control loop over a
// short window (the full 9-week acceptance run lives behind the cached
// Section8Online artifact / `joules -optimize`): the optimizer must act,
// the SLA guardrail must never fire, and the realized wall-side saving
// must land inside the estimate envelope the result advertises.
func TestSection8OnlineWindow(t *testing.T) {
	s := New(42)
	res, err := s.section8OnlineUncached(2 * 24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 48 {
		t.Errorf("Steps = %d, want 48 (2 days at 1h)", res.Steps)
	}
	if res.Actions == 0 {
		t.Error("optimizer took no actions on the static fleet")
	}
	if res.GuardrailViolations != 0 {
		t.Errorf("GuardrailViolations = %d, want 0", res.GuardrailViolations)
	}
	if res.RealizedSavedJoules <= 0 {
		t.Errorf("RealizedSavedJoules = %v, want > 0", res.RealizedSavedJoules)
	}
	if res.PSUsShed == 0 || res.PSUSavedJoules <= 0 {
		t.Errorf("PSU shed pass: shed=%d saved=%v, want both > 0",
			res.PSUsShed, res.PSUSavedJoules)
	}
	if res.EnvelopeLow <= 0 || res.EnvelopeHigh <= res.EnvelopeLow {
		t.Errorf("degenerate envelope [%v, %v]", res.EnvelopeLow, res.EnvelopeHigh)
	}
	if !res.WithinEnvelope {
		t.Errorf("realized %v W outside envelope [%v, %v] W",
			res.RealizedSavedWatts.Watts(),
			res.EnvelopeLow.Watts(), res.EnvelopeHigh.Watts())
	}
	// The offline estimate rides along so the CLI can print both.
	if res.Offline.Savings.RefinedHigh <= 0 {
		t.Error("offline §8 estimate missing from the online result")
	}
	if res.RealizedShare <= 0 {
		t.Error("RealizedShare not populated")
	}
}
