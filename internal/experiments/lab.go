package experiments

import (
	"fmt"

	"fantasticjoules/internal/labbench"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

// ModelRow is one derived power-model row of Tables 2 and 6: the profile
// identification, the seven derived terms, and — when the paper published
// the same profile — the published values for comparison.
type ModelRow struct {
	Router string
	Key    model.ProfileKey

	PBase   units.Power
	Derived model.InterfaceProfile
	// Published carries the paper's values when available.
	Published      *model.InterfaceProfile
	PBasePublished units.Power
	// FitQuality is the weakest regression R² of the derivation.
	FitQuality float64
}

const g = units.GigabitPerSecond

// table2Targets are the derivations of Table 2: four routers, seven
// profiles.
var table2Targets = []profileSpec{
	{router: "NCS-55A1-24H", trx: model.PassiveDAC, speed: 100 * g},
	{router: "NCS-55A1-24H", trx: model.PassiveDAC, speed: 50 * g},
	{router: "NCS-55A1-24H", trx: model.PassiveDAC, speed: 25 * g},
	{router: "Nexus9336-FX2", trx: model.LR, speed: 100 * g},
	{router: "Nexus9336-FX2", trx: model.PassiveDAC, speed: 100 * g},
	{router: "8201-32FH", trx: model.PassiveDAC, speed: 100 * g},
	{router: "N540X-8Z16G-SYS-A", trx: model.BaseT, speed: 1 * g},
}

// table6Targets are the derivations of Table 6. The Nexus 93108TC's QSFP28
// profiles run against its uplink port bank (the chassis default is the
// RJ45 front panel).
var table6Targets = []profileSpec{
	{router: "Wedge100BF-32X", trx: model.PassiveDAC, speed: 100 * g},
	{router: "Wedge100BF-32X", trx: model.PassiveDAC, speed: 50 * g},
	{router: "Wedge100BF-32X", trx: model.PassiveDAC, speed: 25 * g},
	{router: "Nexus93108TC-FX3P", portOverride: model.QSFP28, trx: model.PassiveDAC, speed: 100 * g},
	{router: "Nexus93108TC-FX3P", portOverride: model.QSFP28, trx: model.PassiveDAC, speed: 40 * g},
	{router: "Nexus93108TC-FX3P", trx: model.BaseT, speed: 10 * g},
	{router: "Nexus93108TC-FX3P", trx: model.BaseT, speed: 1 * g},
	{router: "VSP-4900", trx: model.BaseT, speed: 10 * g},
	{router: "Catalyst3560", trx: model.BaseT, speed: 0.1 * g},
}

// NCS-55A1-24H's 50G/25G rows are breakout configurations of the same
// 100G cage; the paper's table lists them under QSFP28.

// Table2 derives the power models of Table 2 by running the full lab
// methodology against simulated DUTs and reports them next to the paper's
// published values.
func (s *Suite) Table2() ([]ModelRow, error) {
	return s.deriveRows(table2Targets)
}

// Table6 derives the additional power models of Table 6.
func (s *Suite) Table6() ([]ModelRow, error) {
	return s.deriveRows(table6Targets)
}

// deriveRows derives every target profile — fanning the independent lab
// runs out over the suite's worker pool — and assembles the table rows in
// target order, so the printed tables are identical at any concurrency.
func (s *Suite) deriveRows(targets []profileSpec) ([]ModelRow, error) {
	results := make([]*labbench.Result, len(targets))
	if err := forEachLimit(len(targets), s.poolSize(), func(i int) error {
		res, err := s.Derive(targets[i].router, targets[i].portOverride, targets[i].trx, targets[i].speed)
		if err != nil {
			return fmt.Errorf("deriving %s: %w", targets[i].router, err)
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	rows := make([]ModelRow, 0, len(targets))
	for i, t := range targets {
		res := results[i]
		row := ModelRow{
			Router:     t.router,
			Key:        res.Profile.Key,
			PBase:      res.Model.PBase,
			Derived:    res.Profile,
			FitQuality: res.Report.FitQuality(),
		}
		if pub, err := model.Published(t.router); err == nil {
			row.PBasePublished = pub.PBase
			if p, ok := pub.Profile(res.Profile.Key); ok {
				row.Published = &p
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
