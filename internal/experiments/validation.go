package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/stats"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

// SmoothingWindow is the averaging the paper applies to the Fig. 4 traces.
const SmoothingWindow = 30 * time.Minute

// Fig4Row is one panel of Fig. 4: the three power views of one deployed
// router.
type Fig4Row struct {
	Router string
	Model  string

	// Autopower is the externally measured wall power (ground truth),
	// 30-minute smoothed.
	Autopower *timeseries.Series
	// SNMP is the router's own PSU-reported power, smoothed; nil when the
	// model reports nothing (the Fig. 4c router).
	SNMP *timeseries.Series
	// Prediction is the lab-derived model evaluated on the router's
	// inventory and traffic counters, smoothed.
	Prediction *timeseries.Series

	// ModelOffset is the median (Autopower − Prediction): the paper finds
	// a consistent underestimation of ≈3–13 W.
	ModelOffset units.Power
	// ModelShapeCorrelation is the Pearson correlation between the
	// smoothed measurement and prediction — "the shapes consistently
	// match".
	ModelShapeCorrelation float64
	// SNMPOffset is the median (SNMP − Autopower); meaningless (0) when
	// SNMP is nil.
	SNMPOffset units.Power
	// SNMPShapeCorrelation is the correlation between SNMP report and
	// ground truth — high for the offset-sensor router, low for the
	// pseudo-constant one.
	SNMPShapeCorrelation float64
}

// Fig4 regenerates the three panels of Fig. 4: for each instrumented
// router, external measurements vs PSU reports vs lab-derived model
// predictions over the deployment window.
func (s *Suite) Fig4() ([]Fig4Row, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	var rows []Fig4Row
	for _, r := range ds.Network.AutopowerRouters() {
		row, err := s.fig4Row(ds, r)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Model < rows[j].Model })
	return rows, nil
}

func (s *Suite) fig4Row(ds *ispnet.Dataset, r *ispnet.Router) (Fig4Row, error) {
	m, err := s.DerivedModel(r.Device.Model(), deployedProfiles(ds, r.Name, r.Device.Model()))
	if err != nil {
		return Fig4Row{}, err
	}
	pred, err := PredictFromCounters(m, ds, r.Name)
	if err != nil {
		return Fig4Row{}, err
	}
	row := Fig4Row{
		Router:     r.Name,
		Model:      r.Device.Model(),
		Autopower:  ds.Autopower[r.Name].Smooth(SmoothingWindow),
		Prediction: pred.Smooth(SmoothingWindow),
	}
	if snmp, ok := ds.SNMPPower[r.Name]; ok {
		row.SNMP = snmp.Smooth(SmoothingWindow)
	}

	// Offsets and shape agreement on the aligned series.
	diff, err := timeseries.Sub(row.Autopower, row.Prediction)
	if err != nil {
		return Fig4Row{}, fmt.Errorf("fig4 %s: %w", r.Name, err)
	}
	row.ModelOffset = units.Power(diff.Median())
	row.ModelShapeCorrelation, err = alignedCorrelation(row.Autopower, row.Prediction)
	if err != nil {
		return Fig4Row{}, err
	}
	if row.SNMP != nil {
		sd, err := timeseries.Sub(row.SNMP, row.Autopower)
		if err != nil {
			return Fig4Row{}, err
		}
		row.SNMPOffset = units.Power(sd.Median())
		row.SNMPShapeCorrelation, err = alignedCorrelation(row.SNMP, row.Autopower)
		if err != nil {
			return Fig4Row{}, err
		}
	}
	return row, nil
}

// alignedCorrelation resamples both series to 30-minute buckets and
// returns their Pearson correlation.
func alignedCorrelation(a, b *timeseries.Series) (float64, error) {
	ra, err := a.Resample(SmoothingWindow, timeseries.AggMean)
	if err != nil {
		return 0, err
	}
	rb, err := b.Resample(SmoothingWindow, timeseries.AggMean)
	if err != nil {
		return 0, err
	}
	diff, err := timeseries.Sub(ra, rb)
	if err != nil {
		return 0, err
	}
	// Reconstruct the aligned pairs from the subtraction's timestamps.
	bv := make(map[int64]float64, rb.Len())
	for _, p := range rb.Points() {
		bv[p.T.UnixNano()] = p.V
	}
	var xs, ys []float64
	for _, p := range diff.Points() {
		base, ok := bv[p.T.UnixNano()]
		if !ok {
			continue
		}
		xs = append(xs, p.V+base)
		ys = append(ys, base)
	}
	return stats.PearsonCorrelation(xs, ys)
}

// PredictFromCounters evaluates a power model over a deployed router's
// trace data the way §6.2 does: the transceiver inventory supplies each
// interface's profile, and the traffic counters decide which interfaces
// are treated as active — an interface with no counters looks absent, so
// plugged spares (and transceivers left in downed ports) are invisible to
// the model. That blind spot is a finding of the paper, not a bug here.
func PredictFromCounters(m *model.Model, ds *ispnet.Dataset, routerName string) (*timeseries.Series, error) {
	rates, ok := ds.IfaceRates[routerName]
	if !ok {
		return nil, fmt.Errorf("experiments: no counter traces for %s", routerName)
	}
	profiles := ds.IfaceProfiles[routerName]
	out := timeseries.New(routerName + ".model")

	// Collect the union of poll timestamps.
	type sample struct {
		key model.ProfileKey
		pts []timeseries.Point
		idx int
	}
	names := make([]string, 0, len(rates))
	for name := range rates {
		names = append(names, name)
	}
	sort.Strings(names)
	var ifaces []*sample
	var clockSrc []timeseries.Point
	for _, name := range names {
		key, ok := profiles[name]
		if !ok {
			return nil, fmt.Errorf("experiments: no profile for %s/%s", routerName, name)
		}
		sm := &sample{key: key, pts: rates[name].Points()}
		ifaces = append(ifaces, sm)
		if len(sm.pts) > len(clockSrc) {
			clockSrc = sm.pts
		}
	}
	// An interface whose counters stop updating for more than two polls is
	// treated as removed (the paper's flapping case shows this inference
	// can be wrong when the transceiver stays plugged — that error is the
	// finding, and it shows up here too).
	var staleAfter time.Duration
	if len(clockSrc) > 1 {
		staleAfter = 2 * clockSrc[1].T.Sub(clockSrc[0].T)
	}
	meanPkt := trafficgen.IMIXMeanSize()
	for _, tick := range clockSrc {
		cfg := model.Config{}
		for _, itf := range ifaces {
			for itf.idx+1 < len(itf.pts) && !itf.pts[itf.idx+1].T.After(tick.T) {
				itf.idx++
			}
			if itf.idx >= len(itf.pts) || itf.pts[itf.idx].T.After(tick.T) {
				continue // interface not reporting yet
			}
			if staleAfter > 0 && tick.T.Sub(itf.pts[itf.idx].T) > staleAfter {
				continue // counters stopped: interface looks removed
			}
			rate := itf.pts[itf.idx].V
			if rate <= 0 {
				continue // no counters → treated as absent (§7)
			}
			bits := units.BitRate(rate)
			cfg.Interfaces = append(cfg.Interfaces, model.Interface{
				Profile:            itf.key,
				TransceiverPresent: true,
				AdminUp:            true,
				OperUp:             true,
				Bits:               bits,
				Packets:            units.PacketRateFor(bits, meanPkt, trafficgen.EthernetOverhead),
			})
		}
		p, err := m.PredictPower(cfg)
		if err != nil {
			return nil, err
		}
		out.Append(tick.T, p.Watts())
	}
	return out, nil
}

// Fig9Row is one panel of Fig. 9: the offset-corrected zoom showing the
// model's precision.
type Fig9Row struct {
	Router string
	Model  string
	// Autopower and ShiftedPrediction cover the zoom window with the
	// prediction manually offset to measurement level.
	Autopower         *timeseries.Series
	ShiftedPrediction *timeseries.Series
	// ResidualRMSE is the RMS error after offset correction — the
	// precision the paper demonstrates.
	ResidualRMSE units.Power
}

// Fig9 regenerates the zoomed offset-corrected comparison: a 10-day
// window with the model shifted onto the Autopower level.
func (s *Suite) Fig9() ([]Fig9Row, error) {
	rows4, err := s.Fig4()
	if err != nil {
		return nil, err
	}
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	start := ds.Network.Config.Start.Add(27 * 24 * time.Hour)
	end := start.Add(10 * 24 * time.Hour)
	var out []Fig9Row
	for _, r4 := range rows4 {
		ap := r4.Autopower.Between(start, end)
		shifted := r4.Prediction.Shift(r4.ModelOffset.Watts()).Between(start, end)
		diff, err := timeseries.Sub(ap, shifted)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", r4.Router, err)
		}
		var ss float64
		for _, p := range diff.Points() {
			ss += p.V * p.V
		}
		rmse := units.Power(0)
		if diff.Len() > 0 {
			rmse = units.Power(math.Sqrt(ss / float64(diff.Len())))
		}
		out = append(out, Fig9Row{
			Router: r4.Router, Model: r4.Model,
			Autopower: ap, ShiftedPrediction: shifted,
			ResidualRMSE: rmse,
		})
	}
	return out, nil
}
