package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/stats"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

// SmoothingWindow is the averaging the paper applies to the Fig. 4 traces.
const SmoothingWindow = 30 * time.Minute

// Fig4Row is one panel of Fig. 4: the three power views of one deployed
// router.
type Fig4Row struct {
	Router string
	Model  string

	// Autopower is the externally measured wall power (ground truth),
	// 30-minute smoothed.
	Autopower *timeseries.Series
	// SNMP is the router's own PSU-reported power, smoothed; nil when the
	// model reports nothing (the Fig. 4c router).
	SNMP *timeseries.Series
	// Prediction is the lab-derived model evaluated on the router's
	// inventory and traffic counters, smoothed.
	Prediction *timeseries.Series

	// ModelOffset is the median (Autopower − Prediction): the paper finds
	// a consistent underestimation of ≈3–13 W.
	ModelOffset units.Power
	// ModelShapeCorrelation is the Pearson correlation between the
	// smoothed measurement and prediction — "the shapes consistently
	// match".
	ModelShapeCorrelation float64
	// SNMPOffset is the median (SNMP − Autopower); meaningless (0) when
	// SNMP is nil.
	SNMPOffset units.Power
	// SNMPShapeCorrelation is the correlation between SNMP report and
	// ground truth — high for the offset-sensor router, low for the
	// pseudo-constant one.
	SNMPShapeCorrelation float64
}

// Fig4 regenerates the three panels of Fig. 4: for each instrumented
// router, external measurements vs PSU reports vs lab-derived model
// predictions over the deployment window.
func (s *Suite) Fig4() ([]Fig4Row, error) {
	return s.fig4.get(func() ([]Fig4Row, error) {
		defer observeArtifact("fig4", time.Now())
		ds, err := s.Dataset()
		if err != nil {
			return nil, err
		}
		var rows []Fig4Row
		for _, r := range ds.Network.AutopowerRouters() {
			row, err := s.fig4Row(ds, r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Model < rows[j].Model })
		return rows, nil
	})
}

func (s *Suite) fig4Row(ds *ispnet.Dataset, r *ispnet.Router) (Fig4Row, error) {
	pred, err := s.prediction(ds, r.Name, r.Device.Model())
	if err != nil {
		return Fig4Row{}, err
	}
	row := Fig4Row{
		Router:     r.Name,
		Model:      r.Device.Model(),
		Autopower:  ds.Autopower[r.Name].Smooth(SmoothingWindow),
		Prediction: pred.Smooth(SmoothingWindow),
	}
	if snmp, ok := ds.SNMPPower[r.Name]; ok {
		row.SNMP = snmp.Smooth(SmoothingWindow)
	}

	// Offsets and shape agreement on the aligned series. The difference
	// series is a transient — computed into arena scratch, read, and
	// returned to the pool.
	diff := s.scratch.get()
	defer s.scratch.put(diff)
	if _, err := timeseries.SubInto(row.Autopower, row.Prediction, diff); err != nil {
		return Fig4Row{}, fmt.Errorf("fig4 %s: %w", r.Name, err)
	}
	row.ModelOffset = units.Power(diff.Median())
	row.ModelShapeCorrelation, err = s.alignedCorrelation(row.Autopower, row.Prediction)
	if err != nil {
		return Fig4Row{}, err
	}
	if row.SNMP != nil {
		if _, err := timeseries.SubInto(row.SNMP, row.Autopower, diff); err != nil {
			return Fig4Row{}, err
		}
		row.SNMPOffset = units.Power(diff.Median())
		row.SNMPShapeCorrelation, err = s.alignedCorrelation(row.SNMP, row.Autopower)
		if err != nil {
			return Fig4Row{}, err
		}
	}
	return row, nil
}

// alignedCorrelation resamples both series to 30-minute buckets and
// returns their Pearson correlation. All intermediates live in arena
// scratch.
func (s *Suite) alignedCorrelation(a, b *timeseries.Series) (float64, error) {
	ra, rb, diff := s.scratch.get(), s.scratch.get(), s.scratch.get()
	defer s.scratch.put(ra, rb, diff)
	if _, err := a.ResampleInto(SmoothingWindow, timeseries.AggMean, ra); err != nil {
		return 0, err
	}
	if _, err := b.ResampleInto(SmoothingWindow, timeseries.AggMean, rb); err != nil {
		return 0, err
	}
	if _, err := timeseries.SubInto(ra, rb, diff); err != nil {
		return 0, err
	}
	// Reconstruct the aligned pairs from the subtraction's timestamps.
	bv := make(map[int64]float64, rb.Len())
	for i := 0; i < rb.Len(); i++ {
		bv[rb.NanoAt(i)] = rb.Value(i)
	}
	var xs, ys []float64
	for i := 0; i < diff.Len(); i++ {
		base, ok := bv[diff.NanoAt(i)]
		if !ok {
			continue
		}
		xs = append(xs, diff.Value(i)+base)
		ys = append(ys, base)
	}
	return stats.PearsonCorrelation(xs, ys)
}

// PredictFromCounters evaluates a power model over a deployed router's
// trace data the way §6.2 does: the transceiver inventory supplies each
// interface's profile, and the traffic counters decide which interfaces
// are treated as active — an interface with no counters looks absent, so
// plugged spares (and transceivers left in downed ports) are invisible to
// the model. That blind spot is a finding of the paper, not a bug here.
func PredictFromCounters(m *model.Model, ds *ispnet.Dataset, routerName string) (*timeseries.Series, error) {
	rates, ok := ds.IfaceRates[routerName]
	if !ok {
		return nil, fmt.Errorf("experiments: no counter traces for %s", routerName)
	}
	profiles := ds.IfaceProfiles[routerName]

	// Walk the columnar traces in place (index cursors, no Points()
	// materialization: the rate traces total tens of megabytes of points
	// per call otherwise).
	names := make([]string, 0, len(rates))
	for name := range rates {
		names = append(names, name)
	}
	sort.Strings(names)
	ifaces := make([]counterCursor, 0, len(names))
	var clock *timeseries.Series
	for _, name := range names {
		key, ok := profiles[name]
		if !ok {
			return nil, fmt.Errorf("experiments: no profile for %s/%s", routerName, name)
		}
		ifaces = append(ifaces, counterCursor{key: key, s: rates[name]})
		if clock == nil || rates[name].Len() > clock.Len() {
			clock = rates[name] // union of poll timestamps: the longest trace
		}
	}
	// An interface whose counters stop updating for more than two polls is
	// treated as removed (the paper's flapping case shows this inference
	// can be wrong when the transceiver stays plugged — that error is the
	// finding, and it shows up here too).
	var staleAfter int64
	if clock != nil && clock.Len() > 1 {
		staleAfter = 2 * (clock.NanoAt(1) - clock.NanoAt(0))
	}
	meanPkt := trafficgen.IMIXMeanSize()
	n := 0
	if clock != nil {
		n = clock.Len()
	}
	out := timeseries.NewWithCap(routerName+".model", n)
	// One interface-config buffer reused across ticks; Predict only reads
	// it.
	buf := make([]model.Interface, 0, len(ifaces))
	for ti := 0; ti < n; ti++ {
		p, next, err := predictTick(m, ifaces, clock.NanoAt(ti), staleAfter, meanPkt, buf)
		if err != nil {
			return nil, err
		}
		buf = next
		out.Append(clock.At(ti).T, p.Watts())
	}
	return out, nil
}

// counterCursor walks one interface's rate trace with an index cursor so
// the tick loop never materializes the columnar points.
type counterCursor struct {
	key model.ProfileKey
	s   *timeseries.Series
	idx int
}

// predictTick evaluates the model at one poll tick: every cursor advances
// to the tick, the live counters assemble an interface config in buf, and
// the model predicts. The (possibly grown) buffer is handed back for the
// next tick, so the steady state appends into warm capacity and the loop
// over a multi-week trace allocates nothing per tick.
//
//joules:hotpath
func predictTick(m *model.Model, ifaces []counterCursor, tickNano, staleAfter int64, meanPkt units.ByteSize, buf []model.Interface) (units.Power, []model.Interface, error) {
	cfg := model.Config{Interfaces: buf[:0]}
	for ii := range ifaces {
		itf := &ifaces[ii]
		for itf.idx+1 < itf.s.Len() && itf.s.NanoAt(itf.idx+1) <= tickNano {
			itf.idx++
		}
		if itf.idx >= itf.s.Len() || itf.s.NanoAt(itf.idx) > tickNano {
			continue // interface not reporting yet
		}
		if staleAfter > 0 && tickNano-itf.s.NanoAt(itf.idx) > staleAfter {
			continue // counters stopped: interface looks removed
		}
		rate := itf.s.Value(itf.idx)
		if rate <= 0 {
			continue // no counters → treated as absent (§7)
		}
		bits := units.BitRate(rate)
		cfg.Interfaces = append(cfg.Interfaces, model.Interface{
			Profile:            itf.key,
			TransceiverPresent: true,
			AdminUp:            true,
			OperUp:             true,
			Bits:               bits,
			Packets:            units.PacketRateFor(bits, meanPkt, trafficgen.EthernetOverhead),
		})
	}
	p, err := m.PredictPower(cfg)
	return p, cfg.Interfaces[:0], err
}

// Fig9Row is one panel of Fig. 9: the offset-corrected zoom showing the
// model's precision.
type Fig9Row struct {
	Router string
	Model  string
	// Autopower and ShiftedPrediction cover the zoom window with the
	// prediction manually offset to measurement level.
	Autopower         *timeseries.Series
	ShiftedPrediction *timeseries.Series
	// ResidualRMSE is the RMS error after offset correction — the
	// precision the paper demonstrates.
	ResidualRMSE units.Power
}

// Fig9 regenerates the zoomed offset-corrected comparison: a 10-day
// window with the model shifted onto the Autopower level.
func (s *Suite) Fig9() ([]Fig9Row, error) {
	return s.fig9.get(func() ([]Fig9Row, error) {
		defer observeArtifact("fig9", time.Now())
		return s.fig9Uncached()
	})
}

func (s *Suite) fig9Uncached() ([]Fig9Row, error) {
	rows4, err := s.Fig4()
	if err != nil {
		return nil, err
	}
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	start := ds.Network.Config.Start.Add(27 * 24 * time.Hour)
	end := start.Add(10 * 24 * time.Hour)
	diff := s.scratch.get()
	defer s.scratch.put(diff)
	var out []Fig9Row
	for _, r4 := range rows4 {
		ap := r4.Autopower.Between(start, end)
		shifted := r4.Prediction.Shift(r4.ModelOffset.Watts()).Between(start, end)
		if _, err := timeseries.SubInto(ap, shifted, diff); err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", r4.Router, err)
		}
		var ss float64
		for i := 0; i < diff.Len(); i++ {
			v := diff.Value(i)
			ss += v * v
		}
		rmse := units.Power(0)
		if diff.Len() > 0 {
			rmse = units.Power(math.Sqrt(ss / float64(diff.Len())))
		}
		out = append(out, Fig9Row{
			Router: r4.Router, Model: r4.Model,
			Autopower: ap, ShiftedPrediction: shifted,
			ResidualRMSE: rmse,
		})
	}
	return out, nil
}
