package experiments

import (
	"testing"
	"time"
)

// TestRunScale checks the scale study's row across a calibrated and a
// generated fleet: population, tiers, energy, and spill volume populate
// sensibly, and the same config reproduces the same joules.
func TestRunScale(t *testing.T) {
	legacy, err := RunScale(ScaleConfig{Seed: 42, Duration: 24 * time.Hour, Step: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Routers != 107 || legacy.Tiers != nil || legacy.Subscribers != 0 {
		t.Fatalf("calibrated row off: %+v", legacy)
	}
	if legacy.Joules <= 0 || legacy.MeanPower <= 0 || legacy.SpilledChunks == 0 {
		t.Fatalf("calibrated run produced nothing: %+v", legacy)
	}

	hier, err := RunScale(ScaleConfig{Seed: 42, Routers: 500, Duration: 24 * time.Hour, Step: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if hier.Subscribers < 10_000 {
		t.Fatalf("500-router fleet serves %d subscribers", hier.Subscribers)
	}
	if hier.Tiers["access"] == 0 || hier.Tiers["metro"] == 0 || hier.Tiers["core"] == 0 {
		t.Fatalf("tier census incomplete: %v", hier.Tiers)
	}
	if hier.Steps != 24 || hier.Joules <= 0 {
		t.Fatalf("hierarchical run off: %+v", hier)
	}

	again, err := RunScale(ScaleConfig{Seed: 42, Routers: 500, Duration: 24 * time.Hour, Step: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if again.Joules != hier.Joules || again.SpilledBytes != hier.SpilledBytes {
		t.Fatalf("scale run not reproducible: %v J vs %v J", again.Joules, hier.Joules)
	}
}
