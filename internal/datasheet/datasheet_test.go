package datasheet

import (
	"math"
	"strings"
	"testing"

	"fantasticjoules/internal/units"
)

func corpus(t *testing.T) []Document {
	t.Helper()
	return Generate(1)
}

func TestGenerateCorpusSize(t *testing.T) {
	docs := corpus(t)
	if len(docs) != CorpusSize {
		t.Fatalf("corpus size = %d, want %d", len(docs), CorpusSize)
	}
	vendors := map[string]int{}
	for _, d := range docs {
		vendors[d.Raw.Vendor]++
		if d.Raw.Model == "" || d.Raw.Text == "" || d.Raw.URL == "" {
			t.Fatalf("incomplete document: %+v", d.Raw)
		}
	}
	if vendors["Cisco"] != 400 {
		t.Errorf("Cisco count = %d, want 400", vendors["Cisco"])
	}
	if vendors["Juniper"] != 200 {
		t.Errorf("Juniper count = %d, want 200", vendors["Juniper"])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7)
	b := Generate(7)
	for i := range a {
		if a[i].Raw.Model != b[i].Raw.Model || a[i].Raw.Text != b[i].Raw.Text {
			t.Fatalf("corpus not deterministic at %d", i)
		}
	}
}

func TestCorpusIncludesFleetModels(t *testing.T) {
	docs := corpus(t)
	want := map[string]bool{"NCS-55A1-24H": false, "8201-32FH": false, "ASR-920-24SZ-M": false}
	for _, d := range docs {
		if _, ok := want[d.Raw.Model]; ok {
			want[d.Raw.Model] = true
		}
	}
	for m, found := range want {
		if !found {
			t.Errorf("corpus missing fleet model %s", m)
		}
	}
}

func TestOnlyCiscoHasReleaseYears(t *testing.T) {
	for _, d := range corpus(t) {
		hasYear := d.Raw.ReleaseYear != 0
		if d.Raw.Vendor == "Cisco" && !hasYear {
			t.Fatalf("Cisco model %s missing release year", d.Raw.Model)
		}
		if d.Raw.Vendor != "Cisco" && d.Raw.Vendor != "EdgeCore" && d.Raw.Vendor != "Extreme" && hasYear {
			t.Fatalf("%s model %s has a release year; the paper only collected Cisco dates",
				d.Raw.Vendor, d.Raw.Model)
		}
	}
}

func TestSomeSheetsSayTBD(t *testing.T) {
	n := 0
	for _, d := range corpus(t) {
		if strings.Contains(d.Raw.Text, "TBD") {
			n++
		}
	}
	if n == 0 {
		t.Error(`no sheet says "TBD"; the paper explicitly hits this case`)
	}
}

func TestExtractKnownPhrasings(t *testing.T) {
	cases := []struct {
		text             string
		wantTyp, wantMax float64
	}{
		{"Typical power consumption: 450 W. Maximum power consumption: 800 W.", 450, 800},
		{"Power draw (typical / maximum): 450W / 800W at 25C.", 450, 800},
		{"The X draws 450 watts in typical operating conditions, with a worst-case draw of 800 watts.", 450, 800},
		{"Typical operating power 450 W | Max power 800 W", 450, 800},
		{"Maximum power: 800 W.", 0, 800},
		{"Typical power: 450 W. Maximum power: TBD.", 450, 0},
		{"Power consumption: TBD.", 0, 0},
	}
	for _, tc := range cases {
		got := Extract(RawDatasheet{Model: "X", Text: tc.text})
		if got.TypicalPower.Watts() != tc.wantTyp {
			t.Errorf("%q: typical = %v, want %v", tc.text, got.TypicalPower.Watts(), tc.wantTyp)
		}
		if got.MaxPower.Watts() != tc.wantMax {
			t.Errorf("%q: max = %v, want %v", tc.text, got.MaxPower.Watts(), tc.wantMax)
		}
	}
}

func TestExtractBandwidth(t *testing.T) {
	got := Extract(RawDatasheet{Text: "Switching capacity: 7.2 Tbps."})
	if got.Bandwidth != 7.2*units.TerabitPerSecond || got.BandwidthDerived {
		t.Errorf("Tbps case = %v derived=%v", got.Bandwidth, got.BandwidthDerived)
	}
	got = Extract(RawDatasheet{Text: "System throughput of up to 480 Gbps."})
	if got.Bandwidth != 480*units.GigabitPerSecond {
		t.Errorf("Gbps case = %v", got.Bandwidth)
	}
	got = Extract(RawDatasheet{Text: "Ports: 48 x 10GbE. Ports: 6 x 40GbE."})
	want := units.BitRate(48*10+6*40) * units.GigabitPerSecond
	if got.Bandwidth != want || !got.BandwidthDerived {
		t.Errorf("port-sum case = %v derived=%v, want %v derived", got.Bandwidth, got.BandwidthDerived, want)
	}
}

func TestExtractPSUNotMistakenForMaxPower(t *testing.T) {
	got := Extract(RawDatasheet{Text: "Typical power: 120 W.\nRedundant power supplies: 2 x 750 W AC."})
	if got.MaxPower != 0 {
		t.Errorf("PSU capacity leaked into max power: %v", got.MaxPower)
	}
	if got.PSUCount != 2 || got.PSUCapacity != 750 {
		t.Errorf("psu = %d x %v", got.PSUCount, got.PSUCapacity)
	}
	if got.Sources["psu"] != SourceNetBox {
		t.Errorf("psu source = %v", got.Sources["psu"])
	}
}

func TestExtractorAccuracyOnCorpus(t *testing.T) {
	// The stand-in for the paper's manual verification of sampled LLM
	// outputs: "reasonably accurate but far from perfect". Demand ≥95 %
	// exact recovery of stated values across the corpus.
	docs := corpus(t)
	var checked, correct int
	for _, d := range docs {
		got := Extract(d.Raw)
		checked++
		ok := true
		if math.Abs(got.TypicalPower.Watts()-math.Round(d.Truth.TypicalPower.Watts())) > 1 {
			ok = false
		}
		if math.Abs(got.MaxPower.Watts()-math.Round(d.Truth.MaxPower.Watts())) > 1 {
			ok = false
		}
		if d.Truth.Bandwidth > 0 && got.Bandwidth == 0 {
			ok = false
		}
		if ok {
			correct++
		}
	}
	if rate := float64(correct) / float64(checked); rate < 0.95 {
		t.Errorf("extractor accuracy = %.2f%%, want ≥95%%", rate*100)
	}
}

func TestExtractAllLength(t *testing.T) {
	docs := corpus(t)
	recs := ExtractAll(docs)
	if len(recs) != len(docs) {
		t.Fatalf("extracted %d, want %d", len(recs), len(docs))
	}
}

func TestASICTrendShape(t *testing.T) {
	pts := ASICTrend()
	if len(pts) < 5 {
		t.Fatal("too few ASIC generations")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Efficiency >= pts[i-1].Efficiency {
			t.Errorf("ASIC efficiency must improve monotonically: %v -> %v",
				pts[i-1], pts[i])
		}
		if pts[i].Year <= pts[i-1].Year {
			t.Error("ASIC years must increase")
		}
	}
}

func TestEfficiencyTrendFig2b(t *testing.T) {
	recs := ExtractAll(corpus(t))
	pts, fit, err := EfficiencyTrend(recs, DefaultTrendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 50 {
		t.Fatalf("only %d trend points; need a substantial Cisco sample", len(pts))
	}
	for _, p := range pts {
		if p.Efficiency > DefaultTrendOptions().OutlierCutoff {
			t.Errorf("outlier %v survived the cutoff", p)
		}
		if p.Year == 0 {
			t.Error("point without year")
		}
	}
	// The Fig. 2b claim: a mild downward slope, but noisy — R² far from 1.
	if fit.Slope >= 0 {
		t.Errorf("slope = %v, want negative (mild improvement)", fit.Slope)
	}
	if fit.R2 > 0.5 {
		t.Errorf("R² = %v; the router-level trend must be much noisier than the ASIC one", fit.R2)
	}
}

func TestEfficiencyTrendFiltersSmallDevices(t *testing.T) {
	recs := []Extracted{
		{Model: "tiny", ReleaseYear: 2015, TypicalPower: 40, Bandwidth: 10 * units.GigabitPerSecond},
		{Model: "big", ReleaseYear: 2015, TypicalPower: 400, Bandwidth: 1 * units.TerabitPerSecond},
		{Model: "big2", ReleaseYear: 2018, TypicalPower: 300, Bandwidth: 2 * units.TerabitPerSecond},
	}
	pts, _, err := EfficiencyTrend(recs, DefaultTrendOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 (small device filtered)", len(pts))
	}
	for _, p := range pts {
		if p.Model == "tiny" {
			t.Error("sub-100G device survived the filter")
		}
	}
}

func TestCompareMeasuredTable1(t *testing.T) {
	recs := []Extracted{
		{Model: "NCS-55A1-24H", TypicalPower: 600},
		{Model: "8201-32FH", TypicalPower: 288},
		{Model: "no-power"},
	}
	measured := map[string]units.Power{
		"NCS-55A1-24H": 358,
		"8201-32FH":    359,
		"no-power":     100,
		"unknown":      50,
	}
	rows := CompareMeasured(measured, recs)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Sorted by descending overestimation: NCS first (+40%), 8201 last (−25%).
	if rows[0].Model != "NCS-55A1-24H" || rows[1].Model != "8201-32FH" {
		t.Errorf("order = %v, %v", rows[0].Model, rows[1].Model)
	}
	if math.Abs(rows[0].Overestimate-0.4033) > 0.01 {
		t.Errorf("NCS overestimate = %v, want ≈0.40", rows[0].Overestimate)
	}
	if rows[1].Overestimate >= 0 {
		t.Errorf("8201 must be underestimated (negative), got %v", rows[1].Overestimate)
	}
}
