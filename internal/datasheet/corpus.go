package datasheet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/units"
)

// CorpusSize is the number of router models in the paper's collection.
const CorpusSize = 777

// RawDatasheet is one unstructured datasheet document.
type RawDatasheet struct {
	Vendor string
	Model  string
	Series string
	URL    string
	// Text is the unstructured document body the extractor parses.
	Text string
	// ReleaseYear is only known for Cisco devices (collected manually in
	// the paper); 0 elsewhere.
	ReleaseYear int
}

// Truth is the generator-side ground truth behind a synthetic datasheet,
// used by tests to measure extractor accuracy. It is NOT available to the
// extractor.
type Truth struct {
	TypicalPower units.Power // 0 when the sheet omits it
	MaxPower     units.Power // 0 when the sheet says TBD or omits it
	Bandwidth    units.BitRate
	PSUCount     int
	PSUCapacity  units.Power
}

// Document pairs a raw datasheet with its hidden truth.
type Document struct {
	Raw   RawDatasheet
	Truth Truth
}

type vendorProfile struct {
	name     string
	count    int
	seriesFn func(rng *rand.Rand) string
	hasYear  bool
}

// Generate builds the deterministic 777-document corpus. The first
// documents correspond to the simulated fleet's catalog models with their
// real datasheet values; the rest are synthetic models whose efficiency
// follows a mild improvement trend with wide per-model noise — enough that
// the router-level trend is much less clear than the ASIC-level one,
// matching Fig. 2b.
func Generate(seed int64) []Document {
	rng := rand.New(rand.NewSource(seed))
	var docs []Document

	// Catalog models first, with their spec-declared datasheet values.
	catalogNames := device.CatalogNames()
	for _, name := range catalogNames {
		spec, _ := device.Spec(name)
		truth := Truth{
			TypicalPower: spec.DatasheetTypical,
			MaxPower:     spec.DatasheetMax,
			Bandwidth:    spec.DatasheetBandwidth,
			PSUCount:     spec.PSUCount,
			PSUCapacity:  spec.PSUCapacity,
		}
		docs = append(docs, Document{
			Raw: RawDatasheet{
				Vendor:      vendorOf(name),
				Model:       name,
				Series:      seriesOf(name),
				URL:         fmt.Sprintf("https://example.com/datasheets/%s.html", name),
				Text:        renderText(rng, name, truth),
				ReleaseYear: spec.ReleaseYear,
			},
			Truth: truth,
		})
	}

	vendors := []vendorProfile{
		{name: "Cisco", count: 400 - countVendor(catalogNames, "Cisco"), seriesFn: ciscoSeries, hasYear: true},
		{name: "Juniper", count: 200, seriesFn: juniperSeries},
		{name: "Arista", count: CorpusSize - 600 - countVendor(catalogNames, ""), seriesFn: aristaSeries},
	}
	// Adjust the Arista count so the corpus lands exactly on CorpusSize.
	total := len(docs)
	for _, v := range vendors[:2] {
		total += v.count
	}
	vendors[2].count = CorpusSize - total

	for _, v := range vendors {
		for i := 0; i < v.count; i++ {
			series := v.seriesFn(rng)
			modelName := fmt.Sprintf("%s-%d%s", series, 1000+rng.Intn(9000), suffix(rng))
			year := 2006 + rng.Intn(18) // 2006–2023
			truth := synthesizeTruth(rng, year)
			raw := RawDatasheet{
				Vendor: v.name,
				Model:  modelName,
				Series: series,
				URL:    fmt.Sprintf("https://example.com/%s/%s.html", v.name, modelName),
				Text:   renderText(rng, modelName, truth),
			}
			if v.hasYear {
				raw.ReleaseYear = year
			}
			docs = append(docs, Document{Raw: raw, Truth: truth})
		}
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Raw.Model < docs[j].Raw.Model })
	return docs
}

func countVendor(names []string, vendor string) int {
	n := 0
	for _, name := range names {
		if vendorOf(name) == vendor || vendor == "" {
			n++
		}
	}
	return n
}

func vendorOf(catalogModel string) string {
	switch catalogModel {
	case "Wedge100BF-32X":
		return "EdgeCore"
	case "VSP-4900":
		return "Extreme"
	default:
		return "Cisco"
	}
}

func seriesOf(catalogModel string) string {
	switch {
	case len(catalogModel) >= 4 && catalogModel[:4] == "8201":
		return "Cisco 8000"
	case len(catalogModel) >= 3 && catalogModel[:3] == "NCS":
		return "NCS 5500"
	case len(catalogModel) >= 4 && catalogModel[:4] == "Nexu":
		return "Nexus 9000"
	case len(catalogModel) >= 3 && catalogModel[:3] == "ASR":
		return "ASR 9000"
	case len(catalogModel) >= 4 && catalogModel[:4] == "N540":
		return "NCS 540"
	default:
		return catalogModel
	}
}

func ciscoSeries(rng *rand.Rand) string {
	s := []string{"Catalyst 9300", "Nexus 9300", "NCS 5500", "ASR 9000", "Cisco 8000", "Catalyst 3850"}
	return s[rng.Intn(len(s))]
}

func juniperSeries(rng *rand.Rand) string {
	s := []string{"MX", "PTX", "QFX", "EX", "ACX"}
	return s[rng.Intn(len(s))]
}

func aristaSeries(rng *rand.Rand) string {
	s := []string{"7050X", "7280R", "7500R", "7060X", "7170"}
	return s[rng.Intn(len(s))]
}

func suffix(rng *rand.Rand) string {
	s := []string{"", "-S", "-SE", "-32C", "-48Y", "-M", "-FX", "-TX"}
	return s[rng.Intn(len(s))]
}

// synthesizeTruth draws a model's true datasheet values. The efficiency
// (W per 100 Gbps) improves mildly with release year but with large
// per-model spread — the shape behind Fig. 2b.
func synthesizeTruth(rng *rand.Rand, year int) Truth {
	// Capacity grows with year: 2006 ≈ 100G class, 2023 ≈ multi-Tbps.
	logCap := 10.5 + float64(year-2006)*0.16 + rng.NormFloat64()*0.5 // log10(bit/s)
	if logCap > 13.2 {
		logCap = 13.2
	}
	bw := units.BitRate(math.Pow(10, logCap))

	// Efficiency trend: ≈60 W/100G in 2006 falling toward ≈15 W/100G in
	// 2023, lognormal spread of ~0.5 — wide enough to blur the trend.
	trend := 60 * math.Pow(0.92, float64(year-2006))
	eff := trend * math.Exp(rng.NormFloat64()*0.5) // W per 100 Gbps typical
	typical := units.Power(eff * bw.Gbps() / 100)
	if typical < 20 {
		typical = units.Power(20 + rng.Float64()*20)
	}
	maxP := units.Power(typical.Watts() * (1.5 + rng.Float64()))

	// Field availability quirks: ~25 % of sheets omit typical power; ~6 %
	// report max as TBD.
	if rng.Float64() < 0.25 {
		typical = 0
	}
	if rng.Float64() < 0.06 {
		maxP = 0
	}

	capacities := []units.Power{250, 400, 750, 1100, 2000, 2700}
	need := maxP
	if need == 0 {
		need = units.Power(typical.Watts() * 2)
	}
	psuCap := capacities[len(capacities)-1]
	for _, c := range capacities {
		if c >= need {
			psuCap = c
			break
		}
	}
	return Truth{
		TypicalPower: typical,
		MaxPower:     maxP,
		Bandwidth:    bw,
		PSUCount:     2,
		PSUCapacity:  psuCap,
	}
}

// renderText produces the unstructured document body in one of several
// phrasings, mirroring the irregularity the paper complains about (§3.1).
func renderText(rng *rand.Rand, model string, truth Truth) string {
	style := rng.Intn(4)
	var power string
	typical := truth.TypicalPower
	maxP := truth.MaxPower
	switch {
	case typical > 0 && maxP > 0:
		switch style {
		case 0:
			power = fmt.Sprintf("Typical power consumption: %.0f W. Maximum power consumption: %.0f W.",
				typical.Watts(), maxP.Watts())
		case 1:
			power = fmt.Sprintf("Power draw (typical / maximum): %.0fW / %.0fW at 25C.",
				typical.Watts(), maxP.Watts())
		case 2:
			power = fmt.Sprintf("The %s draws %.0f watts in typical operating conditions, with a worst-case draw of %.0f watts.",
				model, typical.Watts(), maxP.Watts())
		default:
			power = fmt.Sprintf("Typical operating power %.0f W | Max power %.0f W", typical.Watts(), maxP.Watts())
		}
	case typical == 0 && maxP > 0:
		power = fmt.Sprintf("Maximum power: %.0f W.", maxP.Watts())
	case typical > 0 && maxP == 0:
		power = fmt.Sprintf("Typical power: %.0f W. Maximum power: TBD.", typical.Watts())
	default:
		power = "Power consumption: TBD."
	}

	var bw string
	switch rng.Intn(3) {
	case 0:
		bw = fmt.Sprintf("Switching capacity: %s.", formatBW(truth.Bandwidth))
	case 1:
		bw = fmt.Sprintf("System throughput of up to %s.", formatBW(truth.Bandwidth))
	default:
		// Bandwidth implied by the port configuration; the extractor must
		// sum the ports (the paper's hardest case).
		per, count := splitPorts(truth.Bandwidth)
		bw = fmt.Sprintf("Ports: %d x %dGbE.", count, per)
	}

	psu := fmt.Sprintf("Redundant power supplies: %d x %.0f W AC.", truth.PSUCount, truth.PSUCapacity.Watts())

	return fmt.Sprintf("%s Data Sheet\n\nProduct overview. The %s delivers industry-leading performance.\n\n%s\n\n%s\n%s\n",
		model, model, bw, power, psu)
}

// splitPorts factors a bandwidth into an N x MGbE port listing (half
// duplex counting, rounded to common port speeds).
func splitPorts(bw units.BitRate) (perPortG int, count int) {
	g := bw.Gbps()
	for _, per := range []int{400, 100, 40, 25, 10, 1} {
		n := int(g) / per
		if n >= 8 && n <= 64 {
			return per, n
		}
	}
	per := 10
	n := int(g) / per
	if n < 1 {
		n = 1
	}
	return per, n
}

func formatBW(bw units.BitRate) string {
	if bw >= units.TerabitPerSecond {
		return fmt.Sprintf("%.1f Tbps", bw.BitsPerSecond()/1e12)
	}
	return fmt.Sprintf("%.0f Gbps", bw.Gbps())
}
