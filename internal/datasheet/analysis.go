package datasheet

import (
	"sort"

	"fantasticjoules/internal/stats"
	"fantasticjoules/internal/units"
)

// EfficiencyPoint is one (release year, W per 100 Gbps) sample for the
// Fig. 2 trend plots.
type EfficiencyPoint struct {
	Year       int
	Efficiency float64 // watts per 100 Gbps
	Model      string
}

// ASICTrend returns the Broadcom switching-ASIC efficiency trend of
// Fig. 2a, redrawn from the vendor's own presentation [21]: a clean,
// steady halving roughly every two generations.
func ASICTrend() []EfficiencyPoint {
	return []EfficiencyPoint{
		{Year: 2010, Efficiency: 24.0, Model: "Trident+"},
		{Year: 2012, Efficiency: 14.2, Model: "Trident2"},
		{Year: 2014, Efficiency: 9.4, Model: "Tomahawk"},
		{Year: 2016, Efficiency: 6.2, Model: "Tomahawk2"},
		{Year: 2018, Efficiency: 4.3, Model: "Tomahawk3"},
		{Year: 2020, Efficiency: 2.9, Model: "Tomahawk4"},
		{Year: 2022, Efficiency: 2.0, Model: "Tomahawk5"},
	}
}

// TrendOptions parameterize the Fig. 2b datasheet-efficiency analysis.
type TrendOptions struct {
	// MinBandwidth filters out small access devices; the paper uses
	// 100 Gbps (the metric is intended for high-end routers).
	MinBandwidth units.BitRate
	// OutlierCutoff removes extreme efficiency values from the plot; the
	// paper drops two readings around 300 W/100G for readability. Zero
	// keeps everything.
	OutlierCutoff float64
}

// DefaultTrendOptions returns the paper's settings.
func DefaultTrendOptions() TrendOptions {
	return TrendOptions{MinBandwidth: 100 * units.GigabitPerSecond, OutlierCutoff: 150}
}

// EfficiencyTrend computes the Fig. 2b scatter from extracted datasheet
// records: typical power (max when typical is absent) per 100 Gbps versus
// release year, for records with both a power value, a bandwidth above the
// cutoff, and a known release year. It also returns the linear fit over
// years, whose shallow slope relative to the spread is the paper's point:
// the router-level trend is not as clear as the ASIC-level one.
func EfficiencyTrend(records []Extracted, opts TrendOptions) ([]EfficiencyPoint, stats.LinearFit, error) {
	var pts []EfficiencyPoint
	for _, r := range records {
		if r.ReleaseYear == 0 || r.Bandwidth < opts.MinBandwidth {
			continue
		}
		power := r.TypicalPower
		if power == 0 {
			power = r.MaxPower
		}
		if power == 0 {
			continue
		}
		eff := power.Watts() / (r.Bandwidth.Gbps() / 100)
		if opts.OutlierCutoff > 0 && eff > opts.OutlierCutoff {
			continue
		}
		pts = append(pts, EfficiencyPoint{Year: r.ReleaseYear, Efficiency: eff, Model: r.Model})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Year != pts[j].Year {
			return pts[i].Year < pts[j].Year
		}
		return pts[i].Model < pts[j].Model
	})
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.Year)
		ys[i] = p.Efficiency
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return pts, stats.LinearFit{}, err
	}
	return pts, fit, nil
}

// AccuracyRow is one row of the Table 1 comparison: measured median power
// versus the datasheet's "typical" value.
type AccuracyRow struct {
	Model string
	// Measured is the median of the router's SNMP power trace.
	Measured units.Power
	// Datasheet is the typical (or, failing that, maximum) value.
	Datasheet units.Power
	// Overestimate is (Datasheet-Measured)/Datasheet — the paper's
	// rightmost column; negative when the datasheet underestimates.
	Overestimate float64
}

// CompareMeasured builds the Table 1 rows from measured medians and
// extracted datasheet records, sorted by descending overestimation as the
// paper presents them. Models without a usable datasheet power value are
// skipped.
func CompareMeasured(measured map[string]units.Power, records []Extracted) []AccuracyRow {
	byModel := make(map[string]Extracted, len(records))
	for _, r := range records {
		byModel[r.Model] = r
	}
	var rows []AccuracyRow
	for model, med := range measured {
		r, ok := byModel[model]
		if !ok {
			continue
		}
		ds := r.TypicalPower
		if ds == 0 {
			ds = r.MaxPower
		}
		if ds == 0 {
			continue
		}
		rows = append(rows, AccuracyRow{
			Model:        model,
			Measured:     med,
			Datasheet:    ds,
			Overestimate: (ds.Watts() - med.Watts()) / ds.Watts(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Overestimate > rows[j].Overestimate })
	return rows
}
