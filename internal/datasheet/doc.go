// Package datasheet reproduces the §3 datasheet study: collecting power
// and bandwidth values from vendor datasheets, and analyzing what they say
// about efficiency trends (Fig. 2) and real power draw (Table 1).
//
// The paper scrapes 777 real datasheets and extracts fields with GPT-4o.
// Neither the documents nor the LLM are available offline, so this package
// builds the closest synthetic equivalent: a corpus of 777 unstructured
// datasheet texts whose underlying truth follows realistic distributions
// (vendor naming, series, release years, power levels with wide
// efficiency noise), rendered in deliberately irregular phrasings — and a
// deterministic rule-based extractor that plays the LLM's role, with the
// same imperfection modes (absent values, "TBD", bandwidth that must be
// summed from port counts).
//
// File layout: corpus.go generates the synthetic corpus, parser.go is
// the rule-based extractor, analysis.go computes the Fig. 2/Table 1
// aggregations, and netbox.go imports/exports NetBox devicetype records
// (the pipeline's structured starting point, §3.2).
package datasheet
