package datasheet

import (
	"strings"
	"testing"
)

const sampleDeviceType = `---
manufacturer: Cisco
model: NCS-55A1-24H
slug: cisco-ncs-55a1-24h
part_number: NCS-55A1-24H
u_height: 1
is_full_depth: true
comments: 'Overview and specs: [Datasheet](https://example.com/ncs55a1.html)'
power-ports:
  - name: PSU0
    type: iec-60320-c14
    maximum_draw: 1100
  - name: PSU1
    type: iec-60320-c14
    maximum_draw: 1100
interfaces:
  - name: HundredGigE0/0/0/0
    type: 100gbase-x-qsfp28
`

func TestParseNetBoxDeviceType(t *testing.T) {
	dt, err := ParseNetBoxDeviceType(sampleDeviceType)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Manufacturer != "Cisco" || dt.Model != "NCS-55A1-24H" {
		t.Errorf("identity = %q/%q", dt.Manufacturer, dt.Model)
	}
	if dt.DatasheetURL != "https://example.com/ncs55a1.html" {
		t.Errorf("url = %q", dt.DatasheetURL)
	}
	if len(dt.PowerPorts) != 2 {
		t.Fatalf("power ports = %d", len(dt.PowerPorts))
	}
	if dt.PowerPorts[0].Name != "PSU0" || dt.PowerPorts[0].MaximumDrawWatts != 1100 {
		t.Errorf("psu0 = %+v", dt.PowerPorts[0])
	}
}

func TestParseNetBoxErrors(t *testing.T) {
	cases := map[string]string{
		"no model":        "manufacturer: Cisco\n",
		"garbage line":    "manufacturer Cisco\n",
		"orphan field":    "model: X\npower-ports:\n    maximum_draw: 5\n",
		"bad draw number": "model: X\npower-ports:\n  - name: P\n    maximum_draw: many\n",
	}
	for name, text := range cases {
		if _, err := ParseNetBoxDeviceType(text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNetBoxRoundTrip(t *testing.T) {
	in := NetBoxDeviceType{
		Manufacturer: "Juniper",
		Model:        "MX-204",
		PartNumber:   "MX204",
		DatasheetURL: "https://example.com/mx204.html",
		PowerPorts: []NetBoxPowerPort{
			{Name: "PSU0", MaximumDrawWatts: 650},
			{Name: "PSU1", MaximumDrawWatts: 650},
		},
	}
	out, err := ParseNetBoxDeviceType(RenderNetBoxDeviceType(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Manufacturer != in.Manufacturer || out.Model != in.Model ||
		out.PartNumber != in.PartNumber || out.DatasheetURL != in.DatasheetURL {
		t.Errorf("round trip changed identity: %+v", out)
	}
	if len(out.PowerPorts) != 2 || out.PowerPorts[1] != in.PowerPorts[1] {
		t.Errorf("round trip changed power ports: %+v", out.PowerPorts)
	}
}

func TestNetBoxLibraryExport(t *testing.T) {
	docs := Generate(1)
	lib := NetBoxLibrary(docs)
	if len(lib) != len(docs) {
		t.Fatalf("library = %d documents, want %d", len(lib), len(docs))
	}
	doc, ok := lib["NCS-55A1-24H"]
	if !ok {
		t.Fatal("library missing the NCS")
	}
	if !strings.Contains(doc, "maximum_draw: 1100") {
		t.Errorf("NCS document missing PSU capacity:\n%s", doc)
	}
	dt, err := ParseNetBoxDeviceType(doc)
	if err != nil {
		t.Fatal(err)
	}
	if dt.DatasheetURL == "" {
		t.Error("exported document lost the datasheet URL")
	}
}

func TestMergeNetBox(t *testing.T) {
	docs := Generate(1)
	records := ExtractAll(docs)
	// Strip the parser's own PSU findings so the merge is observable.
	for i := range records {
		records[i].PSUCount = 0
		records[i].PSUCapacity = 0
		delete(records[i].Sources, "psu")
	}
	lib := NetBoxLibrary(docs)
	n, err := MergeNetBox(records, lib)
	if err != nil {
		t.Fatal(err)
	}
	if n < len(records)*9/10 {
		t.Errorf("enriched %d of %d records", n, len(records))
	}
	for _, r := range records {
		if r.Model != "NCS-55A1-24H" {
			continue
		}
		if r.PSUCount != 2 || r.PSUCapacity != 1100 {
			t.Errorf("NCS after merge: %d × %v", r.PSUCount, r.PSUCapacity)
		}
		if r.Sources["psu"] != SourceNetBox {
			t.Errorf("psu source = %v", r.Sources["psu"])
		}
	}
	// A corrupt library document fails loudly.
	lib["broken"] = "manufacturer Cisco"
	if _, err := MergeNetBox(records, lib); err == nil {
		t.Error("corrupt library accepted")
	}
}
