package datasheet

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"fantasticjoules/internal/units"
)

// The paper's collection pipeline starts from the NetBox devicetype
// library (§3.2): a structured YAML collection of device models that
// carries datasheet URLs and PSU definitions. This file implements the
// subset of that format the pipeline needs — a parser for devicetype
// documents and a renderer so the synthetic corpus can be exported in the
// same shape — without a YAML dependency (the documents in the library
// are flat maps plus one level of list-of-maps).

// NetBoxPowerPort is one PSU slot definition.
type NetBoxPowerPort struct {
	Name string
	// MaximumDrawWatts is NetBox's maximum_draw field.
	MaximumDrawWatts float64
}

// NetBoxDeviceType is the subset of a devicetype document the datasheet
// pipeline consumes.
type NetBoxDeviceType struct {
	Manufacturer string
	Model        string
	PartNumber   string
	// DatasheetURL is extracted from the comments field, where the
	// library conventionally links the vendor datasheet.
	DatasheetURL string
	PowerPorts   []NetBoxPowerPort
}

var reMarkdownLink = regexp.MustCompile(`\((https?://[^\s)]+)\)`)

// ParseNetBoxDeviceType parses one devicetype YAML document (the flat
// subset used by the library: scalar fields plus the power-ports list).
func ParseNetBoxDeviceType(text string) (NetBoxDeviceType, error) {
	var out NetBoxDeviceType
	lines := strings.Split(text, "\n")
	section := ""
	var current *NetBoxPowerPort
	flush := func() {
		if current != nil {
			out.PowerPorts = append(out.PowerPorts, *current)
			current = nil
		}
	}
	for i, raw := range lines {
		line := strings.TrimRight(raw, " \t")
		if line == "" || strings.HasPrefix(strings.TrimSpace(line), "#") || line == "---" {
			continue
		}
		indented := strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t")
		trimmed := strings.TrimSpace(line)

		if !indented {
			flush()
			key, value, ok := splitKV(trimmed)
			if !ok {
				return out, fmt.Errorf("datasheet: netbox line %d: expected key: value, got %q", i+1, trimmed)
			}
			section = ""
			switch key {
			case "manufacturer":
				out.Manufacturer = value
			case "model":
				out.Model = value
			case "part_number":
				out.PartNumber = value
			case "comments":
				if m := reMarkdownLink.FindStringSubmatch(value); m != nil {
					out.DatasheetURL = m[1]
				} else if strings.HasPrefix(value, "http") {
					out.DatasheetURL = value
				}
			case "power-ports":
				section = "power-ports"
			default:
				// Other fields (u_height, slug, …) are irrelevant here.
			}
			continue
		}

		if section != "power-ports" {
			continue // nested data under sections we do not consume
		}
		if strings.HasPrefix(trimmed, "- ") {
			flush()
			current = &NetBoxPowerPort{}
			trimmed = strings.TrimSpace(strings.TrimPrefix(trimmed, "- "))
			if trimmed == "" {
				continue
			}
		}
		if current == nil {
			return out, fmt.Errorf("datasheet: netbox line %d: field outside a list item", i+1)
		}
		key, value, ok := splitKV(trimmed)
		if !ok {
			return out, fmt.Errorf("datasheet: netbox line %d: expected key: value, got %q", i+1, trimmed)
		}
		switch key {
		case "name":
			current.Name = value
		case "maximum_draw":
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return out, fmt.Errorf("datasheet: netbox line %d: maximum_draw: %w", i+1, err)
			}
			current.MaximumDrawWatts = v
		}
	}
	flush()
	if out.Model == "" {
		return out, fmt.Errorf("datasheet: netbox document without a model field")
	}
	return out, nil
}

func splitKV(line string) (key, value string, ok bool) {
	idx := strings.Index(line, ":")
	if idx < 0 {
		return "", "", false
	}
	key = strings.TrimSpace(line[:idx])
	value = strings.TrimSpace(line[idx+1:])
	value = strings.Trim(value, `'"`)
	return key, value, true
}

// RenderNetBoxDeviceType renders a devicetype document in the library's
// layout; ParseNetBoxDeviceType round-trips it.
func RenderNetBoxDeviceType(dt NetBoxDeviceType) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "---\n")
	fmt.Fprintf(&sb, "manufacturer: %s\n", dt.Manufacturer)
	fmt.Fprintf(&sb, "model: %s\n", dt.Model)
	if dt.PartNumber != "" {
		fmt.Fprintf(&sb, "part_number: %s\n", dt.PartNumber)
	}
	fmt.Fprintf(&sb, "u_height: 1\n")
	if dt.DatasheetURL != "" {
		fmt.Fprintf(&sb, "comments: '[Datasheet](%s)'\n", dt.DatasheetURL)
	}
	if len(dt.PowerPorts) > 0 {
		fmt.Fprintf(&sb, "power-ports:\n")
		for _, pp := range dt.PowerPorts {
			fmt.Fprintf(&sb, "  - name: %s\n", pp.Name)
			fmt.Fprintf(&sb, "    type: iec-60320-c14\n")
			fmt.Fprintf(&sb, "    maximum_draw: %.0f\n", pp.MaximumDrawWatts)
		}
	}
	return sb.String()
}

// NetBoxLibrary exports the synthetic corpus as devicetype documents
// keyed by model name — the structured starting point the paper's
// pipeline walks to find datasheet URLs (§3.2).
func NetBoxLibrary(docs []Document) map[string]string {
	out := make(map[string]string, len(docs))
	for _, d := range docs {
		dt := NetBoxDeviceType{
			Manufacturer: d.Raw.Vendor,
			Model:        d.Raw.Model,
			PartNumber:   d.Raw.Model,
			DatasheetURL: d.Raw.URL,
		}
		for i := 0; i < d.Truth.PSUCount; i++ {
			dt.PowerPorts = append(dt.PowerPorts, NetBoxPowerPort{
				Name:             fmt.Sprintf("PSU%d", i),
				MaximumDrawWatts: d.Truth.PSUCapacity.Watts(),
			})
		}
		out[d.Raw.Model] = RenderNetBoxDeviceType(dt)
	}
	return out
}

// MergeNetBox enriches extracted records with NetBox PSU data (count and
// capacity), marking the fields as NetBox-sourced the way the paper's
// dataset does. Records without a matching document are left unchanged.
// It returns how many records were enriched.
func MergeNetBox(records []Extracted, library map[string]string) (int, error) {
	byModel := make(map[string]NetBoxDeviceType, len(library))
	var names []string
	for name := range library {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dt, err := ParseNetBoxDeviceType(library[name])
		if err != nil {
			return 0, fmt.Errorf("datasheet: netbox %s: %w", name, err)
		}
		byModel[dt.Model] = dt
	}
	enriched := 0
	for i := range records {
		dt, ok := byModel[records[i].Model]
		if !ok || len(dt.PowerPorts) == 0 {
			continue
		}
		records[i].PSUCount = len(dt.PowerPorts)
		records[i].PSUCapacity = 0
		for _, pp := range dt.PowerPorts {
			if p := pp.MaximumDrawWatts; p > records[i].PSUCapacity.Watts() {
				records[i].PSUCapacity = units.Power(p)
			}
		}
		if records[i].Sources == nil {
			records[i].Sources = map[string]Source{}
		}
		records[i].Sources["psu"] = SourceNetBox
		enriched++
	}
	return enriched, nil
}
