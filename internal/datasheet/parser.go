package datasheet

import (
	"regexp"
	"strconv"
	"strings"

	"fantasticjoules/internal/units"
)

// Source labels where an extracted field came from, mirroring the paper's
// dataset which distinguishes LLM outputs (subject to hallucination) from
// NetBox imports and manual collection.
type Source string

// Field sources.
const (
	SourceParser Source = "parser" // the automated extractor (GPT-4o stand-in)
	SourceNetBox Source = "netbox" // imported from the NetBox device library
	SourceManual Source = "manual" // collected by hand (release dates)
)

// Extracted is the structured record pulled out of one datasheet.
type Extracted struct {
	Vendor string
	Model  string
	Series string

	// TypicalPower and MaxPower are 0 when the sheet does not state them
	// (including "TBD").
	TypicalPower units.Power
	MaxPower     units.Power
	// Bandwidth is the maximum system bandwidth; it may have been summed
	// from port listings.
	Bandwidth units.BitRate
	// BandwidthDerived reports that Bandwidth was summed from ports rather
	// than stated outright.
	BandwidthDerived bool

	PSUCount    int
	PSUCapacity units.Power

	// ReleaseYear is 0 when unknown; release dates come from manual
	// collection, never from the parser.
	ReleaseYear int

	// Sources records where each field came from.
	Sources map[string]Source
}

var (
	// Power phrasings, in match priority order.
	reTypicalMax = regexp.MustCompile(`(?i)(?:typical|operating)[^.\n|]*?(\d+(?:\.\d+)?)\s*w(?:atts)?\b`)
	rePairSlash  = regexp.MustCompile(`(?i)\(typical\s*/\s*max[a-z]*\)\s*:?\s*(\d+(?:\.\d+)?)\s*w\s*/\s*(\d+(?:\.\d+)?)\s*w`)
	reProse      = regexp.MustCompile(`(?i)draws\s+(\d+(?:\.\d+)?)\s+watts[^.]*?worst-case draw of\s+(\d+(?:\.\d+)?)\s+watts`)
	reMax        = regexp.MustCompile(`(?i)(?:max(?:imum)?|worst-case)[^.\n|]*?(\d+(?:\.\d+)?)\s*w(?:atts)?\b`)

	reBWT   = regexp.MustCompile(`(?i)(\d+(?:\.\d+)?)\s*tbps`)
	reBWG   = regexp.MustCompile(`(?i)(\d+(?:\.\d+)?)\s*gbps`)
	rePorts = regexp.MustCompile(`(?i)(\d+)\s*x\s*(\d+)\s*gbe`)

	rePSU = regexp.MustCompile(`(?i)(\d+)\s*x\s*(\d+(?:\.\d+)?)\s*w\s*(?:ac|dc)`)
)

// Extract parses one raw datasheet into a structured record. It never
// fails: missing fields are zero, as in the paper's dataset. The
// extractor's accuracy against corpus ground truth is measured in the
// package tests (the stand-in for the paper's manual verification of
// sampled LLM outputs).
func Extract(raw RawDatasheet) Extracted {
	out := Extracted{
		Vendor:  raw.Vendor,
		Model:   raw.Model,
		Series:  raw.Series,
		Sources: make(map[string]Source),
	}
	text := raw.Text

	// Power. Try the paired phrasings first — they bind typical and max
	// unambiguously — then the single-value phrasings.
	if m := rePairSlash.FindStringSubmatch(text); m != nil {
		out.TypicalPower = parseW(m[1])
		out.MaxPower = parseW(m[2])
	} else if m := reProse.FindStringSubmatch(text); m != nil {
		out.TypicalPower = parseW(m[1])
		out.MaxPower = parseW(m[2])
	} else {
		if m := reTypicalMax.FindStringSubmatch(text); m != nil {
			out.TypicalPower = parseW(m[1])
		}
		// Search max only outside the PSU listing to avoid matching the
		// supply capacity line.
		psuFree := rePSU.ReplaceAllString(text, "")
		if m := reMax.FindStringSubmatch(psuFree); m != nil {
			out.MaxPower = parseW(m[1])
		}
	}
	if out.TypicalPower > 0 {
		out.Sources["typical_power"] = SourceParser
	}
	if out.MaxPower > 0 {
		out.Sources["max_power"] = SourceParser
	}

	// Bandwidth: stated value first, then port sums.
	if m := reBWT.FindStringSubmatch(text); m != nil {
		out.Bandwidth = units.BitRate(parseF(m[1]) * 1e12)
	} else if m := reBWG.FindStringSubmatch(text); m != nil {
		out.Bandwidth = units.BitRate(parseF(m[1]) * 1e9)
	} else if ms := rePorts.FindAllStringSubmatch(text, -1); ms != nil {
		var total float64
		for _, m := range ms {
			count := parseF(m[1])
			speed := parseF(m[2])
			total += count * speed * 1e9
		}
		out.Bandwidth = units.BitRate(total)
		out.BandwidthDerived = true
	}
	if out.Bandwidth > 0 {
		out.Sources["bandwidth"] = SourceParser
	}

	if m := rePSU.FindStringSubmatch(text); m != nil {
		out.PSUCount = int(parseF(m[1]))
		out.PSUCapacity = parseW(m[2])
		out.Sources["psu"] = SourceNetBox // the paper imports PSU data from NetBox
	}

	if raw.ReleaseYear != 0 {
		out.ReleaseYear = raw.ReleaseYear
		out.Sources["release_year"] = SourceManual
	}
	return out
}

// ExtractAll parses a corpus.
func ExtractAll(docs []Document) []Extracted {
	out := make([]Extracted, len(docs))
	for i, d := range docs {
		out[i] = Extract(d.Raw)
	}
	return out
}

func parseW(s string) units.Power { return units.Power(parseF(s)) }

func parseF(s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0
	}
	return v
}
