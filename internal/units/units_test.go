package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerString(t *testing.T) {
	tests := []struct {
		in   Power
		want string
	}{
		{0, "0 W"},
		{358, "358 W"},
		{21500, "21.5 kW"},
		{0.32, "320 mW"},
		{-24, "-24 W"},
		{1.5e6, "1.5 MW"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Power(%v).String() = %q, want %q", float64(tt.in), got, tt.want)
		}
	}
}

func TestEnergyString(t *testing.T) {
	tests := []struct {
		in   Energy
		want string
	}{
		{22e-12, "22 pJ"},
		{58e-9, "58 nJ"},
		{1, "1 J"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Energy.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestBitRateString(t *testing.T) {
	if got := (100 * GigabitPerSecond).String(); got != "100 Gbps" {
		t.Errorf("got %q, want 100 Gbps", got)
	}
	if got := (2.5 * GigabitPerSecond).String(); got != "2.5 Gbps" {
		t.Errorf("got %q, want 2.5 Gbps", got)
	}
}

func TestPacketRateFor(t *testing.T) {
	// 100 Gbps of 1500 B packets with 38 B of Ethernet framing overhead:
	// p = 1e11 / (8 * 1538) ≈ 8.127 Mpps.
	p := PacketRateFor(100*GigabitPerSecond, 1500, 38)
	want := 1e11 / (8 * 1538)
	if !NearlyEqual(p.PacketsPerSecond(), want, 1e-12) {
		t.Errorf("PacketRateFor = %v, want %v", p.PacketsPerSecond(), want)
	}
}

func TestPacketRateForZeroSize(t *testing.T) {
	if got := PacketRateFor(100*GigabitPerSecond, 0, 0); got != 0 {
		t.Errorf("PacketRateFor with zero size = %v, want 0", got)
	}
	if got := PacketRateFor(100*GigabitPerSecond, -10, 5); got != 0 {
		t.Errorf("PacketRateFor with negative size = %v, want 0", got)
	}
}

func TestBitRateRoundTrip(t *testing.T) {
	// BitRateFor must invert PacketRateFor for any positive packet size.
	f := func(rGbps float64, l uint16) bool {
		r := BitRate(math.Abs(rGbps)) * GigabitPerSecond
		packet := ByteSize(l%9000 + 64)
		p := PacketRateFor(r, packet, 38)
		back := BitRateFor(p, packet, 38)
		return NearlyEqual(back.BitsPerSecond(), r.BitsPerSecond(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePower(t *testing.T) {
	tests := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"600 W", 600, true},
		{"600W", 600, true},
		{"1.1kW", 1100, true},
		{"1.1 kW", 1100, true},
		{"358", 358, true},
		{"288 W", 288, true},
		{"2.7 kW", 2700, true},
		{"TBD", 0, false},
		{"", 0, false},
	}
	for _, tt := range tests {
		got, err := ParsePower(tt.in)
		if tt.ok && err != nil {
			t.Errorf("ParsePower(%q) error: %v", tt.in, err)
			continue
		}
		if !tt.ok {
			if err == nil {
				t.Errorf("ParsePower(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if !NearlyEqual(got.Watts(), tt.want, 1e-12) {
			t.Errorf("ParsePower(%q) = %v, want %v", tt.in, got.Watts(), tt.want)
		}
	}
}

func TestParseBitRate(t *testing.T) {
	tests := []struct {
		in   string
		want float64
	}{
		{"100G", 100e9},
		{"100 Gbps", 100e9},
		{"10Gb/s", 10e9},
		{"1.8 Tbps", 1.8e12},
		{"2400000000", 2.4e9},
	}
	for _, tt := range tests {
		got, err := ParseBitRate(tt.in)
		if err != nil {
			t.Errorf("ParseBitRate(%q) error: %v", tt.in, err)
			continue
		}
		if !NearlyEqual(got.BitsPerSecond(), tt.want, 1e-12) {
			t.Errorf("ParseBitRate(%q) = %v, want %v", tt.in, got.BitsPerSecond(), tt.want)
		}
	}
}

func TestNearlyEqual(t *testing.T) {
	if !NearlyEqual(1.0, 1.0, 0) {
		t.Error("identical values must be nearly equal even with tol 0")
	}
	if !NearlyEqual(100, 100.04, 1e-3) {
		t.Error("0.04% difference within 0.1% tolerance should pass")
	}
	if NearlyEqual(100, 101, 1e-3) {
		t.Error("1% difference outside 0.1% tolerance should fail")
	}
	if !NearlyEqual(0, 1e-9, 1e-6) {
		t.Error("near-zero values within absolute tolerance should pass")
	}
}

func TestSIFormatSubUnit(t *testing.T) {
	if got := Power(0.0000005).String(); got != "500 nW" {
		t.Errorf("got %q, want 500 nW", got)
	}
}
