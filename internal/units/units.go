// Package units provides the physical quantities used throughout the
// fantasticjoules library: electrical power, energy, data rates, packet
// rates, and data sizes.
//
// All quantities are represented as float64 wrappers with explicit base
// units (watts, joules, bits per second, packets per second, bytes). The
// wrappers exist to make APIs self-documenting and to prevent the classic
// unit mixups (bits vs bytes, W vs mW) that plague power tooling.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Power is an electrical power in watts.
type Power float64

// Common power scales.
const (
	Microwatt Power = 1e-6
	Milliwatt Power = 1e-3
	Watt      Power = 1
	Kilowatt  Power = 1e3
	Megawatt  Power = 1e6
)

// Watts returns the power as a plain float64 number of watts.
func (p Power) Watts() float64 { return float64(p) }

// Kilowatts returns the power in kilowatts.
func (p Power) Kilowatts() float64 { return float64(p) / 1e3 }

// String formats the power with an SI prefix, e.g. "358 W" or "21.5 kW".
func (p Power) String() string {
	return siFormat(float64(p), "W")
}

// Energy is an amount of energy in joules.
type Energy float64

// Common energy scales.
const (
	Picojoule    Energy = 1e-12
	Nanojoule    Energy = 1e-9
	Microjoule   Energy = 1e-6
	Joule        Energy = 1
	KilowattHour Energy = 3.6e6
)

// Joules returns the energy as a plain float64 number of joules.
func (e Energy) Joules() float64 { return float64(e) }

// Picojoules returns the energy in picojoules, the natural scale for
// per-bit forwarding costs.
func (e Energy) Picojoules() float64 { return float64(e) / 1e-12 }

// Nanojoules returns the energy in nanojoules, the natural scale for
// per-packet processing costs.
func (e Energy) Nanojoules() float64 { return float64(e) / 1e-9 }

// String formats the energy with an SI prefix, e.g. "22 pJ" or "58 nJ".
func (e Energy) String() string {
	return siFormat(float64(e), "J")
}

// BitRate is a data rate in bits per second. It is used both for interface
// line rates (100 Gb/s) and for measured traffic volumes.
type BitRate float64

// Common bit-rate scales.
const (
	BitPerSecond     BitRate = 1
	KilobitPerSecond BitRate = 1e3
	MegabitPerSecond BitRate = 1e6
	GigabitPerSecond BitRate = 1e9
	TerabitPerSecond BitRate = 1e12
)

// BitsPerSecond returns the rate as a plain float64.
func (r BitRate) BitsPerSecond() float64 { return float64(r) }

// Gbps returns the rate in gigabits per second.
func (r BitRate) Gbps() float64 { return float64(r) / 1e9 }

// String formats the rate with an SI prefix, e.g. "100 Gbps".
func (r BitRate) String() string {
	return siFormat(float64(r), "bps")
}

// PacketRate is a packet rate in packets per second.
type PacketRate float64

// PacketsPerSecond returns the rate as a plain float64.
func (r PacketRate) PacketsPerSecond() float64 { return float64(r) }

// String formats the packet rate, e.g. "8.13 Mpps".
func (r PacketRate) String() string {
	return siFormat(float64(r), "pps")
}

// ByteSize is a data size in bytes; used for packet and header sizes.
type ByteSize float64

// Bytes returns the size as a plain float64 number of bytes.
func (s ByteSize) Bytes() float64 { return float64(s) }

// String formats the size, e.g. "1500 B".
func (s ByteSize) String() string {
	return strconv.FormatFloat(float64(s), 'g', -1, 64) + " B"
}

// PacketRateFor converts a bidirectional bit rate into the packet rate it
// implies for fixed-size packets, following Eq. (12) of the paper:
//
//	p = r / (8 * (L + Lheader))
//
// where L is the layer-2 payload size and header the framing overhead, both
// in bytes. It returns 0 when the packet size is non-positive.
func PacketRateFor(r BitRate, packet, header ByteSize) PacketRate {
	denom := 8 * (packet.Bytes() + header.Bytes())
	if denom <= 0 {
		return 0
	}
	return PacketRate(r.BitsPerSecond() / denom)
}

// BitRateFor is the inverse of PacketRateFor: the bit rate on the wire for a
// given packet rate and fixed packet size.
func BitRateFor(p PacketRate, packet, header ByteSize) BitRate {
	return BitRate(p.PacketsPerSecond() * 8 * (packet.Bytes() + header.Bytes()))
}

// siFormat renders v with an SI prefix and three significant digits.
func siFormat(v float64, unit string) string {
	if v == 0 {
		return "0 " + unit
	}
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	type scale struct {
		factor float64
		prefix string
	}
	scales := []scale{
		{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"}, {1e-12, "p"},
	}
	for _, s := range scales {
		if v >= s.factor {
			return fmt.Sprintf("%s%s %s%s", neg, trimFloat(v/s.factor), s.prefix, unit)
		}
	}
	return fmt.Sprintf("%s%s %s", neg, trimFloat(v/1e-12), "p"+unit)
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// ParsePower parses strings such as "600 W", "1.1kW", or "358" (watts
// assumed). It accepts an optional SI prefix on the W unit.
func ParsePower(s string) (Power, error) {
	v, err := parseSI(s, "W")
	if err != nil {
		return 0, fmt.Errorf("parse power %q: %w", s, err)
	}
	return Power(v), nil
}

// ParseBitRate parses strings such as "100G", "100 Gbps", "10Gb/s", or
// "2500000000" (bits per second assumed).
func ParseBitRate(s string) (BitRate, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimSuffix(t, "/s")
	t = strings.TrimSuffix(t, "ps")
	t = strings.TrimSuffix(t, "b")
	t = strings.TrimSuffix(t, "B") // tolerate sloppy "GB" meaning Gb in datasheets
	v, err := parseSI(t, "")
	if err != nil {
		return 0, fmt.Errorf("parse bit rate %q: %w", s, err)
	}
	return BitRate(v), nil
}

// parseSI parses "<number><optional space><optional SI prefix><unit>".
func parseSI(s, unit string) (float64, error) {
	t := strings.TrimSpace(s)
	if unit != "" {
		t = strings.TrimSuffix(t, unit)
	}
	t = strings.TrimSpace(t)
	mult := 1.0
	if t != "" {
		switch t[len(t)-1] {
		case 'p':
			mult = 1e-12
		case 'n':
			mult = 1e-9
		case 'u':
			mult = 1e-6
		case 'm':
			mult = 1e-3
		case 'k', 'K':
			mult = 1e3
		case 'M':
			mult = 1e6
		case 'G':
			mult = 1e9
		case 'T':
			mult = 1e12
		}
		if mult != 1.0 {
			t = strings.TrimSpace(t[:len(t)-1])
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// NearlyEqual reports whether two float64 values are equal within a relative
// tolerance tol (and an absolute tolerance of tol for values near zero). It
// is the comparison helper used by tests throughout the library.
func NearlyEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if math.Abs(a) < tol && math.Abs(b) < tol {
		return diff < tol
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}
