package labbench

import (
	"math"
	"testing"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
)

func TestDeriveLinecards(t *testing.T) {
	spec, err := device.Spec("ASR-9910")
	if err != nil {
		t.Fatal(err)
	}
	dut, err := device.New(spec, "chassis", 3)
	if err != nil {
		t.Fatal(err)
	}
	m := meter.New(4)
	if err := m.Attach(0, dut); err != nil {
		t.Fatal(err)
	}
	res, err := DeriveLinecards(dut, m, LinecardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PLinecard) != 2 {
		t.Fatalf("derived %d card types, want 2", len(res.PLinecard))
	}
	// Truth is 420 / 560 W DC; wall-referenced derivations land above
	// (conversion losses) but within ~15 %.
	for name, truthDC := range map[string]float64{"A99-48X10GE": 420, "A99-8X100GE": 560} {
		got := res.PLinecard[name].Watts()
		if got < truthDC || got > truthDC*1.2 {
			t.Errorf("%s: derived %v W, want within [%v, %v]", name, got, truthDC, truthDC*1.2)
		}
		if fit := res.Fits[name]; fit.R2 < 0.999 {
			t.Errorf("%s: fit R² %v", name, fit.R2)
		}
	}
	// The chassis must be left empty.
	if cards := dut.InstalledLinecards(); len(cards) != 0 {
		t.Errorf("cards left installed: %v", cards)
	}
}

func TestDeriveLinecardsExtendsModel(t *testing.T) {
	spec, err := device.Spec("ASR-9910")
	if err != nil {
		t.Fatal(err)
	}
	dut, err := device.New(spec, "chassis", 5)
	if err != nil {
		t.Fatal(err)
	}
	m := meter.New(6)
	if err := m.Attach(0, dut); err != nil {
		t.Fatal(err)
	}
	res, err := DeriveLinecards(dut, m, LinecardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pm := model.New("ASR-9910", res.PBase)
	res.ExtendModel(pm)

	pred, err := pm.PredictPower(model.Config{Linecards: map[string]int{
		"A99-48X10GE": 2,
		"A99-8X100GE": 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Install the same cards on the DUT and compare against truth.
	for i := 0; i < 2; i++ {
		if err := dut.InstallLinecard("A99-48X10GE"); err != nil {
			t.Fatal(err)
		}
	}
	if err := dut.InstallLinecard("A99-8X100GE"); err != nil {
		t.Fatal(err)
	}
	var truth float64
	for i := 0; i < 30; i++ {
		truth += dut.WallPower().Watts()
	}
	truth /= 30
	if rel := math.Abs(pred.Watts()-truth) / truth; rel > 0.03 {
		t.Errorf("prediction %v vs truth %v: %.1f%% error", pred, truth, rel*100)
	}
}

func TestDeriveLinecardsFixedChassis(t *testing.T) {
	dut := flatDUT(t)
	m := meter.New(1)
	if err := m.Attach(0, dut); err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveLinecards(dut, m, LinecardConfig{}); err == nil {
		t.Error("fixed chassis must be rejected")
	}
	if _, err := DeriveLinecards(nil, m, LinecardConfig{}); err == nil {
		t.Error("nil DUT must be rejected")
	}
}
