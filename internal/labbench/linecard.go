package labbench

import (
	"fmt"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/stats"
	"fantasticjoules/internal/units"
)

// Linecard derivation — the §4.3 extension the paper sketches: "it should
// be possible to extend the model by introducing a Plinecard term that
// could be measured similarly as Ptrx". The experiment seats 1..N cards
// of one type in an otherwise empty chassis and regresses wall power over
// the card count, exactly like the Port/Trx sweeps.

// LinecardConfig parameterizes a linecard derivation.
type LinecardConfig struct {
	// SamplesPerPoint and SampleInterval as in Config (same defaults).
	SamplesPerPoint int
	SampleInterval  time.Duration
	// MeterChannel is the channel the DUT is plugged into.
	MeterChannel int
}

func (c *LinecardConfig) applyDefaults() {
	if c.SamplesPerPoint == 0 {
		c.SamplesPerPoint = 30
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 500 * time.Millisecond
	}
}

// LinecardResult is the outcome of a linecard derivation.
type LinecardResult struct {
	// PBase is the empty-chassis power.
	PBase units.Power
	// PLinecard maps card type to its derived per-card power — ready to
	// assign to model.Model.PLinecard.
	PLinecard map[string]units.Power
	// Fits holds the per-type regressions over card count.
	Fits map[string]stats.LinearFit
}

// DeriveLinecards measures Plinecard for every card type a modular DUT
// supports. The DUT must be in its Base state (nothing plugged or
// configured); it is left empty again afterwards.
func DeriveLinecards(dut *device.Router, m *meter.Meter, cfg LinecardConfig) (*LinecardResult, error) {
	if dut == nil || m == nil {
		return nil, fmt.Errorf("labbench: need a DUT and a meter")
	}
	cfg.applyDefaults()
	spec := dut.Spec()
	if spec.Slots == 0 {
		return nil, fmt.Errorf("labbench: %s is a fixed chassis; nothing to derive", spec.Name)
	}
	measure := func() (units.Power, error) {
		return m.ReadMean(cfg.MeterChannel, cfg.SamplesPerPoint, func() {
			dut.Advance(cfg.SampleInterval)
		})
	}

	pBase, err := measure()
	if err != nil {
		return nil, fmt.Errorf("labbench: linecard base: %w", err)
	}
	res := &LinecardResult{
		PBase:     pBase,
		PLinecard: make(map[string]units.Power),
		Fits:      make(map[string]stats.LinearFit),
	}
	for _, lt := range spec.Linecards {
		xs := []float64{0}
		ys := []float64{pBase.Watts()}
		installed := 0
		for n := 1; n <= spec.Slots; n++ {
			if err := dut.InstallLinecard(lt.Name); err != nil {
				return nil, fmt.Errorf("labbench: seating %s #%d: %w", lt.Name, n, err)
			}
			installed++
			p, err := measure()
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, p.Watts())
		}
		for ; installed > 0; installed-- {
			if err := dut.RemoveLinecard(lt.Name); err != nil {
				return nil, err
			}
		}
		fit, err := stats.LinearRegression(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("labbench: linecard regression for %s: %w", lt.Name, err)
		}
		res.Fits[lt.Name] = fit
		res.PLinecard[lt.Name] = units.Power(fit.Slope)
	}
	return res, nil
}

// ExtendModel attaches derived linecard terms to a power model, enabling
// Config.Linecards in predictions.
func (r *LinecardResult) ExtendModel(m *model.Model) {
	if m.PLinecard == nil {
		m.PLinecard = make(map[string]units.Power)
	}
	for name, p := range r.PLinecard {
		m.PLinecard[name] = p
	}
}
