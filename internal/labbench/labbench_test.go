package labbench

import (
	"math"
	"testing"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/units"
)

var g = units.GigabitPerSecond

// flatDUT is a router with lossless PSUs and no jitter, so parameter
// recovery can be checked tightly (limited only by the meter's ±0.5 %
// gain class).
func flatDUT(t *testing.T) *device.Router {
	t.Helper()
	curve, _ := psu.NewCurve([]psu.CurvePoint{{Load: 0, Efficiency: 1}, {Load: 1, Efficiency: 1}})
	key := model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}
	spec := device.ModelSpec{
		Name: "flat-dut", NumPorts: 8, PortType: model.QSFP28,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			key: {
				Key:   key,
				PPort: 1.0, PTrxIn: 0.5, PTrxUp: 0.25,
				EBit: 10 * units.Picojoule, EPkt: 20 * units.Nanojoule, POffset: 0.1,
			},
		},
		PBaseDC: 100, FanBasePower: 10, ControlPlanePower: 5,
		PSUCount: 2, PSUCapacity: 1000, PSUCurve: curve,
		PSUSensor: device.SensorAccurate, InitialOSVersion: "1.0",
	}
	r, err := device.New(spec, "dut", 11)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func runDerivation(t *testing.T, dut *device.Router, cfg Config) *Result {
	t.Helper()
	m := meter.New(21)
	if err := m.Attach(0, dut); err != nil {
		t.Fatal(err)
	}
	o, err := New(dut, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	absTol := relTol * math.Max(math.Abs(want), 0.05)
	if math.Abs(got-want) > absTol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, absTol)
	}
}

func TestRecoverFlatTruth(t *testing.T) {
	dut := flatDUT(t)
	res := runDerivation(t, dut, Config{Transceiver: model.PassiveDAC, Speed: 100 * g})

	within(t, "Pbase", res.Model.PBase.Watts(), 115, 0.02)
	within(t, "Pport", res.Profile.PPort.Watts(), 1.0, 0.05)
	within(t, "Ptrx,in", res.Profile.PTrxIn.Watts(), 0.5, 0.05)
	within(t, "Ptrx,up", res.Profile.PTrxUp.Watts(), 0.25, 0.20)
	within(t, "Ebit", res.Profile.EBit.Picojoules(), 10, 0.03)
	within(t, "Epkt", res.Profile.EPkt.Nanojoules(), 20, 0.10)
	within(t, "Poffset", res.Profile.POffset.Watts(), 0.1, 0.60)

	if q := res.Report.FitQuality(); q < 0.99 {
		t.Errorf("FitQuality = %v, want ≥0.99 on a linear device", q)
	}
	if res.Report.Pairs != 4 {
		t.Errorf("Pairs = %d, want 4", res.Report.Pairs)
	}
	if res.Model.RouterModel != "flat-dut" {
		t.Errorf("RouterModel = %q", res.Model.RouterModel)
	}
}

func TestDerivedModelPredicts(t *testing.T) {
	// End-to-end check: the derived model must predict the DUT's own power
	// in a fresh configuration within ~1 %.
	dut := flatDUT(t)
	res := runDerivation(t, dut, Config{Transceiver: model.PassiveDAC, Speed: 100 * g})

	key := model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}
	// New scenario: 3 interfaces up, one idle-but-plugged, mixed traffic.
	for _, n := range []string{"eth0", "eth1", "eth2"} {
		if err := dut.PlugTransceiver(n, model.PassiveDAC, 100*g); err != nil {
			t.Fatal(err)
		}
		if err := dut.SetAdmin(n, true); err != nil {
			t.Fatal(err)
		}
		if err := dut.SetLink(n, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := dut.PlugTransceiver("eth3", model.PassiveDAC, 100*g); err != nil {
		t.Fatal(err)
	}
	if err := dut.SetTraffic("eth0", 40*g, 4e6); err != nil {
		t.Fatal(err)
	}
	if err := dut.SetTraffic("eth1", 10*g, 1e6); err != nil {
		t.Fatal(err)
	}

	cfg := model.Config{Interfaces: []model.Interface{
		{Name: "eth0", Profile: key, TransceiverPresent: true, AdminUp: true, OperUp: true, Bits: 40 * g, Packets: 4e6},
		{Name: "eth1", Profile: key, TransceiverPresent: true, AdminUp: true, OperUp: true, Bits: 10 * g, Packets: 1e6},
		{Name: "eth2", Profile: key, TransceiverPresent: true, AdminUp: true, OperUp: true},
		{Name: "eth3", Profile: key, TransceiverPresent: true},
	}}
	pred, err := res.Model.PredictPower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := dut.WallPower()
	if rel := math.Abs(pred.Watts()-truth.Watts()) / truth.Watts(); rel > 0.01 {
		t.Errorf("prediction %v vs truth %v: relative error %v > 1%%", pred, truth, rel)
	}
}

func TestRecoverCatalogRouter(t *testing.T) {
	// Against the full physics (PFE600 conversion losses, jitter), the
	// derivation must recover the NCS-55A1-24H's published wall-referenced
	// terms within realistic tolerances.
	spec, err := device.Spec("NCS-55A1-24H")
	if err != nil {
		t.Fatal(err)
	}
	dut, err := device.New(spec, "lab-ncs", 5)
	if err != nil {
		t.Fatal(err)
	}
	res := runDerivation(t, dut, Config{Transceiver: model.PassiveDAC, Speed: 100 * g})

	pub, err := model.Published("NCS-55A1-24H")
	if err != nil {
		t.Fatal(err)
	}
	pubProfile, _ := pub.Profile(model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g})

	within(t, "Pbase", res.Model.PBase.Watts(), pub.PBase.Watts(), 0.10)
	within(t, "Pport", res.Profile.PPort.Watts(), pubProfile.PPort.Watts(), 0.25)
	within(t, "Ebit", res.Profile.EBit.Picojoules(), pubProfile.EBit.Picojoules(), 0.15)
	within(t, "Epkt", res.Profile.EPkt.Nanojoules(), pubProfile.EPkt.Nanojoules(), 0.25)

	if q := res.Report.FitQuality(); q < 0.95 {
		t.Errorf("FitQuality = %v, want ≥0.95", q)
	}
	if err := res.Model.Validate(); err != nil {
		t.Errorf("derived model fails validation: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	dut := flatDUT(t)
	m := meter.New(1)
	if _, err := New(nil, m, Config{Transceiver: model.PassiveDAC, Speed: 100 * g}); err == nil {
		t.Error("nil DUT must error")
	}
	if _, err := New(dut, nil, Config{Transceiver: model.PassiveDAC, Speed: 100 * g}); err == nil {
		t.Error("nil meter must error")
	}
	if _, err := New(dut, m, Config{Transceiver: model.PassiveDAC}); err == nil {
		t.Error("zero speed must error")
	}
	if _, err := New(dut, m, Config{Speed: 100 * g}); err == nil {
		t.Error("missing transceiver must error")
	}
}

func TestTooFewPorts(t *testing.T) {
	curve, _ := psu.NewCurve([]psu.CurvePoint{{Load: 0, Efficiency: 1}, {Load: 1, Efficiency: 1}})
	key := model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}
	spec := device.ModelSpec{
		Name: "tiny", NumPorts: 2, PortType: model.QSFP28,
		Truth:   map[model.ProfileKey]model.InterfaceProfile{key: {Key: key}},
		PBaseDC: 10, PSUCount: 1, PSUCapacity: 100, PSUCurve: curve,
	}
	dut, err := device.New(spec, "tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := meter.New(1)
	if err := m.Attach(0, dut); err != nil {
		t.Fatal(err)
	}
	o, err := New(dut, m, Config{Transceiver: model.PassiveDAC, Speed: 100 * g})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(); err == nil {
		t.Error("2-port DUT must be rejected: pair sweeps need ≥4")
	}
}

func TestUnsupportedProfileFailsCleanly(t *testing.T) {
	dut := flatDUT(t)
	m := meter.New(1)
	if err := m.Attach(0, dut); err != nil {
		t.Fatal(err)
	}
	o, err := New(dut, m, Config{Transceiver: model.LR4, Speed: 400 * g})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(); err == nil {
		t.Error("deriving an unsupported profile must fail at the idle experiment")
	}
}

func TestRunLeavesDUTReset(t *testing.T) {
	dut := flatDUT(t)
	runDerivation(t, dut, Config{Transceiver: model.PassiveDAC, Speed: 100 * g})
	for _, n := range dut.InterfaceNames() {
		present, admin, oper, _, err := dut.InterfaceState(n)
		if err != nil {
			t.Fatal(err)
		}
		if present || admin || oper {
			t.Errorf("interface %s not reset after run: %v/%v/%v", n, present, admin, oper)
		}
	}
}

func TestLowSpeedDefaultsUseFractionalRates(t *testing.T) {
	cfg := Config{Transceiver: model.BaseT, Speed: 1 * g}
	cfg.applyDefaults()
	if len(cfg.Rates) == 0 {
		t.Fatal("no rates for a 1G interface")
	}
	for _, r := range cfg.Rates {
		if r > cfg.Speed {
			t.Errorf("default rate %v exceeds 1G line rate", r)
		}
	}
}

func TestDerivationDeterministic(t *testing.T) {
	run := func() *Result {
		spec, err := device.Spec("Wedge100BF-32X")
		if err != nil {
			t.Fatal(err)
		}
		dut, err := device.New(spec, "det-dut", 77)
		if err != nil {
			t.Fatal(err)
		}
		m := meter.New(78)
		if err := m.Attach(0, dut); err != nil {
			t.Fatal(err)
		}
		o, err := New(dut, m, Config{Transceiver: model.PassiveDAC, Speed: 100 * g})
		if err != nil {
			t.Fatal(err)
		}
		res, err := o.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Model.PBase != b.Model.PBase || a.Profile != b.Profile {
		t.Errorf("derivation not deterministic:\n%+v\n%+v", a.Profile, b.Profile)
	}
}

func TestUncertaintyCoversTruth(t *testing.T) {
	// The flat DUT's true parameters must fall inside (or very near) the
	// derived 95% intervals; and the intervals must be meaningfully tight.
	dut := flatDUT(t)
	res := runDerivation(t, dut, Config{Transceiver: model.PassiveDAC, Speed: 100 * g})
	u := res.Uncertainty
	if u.PPort <= 0 || u.EBit <= 0 || u.EPkt <= 0 {
		t.Fatalf("uncertainties not populated: %+v", u)
	}
	// Tightness: Pport CI below 10% of the value.
	if u.PPort.Watts() > 0.1*res.Profile.PPort.Watts() {
		t.Errorf("Pport CI %.4f too wide for %.4f", u.PPort.Watts(), res.Profile.PPort.Watts())
	}
	// Coverage with slack (the meter's gain error is a bias, not noise,
	// so allow 3 intervals).
	if d := math.Abs(res.Profile.PPort.Watts() - 1.0); d > 3*u.PPort.Watts()+0.01 {
		t.Errorf("true Pport outside 3 CIs: err %.4f, CI %.4f", d, u.PPort.Watts())
	}
	if d := math.Abs(res.Profile.EBit.Picojoules() - 10); d > 3*u.EBit.Picojoules()+0.1 {
		t.Errorf("true Ebit outside 3 CIs: err %.3f pJ, CI %.3f pJ", d, u.EBit.Picojoules())
	}
}
