// Package labbench implements NetPowerBench, the paper's open-source power
// modeling framework (§5): it orchestrates the five experiment types
// against a device under test and derives every parameter of the power
// model by linear regression.
//
// The experiments, run with the DUT's ports cabled in pairs:
//
//	Base   nothing plugged, nothing configured        → Pbase        (Eq. 7)
//	Idle   transceivers plugged, all ports down       → Ptrx,in      (Eq. 8)
//	Port   one port per pair up, interfaces stay down → Pport        (Eq. 9, regression over pair count)
//	Trx    both ports up, interfaces come up          → Ptrx,up      (Eq. 10, regression over pair count)
//	Snake  RFC 8239 layer-2 snake at swept rates      → Ebit, Epkt, Poffset (Eq. 12–18)
//
// The orchestrator only ever sees what a real one would: console-style
// control of the DUT (plug/unplug, admin state, cabling) and wall-power
// readings from the external meter. The hidden ground truth inside
// internal/device is never consulted — recovering it is the point.
package labbench

import (
	"errors"
	"fmt"
	"math"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/stats"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

// Config parameterizes a derivation run for one interface profile.
type Config struct {
	// Transceiver and Speed select the interface profile to derive.
	Transceiver model.TransceiverType
	Speed       units.BitRate

	// SamplesPerPoint is how many meter samples are averaged per operating
	// point (default 30).
	SamplesPerPoint int
	// SampleInterval is the simulated time between samples (default the
	// meter's 0.5 s cadence).
	SampleInterval time.Duration

	// Rates are the snake bit rates swept per packet size. Rates above the
	// configured speed are skipped. Default: 2.5, 5, 10, 25, 50, 75,
	// 100 Gbps, clipped to the speed.
	Rates []units.BitRate
	// PacketSizes are the snake packet sizes swept (default 128, 256,
	// 512, 1024, 1500 B).
	PacketSizes []units.ByteSize

	// MeterChannel is the meter channel the DUT is plugged into.
	MeterChannel int
}

func (c *Config) applyDefaults() {
	if c.SamplesPerPoint == 0 {
		c.SamplesPerPoint = 30
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 500 * time.Millisecond
	}
	if len(c.Rates) == 0 {
		g := units.GigabitPerSecond
		for _, r := range []units.BitRate{2.5 * g, 5 * g, 10 * g, 25 * g, 50 * g, 75 * g, 100 * g} {
			if r <= c.Speed {
				c.Rates = append(c.Rates, r)
			}
		}
		if len(c.Rates) == 0 {
			// Low-speed interface: sweep fractions of the line rate.
			for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
				c.Rates = append(c.Rates, units.BitRate(f*c.Speed.BitsPerSecond()))
			}
		}
	}
	if len(c.PacketSizes) == 0 {
		c.PacketSizes = []units.ByteSize{128, 256, 512, 1024, 1500}
	}
}

// Report carries the diagnostics of a derivation: the raw experiment
// measurements and every regression, so a user can judge the fit quality
// the way the paper does (validating the model's linearity assumptions).
type Report struct {
	// Pairs is the number of cabled interface pairs N.
	Pairs int
	// PBase and PIdle are the averaged Base and Idle measurements.
	PBase, PIdle units.Power
	// PAllUp is the measurement with all interfaces up and no traffic,
	// the reference level for Poffset.
	PAllUp units.Power
	// PortFit is the regression of Port-experiment power over up-port
	// count; its slope is Pport.
	PortFit stats.LinearFit
	// TrxFit is the regression of Trx-experiment power over up-pair
	// count; its slope is 2·(Pport + Ptrx,up).
	TrxFit stats.LinearFit
	// RateFits maps packet size (bytes) to the regression of snake power
	// over bit rate (Eq. 15–16).
	RateFits map[float64]stats.LinearFit
	// EnergyFit is the second-level regression of α_L·8(L+Lh) over
	// 8(L+Lh) (Eq. 17): slope Ebit, intercept Epkt.
	EnergyFit stats.LinearFit
}

// Uncertainty carries the 95 % confidence half-widths of the regression-
// derived terms, propagated from the fits' standard errors. Direct
// measurements (Pbase, Ptrx,in) have no regression error bar and are
// omitted.
type Uncertainty struct {
	// PPort is the half-width on Pport (the port-sweep slope).
	PPort units.Power
	// PTrxUp combines the trx-sweep and port-sweep errors in quadrature
	// (Ptrx,up = slope/2 − Pport).
	PTrxUp units.Power
	// EBit and EPkt come from the second-level energy regression.
	EBit units.Energy
	EPkt units.Energy
}

// Result is the outcome of a derivation run.
type Result struct {
	// Model is the derived power model, containing one profile.
	Model *model.Model
	// Profile is the derived interface profile.
	Profile model.InterfaceProfile
	// Report holds the regression diagnostics.
	Report Report
	// Uncertainty holds the 95 % confidence half-widths of the
	// regression-derived terms.
	Uncertainty Uncertainty
}

// Orchestrator drives a DUT and a power meter through the methodology.
type Orchestrator struct {
	dut *device.Router
	m   *meter.Meter
	cfg Config
}

// New wires an orchestrator to a device under test and its meter. The DUT
// must be attached to the configured meter channel by the caller (as the
// physical setup of Fig. 3 requires).
func New(dut *device.Router, m *meter.Meter, cfg Config) (*Orchestrator, error) {
	if dut == nil || m == nil {
		return nil, errors.New("labbench: need a DUT and a meter")
	}
	if cfg.Speed <= 0 {
		return nil, errors.New("labbench: config needs a positive interface speed")
	}
	if cfg.Transceiver == "" {
		return nil, errors.New("labbench: config needs a transceiver type")
	}
	cfg.applyDefaults()
	return &Orchestrator{dut: dut, m: m, cfg: cfg}, nil
}

// measure averages SamplesPerPoint wall-power samples, advancing the DUT
// clock between them.
func (o *Orchestrator) measure() (units.Power, error) {
	return o.m.ReadMean(o.cfg.MeterChannel, o.cfg.SamplesPerPoint, func() {
		o.dut.Advance(o.cfg.SampleInterval)
	})
}

// reset returns the DUT to the Base state: everything unplugged and down.
func (o *Orchestrator) reset() error {
	for _, name := range o.dut.InterfaceNames() {
		if err := o.dut.SetAdmin(name, false); err != nil {
			return err
		}
		if err := o.dut.SetLink(name, false); err != nil {
			return err
		}
		if err := o.dut.UnplugTransceiver(name); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the full methodology and derives the profile. The DUT ports
// are cabled in pairs (eth0–eth1, eth2–eth3, …); an odd trailing port is
// left uncabled.
func (o *Orchestrator) Run() (*Result, error) {
	names := o.dut.InterfaceNames()
	pairs := len(names) / 2
	if pairs < 2 {
		return nil, fmt.Errorf("labbench: DUT has %d ports; need at least 4 for the pair sweeps", len(names))
	}
	cabled := names[:2*pairs]
	rep := Report{Pairs: pairs, RateFits: make(map[float64]stats.LinearFit)}

	// --- Base ---
	if err := o.reset(); err != nil {
		return nil, err
	}
	pBase, err := o.measure()
	if err != nil {
		return nil, fmt.Errorf("labbench: base experiment: %w", err)
	}
	rep.PBase = pBase

	// --- Idle: plug transceivers everywhere, all ports down ---
	for _, n := range cabled {
		if err := o.dut.PlugTransceiver(n, o.cfg.Transceiver, o.cfg.Speed); err != nil {
			return nil, fmt.Errorf("labbench: idle experiment: %w", err)
		}
	}
	pIdle, err := o.measure()
	if err != nil {
		return nil, fmt.Errorf("labbench: idle experiment: %w", err)
	}
	rep.PIdle = pIdle
	pTrxIn := units.Power((pIdle.Watts() - pBase.Watts()) / float64(2*pairs))

	// --- Port sweep: one port per pair admin-up, peers down ---
	// Interfaces stay operationally down (no live far end), so only Pport
	// accumulates. Regressing over the up-port count avoids compounding
	// the PIdle estimation error (§5.2).
	xs := make([]float64, 0, pairs+1)
	ys := make([]float64, 0, pairs+1)
	xs = append(xs, 0)
	ys = append(ys, pIdle.Watts())
	for n := 1; n <= pairs; n++ {
		if err := o.dut.SetAdmin(cabled[2*(n-1)], true); err != nil {
			return nil, err
		}
		p, err := o.measure()
		if err != nil {
			return nil, fmt.Errorf("labbench: port experiment n=%d: %w", n, err)
		}
		xs = append(xs, float64(n))
		ys = append(ys, p.Watts())
	}
	portFit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("labbench: port regression: %w", err)
	}
	rep.PortFit = portFit
	pPort := units.Power(portFit.Slope)

	// --- Trx sweep: both ports of each pair admin-up and cabled live ---
	// Each added pair brings two ports and two interfaces up, so the slope
	// is 2·(Pport + Ptrx,up).
	for _, n := range cabled {
		if err := o.dut.SetAdmin(n, false); err != nil {
			return nil, err
		}
	}
	xs = xs[:0]
	ys = ys[:0]
	xs = append(xs, 0)
	ys = append(ys, pIdle.Watts())
	for n := 1; n <= pairs; n++ {
		a, b := cabled[2*(n-1)], cabled[2*(n-1)+1]
		for _, name := range []string{a, b} {
			if err := o.dut.SetAdmin(name, true); err != nil {
				return nil, err
			}
			if err := o.dut.SetLink(name, true); err != nil {
				return nil, err
			}
		}
		p, err := o.measure()
		if err != nil {
			return nil, fmt.Errorf("labbench: trx experiment n=%d: %w", n, err)
		}
		xs = append(xs, float64(n))
		ys = append(ys, p.Watts())
	}
	trxFit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("labbench: trx regression: %w", err)
	}
	rep.TrxFit = trxFit
	pTrxUp := units.Power(trxFit.Slope/2 - pPort.Watts())

	// All interfaces are now up with no traffic: the Poffset reference.
	pAllUp, err := o.measure()
	if err != nil {
		return nil, err
	}
	rep.PAllUp = pAllUp

	// --- Snake sweeps: Ebit, Epkt, Poffset (Eq. 12–18) ---
	// For each packet size L, regress total power over the per-interface
	// bit rate r; the slope is 2N·α_L and the intercept 2N·Poffset above
	// the all-up level.
	header := trafficgen.EthernetOverhead
	var effBits []float64 // 8·(L+Lh)
	var alphaY []float64  // α_L·8·(L+Lh)
	var offsets []float64
	for _, L := range o.cfg.PacketSizes {
		rxs := make([]float64, 0, len(o.cfg.Rates))
		rys := make([]float64, 0, len(o.cfg.Rates))
		for _, rate := range o.cfg.Rates {
			if rate > o.cfg.Speed {
				continue
			}
			gen := trafficgen.ForRate(rate)
			load, err := gen.Load(rate, L)
			if err != nil {
				return nil, fmt.Errorf("labbench: snake load %v @ %v: %w", rate, L, err)
			}
			if _, err := trafficgen.ApplySnake(o.dut, load); err != nil {
				return nil, err
			}
			p, err := o.measure()
			if err != nil {
				return nil, fmt.Errorf("labbench: snake experiment: %w", err)
			}
			rxs = append(rxs, rate.BitsPerSecond())
			rys = append(rys, p.Watts())
		}
		if err := trafficgen.StopSnake(o.dut); err != nil {
			return nil, err
		}
		if len(rxs) < 2 {
			return nil, fmt.Errorf("labbench: need ≥2 usable rates for packet size %v", L)
		}
		fit, err := stats.LinearRegression(rxs, rys)
		if err != nil {
			return nil, fmt.Errorf("labbench: rate regression at %v: %w", L, err)
		}
		rep.RateFits[L.Bytes()] = fit
		alpha := fit.Slope / float64(2*pairs)
		eb := 8 * (L.Bytes() + header.Bytes())
		effBits = append(effBits, eb)
		alphaY = append(alphaY, alpha*eb)
		offsets = append(offsets, (fit.Intercept-pAllUp.Watts())/float64(2*pairs))
	}
	energyFit, err := stats.LinearRegression(effBits, alphaY)
	if err != nil {
		return nil, fmt.Errorf("labbench: energy regression: %w", err)
	}
	rep.EnergyFit = energyFit
	eBit := units.Energy(energyFit.Slope)
	ePkt := units.Energy(energyFit.Intercept)
	pOffset := units.Power(stats.Mean(offsets))

	profile := model.InterfaceProfile{
		Key: model.ProfileKey{
			Port:        o.dut.Spec().PortType,
			Transceiver: o.cfg.Transceiver,
			Speed:       o.cfg.Speed,
		},
		PPort:   pPort,
		PTrxIn:  pTrxIn,
		PTrxUp:  pTrxUp,
		EBit:    eBit,
		EPkt:    ePkt,
		POffset: pOffset,
	}
	m := model.New(o.dut.Model(), pBase)
	m.AddProfile(profile)

	if err := o.reset(); err != nil {
		return nil, err
	}
	unc := Uncertainty{
		PPort: units.Power(portFit.SlopeCI95()),
		// Ptrx,up = trxSlope/2 − Pport: independent errors in quadrature.
		PTrxUp: units.Power(math.Sqrt(
			math.Pow(trxFit.SlopeCI95()/2, 2) + math.Pow(portFit.SlopeCI95(), 2))),
		EBit: units.Energy(energyFit.SlopeCI95()),
		EPkt: units.Energy(energyFit.InterceptCI95()),
	}
	return &Result{Model: m, Profile: profile, Report: rep, Uncertainty: unc}, nil
}

// FitQuality summarizes the weakest regression in a report: the minimum R²
// across the port, trx, per-rate, and energy fits. Values near 1 validate
// the model's linearity assumptions.
func (r Report) FitQuality() float64 {
	min := r.PortFit.R2
	if r.TrxFit.R2 < min {
		min = r.TrxFit.R2
	}
	for _, f := range r.RateFits {
		if f.R2 < min {
			min = f.R2
		}
	}
	if r.EnergyFit.R2 < min {
		min = r.EnergyFit.R2
	}
	return min
}
