package snmp

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestRoundTripMalformedFloodStaysInBudget pins the retry-budget fix. A
// hostile responder answers every request with a stream of malformed
// datagrams. Each garbage datagram lands a successful Read, so before the
// wall-clock budget every reply used to re-arm nothing — the inner read
// loop only exited on a timeout whose deadline was reset per attempt,
// letting a steady drip of garbage stretch one Get far past
// attempts × Timeout. The Get must now fail with ErrTimeout inside the
// budget, and every piece of garbage must be counted.
func TestRoundTripMalformedFloodStaysInBudget(t *testing.T) {
	responder, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer responder.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		buf := make([]byte, 65535)
		for {
			responder.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			_, from, err := responder.ReadFromUDP(buf)
			if err != nil {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			// Drip garbage at the client faster than its per-attempt
			// timeout so the read loop never goes quiet.
			go func(addr *net.UDPAddr) {
				for i := 0; i < 200; i++ {
					select {
					case <-stop:
						return
					default:
					}
					responder.WriteToUDP([]byte{0x30, 0x84, 0xff, 0xff, byte(i)}, addr)
					time.Sleep(5 * time.Millisecond)
				}
			}(from)
		}
	}()

	const timeout = 100 * time.Millisecond
	const retries = 2
	client, err := Dial(responder.LocalAddr().String(), ClientOptions{
		Timeout: timeout, Retries: retries,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	before := MalformedDatagrams()
	budget := time.Duration(retries+1) * timeout
	start := time.Now()
	_, err = client.Get(OIDSysName)
	elapsed := time.Since(start)

	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Get = %v, want ErrTimeout", err)
	}
	// Generous slack for scheduler hiccups; without the budget clamp the
	// flood held this Get open for many seconds.
	if elapsed > budget+500*time.Millisecond {
		t.Errorf("flooded Get took %v, budget is %v", elapsed, budget)
	}
	if got := MalformedDatagrams(); got <= before {
		t.Errorf("malformed datagram counter did not move (before %d, after %d)", before, got)
	}
}
