package snmp

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// HandlerFunc produces the current value of one MIB object. Handlers run
// on the agent's receive goroutine and must be safe for concurrent use
// with whatever updates the underlying state.
type HandlerFunc func() Value

// MIB is an ordered tree of managed objects. The zero value is empty and
// ready to use; registration and lookup are safe for concurrent use.
type MIB struct {
	mu      sync.RWMutex
	oids    []OID // sorted
	handler map[string]HandlerFunc
}

// Register installs (or replaces) the handler for an OID.
func (m *MIB) Register(oid OID, h HandlerFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.handler == nil {
		m.handler = make(map[string]HandlerFunc)
	}
	key := oid.String()
	if _, exists := m.handler[key]; !exists {
		idx := sort.Search(len(m.oids), func(i int) bool { return m.oids[i].Compare(oid) >= 0 })
		m.oids = append(m.oids, nil)
		copy(m.oids[idx+1:], m.oids[idx:])
		m.oids[idx] = append(OID(nil), oid...)
	}
	m.handler[key] = h
}

// RegisterScalar installs a constant value under an OID.
func (m *MIB) RegisterScalar(oid OID, v Value) {
	m.Register(oid, func() Value { return v })
}

// Len returns the number of registered objects.
func (m *MIB) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.oids)
}

// Get returns the exact object value, or a noSuchInstance exception.
func (m *MIB) Get(oid OID) Value {
	m.mu.RLock()
	h, ok := m.handler[oid.String()]
	m.mu.RUnlock()
	if !ok {
		return Value{Kind: KindNoSuchInstance}
	}
	return h()
}

// Next returns the first object strictly after oid in tree order, or
// ok=false at the end of the MIB view.
func (m *MIB) Next(oid OID) (OID, Value, bool) {
	m.mu.RLock()
	idx := sort.Search(len(m.oids), func(i int) bool { return m.oids[i].Compare(oid) > 0 })
	if idx >= len(m.oids) {
		m.mu.RUnlock()
		return nil, Value{}, false
	}
	next := m.oids[idx]
	h := m.handler[next.String()]
	m.mu.RUnlock()
	return next, h(), true
}

// maxResponseBytes caps agent responses; larger results return tooBig, as
// a real agent would for a datagram transport.
const maxResponseBytes = 60000

// Agent serves a MIB over SNMPv2c/UDP. Create with NewAgent, start with
// Start (or StartPacketConn to serve an existing — possibly
// fault-injected — socket), and stop with Close.
type Agent struct {
	mib       *MIB
	community string

	mu   sync.Mutex
	conn net.PacketConn
	done chan struct{}
	wg   sync.WaitGroup
}

// NewAgent returns an agent serving the MIB to clients presenting the
// given community string.
func NewAgent(mib *MIB, community string) *Agent {
	return &Agent{mib: mib, community: community}
}

// Start binds the agent to a UDP address (use "127.0.0.1:0" for an
// ephemeral loopback port) and begins serving. It returns the bound
// address.
func (a *Agent) Start(addr string) (string, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", fmt.Errorf("snmp: agent: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return "", fmt.Errorf("snmp: agent: %w", err)
	}
	bound, err := a.StartPacketConn(conn)
	if err != nil {
		conn.Close()
		return "", err
	}
	return bound, nil
}

// StartPacketConn begins serving on an existing packet socket, which the
// agent takes ownership of. The chaos harness uses this to splice
// deterministic datagram loss, duplication, and corruption under an
// otherwise unmodified agent.
func (a *Agent) StartPacketConn(conn net.PacketConn) (string, error) {
	a.mu.Lock()
	if a.conn != nil {
		a.mu.Unlock()
		return "", errors.New("snmp: agent already started")
	}
	a.conn = conn
	a.done = make(chan struct{})
	a.mu.Unlock()

	a.wg.Add(1)
	go a.serve(conn)
	return conn.LocalAddr().String(), nil
}

// Close stops the agent and waits for its goroutine to exit. It is safe to
// call multiple times.
func (a *Agent) Close() error {
	a.mu.Lock()
	conn := a.conn
	done := a.done
	a.conn = nil
	a.mu.Unlock()
	if conn == nil {
		return nil
	}
	close(done)
	err := conn.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) serve(conn net.PacketConn) {
	defer a.wg.Done()
	// Reads are deliberately unbounded: the agent parks on the next
	// datagram until Close tears the socket down and fails ReadFrom.
	_ = conn.SetReadDeadline(time.Time{})
	buf := make([]byte, 65535)
	for {
		n, raddr, err := conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-a.done:
				return
			default:
				// Transient read error on a live socket; keep serving.
				continue
			}
		}
		msg, err := Unmarshal(buf[:n])
		if err != nil {
			metricMalformed.Inc()
			continue // malformed datagrams are dropped, as real agents do
		}
		if msg.Community != a.community {
			continue // wrong community: drop silently (RFC 3584 behaviour)
		}
		resp := a.handle(msg.PDU)
		out, err := Message{Community: a.community, PDU: resp}.Marshal()
		if err != nil {
			continue
		}
		if len(out) > maxResponseBytes {
			tooBig := PDU{Type: Response, RequestID: msg.PDU.RequestID, ErrorStatus: ErrTooBig}
			if out, err = (Message{Community: a.community, PDU: tooBig}).Marshal(); err != nil {
				continue
			}
		}
		// A response is a single datagram; a short write deadline keeps a
		// jammed socket from wedging the serve loop between reads.
		_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
		_, _ = conn.WriteTo(out, raddr)
	}
}

func (a *Agent) handle(req PDU) PDU {
	resp := PDU{Type: Response, RequestID: req.RequestID}
	switch req.Type {
	case GetRequest:
		for _, vb := range req.VarBinds {
			resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: a.mib.Get(vb.OID)})
		}
	case GetNextRequest:
		for _, vb := range req.VarBinds {
			next, val, ok := a.mib.Next(vb.OID)
			if !ok {
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: Value{Kind: KindEndOfMibView}})
				continue
			}
			resp.VarBinds = append(resp.VarBinds, VarBind{OID: next, Value: val})
		}
	case GetBulkRequest:
		nonRep := req.NonRepeaters()
		maxRep := req.MaxRepetitions()
		if nonRep < 0 {
			nonRep = 0
		}
		if nonRep > len(req.VarBinds) {
			nonRep = len(req.VarBinds)
		}
		if maxRep <= 0 {
			maxRep = 10
		}
		for _, vb := range req.VarBinds[:nonRep] {
			next, val, ok := a.mib.Next(vb.OID)
			if !ok {
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: Value{Kind: KindEndOfMibView}})
				continue
			}
			resp.VarBinds = append(resp.VarBinds, VarBind{OID: next, Value: val})
		}
		for _, vb := range req.VarBinds[nonRep:] {
			cur := vb.OID
			for i := 0; i < maxRep; i++ {
				next, val, ok := a.mib.Next(cur)
				if !ok {
					resp.VarBinds = append(resp.VarBinds, VarBind{OID: cur, Value: Value{Kind: KindEndOfMibView}})
					break
				}
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: next, Value: val})
				cur = next
			}
		}
	default:
		resp.ErrorStatus = ErrGenErr
	}
	return resp
}
