package snmp

import (
	"testing"
)

func TestMessageRoundTrip(t *testing.T) {
	msg := Message{
		Community: "switch-ro",
		PDU: PDU{
			Type:      GetRequest,
			RequestID: 12345,
			VarBinds: []VarBind{
				{OID: MustOID(".1.3.6.1.2.1.1.5.0"), Value: NullValue()},
				{OID: MustOID(".1.3.6.1.2.1.31.1.1.1.6.3"), Value: NullValue()},
			},
		},
	}
	data, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Community != msg.Community {
		t.Errorf("community = %q", dec.Community)
	}
	if dec.PDU.Type != GetRequest || dec.PDU.RequestID != 12345 {
		t.Errorf("pdu header = %+v", dec.PDU)
	}
	if len(dec.PDU.VarBinds) != 2 {
		t.Fatalf("varbinds = %d", len(dec.PDU.VarBinds))
	}
	if dec.PDU.VarBinds[1].OID.String() != ".1.3.6.1.2.1.31.1.1.1.6.3" {
		t.Errorf("vb[1].oid = %s", dec.PDU.VarBinds[1].OID)
	}
}

func TestResponseRoundTripWithValues(t *testing.T) {
	msg := Message{
		Community: "public",
		PDU: PDU{
			Type:        Response,
			RequestID:   -7,
			ErrorStatus: ErrTooBig,
			ErrorIndex:  2,
			VarBinds: []VarBind{
				{OID: MustOID(".1.3.6.1.2.1.1.5.0"), Value: StringValue("rtr-01")},
				{OID: MustOID(".1.3.6.1.2.1.99.1.1.1.4.1"), Value: Gauge32Value(181)},
				{OID: MustOID(".1.3.6.1.2.1.31.1.1.1.6.1"), Value: Counter64Value(1 << 50)},
			},
		},
	}
	data, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.PDU.ErrorStatus != ErrTooBig || dec.PDU.ErrorIndex != 2 {
		t.Errorf("error fields = %d/%d", dec.PDU.ErrorStatus, dec.PDU.ErrorIndex)
	}
	if string(dec.PDU.VarBinds[0].Value.Bytes) != "rtr-01" {
		t.Errorf("vb[0] = %v", dec.PDU.VarBinds[0].Value)
	}
	if dec.PDU.VarBinds[1].Value.Uint != 181 {
		t.Errorf("vb[1] = %v", dec.PDU.VarBinds[1].Value)
	}
	if dec.PDU.VarBinds[2].Value.Uint != 1<<50 {
		t.Errorf("vb[2] = %v", dec.PDU.VarBinds[2].Value)
	}
}

func TestGetBulkFieldAliases(t *testing.T) {
	p := PDU{Type: GetBulkRequest, ErrorStatus: 1, ErrorIndex: 32}
	if p.NonRepeaters() != 1 || p.MaxRepetitions() != 32 {
		t.Errorf("bulk fields = %d/%d", p.NonRepeaters(), p.MaxRepetitions())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x30},
		{0x04, 0x01, 0x00},       // not a sequence
		{0x30, 0x02, 0x02, 0x00}, // truncated inner
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestUnmarshalRejectsV1(t *testing.T) {
	msg := Message{Community: "public", PDU: PDU{Type: GetRequest}}
	data, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Patch the version integer (first TLV inside the sequence) to 0 (v1).
	// Layout: 30 len 02 01 <ver> ...
	if data[2] != 0x02 || data[3] != 0x01 {
		t.Fatal("unexpected layout")
	}
	data[4] = 0
	if _, err := Unmarshal(data); err == nil {
		t.Error("SNMPv1 must be rejected")
	}
}

func TestUnmarshalRejectsUnknownPDUType(t *testing.T) {
	msg := Message{Community: "public", PDU: PDU{Type: GetRequest}}
	data, _ := msg.Marshal()
	// The PDU tag follows version TLV (3 bytes) and community TLV.
	idx := 2 + 3 + 2 + len("public")
	if PDUType(data[idx]) != GetRequest {
		t.Fatal("unexpected layout")
	}
	data[idx] = 0xa4 // obsolete trap type, unsupported
	if _, err := Unmarshal(data); err == nil {
		t.Error("unsupported PDU type must be rejected")
	}
}

func TestPDUTypeString(t *testing.T) {
	if GetBulkRequest.String() != "GetBulkRequest" {
		t.Error("GetBulkRequest name")
	}
	if PDUType(0x99).String() != "PDUType(0x99)" {
		t.Error("unknown type formatting")
	}
}

func TestFuzzStyleUnmarshalNoPanic(t *testing.T) {
	// Mutate a valid message byte-by-byte; Unmarshal must never panic.
	msg := Message{
		Community: "c",
		PDU: PDU{Type: Response, VarBinds: []VarBind{
			{OID: MustOID(".1.3.6.1.2.1.1.5.0"), Value: StringValue("x")},
		}},
	}
	valid, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := range valid {
		for _, b := range []byte{0x00, 0x7f, 0x80, 0xff} {
			mutated := append([]byte(nil), valid...)
			mutated[i] = b
			_, _ = Unmarshal(mutated) // error or success, just no panic
		}
	}
}
