package snmp

import (
	"errors"
	"testing"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/units"
)

func TestMIBGetNext(t *testing.T) {
	var mib MIB
	mib.RegisterScalar(MustOID(".1.3.6.1.2.1.1.5.0"), StringValue("r1"))
	mib.RegisterScalar(MustOID(".1.3.6.1.2.1.2.1.0"), IntegerValue(4))
	mib.RegisterScalar(MustOID(".1.3.6.1.2.1.2.2.1.7.1"), IntegerValue(1))

	if v := mib.Get(MustOID(".1.3.6.1.2.1.1.5.0")); string(v.Bytes) != "r1" {
		t.Errorf("Get sysName = %v", v)
	}
	if v := mib.Get(MustOID(".1.3.6.1.2.1.1.6.0")); v.Kind != KindNoSuchInstance {
		t.Errorf("Get missing = %v, want noSuchInstance", v)
	}
	next, v, ok := mib.Next(MustOID(".1.3.6.1.2.1.1.5.0"))
	if !ok || next.String() != ".1.3.6.1.2.1.2.1.0" || v.Int != 4 {
		t.Errorf("Next = %s %v %v", next, v, ok)
	}
	// Next from a non-registered OID finds the following entry.
	next, _, ok = mib.Next(MustOID(".1.3.6.1.2.1.2"))
	if !ok || next.String() != ".1.3.6.1.2.1.2.1.0" {
		t.Errorf("Next from prefix = %s", next)
	}
	if _, _, ok := mib.Next(MustOID(".1.3.6.1.2.1.2.2.1.7.1")); ok {
		t.Error("Next past the last entry must report end of view")
	}
	if mib.Len() != 3 {
		t.Errorf("Len = %d", mib.Len())
	}
}

func TestMIBRegisterReplaces(t *testing.T) {
	var mib MIB
	oid := MustOID(".1.3.6.1.2.1.1.5.0")
	mib.RegisterScalar(oid, StringValue("old"))
	mib.RegisterScalar(oid, StringValue("new"))
	if mib.Len() != 1 {
		t.Errorf("duplicate registration grew the MIB: %d", mib.Len())
	}
	if v := mib.Get(oid); string(v.Bytes) != "new" {
		t.Errorf("Get = %v, want replaced value", v)
	}
}

func startAgent(t *testing.T, mib *MIB, community string) (*Agent, string) {
	t.Helper()
	agent := NewAgent(mib, community)
	addr, err := agent.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agent.Close() })
	return agent, addr
}

func dialClient(t *testing.T, addr, community string) *Client {
	t.Helper()
	c, err := Dial(addr, ClientOptions{Community: community, Timeout: 500 * time.Millisecond, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestAgentGetOverUDP(t *testing.T) {
	var mib MIB
	mib.RegisterScalar(OIDSysName, StringValue("lab-rtr"))
	mib.RegisterScalar(OIDPSUPower.Append(1), Gauge32Value(181))
	_, addr := startAgent(t, &mib, "public")
	c := dialClient(t, addr, "public")

	vbs, err := c.Get(OIDSysName, OIDPSUPower.Append(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 2 {
		t.Fatalf("varbinds = %d", len(vbs))
	}
	if string(vbs[0].Value.Bytes) != "lab-rtr" {
		t.Errorf("sysName = %v", vbs[0].Value)
	}
	if vbs[1].Value.Uint != 181 {
		t.Errorf("psu power = %v", vbs[1].Value)
	}
	// Missing object comes back as noSuchInstance, not an error.
	vbs, err = c.Get(MustOID(".1.3.6.1.9.9.9.0"))
	if err != nil {
		t.Fatal(err)
	}
	if vbs[0].Value.Kind != KindNoSuchInstance {
		t.Errorf("missing = %v", vbs[0].Value)
	}
}

func TestAgentGetNextOverUDP(t *testing.T) {
	var mib MIB
	mib.RegisterScalar(MustOID(".1.3.6.1.2.1.1.1.0"), StringValue("descr"))
	mib.RegisterScalar(MustOID(".1.3.6.1.2.1.1.5.0"), StringValue("name"))
	_, addr := startAgent(t, &mib, "public")
	c := dialClient(t, addr, "public")

	vbs, err := c.GetNext(MustOID(".1.3.6.1.2.1.1.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if vbs[0].OID.String() != ".1.3.6.1.2.1.1.5.0" {
		t.Errorf("next = %s", vbs[0].OID)
	}
	vbs, err = c.GetNext(MustOID(".1.3.6.1.2.1.1.5.0"))
	if err != nil {
		t.Fatal(err)
	}
	if vbs[0].Value.Kind != KindEndOfMibView {
		t.Errorf("past end = %v", vbs[0].Value)
	}
}

func TestAgentWrongCommunityTimesOut(t *testing.T) {
	var mib MIB
	mib.RegisterScalar(OIDSysName, StringValue("x"))
	_, addr := startAgent(t, &mib, "secret")
	c := dialClient(t, addr, "wrong")
	if _, err := c.Get(OIDSysName); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout (agent drops silently)", err)
	}
}

func TestAgentDoubleStartAndClose(t *testing.T) {
	var mib MIB
	agent := NewAgent(&mib, "public")
	if _, err := agent.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start must error")
	}
	if err := agent.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := agent.Close(); err != nil {
		t.Errorf("second Close must be a no-op: %v", err)
	}
}

func newTestRouter(t *testing.T) *device.Router {
	t.Helper()
	curve, _ := psu.NewCurve([]psu.CurvePoint{{Load: 0, Efficiency: 0.9}, {Load: 1, Efficiency: 0.9}})
	key := model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * units.GigabitPerSecond}
	spec := device.ModelSpec{
		Name: "snmp-rtr", NumPorts: 4, PortType: model.QSFP28,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			key: {Key: key, PPort: 1, EBit: 10 * units.Picojoule},
		},
		PBaseDC: 200, PSUCount: 2, PSUCapacity: 1000, PSUCurve: curve,
		PSUSensor: device.SensorAccurate, InitialOSVersion: "1.0",
	}
	r, err := device.New(spec, "edge-rtr-07", 3)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterMIBEndToEnd(t *testing.T) {
	r := newTestRouter(t)
	if err := r.PlugTransceiver("eth0", model.PassiveDAC, 100*units.GigabitPerSecond); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAdmin("eth0", true); err != nil {
		t.Fatal(err)
	}
	if err := r.SetLink("eth0", true); err != nil {
		t.Fatal(err)
	}
	if err := r.SetTraffic("eth0", 8*units.GigabitPerSecond, 1000); err != nil {
		t.Fatal(err)
	}
	r.Advance(10 * time.Second)

	var mib MIB
	BindRouter(&mib, r)
	_, addr := startAgent(t, &mib, "public")
	c := dialClient(t, addr, "public")

	vbs, err := c.Get(OIDSysName, OIDIfNumber, OIDIfOperStatus.Append(1), OIDIfOperStatus.Append(2))
	if err != nil {
		t.Fatal(err)
	}
	if string(vbs[0].Value.Bytes) != "edge-rtr-07" {
		t.Errorf("sysName = %v", vbs[0].Value)
	}
	if vbs[1].Value.Int != 4 {
		t.Errorf("ifNumber = %v", vbs[1].Value)
	}
	if vbs[2].Value.Int != StatusUp || vbs[3].Value.Int != StatusDown {
		t.Errorf("oper status = %v/%v", vbs[2].Value, vbs[3].Value)
	}

	// Counters via walk: eth0 accumulated 10 s at 8 Gbps bidirectional.
	walked, err := c.Walk(OIDIfHCInOctets)
	if err != nil {
		t.Fatal(err)
	}
	if len(walked) != 4 {
		t.Fatalf("walked %d in-octet rows, want 4", len(walked))
	}
	wantOctets := uint64(8e9 / 8 / 2 * 10)
	if walked[0].Value.Uint != wantOctets {
		t.Errorf("eth0 inOctets = %d, want %d", walked[0].Value.Uint, wantOctets)
	}
	for _, vb := range walked[1:] {
		if vb.Value.Uint != 0 {
			t.Errorf("idle interface counted octets: %v", vb)
		}
	}

	// PSU power gauges present for both PSUs, roughly half the wall each.
	psuVbs, err := c.Walk(OIDPSUPower)
	if err != nil {
		t.Fatal(err)
	}
	if len(psuVbs) != 2 {
		t.Fatalf("psu rows = %d, want 2", len(psuVbs))
	}
	wall := r.WallPower().Watts()
	for _, vb := range psuVbs {
		got := float64(vb.Value.Uint)
		if got < wall/2-10 || got > wall/2+10 {
			t.Errorf("psu gauge %v far from wall/2 = %v", got, wall/2)
		}
	}
}

func TestRouterMIBNoSensor(t *testing.T) {
	r := newTestRouter(t)
	// Rebuild with a sensorless spec.
	spec := r.Spec()
	spec.PSUSensor = device.SensorNone
	r2, err := device.New(spec, "dark-rtr", 4)
	if err != nil {
		t.Fatal(err)
	}
	var mib MIB
	BindRouter(&mib, r2)
	_, addr := startAgent(t, &mib, "public")
	c := dialClient(t, addr, "public")
	vbs, err := c.Walk(OIDPSUPower)
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 0 {
		t.Errorf("sensorless router exposed %d PSU rows", len(vbs))
	}
}

func TestAgentGetBulk(t *testing.T) {
	var mib MIB
	base := MustOID(".1.3.6.1.2.1.31.1.1.1.6")
	for i := uint32(1); i <= 100; i++ {
		mib.RegisterScalar(base.Append(i), Counter64Value(uint64(i)*10))
	}
	_, addr := startAgent(t, &mib, "public")
	c := dialClient(t, addr, "public")
	vbs, err := c.Walk(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 100 {
		t.Fatalf("walk returned %d rows, want 100", len(vbs))
	}
	for i, vb := range vbs {
		if vb.Value.Uint != uint64(i+1)*10 {
			t.Errorf("row %d = %d", i, vb.Value.Uint)
		}
	}
}
