package snmp

import (
	"testing"
)

// messageBytes encodes a message for corpus seeding.
func messageBytes(t testing.TB, m Message) []byte {
	t.Helper()
	out, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// FuzzUnmarshal drives the BER decoder with arbitrary datagrams — the
// exact input an agent or client read loop sees from the network. The
// corpus mirrors the chaos harness's datagram corruption: valid requests
// and responses, byte-flipped variants, and truncations. Invariants: no
// panic, and anything accepted re-marshals without panicking (the agent
// echoes decoded PDUs back onto the wire).
func FuzzUnmarshal(f *testing.F) {
	get := messageBytes(f, Message{Community: "public", PDU: PDU{
		Type: GetRequest, RequestID: 1,
		VarBinds: []VarBind{{OID: OIDSysName, Value: NullValue()}},
	}})
	f.Add(get)
	f.Add(messageBytes(f, Message{Community: "public", PDU: PDU{
		Type: GetBulkRequest, RequestID: 7, ErrorIndex: 32,
		VarBinds: []VarBind{{OID: OIDPSUPower, Value: NullValue()}},
	}}))
	f.Add(messageBytes(f, Message{Community: "public", PDU: PDU{
		Type: Response, RequestID: 9,
		VarBinds: []VarBind{
			{OID: OIDPSUPower.Append(1), Value: Gauge32Value(412)},
			{OID: OIDIfName.Append(1), Value: StringValue("et-0/0/1")},
			{OID: OIDIfHCInOctets.Append(1), Value: Counter64Value(1 << 40)},
		},
	}}))
	// Chaos-style single byte-flips at a few positions.
	for _, pos := range []int{1, len(get) / 2, len(get) - 2} {
		flipped := append([]byte(nil), get...)
		flipped[pos] ^= 0x20
		f.Add(flipped)
	}
	// Torn datagram and hostile TLV lengths.
	f.Add(get[:len(get)/2])
	f.Add([]byte{0x30, 0x84, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x30, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted messages flow back through Marshal in the agent's
		// response path; it may reject values it cannot encode, but it
		// must not panic.
		_, _ = Message{Community: msg.Community, PDU: msg.PDU}.Marshal()
	})
}
