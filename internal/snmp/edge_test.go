package snmp

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// TestAgentTooBig drives the agent into the tooBig path: a GetBulk whose
// response would exceed the datagram cap must come back as an error PDU,
// not a giant datagram.
func TestAgentTooBig(t *testing.T) {
	var mib MIB
	base := MustOID(".1.3.6.1.4.1.99999.1")
	big := strings.Repeat("x", 64)
	for i := uint32(1); i <= 1500; i++ {
		mib.RegisterScalar(base.Append(i), StringValue(big))
	}
	_, addr := startAgent(t, &mib, "public")

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := Message{Community: "public", PDU: PDU{
		Type:       GetBulkRequest,
		RequestID:  7,
		ErrorIndex: 1500, // max-repetitions: ~1500 × ~80 B ≫ the cap
		VarBinds:   []VarBind{{OID: base, Value: NullValue()}},
	}}
	out, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Unmarshal(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.PDU.ErrorStatus != ErrTooBig {
		t.Errorf("status = %d, want tooBig(%d)", resp.PDU.ErrorStatus, ErrTooBig)
	}
	if len(resp.PDU.VarBinds) != 0 {
		t.Errorf("tooBig response carries %d varbinds", len(resp.PDU.VarBinds))
	}
}

// TestAgentSurvivesGarbageDatagrams floods the agent with malformed input
// and verifies it keeps serving.
func TestAgentSurvivesGarbageDatagrams(t *testing.T) {
	var mib MIB
	mib.RegisterScalar(OIDSysName, StringValue("resilient"))
	_, addr := startAgent(t, &mib, "public")

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		payload := []byte(fmt.Sprintf("garbage-%d", i))
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()

	c := dialClient(t, addr, "public")
	vbs, err := c.Get(OIDSysName)
	if err != nil {
		t.Fatalf("agent died after garbage: %v", err)
	}
	if string(vbs[0].Value.Bytes) != "resilient" {
		t.Errorf("value = %v", vbs[0].Value)
	}
}

// TestGetBulkNonRepeatersEdges exercises the bulk parameter corners
// directly against the handler.
func TestGetBulkNonRepeatersEdges(t *testing.T) {
	var mib MIB
	mib.RegisterScalar(MustOID(".1.3.6.1.2.1.1.1.0"), StringValue("a"))
	mib.RegisterScalar(MustOID(".1.3.6.1.2.1.1.5.0"), StringValue("b"))
	agent := NewAgent(&mib, "public")

	// nonRepeaters larger than the varbind count: all treated as
	// non-repeating, one next each.
	resp := agent.handle(PDU{
		Type:        GetBulkRequest,
		ErrorStatus: 10, // non-repeaters
		ErrorIndex:  5,  // max-repetitions
		VarBinds: []VarBind{
			{OID: MustOID(".1.3.6.1.2.1.1"), Value: NullValue()},
		},
	})
	if len(resp.VarBinds) != 1 {
		t.Fatalf("varbinds = %d, want 1", len(resp.VarBinds))
	}
	if string(resp.VarBinds[0].Value.Bytes) != "a" {
		t.Errorf("vb = %v", resp.VarBinds[0].Value)
	}

	// Negative non-repeaters clamp to 0; zero max-repetitions defaults.
	resp = agent.handle(PDU{
		Type:        GetBulkRequest,
		ErrorStatus: -3,
		ErrorIndex:  0,
		VarBinds:    []VarBind{{OID: MustOID(".1.3.6.1.2.1.1"), Value: NullValue()}},
	})
	if len(resp.VarBinds) < 2 {
		t.Errorf("repeating varbinds = %d, want both rows plus end-of-view", len(resp.VarBinds))
	}
	last := resp.VarBinds[len(resp.VarBinds)-1]
	if last.Value.Kind != KindEndOfMibView {
		t.Errorf("bulk should hit end of view, got %v", last.Value)
	}
}

// TestClientIgnoresMismatchedResponses checks that stale request IDs do
// not satisfy a newer request.
func TestClientIgnoresMismatchedResponses(t *testing.T) {
	// A fake "agent" that answers with a wrong request ID first, then the
	// right one.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 65535)
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		msg, err := Unmarshal(buf[:n])
		if err != nil {
			return
		}
		bad := Message{Community: msg.Community, PDU: PDU{
			Type: Response, RequestID: msg.PDU.RequestID + 999,
			VarBinds: []VarBind{{OID: OIDSysName, Value: StringValue("stale")}},
		}}
		data, _ := bad.Marshal()
		_, _ = pc.WriteTo(data, addr)
		good := Message{Community: msg.Community, PDU: PDU{
			Type: Response, RequestID: msg.PDU.RequestID,
			VarBinds: []VarBind{{OID: OIDSysName, Value: StringValue("fresh")}},
		}}
		data, _ = good.Marshal()
		_, _ = pc.WriteTo(data, addr)
	}()

	c := dialClient(t, pc.LocalAddr().String(), "public")
	vbs, err := c.Get(OIDSysName)
	if err != nil {
		t.Fatal(err)
	}
	if string(vbs[0].Value.Bytes) != "fresh" {
		t.Errorf("client accepted the stale response: %v", vbs[0].Value)
	}
}
