package snmp

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tag values for the BER types SNMPv2c uses.
const (
	tagInteger     = 0x02
	tagOctetString = 0x04
	tagNull        = 0x05
	tagOID         = 0x06
	tagSequence    = 0x30
	tagIPAddress   = 0x40
	tagCounter32   = 0x41
	tagGauge32     = 0x42
	tagTimeTicks   = 0x43
	tagCounter64   = 0x46

	// Exception tags (SNMPv2c varbind exceptions).
	tagNoSuchObject   = 0x80
	tagNoSuchInstance = 0x81
	tagEndOfMibView   = 0x82
)

// Kind enumerates the value kinds a varbind can carry.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInteger
	KindOctetString
	KindOID
	KindIPAddress
	KindCounter32
	KindGauge32
	KindTimeTicks
	KindCounter64
	KindNoSuchObject
	KindNoSuchInstance
	KindEndOfMibView
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "Null"
	case KindInteger:
		return "Integer"
	case KindOctetString:
		return "OctetString"
	case KindOID:
		return "OID"
	case KindIPAddress:
		return "IpAddress"
	case KindCounter32:
		return "Counter32"
	case KindGauge32:
		return "Gauge32"
	case KindTimeTicks:
		return "TimeTicks"
	case KindCounter64:
		return "Counter64"
	case KindNoSuchObject:
		return "noSuchObject"
	case KindNoSuchInstance:
		return "noSuchInstance"
	case KindEndOfMibView:
		return "endOfMibView"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a decoded SNMP value.
type Value struct {
	Kind  Kind
	Int   int64  // KindInteger
	Uint  uint64 // counters, gauges, ticks
	Bytes []byte // KindOctetString, KindIPAddress
	OID   OID    // KindOID
}

// IntegerValue builds an Integer value.
func IntegerValue(v int64) Value { return Value{Kind: KindInteger, Int: v} }

// StringValue builds an OctetString value.
func StringValue(s string) Value { return Value{Kind: KindOctetString, Bytes: []byte(s)} }

// Counter32Value builds a Counter32 (wrapping at 2³²).
func Counter32Value(v uint32) Value { return Value{Kind: KindCounter32, Uint: uint64(v)} }

// Counter64Value builds a Counter64.
func Counter64Value(v uint64) Value { return Value{Kind: KindCounter64, Uint: v} }

// Gauge32Value builds a Gauge32.
func Gauge32Value(v uint32) Value { return Value{Kind: KindGauge32, Uint: uint64(v)} }

// NullValue builds a Null value (used in request varbinds).
func NullValue() Value { return Value{Kind: KindNull} }

// String renders the value for humans, e.g. "Counter64: 12345".
func (v Value) String() string {
	switch v.Kind {
	case KindNull, KindNoSuchObject, KindNoSuchInstance, KindEndOfMibView:
		return v.Kind.String()
	case KindInteger:
		return fmt.Sprintf("Integer: %d", v.Int)
	case KindOctetString:
		return fmt.Sprintf("OctetString: %q", v.Bytes)
	case KindOID:
		return "OID: " + v.OID.String()
	case KindIPAddress:
		if len(v.Bytes) == 4 {
			return fmt.Sprintf("IpAddress: %d.%d.%d.%d", v.Bytes[0], v.Bytes[1], v.Bytes[2], v.Bytes[3])
		}
		return fmt.Sprintf("IpAddress: % x", v.Bytes)
	default:
		return fmt.Sprintf("%s: %d", v.Kind, v.Uint)
	}
}

// OID is an object identifier as a sequence of arcs.
type OID []uint32

// ParseOID parses a dotted OID string such as ".1.3.6.1.2.1.1.5.0" (the
// leading dot is optional).
func ParseOID(s string) (OID, error) {
	s = strings.TrimPrefix(s, ".")
	if s == "" {
		return nil, errors.New("snmp: empty OID")
	}
	parts := strings.Split(s, ".")
	oid := make(OID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: bad OID arc %q: %w", p, err)
		}
		oid[i] = uint32(v)
	}
	if len(oid) < 2 {
		return nil, fmt.Errorf("snmp: OID %q needs at least two arcs", s)
	}
	if oid[0] > 2 || (oid[0] < 2 && oid[1] > 39) {
		return nil, fmt.Errorf("snmp: invalid OID root %d.%d", oid[0], oid[1])
	}
	return oid, nil
}

// MustOID is ParseOID for known-good literals; it panics on error.
func MustOID(s string) OID {
	oid, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return oid
}

// String renders the OID with a leading dot.
func (o OID) String() string {
	var sb strings.Builder
	for _, arc := range o {
		sb.WriteByte('.')
		sb.WriteString(strconv.FormatUint(uint64(arc), 10))
	}
	return sb.String()
}

// Compare orders OIDs lexicographically by arc, the MIB tree order.
func (o OID) Compare(other OID) int {
	n := len(o)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		switch {
		case o[i] < other[i]:
			return -1
		case o[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	}
	return 0
}

// HasPrefix reports whether o lies under the given prefix.
func (o OID) HasPrefix(prefix OID) bool {
	if len(o) < len(prefix) {
		return false
	}
	for i, arc := range prefix {
		if o[i] != arc {
			return false
		}
	}
	return true
}

// Append returns a new OID with extra arcs appended.
func (o OID) Append(arcs ...uint32) OID {
	out := make(OID, 0, len(o)+len(arcs))
	out = append(out, o...)
	out = append(out, arcs...)
	return out
}

// SortOIDs sorts a slice of OIDs into MIB tree order.
func SortOIDs(oids []OID) {
	sort.Slice(oids, func(i, j int) bool { return oids[i].Compare(oids[j]) < 0 })
}

// --- BER encoding ---

func appendLength(b []byte, n int) []byte {
	if n < 0x80 {
		return append(b, byte(n))
	}
	var tmp [8]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte(n & 0xff)
		n >>= 8
	}
	b = append(b, byte(0x80|(len(tmp)-i)))
	return append(b, tmp[i:]...)
}

func appendTLV(b []byte, tag byte, content []byte) []byte {
	b = append(b, tag)
	b = appendLength(b, len(content))
	return append(b, content...)
}

func appendInt(b []byte, tag byte, v int64) []byte {
	// Minimal two's-complement encoding.
	var content []byte
	for {
		content = append([]byte{byte(v & 0xff)}, content...)
		v >>= 8
		if (v == 0 && content[0]&0x80 == 0) || (v == -1 && content[0]&0x80 != 0) {
			break
		}
	}
	return appendTLV(b, tag, content)
}

func appendUint(b []byte, tag byte, v uint64) []byte {
	var content []byte
	for {
		content = append([]byte{byte(v & 0xff)}, content...)
		v >>= 8
		if v == 0 {
			break
		}
	}
	if content[0]&0x80 != 0 {
		content = append([]byte{0}, content...)
	}
	return appendTLV(b, tag, content)
}

func appendOID(b []byte, oid OID) ([]byte, error) {
	if len(oid) < 2 {
		return nil, fmt.Errorf("snmp: cannot encode OID with %d arcs", len(oid))
	}
	first := uint64(oid[0])*40 + uint64(oid[1])
	content := appendBase128(nil, first)
	for _, arc := range oid[2:] {
		content = appendBase128(content, uint64(arc))
	}
	return appendTLV(b, tagOID, content), nil
}

func appendBase128(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, 0)
	}
	var tmp [10]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte(v & 0x7f)
		v >>= 7
	}
	for j := i; j < len(tmp)-1; j++ {
		tmp[j] |= 0x80
	}
	return append(b, tmp[i:]...)
}

func appendValue(b []byte, v Value) ([]byte, error) {
	switch v.Kind {
	case KindNull:
		return appendTLV(b, tagNull, nil), nil
	case KindInteger:
		return appendInt(b, tagInteger, v.Int), nil
	case KindOctetString:
		return appendTLV(b, tagOctetString, v.Bytes), nil
	case KindOID:
		return appendOID(b, v.OID)
	case KindIPAddress:
		if len(v.Bytes) != 4 {
			return nil, fmt.Errorf("snmp: IpAddress needs 4 bytes, got %d", len(v.Bytes))
		}
		return appendTLV(b, tagIPAddress, v.Bytes), nil
	case KindCounter32, KindGauge32, KindTimeTicks:
		if v.Uint > 0xffffffff {
			return nil, fmt.Errorf("snmp: %s overflow: %d", v.Kind, v.Uint)
		}
		tag := byte(tagCounter32)
		switch v.Kind {
		case KindGauge32:
			tag = tagGauge32
		case KindTimeTicks:
			tag = tagTimeTicks
		}
		return appendUint(b, tag, v.Uint), nil
	case KindCounter64:
		return appendUint(b, tagCounter64, v.Uint), nil
	case KindNoSuchObject:
		return appendTLV(b, tagNoSuchObject, nil), nil
	case KindNoSuchInstance:
		return appendTLV(b, tagNoSuchInstance, nil), nil
	case KindEndOfMibView:
		return appendTLV(b, tagEndOfMibView, nil), nil
	}
	return nil, fmt.Errorf("snmp: cannot encode %v", v.Kind)
}

// --- BER decoding ---

type reader struct {
	buf []byte
	off int
}

func (r *reader) readTL() (tag byte, length int, err error) {
	if r.off >= len(r.buf) {
		return 0, 0, errors.New("snmp: truncated TLV header")
	}
	tag = r.buf[r.off]
	r.off++
	if r.off >= len(r.buf) {
		return 0, 0, errors.New("snmp: truncated length")
	}
	b0 := r.buf[r.off]
	r.off++
	if b0 < 0x80 {
		length = int(b0)
	} else {
		n := int(b0 & 0x7f)
		if n == 0 || n > 4 {
			return 0, 0, fmt.Errorf("snmp: unsupported length-of-length %d", n)
		}
		if r.off+n > len(r.buf) {
			return 0, 0, errors.New("snmp: truncated long length")
		}
		for i := 0; i < n; i++ {
			length = length<<8 | int(r.buf[r.off])
			r.off++
		}
	}
	if r.off+length > len(r.buf) {
		return 0, 0, fmt.Errorf("snmp: TLV length %d exceeds buffer", length)
	}
	return tag, length, nil
}

func (r *reader) readTLV() (tag byte, content []byte, err error) {
	tag, length, err := r.readTL()
	if err != nil {
		return 0, nil, err
	}
	content = r.buf[r.off : r.off+length]
	r.off += length
	return tag, content, nil
}

func (r *reader) expect(tag byte) ([]byte, error) {
	got, content, err := r.readTLV()
	if err != nil {
		return nil, err
	}
	if got != tag {
		return nil, fmt.Errorf("snmp: expected tag 0x%02x, got 0x%02x", tag, got)
	}
	return content, nil
}

func decodeInt(content []byte) (int64, error) {
	if len(content) == 0 {
		return 0, errors.New("snmp: empty integer")
	}
	if len(content) > 8 {
		return 0, fmt.Errorf("snmp: integer too long (%d bytes)", len(content))
	}
	v := int64(0)
	if content[0]&0x80 != 0 {
		v = -1
	}
	for _, b := range content {
		v = v<<8 | int64(b)
	}
	return v, nil
}

func decodeUint(content []byte) (uint64, error) {
	if len(content) == 0 {
		return 0, errors.New("snmp: empty unsigned")
	}
	if len(content) > 9 || (len(content) == 9 && content[0] != 0) {
		return 0, fmt.Errorf("snmp: unsigned too long (%d bytes)", len(content))
	}
	var v uint64
	for _, b := range content {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

func decodeOID(content []byte) (OID, error) {
	if len(content) == 0 {
		return nil, errors.New("snmp: empty OID")
	}
	var arcs []uint64
	var cur uint64
	for i, b := range content {
		cur = cur<<7 | uint64(b&0x7f)
		if b&0x80 == 0 {
			arcs = append(arcs, cur)
			cur = 0
		} else if i == len(content)-1 {
			return nil, errors.New("snmp: truncated base-128 arc")
		}
	}
	first := arcs[0]
	oid := make(OID, 0, len(arcs)+1)
	switch {
	case first < 80:
		oid = append(oid, uint32(first/40), uint32(first%40))
	default:
		oid = append(oid, 2, uint32(first-80))
	}
	for _, a := range arcs[1:] {
		if a > 0xffffffff {
			return nil, fmt.Errorf("snmp: OID arc overflow: %d", a)
		}
		oid = append(oid, uint32(a))
	}
	return oid, nil
}

func decodeValue(tag byte, content []byte) (Value, error) {
	switch tag {
	case tagNull:
		return NullValue(), nil
	case tagInteger:
		v, err := decodeInt(content)
		if err != nil {
			return Value{}, err
		}
		return IntegerValue(v), nil
	case tagOctetString:
		return Value{Kind: KindOctetString, Bytes: append([]byte(nil), content...)}, nil
	case tagOID:
		oid, err := decodeOID(content)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindOID, OID: oid}, nil
	case tagIPAddress:
		if len(content) != 4 {
			return Value{}, fmt.Errorf("snmp: IpAddress with %d bytes", len(content))
		}
		return Value{Kind: KindIPAddress, Bytes: append([]byte(nil), content...)}, nil
	case tagCounter32, tagGauge32, tagTimeTicks:
		v, err := decodeUint(content)
		if err != nil {
			return Value{}, err
		}
		k := KindCounter32
		switch tag {
		case tagGauge32:
			k = KindGauge32
		case tagTimeTicks:
			k = KindTimeTicks
		}
		return Value{Kind: k, Uint: v}, nil
	case tagCounter64:
		v, err := decodeUint(content)
		if err != nil {
			return Value{}, err
		}
		return Counter64Value(v), nil
	case tagNoSuchObject:
		return Value{Kind: KindNoSuchObject}, nil
	case tagNoSuchInstance:
		return Value{Kind: KindNoSuchInstance}, nil
	case tagEndOfMibView:
		return Value{Kind: KindEndOfMibView}, nil
	}
	return Value{}, fmt.Errorf("snmp: unknown value tag 0x%02x", tag)
}
