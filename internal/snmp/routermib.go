package snmp

import (
	"fantasticjoules/internal/device"
)

// Well-known OIDs served by the router agent. The interface counters
// follow IF-MIB (RFC 2863) high-capacity counters; the PSU input power is
// exposed as an ENTITY-SENSOR (RFC 3433) style gauge in watts.
var (
	OIDSysDescr = MustOID(".1.3.6.1.2.1.1.1.0")
	OIDSysName  = MustOID(".1.3.6.1.2.1.1.5.0")
	OIDIfNumber = MustOID(".1.3.6.1.2.1.2.1.0")

	// Per-interface columns; append the 1-based ifIndex.
	OIDIfAdminStatus = MustOID(".1.3.6.1.2.1.2.2.1.7")
	OIDIfOperStatus  = MustOID(".1.3.6.1.2.1.2.2.1.8")
	OIDIfName        = MustOID(".1.3.6.1.2.1.31.1.1.1.1")
	OIDIfHCInOctets  = MustOID(".1.3.6.1.2.1.31.1.1.1.6")
	OIDIfHCInPkts    = MustOID(".1.3.6.1.2.1.31.1.1.1.7")
	OIDIfHCOutOctets = MustOID(".1.3.6.1.2.1.31.1.1.1.10")
	OIDIfHCOutPkts   = MustOID(".1.3.6.1.2.1.31.1.1.1.11")

	// entPhySensorValue; append the PSU's 1-based entity index. Units:
	// watts of input power, as the paper's SNMP traces carry (§9.2).
	OIDPSUPower = MustOID(".1.3.6.1.2.1.99.1.1.1.4")
)

// Interface status values (IF-MIB).
const (
	StatusUp   = 1
	StatusDown = 2
)

// BindRouter registers a simulated router's management objects in a MIB:
// system identity, the IF-MIB counter columns for every interface, and —
// for models whose sensors support it — per-PSU input power. Reading a
// counter reflects the router's state at read time.
func BindRouter(mib *MIB, r *device.Router) {
	mib.Register(OIDSysName, func() Value { return StringValue(r.Name()) })
	mib.Register(OIDSysDescr, func() Value { return StringValue(r.Model()) })
	names := r.InterfaceNames()
	mib.Register(OIDIfNumber, func() Value { return IntegerValue(int64(len(names))) })

	for i, name := range names {
		idx := uint32(i + 1)
		name := name // capture per iteration
		mib.Register(OIDIfName.Append(idx), func() Value { return StringValue(name) })
		mib.Register(OIDIfAdminStatus.Append(idx), func() Value {
			_, admin, _, _, err := r.InterfaceState(name)
			if err != nil || !admin {
				return IntegerValue(StatusDown)
			}
			return IntegerValue(StatusUp)
		})
		mib.Register(OIDIfOperStatus.Append(idx), func() Value {
			_, _, oper, _, err := r.InterfaceState(name)
			if err != nil || !oper {
				return IntegerValue(StatusDown)
			}
			return IntegerValue(StatusUp)
		})
		counter := func(sel func(device.Counters) uint64) HandlerFunc {
			return func() Value {
				c, err := r.CountersOf(name)
				if err != nil {
					return Value{Kind: KindNoSuchInstance}
				}
				return Counter64Value(sel(c))
			}
		}
		mib.Register(OIDIfHCInOctets.Append(idx), counter(func(c device.Counters) uint64 { return c.InOctets }))
		mib.Register(OIDIfHCOutOctets.Append(idx), counter(func(c device.Counters) uint64 { return c.OutOctets }))
		mib.Register(OIDIfHCInPkts.Append(idx), counter(func(c device.Counters) uint64 { return c.InPackets }))
		mib.Register(OIDIfHCOutPkts.Append(idx), counter(func(c device.Counters) uint64 { return c.OutPackets }))
	}

	if r.Spec().PSUSensor == device.SensorNone {
		return // this model does not report PSU power (the Fig. 4c router)
	}
	for p := 0; p < r.PSUCount(); p++ {
		p := p
		mib.Register(OIDPSUPower.Append(uint32(p+1)), func() Value {
			w, err := r.ReportedPSUPower(p)
			if err != nil || w < 0 {
				return Value{Kind: KindNoSuchInstance}
			}
			return Gauge32Value(uint32(w.Watts() + 0.5))
		})
	}
}
