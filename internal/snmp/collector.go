package snmp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fantasticjoules/internal/timeseries"
)

// Collector is the fleet poller of the paper's SNMP pipeline: it polls a
// set of router agents on a fixed cadence (5 minutes in the deployment)
// and accumulates PSU power and interface counter traces — the raw
// material of Fig. 1, Table 1, and the §9 analyses.

// Target is one router agent to poll.
type Target struct {
	// Router is the (anonymized) router name used to key the collected
	// series.
	Router string
	// Addr is the agent's UDP address.
	Addr string
	// Community defaults to "public".
	Community string
}

// CollectorConfig configures a Collector.
type CollectorConfig struct {
	// Interval is the polling cadence (default 5 minutes — the deployed
	// resolution; tests use milliseconds).
	Interval time.Duration
	// Timeout bounds each request (default 2 s).
	Timeout time.Duration
	// Now supplies sample timestamps (default time.Now); inject simulated
	// clocks in tests.
	Now func() time.Time
}

func (c *CollectorConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Minute
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Collector polls router agents and stores their traces. Create with
// NewCollector; all accessors are safe for concurrent use with a running
// Run loop.
type Collector struct {
	cfg     CollectorConfig
	targets []Target

	mu       sync.Mutex
	power    map[string]*timeseries.Series            // router → PSU power sum
	inOctets map[string]map[string]*timeseries.Series // router → ifName → counter
	errs     map[string]int                           // router → failed polls
}

// NewCollector returns a collector for the targets.
func NewCollector(targets []Target, cfg CollectorConfig) (*Collector, error) {
	if len(targets) == 0 {
		return nil, errors.New("snmp: collector needs at least one target")
	}
	cfg.applyDefaults()
	c := &Collector{
		cfg:      cfg,
		targets:  targets,
		power:    make(map[string]*timeseries.Series),
		inOctets: make(map[string]map[string]*timeseries.Series),
		errs:     make(map[string]int),
	}
	return c, nil
}

// PollOnce polls every target once, appending to the stored traces. Per-
// target failures are counted (see Errors) but do not fail the round — a
// production poller survives unreachable routers.
func (c *Collector) PollOnce() {
	now := c.cfg.Now()
	for _, t := range c.targets {
		if err := c.pollTarget(t, now); err != nil {
			c.mu.Lock()
			c.errs[t.Router]++
			c.mu.Unlock()
		}
	}
}

func (c *Collector) pollTarget(t Target, now time.Time) error {
	client, err := Dial(t.Addr, ClientOptions{Community: t.Community, Timeout: c.cfg.Timeout, Retries: 1})
	if err != nil {
		return err
	}
	defer client.Close()

	// PSU power: sum the gauge column. Routers without sensors have no
	// rows — an empty walk is data ("this model reports nothing"), not an
	// error, so only transport failures count.
	psuRows, err := client.Walk(OIDPSUPower)
	if err != nil {
		return fmt.Errorf("snmp: poll %s psu: %w", t.Router, err)
	}
	if len(psuRows) > 0 {
		var total uint64
		for _, vb := range psuRows {
			total += vb.Value.Uint
		}
		c.mu.Lock()
		s, ok := c.power[t.Router]
		if !ok {
			s = timeseries.New(t.Router + ".psu")
			c.power[t.Router] = s
		}
		s.Append(now, float64(total))
		c.mu.Unlock()
	}

	// Interface names and in-octet counters.
	names, err := client.Walk(OIDIfName)
	if err != nil {
		return fmt.Errorf("snmp: poll %s ifName: %w", t.Router, err)
	}
	octets, err := client.Walk(OIDIfHCInOctets)
	if err != nil {
		return fmt.Errorf("snmp: poll %s octets: %w", t.Router, err)
	}
	byIndex := make(map[uint32]string, len(names))
	for _, vb := range names {
		byIndex[vb.OID[len(vb.OID)-1]] = string(vb.Value.Bytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ifs, ok := c.inOctets[t.Router]
	if !ok {
		ifs = make(map[string]*timeseries.Series)
		c.inOctets[t.Router] = ifs
	}
	for _, vb := range octets {
		idx := vb.OID[len(vb.OID)-1]
		name, ok := byIndex[idx]
		if !ok {
			name = fmt.Sprintf("if%d", idx)
		}
		s, ok := ifs[name]
		if !ok {
			s = timeseries.New(t.Router + "." + name + ".inOctets")
			ifs[name] = s
		}
		s.Append(now, float64(vb.Value.Uint))
	}
	return nil
}

// Run polls on the configured interval until the context is cancelled.
// The first round fires immediately.
func (c *Collector) Run(ctx context.Context) {
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	c.PollOnce()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.PollOnce()
		}
	}
}

// PowerSeries returns a copy of a router's PSU power trace, or false when
// the router never reported power.
func (c *Collector) PowerSeries(router string) (*timeseries.Series, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.power[router]
	if !ok {
		return nil, false
	}
	return timeseries.FromPoints(s.Name, s.Points()), true
}

// InRateSeries converts a router interface's collected in-octet counter
// into a bit-per-second rate series.
func (c *Collector) InRateSeries(router, ifName string) (*timeseries.Series, error) {
	c.mu.Lock()
	ifs, ok := c.inOctets[router]
	var counter *timeseries.Series
	if ok {
		counter = ifs[ifName]
	}
	c.mu.Unlock()
	if counter == nil {
		return nil, fmt.Errorf("snmp: no counters collected for %s/%s", router, ifName)
	}
	rate, err := timeseries.CounterToRate(counter, 64)
	if err != nil {
		return nil, err
	}
	return rate.Scale(8), nil // octets/s → bits/s
}

// Errors returns the per-router failed-poll counts.
func (c *Collector) Errors() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.errs))
	for k, v := range c.errs {
		out[k] = v
	}
	return out
}
