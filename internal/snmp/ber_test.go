package snmp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseOID(t *testing.T) {
	tests := []struct {
		in   string
		want string
		ok   bool
	}{
		{".1.3.6.1.2.1.1.5.0", ".1.3.6.1.2.1.1.5.0", true},
		{"1.3.6.1", ".1.3.6.1", true},
		{"2.999.1", ".2.999.1", true},
		{"", "", false},
		{".1", "", false},
		{".3.1", "", false},    // root arc > 2
		{".1.40.1", "", false}, // second arc > 39 under root 1
		{".1.x.3", "", false},
	}
	for _, tt := range tests {
		oid, err := ParseOID(tt.in)
		if tt.ok != (err == nil) {
			t.Errorf("ParseOID(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && oid.String() != tt.want {
			t.Errorf("ParseOID(%q) = %s, want %s", tt.in, oid, tt.want)
		}
	}
}

func TestMustOIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustOID on garbage must panic")
		}
	}()
	MustOID("not an oid")
}

func TestOIDCompare(t *testing.T) {
	a := MustOID(".1.3.6.1")
	b := MustOID(".1.3.6.1.2")
	c := MustOID(".1.3.6.2")
	if a.Compare(b) >= 0 {
		t.Error("prefix must sort before extension")
	}
	if b.Compare(c) >= 0 {
		t.Error(".1.3.6.1.2 must sort before .1.3.6.2")
	}
	if a.Compare(a) != 0 {
		t.Error("equal OIDs must compare 0")
	}
	if c.Compare(a) <= 0 {
		t.Error("reverse comparison sign")
	}
}

func TestOIDPrefixAppend(t *testing.T) {
	base := MustOID(".1.3.6.1.2.1.31.1.1.1.6")
	full := base.Append(3)
	if full.String() != ".1.3.6.1.2.1.31.1.1.1.6.3" {
		t.Errorf("Append = %s", full)
	}
	if !full.HasPrefix(base) {
		t.Error("appended OID must have its base as prefix")
	}
	if base.HasPrefix(full) {
		t.Error("prefix must not be longer than the OID")
	}
	// Append must not alias the base.
	full2 := base.Append(4)
	if full.String() == full2.String() {
		t.Error("Append results must be independent")
	}
}

func TestOIDEncodingRoundTrip(t *testing.T) {
	oids := []string{
		".1.3.6.1.2.1.1.5.0",
		".1.3.6.1.4.1.99999.1.2.3",
		".2.25.1",                 // first octet ≥ 80 path
		".1.3.6.1.2.1.4294967295", // max arc
		".0.39",
		".1.3.0",
	}
	for _, s := range oids {
		oid := MustOID(s)
		enc, err := appendOID(nil, oid)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		r := &reader{buf: enc}
		content, err := r.expect(tagOID)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		dec, err := decodeOID(content)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if dec.Compare(oid) != 0 {
			t.Errorf("round trip %s -> %s", oid, dec)
		}
	}
}

func TestIntEncodingRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		enc := appendInt(nil, tagInteger, v)
		r := &reader{buf: enc}
		content, err := r.expect(tagInteger)
		if err != nil {
			return false
		}
		dec, err := decodeInt(content)
		return err == nil && dec == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Boundary cases with known minimal encodings.
	if got := appendInt(nil, tagInteger, 127); !bytes.Equal(got, []byte{0x02, 0x01, 0x7f}) {
		t.Errorf("127 encoded as % x", got)
	}
	if got := appendInt(nil, tagInteger, 128); !bytes.Equal(got, []byte{0x02, 0x02, 0x00, 0x80}) {
		t.Errorf("128 encoded as % x", got)
	}
	if got := appendInt(nil, tagInteger, -129); !bytes.Equal(got, []byte{0x02, 0x02, 0xff, 0x7f}) {
		t.Errorf("-129 encoded as % x", got)
	}
}

func TestUintEncodingRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		enc := appendUint(nil, tagCounter64, v)
		r := &reader{buf: enc}
		tag, content, err := r.readTLV()
		if err != nil || tag != tagCounter64 {
			return false
		}
		dec, err := decodeUint(content)
		return err == nil && dec == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLongFormLength(t *testing.T) {
	big := make([]byte, 300)
	enc := appendTLV(nil, tagOctetString, big)
	if enc[1] != 0x82 { // two length bytes
		t.Fatalf("long length form expected, got 0x%02x", enc[1])
	}
	r := &reader{buf: enc}
	content, err := r.expect(tagOctetString)
	if err != nil {
		t.Fatal(err)
	}
	if len(content) != 300 {
		t.Errorf("decoded %d bytes, want 300", len(content))
	}
}

func TestValueRoundTrip(t *testing.T) {
	values := []Value{
		NullValue(),
		IntegerValue(-42),
		StringValue("switch-rtr-03"),
		{Kind: KindOID, OID: MustOID(".1.3.6.1.2.1")},
		{Kind: KindIPAddress, Bytes: []byte{192, 0, 2, 1}},
		Counter32Value(4294967295),
		Gauge32Value(358),
		{Kind: KindTimeTicks, Uint: 123456},
		Counter64Value(1 << 63),
		{Kind: KindNoSuchObject},
		{Kind: KindNoSuchInstance},
		{Kind: KindEndOfMibView},
	}
	for _, v := range values {
		enc, err := appendValue(nil, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		r := &reader{buf: enc}
		tag, content, err := r.readTLV()
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		dec, err := decodeValue(tag, content)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if dec.Kind != v.Kind || dec.Int != v.Int || dec.Uint != v.Uint ||
			!bytes.Equal(dec.Bytes, v.Bytes) || dec.OID.Compare(v.OID) != 0 {
			t.Errorf("round trip %v -> %v", v, dec)
		}
	}
}

func TestValueEncodingErrors(t *testing.T) {
	if _, err := appendValue(nil, Value{Kind: KindIPAddress, Bytes: []byte{1, 2}}); err == nil {
		t.Error("short IpAddress must error")
	}
	if _, err := appendValue(nil, Value{Kind: KindCounter32, Uint: 1 << 40}); err == nil {
		t.Error("Counter32 overflow must error")
	}
	if _, err := appendValue(nil, Value{Kind: Kind(99)}); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	valid := appendInt(nil, tagInteger, 1000)
	for i := 0; i < len(valid); i++ {
		r := &reader{buf: valid[:i]}
		if _, _, err := r.readTLV(); err == nil {
			t.Errorf("truncation at %d bytes must error", i)
		}
	}
}

func TestValueStrings(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{IntegerValue(5), "Integer: 5"},
		{Counter64Value(9), "Counter64: 9"},
		{StringValue("x"), `OctetString: "x"`},
		{Value{Kind: KindIPAddress, Bytes: []byte{10, 0, 0, 1}}, "IpAddress: 10.0.0.1"},
		{Value{Kind: KindEndOfMibView}, "endOfMibView"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSortOIDs(t *testing.T) {
	oids := []OID{
		MustOID(".1.3.6.2"),
		MustOID(".1.3.6.1.5"),
		MustOID(".1.3.6.1"),
	}
	SortOIDs(oids)
	want := []string{".1.3.6.1", ".1.3.6.1.5", ".1.3.6.2"}
	for i, w := range want {
		if oids[i].String() != w {
			t.Errorf("sorted[%d] = %s, want %s", i, oids[i], w)
		}
	}
}
