package snmp

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// ClientOptions configure an SNMP client.
type ClientOptions struct {
	// Community defaults to "public".
	Community string
	// Timeout per request attempt (default 2 s).
	Timeout time.Duration
	// Retries after the first attempt (default 2).
	Retries int
}

func (o *ClientOptions) applyDefaults() {
	if o.Community == "" {
		o.Community = "public"
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
}

// Client is an SNMPv2c poller for a single agent. Create with Dial; a
// Client must not be used concurrently from multiple goroutines (use one
// Client per goroutine, as the fleet poller does).
type Client struct {
	conn  *net.UDPConn
	opts  ClientOptions
	reqID atomic.Int32
}

// Dial connects a client to an agent address such as "127.0.0.1:161".
func Dial(addr string, opts ClientOptions) (*Client, error) {
	opts.applyDefaults()
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: dial %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("snmp: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, opts: opts}
	c.reqID.Store(int32(time.Now().UnixNano() & 0x7fffffff))
	return c, nil
}

// Close releases the client's socket.
func (c *Client) Close() error { return c.conn.Close() }

// ErrTimeout is returned when an agent never answers within the retry
// budget.
var ErrTimeout = errors.New("snmp: request timed out")

func (c *Client) roundTrip(req PDU) (PDU, error) {
	req.RequestID = c.reqID.Add(1)
	out, err := Message{Community: c.opts.Community, PDU: req}.Marshal()
	if err != nil {
		return PDU{}, err
	}
	buf := make([]byte, 65535)
	attempts := c.opts.Retries + 1
	// The retry budget is a hard wall-clock bound: attempts × Timeout.
	// Every per-attempt deadline is clamped to it so an agent (or an
	// attacker sharing its address) flooding malformed datagrams — each
	// of which lands a successful Read — cannot stretch the round trip
	// past the budget, no matter how the attempt loop interleaves.
	budget := time.Now().Add(time.Duration(attempts) * c.opts.Timeout)
	for attempt := 0; attempt < attempts; attempt++ {
		deadline := time.Now().Add(c.opts.Timeout)
		if deadline.After(budget) {
			deadline = budget
		}
		// Both directions share the per-attempt deadline: a full socket
		// buffer must not stall the send past the budget either.
		if err := c.conn.SetDeadline(deadline); err != nil {
			return PDU{}, err
		}
		if _, err := c.conn.Write(out); err != nil {
			return PDU{}, fmt.Errorf("snmp: send: %w", err)
		}
		for {
			n, err := c.conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // retry
				}
				return PDU{}, fmt.Errorf("snmp: recv: %w", err)
			}
			msg, err := Unmarshal(buf[:n])
			if err != nil {
				metricMalformed.Inc()
				continue // garbage datagram; deadline still caps the wait
			}
			if msg.PDU.Type != Response || msg.PDU.RequestID != req.RequestID {
				continue // stale response from a retried request
			}
			return msg.PDU, nil
		}
	}
	metricTimeouts.Inc()
	return PDU{}, fmt.Errorf("%w after %d attempts", ErrTimeout, attempts)
}

// Get fetches the exact objects named by the OIDs.
func (c *Client) Get(oids ...OID) ([]VarBind, error) {
	if len(oids) == 0 {
		return nil, errors.New("snmp: Get needs at least one OID")
	}
	req := PDU{Type: GetRequest}
	for _, oid := range oids {
		req.VarBinds = append(req.VarBinds, VarBind{OID: oid, Value: NullValue()})
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.ErrorStatus != ErrNoError {
		return nil, fmt.Errorf("snmp: agent error status %d at index %d", resp.ErrorStatus, resp.ErrorIndex)
	}
	return resp.VarBinds, nil
}

// GetNext fetches the lexicographic successors of the OIDs.
func (c *Client) GetNext(oids ...OID) ([]VarBind, error) {
	if len(oids) == 0 {
		return nil, errors.New("snmp: GetNext needs at least one OID")
	}
	req := PDU{Type: GetNextRequest}
	for _, oid := range oids {
		req.VarBinds = append(req.VarBinds, VarBind{OID: oid, Value: NullValue()})
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.ErrorStatus != ErrNoError {
		return nil, fmt.Errorf("snmp: agent error status %d at index %d", resp.ErrorStatus, resp.ErrorIndex)
	}
	return resp.VarBinds, nil
}

// Walk retrieves the whole subtree under prefix using GetBulk sweeps, in
// MIB order.
func (c *Client) Walk(prefix OID) ([]VarBind, error) {
	var out []VarBind
	cur := prefix
	for {
		req := PDU{Type: GetBulkRequest, ErrorIndex: 32} // max-repetitions 32
		req.VarBinds = []VarBind{{OID: cur, Value: NullValue()}}
		resp, err := c.roundTrip(req)
		if err != nil {
			return nil, err
		}
		if resp.ErrorStatus != ErrNoError {
			return nil, fmt.Errorf("snmp: agent error status %d during walk", resp.ErrorStatus)
		}
		progressed := false
		for _, vb := range resp.VarBinds {
			if vb.Value.Kind == KindEndOfMibView || !vb.OID.HasPrefix(prefix) {
				return out, nil
			}
			if vb.OID.Compare(cur) <= 0 {
				return nil, fmt.Errorf("snmp: agent OID went backwards at %s", vb.OID)
			}
			out = append(out, vb)
			cur = vb.OID
			progressed = true
		}
		if !progressed {
			return out, nil
		}
	}
}
