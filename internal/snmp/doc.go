// Package snmp implements the subset of SNMPv2c the paper's data
// collection relies on, from scratch on the standard library: BER
// encoding, the GetRequest/GetNextRequest/GetBulkRequest/Response PDUs, a
// UDP agent that serves a MIB view of a simulated router, and a client
// used by the fleet poller.
//
// The paper collects 10 months of PSU power and interface counters from
// 107 routers via SNMP at 5-minute resolution (§1); this package is the
// wire-level substitute for that collection path, exercised over loopback.
//
// File layout: ber.go holds the BER/DER encoding and the varbind value
// kinds, pdu.go the PDU framing, routermib.go the IF-MIB/ENTITY-SENSOR
// view of a simulated router, agent.go the UDP agent serving that view,
// client.go the Get/GetNext/GetBulk client, and collector.go the
// 5-minute fleet poller that turns counter reads into time series.
package snmp
