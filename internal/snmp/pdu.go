package snmp

import (
	"errors"
	"fmt"
)

// PDUType identifies an SNMPv2c PDU.
type PDUType byte

// The PDU types this implementation supports.
const (
	GetRequest     PDUType = 0xa0
	GetNextRequest PDUType = 0xa1
	Response       PDUType = 0xa2
	GetBulkRequest PDUType = 0xa5
)

// String names the PDU type.
func (t PDUType) String() string {
	switch t {
	case GetRequest:
		return "GetRequest"
	case GetNextRequest:
		return "GetNextRequest"
	case Response:
		return "Response"
	case GetBulkRequest:
		return "GetBulkRequest"
	}
	return fmt.Sprintf("PDUType(0x%02x)", byte(t))
}

// Error status codes (RFC 3416).
const (
	ErrNoError  = 0
	ErrTooBig   = 1
	ErrGenErr   = 5
	ErrNoAccess = 6
)

// VarBind pairs an OID with a value.
type VarBind struct {
	OID   OID
	Value Value
}

// PDU is an SNMPv2c protocol data unit. For GetBulkRequest, ErrorStatus
// carries non-repeaters and ErrorIndex max-repetitions, per RFC 3416.
type PDU struct {
	Type        PDUType
	RequestID   int32
	ErrorStatus int32
	ErrorIndex  int32
	VarBinds    []VarBind
}

// NonRepeaters is the GetBulk reading of the ErrorStatus field.
func (p PDU) NonRepeaters() int { return int(p.ErrorStatus) }

// MaxRepetitions is the GetBulk reading of the ErrorIndex field.
func (p PDU) MaxRepetitions() int { return int(p.ErrorIndex) }

// Version is the SNMP version field value for v2c.
const Version2c = 1

// Message is a complete community-based SNMP message.
type Message struct {
	Community string
	PDU       PDU
}

// Marshal encodes the message to BER wire format.
func (m Message) Marshal() ([]byte, error) {
	var vbs []byte
	for _, vb := range m.PDU.VarBinds {
		var inner []byte
		inner, err := appendOID(inner, vb.OID)
		if err != nil {
			return nil, err
		}
		inner, err = appendValue(inner, vb.Value)
		if err != nil {
			return nil, err
		}
		vbs = appendTLV(vbs, tagSequence, inner)
	}
	var pdu []byte
	pdu = appendInt(pdu, tagInteger, int64(m.PDU.RequestID))
	pdu = appendInt(pdu, tagInteger, int64(m.PDU.ErrorStatus))
	pdu = appendInt(pdu, tagInteger, int64(m.PDU.ErrorIndex))
	pdu = appendTLV(pdu, tagSequence, vbs)

	var body []byte
	body = appendInt(body, tagInteger, Version2c)
	body = appendTLV(body, tagOctetString, []byte(m.Community))
	body = appendTLV(body, byte(m.PDU.Type), pdu)

	return appendTLV(nil, tagSequence, body), nil
}

// Unmarshal decodes a BER-encoded SNMPv2c message.
func Unmarshal(data []byte) (Message, error) {
	r := &reader{buf: data}
	body, err := r.expect(tagSequence)
	if err != nil {
		return Message{}, fmt.Errorf("snmp: message: %w", err)
	}
	br := &reader{buf: body}

	verRaw, err := br.expect(tagInteger)
	if err != nil {
		return Message{}, fmt.Errorf("snmp: version: %w", err)
	}
	ver, err := decodeInt(verRaw)
	if err != nil {
		return Message{}, err
	}
	if ver != Version2c {
		return Message{}, fmt.Errorf("snmp: unsupported version %d (only v2c)", ver)
	}

	community, err := br.expect(tagOctetString)
	if err != nil {
		return Message{}, fmt.Errorf("snmp: community: %w", err)
	}

	pduTag, pduBody, err := br.readTLV()
	if err != nil {
		return Message{}, fmt.Errorf("snmp: pdu: %w", err)
	}
	switch PDUType(pduTag) {
	case GetRequest, GetNextRequest, Response, GetBulkRequest:
	default:
		return Message{}, fmt.Errorf("snmp: unsupported PDU type 0x%02x", pduTag)
	}

	pr := &reader{buf: pduBody}
	reqRaw, err := pr.expect(tagInteger)
	if err != nil {
		return Message{}, err
	}
	reqID, err := decodeInt(reqRaw)
	if err != nil {
		return Message{}, err
	}
	statRaw, err := pr.expect(tagInteger)
	if err != nil {
		return Message{}, err
	}
	stat, err := decodeInt(statRaw)
	if err != nil {
		return Message{}, err
	}
	idxRaw, err := pr.expect(tagInteger)
	if err != nil {
		return Message{}, err
	}
	idx, err := decodeInt(idxRaw)
	if err != nil {
		return Message{}, err
	}
	vbsRaw, err := pr.expect(tagSequence)
	if err != nil {
		return Message{}, fmt.Errorf("snmp: varbind list: %w", err)
	}

	var vbs []VarBind
	vr := &reader{buf: vbsRaw}
	for vr.off < len(vr.buf) {
		vbRaw, err := vr.expect(tagSequence)
		if err != nil {
			return Message{}, fmt.Errorf("snmp: varbind: %w", err)
		}
		ir := &reader{buf: vbRaw}
		oidRaw, err := ir.expect(tagOID)
		if err != nil {
			return Message{}, fmt.Errorf("snmp: varbind oid: %w", err)
		}
		oid, err := decodeOID(oidRaw)
		if err != nil {
			return Message{}, err
		}
		vtag, vcontent, err := ir.readTLV()
		if err != nil {
			return Message{}, fmt.Errorf("snmp: varbind value: %w", err)
		}
		val, err := decodeValue(vtag, vcontent)
		if err != nil {
			return Message{}, err
		}
		if ir.off != len(ir.buf) {
			return Message{}, errors.New("snmp: trailing bytes in varbind")
		}
		vbs = append(vbs, VarBind{OID: oid, Value: val})
	}

	return Message{
		Community: string(community),
		PDU: PDU{
			Type:        PDUType(pduTag),
			RequestID:   int32(reqID),
			ErrorStatus: int32(stat),
			ErrorIndex:  int32(idx),
			VarBinds:    vbs,
		},
	}, nil
}
