package snmp

import (
	"fantasticjoules/internal/telemetry"
)

// Collection-plane instrumentation on the process-wide telemetry
// registry. Malformed datagrams were previously dropped invisibly by both
// the client (garbage or stale responses) and the agent (undecodable
// requests); a fleet being flooded with junk now shows up on /metrics
// instead of only as mysteriously slow polls.
var (
	metricMalformed = telemetry.Default().Counter("snmp_malformed_datagrams_total",
		"datagrams that failed BER decoding, on either the client or agent side")
	metricTimeouts = telemetry.Default().Counter("snmp_request_timeouts_total",
		"client round trips that exhausted their retry budget")
)

// MalformedDatagrams reports the process-wide count of datagrams dropped
// because they failed BER decoding. The chaos harness asserts this moves
// under datagram corruption and stays flat on clean runs.
func MalformedDatagrams() uint64 { return metricMalformed.Value() }
