package snmp

import (
	"math"
	"testing"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

// collectorFixture starts agents for two routers (one with a power
// sensor, one without) and returns a collector over them plus the
// simulated clock driver.
func collectorFixture(t *testing.T) (*Collector, []*device.Router, func(time.Duration)) {
	t.Helper()
	r1 := newTestRouter(t) // SensorAccurate
	spec := r1.Spec()
	spec.PSUSensor = device.SensorNone
	r2, err := device.New(spec, "dark-rtr", 9)
	if err != nil {
		t.Fatal(err)
	}
	routers := []*device.Router{r1, r2}
	var targets []Target
	for _, r := range routers {
		var mib MIB
		BindRouter(&mib, r)
		agent := NewAgent(&mib, "public")
		addr, err := agent.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agent.Close() })
		targets = append(targets, Target{Router: r.Name(), Addr: addr, Community: "public"})
	}
	clock := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	c, err := NewCollector(targets, CollectorConfig{
		Interval: time.Hour, // Run is not used in tests; PollOnce drives
		Timeout:  time.Second,
		Now:      func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	advance := func(d time.Duration) {
		clock = clock.Add(d)
		for _, r := range routers {
			r.Advance(d)
		}
	}
	return c, routers, advance
}

func TestCollectorPowerTraces(t *testing.T) {
	c, routers, advance := collectorFixture(t)
	for i := 0; i < 3; i++ {
		c.PollOnce()
		advance(5 * time.Minute)
	}
	s, ok := c.PowerSeries(routers[0].Name())
	if !ok {
		t.Fatal("no power series for the reporting router")
	}
	if s.Len() != 3 {
		t.Errorf("power samples = %d, want 3", s.Len())
	}
	wall := routers[0].WallPower().Watts()
	if math.Abs(s.Median()-wall) > 10 {
		t.Errorf("collected power %v far from wall %v", s.Median(), wall)
	}
	// The sensorless router must have no trace — and no error counted.
	if _, ok := c.PowerSeries(routers[1].Name()); ok {
		t.Error("sensorless router produced a power series")
	}
	if n := c.Errors()[routers[1].Name()]; n != 0 {
		t.Errorf("sensorless router counted %d errors", n)
	}
}

func TestCollectorCounterRates(t *testing.T) {
	c, routers, advance := collectorFixture(t)
	r := routers[0]
	if err := r.PlugTransceiver("eth0", model.PassiveDAC, 100*units.GigabitPerSecond); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAdmin("eth0", true); err != nil {
		t.Fatal(err)
	}
	if err := r.SetLink("eth0", true); err != nil {
		t.Fatal(err)
	}
	// 16 Gbps bidirectional → 8 Gbps inbound.
	if err := r.SetTraffic("eth0", 16*units.GigabitPerSecond, 2e6); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.PollOnce()
		advance(5 * time.Minute)
	}
	rate, err := c.InRateSeries(r.Name(), "eth0")
	if err != nil {
		t.Fatal(err)
	}
	if rate.Len() != 3 {
		t.Fatalf("rate points = %d, want 3", rate.Len())
	}
	want := 8e9
	if math.Abs(rate.Median()-want)/want > 0.01 {
		t.Errorf("in rate = %v bps, want ≈%v", rate.Median(), want)
	}
	if _, err := c.InRateSeries(r.Name(), "does-not-exist"); err == nil {
		t.Error("unknown interface must error")
	}
}

func TestCollectorSurvivesDeadAgent(t *testing.T) {
	c, routers, _ := collectorFixture(t)
	// Add a target that nothing listens on.
	dead := Target{Router: "ghost", Addr: "127.0.0.1:1", Community: "public"}
	c2, err := NewCollector(append([]Target{dead}, c.targets...), CollectorConfig{
		Timeout: 50 * time.Millisecond,
		Now:     time.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	c2.PollOnce()
	if n := c2.Errors()["ghost"]; n != 1 {
		t.Errorf("dead agent errors = %d, want 1", n)
	}
	// The live routers were still polled.
	if _, ok := c2.PowerSeries(routers[0].Name()); !ok {
		t.Error("live router missing after a dead-agent round")
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(nil, CollectorConfig{}); err == nil {
		t.Error("empty target list must error")
	}
}
