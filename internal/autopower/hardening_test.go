package autopower

import (
	"bytes"
	"net"
	"testing"
	"time"

	"fantasticjoules/internal/meter"
)

// TestCloseUnblocksSilentClients pins the Close-hang fix: a client that
// connects and never sends its hello used to be invisible to Close (only
// post-hello connections were tracked), so Close's wg.Wait blocked
// forever on the handler goroutine.
func TestCloseUnblocksSilentClients(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Give the server time to accept and park in the hello read.
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on a silent pre-hello connection")
	}
}

// TestWriteFrameHonorsDeadline pins the stalled-peer fix: a frame write
// against a peer that never drains must error out within the configured
// write timeout instead of blocking until ctx cancel. net.Pipe has no
// buffering, so an unread write models a fully stalled peer.
func TestWriteFrameHonorsDeadline(t *testing.T) {
	u, err := NewUnit(UnitConfig{
		UnitID: "u", ServerAddr: "x", Meter: meter.New(1),
		WriteTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	start := time.Now()
	err = u.writeFrame(client, Frame{Type: TypeHello, UnitID: "u"})
	if err == nil {
		t.Fatal("write against a stalled peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("stalled write took %v, want ≈50ms", elapsed)
	}
}

// TestBackoffJitterDecorrelatesUnits pins the thundering-herd fix: two
// units must not share a backoff schedule, every delay must stay within
// ±20 % of the nominal value, and doubling must cap at
// MaxReconnectBackoff.
func TestBackoffJitterDecorrelatesUnits(t *testing.T) {
	mk := func(id string) *Unit {
		u, err := NewUnit(UnitConfig{
			UnitID: id, ServerAddr: "x", Meter: meter.New(1),
			ReconnectBackoff:    100 * time.Millisecond,
			MaxReconnectBackoff: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	a, b := mk("unit-a"), mk("unit-b")
	base := 100 * time.Millisecond
	identical := true
	for i := 0; i < 32; i++ {
		da, db := a.jittered(base), b.jittered(base)
		for _, d := range []time.Duration{da, db} {
			if d < 80*time.Millisecond || d > 120*time.Millisecond {
				t.Fatalf("jittered(%v) = %v, outside ±20%%", base, d)
			}
		}
		if da != db {
			identical = false
		}
	}
	if identical {
		t.Error("two units drew identical jitter schedules (lockstep herd)")
	}
	// The same unit replays the same schedule run to run (determinism).
	a2 := mk("unit-a")
	a3 := mk("unit-a")
	for i := 0; i < 8; i++ {
		if d2, d3 := a2.jittered(base), a3.jittered(base); d2 != d3 {
			t.Fatalf("same unit ID diverged at draw %d: %v vs %v", i, d2, d3)
		}
	}
}

// TestReadFrameRejectsByteFlips pins the checksum fix: any single
// byte-flip anywhere in an encoded frame must be rejected, not decoded.
// Before the CRC, flips inside JSON string or numeric literals decoded
// cleanly and corrupted samples — or the ack seq a unit trims its spool
// by.
func TestReadFrameRejectsByteFlips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: TypeUpload, UnitID: "unit-1", Seq: 42,
		Samples: []Sample{{UnixMilli: 1_700_000_000_000, Watts: 358.2}}}); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for pos := 0; pos < len(enc); pos++ {
		for bit := uint(0); bit < 8; bit++ {
			flipped := append([]byte(nil), enc...)
			flipped[pos] ^= 1 << bit
			if f, err := ReadFrame(bytes.NewReader(flipped)); err == nil {
				t.Fatalf("flip at byte %d bit %d decoded to %+v", pos, bit, f)
			}
		}
	}
	// The pristine encoding still decodes.
	if _, err := ReadFrame(bytes.NewReader(enc)); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}
