package autopower

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"

	"fantasticjoules/internal/meter"
)

// UnitConfig configures an Autopower measurement unit.
type UnitConfig struct {
	// UnitID identifies the unit to the server, e.g. "unit-zrh-01".
	UnitID string
	// Router is the (anonymized) name of the router being measured.
	Router string
	// ServerAddr is the TCP address of the Autopower server.
	ServerAddr string
	// Meter and Channel select the power source.
	Meter   *meter.Meter
	Channel int
	// SampleInterval is the measurement cadence (default 500 ms, the
	// paper's Autopower resolution).
	SampleInterval time.Duration
	// UploadEvery is how many samples accumulate between uploads
	// (default 60, i.e. every 30 s at the default cadence).
	UploadEvery int
	// ReconnectBackoff is the initial backoff after a failed connection
	// (default 200 ms, doubling with ±20 % jitter up to
	// MaxReconnectBackoff).
	ReconnectBackoff time.Duration
	// MaxReconnectBackoff caps the exponential backoff (default 30×
	// ReconnectBackoff). The jitter below spreads a fleet's retries so a
	// server restart does not trigger a reconnect thundering herd.
	MaxReconnectBackoff time.Duration
	// WriteTimeout bounds every frame write on the session connection
	// (default 10 s). A peer that stops draining its socket — a stalled
	// server, a half-dead NAT entry — errors the session out and triggers
	// a reconnect instead of wedging the upload loop until ctx cancel.
	WriteTimeout time.Duration
	// MaxSpool bounds the local sample spool (default 1<<20); beyond it
	// the oldest samples are dropped. A real unit's disk would hold
	// weeks — this guards runaway growth when a server stays unreachable.
	MaxSpool int
	// Dial opens the server connection (default: net.Dialer with a 2 s
	// timeout). The chaos harness injects fault-wrapped connections here.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Now supplies timestamps (defaults to time.Now); the fleet simulator
	// injects simulated clocks here.
	Now func() time.Time
}

func (c *UnitConfig) applyDefaults() error {
	if c.UnitID == "" {
		return errors.New("autopower: unit needs an ID")
	}
	if c.ServerAddr == "" {
		return errors.New("autopower: unit needs a server address")
	}
	if c.Meter == nil {
		return errors.New("autopower: unit needs a meter")
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 500 * time.Millisecond
	}
	if c.UploadEvery <= 0 {
		c.UploadEvery = 60
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 200 * time.Millisecond
	}
	if c.MaxReconnectBackoff <= 0 {
		c.MaxReconnectBackoff = 30 * c.ReconnectBackoff
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxSpool <= 0 {
		c.MaxSpool = 1 << 20
	}
	if c.Dial == nil {
		c.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			d := net.Dialer{Timeout: 2 * time.Second}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return nil
}

// Unit is the client side of Autopower: it samples its meter on a fixed
// cadence into a local spool and uploads batches whenever a server
// connection is available. Measurement starts as soon as Run is called —
// the "measure on boot" resilience requirement — and continues across
// connection losses.
type Unit struct {
	cfg UnitConfig
	rng *rand.Rand // backoff jitter; seeded from UnitID, used only by connectLoop

	mu        sync.Mutex
	spool     []Sample
	seq       uint64 // sequence number of the last spooled sample
	ackedSeq  uint64
	measuring bool
	dropped   int
}

// NewUnit validates the configuration and returns a unit ready to Run.
func NewUnit(cfg UnitConfig) (*Unit, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	// The jitter stream is seeded from the unit ID so a fleet's backoff
	// schedules are deterministic per unit yet decorrelated across units.
	h := fnv.New64a()
	h.Write([]byte(cfg.UnitID))
	return &Unit{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(int64(h.Sum64()))),
		measuring: true,
	}, nil
}

// SpoolStats is a snapshot of the unit's spool and acknowledgement
// bookkeeping. The chaos harness asserts its core invariant after every
// fault run: Produced - Acked == SpoolLen, i.e. every sample is either
// waiting in the spool or accounted for as acked/overflow-dropped.
type SpoolStats struct {
	// Produced is the sequence high-water mark: samples ever spooled.
	Produced uint64
	// Acked is the sequence acknowledged (including the overflow-dropped
	// prefix, which can never be acked by the server).
	Acked uint64
	// Dropped counts samples lost to spool overflow.
	Dropped int
	// SpoolLen is the number of samples currently awaiting upload.
	SpoolLen int
}

// Stats returns a consistent snapshot of the spool bookkeeping.
func (u *Unit) Stats() SpoolStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return SpoolStats{Produced: u.seq, Acked: u.ackedSeq, Dropped: u.dropped, SpoolLen: len(u.spool)}
}

// SpoolLen returns the number of samples waiting for upload.
func (u *Unit) SpoolLen() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.spool)
}

// Dropped returns how many samples were lost to spool overflow.
func (u *Unit) Dropped() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.dropped
}

// Run samples and uploads until the context is cancelled. It returns the
// context's error on shutdown; connection failures are retried with
// exponential backoff and never abort the run.
func (u *Unit) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		u.sampleLoop(ctx)
	}()
	u.connectLoop(ctx)
	wg.Wait()
	return ctx.Err()
}

func (u *Unit) sampleLoop(ctx context.Context) {
	ticker := time.NewTicker(u.cfg.SampleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			u.mu.Lock()
			measuring := u.measuring
			u.mu.Unlock()
			if !measuring {
				continue
			}
			w, err := u.cfg.Meter.Read(u.cfg.Channel)
			if err != nil {
				metricMeterGlitches.Inc()
				continue // meter glitch: skip the sample
			}
			s := Sample{UnixMilli: u.cfg.Now().UnixMilli(), Watts: w.Watts()}
			u.mu.Lock()
			u.spool = append(u.spool, s)
			u.seq++
			if len(u.spool) > u.cfg.MaxSpool {
				drop := len(u.spool) - u.cfg.MaxSpool
				u.spool = u.spool[drop:]
				u.dropped += drop
				// The dropped prefix can never be acked; keep the
				// ack bookkeeping aligned with the spool head.
				u.ackedSeq += uint64(drop)
				metricSamplesDropped.Add(uint64(drop))
			}
			u.mu.Unlock()
		}
	}
}

func (u *Unit) connectLoop(ctx context.Context) {
	backoff := u.cfg.ReconnectBackoff
	for {
		if ctx.Err() != nil {
			return
		}
		err := u.session(ctx)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			metricReconnects.Inc()
			select {
			case <-ctx.Done():
				return
			case <-time.After(u.jittered(backoff)):
			}
			backoff *= 2
			if backoff > u.cfg.MaxReconnectBackoff {
				backoff = u.cfg.MaxReconnectBackoff
			}
			continue
		}
		backoff = u.cfg.ReconnectBackoff
	}
}

// jittered spreads a backoff duration by ±20 % so a fleet of units whose
// server restarts does not reconnect in lockstep.
func (u *Unit) jittered(d time.Duration) time.Duration {
	f := 1 + (u.rng.Float64()*2-1)*0.2
	return time.Duration(float64(d) * f)
}

// session runs one server connection: hello, then alternating uploads and
// command handling until the connection breaks.
func (u *Unit) session(ctx context.Context) error {
	conn, err := u.cfg.Dial(ctx, u.cfg.ServerAddr)
	if err != nil {
		return fmt.Errorf("autopower: dial: %w", err)
	}
	defer conn.Close()
	// Close the connection on ctx cancel to unblock reads; the watcher
	// exits with the session so repeated reconnects don't accumulate one
	// goroutine per attempt for the lifetime of the run.
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-sessionDone:
		}
	}()

	if err := u.writeFrame(conn, Frame{Type: TypeHello, UnitID: u.cfg.UnitID, Router: u.cfg.Router}); err != nil {
		return err
	}

	// Reader goroutine: acks and commands.
	errc := make(chan error, 1)
	go func() {
		// Deliberately unbounded reads: commands arrive whenever the
		// server sends them, and the ctx watcher above closes conn to
		// fail ReadFrame on shutdown.
		_ = conn.SetReadDeadline(time.Time{})
		for {
			f, err := ReadFrame(conn)
			if err != nil {
				errc <- err
				return
			}
			switch f.Type {
			case TypeAck:
				u.trimSpool(f.Seq)
			case TypeStart:
				u.mu.Lock()
				u.measuring = true
				u.mu.Unlock()
			case TypeStop:
				u.mu.Lock()
				u.measuring = false
				u.mu.Unlock()
			}
		}
	}()

	// Upload loop: ship pending batches at the upload cadence.
	interval := time.Duration(u.cfg.UploadEvery) * u.cfg.SampleInterval
	if interval <= 0 || interval > 5*time.Second {
		interval = 5 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-errc:
			return err
		case <-ticker.C:
			batch, seq := u.pendingBatch()
			if len(batch) == 0 {
				continue
			}
			if err := u.writeFrame(conn, Frame{Type: TypeUpload, UnitID: u.cfg.UnitID, Seq: seq, Samples: batch}); err != nil {
				return err
			}
		}
	}
}

// writeFrame sends one frame under the configured write deadline so a
// stalled peer surfaces as an error instead of blocking forever.
func (u *Unit) writeFrame(conn net.Conn, f Frame) error {
	if err := conn.SetWriteDeadline(time.Now().Add(u.cfg.WriteTimeout)); err != nil {
		return fmt.Errorf("autopower: set write deadline: %w", err)
	}
	return WriteFrame(conn, f)
}

// pendingBatch snapshots the unsent spool tail.
func (u *Unit) pendingBatch() ([]Sample, uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.spool) == 0 {
		return nil, u.seq
	}
	batch := make([]Sample, len(u.spool))
	copy(batch, u.spool)
	return batch, u.seq
}

// trimSpool drops samples acknowledged through seq.
func (u *Unit) trimSpool(seq uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if seq <= u.ackedSeq {
		return
	}
	acked := int(seq - u.ackedSeq)
	if acked >= len(u.spool) {
		u.spool = u.spool[:0]
	} else {
		u.spool = u.spool[acked:]
	}
	u.ackedSeq = seq
}
