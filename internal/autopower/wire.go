package autopower

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// maxFrameBytes bounds a single protocol frame; larger frames indicate a
// corrupt stream and abort the connection.
const maxFrameBytes = 4 << 20

// Frame types exchanged between unit and server.
const (
	// unit → server
	TypeHello  = "hello"  // unit introduces itself after connecting
	TypeUpload = "upload" // batch of spooled samples
	// server → unit
	TypeAck   = "ack"   // upload accepted through Seq
	TypeStart = "start" // begin measuring at IntervalMS
	TypeStop  = "stop"  // pause measuring
)

// Sample is one power measurement.
type Sample struct {
	// UnixMilli is the sample timestamp in Unix milliseconds.
	UnixMilli int64 `json:"t"`
	// Watts is the measured wall power.
	Watts float64 `json:"w"`
}

// Time returns the sample timestamp.
func (s Sample) Time() time.Time { return time.UnixMilli(s.UnixMilli).UTC() }

// Frame is the single message envelope of the protocol.
type Frame struct {
	Type string `json:"type"`

	// Hello fields.
	UnitID string `json:"unit_id,omitempty"`
	Router string `json:"router,omitempty"`

	// Upload fields: Seq is the sequence number of the last sample in the
	// batch; the server's ack echoes it so the unit can trim its spool.
	Seq     uint64   `json:"seq,omitempty"`
	Samples []Sample `json:"samples,omitempty"`

	// Start fields.
	IntervalMS int64 `json:"interval_ms,omitempty"`
}

// WriteFrame sends a frame as a 4-byte big-endian length prefix followed by
// the JSON body.
func WriteFrame(w io.Writer, f Frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("autopower: marshal frame: %w", err)
	}
	if len(body) > maxFrameBytes {
		return fmt.Errorf("autopower: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("autopower: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("autopower: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBytes {
		return Frame{}, fmt.Errorf("autopower: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("autopower: read frame body: %w", err)
	}
	var f Frame
	if err := json.Unmarshal(body, &f); err != nil {
		return Frame{}, fmt.Errorf("autopower: decode frame: %w", err)
	}
	if f.Type == "" {
		return Frame{}, fmt.Errorf("autopower: frame without type")
	}
	return f, nil
}
