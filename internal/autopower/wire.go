package autopower

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// maxFrameBytes bounds a single protocol frame; larger frames indicate a
// corrupt stream and abort the connection.
const maxFrameBytes = 4 << 20

// frameHeaderBytes is the fixed frame header: a 4-byte big-endian body
// length followed by a 4-byte IEEE CRC-32 of the body. The checksum was
// added after chaos testing showed single byte-flips could survive JSON
// decoding (e.g. inside a numeric literal) and silently corrupt samples
// or — worse — the ack sequence number a unit trims its spool by.
const frameHeaderBytes = 8

// Frame types exchanged between unit and server.
const (
	// unit → server
	TypeHello  = "hello"  // unit introduces itself after connecting
	TypeUpload = "upload" // batch of spooled samples
	// server → unit
	TypeAck   = "ack"   // upload accepted through Seq
	TypeStart = "start" // begin measuring at IntervalMS
	TypeStop  = "stop"  // pause measuring
)

// Sample is one power measurement.
type Sample struct {
	// UnixMilli is the sample timestamp in Unix milliseconds.
	UnixMilli int64 `json:"t"`
	// Watts is the measured wall power.
	Watts float64 `json:"w"`
}

// Time returns the sample timestamp.
func (s Sample) Time() time.Time { return time.UnixMilli(s.UnixMilli).UTC() }

// Frame is the single message envelope of the protocol.
type Frame struct {
	Type string `json:"type"`

	// Hello fields.
	UnitID string `json:"unit_id,omitempty"`
	Router string `json:"router,omitempty"`

	// Upload fields: Seq is the sequence number of the last sample in the
	// batch; the server's ack echoes it so the unit can trim its spool.
	Seq     uint64   `json:"seq,omitempty"`
	Samples []Sample `json:"samples,omitempty"`

	// Start fields.
	IntervalMS int64 `json:"interval_ms,omitempty"`
}

// WriteFrame sends a frame as an 8-byte header (big-endian body length,
// then IEEE CRC-32 of the body) followed by the JSON body. Header and
// body go out in a single Write so a deadline covers the whole frame.
func WriteFrame(w io.Writer, f Frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("autopower: marshal frame: %w", err)
	}
	if len(body) > maxFrameBytes {
		return fmt.Errorf("autopower: frame of %d bytes exceeds limit", len(body))
	}
	buf := make([]byte, frameHeaderBytes+len(body))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	copy(buf[frameHeaderBytes:], body)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("autopower: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed, checksummed frame. Any header,
// checksum, or decoding failure is an error: the stream is unrecoverable
// past a corrupt frame, so callers drop the connection and let the unit's
// reconnect-and-reupload path repair the data.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFrameBytes {
		return Frame{}, fmt.Errorf("autopower: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("autopower: read frame body: %w", err)
	}
	if sum := crc32.ChecksumIEEE(body); sum != binary.BigEndian.Uint32(hdr[4:8]) {
		return Frame{}, fmt.Errorf("autopower: frame checksum mismatch (corrupt stream)")
	}
	var f Frame
	if err := json.Unmarshal(body, &f); err != nil {
		return Frame{}, fmt.Errorf("autopower: decode frame: %w", err)
	}
	if f.Type == "" {
		return Frame{}, fmt.Errorf("autopower: frame without type")
	}
	return f, nil
}
