// Package autopower implements the paper's Autopower system (§6.1): remote
// units that measure a production router's wall power with an MCP39F511N
// meter and ship the samples to a central server.
//
// Design constraints carried over from the paper:
//
//   - The unit initiates the connection (outgoing TCP only), so it works
//     behind NAT; the server never dials the unit.
//   - Samples are spooled locally and uploaded periodically, so network
//     interruptions lose nothing.
//   - Measurement starts automatically when the unit starts, surviving
//     power failures.
//   - The server can remotely start/stop measurements and serve collected
//     data for download.
//
// The paper's artifact uses gRPC; this implementation uses a
// length-prefixed JSON frame protocol over TCP from the standard library,
// preserving the same client-initiated, resumable-upload semantics.
//
// The server side is split across three files: wire.go (the frame
// protocol), server.go (connection handling and sample storage), and
// web.go (the Fig. 7 control interface: status page, JSON API, and the
// /metrics telemetry exposition). unit.go is the client. Operational
// counters — connected units, ingested samples, upload ingest latency —
// are registered on the process-wide telemetry registry (metrics.go).
package autopower
