package autopower

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWebStatusAndData(t *testing.T) {
	var truth atomic.Int64
	truth.Store(350)
	srv, _, _ := startPipeline(t, &truth)
	web := httptest.NewServer(srv.WebHandler())
	defer web.Close()

	waitFor(t, 5*time.Second, func() bool {
		u := srv.Units()
		return len(u) == 1 && u[0].Samples >= 10
	}, "samples before web checks")

	// Status JSON.
	resp, err := http.Get(web.URL + "/api/units")
	if err != nil {
		t.Fatal(err)
	}
	var units []UnitStatus
	if err := json.NewDecoder(resp.Body).Decode(&units); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(units) != 1 || units[0].UnitID != "unit-1" {
		t.Fatalf("units = %+v", units)
	}

	// Data download.
	resp, err = http.Get(web.URL + "/api/units/unit-1/data")
	if err != nil {
		t.Fatal(err)
	}
	var samples []struct {
		T time.Time `json:"t"`
		W float64   `json:"w"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&samples); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(samples) < 10 {
		t.Fatalf("downloaded %d samples", len(samples))
	}
	if samples[0].W < 340 || samples[0].W > 360 {
		t.Errorf("sample = %+v", samples[0])
	}

	// Incremental download with since.
	mid := samples[len(samples)/2].T
	resp, err = http.Get(web.URL + "/api/units/unit-1/data?since=" + mid.Format(time.RFC3339Nano))
	if err != nil {
		t.Fatal(err)
	}
	var tail []struct {
		T time.Time `json:"t"`
		W float64   `json:"w"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tail) >= len(samples) {
		t.Errorf("since filter returned %d of %d samples", len(tail), len(samples))
	}

	// HTML index.
	resp, err = http.Get(web.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "unit-1") {
		t.Error("index page does not list the unit")
	}
}

// TestWebMetricsEndpoint asserts the telemetry exposition is mounted on
// the existing control mux: a live pipeline serves Prometheus text under
// /metrics with the autopower instruments present and counting.
func TestWebMetricsEndpoint(t *testing.T) {
	var truth atomic.Int64
	truth.Store(250)
	srv, _, _ := startPipeline(t, &truth)
	web := httptest.NewServer(srv.WebHandler())
	defer web.Close()

	waitFor(t, 5*time.Second, func() bool {
		u := srv.Units()
		return len(u) == 1 && u[0].Connected && u[0].Samples >= 1
	}, "samples before metrics check")

	resp, err := http.Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE autopower_connected_units gauge",
		"# TYPE autopower_samples_ingested_total counter",
		"# TYPE autopower_upload_ingest_seconds histogram",
		"autopower_upload_ingest_seconds_count",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body.String())
		}
	}
	// The pipeline's unit is connected and has uploaded at least once.
	if !strings.Contains(body.String(), "autopower_connected_units 1") &&
		!strings.Contains(body.String(), "autopower_connected_units 2") {
		t.Logf("connected units not 1 (other tests may hold connections):\n%s", body.String())
	}
}

func TestWebStartStop(t *testing.T) {
	var truth atomic.Int64
	truth.Store(100)
	srv, _, _ := startPipeline(t, &truth)
	web := httptest.NewServer(srv.WebHandler())
	defer web.Close()

	waitFor(t, 5*time.Second, func() bool {
		u := srv.Units()
		return len(u) == 1 && u[0].Connected
	}, "unit connection")

	resp, err := http.Post(web.URL+"/api/units/unit-1/stop", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("stop status = %d", resp.StatusCode)
	}
	resp, err = http.Post(web.URL+"/api/units/unit-1/start", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("start status = %d", resp.StatusCode)
	}
	// Unknown unit.
	resp, err = http.Post(web.URL+"/api/units/ghost/start", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("ghost start status = %d", resp.StatusCode)
	}
}

func TestWebErrors(t *testing.T) {
	srv := NewServer()
	web := httptest.NewServer(srv.WebHandler())
	defer web.Close()
	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/api/units/ghost/data", http.StatusNotFound},
		{http.MethodGet, "/nope", http.StatusNotFound},
		{http.MethodPost, "/api/units", http.StatusMethodNotAllowed},
		{http.MethodGet, "/api/units/x/start", http.StatusMethodNotAllowed},
		{http.MethodGet, "/api/units/", http.StatusNotFound},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, web.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestWebDataBadSince(t *testing.T) {
	var truth atomic.Int64
	truth.Store(100)
	srv, _, _ := startPipeline(t, &truth)
	web := httptest.NewServer(srv.WebHandler())
	defer web.Close()
	waitFor(t, 5*time.Second, func() bool { return len(srv.Units()) == 1 }, "unit registration")

	resp, err := http.Get(web.URL + "/api/units/unit-1/data?since=yesterday")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since status = %d", resp.StatusCode)
	}
}
