package autopower

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/units"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{
		Type: TypeUpload, UnitID: "unit-1", Seq: 42,
		Samples: []Sample{{UnixMilli: 1700000000000, Watts: 358.2}},
	}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != TypeUpload || out.Seq != 42 || len(out.Samples) != 1 {
		t.Errorf("frame = %+v", out)
	}
	if out.Samples[0].Watts != 358.2 {
		t.Errorf("sample = %+v", out.Samples[0])
	}
	if !out.Samples[0].Time().Equal(time.UnixMilli(1700000000000).UTC()) {
		t.Errorf("timestamp = %v", out.Samples[0].Time())
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0})); err == nil {
		t.Error("oversized length must error")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero length must error")
	}
	if _, err := ReadFrame(strings.NewReader("")); err == nil {
		t.Error("empty stream must error")
	}
	// Valid length, garbage JSON.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 2, '{', 'x'})); err == nil {
		t.Error("bad JSON must error")
	}
	// Valid JSON, missing type.
	body := []byte(`{"seq":1}`)
	hdr := []byte{0, 0, 0, byte(len(body))}
	if _, err := ReadFrame(bytes.NewReader(append(hdr, body...))); err == nil {
		t.Error("missing type must error")
	}
}

func TestUnitConfigValidation(t *testing.T) {
	m := meter.New(1)
	cases := []UnitConfig{
		{ServerAddr: "x", Meter: m},    // no ID
		{UnitID: "u", Meter: m},        // no server
		{UnitID: "u", ServerAddr: "x"}, // no meter
	}
	for i, cfg := range cases {
		if _, err := NewUnit(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// startPipeline spins up a server and one unit measuring a controllable
// source, with fast intervals for testing.
func startPipeline(t *testing.T, truth *atomic.Int64) (*Server, *Unit, context.CancelFunc) {
	t.Helper()
	m := meter.New(7)
	if err := m.Attach(0, meter.SourceFunc(func() units.Power {
		return units.Power(truth.Load())
	})); err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := NewUnit(UnitConfig{
		UnitID: "unit-1", Router: "rtr-9", ServerAddr: addr,
		Meter: m, Channel: 0,
		SampleInterval: 5 * time.Millisecond,
		UploadEvery:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = unit.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		srv.Close()
	})
	return srv, unit, cancel
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, desc string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", desc)
}

func TestEndToEndCollection(t *testing.T) {
	var truth atomic.Int64
	truth.Store(400)
	srv, _, _ := startPipeline(t, &truth)

	waitFor(t, 5*time.Second, func() bool {
		units := srv.Units()
		return len(units) == 1 && units[0].Samples >= 20
	}, "20 samples at the server")

	st := srv.Units()[0]
	if st.UnitID != "unit-1" || st.Router != "rtr-9" || !st.Connected {
		t.Errorf("status = %+v", st)
	}
	series, err := srv.Series("unit-1")
	if err != nil {
		t.Fatal(err)
	}
	med := series.Median()
	if med < 390 || med > 410 {
		t.Errorf("median collected power = %v, want ≈400", med)
	}
	// Timestamps must be strictly increasing (dedupe works).
	pts := series.Points()
	for i := 1; i < len(pts); i++ {
		if !pts[i].T.After(pts[i-1].T) {
			t.Fatalf("non-increasing timestamps at %d", i)
		}
	}
}

func TestRemoteStartStop(t *testing.T) {
	var truth atomic.Int64
	truth.Store(100)
	srv, _, _ := startPipeline(t, &truth)

	waitFor(t, 5*time.Second, func() bool {
		u := srv.Units()
		return len(u) == 1 && u[0].Connected && u[0].Samples > 0
	}, "unit connected and uploading")

	if err := srv.StopMeasurement("unit-1"); err != nil {
		t.Fatal(err)
	}
	// After the stop settles, the sample count must stabilize.
	var frozen int
	waitFor(t, 5*time.Second, func() bool {
		n := srv.Units()[0].Samples
		if n == frozen && n > 0 {
			return true
		}
		frozen = n
		time.Sleep(50 * time.Millisecond)
		return false
	}, "sample count to freeze after stop")

	if err := srv.StartMeasurement("unit-1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return srv.Units()[0].Samples > frozen
	}, "samples to resume after start")

	if err := srv.StartMeasurement("ghost"); err == nil {
		t.Error("unknown unit must error")
	}
}

func TestUnitSurvivesServerRestart(t *testing.T) {
	var truth atomic.Int64
	truth.Store(250)
	m := meter.New(9)
	if err := m.Attach(0, meter.SourceFunc(func() units.Power {
		return units.Power(truth.Load())
	})); err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := NewUnit(UnitConfig{
		UnitID: "unit-r", ServerAddr: addr, Meter: m,
		SampleInterval:   5 * time.Millisecond,
		UploadEvery:      5,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = unit.Run(ctx) }()
	defer func() { cancel(); <-done }()

	waitFor(t, 5*time.Second, func() bool {
		u := srv.Units()
		return len(u) == 1 && u[0].Samples > 0
	}, "first collection")

	// Kill the server: the unit keeps spooling.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return unit.SpoolLen() > 10 }, "spool growth while offline")

	// Restart on the same address: the unit reconnects and drains.
	srv2 := NewServer()
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	waitFor(t, 10*time.Second, func() bool {
		u := srv2.Units()
		return len(u) == 1 && u[0].Samples > 10 && unit.SpoolLen() < 10
	}, "spool drain after reconnect")
	if unit.Dropped() != 0 {
		t.Errorf("dropped %d samples during a short outage", unit.Dropped())
	}
}

func TestServerSeriesUnknownUnit(t *testing.T) {
	srv := NewServer()
	if _, err := srv.Series("nope"); err == nil {
		t.Error("unknown unit must error")
	}
}

func TestServerDoubleStart(t *testing.T) {
	srv := NewServer()
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start must error")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer()
	if err := srv.Close(); err != nil {
		t.Errorf("closing a never-started server: %v", err)
	}
}
