package autopower

import (
	"fantasticjoules/internal/telemetry"
)

// Collection-server instrumentation on the process-wide telemetry
// registry. A deployment scrapes these through the WebHandler's /metrics
// endpoint to watch its fleet of units: how many are connected, how fast
// samples arrive, and how long upload ingestion takes.
var (
	metricConnectedUnits = telemetry.Default().Gauge("autopower_connected_units",
		"units currently holding a live server connection")
	metricUnitsSeen = telemetry.Default().Counter("autopower_units_seen_total",
		"distinct units that ever registered with a hello")
	metricSamplesIngested = telemetry.Default().Counter("autopower_samples_ingested_total",
		"power samples accepted into unit series (after overlap dedup)")
	metricSamplesDuplicate = telemetry.Default().Counter("autopower_samples_duplicate_total",
		"re-uploaded samples dropped by the overlap dedup")
	metricUploads = telemetry.Default().Counter("autopower_uploads_total",
		"upload frames processed")
	metricUploadSeconds = telemetry.Default().Histogram("autopower_upload_ingest_seconds",
		"time to ingest and acknowledge one upload frame",
		[]float64{1e-5, 1e-4, 5e-4, 1e-3, 5e-3, .025, .1, .5, 1, 5})
)

// Unit-side instrumentation. The sample loop used to swallow meter read
// errors and spool overflow silently; the chaos harness made both paths
// observable so a deployment can tell "quiet unit" from "unit dropping
// data on the floor".
var (
	metricMeterGlitches = telemetry.Default().Counter("autopower_meter_glitches_total",
		"meter reads that failed; the sample slot is skipped")
	metricSamplesDropped = telemetry.Default().Counter("autopower_samples_dropped_total",
		"samples lost to local spool overflow while the server was unreachable")
	metricReconnects = telemetry.Default().Counter("autopower_unit_reconnects_total",
		"failed unit sessions followed by a jittered backoff and reconnect")
)
