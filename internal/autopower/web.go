package autopower

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"time"

	"fantasticjoules/internal/telemetry"
)

// The paper's Autopower server ships a web interface to "conveniently
// start/stop measurements or download the power data" (Fig. 7). This file
// provides that surface: a status page plus a small JSON API.
//
//	GET  /               HTML status page listing the units
//	GET  /api/units      unit statuses as JSON
//	GET  /api/units/{id}/data?since=RFC3339   collected samples as JSON
//	POST /api/units/{id}/start               resume measuring
//	POST /api/units/{id}/stop                pause measuring
//	GET  /metrics        process telemetry (Prometheus text; ?format=json)

// WebHandler returns the server's HTTP control interface.
func (s *Server) WebHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Default().Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		s.serveIndex(w)
	})
	mux.HandleFunc("/api/units", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Units())
	})
	mux.HandleFunc("/api/units/", s.serveUnitAPI)
	return mux
}

func (s *Server) serveUnitAPI(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/units/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 || parts[0] == "" {
		http.NotFound(w, r)
		return
	}
	unitID, action := parts[0], parts[1]
	switch {
	case action == "data" && r.Method == http.MethodGet:
		series, err := s.Series(unitID)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		since := time.Time{}
		if q := r.URL.Query().Get("since"); q != "" {
			t, err := time.Parse(time.RFC3339, q)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = t
		}
		type sample struct {
			T time.Time `json:"t"`
			W float64   `json:"w"`
		}
		var out []sample
		for _, p := range series.Points() {
			if p.T.Before(since) {
				continue
			}
			out = append(out, sample{T: p.T, W: p.V})
		}
		writeJSON(w, out)
	case action == "start" && r.Method == http.MethodPost:
		if err := s.StartMeasurement(unitID); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case action == "stop" && r.Method == http.MethodPost:
		if err := s.StopMeasurement(unitID); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "unknown action or method", http.StatusMethodNotAllowed)
	}
}

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>Autopower</title></head><body>
<h1>Autopower units</h1>
<table border="1" cellpadding="4">
<tr><th>Unit</th><th>Router</th><th>Connected</th><th>Samples</th><th>Last sample</th><th>Data</th></tr>
{{range .}}<tr>
<td>{{.UnitID}}</td><td>{{.Router}}</td><td>{{.Connected}}</td>
<td>{{.Samples}}</td><td>{{.LastSample.Format "2006-01-02 15:04:05"}}</td>
<td><a href="/api/units/{{.UnitID}}/data">download</a></td>
</tr>{{end}}
</table></body></html>
`))

func (s *Server) serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, s.Units()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; nothing sensible to do.
		_ = fmt.Errorf("autopower: encode response: %w", err)
	}
}
