package autopower

import (
	"net"
	"testing"
	"time"
)

// TestServerSurvivesCorruptStream connects raw TCP clients that speak
// garbage and verifies the server drops them while staying usable for a
// legitimate unit afterwards.
func TestServerSurvivesCorruptStream(t *testing.T) {
	attackSrv := NewServer()
	attackAddr, err := attackSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer attackSrv.Close()

	attacks := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),                  // wrong protocol
		{0xff, 0xff, 0xff, 0xff, 0x00},                    // absurd frame length
		{0x00, 0x00, 0x00, 0x05, 'h', 'e', 'l', 'l', 'o'}, // length ok, not JSON
		{0x00, 0x00, 0x00, 0x02, '{', '}'},                // JSON without type
	}
	for i, payload := range attacks {
		conn, err := net.Dial("tcp", attackAddr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("attack %d write: %v", i, err)
		}
		// Server must close or ignore; either way a follow-up valid session
		// must still work.
		conn.Close()
	}

	// A legitimate unit still registers on the attacked server.
	conn, err := net.Dial("tcp", attackAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, Frame{Type: TypeHello, UnitID: "survivor"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, Frame{Type: TypeUpload, Seq: 1, Samples: []Sample{
		{UnixMilli: time.Now().UnixMilli(), Watts: 42},
	}}); err != nil {
		t.Fatal(err)
	}
	ack, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != TypeAck || ack.Seq != 1 {
		t.Errorf("ack = %+v", ack)
	}
	units := attackSrv.Units()
	if len(units) != 1 || units[0].UnitID != "survivor" || units[0].Samples != 1 {
		t.Errorf("units after attacks = %+v", units)
	}
}

// TestServerIgnoresHelloWithoutID rejects anonymous units.
func TestServerIgnoresHelloWithoutID(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, Frame{Type: TypeHello}); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection; a read must fail quickly.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadFrame(conn); err == nil {
		t.Error("server kept an anonymous session alive")
	}
	if len(srv.Units()) != 0 {
		t.Errorf("anonymous unit registered: %+v", srv.Units())
	}
}

// TestReconnectReplacesStaleConnection verifies a unit's second connection
// supersedes the first.
func TestReconnectReplacesStaleConnection(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dial := func() net.Conn {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(c, Frame{Type: TypeHello, UnitID: "u", Router: "r"}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	first := dial()
	defer first.Close()
	waitFor(t, 2*time.Second, func() bool {
		u := srv.Units()
		return len(u) == 1 && u[0].Connected
	}, "first connection registered")

	second := dial()
	defer second.Close()
	// The first connection gets closed by the server; reading from it must
	// fail, while the second stays usable.
	_ = first.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadFrame(first); err == nil {
		t.Error("stale connection still served")
	}
	if err := WriteFrame(second, Frame{Type: TypeUpload, Seq: 1, Samples: []Sample{
		{UnixMilli: time.Now().UnixMilli(), Watts: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	ack, err := ReadFrame(second)
	if err != nil || ack.Type != TypeAck {
		t.Errorf("second connection broken: %v %+v", err, ack)
	}
}
