package autopower

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"fantasticjoules/internal/timeseries"
)

// helloTimeout bounds how long an accepted connection may sit silent
// before identifying itself; without it a peer that connects and never
// speaks pins a handler goroutine (and, before connection tracking was
// added, wedged Close forever).
const helloTimeout = 10 * time.Second

// serverWriteTimeout bounds every server→unit frame write (acks and
// commands) so a unit that stops draining its socket cannot stall a
// handler.
const serverWriteTimeout = 10 * time.Second

// UnitStatus describes one unit known to the server.
type UnitStatus struct {
	UnitID    string
	Router    string
	Connected bool
	// Samples is the number of samples collected from the unit so far.
	Samples int
	// LastSample is the timestamp of the newest collected sample.
	LastSample time.Time
}

// Server is the collection side of Autopower: it accepts unit connections,
// stores uploaded samples per unit, and can remotely start/stop
// measurements. Create with NewServer, start with Start (or StartListener
// to serve on an existing — possibly fault-injected — listener), stop with
// Close.
type Server struct {
	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup

	units map[string]*unitState
	// conns tracks every accepted connection, including ones that have
	// not completed a hello. Close closes them all; tracking only the
	// post-hello connections (the old behaviour) let a silent client
	// block Close's wg.Wait forever.
	conns map[net.Conn]struct{}
}

type unitState struct {
	router   string
	conn     net.Conn // nil when disconnected
	series   *timeseries.Series
	lastSeen time.Time
	// dedupe: highest sample timestamp stored, to drop re-uploaded overlap.
	lastMilli int64
	// writeMu serializes frame writes to conn: acks (handler goroutine)
	// and commands (API callers) would otherwise interleave their bytes.
	writeMu sync.Mutex
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{units: make(map[string]*unitState), conns: make(map[net.Conn]struct{})}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// begins accepting unit connections. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("autopower: server listen: %w", err)
	}
	if err := s.StartListener(ln); err != nil {
		ln.Close()
		return "", err
	}
	return ln.Addr().String(), nil
}

// StartListener begins accepting unit connections from an existing
// listener, which the server takes ownership of. The chaos harness uses
// this to splice fault injection under the accept path.
func (s *Server) StartListener(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("autopower: server already started")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Close stops the server and drops all connections, including ones still
// waiting on their hello.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	for _, u := range s.units {
		if u.conn != nil {
			u.conn = nil
			metricConnectedUnits.Add(-1)
		}
	}
	s.mu.Unlock()
	if ln == nil {
		return nil
	}
	err := ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(helloTimeout))
	hello, err := ReadFrame(conn)
	if err != nil || hello.Type != TypeHello || hello.UnitID == "" {
		return
	}
	_ = conn.SetReadDeadline(time.Time{}) // uploads may be arbitrarily far apart
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	st, ok := s.units[hello.UnitID]
	if !ok {
		st = &unitState{series: timeseries.New(hello.UnitID)}
		s.units[hello.UnitID] = st
		metricUnitsSeen.Inc()
	}
	if st.conn != nil {
		st.conn.Close() // a reconnect replaces the stale connection
	} else {
		metricConnectedUnits.Add(1)
	}
	st.conn = conn
	st.router = hello.Router
	st.lastSeen = time.Now()
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		if st.conn == conn {
			st.conn = nil
			metricConnectedUnits.Add(-1)
		}
		s.mu.Unlock()
	}()

	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if f.Type != TypeUpload {
			continue
		}
		ingestStart := time.Now()
		var ingested, duplicate uint64
		s.mu.Lock()
		for _, sample := range f.Samples {
			if sample.UnixMilli <= st.lastMilli {
				duplicate++
				continue // overlap from an unacked re-upload
			}
			st.series.Append(sample.Time(), sample.Watts)
			st.lastMilli = sample.UnixMilli
			ingested++
		}
		st.lastSeen = time.Now()
		s.mu.Unlock()
		if err := writeToUnit(st, conn, Frame{Type: TypeAck, Seq: f.Seq}); err != nil {
			return
		}
		metricUploads.Inc()
		metricSamplesIngested.Add(ingested)
		metricSamplesDuplicate.Add(duplicate)
		metricUploadSeconds.ObserveSince(ingestStart)
	}
}

// writeToUnit sends one frame to a unit connection, serialized against
// concurrent command writes and bounded by the server write deadline.
func writeToUnit(st *unitState, conn net.Conn, f Frame) error {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	if err := conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout)); err != nil {
		return err
	}
	return WriteFrame(conn, f)
}

// Units lists all known units sorted by ID.
func (s *Server) Units() []UnitStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]UnitStatus, 0, len(s.units))
	for id, st := range s.units {
		us := UnitStatus{
			UnitID:    id,
			Router:    st.router,
			Connected: st.conn != nil,
			Samples:   st.series.Len(),
		}
		if st.series.Len() > 0 {
			us.LastSample = st.series.At(st.series.Len() - 1).T
		}
		out = append(out, us)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UnitID < out[j].UnitID })
	return out
}

// Series returns a copy of the samples collected from a unit.
func (s *Server) Series(unitID string) (*timeseries.Series, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.units[unitID]
	if !ok {
		return nil, fmt.Errorf("autopower: unknown unit %q", unitID)
	}
	return timeseries.FromPoints(unitID, st.series.Points()), nil
}

// command sends a control frame to a connected unit.
func (s *Server) command(unitID string, f Frame) error {
	s.mu.Lock()
	st, ok := s.units[unitID]
	var conn net.Conn
	if ok {
		conn = st.conn
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("autopower: unknown unit %q", unitID)
	}
	if conn == nil {
		return fmt.Errorf("autopower: unit %q is not connected", unitID)
	}
	return writeToUnit(st, conn, f)
}

// StartMeasurement remotely resumes a unit's measurements.
func (s *Server) StartMeasurement(unitID string) error {
	return s.command(unitID, Frame{Type: TypeStart})
}

// StopMeasurement remotely pauses a unit's measurements.
func (s *Server) StopMeasurement(unitID string) error {
	return s.command(unitID, Frame{Type: TypeStop})
}
