package autopower

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"fantasticjoules/internal/timeseries"
)

// UnitStatus describes one unit known to the server.
type UnitStatus struct {
	UnitID    string
	Router    string
	Connected bool
	// Samples is the number of samples collected from the unit so far.
	Samples int
	// LastSample is the timestamp of the newest collected sample.
	LastSample time.Time
}

// Server is the collection side of Autopower: it accepts unit connections,
// stores uploaded samples per unit, and can remotely start/stop
// measurements. Create with NewServer, start with Start, stop with Close.
type Server struct {
	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup

	units map[string]*unitState
}

type unitState struct {
	router   string
	conn     net.Conn // nil when disconnected
	series   *timeseries.Series
	lastSeen time.Time
	// dedupe: highest sample timestamp stored, to drop re-uploaded overlap.
	lastMilli int64
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{units: make(map[string]*unitState)}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// begins accepting unit connections. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("autopower: server listen: %w", err)
	}
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("autopower: server already started")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the server and drops all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.closed = true
	for _, u := range s.units {
		if u.conn != nil {
			u.conn.Close()
			u.conn = nil
			metricConnectedUnits.Add(-1)
		}
	}
	s.mu.Unlock()
	if ln == nil {
		return nil
	}
	err := ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	hello, err := ReadFrame(conn)
	if err != nil || hello.Type != TypeHello || hello.UnitID == "" {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	st, ok := s.units[hello.UnitID]
	if !ok {
		st = &unitState{series: timeseries.New(hello.UnitID)}
		s.units[hello.UnitID] = st
		metricUnitsSeen.Inc()
	}
	if st.conn != nil {
		st.conn.Close() // a reconnect replaces the stale connection
	} else {
		metricConnectedUnits.Add(1)
	}
	st.conn = conn
	st.router = hello.Router
	st.lastSeen = time.Now()
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		if st.conn == conn {
			st.conn = nil
			metricConnectedUnits.Add(-1)
		}
		s.mu.Unlock()
	}()

	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if f.Type != TypeUpload {
			continue
		}
		ingestStart := time.Now()
		var ingested, duplicate uint64
		s.mu.Lock()
		for _, sample := range f.Samples {
			if sample.UnixMilli <= st.lastMilli {
				duplicate++
				continue // overlap from an unacked re-upload
			}
			st.series.Append(sample.Time(), sample.Watts)
			st.lastMilli = sample.UnixMilli
			ingested++
		}
		st.lastSeen = time.Now()
		s.mu.Unlock()
		if err := WriteFrame(conn, Frame{Type: TypeAck, Seq: f.Seq}); err != nil {
			return
		}
		metricUploads.Inc()
		metricSamplesIngested.Add(ingested)
		metricSamplesDuplicate.Add(duplicate)
		metricUploadSeconds.ObserveSince(ingestStart)
	}
}

// Units lists all known units sorted by ID.
func (s *Server) Units() []UnitStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]UnitStatus, 0, len(s.units))
	for id, st := range s.units {
		us := UnitStatus{
			UnitID:    id,
			Router:    st.router,
			Connected: st.conn != nil,
			Samples:   st.series.Len(),
		}
		if st.series.Len() > 0 {
			us.LastSample = st.series.At(st.series.Len() - 1).T
		}
		out = append(out, us)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UnitID < out[j].UnitID })
	return out
}

// Series returns a copy of the samples collected from a unit.
func (s *Server) Series(unitID string) (*timeseries.Series, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.units[unitID]
	if !ok {
		return nil, fmt.Errorf("autopower: unknown unit %q", unitID)
	}
	return timeseries.FromPoints(unitID, st.series.Points()), nil
}

// command sends a control frame to a connected unit.
func (s *Server) command(unitID string, f Frame) error {
	s.mu.Lock()
	st, ok := s.units[unitID]
	var conn net.Conn
	if ok {
		conn = st.conn
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("autopower: unknown unit %q", unitID)
	}
	if conn == nil {
		return fmt.Errorf("autopower: unit %q is not connected", unitID)
	}
	return WriteFrame(conn, f)
}

// StartMeasurement remotely resumes a unit's measurements.
func (s *Server) StartMeasurement(unitID string) error {
	return s.command(unitID, Frame{Type: TypeStart})
}

// StopMeasurement remotely pauses a unit's measurements.
func (s *Server) StopMeasurement(unitID string) error {
	return s.command(unitID, Frame{Type: TypeStop})
}
