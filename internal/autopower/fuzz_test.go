package autopower

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frameBytes encodes a frame for corpus seeding.
func frameBytes(t testing.TB, f Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame drives the length-prefixed frame decoder with arbitrary
// byte streams. The corpus mirrors what the chaos harness produces: valid
// frames, byte-flipped frames, torn prefixes, and hostile length fields.
// Invariants: no panic; the maxFrameBytes bound rejects oversized
// lengths; anything accepted is typed, checksummed, and survives a
// re-encode round trip.
func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(f, Frame{Type: TypeHello, UnitID: "unit-1", Router: "8201-32FH"}))
	f.Add(frameBytes(f, Frame{Type: TypeUpload, UnitID: "unit-1", Seq: 42, Samples: []Sample{
		{UnixMilli: 1_700_000_000_000, Watts: 358.2},
		{UnixMilli: 1_700_000_000_500, Watts: 361.0},
	}}))
	f.Add(frameBytes(f, Frame{Type: TypeAck, Seq: 7}))
	// Chaos-style corruption: single byte-flip in header and body.
	flipped := frameBytes(f, Frame{Type: TypeAck, Seq: 9})
	flipped[2] ^= 0x40
	f.Add(flipped)
	flipped2 := frameBytes(f, Frame{Type: TypeHello, UnitID: "u"})
	flipped2[len(flipped2)-3] ^= 0x01
	f.Add(flipped2)
	// Torn write: a valid frame cut mid-body.
	torn := frameBytes(f, Frame{Type: TypeStop})
	f.Add(torn[:len(torn)-2])
	// Hostile lengths: zero, huge, and just past the limit.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 'x'})
	var past [8]byte
	binary.BigEndian.PutUint32(past[:4], maxFrameBytes+1)
	f.Add(past[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if fr.Type == "" {
			t.Fatal("accepted frame without type")
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if buf.Len() > maxFrameBytes+frameHeaderBytes {
			t.Fatalf("accepted frame re-encodes to %d bytes, past the limit", buf.Len())
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if back.Type != fr.Type || back.Seq != fr.Seq || len(back.Samples) != len(fr.Samples) {
			t.Fatalf("round trip changed the frame: %+v vs %+v", fr, back)
		}
	})
}
