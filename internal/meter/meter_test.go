package meter

import (
	"math"
	"testing"

	"fantasticjoules/internal/units"
)

func TestReadAccuracy(t *testing.T) {
	m := New(1)
	if err := m.Attach(0, SourceFunc(func() units.Power { return 400 })); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, err := m.Read(0)
		if err != nil {
			t.Fatal(err)
		}
		// Gain ±0.5% plus small noise: stay within ±1% of truth.
		if math.Abs(v.Watts()-400) > 4 {
			t.Fatalf("reading %v outside ±1%% of 400 W", v)
		}
	}
}

func TestReadQuantization(t *testing.T) {
	m := New(2)
	if err := m.Attach(1, SourceFunc(func() units.Power { return 123.456789 })); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	cents := v.Watts() * 100
	if math.Abs(cents-math.Round(cents)) > 1e-9 {
		t.Errorf("reading %v not quantized to 10 mW", v)
	}
}

func TestReadErrors(t *testing.T) {
	m := New(3)
	if _, err := m.Read(0); err == nil {
		t.Error("unattached channel must error")
	}
	if _, err := m.Read(2); err == nil {
		t.Error("channel 2 does not exist")
	}
	if err := m.Attach(-1, SourceFunc(func() units.Power { return 0 })); err == nil {
		t.Error("negative channel must error")
	}
}

func TestReadMean(t *testing.T) {
	m := New(4)
	if err := m.Attach(0, SourceFunc(func() units.Power { return 250 })); err != nil {
		t.Fatal(err)
	}
	advanced := 0
	v, err := m.ReadMean(0, 10, func() { advanced++ })
	if err != nil {
		t.Fatal(err)
	}
	if advanced != 9 {
		t.Errorf("advance called %d times, want 9 (between samples)", advanced)
	}
	if math.Abs(v.Watts()-250) > 2.5 {
		t.Errorf("mean = %v, want ≈250", v)
	}
	if _, err := m.ReadMean(0, 0, nil); err == nil {
		t.Error("zero samples must error")
	}
}

func TestNeverNegative(t *testing.T) {
	m := New(5)
	if err := m.Attach(0, SourceFunc(func() units.Power { return 0 })); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, err := m.Read(0)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 {
			t.Fatalf("negative reading %v", v)
		}
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		m := New(99)
		_ = m.Attach(0, SourceFunc(func() units.Power { return 333 }))
		var s float64
		for i := 0; i < 5; i++ {
			v, _ := m.Read(0)
			s += v.Watts()
		}
		return s
	}
	if run() != run() {
		t.Error("same seed must reproduce readings")
	}
}
