// Package meter simulates the external power meter used throughout the
// paper: the Microchip MCP39F511N, a two-channel C13 inline meter with a
// specified accuracy of ±0.5 %. It is the ground-truth instrument — both
// the lab methodology (§5) and the Autopower deployment units (§6.1) read
// router wall power through one of these.
package meter

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"fantasticjoules/internal/units"
)

// Channels is the number of measurement channels on an MCP39F511N.
const Channels = 2

// Source supplies the true electrical power flowing through a channel.
// *device.Router satisfies it via its WallPower method.
type Source interface {
	WallPower() units.Power
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() units.Power

// WallPower implements Source.
func (f SourceFunc) WallPower() units.Power { return f() }

// Meter is a simulated MCP39F511N. Each reading applies a per-unit gain
// error (drawn once, within the ±0.5 % accuracy class), per-sample noise,
// and the 10 mW quantization of the instrument. Safe for concurrent use.
//
// Concurrency audit for the sharded fleet simulation: a Meter owns its
// rand source, so a (meter, router) pair confined to one shard goroutine
// replays with no cross-shard state; the mutex is uncontended there.
// Reads draw from the meter's rng, so the sample sequence — like the real
// instrument's noise — depends on read order: deterministic replay
// requires each meter be read by one goroutine in timeline order, which
// is exactly what the shard does.
type Meter struct {
	mu      sync.Mutex
	rng     *rand.Rand
	gain    [Channels]float64
	sources [Channels]Source
	// Deterministic fault injection (see GlitchEvery): every nth read
	// fails, simulating the serial-link glitches a real MCP39F511N unit
	// shows over weeks of unattended operation. Zero disables injection
	// and leaves the sample stream byte-identical to a fault-free meter.
	glitchEvery int
	reads       int
}

// accuracySpec is the datasheet accuracy of the MCP39F511N.
const accuracySpec = 0.005

// New returns a meter with per-channel gain errors drawn from the accuracy
// class. The seed makes the instrument reproducible.
func New(seed int64) *Meter {
	rng := rand.New(rand.NewSource(seed))
	m := &Meter{rng: rng}
	for i := range m.gain {
		// A real unit's gain error is fixed at manufacture; draw it once,
		// uniform within ±0.5 %.
		m.gain[i] = 1 + (rng.Float64()*2-1)*accuracySpec
	}
	return m
}

// Attach connects a power source to a channel (0 or 1).
func (m *Meter) Attach(channel int, src Source) error {
	if channel < 0 || channel >= Channels {
		return fmt.Errorf("meter: no channel %d", channel)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sources[channel] = src
	return nil
}

// ErrGlitch is the read error injected by GlitchEvery, standing in for
// the transient serial-communication failures of the real instrument.
var ErrGlitch = errors.New("meter: communication glitch")

// GlitchEvery makes every nth Read fail with ErrGlitch (counting across
// channels), deterministically. n <= 0 disables injection — the default —
// in which case the measurement stream is untouched. The chaos harness
// uses this to drive the Autopower unit's glitch-skip path.
func (m *Meter) GlitchEvery(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.glitchEvery = n
	m.reads = 0
}

// Read samples a channel once and returns the measured power: the true
// value with the channel's gain error, small per-sample noise, and 10 mW
// quantization. Reading an unattached channel is an error.
func (m *Meter) Read(channel int) (units.Power, error) {
	if channel < 0 || channel >= Channels {
		return 0, fmt.Errorf("meter: no channel %d", channel)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.glitchEvery > 0 {
		m.reads++
		if m.reads%m.glitchEvery == 0 {
			return 0, ErrGlitch
		}
	}
	src := m.sources[channel]
	if src == nil {
		return 0, fmt.Errorf("meter: channel %d not attached", channel)
	}
	truth := src.WallPower().Watts()
	noisy := truth*m.gain[channel] + m.rng.NormFloat64()*0.02*math.Max(1, truth/400)
	quantized := math.Round(noisy*100) / 100
	if quantized < 0 {
		quantized = 0
	}
	return units.Power(quantized), nil
}

// ReadMean samples a channel n times and returns the mean measurement;
// between samples it calls advance (if non-nil), which the caller uses to
// move the simulated world forward. It is the averaging the lab harness
// applies at every operating point.
func (m *Meter) ReadMean(channel, n int, advance func()) (units.Power, error) {
	if n <= 0 {
		return 0, fmt.Errorf("meter: non-positive sample count %d", n)
	}
	var sum float64
	for i := 0; i < n; i++ {
		v, err := m.Read(channel)
		if err != nil {
			return 0, err
		}
		sum += v.Watts()
		if advance != nil && i < n-1 {
			advance()
		}
	}
	return units.Power(sum / float64(n)), nil
}
