package hypnos

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

func TestVerifyScheduleAcceptsRunOutput(t *testing.T) {
	topo := triangle(100 * g)
	traffic := flatTraffic(1e9)
	sched, err := Run(topo, traffic, opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(topo, sched, traffic, 0.5); err != nil {
		t.Errorf("Run output failed verification: %v", err)
	}
}

func TestVerifyScheduleRejectsDisconnection(t *testing.T) {
	topo := triangle(100 * g)
	topo.Links = topo.Links[:2] // a path: no link may sleep
	bad := Schedule{
		Times:    []time.Time{start},
		Sleeping: [][]int{{0}},
		topo:     topo,
	}
	if err := VerifySchedule(topo, bad, flatTraffic(1e9), 0.5); err == nil {
		t.Error("disconnecting schedule accepted")
	}
}

func TestVerifyScheduleRejectsOverload(t *testing.T) {
	topo := triangle(10 * g)
	// Sleeping one link at 4.9 Gbps leaves 2×(5−4.9) = 0.2 Gbps headroom:
	// the slept traffic cannot fit.
	bad := Schedule{
		Times:    []time.Time{start},
		Sleeping: [][]int{{0}},
		topo:     topo,
	}
	if err := VerifySchedule(topo, bad, flatTraffic(4.9e9), 0.5); err == nil {
		t.Error("overloading schedule accepted")
	}
}

func TestVerifyScheduleRejectsMalformed(t *testing.T) {
	topo := triangle(100 * g)
	for name, bad := range map[string]Schedule{
		"unknown link":  {Times: []time.Time{start}, Sleeping: [][]int{{99}}, topo: topo},
		"duplicate":     {Times: []time.Time{start}, Sleeping: [][]int{{0, 0}}, topo: topo},
		"missing times": {Sleeping: [][]int{{0}}, topo: topo},
	} {
		if err := VerifySchedule(topo, bad, flatTraffic(1e9), 0.5); err == nil {
			t.Errorf("%s schedule accepted", name)
		}
	}
}

// randomTopology builds a random connected graph: a spanning path plus
// extra random edges.
func randomTopology(rng *rand.Rand, nodes, extraLinks int) Topology {
	topo := Topology{}
	for i := 0; i < nodes; i++ {
		topo.Nodes = append(topo.Nodes, fmt.Sprintf("n%02d", i))
	}
	ep := func(n int) Endpoint {
		return Endpoint{
			Router: topo.Nodes[n], Interface: fmt.Sprintf("e%d", len(topo.Links)),
			Port: model.QSFP28, PPort: 0.53, PTrxUp: 0.126, TrxDatasheet: 4.5,
		}
	}
	addLink := func(a, b int) {
		topo.Links = append(topo.Links, Link{
			ID: len(topo.Links), A: ep(a), B: ep(b),
			Capacity: units.BitRate(10+rng.Intn(90)) * g,
		})
	}
	perm := rng.Perm(nodes)
	for i := 1; i < nodes; i++ {
		addLink(perm[i-1], perm[i])
	}
	for i := 0; i < extraLinks; i++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a != b {
			addLink(a, b)
		}
	}
	return topo
}

func TestRunNeverDisconnectsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 4 + rng.Intn(12)
		topo := randomTopology(rng, nodes, rng.Intn(nodes*2))
		traffic := func(linkID int, _ time.Time) units.BitRate {
			h := (uint64(linkID)*2654435761 + uint64(seed)) % 1000
			return units.BitRate(h) * units.MegabitPerSecond
		}
		sched, err := Run(topo, traffic, Options{Start: start, Window: 2 * time.Hour, Step: time.Hour})
		if err != nil {
			return false
		}
		return VerifySchedule(topo, sched, traffic, 0.5) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunSleepsCycleSpaceBound(t *testing.T) {
	// Structural upper bound: a connected graph with E edges and N nodes
	// has E−N+1 independent cycles; no valid schedule can sleep more.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 4 + rng.Intn(10)
		topo := randomTopology(rng, nodes, rng.Intn(nodes))
		sched, err := Run(topo, flatTraffic(1e6), Options{Start: start, Window: time.Hour, Step: time.Hour})
		if err != nil {
			return false
		}
		bound := len(topo.Links) - len(topo.Nodes) + 1
		for _, step := range sched.Sleeping {
			if len(step) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVerifyFullNetworkSchedule(t *testing.T) {
	n, err := ispnet.Build(ispnet.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	topo, traffic, err := FromNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Run(topo, traffic, Options{Start: start, Window: 12 * time.Hour, Step: 3 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(topo, sched, traffic, 0.5); err != nil {
		t.Errorf("fleet schedule failed verification: %v", err)
	}
}
