package hypnos

import (
	"errors"
	"sort"
)

// VetoReason names why the guardrail rejected a sleep candidate.
type VetoReason string

const (
	// VetoDisconnect: sleeping the link would split the awake graph, so
	// the demand between its endpoints would have no path (blackholed).
	VetoDisconnect VetoReason = "disconnect"
	// VetoHeadroom: rerouting the link's traffic would push a surviving
	// link beyond the configured utilization cap.
	VetoHeadroom VetoReason = "headroom"
)

// Veto is one guardrail rejection: the policy proposed sleeping Link and
// the SLA check refused.
type Veto struct {
	Link   int
	Reason VetoReason
}

// PlannerOptions tune the per-step greedy scheduler.
type PlannerOptions struct {
	// MaxUtilization is the load cap on surviving links after rerouting
	// (default 0.5, keeping failover headroom).
	MaxUtilization float64
	// MinDwellSteps adds hysteresis: after a link changes state it keeps
	// that state for at least this many steps, except that safety always
	// wins — a sleeping link whose constraints no longer hold wakes
	// immediately. Zero disables hysteresis.
	MinDwellSteps int
}

// StepPlan is one control step's outcome.
type StepPlan struct {
	// Sleeping lists the link IDs asleep after the step, ascending. Nil
	// when nothing sleeps (matching Schedule.Sleeping's convention).
	Sleeping []int
	// Slept and Woke are this step's transitions, in the greedy decision
	// order for Slept and ascending link order for Woke.
	Slept []int
	Woke  []int
	// Vetoed records the guardrail rejections of this step: candidates
	// the greedy policy proposed that failed the connectivity or headroom
	// check. Re-validation failures of already-sleeping links surface as
	// Woke entries, not vetoes — waking for safety is the guardrail
	// working, not being overridden.
	//
	// Vetoed aliases the Planner's scratch buffer and is valid only until
	// the next PlanStep; copy it to retain (a cold backbone vetoes ~100
	// candidates per step, and reusing the buffer keeps the steady-state
	// loop allocation-free).
	Vetoed []Veto
}

// Planner is the reusable greedy scheduler plus SLA guardrail behind
// hypnos.Run, exported so an online controller can drive the exact same
// decision procedure step by step and veto-account its actions. It keeps
// the dense-index graph, the BFS scratch, and the hysteresis state
// between steps; one Planner instance replaces one Run loop.
//
// The guardrail invariant every accepted plan satisfies: the awake part
// of the graph keeps the full topology's connectivity (no blackholed
// demand), and every surviving link carries its own load plus all
// rerouted load within MaxUtilization of its capacity.
type Planner struct {
	topo Topology
	opts PlannerOptions
	g    *graph
	sc   *bfsScratch

	prev    []bool
	dwell   []int
	loads   []float64
	extra   []float64
	asleep  []bool
	blocked []bool // asleep or down; what the BFS must avoid
	order   []int
	vetoes  []Veto // scratch backing StepPlan.Vetoed, reused across steps
}

// NewPlanner indexes the topology and allocates the per-step working set
// once, exactly as Run does for its whole window.
func NewPlanner(topo Topology, opts PlannerOptions) (*Planner, error) {
	if len(topo.Links) == 0 {
		return nil, errors.New("hypnos: topology has no internal links")
	}
	if opts.MaxUtilization == 0 {
		opts.MaxUtilization = 0.5
	}
	g := buildGraph(topo)
	n := len(topo.Links)
	return &Planner{
		topo:    topo,
		opts:    opts,
		g:       g,
		sc:      &bfsScratch{visited: make([]int, len(g.nodes))},
		prev:    make([]bool, n),
		dwell:   make([]int, n),
		loads:   make([]float64, n),
		extra:   make([]float64, n),
		asleep:  make([]bool, n),
		blocked: make([]bool, n),
		order:   make([]int, n),
	}, nil
}

// Sleeping reports whether link id was asleep after the last PlanStep.
func (p *Planner) Sleeping(id int) bool {
	return id >= 0 && id < len(p.prev) && p.prev[id]
}

// PlanStep runs one greedy scheduling step: links are proposed for sleep
// in ascending load order, every proposal passes the guardrail
// (connectivity plus reroute headroom) or is vetoed, and links slept on
// previous steps are re-validated first — hysteresis keeps them down,
// but safety wakes them the moment their constraints fail.
//
// loads is indexed by link ID (bits per second). down, when non-nil,
// marks links that are unavailable at this step (faulted carriers): a
// down link is never proposed for sleep, never carries rerouted traffic,
// and — when it was already sleeping — stays asleep without re-validation
// (waking an interface cannot restore a lost carrier). With down == nil
// the procedure is exactly the Run inner loop.
func (p *Planner) PlanStep(loads []float64, down []bool) StepPlan {
	var plan StepPlan
	p.vetoes = p.vetoes[:0]
	for i := range p.topo.Links {
		p.loads[i] = loads[i]
		p.extra[i] = 0
		p.asleep[i] = false
		p.blocked[i] = down != nil && down[i]
		p.order[i] = i
	}
	sort.Slice(p.order, func(a, b int) bool { return p.loads[p.order[a]] < p.loads[p.order[b]] })

	trySleep := func(id int) (VetoReason, bool) {
		p.asleep[id] = true
		p.blocked[id] = true
		a, b := p.g.ends[id][0], p.g.ends[id][1]
		path, ok := shortestPath(p.g, p.blocked, a, b, p.sc)
		if !ok {
			p.asleep[id] = false // would disconnect
			p.blocked[id] = down != nil && down[id]
			return VetoDisconnect, false
		}
		// Check headroom along the reroute path.
		for _, pid := range path {
			pl := p.topo.Links[pid]
			if p.loads[pid]+p.extra[pid]+p.loads[id] > p.opts.MaxUtilization*pl.Capacity.BitsPerSecond() {
				p.asleep[id] = false
				p.blocked[id] = down != nil && down[id]
				return VetoHeadroom, false
			}
		}
		for _, pid := range path {
			p.extra[pid] += p.loads[id]
		}
		return "", true
	}

	// First pass: re-validate the links already asleep (hysteresis keeps
	// them down, but safety wakes them if constraints fail). A sleeping
	// link whose carrier is down stays asleep as-is: it carries nothing,
	// and waking it cannot bring the carrier back.
	for _, id := range p.order {
		if !p.prev[id] {
			continue
		}
		if down != nil && down[id] {
			p.asleep[id] = true
			continue
		}
		trySleep(id)
	}
	// Second pass: put new links to sleep, unless they woke too recently
	// or their carrier is down.
	for _, id := range p.order {
		if p.prev[id] || p.asleep[id] {
			continue
		}
		if down != nil && down[id] {
			continue
		}
		if p.opts.MinDwellSteps > 0 && p.dwell[id] < p.opts.MinDwellSteps {
			continue
		}
		if reason, ok := trySleep(id); !ok {
			p.vetoes = append(p.vetoes, Veto{Link: id, Reason: reason})
		} else {
			plan.Slept = append(plan.Slept, id)
		}
	}

	count := 0
	for _, a := range p.asleep {
		if a {
			count++
		}
	}
	if count > 0 {
		plan.Sleeping = make([]int, 0, count)
	}
	for id, a := range p.asleep {
		if a {
			plan.Sleeping = append(plan.Sleeping, id)
		}
		if a == p.prev[id] {
			p.dwell[id]++
		} else {
			p.dwell[id] = 1
			if !a {
				plan.Woke = append(plan.Woke, id)
			}
		}
		p.prev[id] = a
	}
	if len(p.vetoes) > 0 {
		plan.Vetoed = p.vetoes
	}
	return plan
}
