// Package hypnos re-implements the Hypnos link-sleeping algorithm [31]
// used as the baseline of §8: given a network topology and its traffic
// over time, decide which internal links can be turned off at each step
// without disconnecting the network or overloading the remaining links,
// and account for the resulting power savings.
//
// The paper's insight is that the savings accounting matters as much as
// the schedule: the literature assumed sleeping a link saves the full
// interface power (Pport + Ptrx on both ends), but since transceivers keep
// drawing Ptrx,in while plugged (§7), only Pport + Ptrx,up is actually
// saved — and without transceiver power models, Ptrx,up is only known to
// lie in [0, Ptrx], giving the 0.4–1.9 % range the paper reports.
package hypnos

import (
	"errors"
	"fmt"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

// Endpoint is one side of a link.
type Endpoint struct {
	Router    string
	Interface string
	Port      model.PortType
	// PPort and PTrxUp are the modelled savings terms for this end
	// (Table 5 averages when no specific model exists).
	PPort  units.Power
	PTrxUp units.Power
	// TrxDatasheet is the transceiver's datasheet power, bounding Ptrx,up
	// from above when the in/up split is unknown.
	TrxDatasheet units.Power
}

// Link is one internal link (both endpoints inside the network).
type Link struct {
	ID       int
	A, B     Endpoint
	Capacity units.BitRate
}

// Topology is the sleepable-link graph.
type Topology struct {
	// Nodes are router names.
	Nodes []string
	// Links are the internal links; external interfaces are not part of
	// the topology (an intra-domain scheme cannot sleep them, §8).
	Links []Link
}

// TrafficFunc returns a link's bidirectional traffic at a time.
type TrafficFunc func(linkID int, t time.Time) units.BitRate

// FromNetwork builds the sleepable topology from the synthetic ISP
// network, using the Table 5 per-port-type power terms and transceiver
// datasheet values — exactly the § 8 method (no per-router lab models are
// assumed for the fleet). It also returns a TrafficFunc backed by the
// network's load model.
func FromNetwork(n *ispnet.Network) (Topology, TrafficFunc, error) {
	topo := Topology{}
	seen := map[string]int{} // "router/iface" -> link ID
	type linkRef struct {
		router string
		iface  *ispnet.Interface
		r      *ispnet.Router
	}
	refs := map[int]linkRef{}
	for _, r := range n.Routers {
		topo.Nodes = append(topo.Nodes, r.Name)
		for i := range r.Interfaces {
			itf := &r.Interfaces[i]
			if itf.Spare || itf.External || itf.PeerRouter == "" {
				continue
			}
			if _, done := seen[r.Name+"/"+itf.Name]; done {
				continue
			}
			peer, ok := n.RouterByName(itf.PeerRouter)
			if !ok {
				return Topology{}, nil, fmt.Errorf("hypnos: unknown peer %s", itf.PeerRouter)
			}
			var peerItf *ispnet.Interface
			for j := range peer.Interfaces {
				if peer.Interfaces[j].Name == itf.PeerInterface {
					peerItf = &peer.Interfaces[j]
				}
			}
			if peerItf == nil {
				return Topology{}, nil, fmt.Errorf("hypnos: missing peer interface %s/%s", peer.Name, itf.PeerInterface)
			}
			id := len(topo.Links)
			link := Link{
				ID:       id,
				A:        endpointFor(r.Name, itf),
				B:        endpointFor(peer.Name, peerItf),
				Capacity: itf.Profile.Speed,
			}
			topo.Links = append(topo.Links, link)
			seen[r.Name+"/"+itf.Name] = id
			seen[peer.Name+"/"+itf.PeerInterface] = id
			refs[id] = linkRef{router: r.Name, iface: itf, r: r}
		}
	}
	traffic := func(linkID int, t time.Time) units.BitRate {
		ref, ok := refs[linkID]
		if !ok {
			return 0
		}
		return n.LoadAt(ref.iface, ref.r, t)
	}
	return topo, traffic, nil
}

func endpointFor(router string, itf *ispnet.Interface) Endpoint {
	ep := Endpoint{Router: router, Interface: itf.Name, Port: itf.Profile.Port}
	if row, ok := model.Table5For(itf.Profile.Port); ok {
		ep.PPort = row.PPort
		ep.PTrxUp = row.PTrxUp
	} else {
		// Port types outside Table 5 (QSFP, RJ45): fall back to the
		// closest class.
		row, _ := model.Table5For(model.QSFP28)
		ep.PPort = row.PPort
		ep.PTrxUp = row.PTrxUp
	}
	if p, ok := model.TransceiverDatasheetPower(itf.Profile.Transceiver, itf.Profile.Speed); ok {
		ep.TrxDatasheet = p
	}
	return ep
}

// Options tune the scheduling run.
type Options struct {
	// Start and Window bound the evaluation (default: the paper's
	// one-month run).
	Start  time.Time
	Window time.Duration
	// Step is the scheduling granularity (default 1 h).
	Step time.Duration
	// MaxUtilization is the load cap on remaining links after rerouting
	// (default 0.5, keeping failover headroom).
	MaxUtilization float64
	// MinDwellSteps adds hysteresis: after a link changes state it keeps
	// that state for at least this many steps, except that safety always
	// wins — a sleeping link whose constraints no longer hold wakes
	// immediately. Zero disables hysteresis. Real deployments need this:
	// port flapping is operationally costly (§6.2's flapping interface is
	// the cautionary tale).
	MinDwellSteps int
}

func (o *Options) applyDefaults() {
	if o.Window == 0 {
		o.Window = 30 * 24 * time.Hour
	}
	if o.Step == 0 {
		o.Step = time.Hour
	}
	if o.MaxUtilization == 0 {
		o.MaxUtilization = 0.5
	}
}

// Schedule is the result of a run: for each step, which links sleep.
type Schedule struct {
	Times    []time.Time
	Sleeping [][]int // link IDs asleep at each step
	topo     Topology
}

// NewSchedule assembles a Schedule from an externally produced decision
// trace over the given topology, so Evaluate and VerifySchedule can
// score schedules the online optimizer (or any other scheduler) realized
// rather than ones Run computed.
func NewSchedule(topo Topology, times []time.Time, sleeping [][]int) Schedule {
	return Schedule{topo: topo, Times: times, Sleeping: sleeping}
}

// MeanSleeping returns the time-averaged number of sleeping links.
func (s Schedule) MeanSleeping() float64 {
	if len(s.Sleeping) == 0 {
		return 0
	}
	var total int
	for _, step := range s.Sleeping {
		total += len(step)
	}
	return float64(total) / float64(len(s.Sleeping))
}

// Run computes the sleeping schedule: at each step, links are greedily
// put to sleep in ascending traffic order, provided the endpoints remain
// connected and the slept traffic reroutes onto the shortest remaining
// path without pushing any link beyond MaxUtilization.
//
// The per-step decision procedure lives in Planner (planner.go), shared
// with the online optimizer: one BFS per sleep candidate per step over a
// dense-index graph, with every per-step and per-BFS buffer reused
// across the whole window — the month-long §8 run allocates the working
// set once instead of per step.
func Run(topo Topology, traffic TrafficFunc, opts Options) (Schedule, error) {
	opts.applyDefaults()
	if opts.Start.IsZero() {
		return Schedule{}, errors.New("hypnos: options need a start time")
	}
	p, err := NewPlanner(topo, PlannerOptions{
		MaxUtilization: opts.MaxUtilization,
		MinDwellSteps:  opts.MinDwellSteps,
	})
	if err != nil {
		return Schedule{}, err
	}
	numSteps := int(opts.Window/opts.Step) + 1
	sched := Schedule{
		topo:     topo,
		Times:    make([]time.Time, 0, numSteps),
		Sleeping: make([][]int, 0, numSteps),
	}
	loads := make([]float64, len(topo.Links))
	end := opts.Start.Add(opts.Window)
	for t := opts.Start; t.Before(end); t = t.Add(opts.Step) {
		for i, l := range topo.Links {
			loads[i] = traffic(l.ID, t).BitsPerSecond()
		}
		plan := p.PlanStep(loads, nil)
		sched.Times = append(sched.Times, t)
		sched.Sleeping = append(sched.Sleeping, plan.Sleeping)
	}
	return sched, nil
}

// Transitions counts the sleep/wake state changes across the schedule —
// the flapping metric hysteresis exists to minimize.
func (s Schedule) Transitions() int {
	if len(s.Sleeping) == 0 {
		return 0
	}
	prev := map[int]bool{}
	total := 0
	for i, step := range s.Sleeping {
		cur := make(map[int]bool, len(step))
		for _, id := range step {
			cur[id] = true
		}
		if i > 0 {
			for id := range cur {
				if !prev[id] {
					total++
				}
			}
			for id := range prev {
				if !cur[id] {
					total++
				}
			}
		}
		prev = cur
	}
	return total
}

// graph is the topology in dense-index space: router names mapped to
// consecutive ints, adjacency lists and link endpoints stored as indices.
// Built once per Run; the per-BFS hot path never touches a map or a
// string.
type graph struct {
	nodes []string
	adj   [][]int  // node index -> incident link IDs
	ends  [][2]int // link ID -> endpoint node indices
}

func buildGraph(topo Topology) *graph {
	g := &graph{}
	idx := make(map[string]int, len(topo.Nodes))
	nodeOf := func(name string) int {
		if i, ok := idx[name]; ok {
			return i
		}
		i := len(g.nodes)
		idx[name] = i
		g.nodes = append(g.nodes, name)
		return i
	}
	for _, name := range topo.Nodes {
		nodeOf(name)
	}
	g.ends = make([][2]int, len(topo.Links))
	for i, l := range topo.Links {
		g.ends[i] = [2]int{nodeOf(l.A.Router), nodeOf(l.B.Router)}
	}
	g.adj = make([][]int, len(g.nodes))
	for _, l := range topo.Links {
		a, b := g.ends[l.ID][0], g.ends[l.ID][1]
		g.adj[a] = append(g.adj[a], l.ID)
		g.adj[b] = append(g.adj[b], l.ID)
	}
	return g
}

// hop is one BFS queue entry; prev indexes into the queue for path
// reconstruction (entries are never removed, the head is a cursor).
type hop struct {
	node int
	via  int
	prev int
}

// bfsScratch holds the buffers one shortestPath call needs, reused across
// calls. visited is a generation-stamped array: bumping gen clears it in
// O(1) instead of reallocating a map per BFS.
type bfsScratch struct {
	visited []int
	gen     int
	queue   []hop
	path    []int
}

// shortestPath BFSes from node a to node b over awake links, returning the
// link IDs of a shortest hop path. The returned slice aliases the scratch
// buffer and is only valid until the next call.
func shortestPath(g *graph, asleep []bool, a, b int, sc *bfsScratch) ([]int, bool) {
	if a == b {
		return nil, true
	}
	sc.gen++
	if len(sc.visited) < len(g.nodes) {
		sc.visited = make([]int, len(g.nodes))
		sc.gen = 1
	}
	sc.queue = sc.queue[:0]
	sc.visited[a] = sc.gen
	sc.queue = append(sc.queue, hop{node: a, via: -1, prev: -1})
	for head := 0; head < len(sc.queue); head++ {
		cur := sc.queue[head]
		for _, id := range g.adj[cur.node] {
			if asleep[id] {
				continue
			}
			next := g.ends[id][0]
			if next == cur.node {
				next = g.ends[id][1]
			}
			if sc.visited[next] == sc.gen {
				continue
			}
			sc.visited[next] = sc.gen
			h := hop{node: next, via: id, prev: head}
			if next == b {
				// Reconstruct.
				sc.path = sc.path[:0]
				for h.via != -1 {
					sc.path = append(sc.path, h.via)
					h = sc.queue[h.prev]
				}
				return sc.path, true
			}
			sc.queue = append(sc.queue, h)
		}
	}
	return nil, false
}

// Savings quantifies what a schedule is worth in watts.
type Savings struct {
	// Naive is the literature's estimate: the full interface power
	// (Pport + full datasheet Ptrx) on both ends of each sleeping link.
	Naive units.Power
	// RefinedLow assumes Ptrx,up = 0 (everything is Ptrx,in): only Pport
	// is saved.
	RefinedLow units.Power
	// RefinedHigh assumes Ptrx,up = Ptrx (nothing is paid while plugged).
	RefinedHigh units.Power
	// Table5 uses the measured per-port-type Ptrx,up averages.
	Table5 units.Power
	// MeanSleepingLinks is the time-averaged count of sleeping links.
	MeanSleepingLinks float64
	// SleepableFraction is MeanSleepingLinks over the internal link count.
	SleepableFraction float64
}

// Evaluate computes the time-averaged savings of a schedule under the
// different accounting models of §8.
func Evaluate(sched Schedule) Savings {
	var s Savings
	if len(sched.Sleeping) == 0 {
		return s
	}
	var naive, low, high, t5 float64
	for _, step := range sched.Sleeping {
		for _, id := range step {
			l := sched.topo.Links[id]
			for _, ep := range []Endpoint{l.A, l.B} {
				naive += ep.PPort.Watts() + ep.TrxDatasheet.Watts()
				low += ep.PPort.Watts()
				high += ep.PPort.Watts() + ep.TrxDatasheet.Watts()
				up := ep.PTrxUp.Watts()
				if up < 0 {
					up = 0
				}
				if max := ep.TrxDatasheet.Watts(); up > max {
					up = max
				}
				t5 += ep.PPort.Watts() + up
			}
		}
	}
	n := float64(len(sched.Sleeping))
	s.Naive = units.Power(naive / n)
	s.RefinedLow = units.Power(low / n)
	s.RefinedHigh = units.Power(high / n)
	s.Table5 = units.Power(t5 / n)
	s.MeanSleepingLinks = sched.MeanSleeping()
	if len(sched.topo.Links) > 0 {
		s.SleepableFraction = s.MeanSleepingLinks / float64(len(sched.topo.Links))
	}
	return s
}

// ExternalShare reports the §8 context numbers for a network: the
// fraction of non-spare interfaces that are external, and the fraction of
// the network's transceiver datasheet power attached to external
// interfaces (the paper finds 51 % and 52 %).
func ExternalShare(n *ispnet.Network) (ifaceFrac, trxPowerFrac float64) {
	var extIf, allIf int
	var extP, allP float64
	for _, r := range n.Routers {
		for _, itf := range r.Interfaces {
			if itf.Spare {
				continue
			}
			allIf++
			p, _ := model.TransceiverDatasheetPower(itf.Profile.Transceiver, itf.Profile.Speed)
			allP += p.Watts()
			if itf.External {
				extIf++
				extP += p.Watts()
			}
		}
	}
	if allIf > 0 {
		ifaceFrac = float64(extIf) / float64(allIf)
	}
	if allP > 0 {
		trxPowerFrac = extP / allP
	}
	return ifaceFrac, trxPowerFrac
}
