package hypnos

import (
	"fmt"
)

// VerifySchedule checks the safety invariants every valid sleeping
// schedule must satisfy, independently of how it was computed:
//
//  1. Connectivity: putting the scheduled links to sleep never splits a
//     connected component of the full topology.
//  2. Capacity sanity: at every step, the traffic of the sleeping links
//     fits into the aggregate spare capacity (maxUtil headroom) of the
//     awake links.
//
// It is used by the property tests and available to users who bring their
// own scheduler.
func VerifySchedule(topo Topology, sched Schedule, traffic TrafficFunc, maxUtil float64) error {
	if maxUtil <= 0 {
		maxUtil = 0.5
	}
	baseComponents := componentCount(topo, nil)
	for i, step := range sched.Sleeping {
		asleep := make([]bool, len(topo.Links))
		for _, id := range step {
			if id < 0 || id >= len(topo.Links) {
				return fmt.Errorf("hypnos: step %d sleeps unknown link %d", i, id)
			}
			if asleep[id] {
				return fmt.Errorf("hypnos: step %d sleeps link %d twice", i, id)
			}
			asleep[id] = true
		}
		if got := componentCount(topo, asleep); got != baseComponents {
			return fmt.Errorf("hypnos: step %d splits the network: %d components, want %d",
				i, got, baseComponents)
		}
		if i >= len(sched.Times) {
			return fmt.Errorf("hypnos: step %d has no timestamp", i)
		}
		t := sched.Times[i]
		var sleptTraffic, spare float64
		for _, l := range topo.Links {
			load := traffic(l.ID, t).BitsPerSecond()
			if asleep[l.ID] {
				sleptTraffic += load
				continue
			}
			headroom := maxUtil*l.Capacity.BitsPerSecond() - load
			if headroom > 0 {
				spare += headroom
			}
		}
		if sleptTraffic > spare {
			return fmt.Errorf("hypnos: step %d sleeps %.0f bps of traffic with only %.0f bps of headroom",
				i, sleptTraffic, spare)
		}
	}
	return nil
}

// Components returns the number of connected components of the topology
// over the links not excluded (excluded may be nil for the full graph;
// it is indexed by link ID and true entries are treated as absent).
// Isolated nodes count as their own components. This is the reachability
// primitive behind the no-blackholed-demand guardrail: a plan that keeps
// Components unchanged leaves every demand a path.
func Components(topo Topology, excluded []bool) int {
	return componentCount(topo, excluded)
}

// componentCount returns the number of connected components over awake
// links (asleep may be nil for the full graph). Isolated nodes count as
// their own components.
func componentCount(topo Topology, asleep []bool) int {
	parent := make(map[string]string, len(topo.Nodes))
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, n := range topo.Nodes {
		parent[n] = n
	}
	for _, l := range topo.Links {
		if asleep != nil && asleep[l.ID] {
			continue
		}
		if _, ok := parent[l.A.Router]; !ok {
			parent[l.A.Router] = l.A.Router
		}
		if _, ok := parent[l.B.Router]; !ok {
			parent[l.B.Router] = l.B.Router
		}
		ra, rb := find(l.A.Router), find(l.B.Router)
		if ra != rb {
			parent[ra] = rb
		}
	}
	roots := map[string]bool{}
	for n := range parent {
		roots[find(n)] = true
	}
	return len(roots)
}
