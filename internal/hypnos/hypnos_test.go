package hypnos

import (
	"testing"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

var g = units.GigabitPerSecond
var start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)

// triangle builds a 3-node ring: every single link is redundant.
func triangle(capacity units.BitRate) Topology {
	ep := func(r, i string) Endpoint {
		return Endpoint{Router: r, Interface: i, Port: model.QSFP28, PPort: 0.53, PTrxUp: 0.126, TrxDatasheet: 4.5}
	}
	return Topology{
		Nodes: []string{"a", "b", "c"},
		Links: []Link{
			{ID: 0, A: ep("a", "e0"), B: ep("b", "e0"), Capacity: capacity},
			{ID: 1, A: ep("b", "e1"), B: ep("c", "e0"), Capacity: capacity},
			{ID: 2, A: ep("c", "e1"), B: ep("a", "e1"), Capacity: capacity},
		},
	}
}

func flatTraffic(bps float64) TrafficFunc {
	return func(int, time.Time) units.BitRate { return units.BitRate(bps) }
}

func opts() Options {
	return Options{Start: start, Window: 2 * time.Hour, Step: time.Hour}
}

func TestRunSleepsRedundantLink(t *testing.T) {
	topo := triangle(100 * g)
	sched, err := Run(topo, flatTraffic(1e9), opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Sleeping) != 2 {
		t.Fatalf("steps = %d, want 2", len(sched.Sleeping))
	}
	// Exactly one link of the triangle can sleep: removing a second would
	// disconnect a node.
	for _, step := range sched.Sleeping {
		if len(step) != 1 {
			t.Errorf("sleeping links = %d, want 1", len(step))
		}
	}
	if sched.MeanSleeping() != 1 {
		t.Errorf("mean sleeping = %v", sched.MeanSleeping())
	}
}

func TestRunRespectsConnectivity(t *testing.T) {
	// A path a-b-c has no redundancy: nothing may sleep.
	topo := triangle(100 * g)
	topo.Links = topo.Links[:2]
	sched, err := Run(topo, flatTraffic(1e9), opts())
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range sched.Sleeping {
		if len(step) != 0 {
			t.Errorf("a tree topology must not sleep links, got %v", step)
		}
	}
}

func TestRunRespectsCapacity(t *testing.T) {
	// Heavy traffic: rerouting any link's load would exceed the 50 %
	// utilization cap on the remaining links, so nothing sleeps.
	topo := triangle(10 * g)
	sched, err := Run(topo, flatTraffic(3e9), opts()) // 3+3 > 5 Gbps cap
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range sched.Sleeping {
		if len(step) != 0 {
			t.Errorf("overloaded ring slept %v", step)
		}
	}
	// Light traffic: one link can sleep.
	sched, err = Run(topo, flatTraffic(1e9), opts())
	if err != nil {
		t.Fatal(err)
	}
	if sched.MeanSleeping() != 1 {
		t.Errorf("light ring mean sleeping = %v, want 1", sched.MeanSleeping())
	}
}

func TestRunErrors(t *testing.T) {
	topo := triangle(10 * g)
	if _, err := Run(topo, flatTraffic(0), Options{}); err == nil {
		t.Error("missing start must error")
	}
	if _, err := Run(Topology{}, flatTraffic(0), opts()); err == nil {
		t.Error("empty topology must error")
	}
}

func TestEvaluateAccountings(t *testing.T) {
	topo := triangle(100 * g)
	sched, err := Run(topo, flatTraffic(1e9), opts())
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(sched)
	// One sleeping link, both ends: naive = 2*(0.53+4.5) = 10.06 W.
	if got := s.Naive.Watts(); got < 10.05 || got > 10.07 {
		t.Errorf("naive = %v, want 10.06", got)
	}
	// Refined low = 2*0.53 = 1.06 W; high equals naive; Table 5 in between.
	if got := s.RefinedLow.Watts(); got < 1.05 || got > 1.07 {
		t.Errorf("refined low = %v, want 1.06", got)
	}
	if s.RefinedHigh != s.Naive {
		t.Errorf("refined high %v must equal naive %v", s.RefinedHigh, s.Naive)
	}
	if s.Table5 <= s.RefinedLow || s.Table5 >= s.RefinedHigh {
		t.Errorf("table5 estimate %v must lie between %v and %v", s.Table5, s.RefinedLow, s.RefinedHigh)
	}
	if s.SleepableFraction < 0.3 || s.SleepableFraction > 0.34 {
		t.Errorf("sleepable fraction = %v, want 1/3", s.SleepableFraction)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if s := Evaluate(Schedule{}); s.Naive != 0 || s.MeanSleepingLinks != 0 {
		t.Errorf("empty schedule savings = %+v", s)
	}
}

func TestFromNetworkTopology(t *testing.T) {
	n, err := ispnet.Build(ispnet.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	topo, traffic, err := FromNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != ispnet.NumRouters {
		t.Errorf("nodes = %d", len(topo.Nodes))
	}
	if len(topo.Links) < 100 {
		t.Errorf("internal links = %d, want a substantial backbone", len(topo.Links))
	}
	// Traffic must be positive for most links during the day.
	noon := start.Add(12 * time.Hour)
	nonzero := 0
	for _, l := range topo.Links {
		if traffic(l.ID, noon) > 0 {
			nonzero++
		}
		if l.Capacity <= 0 {
			t.Errorf("link %d has no capacity", l.ID)
		}
		if l.A.PPort <= 0 || l.B.PPort <= 0 {
			t.Errorf("link %d missing port power", l.ID)
		}
	}
	if nonzero < len(topo.Links)*9/10 {
		t.Errorf("only %d/%d links carry traffic", nonzero, len(topo.Links))
	}
	if traffic(9999, noon) != 0 {
		t.Error("unknown link must carry no traffic")
	}
}

func TestPaperSection8Shape(t *testing.T) {
	// End-to-end §8: run Hypnos for a week over the synthetic network and
	// check the headline shape — savings land well below the naive
	// estimate, in the paper's 80–390 W (0.4–1.9 %) band.
	n, err := ispnet.Build(ispnet.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	topo, traffic, err := FromNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Run(topo, traffic, Options{Start: start, Window: 7 * 24 * time.Hour, Step: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(sched)
	if s.MeanSleepingLinks < 10 {
		t.Fatalf("mean sleeping links = %v; the lightly-loaded network should sleep many", s.MeanSleepingLinks)
	}
	const totalPower = 21900.0 // calibrated fleet power
	lowFrac := s.RefinedLow.Watts() / totalPower
	highFrac := s.RefinedHigh.Watts() / totalPower
	if lowFrac < 0.001 || lowFrac > 0.012 {
		t.Errorf("refined low = %.2f%% of network power, want ≈0.4%%", lowFrac*100)
	}
	if highFrac < 0.005 || highFrac > 0.035 {
		t.Errorf("refined high = %.2f%% of network power, want ≈1.9%%", highFrac*100)
	}
	if s.RefinedLow >= s.Table5 || s.Table5 > s.RefinedHigh {
		t.Errorf("accounting order violated: low %v, table5 %v, high %v",
			s.RefinedLow, s.Table5, s.RefinedHigh)
	}
}

func TestExternalShare(t *testing.T) {
	n, err := ispnet.Build(ispnet.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ifaceFrac, trxFrac := ExternalShare(n)
	// §8: 51 % of interfaces are external and carry 52 % of transceiver power.
	if ifaceFrac < 0.40 || ifaceFrac > 0.62 {
		t.Errorf("external interface share = %.2f, want ≈0.51", ifaceFrac)
	}
	if trxFrac < 0.40 || trxFrac > 0.90 {
		t.Errorf("external transceiver power share = %.2f, want the majority", trxFrac)
	}
	if trxFrac <= ifaceFrac-0.25 {
		t.Errorf("optics concentrate on external links; power share %.2f vs iface share %.2f",
			trxFrac, ifaceFrac)
	}
}

// oscillatingTraffic alternates between light and heavy load each step,
// making sleeping feasible only on even steps.
func oscillatingTraffic(step time.Duration, lightBps, heavyBps float64) TrafficFunc {
	return func(_ int, t time.Time) units.BitRate {
		n := int(t.Sub(start) / step)
		if n%2 == 0 {
			return units.BitRate(lightBps)
		}
		return units.BitRate(heavyBps)
	}
}

func TestHysteresisReducesFlapping(t *testing.T) {
	topo := triangle(10 * g)
	step := time.Hour
	traffic := oscillatingTraffic(step, 1e9, 3e9) // heavy steps forbid sleeping
	o := Options{Start: start, Window: 24 * time.Hour, Step: step}

	plain, err := Run(topo, traffic, o)
	if err != nil {
		t.Fatal(err)
	}
	o.MinDwellSteps = 6
	damped, err := Run(topo, traffic, o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Transitions() == 0 {
		t.Fatal("oscillating traffic should cause flapping without hysteresis")
	}
	if damped.Transitions() >= plain.Transitions() {
		t.Errorf("hysteresis did not reduce transitions: %d vs %d",
			damped.Transitions(), plain.Transitions())
	}
	// Safety still holds under hysteresis.
	if err := VerifySchedule(topo, damped, traffic, 0.5); err != nil {
		t.Errorf("hysteretic schedule unsafe: %v", err)
	}
}

func TestHysteresisSafetyWinsOverDwell(t *testing.T) {
	// Traffic jumps so high that a sleeping link MUST wake even though its
	// dwell has not expired.
	topo := triangle(10 * g)
	step := time.Hour
	traffic := func(_ int, tm time.Time) units.BitRate {
		if tm.Sub(start) < 2*step {
			return 1e8 // sleepable
		}
		return 4e9 // nothing may sleep
	}
	sched, err := Run(topo, traffic, Options{
		Start: start, Window: 5 * time.Hour, Step: step, MinDwellSteps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, step := range sched.Sleeping {
		if i >= 2 && len(step) != 0 {
			t.Errorf("step %d still sleeps %v despite the load surge", i, step)
		}
	}
	if err := VerifySchedule(topo, sched, traffic, 0.5); err != nil {
		t.Error(err)
	}
}

func TestTransitionsCount(t *testing.T) {
	sched := Schedule{Sleeping: [][]int{{0}, {0, 1}, {1}, {}}}
	// step1: +1 (link1 sleeps) → 1; step2: link0 wakes → 1; step3: link1 wakes → 1.
	if got := sched.Transitions(); got != 3 {
		t.Errorf("Transitions = %d, want 3", got)
	}
	if (Schedule{}).Transitions() != 0 {
		t.Error("empty schedule has no transitions")
	}
}
