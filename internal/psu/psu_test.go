package psu

import (
	"math"
	"testing"
	"testing/quick"

	"fantasticjoules/internal/units"
)

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(nil); err == nil {
		t.Error("empty curve must error")
	}
	if _, err := NewCurve([]CurvePoint{{0.5, 1.2}}); err == nil {
		t.Error("efficiency > 1 must error")
	}
	if _, err := NewCurve([]CurvePoint{{0.5, 0}}); err == nil {
		t.Error("zero efficiency must error")
	}
	if _, err := NewCurve([]CurvePoint{{1.5, 0.9}}); err == nil {
		t.Error("load > 1 must error")
	}
}

func TestCurveInterpolation(t *testing.T) {
	c, err := NewCurve([]CurvePoint{{0.2, 0.80}, {0.6, 0.90}})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		load, want float64
	}{
		{0.0, 0.80}, // clamped low
		{0.2, 0.80}, // exact point
		{0.4, 0.85}, // midpoint
		{0.6, 0.90}, // exact point
		{1.0, 0.90}, // clamped high
	}
	for _, tt := range tests {
		if got := c.Efficiency(tt.load); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Efficiency(%v) = %v, want %v", tt.load, got, tt.want)
		}
	}
}

func TestCurveSortsPoints(t *testing.T) {
	c, err := NewCurve([]CurvePoint{{0.8, 0.9}, {0.2, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Efficiency(0.5); got <= 0.8 || got >= 0.9 {
		t.Errorf("Efficiency(0.5) = %v, want interpolated between 0.8 and 0.9", got)
	}
}

func TestZeroCurveLossless(t *testing.T) {
	var c Curve
	if c.Efficiency(0.5) != 1 {
		t.Error("zero-value curve must report perfect efficiency")
	}
}

func TestPFE600Shape(t *testing.T) {
	c := PFE600()
	// Platinum rated: must meet the Platinum set points.
	for _, sp := range Platinum.SetPoints() {
		if got := c.Efficiency(sp.Load); got < sp.Efficiency {
			t.Errorf("PFE600 at %v%% load = %v, below Platinum requirement %v",
				sp.Load*100, got, sp.Efficiency)
		}
	}
	// Peak around mid load, poor at low load.
	if c.Efficiency(0.05) >= c.Efficiency(0.5) {
		t.Error("low-load efficiency must be below mid-load efficiency")
	}
	if c.Efficiency(1.0) >= c.Efficiency(0.55) {
		t.Error("full-load efficiency must be below the mid-load peak")
	}
}

func TestOffsetClamps(t *testing.T) {
	c := PFE600()
	up := c.Offset(0.2)
	if up.Efficiency(0.5) > 1 {
		t.Error("offset curve exceeded efficiency 1")
	}
	down := c.Offset(-5)
	if down.Efficiency(0.5) < 0.01 {
		t.Error("offset curve dropped below floor")
	}
}

func TestCurveMonotoneUnderOffset(t *testing.T) {
	// Offsetting preserves the curve ordering for any pair of loads.
	f := func(delta float64, a, b uint8) bool {
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			return true
		}
		delta = math.Mod(delta, 1)
		c := PFE600()
		o := c.Offset(delta)
		la, lb := float64(a)/255, float64(b)/255
		base := c.Efficiency(la) <= c.Efficiency(lb)
		// Clamping can flatten differences but must never invert strict order
		// by more than the clamp allows; check weak consistency.
		shifted := o.Efficiency(la) <= o.Efficiency(lb)+1e-12
		return !base || shifted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatingStrings(t *testing.T) {
	want := []string{"Bronze", "Silver", "Gold", "Platinum", "Titanium"}
	for i, r := range Ratings() {
		if r.String() != want[i] {
			t.Errorf("Rating %d = %q, want %q", i, r.String(), want[i])
		}
	}
	if Rating(99).String() != "Rating(99)" {
		t.Error("unknown rating formatting")
	}
}

func TestSetPointsOrdered(t *testing.T) {
	// Higher standards require higher efficiency at every shared load.
	levels := Ratings()
	for i := 1; i < len(levels); i++ {
		lo, hi := levels[i-1].SetPoints(), levels[i].SetPoints()
		loAt := func(load float64) (float64, bool) {
			for _, p := range lo {
				if p.Load == load {
					return p.Efficiency, true
				}
			}
			return 0, false
		}
		for _, p := range hi {
			if e, ok := loAt(p.Load); ok && p.Efficiency <= e {
				t.Errorf("%v at %v%% (%v) not above %v (%v)",
					levels[i], p.Load*100, p.Efficiency, levels[i-1], e)
			}
		}
	}
	if Rating(99).SetPoints() != nil {
		t.Error("unknown rating must have no set points")
	}
}

func TestStandardCurveMeetsSetPoints(t *testing.T) {
	for _, r := range Ratings() {
		c := StandardCurve(r)
		for _, sp := range r.SetPoints() {
			if got := c.Efficiency(sp.Load); got < sp.Efficiency-1e-9 {
				t.Errorf("%v standard curve at %v%% = %v, below %v",
					r, sp.Load*100, got, sp.Efficiency)
			}
		}
	}
}

func TestStandardCurvesOrdered(t *testing.T) {
	// Within the clamp region, a higher standard's curve must never fall
	// below a lower standard's.
	levels := Ratings()
	for i := 1; i < len(levels); i++ {
		lo, hi := StandardCurve(levels[i-1]), StandardCurve(levels[i])
		for load := 0.05; load <= 1.0; load += 0.05 {
			if hi.Efficiency(load) < lo.Efficiency(load)-1e-9 {
				t.Errorf("%v below %v at load %v", levels[i], levels[i-1], load)
			}
		}
	}
}

func TestSnapshot(t *testing.T) {
	s := Snapshot{Pin: 100, Pout: 85, Capacity: 500}
	if got := s.Load(); got != 0.17 {
		t.Errorf("Load = %v, want 0.17", got)
	}
	if got := s.Efficiency(); got != 0.85 {
		t.Errorf("Efficiency = %v, want 0.85", got)
	}
	// Pout > Pin is physically impossible; capped at 1 per §9.2.
	capped := Snapshot{Pin: 80, Pout: 90, Capacity: 500}
	if capped.Efficiency() != 1 {
		t.Errorf("capped efficiency = %v, want 1", capped.Efficiency())
	}
	if (Snapshot{Pin: 0, Pout: 10, Capacity: 1}).Efficiency() != 0 {
		t.Error("zero Pin must yield 0 efficiency")
	}
	if (Snapshot{Pout: 10}).Load() != 0 {
		t.Error("zero capacity must yield 0 load")
	}
}

func TestSnapshotCurvePassesThroughPoint(t *testing.T) {
	f := func(pinW, poutFrac, capFrac uint16) bool {
		pin := 10 + float64(pinW%2000)
		pout := pin * (0.5 + 0.5*float64(poutFrac)/65535) // eff in [0.5, 1]
		capacity := pout * (1.5 + 8*float64(capFrac)/65535)
		s := Snapshot{Pin: units.Power(pin), Pout: units.Power(pout), Capacity: units.Power(capacity)}
		got := s.Curve().Efficiency(s.Load())
		// The fitted curve passes through the measured point unless the
		// offset pushes any curve point into the clamp region (the PFE600
		// peaks at 0.942 and bottoms at 0.70).
		delta := s.FitOffset()
		if 0.942+delta > 1 || 0.70+delta < 0.01 {
			return true
		}
		return math.Abs(got-s.Efficiency()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnit(t *testing.T) {
	u, err := NewUnit(600, PFE600())
	if err != nil {
		t.Fatal(err)
	}
	if u.Capacity() != 600 {
		t.Error("Capacity mismatch")
	}
	// At 300 W output (50% load), efficiency is 0.942, so input ≈ 318.47 W.
	in := u.InputFor(300)
	want := 300 / 0.942
	if math.Abs(in.Watts()-want) > 1e-9 {
		t.Errorf("InputFor(300) = %v, want %v", in.Watts(), want)
	}
	if u.InputFor(0) != 0 {
		t.Error("InputFor(0) must be 0")
	}
	if u.InputFor(-5) != 0 {
		t.Error("InputFor(negative) must be 0")
	}
	if _, err := NewUnit(0, PFE600()); err == nil {
		t.Error("zero capacity must error")
	}
}

func TestUnitInputAlwaysAboveOutput(t *testing.T) {
	u, _ := NewUnit(600, PFE600())
	f := func(outW uint16) bool {
		out := units.Power(float64(outW % 600))
		in := u.InputFor(out)
		return in >= out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
