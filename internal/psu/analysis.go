package psu

import (
	"errors"
	"fmt"

	"fantasticjoules/internal/units"
)

// RouterPSUs bundles the PSU snapshots of one deployed router for the
// fleet-level analyses of §9.3.
type RouterPSUs struct {
	// Router is the (anonymized) router name.
	Router string
	// Model is the router hardware model.
	Model string
	// PSUs holds one snapshot per installed power supply.
	PSUs []Snapshot
}

// Savings is the estimated effect of a PSU optimization across a fleet.
type Savings struct {
	// Watts is the absolute input-power reduction; negative values mean
	// the measure costs power.
	Watts units.Power
	// Fraction is Watts divided by the fleet's total input power.
	Fraction float64
}

// String renders savings the way the paper's tables do, e.g. "5% (1156 W)".
func (s Savings) String() string {
	return fmt.Sprintf("%.0f%% (%.0f W)", s.Fraction*100, s.Watts.Watts())
}

// FleetInputPower sums the input (wall) power of every PSU in the fleet.
func FleetInputPower(fleet []RouterPSUs) units.Power {
	var total units.Power
	for _, r := range fleet {
		for _, p := range r.PSUs {
			total += p.Pin
		}
	}
	return total
}

func newSavings(saved, total units.Power) Savings {
	s := Savings{Watts: saved}
	if total > 0 {
		s.Fraction = saved.Watts() / total.Watts()
	}
	return s
}

// SavingsAtStandard estimates the fleet-wide input-power reduction if every
// PSU were at least as efficient as the given 80 Plus level (§9.3.2). PSUs
// already above the standard's curve are left unchanged — efficiencies only
// ever rise.
func SavingsAtStandard(fleet []RouterPSUs, r Rating) Savings {
	std := StandardCurve(r)
	var saved units.Power
	for _, router := range fleet {
		for _, p := range router.PSUs {
			if p.Pin <= 0 || p.Pout <= 0 {
				continue
			}
			e := p.Efficiency()
			target := std.Efficiency(p.Load())
			if target <= e {
				continue
			}
			newPin := units.Power(p.Pout.Watts() / target)
			saved += p.Pin - newPin
		}
	}
	return newSavings(saved, FleetInputPower(fleet))
}

// SavingsSinglePSU estimates the reduction from loading only one PSU per
// router instead of balancing across the redundant pair (§9.3.4). Each
// PSU's efficiency curve is the PFE600 shifted through its measured point;
// the surviving PSU (the router's most efficient candidate) then delivers
// the whole DC load at roughly twice its previous load, and the idle PSU is
// assumed lossless. Routers with a single PSU are unchanged.
func SavingsSinglePSU(fleet []RouterPSUs) Savings {
	return savingsSingle(fleet, nil)
}

// SavingsCombined estimates the effect of both measures at once (§9.3.5):
// one loaded PSU per router, and that PSU meeting at least the given
// 80 Plus level.
func SavingsCombined(fleet []RouterPSUs, r Rating) Savings {
	std := StandardCurve(r)
	return savingsSingle(fleet, &std)
}

// savingsSingle implements the single-PSU consolidation; when std is
// non-nil the surviving PSU's curve is additionally raised to the standard.
func savingsSingle(fleet []RouterPSUs, std *Curve) Savings {
	var saved units.Power
	for _, router := range fleet {
		var totalPin, totalPout units.Power
		live := 0
		for _, p := range router.PSUs {
			if p.Pin <= 0 {
				continue
			}
			live++
			totalPin += p.Pin
			totalPout += p.Pout
		}
		if live == 0 || totalPout <= 0 {
			continue
		}
		// Choose the best surviving candidate: the PSU whose fitted curve
		// yields the lowest input power for the consolidated load.
		bestPin := units.Power(0)
		first := true
		for _, p := range router.PSUs {
			if p.Pin <= 0 || p.Capacity <= 0 {
				continue
			}
			curve := p.Curve()
			newLoad := totalPout.Watts() / p.Capacity.Watts()
			eff := curve.Efficiency(newLoad)
			if std != nil {
				if se := std.Efficiency(newLoad); se > eff {
					eff = se
				}
			}
			candidate := units.Power(totalPout.Watts() / eff)
			if first || candidate < bestPin {
				bestPin = candidate
				first = false
			}
		}
		if first {
			continue
		}
		if live == 1 && std == nil {
			// A single-PSU router cannot consolidate further.
			continue
		}
		saved += totalPin - bestPin
	}
	return newSavings(saved, FleetInputPower(fleet))
}

// CapacityOptions returns the PSU capacities present in the paper's dataset
// (Table 4 columns), in ascending order.
func CapacityOptions() []units.Power {
	return []units.Power{250, 400, 750, 1100, 2000, 2700}
}

// SavingsResize estimates the effect of re-dimensioning every router's PSUs
// (§9.3.3). For each router, the minimal adequate capacity C is the
// smallest option with C ≥ k·lmax, where lmax is the largest per-PSU output
// power on that router; k = 2 preserves resilience to one PSU failure,
// k = 1 trades the margin for savings. Every PSU is then resized to
// max(C, minCapacity) and re-evaluated on its own fitted curve at the new
// load. It returns an error for a non-positive k or an empty option list.
func SavingsResize(fleet []RouterPSUs, k float64, minCapacity units.Power, options []units.Power) (Savings, error) {
	if k <= 0 {
		return Savings{}, fmt.Errorf("psu: non-positive resilience factor %v", k)
	}
	if len(options) == 0 {
		return Savings{}, errors.New("psu: no capacity options")
	}
	var saved units.Power
	for _, router := range fleet {
		var lmax units.Power
		for _, p := range router.PSUs {
			if p.Pout > lmax {
				lmax = p.Pout
			}
		}
		if lmax <= 0 {
			continue
		}
		required := units.Power(k * lmax.Watts())
		adequate := options[len(options)-1]
		for _, opt := range options {
			if opt >= required {
				adequate = opt
				break
			}
		}
		newCap := adequate
		if minCapacity > newCap {
			newCap = minCapacity
		}
		for _, p := range router.PSUs {
			if p.Pin <= 0 || p.Pout <= 0 || p.Capacity <= 0 {
				continue
			}
			curve := p.Curve()
			newLoad := p.Pout.Watts() / newCap.Watts()
			eff := curve.Efficiency(newLoad)
			newPin := units.Power(p.Pout.Watts() / eff)
			saved += p.Pin - newPin
		}
	}
	return newSavings(saved, FleetInputPower(fleet)), nil
}
