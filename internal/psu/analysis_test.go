package psu

import (
	"math"
	"testing"

	"fantasticjoules/internal/units"
)

// fleet with one inefficient lightly-loaded router (two 750 W PSUs) and one
// efficient router.
func testFleet() []RouterPSUs {
	return []RouterPSUs{
		{
			Router: "r1", Model: "8201-32FH",
			PSUs: []Snapshot{
				{Pin: 240, Pout: 180, Capacity: 750}, // 75% efficient at 24% load
				{Pin: 238, Pout: 180, Capacity: 750},
			},
		},
		{
			Router: "r2", Model: "NCS-55A1-24H",
			PSUs: []Snapshot{
				{Pin: 200, Pout: 190, Capacity: 1100}, // 95% efficient
				{Pin: 205, Pout: 190, Capacity: 1100},
			},
		},
	}
}

func TestFleetInputPower(t *testing.T) {
	got := FleetInputPower(testFleet())
	if got != 240+238+200+205 {
		t.Errorf("FleetInputPower = %v", got)
	}
}

func TestSavingsString(t *testing.T) {
	s := Savings{Watts: 1156, Fraction: 0.05}
	if got := s.String(); got != "5% (1156 W)" {
		t.Errorf("String = %q", got)
	}
}

func TestSavingsAtStandardMonotone(t *testing.T) {
	fleet := testFleet()
	prev := units.Power(-1)
	for _, r := range Ratings() {
		s := SavingsAtStandard(fleet, r)
		if s.Watts < prev {
			t.Errorf("savings at %v (%v) below previous level (%v)", r, s.Watts, prev)
		}
		if s.Watts < 0 {
			t.Errorf("raising efficiency can never cost power, got %v at %v", s.Watts, r)
		}
		prev = s.Watts
	}
}

func TestSavingsAtStandardFixesInefficientPSU(t *testing.T) {
	fleet := testFleet()
	s := SavingsAtStandard(fleet, Titanium)
	// r1's PSUs at 75% efficiency and 24% load must be lifted to ≥92%:
	// savings per PSU ≈ 240 - 180/0.93 ≈ 45 W. Expect > 80 W total.
	if s.Watts < 80 {
		t.Errorf("Titanium savings = %v, want > 80 W", s.Watts)
	}
	// r2 is already at ~95%; the efficient router should contribute little.
	justR2 := SavingsAtStandard(fleet[1:], Platinum)
	if justR2.Watts > 5 {
		t.Errorf("efficient router saving = %v, want ≈0", justR2.Watts)
	}
}

func TestSavingsAtStandardSkipsDeadPSUs(t *testing.T) {
	fleet := []RouterPSUs{{Router: "r", PSUs: []Snapshot{{Pin: 0, Pout: 0, Capacity: 750}}}}
	s := SavingsAtStandard(fleet, Titanium)
	if s.Watts != 0 {
		t.Errorf("dead PSU produced savings %v", s.Watts)
	}
}

func TestSavingsSinglePSU(t *testing.T) {
	fleet := testFleet()
	s := SavingsSinglePSU(fleet)
	// Consolidating doubles the load from ~12-25% to ~25-50%, a better
	// point on every curve; savings must be positive.
	if s.Watts <= 0 {
		t.Errorf("single-PSU savings = %v, want > 0", s.Watts)
	}
	if s.Fraction <= 0 || s.Fraction > 0.2 {
		t.Errorf("single-PSU fraction = %v, want small positive", s.Fraction)
	}
}

func TestSavingsSinglePSUSingleSupplyRouter(t *testing.T) {
	fleet := []RouterPSUs{{
		Router: "solo",
		PSUs:   []Snapshot{{Pin: 100, Pout: 90, Capacity: 400}},
	}}
	s := SavingsSinglePSU(fleet)
	if s.Watts != 0 {
		t.Errorf("single-supply router cannot consolidate, got %v", s.Watts)
	}
}

func TestSavingsCombinedExceedsParts(t *testing.T) {
	fleet := testFleet()
	single := SavingsSinglePSU(fleet)
	for _, r := range Ratings() {
		std := SavingsAtStandard(fleet, r)
		both := SavingsCombined(fleet, r)
		// §9.3.5: "the savings of both measures roughly add up"; at minimum
		// the combination must beat either measure alone.
		if both.Watts < std.Watts-1e-9 || both.Watts < single.Watts-1e-9 {
			t.Errorf("%v combined %v < max(standard %v, single %v)",
				r, both.Watts, std.Watts, single.Watts)
		}
	}
}

func TestSavingsResize(t *testing.T) {
	fleet := testFleet()
	opts := CapacityOptions()
	// Small minimum capacity with k=1 should save; forcing huge PSUs should
	// cost (negative savings) relative to today.
	small, err := SavingsResize(fleet, 1, 250, opts)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := SavingsResize(fleet, 2, 2700, opts)
	if err != nil {
		t.Fatal(err)
	}
	if small.Watts <= huge.Watts {
		t.Errorf("right-sizing (%v) must beat over-provisioning (%v)", small.Watts, huge.Watts)
	}
	if small.Watts <= 0 {
		t.Errorf("k=1 tight sizing savings = %v, want > 0", small.Watts)
	}
	if huge.Watts >= 0 {
		t.Errorf("forcing 2700 W PSUs should cost power, got %v", huge.Watts)
	}
}

func TestSavingsResizeKMonotone(t *testing.T) {
	// k-monotonicity only holds while the k=1 sizing keeps the load at or
	// below the efficiency peak (~60 %); choose outputs so that it does:
	// Pout=150 → k=1 picks 250 W (60 % load), k=2 picks 400 W (37.5 %).
	fleet := []RouterPSUs{{
		Router: "r",
		PSUs: []Snapshot{
			{Pin: 200, Pout: 150, Capacity: 750},
			{Pin: 198, Pout: 150, Capacity: 750},
		},
	}}
	opts := CapacityOptions()
	s1, err := SavingsResize(fleet, 1, 250, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SavingsResize(fleet, 2, 250, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Watts > s1.Watts+1e-9 {
		t.Errorf("k=2 (%v) cannot save more than k=1 (%v)", s2.Watts, s1.Watts)
	}
}

func TestSavingsResizeErrors(t *testing.T) {
	if _, err := SavingsResize(nil, 0, 250, CapacityOptions()); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := SavingsResize(nil, 1, 250, nil); err == nil {
		t.Error("empty options must error")
	}
}

func TestSavingsResizeRequiredCapacityRespected(t *testing.T) {
	// One PSU delivering 300 W with k=2 needs ≥600 W, so the 750 W option
	// must be chosen even when the minimum asked for is 250 W; resizing to
	// 750 (same as today) changes nothing.
	fleet := []RouterPSUs{{
		Router: "r",
		PSUs:   []Snapshot{{Pin: 350, Pout: 300, Capacity: 750}},
	}}
	s, err := SavingsResize(fleet, 2, 250, CapacityOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Watts.Watts()) > 1e-9 {
		t.Errorf("resize to identical capacity must be neutral, got %v", s.Watts)
	}
}
