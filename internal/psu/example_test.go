package psu_test

import (
	"fmt"

	"fantasticjoules/internal/psu"
)

// Estimate a deployed PSU's efficiency curve from one sensor snapshot,
// the §9 method: the PFE600 reference curve shifted through the measured
// (load, efficiency) point.
func ExampleSnapshot_Curve() {
	snap := psu.Snapshot{Pin: 240, Pout: 180, Capacity: 750}
	fmt.Printf("measured: %.0f%% efficient at %.0f%% load\n",
		snap.Efficiency()*100, snap.Load()*100)

	curve := snap.Curve()
	fmt.Printf("estimated at 50%% load: %.0f%%\n", curve.Efficiency(0.5)*100)
	// Output:
	// measured: 75% efficient at 24% load
	// estimated at 50% load: 76%
}

// The theoretical curve of a PSU that just meets an 80 Plus level: the
// reference curve shifted to clear every set point (§9.3.2).
func ExampleStandardCurve() {
	for _, r := range []psu.Rating{psu.Bronze, psu.Titanium} {
		c := psu.StandardCurve(r)
		fmt.Printf("%s at 20%% load: %.1f%%\n", r, c.Efficiency(0.2)*100)
	}
	// Output:
	// Bronze at 20% load: 83.3%
	// Titanium at 20% load: 94.0%
}
