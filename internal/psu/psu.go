// Package psu models power supply unit (PSU) conversion efficiency and the
// PSU-level energy-saving analyses of §9 of the paper.
//
// A PSU converts outlet AC into the DC voltage a router needs. The
// conversion efficiency η = Pout/Pin depends on the load (Pout divided by
// the PSU's capacity): it is poor below 10–20 % load, peaks around 50–60 %,
// and declines slightly toward full load. The paper anchors all of its PSU
// reasoning on one published curve — the Platinum-rated PFE600-12-054xA
// found in the EdgeCore Wedge 100BF-32X (Fig. 5) — and models every other
// PSU as that curve plus a constant offset fitted from a single measured
// (load, efficiency) point.
package psu

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fantasticjoules/internal/units"
)

// CurvePoint is one (load, efficiency) sample of an efficiency curve. Load
// and Efficiency are fractions in [0, 1].
type CurvePoint struct {
	Load       float64
	Efficiency float64
}

// Curve is a piecewise-linear PSU efficiency curve over load fraction.
type Curve struct {
	pts []CurvePoint
}

// NewCurve builds a curve from points, which are copied and sorted by load.
// At least one point is required; efficiencies must lie in (0, 1].
func NewCurve(pts []CurvePoint) (Curve, error) {
	if len(pts) == 0 {
		return Curve{}, errors.New("psu: curve needs at least one point")
	}
	cp := make([]CurvePoint, len(pts))
	copy(cp, pts)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Load < cp[j].Load })
	for _, p := range cp {
		if p.Efficiency <= 0 || p.Efficiency > 1 {
			return Curve{}, fmt.Errorf("psu: efficiency %v out of (0,1]", p.Efficiency)
		}
		if p.Load < 0 || p.Load > 1 {
			return Curve{}, fmt.Errorf("psu: load %v out of [0,1]", p.Load)
		}
	}
	return Curve{pts: cp}, nil
}

// Efficiency returns the interpolated efficiency at the given load
// fraction. Loads outside the sampled range are clamped to the nearest
// endpoint; the returned efficiency is always in (0, 1].
func (c Curve) Efficiency(load float64) float64 {
	if len(c.pts) == 0 {
		return 1 // zero-value curve behaves as a lossless supply
	}
	if load <= c.pts[0].Load {
		return c.pts[0].Efficiency
	}
	last := c.pts[len(c.pts)-1]
	if load >= last.Load {
		return last.Efficiency
	}
	// Hand-rolled binary search: sort.Search takes a func value, and the
	// capturing closure would heap-allocate on every wall-power sample.
	i, j := 0, len(c.pts)
	for i < j {
		mid := int(uint(i+j) >> 1)
		if c.pts[mid].Load < load {
			i = mid + 1
		} else {
			j = mid
		}
	}
	lo, hi := c.pts[i-1], c.pts[i]
	frac := (load - lo.Load) / (hi.Load - lo.Load)
	return lo.Efficiency + frac*(hi.Efficiency-lo.Efficiency)
}

// Offset returns the curve shifted by a constant efficiency delta, clamped
// to (0, 1]. This implements the paper's "PFE600 plus a constant offset"
// model for unknown PSUs.
func (c Curve) Offset(delta float64) Curve {
	out := Curve{pts: make([]CurvePoint, len(c.pts))}
	for i, p := range c.pts {
		e := p.Efficiency + delta
		if e > 1 {
			e = 1
		}
		if e < 0.01 {
			e = 0.01
		}
		out.pts[i] = CurvePoint{Load: p.Load, Efficiency: e}
	}
	return out
}

// Points returns a copy of the curve's samples in load order.
func (c Curve) Points() []CurvePoint {
	out := make([]CurvePoint, len(c.pts))
	copy(out, c.pts)
	return out
}

// PFE600 returns the efficiency curve of the Platinum-rated
// PFE600-12-054xA, redrawn from its datasheet as in Fig. 5 of the paper:
// a steep rise out of light load, a peak of ≈94 % near 50–60 % load, and a
// slight decline toward full load.
func PFE600() Curve {
	c, err := NewCurve([]CurvePoint{
		{0.02, 0.70},
		{0.05, 0.825},
		{0.10, 0.885},
		{0.20, 0.925},
		{0.30, 0.936},
		{0.40, 0.940},
		{0.50, 0.942},
		{0.60, 0.942},
		{0.80, 0.936},
		{1.00, 0.925},
	})
	if err != nil {
		panic("psu: invalid built-in PFE600 curve: " + err.Error())
	}
	return c
}

// Rating is an 80 Plus certification level.
type Rating int

// The 80 Plus levels used by the paper (Table 3). The plain 80 Plus level
// is omitted, matching the paper.
const (
	Bronze Rating = iota
	Silver
	Gold
	Platinum
	Titanium
)

// Ratings lists all levels from Bronze to Titanium in ascending order.
func Ratings() []Rating { return []Rating{Bronze, Silver, Gold, Platinum, Titanium} }

// String returns the level name, e.g. "Platinum".
func (r Rating) String() string {
	switch r {
	case Bronze:
		return "Bronze"
	case Silver:
		return "Silver"
	case Gold:
		return "Gold"
	case Platinum:
		return "Platinum"
	case Titanium:
		return "Titanium"
	}
	return fmt.Sprintf("Rating(%d)", int(r))
}

// SetPoints returns the minimum efficiencies a PSU must reach at the
// standard's load points to be certified (115 V internal, non-redundant —
// the variant plotted in Fig. 5). Titanium adds a 10 %-load requirement.
func (r Rating) SetPoints() []CurvePoint {
	switch r {
	case Bronze:
		return []CurvePoint{{0.20, 0.82}, {0.50, 0.85}, {1.00, 0.82}}
	case Silver:
		return []CurvePoint{{0.20, 0.85}, {0.50, 0.88}, {1.00, 0.85}}
	case Gold:
		return []CurvePoint{{0.20, 0.87}, {0.50, 0.90}, {1.00, 0.87}}
	case Platinum:
		return []CurvePoint{{0.20, 0.90}, {0.50, 0.92}, {1.00, 0.89}}
	case Titanium:
		return []CurvePoint{{0.10, 0.90}, {0.20, 0.92}, {0.50, 0.94}, {1.00, 0.90}}
	}
	return nil
}

// StandardCurve returns the theoretical efficiency curve of a PSU that just
// meets the given 80 Plus level, following the paper's method: the PFE600
// curve shifted by the smallest constant that satisfies every set point of
// the standard. The shift may be negative (the PFE600 is itself Platinum
// rated, so the Bronze curve lies below it).
func StandardCurve(r Rating) Curve {
	base := PFE600()
	shift := math.Inf(-1)
	for _, sp := range r.SetPoints() {
		d := sp.Efficiency - base.Efficiency(sp.Load)
		if d > shift {
			shift = d
		}
	}
	return base.Offset(shift)
}

// Snapshot is a one-time reading of a PSU's electrical state, as exported
// by the router's environment sensors (§9.2): input power, output power,
// and the PSU's rated capacity.
type Snapshot struct {
	// Pin is the AC power drawn from the outlet.
	Pin units.Power
	// Pout is the DC power delivered to the router.
	Pout units.Power
	// Capacity is the maximum power the PSU can deliver.
	Capacity units.Power
}

// Load returns the PSU load fraction Pout/Capacity, or 0 for a zero
// capacity.
func (s Snapshot) Load() float64 {
	if s.Capacity <= 0 {
		return 0
	}
	return s.Pout.Watts() / s.Capacity.Watts()
}

// Efficiency returns Pout/Pin capped at 1, following §9.2: some sensors
// report Pout > Pin, which is physically impossible and is capped at 100 %.
// A zero Pin yields 0.
func (s Snapshot) Efficiency() float64 {
	if s.Pin <= 0 {
		return 0
	}
	e := s.Pout.Watts() / s.Pin.Watts()
	if e > 1 {
		return 1
	}
	return e
}

// FitOffset returns the constant offset that places the PFE600 curve
// through this snapshot's (load, efficiency) point — the paper's per-PSU
// curve estimate.
func (s Snapshot) FitOffset() float64 {
	return s.Efficiency() - PFE600().Efficiency(s.Load())
}

// Curve returns the snapshot's estimated efficiency curve (PFE600 shifted
// through the measured point).
func (s Snapshot) Curve() Curve {
	return PFE600().Offset(s.FitOffset())
}

// Unit is a simulated PSU used by the device simulator: a capacity plus an
// efficiency curve. The zero value is unusable; build units with NewUnit.
type Unit struct {
	capacity units.Power
	curve    Curve
}

// NewUnit returns a PSU with the given capacity and curve. Capacity must be
// positive.
func NewUnit(capacity units.Power, curve Curve) (*Unit, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("psu: non-positive capacity %v", capacity)
	}
	return &Unit{capacity: capacity, curve: curve}, nil
}

// Capacity returns the PSU's rated output capacity.
func (u *Unit) Capacity() units.Power { return u.capacity }

// Curve returns the PSU's efficiency curve.
func (u *Unit) Curve() Curve { return u.curve }

// EfficiencyAt returns the conversion efficiency when delivering the given
// output power.
func (u *Unit) EfficiencyAt(out units.Power) float64 {
	return u.curve.Efficiency(out.Watts() / u.capacity.Watts())
}

// InputFor returns the AC input power the PSU draws to deliver the given DC
// output power. Output beyond capacity is still converted (real supplies
// brown out instead, but the simulator never drives them there).
func (u *Unit) InputFor(out units.Power) units.Power {
	if out <= 0 {
		// Real supplies draw a small standby power even with no load; that
		// is captured by evaluating the curve at zero load on a tiny
		// residual draw.
		return 0
	}
	return units.Power(out.Watts() / u.EfficiencyAt(out))
}
