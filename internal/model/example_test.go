package model_test

import (
	"fmt"

	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

// Predict a deployed router's power from its published model: the basic
// §4 workflow.
func ExampleModel_Predict() {
	m, err := model.Published("NCS-55A1-24H")
	if err != nil {
		panic(err)
	}
	g := units.GigabitPerSecond
	dac := model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}

	b, err := m.Predict(model.Config{Interfaces: []model.Interface{
		{
			Profile:            dac,
			TransceiverPresent: true, AdminUp: true, OperUp: true,
			Bits:    50 * g,
			Packets: units.PacketRateFor(50*g, 1500, 24),
		},
		{
			Profile:            dac,
			TransceiverPresent: true, // plugged spare: draws Ptrx,in even when down
		},
	}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("total  %.2f W\n", b.Total().Watts())
	fmt.Printf("static %.2f W, dynamic %.2f W\n", b.Static().Watts(), b.Dynamic().Watts())
	// Output:
	// total  322.26 W
	// static 320.55 W, dynamic 1.71 W
}

// "Down" does not mean "off": sleeping an interface saves only
// Pport + Ptrx,up, not the full interface power (§7, §8).
func ExampleModel_InterfaceSavings() {
	m, err := model.Published("NCS-55A1-24H")
	if err != nil {
		panic(err)
	}
	key := model.ProfileKey{
		Port:        model.QSFP28,
		Transceiver: model.PassiveDAC,
		Speed:       100 * units.GigabitPerSecond,
	}
	s, err := m.InterfaceSavings(key)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sleeping saves %.2f W per interface\n", s.Watts())
	// Output:
	// sleeping saves 0.51 W per interface
}
