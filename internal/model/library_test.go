package model

import (
	"math"
	"testing"

	"fantasticjoules/internal/units"
)

func TestPublishedModelsComplete(t *testing.T) {
	// All eight routers of Tables 2 and 6 must be present.
	want := []string{
		"8201-32FH", "Catalyst3560", "N540X-8Z16G-SYS-A", "NCS-55A1-24H",
		"Nexus93108TC-FX3P", "Nexus9336-FX2", "VSP-4900", "Wedge100BF-32X",
	}
	got := PublishedModels()
	if len(got) != len(want) {
		t.Fatalf("PublishedModels() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("model[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPublishedUnknown(t *testing.T) {
	if _, err := Published("CRS-3"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestPublishedValuesTable2(t *testing.T) {
	m, err := Published("NCS-55A1-24H")
	if err != nil {
		t.Fatal(err)
	}
	if m.PBase != 320 {
		t.Errorf("Pbase = %v, want 320", m.PBase)
	}
	p, ok := m.Profile(ProfileKey{QSFP28, PassiveDAC, 100 * units.GigabitPerSecond})
	if !ok {
		t.Fatal("missing 100G profile")
	}
	if p.PPort != 0.32 || p.PTrxIn != 0.02 || p.PTrxUp != 0.19 || p.POffset != 0.37 {
		t.Errorf("100G profile = %+v", p)
	}
	if math.Abs(p.EBit.Picojoules()-22) > 1e-9 {
		t.Errorf("Ebit = %v pJ, want 22", p.EBit.Picojoules())
	}
	if math.Abs(p.EPkt.Nanojoules()-58) > 1e-9 {
		t.Errorf("Epkt = %v nJ, want 58", p.EPkt.Nanojoules())
	}
}

func TestPublishedValuesTable6(t *testing.T) {
	m, err := Published("Wedge100BF-32X")
	if err != nil {
		t.Fatal(err)
	}
	if m.PBase != 108 {
		t.Errorf("Pbase = %v, want 108", m.PBase)
	}
	p, ok := m.Profile(ProfileKey{QSFP28, PassiveDAC, 25 * units.GigabitPerSecond})
	if !ok {
		t.Fatal("missing 25G profile")
	}
	if math.Abs(p.EBit.Picojoules()-2.7) > 1e-9 || math.Abs(p.EPkt.Nanojoules()-4.7) > 1e-9 {
		t.Errorf("25G profile energies = %v pJ / %v nJ", p.EBit.Picojoules(), p.EPkt.Nanojoules())
	}
}

func TestPublishedN540XKeptAsPublished(t *testing.T) {
	m, err := Published("N540X-8Z16G-SYS-A")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := m.Profile(ProfileKey{SFP, BaseT, 1 * units.GigabitPerSecond})
	if !ok {
		t.Fatal("missing 1G profile")
	}
	if p.EPkt.Nanojoules() >= 0 {
		t.Error("N540X Epkt is published negative; library must not silently fix it")
	}
	// ... and Validate must flag exactly that.
	if err := m.Validate(); err == nil {
		t.Error("N540X model must fail validation on negative Epkt")
	}
}

func TestPublishedTrafficCostMagnitudes(t *testing.T) {
	// §7: "assuming average values of 5 pJ per bit and 15 nJ per packet,
	// forwarding 100 Gbps demands between 3.4 and 0.6 W for 64 B and
	// 1500 B packets". Verify the arithmetic with the paper's averages.
	ebit := 5 * units.Picojoule
	epkt := 15 * units.Nanojoule
	r := 100 * units.GigabitPerSecond
	for _, tc := range []struct {
		size   units.ByteSize
		lo, hi float64
	}{
		{64, 3.2, 3.6},
		{1500, 0.5, 0.8},
	} {
		p := units.PacketRateFor(r, tc.size, 0) // the paper counts L as the full frame
		w := ebit.Joules()*r.BitsPerSecond() + epkt.Joules()*p.PacketsPerSecond()
		if w < tc.lo || w > tc.hi {
			t.Errorf("traffic power at %v = %v W, want in [%v, %v]", tc.size, w, tc.lo, tc.hi)
		}
	}
}

func TestTable5(t *testing.T) {
	rows := Table5()
	if len(rows) != 4 {
		t.Fatalf("Table5 rows = %d, want 4", len(rows))
	}
	q, ok := Table5For(QSFP28)
	if !ok {
		t.Fatal("missing QSFP28")
	}
	if q.PPort != 0.53 || q.PTrxUp != 0.126 {
		t.Errorf("QSFP28 row = %+v", q)
	}
	if _, ok := Table5For(QSFP); ok {
		t.Error("QSFP (non-28) is not in Table 5")
	}
}

func TestTransceiverDatasheetPower(t *testing.T) {
	p, ok := TransceiverDatasheetPower(FR4, 400*units.GigabitPerSecond)
	if !ok || p != 12 {
		t.Errorf("400G FR4 = %v, %v; want 12 W (cited in §6.2)", p, ok)
	}
	if _, ok := TransceiverDatasheetPower("ZR", 400*units.GigabitPerSecond); ok {
		t.Error("unknown transceiver must report !ok")
	}
}

func TestPublishedModelsIndependent(t *testing.T) {
	// Published returns independent copies of the library map entries —
	// mutating one must not leak into a second lookup.
	a, _ := Published("8201-32FH")
	a.AddProfile(InterfaceProfile{Key: ProfileKey{RJ45, BaseT, units.GigabitPerSecond}})
	b, _ := Published("8201-32FH")
	if _, ok := b.Profile(ProfileKey{RJ45, BaseT, units.GigabitPerSecond}); ok {
		t.Error("mutation of a published model leaked into the library")
	}
}
