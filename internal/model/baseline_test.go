package model

import (
	"math"
	"testing"
	"testing/quick"

	"fantasticjoules/internal/units"
)

func testBaseline(t *testing.T) *DatasheetBaseline {
	t.Helper()
	b, err := NewDatasheetBaseline("X-1", 300, 600, units.TerabitPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBaselineValidation(t *testing.T) {
	cases := []struct {
		idle, max float64
		capacity  units.BitRate
	}{
		{0, 600, units.TerabitPerSecond},   // no idle
		{300, 200, units.TerabitPerSecond}, // max below idle
		{300, 600, 0},                      // no capacity
	}
	for i, c := range cases {
		if _, err := NewDatasheetBaseline("x", units.Power(c.idle), units.Power(c.max), c.capacity); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBaselineInterpolation(t *testing.T) {
	b := testBaseline(t)
	tests := []struct {
		traffic units.BitRate
		want    float64
	}{
		{0, 300},
		{-5, 300},
		{500 * units.GigabitPerSecond, 450}, // half capacity
		{units.TerabitPerSecond, 600},       // full
		{3 * units.TerabitPerSecond, 600},   // clamped
	}
	for _, tt := range tests {
		if got := b.PredictPower(tt.traffic); math.Abs(got.Watts()-tt.want) > 1e-9 {
			t.Errorf("PredictPower(%v) = %v, want %v", tt.traffic, got.Watts(), tt.want)
		}
	}
}

func TestBaselineMonotoneProperty(t *testing.T) {
	b := testBaseline(t)
	f := func(a, c uint32) bool {
		lo := units.BitRate(a) * units.MegabitPerSecond
		hi := units.BitRate(c) * units.MegabitPerSecond
		if lo > hi {
			lo, hi = hi, lo
		}
		return b.PredictPower(lo) <= b.PredictPower(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaselineBlindToConfiguration(t *testing.T) {
	// The structural limitation the paper calls out: the baseline cannot
	// distinguish a router full of powered transceivers from an empty one
	// at the same traffic level, while the refined model can.
	b := testBaseline(t)
	if b.PredictPower(0) != b.PredictPower(0) {
		t.Fatal("baseline must be deterministic")
	}
	m := testModel()
	empty := Config{}
	full := Config{}
	for i := 0; i < 10; i++ {
		full.Interfaces = append(full.Interfaces, Interface{
			Profile: key100G, TransceiverPresent: true, AdminUp: true, OperUp: true,
		})
	}
	pEmpty, err := m.PredictPower(empty)
	if err != nil {
		t.Fatal(err)
	}
	pFull, err := m.PredictPower(full)
	if err != nil {
		t.Fatal(err)
	}
	if pFull <= pEmpty {
		t.Error("refined model must separate the configurations")
	}
}
