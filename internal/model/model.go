// Package model implements the router power model of §4 of the paper — the
// primary contribution. Router power is the sum of a static part, set by
// the configuration (which interfaces exist, carry transceivers, and are
// up), and a dynamic part driven by traffic:
//
//	P = Psta(C) + Pdyn(C, L)                                   (Eq. 1)
//	Psta = Pbase + Σ_i (Pport(c_i) + Ptrx,in + Ptrx,up(c_i))    (Eq. 2–4)
//	Pdyn = Σ_i (Ebit·r_i + Epkt·p_i + Poffset(c_i))             (Eq. 5–6)
//
// Each combination of port type, transceiver type, and configured speed has
// its own interface profile carrying the six per-interface terms; Pbase is
// the single chassis-wide constant. The model deliberately omits
// temperature, fans, PSU conversion losses, and control-plane load (§4.3) —
// those fold into Pbase and surface as a constant offset against external
// measurements, exactly as the paper observes in Fig. 4.
package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fantasticjoules/internal/units"
)

// PortType names a physical port cage, e.g. "QSFP28" or "SFP+".
type PortType string

// Port types appearing in the paper's models (Tables 2, 5 and 6).
const (
	SFP    PortType = "SFP"
	SFPP   PortType = "SFP+"
	QSFP   PortType = "QSFP"
	QSFP28 PortType = "QSFP28"
	QSFPDD PortType = "QSFP-DD"
	RJ45   PortType = "RJ45"
)

// TransceiverType names a pluggable transceiver family, e.g. passive
// direct-attach copper or LR optics.
type TransceiverType string

// Transceiver types appearing in the paper's models.
const (
	PassiveDAC TransceiverType = "Passive DAC"
	LR         TransceiverType = "LR"
	LR4        TransceiverType = "LR4"
	FR4        TransceiverType = "FR4"
	BaseT      TransceiverType = "T"
)

// ProfileKey identifies one interface power profile: the port type, the
// transceiver plugged into it, and the configured line rate.
type ProfileKey struct {
	Port        PortType
	Transceiver TransceiverType
	Speed       units.BitRate
}

// String renders the key, e.g. "QSFP28/Passive DAC@100 Gbps".
func (k ProfileKey) String() string {
	return fmt.Sprintf("%s/%s@%s", k.Port, k.Transceiver, k.Speed)
}

// InterfaceProfile carries the six per-interface power terms of the model
// for one ProfileKey.
type InterfaceProfile struct {
	Key ProfileKey
	// PPort is the power the router itself spends on an activated port.
	PPort units.Power
	// PTrxIn is the power a transceiver draws as soon as it is plugged
	// into the port, even with the port disabled ("down" ≠ "off", §7).
	PTrxIn units.Power
	// PTrxUp is the additional transceiver power once the interface is up.
	PTrxUp units.Power
	// EBit is the energy to forward one bit.
	EBit units.Energy
	// EPkt is the energy to process one packet header.
	EPkt units.Energy
	// POffset is the traffic-independent power step between an interface
	// carrying almost no traffic and one carrying none at all (e.g. SerDes
	// lines waking up).
	POffset units.Power
}

// Model is a complete power model for one router model: the chassis
// constant plus one profile per interface class. Build models with New and
// AddProfile, or load a published one from the library.
//
// A Model is effectively immutable once assembled: Predict, PredictPower,
// and the other read methods never write, so a fully built model may be
// shared by any number of goroutines without locking. Only AddProfile
// mutates, and must not race with readers.
type Model struct {
	// RouterModel is the hardware model name, e.g. "8201-32FH".
	RouterModel string
	// PBase is the chassis power with no transceivers and no configuration.
	PBase units.Power
	// PLinecard optionally extends the model to modular chassis (§4.3
	// future work): power per installed linecard type.
	PLinecard map[string]units.Power

	profiles map[ProfileKey]InterfaceProfile
}

// New returns an empty model for the named router with the given base
// power.
func New(routerModel string, pbase units.Power) *Model {
	return &Model{
		RouterModel: routerModel,
		PBase:       pbase,
		profiles:    make(map[ProfileKey]InterfaceProfile),
	}
}

// AddProfile registers (or replaces) the profile for its key.
func (m *Model) AddProfile(p InterfaceProfile) {
	if m.profiles == nil {
		m.profiles = make(map[ProfileKey]InterfaceProfile)
	}
	m.profiles[p.Key] = p
}

// Profile returns the profile for the key.
func (m *Model) Profile(k ProfileKey) (InterfaceProfile, bool) {
	p, ok := m.profiles[k]
	return p, ok
}

// Profiles returns all registered profiles sorted by key string, for
// deterministic rendering.
func (m *Model) Profiles() []InterfaceProfile {
	out := make([]InterfaceProfile, 0, len(m.profiles))
	for _, p := range m.profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// ErrUnknownProfile is wrapped by prediction errors when an interface
// references a profile the model does not have.
var ErrUnknownProfile = errors.New("model: unknown interface profile")

// Interface is the modelled state of one router interface: which profile
// it belongs to, its configuration, and its traffic load. Rates are the
// sums over both directions, as in the paper.
type Interface struct {
	// Name is the interface name, used only in error messages.
	Name string
	// Profile selects the interface power profile.
	Profile ProfileKey
	// TransceiverPresent reports whether a transceiver is physically
	// plugged in, regardless of configuration.
	TransceiverPresent bool
	// AdminUp reports whether the port is activated in configuration.
	AdminUp bool
	// OperUp reports whether the interface is operationally up.
	OperUp bool
	// Bits is the bidirectional traffic bit rate.
	Bits units.BitRate
	// Packets is the bidirectional packet rate.
	Packets units.PacketRate
}

// Breakdown decomposes a power prediction into the model's terms.
type Breakdown struct {
	Base     units.Power
	Port     units.Power
	TrxIn    units.Power
	TrxUp    units.Power
	Traffic  units.Power
	Offset   units.Power
	Linecard units.Power
}

// Static is the configuration-driven share: Base + Port + TrxIn + TrxUp +
// Linecard.
func (b Breakdown) Static() units.Power {
	return b.Base + b.Port + b.TrxIn + b.TrxUp + b.Linecard
}

// Dynamic is the traffic-driven share: Traffic + Offset.
func (b Breakdown) Dynamic() units.Power { return b.Traffic + b.Offset }

// Total is the predicted router power.
func (b Breakdown) Total() units.Power { return b.Static() + b.Dynamic() }

// String renders the breakdown in one line.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %s (base %s, port %s, trx-in %s, trx-up %s",
		b.Total(), b.Base, b.Port, b.TrxIn, b.TrxUp)
	if b.Linecard != 0 {
		fmt.Fprintf(&sb, ", linecard %s", b.Linecard)
	}
	fmt.Fprintf(&sb, ", traffic %s, offset %s)", b.Traffic, b.Offset)
	return sb.String()
}

// Config is a router configuration plus load: the interface vector C and
// load vector L of Eq. (1), and optionally installed linecards for the
// modular-chassis extension.
type Config struct {
	Interfaces []Interface
	// Linecards maps linecard type to installed count; requires the model
	// to have a PLinecard entry for each type.
	Linecards map[string]int
}

// Predict evaluates the model on a configuration and returns the term
// breakdown. It fails if any interface references an unknown profile or
// any linecard type is missing from the model.
func (m *Model) Predict(cfg Config) (Breakdown, error) {
	b := Breakdown{Base: m.PBase}
	for i, itf := range cfg.Interfaces {
		p, ok := m.profiles[itf.Profile]
		if !ok {
			name := itf.Name
			if name == "" {
				name = fmt.Sprintf("#%d", i)
			}
			return Breakdown{}, fmt.Errorf("interface %s: %w: %s", name, ErrUnknownProfile, itf.Profile)
		}
		if itf.TransceiverPresent {
			b.TrxIn += p.PTrxIn
		}
		if itf.AdminUp {
			b.Port += p.PPort
		}
		if itf.OperUp {
			b.TrxUp += p.PTrxUp
			if itf.Bits > 0 || itf.Packets > 0 {
				b.Traffic += units.Power(p.EBit.Joules()*itf.Bits.BitsPerSecond() +
					p.EPkt.Joules()*itf.Packets.PacketsPerSecond())
				b.Offset += p.POffset
			}
		}
	}
	for lc, n := range cfg.Linecards {
		pw, ok := m.PLinecard[lc]
		if !ok {
			return Breakdown{}, fmt.Errorf("linecard %q: %w", lc, ErrUnknownProfile)
		}
		b.Linecard += units.Power(float64(n) * pw.Watts())
	}
	return b, nil
}

// PredictPower is Predict reduced to the total.
func (m *Model) PredictPower(cfg Config) (units.Power, error) {
	b, err := m.Predict(cfg)
	if err != nil {
		return 0, err
	}
	return b.Total(), nil
}

// InterfaceSavings returns the power the model predicts is saved by taking
// one interface of the given profile down (§8): Pport + Ptrx,up — not the
// full Pinterface, because Ptrx,in keeps being paid while the transceiver
// stays plugged in.
func (m *Model) InterfaceSavings(k ProfileKey) (units.Power, error) {
	p, ok := m.profiles[k]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownProfile, k)
	}
	return p.PPort + p.PTrxUp, nil
}

// Validate performs sanity checks a freshly derived model should pass:
// non-negative base power and per-bit energy, and finite terms. Tiny
// negatives within regression noise are tolerated (a derived Ptrx,in of
// −3 mW just means the true value is ≈0). It returns a joined error
// listing every violation (the paper's own N540X model has a −48 nJ Epkt,
// flagged there as an imprecise low-speed derivation — such models fail
// validation and the caller decides).
func (m *Model) Validate() error {
	const (
		powerNoise  units.Power  = 0.02    // 20 mW
		energyNoise units.Energy = 0.5e-12 // 0.5 pJ
		pktNoise    units.Energy = 1e-9    // 1 nJ
	)
	var errs []error
	if m.PBase < 0 {
		errs = append(errs, fmt.Errorf("model: negative Pbase %v", m.PBase))
	}
	for _, p := range m.Profiles() {
		if p.EBit < -energyNoise {
			errs = append(errs, fmt.Errorf("model: %s: negative Ebit %v", p.Key, p.EBit))
		}
		if p.EPkt < -pktNoise {
			errs = append(errs, fmt.Errorf("model: %s: negative Epkt %v", p.Key, p.EPkt))
		}
		if p.PTrxIn < -powerNoise {
			errs = append(errs, fmt.Errorf("model: %s: negative Ptrx,in %v", p.Key, p.PTrxIn))
		}
	}
	return errors.Join(errs...)
}
