package model

import (
	"testing"
	"testing/quick"

	"fantasticjoules/internal/units"
)

// Monotonicity: with non-negative energy terms, more traffic never costs
// less power.
func TestPredictMonotoneInLoad(t *testing.T) {
	m := testModel()
	f := func(r1, r2 uint32) bool {
		lo, hi := float64(r1%200), float64(r2%200)
		if lo > hi {
			lo, hi = hi, lo
		}
		mk := func(gbps float64) Config {
			bits := units.BitRate(gbps) * units.GigabitPerSecond
			return Config{Interfaces: []Interface{{
				Profile: key100G, TransceiverPresent: true, AdminUp: true, OperUp: true,
				Bits:    bits,
				Packets: units.PacketRateFor(bits, 512, 24),
			}}}
		}
		pLo, err1 := m.PredictPower(mk(lo))
		pHi, err2 := m.PredictPower(mk(hi))
		if err1 != nil || err2 != nil {
			return false
		}
		return pLo <= pHi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Monotonicity in configuration: each activation step (plug, admin-up,
// oper-up) never reduces power when all profile terms are non-negative.
func TestPredictMonotoneInState(t *testing.T) {
	m := testModel()
	states := []Interface{
		{Profile: key100G},
		{Profile: key100G, TransceiverPresent: true},
		{Profile: key100G, TransceiverPresent: true, AdminUp: true},
		{Profile: key100G, TransceiverPresent: true, AdminUp: true, OperUp: true},
		{Profile: key100G, TransceiverPresent: true, AdminUp: true, OperUp: true, Packets: 1},
	}
	prev := units.Power(-1)
	for i, itf := range states {
		p, err := m.PredictPower(Config{Interfaces: []Interface{itf}})
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Errorf("state %d reduced power: %v after %v", i, p, prev)
		}
		prev = p
	}
}

// Breakdown consistency: the term sums always equal the total.
func TestBreakdownSumsProperty(t *testing.T) {
	m := testModel()
	m.PLinecard = map[string]units.Power{"LC": 50}
	f := func(n uint8, gbps uint16, cards uint8) bool {
		cfg := Config{Linecards: map[string]int{"LC": int(cards % 8)}}
		for i := 0; i < int(n%12); i++ {
			bits := units.BitRate(gbps%100) * units.GigabitPerSecond
			cfg.Interfaces = append(cfg.Interfaces, Interface{
				Profile: key100G, TransceiverPresent: true, AdminUp: true, OperUp: i%2 == 0,
				Bits:    bits,
				Packets: units.PacketRateFor(bits, 1500, 24),
			})
		}
		b, err := m.Predict(cfg)
		if err != nil {
			return false
		}
		lhs := b.Total().Watts()
		rhs := b.Static().Watts() + b.Dynamic().Watts()
		return units.NearlyEqual(lhs, rhs, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
