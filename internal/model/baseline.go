package model

import (
	"fmt"

	"fantasticjoules/internal/units"
)

// DatasheetBaseline is the datasheet-driven router power model of the
// §2-cited prior work ([16, 33]): power interpolates linearly between the
// datasheet idle/typical value and the maximum value with the router's
// throughput utilization. It needs no lab access — and, as the paper
// argues, it cannot see interface state, transceivers, or per-packet
// costs. It exists here as the quantitative baseline the refined model is
// compared against.
type DatasheetBaseline struct {
	// RouterModel is the hardware model name.
	RouterModel string
	// Idle is the datasheet "typical" (or idle) power.
	Idle units.Power
	// Max is the datasheet maximum power.
	Max units.Power
	// Capacity is the datasheet maximum throughput.
	Capacity units.BitRate
}

// NewDatasheetBaseline validates and builds a baseline model.
func NewDatasheetBaseline(routerModel string, idle, max units.Power, capacity units.BitRate) (*DatasheetBaseline, error) {
	if idle <= 0 {
		return nil, fmt.Errorf("model: baseline %s: non-positive idle power %v", routerModel, idle)
	}
	if max < idle {
		return nil, fmt.Errorf("model: baseline %s: max %v below idle %v", routerModel, max, idle)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("model: baseline %s: non-positive capacity %v", routerModel, capacity)
	}
	return &DatasheetBaseline{RouterModel: routerModel, Idle: idle, Max: max, Capacity: capacity}, nil
}

// PredictPower returns the baseline's estimate at a given total carried
// traffic (bidirectional sum across the router). Utilization above 100 %
// clamps to Max.
func (b *DatasheetBaseline) PredictPower(traffic units.BitRate) units.Power {
	if traffic <= 0 {
		return b.Idle
	}
	util := traffic.BitsPerSecond() / b.Capacity.BitsPerSecond()
	if util > 1 {
		util = 1
	}
	return b.Idle + units.Power(util*(b.Max.Watts()-b.Idle.Watts()))
}
