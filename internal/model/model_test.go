package model

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"fantasticjoules/internal/units"
)

var key100G = ProfileKey{Port: QSFP28, Transceiver: PassiveDAC, Speed: 100 * units.GigabitPerSecond}

func testModel() *Model {
	m := New("test-router", 100)
	m.AddProfile(InterfaceProfile{
		Key:     key100G,
		PPort:   1.0,
		PTrxIn:  0.5,
		PTrxUp:  0.25,
		EBit:    10 * units.Picojoule,
		EPkt:    20 * units.Nanojoule,
		POffset: 0.1,
	})
	return m
}

func TestPredictEmptyConfig(t *testing.T) {
	m := testModel()
	b, err := m.Predict(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() != 100 {
		t.Errorf("empty config power = %v, want Pbase 100", b.Total())
	}
	if b.Static() != 100 || b.Dynamic() != 0 {
		t.Errorf("static/dynamic = %v/%v", b.Static(), b.Dynamic())
	}
}

func TestPredictStates(t *testing.T) {
	m := testModel()
	tests := []struct {
		name string
		itf  Interface
		want float64
	}{
		{"absent", Interface{Profile: key100G}, 100},
		{"plugged only", Interface{Profile: key100G, TransceiverPresent: true}, 100.5},
		{"admin up, oper down", Interface{Profile: key100G, TransceiverPresent: true, AdminUp: true}, 101.5},
		{"fully up, no traffic", Interface{Profile: key100G, TransceiverPresent: true, AdminUp: true, OperUp: true}, 101.75},
	}
	for _, tt := range tests {
		got, err := m.PredictPower(Config{Interfaces: []Interface{tt.itf}})
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if math.Abs(got.Watts()-tt.want) > 1e-12 {
			t.Errorf("%s: power = %v, want %v", tt.name, got.Watts(), tt.want)
		}
	}
}

func TestPredictTraffic(t *testing.T) {
	m := testModel()
	itf := Interface{
		Profile:            key100G,
		TransceiverPresent: true,
		AdminUp:            true,
		OperUp:             true,
		Bits:               100 * units.GigabitPerSecond,
		Packets:            1e6,
	}
	b, err := m.Predict(Config{Interfaces: []Interface{itf}})
	if err != nil {
		t.Fatal(err)
	}
	// Ebit*r = 10e-12 * 1e11 = 1 W; Epkt*p = 20e-9 * 1e6 = 0.02 W.
	if math.Abs(b.Traffic.Watts()-1.02) > 1e-12 {
		t.Errorf("Traffic = %v, want 1.02", b.Traffic.Watts())
	}
	if b.Offset.Watts() != 0.1 {
		t.Errorf("Offset = %v, want 0.1 (interface carries traffic)", b.Offset.Watts())
	}
	want := 100 + 1 + 0.5 + 0.25 + 1.02 + 0.1
	if math.Abs(b.Total().Watts()-want) > 1e-12 {
		t.Errorf("Total = %v, want %v", b.Total().Watts(), want)
	}
}

func TestPoffsetOnlyWithTraffic(t *testing.T) {
	m := testModel()
	up := Interface{Profile: key100G, TransceiverPresent: true, AdminUp: true, OperUp: true}
	b, err := m.Predict(Config{Interfaces: []Interface{up}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Offset != 0 {
		t.Errorf("idle up interface must not pay Poffset, got %v", b.Offset)
	}
	up.Packets = 1 // 1 pkt/s — the paper's definition of "almost no traffic"
	b, err = m.Predict(Config{Interfaces: []Interface{up}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Offset.Watts() != 0.1 {
		t.Errorf("interface at 1 pkt/s must pay Poffset, got %v", b.Offset)
	}
}

func TestPredictUnknownProfile(t *testing.T) {
	m := testModel()
	_, err := m.PredictPower(Config{Interfaces: []Interface{{
		Name:    "et-0/0/0",
		Profile: ProfileKey{Port: SFP, Transceiver: LR, Speed: 10 * units.GigabitPerSecond},
	}}})
	if !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("err = %v, want ErrUnknownProfile", err)
	}
	if err == nil || !strings.Contains(err.Error(), "et-0/0/0") {
		t.Errorf("error should name the interface: %v", err)
	}
}

func TestPredictLinecards(t *testing.T) {
	m := testModel()
	m.PLinecard = map[string]units.Power{"LC-48x10G": 75}
	got, err := m.PredictPower(Config{Linecards: map[string]int{"LC-48x10G": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 250 {
		t.Errorf("power with 2 linecards = %v, want 250", got)
	}
	_, err = m.PredictPower(Config{Linecards: map[string]int{"LC-unknown": 1}})
	if !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("unknown linecard err = %v", err)
	}
}

func TestPredictAdditivityProperty(t *testing.T) {
	// The model is additive over interfaces: P(A ∪ B) - Pbase equals
	// (P(A)-Pbase) + (P(B)-Pbase).
	m := testModel()
	f := func(n uint8, rGbps uint16) bool {
		mk := func(k int) []Interface {
			ifs := make([]Interface, k)
			for i := range ifs {
				ifs[i] = Interface{
					Profile: key100G, TransceiverPresent: true, AdminUp: true, OperUp: true,
					Bits:    units.BitRate(rGbps) * units.GigabitPerSecond,
					Packets: units.PacketRate(rGbps) * 1000,
				}
			}
			return ifs
		}
		k := int(n%16) + 1
		pa, err1 := m.PredictPower(Config{Interfaces: mk(k)})
		pb, err2 := m.PredictPower(Config{Interfaces: mk(1)})
		if err1 != nil || err2 != nil {
			return false
		}
		lhs := pa.Watts() - m.PBase.Watts()
		rhs := float64(k) * (pb.Watts() - m.PBase.Watts())
		return units.NearlyEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterfaceSavings(t *testing.T) {
	m := testModel()
	s, err := m.InterfaceSavings(key100G)
	if err != nil {
		t.Fatal(err)
	}
	// Savings = Pport + Ptrx,up = 1.25 — NOT including Ptrx,in (§7: "down"
	// does not mean "off").
	if s.Watts() != 1.25 {
		t.Errorf("InterfaceSavings = %v, want 1.25", s.Watts())
	}
	if _, err := m.InterfaceSavings(ProfileKey{Port: RJ45}); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("unknown profile err = %v", err)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Base: 100, Port: 1, TrxIn: 0.5, TrxUp: 0.25, Traffic: 1, Offset: 0.1}
	s := b.String()
	if !strings.Contains(s, "base 100 W") || !strings.Contains(s, "traffic 1 W") {
		t.Errorf("Breakdown.String() = %q", s)
	}
	if strings.Contains(s, "linecard") {
		t.Error("zero linecard share must be omitted")
	}
	b.Linecard = 75
	if !strings.Contains(b.String(), "linecard 75 W") {
		t.Error("non-zero linecard share must be printed")
	}
}

func TestValidate(t *testing.T) {
	m := testModel()
	if err := m.Validate(); err != nil {
		t.Errorf("healthy model must validate: %v", err)
	}
	bad := New("bad", -1)
	bad.AddProfile(InterfaceProfile{Key: key100G, EBit: -1, EPkt: -1, PTrxIn: -1})
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid model must fail validation")
	}
	for _, frag := range []string{"Pbase", "Ebit", "Epkt", "Ptrx,in"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("validation error missing %q: %v", frag, err)
		}
	}
}

func TestProfilesSorted(t *testing.T) {
	m, err := Published("NCS-55A1-24H")
	if err != nil {
		t.Fatal(err)
	}
	ps := m.Profiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d, want 3", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Key.String() >= ps[i].Key.String() {
			t.Error("Profiles() must be sorted")
		}
	}
}

func TestProfileKeyString(t *testing.T) {
	if got := key100G.String(); got != "QSFP28/Passive DAC@100 Gbps" {
		t.Errorf("key = %q", got)
	}
}

func TestZeroValueModelAddProfile(t *testing.T) {
	var m Model
	m.AddProfile(InterfaceProfile{Key: key100G, PPort: 1})
	if _, ok := m.Profile(key100G); !ok {
		t.Error("AddProfile on zero-value model must work")
	}
}
