package model

import (
	"fmt"
	"sort"

	"fantasticjoules/internal/units"
)

// The published power models of the paper (Table 2 and Table 6), usable as
// a library without re-running the lab methodology. All values are
// verbatim from the paper; the N540X model's negative Epkt is kept as
// published (the paper flags it as an imprecise low-speed derivation).

func profile(port PortType, trx TransceiverType, speed units.BitRate,
	pport, ptrxin, ptrxup float64, ebitPJ, epktNJ, poffset float64) InterfaceProfile {
	return InterfaceProfile{
		Key:     ProfileKey{Port: port, Transceiver: trx, Speed: speed},
		PPort:   units.Power(pport),
		PTrxIn:  units.Power(ptrxin),
		PTrxUp:  units.Power(ptrxup),
		EBit:    units.Energy(ebitPJ) * units.Picojoule,
		EPkt:    units.Energy(epktNJ) * units.Nanojoule,
		POffset: units.Power(poffset),
	}
}

// Published returns the paper's model for the named router (Tables 2 and
// 6), or an error listing the known names.
func Published(routerModel string) (*Model, error) {
	m, ok := published()[routerModel]
	if !ok {
		return nil, fmt.Errorf("model: no published model for %q (known: %v)",
			routerModel, PublishedModels())
	}
	return m, nil
}

// PublishedModels lists the router models with published power models, in
// sorted order.
func PublishedModels() []string {
	lib := published()
	names := make([]string, 0, len(lib))
	for n := range lib {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func published() map[string]*Model {
	g := units.GigabitPerSecond
	lib := make(map[string]*Model)

	add := func(name string, pbase float64, profiles ...InterfaceProfile) {
		m := New(name, units.Power(pbase))
		for _, p := range profiles {
			m.AddProfile(p)
		}
		lib[name] = m
	}

	// Table 2 (a): Cisco NCS-55A1-24H.
	add("NCS-55A1-24H", 320,
		profile(QSFP28, PassiveDAC, 100*g, 0.32, 0.02, 0.19, 22, 58, 0.37),
		profile(QSFP28, PassiveDAC, 50*g, 0.18, 0.02, 0.16, 21, 57, 0.34),
		profile(QSFP28, PassiveDAC, 25*g, 0.10, 0.02, 0.08, 21, 55, 0.21),
	)

	// Table 2 (b): Cisco Nexus 9336C-FX2.
	add("Nexus9336-FX2", 285,
		profile(QSFP28, LR, 100*g, 1.9, 2.79, -0.06, 8, 24, -0.43),
		profile(QSFP28, PassiveDAC, 100*g, 1.13, 0.09, -0.02, 8, 26, 0.07),
	)

	// Table 2 (c): Cisco 8201-32FH.
	add("8201-32FH", 253,
		profile(QSFP, PassiveDAC, 100*g, 0.94, 0.35, 0.21, 3, 13, -0.04),
	)

	// Table 2 (d): Cisco N540X-8Z16G-SYS-A. The negative Epkt is published
	// as-is; the paper notes the low-speed derivation is imprecise and the
	// resulting errors negligible on this device.
	add("N540X-8Z16G-SYS-A", 33,
		profile(SFP, BaseT, 1*g, -0.0, 3.41, 0.0, 37, -48, 0.01),
	)

	// Table 6 (a): EdgeCore Wedge 100BF-32X.
	add("Wedge100BF-32X", 108,
		profile(QSFP28, PassiveDAC, 100*g, 0.88, 0, 0.69, 1.7, 7.2, 0),
		profile(QSFP28, PassiveDAC, 50*g, 0.21, 0, 0.31, 2.5, 5.6, 0.05),
		profile(QSFP28, PassiveDAC, 25*g, 0.21, 0, 0.1, 2.7, 4.7, 0.06),
	)

	// Table 6 (b): Cisco Nexus 93108TC-FX3P.
	add("Nexus93108TC-FX3P", 147,
		profile(QSFP28, PassiveDAC, 100*g, 0.17, 0.11, 0.23, 5.4, 21.2, 0),
		profile(QSFP28, PassiveDAC, 40*g, 0.07, 0.11, 0.16, 6.5, 17.4, 0.03),
		profile(RJ45, BaseT, 10*g, 2.06, 0.11, 0, 6.7, 16.9, -0.03),
		profile(RJ45, BaseT, 1*g, 0.93, 0.11, 0, 33.8, 18.2, -0.03),
	)

	// Table 6 (c): Extreme Switch VSP-4900.
	add("VSP-4900", 8.2,
		profile(SFPP, BaseT, 10*g, 0.08, 0.06, 0, 25.6, 26.5, 0.04),
	)

	// Table 6 (d): Cisco Catalyst 3560.
	add("Catalyst3560", 40,
		profile(RJ45, BaseT, 0.1*g, 0.21, 0, 0, 15.7, 193.1, -0.01),
	)

	return lib
}

// PortTypePower holds the per-port-type constants the paper averages
// across its models for the link-sleeping evaluation (Table 5).
type PortTypePower struct {
	Port   PortType
	PPort  units.Power
	PTrxUp units.Power
}

// Table5 returns the Pport and Ptrx,up values used per port type in the
// §8 link-sleeping evaluation.
func Table5() []PortTypePower {
	return []PortTypePower{
		{Port: SFP, PPort: 0.05, PTrxUp: 0.005},
		{Port: SFPP, PPort: 0.55, PTrxUp: -0.016},
		{Port: QSFP28, PPort: 0.53, PTrxUp: 0.126},
		{Port: QSFPDD, PPort: 1.82, PTrxUp: -0.069},
	}
}

// Table5For returns the Table 5 entry for a port type.
func Table5For(port PortType) (PortTypePower, bool) {
	for _, p := range Table5() {
		if p.Port == port {
			return p, true
		}
	}
	return PortTypePower{}, false
}

// TransceiverDatasheetPower returns the typical datasheet power draw of
// common transceiver modules, used by §8 to bound Ptrx where no lab model
// exists. Values follow vendor datasheets (e.g. the 400G FR4 drawing the
// 12 W cited in §6.2).
func TransceiverDatasheetPower(trx TransceiverType, speed units.BitRate) (units.Power, bool) {
	g := units.GigabitPerSecond
	type key struct {
		t TransceiverType
		s units.BitRate
	}
	table := map[key]units.Power{
		{PassiveDAC, 400 * g}: 0.5,
		{PassiveDAC, 100 * g}: 0.5,
		{PassiveDAC, 40 * g}:  0.4,
		{PassiveDAC, 25 * g}:  0.3,
		{PassiveDAC, 10 * g}:  0.2,
		{FR4, 400 * g}:        12,
		{LR4, 100 * g}:        4.5,
		{LR4, 40 * g}:         3.5,
		{LR, 100 * g}:         4.5,
		{LR, 25 * g}:          1.2,
		{LR, 10 * g}:          1.0,
		{BaseT, 10 * g}:       2.5,
		{BaseT, 1 * g}:        1.0,
	}
	p, ok := table[key{trx, speed}]
	return p, ok
}
