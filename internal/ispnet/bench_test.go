package ispnet

import (
	"testing"
	"time"
)

// benchSimulate times a cold fleet simulation — build plus replay — at the
// suite's working resolution over one week, at a fixed worker count.
func benchSimulate(b *testing.B, workers int) {
	b.Helper()
	cfg := Config{
		Seed:          42,
		Duration:      7 * 24 * time.Hour,
		SNMPStep:      15 * time.Minute,
		AutopowerStep: 5 * time.Minute,
		Workers:       workers,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSerial is the Workers=1 reference path.
func BenchmarkSimulateSerial(b *testing.B) { benchSimulate(b, 1) }

// BenchmarkSimulateParallel uses the default GOMAXPROCS-sized pool; the
// ratio to BenchmarkSimulateSerial is the sharding speedup on this
// machine.
func BenchmarkSimulateParallel(b *testing.B) { benchSimulate(b, 0) }
