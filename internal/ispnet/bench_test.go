package ispnet

import (
	"testing"
	"time"

	"fantasticjoules/internal/timeseries"
)

// benchSimulate times a cold fleet simulation — build plus replay — at the
// suite's working resolution over one week, at a fixed worker count.
func benchSimulate(b *testing.B, workers int) {
	b.Helper()
	cfg := Config{
		Seed:          42,
		Duration:      7 * 24 * time.Hour,
		SNMPStep:      15 * time.Minute,
		AutopowerStep: 5 * time.Minute,
		Workers:       workers,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSerial is the Workers=1 reference path.
func BenchmarkSimulateSerial(b *testing.B) { benchSimulate(b, 1) }

// BenchmarkSimulateParallel uses the default GOMAXPROCS-sized pool; the
// ratio to BenchmarkSimulateSerial is the sharding speedup on this
// machine.
func BenchmarkSimulateParallel(b *testing.B) { benchSimulate(b, 0) }

// benchSimulateStream times the bounded-memory streaming path — build,
// replay, spill — and reports simulated joules per wall-clock second, the
// fleet-throughput figure EXPERIMENTS.md tracks per fleet size.
func benchSimulateStream(b *testing.B, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	var joules float64
	for i := 0; i < b.N; i++ {
		var sink DiscardSink
		ds, err := SimulateStream(cfg, &sink)
		if err != nil {
			b.Fatal(err)
		}
		joules += timeseries.IntegratePower(ds.TotalPower)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(joules/sec, "joules/s")
	}
}

// BenchmarkSimulateStream measures streaming throughput across fleet
// sizes: the calibrated 107-router build at full study resolution, and
// generated 1k/10k fleets at coarser grids sized so one iteration stays
// in benchmark territory.
func BenchmarkSimulateStream(b *testing.B) {
	b.Run("routers=107", func(b *testing.B) {
		benchSimulateStream(b, Config{
			Seed:          42,
			Duration:      7 * 24 * time.Hour,
			SNMPStep:      15 * time.Minute,
			AutopowerStep: 5 * time.Minute,
		})
	})
	b.Run("routers=1k", func(b *testing.B) {
		benchSimulateStream(b, Config{
			Seed:          42,
			Routers:       1000,
			Duration:      2 * 24 * time.Hour,
			SNMPStep:      30 * time.Minute,
			AutopowerStep: 30 * time.Minute,
		})
	})
	b.Run("routers=10k", func(b *testing.B) {
		benchSimulateStream(b, Config{
			Seed:          42,
			Routers:       10000,
			Duration:      24 * time.Hour,
			SNMPStep:      time.Hour,
			AutopowerStep: time.Hour,
		})
	})
}
