package ispnet

import (
	"testing"
	"time"
)

// TestFullResolutionWindow runs the paper's full 9-week study window at
// the deployed 5-minute SNMP cadence with 1-minute Autopower sampling —
// the resolution of the actual dataset, which the suite could not afford
// before the fleet replay was sharded across routers. It exercises the
// parallel path explicitly (Workers: 4) and guards that the default
// config scales beyond the coarse steps the quick tests use; skipped
// under -short.
func TestFullResolutionWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution simulation skipped in -short mode")
	}
	const window = 9 * 7 * 24 * time.Hour
	ds, err := Simulate(Config{
		Seed:          42,
		Duration:      window,
		SNMPStep:      5 * time.Minute,
		AutopowerStep: time.Minute,
		Workers:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := int(window / (5 * time.Minute))
	if ds.TotalPower.Len() != wantSteps {
		t.Errorf("power samples = %d, want %d", ds.TotalPower.Len(), wantSteps)
	}
	if mean := ds.TotalPower.Mean(); mean < 20000 || mean > 23000 {
		t.Errorf("total power = %.0f W at full resolution", mean)
	}
	for name, ap := range ds.Autopower {
		want := int(window / time.Minute)
		if ap.Len() != want {
			t.Errorf("%s autopower samples = %d, want %d", name, ap.Len(), want)
		}
	}
	// The full window sees every Fig. 4 event plus (de)commissioning.
	if len(ds.Events) < 5 {
		t.Errorf("events = %d, want the Fig. 4 set", len(ds.Events))
	}
	if len(ds.PSUSnapshots) != NumRouters-2 {
		t.Errorf("snapshots = %d, want %d (mid-window fleet)", len(ds.PSUSnapshots), NumRouters-2)
	}
}
