package ispnet

import (
	"testing"
	"time"
)

// TestFullResolutionWindow runs two weeks at the deployed 5-minute SNMP
// cadence — the resolution of the paper's actual dataset. It is the
// slow-path guard that the default config scales beyond the coarse steps
// the quick tests use; skipped under -short.
func TestFullResolutionWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution simulation skipped in -short mode")
	}
	ds, err := Simulate(Config{
		Seed:          42,
		Duration:      14 * 24 * time.Hour,
		SNMPStep:      5 * time.Minute,
		AutopowerStep: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := int(14 * 24 * time.Hour / (5 * time.Minute))
	if ds.TotalPower.Len() != wantSteps {
		t.Errorf("power samples = %d, want %d", ds.TotalPower.Len(), wantSteps)
	}
	if mean := ds.TotalPower.Mean(); mean < 20500 || mean > 23000 {
		t.Errorf("total power = %.0f W at full resolution", mean)
	}
	for name, ap := range ds.Autopower {
		want := 14 * 24 * 60
		if ap.Len() != want {
			t.Errorf("%s autopower samples = %d, want %d", name, ap.Len(), want)
		}
	}
}
