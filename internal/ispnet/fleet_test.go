package ispnet

import (
	"math/rand"
	"testing"
	"time"
)

// TestFleetColdMatchesSimulate pins the retained-state entry point to the
// batch path: a fresh Fleet's dataset is bit-identical to Simulate.
func TestFleetColdMatchesSimulate(t *testing.T) {
	want, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, f.Dataset(), want)
}

// TestFleetResimulateGolden is the incremental-correctness golden test:
// over the full 9-week window — with every built-in Fig. 4 event firing —
// a fixed perturbation batch applied through Perturb+Resimulate must
// reproduce, bit for bit, a cold SimulateWithEvents over the merged
// event list.
func TestFleetResimulateGolden(t *testing.T) {
	f, err := NewFleet(fullCfg())
	if err != nil {
		t.Fatal(err)
	}
	extra := goldenPerturbation(t, f.Network())
	if err := f.Perturb(extra...); err != nil {
		t.Fatal(err)
	}
	got, err := f.Resimulate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := SimulateWithEvents(fullCfg(), extra)
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, got, want)

	// Resimulate with nothing pending is a no-op returning the same
	// dataset object.
	again, err := f.Resimulate()
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatal("no-op Resimulate rebuilt the dataset")
	}
}

// goldenPerturbation builds a fixed three-router perturbation batch that
// exercises every structural op: an interface taken down and brought back,
// a load scale on an instrumented router, and a PSU power-cycle.
func goldenPerturbation(t *testing.T, n *Network) []FleetEvent {
	t.Helper()
	start := n.Config.Start
	plain := ""
	for _, r := range n.Routers {
		if !r.Autopower && len(r.Interfaces) > 0 {
			plain = r.Name
			break
		}
	}
	if plain == "" {
		t.Fatal("no uninstrumented router with interfaces")
	}
	r := n.byName[plain]
	var iface string
	for _, itf := range r.Interfaces {
		if !itf.Spare {
			iface = itf.Name
			break
		}
	}
	if iface == "" {
		t.Fatalf("no configured interface on %s", plain)
	}
	auto := n.AutopowerRouters()
	if len(auto) < 2 {
		t.Fatal("want at least two instrumented routers")
	}
	return []FleetEvent{
		{At: start.Add(10 * 24 * time.Hour), Router: plain, Op: OpAdminDown, Iface: iface},
		{At: start.Add(20 * 24 * time.Hour), Router: plain, Op: OpAdminUp, Iface: iface},
		{At: start.Add(15 * 24 * time.Hour), Router: auto[0].Name, Op: OpScaleLoad, Factor: 1.5},
		{At: start.Add(30 * 24 * time.Hour), Router: auto[1].Name, Op: OpPowerCycle, PSU: 0},
	}
}

// TestFleetResimulatePropertyRandom is the property test of the
// incremental contract: for random event batches over random routers —
// applied across multiple Perturb/Resimulate rounds — the final dataset
// is bit-identical to one cold SimulateWithEvents holding the merged
// event list, at Workers=1 and Workers=8.
func TestFleetResimulatePropertyRandom(t *testing.T) {
	for _, workers := range []int{1, 8} {
		for trial := int64(0); trial < 3; trial++ {
			cfg := quickCfg()
			cfg.Workers = workers
			rng := rand.New(rand.NewSource(4000 + trial))

			f, err := NewFleet(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var all []FleetEvent
			rounds := 1 + rng.Intn(3)
			for round := 0; round < rounds; round++ {
				batch := randomEvents(rng, f.Network(), 1+rng.Intn(5))
				all = append(all, batch...)
				if err := f.Perturb(batch...); err != nil {
					t.Fatal(err)
				}
				if _, err := f.Resimulate(); err != nil {
					t.Fatal(err)
				}
			}
			want, err := SimulateWithEvents(cfg, all)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("workers=%d trial=%d: %d events over %d rounds", workers, trial, len(all), rounds)
			datasetsIdentical(t, f.Dataset(), want)
		}
	}
}

// randomEvents draws a batch of valid perturbations against the current
// fleet. Ops are limited to mutations that cannot fail at apply time on
// an arbitrary router (no unplug/add, whose preconditions depend on the
// router's remaining ports).
func randomEvents(rng *rand.Rand, n *Network, count int) []FleetEvent {
	var evs []FleetEvent
	start, dur := n.Config.Start, n.Config.Duration
	for len(evs) < count {
		r := n.Routers[rng.Intn(len(n.Routers))]
		at := start.Add(time.Duration(rng.Int63n(int64(dur))))
		switch rng.Intn(4) {
		case 0, 1:
			var names []string
			for _, itf := range r.Interfaces {
				if !itf.Spare {
					names = append(names, itf.Name)
				}
			}
			if len(names) == 0 {
				continue
			}
			iface := names[rng.Intn(len(names))]
			op := OpAdminDown
			if rng.Intn(2) == 0 {
				op = OpAdminUp
			}
			evs = append(evs, FleetEvent{At: at, Router: r.Name, Op: op, Iface: iface})
		case 2:
			evs = append(evs, FleetEvent{
				At: at, Router: r.Name, Op: OpScaleLoad,
				Factor: 0.5 + rng.Float64(),
			})
		case 3:
			evs = append(evs, FleetEvent{At: at, Router: r.Name, Op: OpPowerCycle, PSU: 0})
		}
	}
	return evs
}

// TestFleetShardCounters checks the dirty/reused telemetry: a cold build
// replays the whole fleet, a 1-router perturbation replays exactly one
// shard and reuses the rest.
func TestFleetShardCounters(t *testing.T) {
	replayed0 := metricShardsReplayed.Value()
	reused0 := metricShardsReused.Value()

	f, err := NewFleet(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := metricShardsReplayed.Value() - replayed0; got != NumRouters {
		t.Fatalf("cold build replayed %d shards, want %d", got, NumRouters)
	}
	if got := metricShardsReused.Value() - reused0; got != 0 {
		t.Fatalf("cold build reused %d shards, want 0", got)
	}

	target := f.Network().Routers[0]
	if err := f.Perturb(FleetEvent{
		At: f.cfg.Start.Add(24 * time.Hour), Router: target.Name,
		Op: OpScaleLoad, Factor: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if f.DirtyRouters() != 1 {
		t.Fatalf("dirty = %d, want 1", f.DirtyRouters())
	}
	replayed1 := metricShardsReplayed.Value()
	reused1 := metricShardsReused.Value()
	if _, err := f.Resimulate(); err != nil {
		t.Fatal(err)
	}
	if got := metricShardsReplayed.Value() - replayed1; got != 1 {
		t.Fatalf("resimulate replayed %d shards, want 1", got)
	}
	if got := metricShardsReused.Value() - reused1; got != NumRouters-1 {
		t.Fatalf("resimulate reused %d shards, want %d", got, NumRouters-1)
	}
	if f.DirtyRouters() != 0 {
		t.Fatalf("dirty after resimulate = %d, want 0", f.DirtyRouters())
	}
}

// TestFleetPerturbValidates checks batch-atomic validation: a batch with
// one bad event queues nothing.
func TestFleetPerturbValidates(t *testing.T) {
	f, err := NewFleet(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	good := FleetEvent{
		At: f.cfg.Start, Router: f.Network().Routers[0].Name,
		Op: OpScaleLoad, Factor: 2,
	}
	for _, bad := range []FleetEvent{
		{At: f.cfg.Start, Router: "no-such-router", Op: OpScaleLoad, Factor: 2},
		{At: f.cfg.Start, Router: good.Router, Op: "warp-core-breach"},
		{At: f.cfg.Start, Router: good.Router, Op: OpScaleLoad, Factor: -1},
		{At: f.cfg.Start, Router: good.Router, Op: OpAdminDown},
	} {
		if err := f.Perturb(good, bad); err == nil {
			t.Fatalf("Perturb accepted bad event %+v", bad)
		}
		if f.DirtyRouters() != 0 {
			t.Fatalf("bad batch left %d routers dirty", f.DirtyRouters())
		}
	}
}
