package ispnet

import (
	"testing"
	"time"
)

// TestSortScheduleStableOnTies checks that events due at the same instant
// keep their schedule (append) order after sorting — the apply-order
// guarantee the simulation gives at every step.
func TestSortScheduleStableOnTies(t *testing.T) {
	at := time.Date(2024, 9, 10, 0, 0, 0, 0, time.UTC)
	later := at.Add(24 * time.Hour)
	evs := []scheduledEvent{
		{at: later, router: "r1", desc: "r1 late"},
		{at: at, router: "r1", desc: "r1 first"},
		{at: at, router: "r2", desc: "r2 first"},
		{at: at, router: "r1", desc: "r1 second"},
		{at: at, router: "r2", desc: "r2 second"},
	}
	sortSchedule(evs)

	wantOrder := []string{"r1 first", "r2 first", "r1 second", "r2 second", "r1 late"}
	for i, want := range wantOrder {
		if evs[i].desc != want {
			t.Fatalf("sorted[%d] = %q, want %q", i, evs[i].desc, want)
		}
	}
}

// TestPartitionEventsPreservesPerRouterOrder checks that splitting the
// global schedule into per-router queues never reorders a router's own
// events, ties included.
func TestPartitionEventsPreservesPerRouterOrder(t *testing.T) {
	at := time.Date(2024, 9, 10, 0, 0, 0, 0, time.UTC)
	evs := []scheduledEvent{
		{at: at, router: "r1", desc: "a"},
		{at: at, router: "r2", desc: "b"},
		{at: at, router: "r1", desc: "c"},
		{at: at.Add(time.Hour), router: "r2", desc: "d"},
		{at: at.Add(time.Hour), router: "r1", desc: "e"},
	}
	sortSchedule(evs)
	byRouter := partitionEvents(evs)

	want := map[string][]string{
		"r1": {"a", "c", "e"},
		"r2": {"b", "d"},
	}
	for router, descs := range want {
		got := byRouter[router]
		if len(got) != len(descs) {
			t.Fatalf("%s: %d events, want %d", router, len(got), len(descs))
		}
		for i, d := range descs {
			if got[i].desc != d {
				t.Fatalf("%s[%d] = %q, want %q", router, i, got[i].desc, d)
			}
		}
	}
}

// TestRealSchedulePartitionConsistent checks the invariants on the real
// Fig. 4 schedule: the global schedule is time-sorted, and each router's
// filtered queue is the subsequence of the global schedule belonging to
// that router, in the same relative order.
func TestRealSchedulePartitionConsistent(t *testing.T) {
	n, err := Build(fullCfg())
	if err != nil {
		t.Fatal(err)
	}
	evs := n.scheduleEvents()
	if len(evs) < 5 {
		t.Fatalf("events = %d, want the Fig. 4 set", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].at.Before(evs[i-1].at) {
			t.Fatalf("schedule not time-sorted at %d: %v after %v", i, evs[i].at, evs[i-1].at)
		}
	}

	byRouter := partitionEvents(evs)
	// Walking the global schedule must replay each per-router queue front
	// to back — i.e. filtering never reorders a router's own events.
	cursor := make(map[string]int)
	total := 0
	for _, e := range evs {
		q := byRouter[e.router]
		i := cursor[e.router]
		if i >= len(q) || q[i].desc != e.desc || !q[i].at.Equal(e.at) {
			t.Fatalf("per-router queue for %s out of order at global event %q", e.router, e.desc)
		}
		cursor[e.router] = i + 1
		total++
	}
	for router, q := range byRouter {
		if cursor[router] != len(q) {
			t.Fatalf("%s: %d events unconsumed", router, len(q)-cursor[router])
		}
	}
	if total != len(evs) {
		t.Fatalf("partition lost events: %d vs %d", total, len(evs))
	}
}

// TestFlapRepairOrdering checks that a down/up pair on the same interface
// applies in schedule order end to end: after the full window the repaired
// interface must be admin-up again (the day-54 re-enable lands after the
// day-51 disable).
func TestFlapRepairOrdering(t *testing.T) {
	ds, err := Simulate(fullCfg())
	if err != nil {
		t.Fatal(err)
	}
	var r *Router
	for _, cand := range ds.Network.AutopowerRouters() {
		if cand.Device.Model() == "8201-32FH" {
			r = cand
		}
	}
	if r == nil {
		t.Fatal("no instrumented 8201-32FH")
	}
	// Find the flapped DAC from the event log and check its final state.
	var flapped bool
	for _, e := range ds.Events {
		if e.Router == r.Name && e.Description == "repaired interface brought back up" {
			flapped = true
		}
	}
	if !flapped {
		t.Fatal("repair event missing from the schedule")
	}
	downDACs := 0
	for _, itf := range r.Interfaces {
		if itf.Spare {
			continue
		}
		_, admin, _, _, err := r.Device.InterfaceState(itf.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !admin && itf.Profile.Transceiver == "Passive DAC" {
			downDACs++
		}
	}
	if downDACs != 0 {
		t.Errorf("%d configured DACs still admin-down after the repair window", downDACs)
	}
}
