package ispnet

import (
	"testing"
	"time"
)

// TestTierSplitProperty sweeps every fleet size from the minimum to 10k:
// the split must be exact by construction — tiers sum to the requested
// router count — with every tier at or above its connectivity minimum,
// and the access tier must dominate (the hierarchy is a pyramid) once
// sizes leave the clamp regime.
func TestTierSplitProperty(t *testing.T) {
	for routers := hierMinRouters; routers <= 10000; routers++ {
		nCore, nMetro, nAccess, err := tierSplit(routers)
		if err != nil {
			t.Fatalf("tierSplit(%d): %v", routers, err)
		}
		if sum := nCore + nMetro + nAccess; sum != routers {
			t.Fatalf("tierSplit(%d) = %d+%d+%d = %d, want exact sum", routers, nCore, nMetro, nAccess, sum)
		}
		for tier, nx := range map[string]int{"core": nCore, "metro": nMetro, "access": nAccess} {
			if nx < tierMin {
				t.Fatalf("tierSplit(%d): %s tier %d below connectivity minimum %d", routers, tier, nx, tierMin)
			}
		}
		if routers >= 20 && (nAccess < nMetro || nMetro < nCore) {
			t.Fatalf("tierSplit(%d) = core %d / metro %d / access %d: not a pyramid", routers, nCore, nMetro, nAccess)
		}
	}
	// Below the minimum the split must refuse, matching buildHierarchy.
	if _, _, _, err := tierSplit(hierMinRouters - 1); err == nil {
		t.Fatal("tierSplit below hierMinRouters should error")
	}
}

// TestTierSplitMatchesRoundedSizes pins the apportionment to the rounded
// split at the sizes the rest of the suite (and the recorded BENCH
// numbers) were generated with, so the refactor is a pure
// edge-case fix, not a topology change.
func TestTierSplitMatchesRoundedSizes(t *testing.T) {
	for _, tc := range []struct{ routers, core, metro, access int }{
		{240, 43, 72, 125},
		{1000, 178, 299, 523},
		{10000, 1776, 2991, 5233},
	} {
		nCore, nMetro, nAccess, err := tierSplit(tc.routers)
		if err != nil {
			t.Fatal(err)
		}
		if nCore != tc.core || nMetro != tc.metro || nAccess != tc.access {
			t.Fatalf("tierSplit(%d) = %d/%d/%d, want %d/%d/%d",
				tc.routers, nCore, nMetro, nAccess, tc.core, tc.metro, tc.access)
		}
	}
}

// TestBuildAwkwardSizes builds full fleets at small and awkward sizes —
// the regime the old independent-rounding split could degenerate in —
// and asserts router count and per-tier minimums end to end.
func TestBuildAwkwardSizes(t *testing.T) {
	for _, routers := range []int{8, 9, 10, 11, 13, 17, 23, 107 + 1, 107 - 1} {
		cfg := Config{
			Seed:     7,
			Routers:  routers,
			Duration: 2 * time.Hour,
			SNMPStep: time.Hour,
		}
		n, err := Build(cfg)
		if err != nil {
			t.Fatalf("Build(%d): %v", routers, err)
		}
		if len(n.Routers) != routers {
			t.Fatalf("Build(%d) deployed %d routers", routers, len(n.Routers))
		}
		tiers := map[string]int{}
		for _, r := range n.Routers {
			tiers[r.Tier]++
		}
		for _, tier := range []string{"core", "metro", "access"} {
			if tiers[tier] < tierMin {
				t.Fatalf("Build(%d): %s tier has %d routers, want ≥ %d", routers, tier, tiers[tier], tierMin)
			}
		}
	}
}
