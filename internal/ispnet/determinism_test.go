package ispnet

import (
	"testing"
	"time"
)

// datasetsIdentical compares every artifact of two datasets point for
// point, delegating to the exported DiffDatasets oracle.
func datasetsIdentical(t *testing.T, a, b *Dataset) {
	t.Helper()
	if err := DiffDatasets(a, b); err != nil {
		t.Fatal(err)
	}
}

// TestParallelMatchesSerialGolden is the determinism guarantee of the
// sharded simulation: for the same seed, Workers: 1 (the serial reference
// path) and Workers: 8 must produce identical Dataset contents — total
// series point-for-point, medians, per-interface traces, events, and PSU
// snapshots. The full 9-week window at a coarse step is used so every
// scheduled event (transceiver removal, flapping, PSU power cycle,
// (de)commissioning) fires.
func TestParallelMatchesSerialGolden(t *testing.T) {
	for _, seed := range []int64{42, 7} {
		base := Config{
			Seed:          seed,
			SNMPStep:      time.Hour,
			AutopowerStep: 30 * time.Minute,
		}
		serialCfg := base
		serialCfg.Workers = 1
		parallelCfg := base
		parallelCfg.Workers = 8

		serial, err := Simulate(serialCfg)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Simulate(parallelCfg)
		if err != nil {
			t.Fatal(err)
		}
		datasetsIdentical(t, serial, parallel)
	}
}

// TestDefaultWorkersMatchesSerial pins the default (GOMAXPROCS-sized)
// worker pool to the same guarantee on the quick window.
func TestDefaultWorkersMatchesSerial(t *testing.T) {
	serialCfg := quickCfg()
	serialCfg.Workers = 1
	defaultCfg := quickCfg() // Workers: 0 → GOMAXPROCS

	serial, err := Simulate(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Simulate(defaultCfg)
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, serial, def)
}
