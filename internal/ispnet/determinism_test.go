package ispnet

import (
	"math"
	"reflect"
	"testing"
	"time"

	"fantasticjoules/internal/timeseries"
)

// seriesIdentical asserts two series are bit-for-bit identical: same
// length, same timestamps, same IEEE-754 value bits at every point.
func seriesIdentical(t *testing.T, label string, a, b *timeseries.Series) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", label)
	}
	if a == nil {
		return
	}
	if a.Len() != b.Len() {
		t.Fatalf("%s: len %d vs %d", label, a.Len(), b.Len())
	}
	ap, bp := a.Points(), b.Points()
	for i := range ap {
		if !ap[i].T.Equal(bp[i].T) {
			t.Fatalf("%s: point %d timestamp %v vs %v", label, i, ap[i].T, bp[i].T)
		}
		if math.Float64bits(ap[i].V) != math.Float64bits(bp[i].V) {
			t.Fatalf("%s: point %d value %v (%#x) vs %v (%#x)",
				label, i, ap[i].V, math.Float64bits(ap[i].V), bp[i].V, math.Float64bits(bp[i].V))
		}
	}
}

// datasetsIdentical compares every artifact of two datasets point for
// point.
func datasetsIdentical(t *testing.T, a, b *Dataset) {
	t.Helper()
	seriesIdentical(t, "TotalPower", a.TotalPower, b.TotalPower)
	seriesIdentical(t, "TotalTraffic", a.TotalTraffic, b.TotalTraffic)
	if a.TotalCapacity != b.TotalCapacity {
		t.Fatalf("TotalCapacity %v vs %v", a.TotalCapacity, b.TotalCapacity)
	}

	if len(a.RouterWallMedian) != len(b.RouterWallMedian) {
		t.Fatalf("RouterWallMedian sizes %d vs %d", len(a.RouterWallMedian), len(b.RouterWallMedian))
	}
	for name, av := range a.RouterWallMedian {
		bv, ok := b.RouterWallMedian[name]
		if !ok {
			t.Fatalf("median for %s missing in second run", name)
		}
		if math.Float64bits(av.Watts()) != math.Float64bits(bv.Watts()) {
			t.Fatalf("median for %s: %v vs %v", name, av, bv)
		}
	}

	if len(a.Autopower) != len(b.Autopower) {
		t.Fatalf("Autopower sizes %d vs %d", len(a.Autopower), len(b.Autopower))
	}
	for name, as := range a.Autopower {
		seriesIdentical(t, "Autopower["+name+"]", as, b.Autopower[name])
	}
	if len(a.SNMPPower) != len(b.SNMPPower) {
		t.Fatalf("SNMPPower sizes %d vs %d", len(a.SNMPPower), len(b.SNMPPower))
	}
	for name, as := range a.SNMPPower {
		seriesIdentical(t, "SNMPPower["+name+"]", as, b.SNMPPower[name])
	}

	if len(a.IfaceRates) != len(b.IfaceRates) {
		t.Fatalf("IfaceRates sizes %d vs %d", len(a.IfaceRates), len(b.IfaceRates))
	}
	for name, am := range a.IfaceRates {
		bm := b.IfaceRates[name]
		if len(am) != len(bm) {
			t.Fatalf("IfaceRates[%s] sizes %d vs %d", name, len(am), len(bm))
		}
		for ifName, as := range am {
			seriesIdentical(t, "IfaceRates["+name+"]["+ifName+"]", as, bm[ifName])
		}
	}
	if !reflect.DeepEqual(a.IfaceProfiles, b.IfaceProfiles) {
		t.Fatal("IfaceProfiles differ")
	}

	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("Events differ: %v vs %v", a.Events, b.Events)
	}
	if !reflect.DeepEqual(a.PSUSnapshots, b.PSUSnapshots) {
		t.Fatal("PSUSnapshots differ")
	}
}

// TestParallelMatchesSerialGolden is the determinism guarantee of the
// sharded simulation: for the same seed, Workers: 1 (the serial reference
// path) and Workers: 8 must produce identical Dataset contents — total
// series point-for-point, medians, per-interface traces, events, and PSU
// snapshots. The full 9-week window at a coarse step is used so every
// scheduled event (transceiver removal, flapping, PSU power cycle,
// (de)commissioning) fires.
func TestParallelMatchesSerialGolden(t *testing.T) {
	for _, seed := range []int64{42, 7} {
		base := Config{
			Seed:          seed,
			SNMPStep:      time.Hour,
			AutopowerStep: 30 * time.Minute,
		}
		serialCfg := base
		serialCfg.Workers = 1
		parallelCfg := base
		parallelCfg.Workers = 8

		serial, err := Simulate(serialCfg)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Simulate(parallelCfg)
		if err != nil {
			t.Fatal(err)
		}
		datasetsIdentical(t, serial, parallel)
	}
}

// TestDefaultWorkersMatchesSerial pins the default (GOMAXPROCS-sized)
// worker pool to the same guarantee on the quick window.
func TestDefaultWorkersMatchesSerial(t *testing.T) {
	serialCfg := quickCfg()
	serialCfg.Workers = 1
	defaultCfg := quickCfg() // Workers: 0 → GOMAXPROCS

	serial, err := Simulate(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Simulate(defaultCfg)
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, serial, def)
}
