package ispnet

import (
	"fmt"
	"sort"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// Event is a notable occurrence in the simulated deployment, mirroring the
// events the paper reads out of its traces (§6.2).
type Event struct {
	Time        time.Time
	Router      string
	Description string
}

// Dataset is the collected measurement data of one simulation run — the
// synthetic stand-in for the paper's published dataset.
type Dataset struct {
	// Network is the fleet that produced the data.
	Network *Network

	// TotalPower is the network-wide wall power at the SNMP step (Fig. 1,
	// top series).
	TotalPower *timeseries.Series
	// TotalTraffic is the network-wide carried traffic in bit/s (Fig. 1,
	// bottom series; each link counted once).
	TotalTraffic *timeseries.Series
	// TotalCapacity is the summed interface capacity (for the Fig. 1
	// percent axis).
	TotalCapacity units.BitRate

	// RouterWallMedian is each router's median wall power over the window
	// (Table 1 input).
	RouterWallMedian map[string]units.Power
	// RouterWallPeak is each router's peak wall power over the window —
	// the provisioning figure the §9.3.4 PSU-shedding decision sizes
	// against (a PSU may only go offline if the survivors cover the peak,
	// not the median).
	RouterWallPeak map[string]units.Power

	// Autopower holds the external meter traces of the instrumented
	// routers, keyed by router name.
	Autopower map[string]*timeseries.Series
	// SNMPPower holds the PSU-reported total power traces for the
	// instrumented routers; routers whose model reports nothing are
	// absent (the Fig. 4c case).
	SNMPPower map[string]*timeseries.Series
	// IfaceRates holds per-interface bidirectional bit-rate traces for
	// the instrumented routers (the traffic-counter view the power model
	// consumes), keyed by router then interface.
	IfaceRates map[string]map[string]*timeseries.Series
	// IfaceProfiles maps every interface that ever appeared on an
	// instrumented router during the run to its power profile — the
	// module inventory file of §6.2, robust to mid-run (un)plugging.
	IfaceProfiles map[string]map[string]model.ProfileKey

	// PSUSnapshots is the one-time environment-sensor export of every
	// active router (§9.2).
	PSUSnapshots []psu.RouterPSUs

	// Events lists the injected deployment events.
	Events []Event
}

// Simulate builds the network for the config and plays the study window,
// producing the dataset every analysis consumes. It is deterministic for a
// given config.
func Simulate(cfg Config) (*Dataset, error) {
	return SimulateWithEvents(cfg, nil)
}

// SimulateWithEvents is Simulate with extra deployment events merged into
// the built-in schedule. It is the cold-recompute reference for the
// incremental Fleet path: Perturb(extra)+Resimulate must reproduce it bit
// for bit.
func SimulateWithEvents(cfg Config, extra []FleetEvent) (*Dataset, error) {
	n, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return n.RunWithEvents(extra)
}

// Run plays the study window over the already-built network.
//
// The replay is sharded by router: every router's timeline (its filtered
// events, its device advances, its wall samples and — when instrumented —
// its meter and rate traces) is played independently by a worker pool
// bounded by Config.Workers, then the per-shard results are reduced into
// the network-wide series in fixed fleet order. Because each shard owns
// all the state it touches and the reduction order never varies, the
// Dataset is bit-identical for every worker count, including the serial
// Workers=1 path.
func (n *Network) Run() (*Dataset, error) {
	return n.RunWithEvents(nil)
}

// RunWithEvents plays the study window with extra declarative events
// merged into the built-in schedule. The network must be freshly built:
// events mutate routers, so a second Run over the same network replays a
// different deployment.
func (n *Network) RunWithEvents(extra []FleetEvent) (*Dataset, error) {
	metricRuns.Inc()
	steps := n.stepGrid()
	// Capacity is a deployment property of the pristine build: scheduled
	// events change what is up, not what was provisioned.
	capacity := n.totalCapacity()

	// One external meter per instrumented router. Seeds depend only on
	// the instrumentation order, never on worker scheduling.
	meters := make(map[string]*meter.Meter)
	for i, r := range n.AutopowerRouters() {
		m := meter.New(n.meterSeed(i))
		if err := m.Attach(0, r.Device); err != nil {
			return nil, err
		}
		meters[r.Name] = m
	}

	evs := append(n.baseEvents(), extra...)
	sortFleetEvents(evs)
	compiled, err := n.compileEvents(evs)
	if err != nil {
		return nil, err
	}

	// Shard the fleet: one worker plays one router's full timeline.
	byRouter := partitionEvents(compiled)
	shards := make([]*routerShard, len(n.Routers))
	for i, r := range n.Routers {
		shards[i] = n.newShard(r, meters[r.Name], byRouter[r.Name], steps)
	}
	if err := playShards(shards, n.Config.Workers); err != nil {
		return nil, err
	}
	return n.assembleDataset(steps, shards, evs, capacity), nil
}

// stepGrid returns the shared SNMP-cadence step grid; every shard walks
// the same timestamps.
func (n *Network) stepGrid() []time.Time {
	cfg := n.Config
	numSteps := 0
	if cfg.SNMPStep > 0 {
		numSteps = int(cfg.Duration/cfg.SNMPStep) + 1
	}
	steps := make([]time.Time, 0, numSteps)
	end := cfg.Start.Add(cfg.Duration)
	for t := cfg.Start; t.Before(end); t = t.Add(cfg.SNMPStep) {
		steps = append(steps, t)
	}
	return steps
}

// totalCapacity sums the provisioned (non-spare) interface capacity, each
// link counted once. Must be taken on the pristine build, before events
// mutate interface lists.
func (n *Network) totalCapacity() units.BitRate {
	var c units.BitRate
	for _, r := range n.Routers {
		for _, itf := range r.Interfaces {
			if !itf.Spare {
				c += itf.Profile.Speed / 2
			}
		}
	}
	return c
}

// meterSeed derives the external-meter seed for the i-th instrumented
// router (AutopowerRouters order). The formula is part of the dataset's
// determinism contract: an incremental replay must recreate the exact
// meter a cold run would have attached.
func (n *Network) meterSeed(i int) int64 {
	return n.Config.Seed + int64(i) + 1000
}

// newShard wires one router's replay unit.
func (n *Network) newShard(r *Router, m *meter.Meter, evs []scheduledEvent, steps []time.Time) *routerShard {
	return &routerShard{
		net:    n,
		router: r,
		meter:  m,
		events: evs,
		steps:  steps,
		snapAt: n.Config.Start.Add(n.Config.Duration / 2),
	}
}

// assembleDataset reduces played shards into the network-wide dataset in
// fixed fleet order, so the result is bit-identical for every worker
// count — and for any replayed/reused shard mix in the incremental path.
func (n *Network) assembleDataset(steps []time.Time, shards []*routerShard, evs []FleetEvent, capacity units.BitRate) *Dataset {
	ds := &Dataset{
		Network:          n,
		TotalPower:       timeseries.NewWithCap("total-power", len(steps)),
		TotalTraffic:     timeseries.NewWithCap("total-traffic", len(steps)),
		TotalCapacity:    capacity,
		RouterWallMedian: make(map[string]units.Power),
		RouterWallPeak:   make(map[string]units.Power),
		Autopower:        make(map[string]*timeseries.Series),
		SNMPPower:        make(map[string]*timeseries.Series),
		IfaceRates:       make(map[string]map[string]*timeseries.Series),
		IfaceProfiles:    make(map[string]map[string]model.ProfileKey),
		Events:           describeFleetEvents(evs),
	}

	// Deterministic reduction: totals sum the shards in fleet order at
	// every step (a router contributes exactly 0 while undeployed, which
	// does not perturb the floating-point sum).
	for si, t := range steps {
		var totalPower, totalTraffic float64
		for _, sh := range shards {
			totalPower += sh.power[si]
			totalTraffic += sh.traffic[si]
		}
		ds.TotalPower.Append(t, totalPower)
		ds.TotalTraffic.Append(t, totalTraffic)
	}
	for _, sh := range shards {
		r := sh.router
		if len(sh.wall) > 0 {
			ds.RouterWallMedian[r.Name] = units.Power(medianOf(sh.wall))
			// medianOf sorted the samples in place; the peak is the last.
			ds.RouterWallPeak[r.Name] = units.Power(sh.wall[len(sh.wall)-1])
		}
		if sh.meter != nil {
			ds.Autopower[r.Name] = sh.autopower
			ds.IfaceRates[r.Name] = sh.rates
			ds.IfaceProfiles[r.Name] = sh.profiles
			if sh.snmp != nil {
				ds.SNMPPower[r.Name] = sh.snmp
			}
		}
		// One-time PSU sensor export, mid-window (§9.2: a snapshot, not
		// a trace — the SNMP data only carries Pin). Captured by the
		// shard at the end of its replay so the per-router rng stream is
		// advanced identically whether the shard was replayed cold or
		// spliced back from a retained fleet.
		if sh.psus != nil {
			ds.PSUSnapshots = append(ds.PSUSnapshots, psu.RouterPSUs{
				Router: r.Name,
				Model:  r.Device.Model(),
				PSUs:   sh.psus,
			})
		}
	}
	return ds
}

// scheduledEvent is an event with its mutation.
type scheduledEvent struct {
	at     time.Time
	desc   string
	router string
	apply  func() error
}

// baseEvents returns the built-in Fig. 4 schedule as declarative
// FleetEvents. The interface names are resolved from the network's current
// deployment, so the schedule must be generated from the pristine build
// (Fleet retains it from NewFleet for exactly that reason: after a replay
// the FR4 is already unplugged and would no longer resolve).
func (n *Network) baseEvents() []FleetEvent {
	start := n.Config.Start
	var evs []FleetEvent
	day := func(d int) time.Time { return start.Add(time.Duration(d) * 24 * time.Hour) }

	for _, r := range n.AutopowerRouters() {
		switch r.Device.Model() {
		case "8201-32FH":
			// Fig. 4a. Find the FR4 interfaces and a mid-list DAC.
			var fr4, dac string
			for _, itf := range r.Interfaces {
				if itf.Profile.Transceiver == "FR4" && fr4 == "" && !itf.Spare {
					fr4 = itf.Name
				}
				if itf.Profile.Transceiver == "Passive DAC" && !itf.Spare {
					dac = itf.Name
				}
			}
			if fr4 != "" {
				evs = append(evs, FleetEvent{
					At: day(38), Router: r.Name, Op: OpUnplug, Iface: fr4,
					Desc: "400G FR4 interface removed (transceiver unplugged); ≈13 W drop",
				})
			}
			if dac != "" {
				evs = append(evs, FleetEvent{
					At: day(51), Router: r.Name, Op: OpAdminDown, Iface: dac,
					Desc: "flapping interface taken down for repair; transceiver stays plugged",
				})
				evs = append(evs, FleetEvent{
					At: day(54), Router: r.Name, Op: OpAdminUp, Iface: dac,
					Desc: "repaired interface brought back up",
				})
			}
			evs = append(evs, FleetEvent{
				At: day(60), Router: r.Name, Op: OpAddInterfaces, Count: 2,
				Desc: "two interfaces added",
			})
		case "NCS-55A1-24H":
			// Fig. 4b: installing the Autopower meter power-cycles each
			// PSU; the pseudo-constant sensor re-baselines ≈7 W lower.
			evs = append(evs, FleetEvent{
				At: day(24), Router: r.Name, Op: OpPowerCycle, PSU: 0,
				Desc: "Autopower meter installed: PSUs power-cycled, one sensor re-baselines",
			})
		}
	}
	return evs
}

// scheduleEvents compiles the built-in schedule against the current
// network. Kept as the one-call form the schedule tests exercise.
func (n *Network) scheduleEvents() []scheduledEvent {
	evs := n.baseEvents()
	sortFleetEvents(evs)
	compiled, err := n.compileEvents(evs)
	if err != nil {
		// Unreachable: the built-in schedule only references routers and
		// ops this network owns.
		panic(err)
	}
	return compiled
}

// sortSchedule orders a schedule by due time. The sort is stable: events
// due at the same instant keep their schedule (append) order, which
// partitionEvents preserves per router — the apply order the simulation
// guarantees at every step.
func sortSchedule(evs []scheduledEvent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at.Before(evs[j].at) })
}

// dropInterface removes an interface from the deployment records and
// retires its port.
func (n *Network) dropInterface(r *Router, ifName string) {
	if r.retired == nil {
		r.retired = make(map[string]bool)
	}
	r.retired[ifName] = true
	for i := range r.Interfaces {
		if r.Interfaces[i].Name == ifName {
			r.Interfaces = append(r.Interfaces[:i], r.Interfaces[i+1:]...)
			return
		}
	}
}

// addInterfaces brings up additional DAC interfaces on free ports.
func (n *Network) addInterfaces(r *Router, count int) error {
	used := make(map[string]bool)
	for _, itf := range r.Interfaces {
		used[itf.Name] = true
	}
	var tmplProfile *Interface
	for i := range r.Interfaces {
		if !r.Interfaces[i].Spare && r.Interfaces[i].Profile.Transceiver == "Passive DAC" {
			tmplProfile = &r.Interfaces[i]
			break
		}
	}
	if tmplProfile == nil {
		return fmt.Errorf("no template interface on %s", r.Name)
	}
	added := 0
	for _, name := range r.Device.InterfaceNames() {
		if added == count {
			break
		}
		if used[name] || r.retired[name] {
			continue
		}
		if err := r.Device.PlugTransceiver(name, tmplProfile.Profile.Transceiver, tmplProfile.Profile.Speed); err != nil {
			return err
		}
		if err := r.Device.SetAdmin(name, true); err != nil {
			return err
		}
		if err := r.Device.SetLink(name, true); err != nil {
			return err
		}
		r.Interfaces = append(r.Interfaces, Interface{
			Name:     name,
			Profile:  tmplProfile.Profile,
			MeanLoad: tmplProfile.MeanLoad,
		})
		added++
	}
	if added < count {
		return fmt.Errorf("only %d free ports on %s", added, r.Name)
	}
	return nil
}

// SimulateOSUpgrade reproduces the Fig. 8 scenario in isolation: an
// 8201-32FH running for four weeks with an OS upgrade at the midpoint
// whose new temperature management raises fan speeds by ≈45 W. It returns
// the PSU-reported power trace (with the sensor's constant offset — the
// trace the paper actually shows) and the upgrade time.
func SimulateOSUpgrade(seed int64) (*timeseries.Series, time.Time, error) {
	spec, err := device.Spec("8201-32FH")
	if err != nil {
		return nil, time.Time{}, err
	}
	dev, err := device.New(spec, "fig8-rtr", seed)
	if err != nil {
		return nil, time.Time{}, err
	}
	// Deploy a typical configuration.
	names := dev.InterfaceNames()
	for i := 0; i < 12; i++ {
		if err := dev.PlugTransceiver(names[i], "Passive DAC", 100*units.GigabitPerSecond); err != nil {
			return nil, time.Time{}, err
		}
		if err := dev.SetAdmin(names[i], true); err != nil {
			return nil, time.Time{}, err
		}
		if err := dev.SetLink(names[i], true); err != nil {
			return nil, time.Time{}, err
		}
	}
	start := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	upgrade := start.Add(12 * 24 * time.Hour) // March 13
	series := timeseries.New("fig8")
	step := 30 * time.Minute
	for t := start; t.Before(start.Add(26 * 24 * time.Hour)); t = t.Add(step) {
		if t.Equal(upgrade) || (t.After(upgrade) && t.Add(-step).Before(upgrade)) {
			dev.UpgradeOS("7.11.1")
		}
		dev.Advance(step)
		if rep, err := dev.ReportedTotalPower(); err == nil {
			series.Append(t, rep.Watts())
		}
	}
	return series, upgrade, nil
}
