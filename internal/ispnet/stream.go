package ispnet

import (
	"runtime"
	"sort"
	"sync"

	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/telemetry"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// Streaming simulation mode. Run keeps every shard's full-window buffers
// alive until the final reduction, so its peak heap grows with the
// fleet-size × duration product — a 9-week 100k-router run does not fit.
// RunStream replaces the keep-everything join with a bounded-window
// ordered fold:
//
//	producer  builds shards lazily, attaches pooled step buffers, and
//	          admits at most workers+2 in-flight shards
//	workers   play shards concurrently, exactly as Run does
//	consumer  (the calling goroutine) folds finished shards into the
//	          dataset aggregates in fleet order, spills their per-router
//	          series to the SeriesSink as columnar chunks, and recycles
//	          the buffers
//
// Peak heap is O(fleet metadata) + O(window × steps) regardless of
// duration. The fold accumulates the per-step totals shard by shard in
// fleet order — the identical floating-point addition sequence Run's
// reduction performs — so the produced Dataset is bit-identical to Run's
// (stream_test.go proves it under the DiffDatasets oracle).

// streamChunkPoints is the spill chunk size: 1024 points ≈ 9 KB encoded,
// small enough to buffer, large enough to amortize the sink call.
const streamChunkPoints = 1024

// streamWindowSlack is how many shards beyond the worker count may be in
// flight: finished shards waiting for their in-order fold turn.
const streamWindowSlack = 2

// SeriesSink receives the per-router series a streaming run spills. Chunks
// use the timeseries.AppendChunk encoding; within one (router, series)
// pair they arrive in time order. The sink is called from the consumer
// goroutine only — implementations need no locking — and the chunk buffer
// is reused after the call returns, so a sink that keeps data must copy
// it. Every router spills "power" and "traffic" series on the SNMP step
// grid; instrumented routers additionally spill their autopower, snmp,
// and per-interface rate traces.
type SeriesSink interface {
	WriteChunk(router, series string, chunk []byte) error
}

// DiscardSink is a SeriesSink that only counts what flows through it —
// the sink for throughput benchmarks and for runs that want the bounded
// memory profile without retaining traces.
type DiscardSink struct {
	// Chunks, Points, and Bytes tally the spilled volume.
	Chunks, Points, Bytes int64
}

// WriteChunk implements SeriesSink.
func (d *DiscardSink) WriteChunk(router, series string, chunk []byte) error {
	n, _ := uvarintHead(chunk)
	d.Chunks++
	d.Points += int64(n)
	d.Bytes += int64(len(chunk))
	return nil
}

// uvarintHead reads the point-count header of an encoded chunk.
func uvarintHead(chunk []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range chunk {
		if b < 0x80 {
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
		if s >= 64 {
			break
		}
	}
	return 0, 0
}

var (
	metricStreamRuns = telemetry.Default().Counter("ispnet_stream_runs_total",
		"streaming fleet replays started (Network.RunStream calls)")
	metricStreamChunks = telemetry.Default().Counter("ispnet_stream_chunks_total",
		"columnar chunks spilled to SeriesSinks")
	metricStreamChunkBytes = telemetry.Default().Counter("ispnet_stream_chunk_bytes_total",
		"encoded bytes spilled to SeriesSinks")
)

// SimulateStream builds the network for the config and plays the study
// window in streaming mode: the Dataset aggregates are identical to
// Simulate's, per-router series spill to the sink, and peak memory is
// bounded by the worker window instead of the fleet-duration product.
func SimulateStream(cfg Config, sink SeriesSink) (*Dataset, error) {
	n, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return n.RunStream(sink)
}

// RunStream plays the study window over the already-built network in
// streaming mode; see the package comment above. Like Run, it requires a
// freshly built network. The returned Dataset carries the same aggregates
// and instrumented-router traces as Run — bit-identical for the same
// config — while every router's full-resolution power and traffic series
// go to the sink instead of the heap.
func (n *Network) RunStream(sink SeriesSink) (*Dataset, error) {
	return n.RunStreamWithEvents(nil, sink)
}

// streamSlot is one in-flight shard: the worker closes done when the
// shard has played, and the consumer folds slots strictly in fleet order.
type streamSlot struct {
	sh   *routerShard
	bufs *streamBufs
	done chan struct{}
}

// streamBufs is the pooled per-shard working set.
type streamBufs struct {
	power, traffic, wall []float64
}

// RunStreamWithEvents is RunStream with extra declarative events merged
// into the built-in schedule, mirroring RunWithEvents.
func (n *Network) RunStreamWithEvents(extra []FleetEvent, sink SeriesSink) (*Dataset, error) {
	metricRuns.Inc()
	metricStreamRuns.Inc()
	steps := n.stepGrid()
	capacity := n.totalCapacity()

	meters := make(map[string]*meter.Meter)
	for i, r := range n.AutopowerRouters() {
		m := meter.New(n.meterSeed(i))
		if err := m.Attach(0, r.Device); err != nil {
			return nil, err
		}
		meters[r.Name] = m
	}

	evs := append(n.baseEvents(), extra...)
	sortFleetEvents(evs)
	compiled, err := n.compileEvents(evs)
	if err != nil {
		return nil, err
	}
	byRouter := partitionEvents(compiled)

	workers := n.Config.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(n.Routers) {
		workers = len(n.Routers)
	}
	window := workers + streamWindowSlack

	stepNanos := make([]int64, len(steps))
	for i, t := range steps {
		stepNanos[i] = t.UnixNano()
	}

	// The bounded pipeline. slots preserves fleet order and its buffer is
	// the admission window: the producer blocks once window shards are in
	// flight, so at most window step-buffer sets exist at any instant.
	pool := sync.Pool{New: func() any { return &streamBufs{} }}
	slots := make(chan *streamSlot, window)
	work := make(chan *streamSlot)
	go func() {
		for _, r := range n.Routers {
			sh := n.newShard(r, meters[r.Name], byRouter[r.Name], steps)
			bufs := pool.Get().(*streamBufs)
			sh.power = zeroedFloats(bufs.power, len(steps))
			sh.traffic = zeroedFloats(bufs.traffic, len(steps))
			sh.wall = bufs.wall[:0]
			//jouleslint:ignore scratchsafety -- bounded handoff: the fold is the slot's only consumer and puts the buffers back before admitting another slot past the window
			s := &streamSlot{sh: sh, bufs: bufs, done: make(chan struct{})}
			slots <- s
			work <- s
		}
		close(slots)
		close(work)
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				s.sh.err = s.sh.playInstrumented()
				close(s.done)
			}
		}()
	}

	// The consumer folds in fleet order on the calling goroutine.
	ds := &Dataset{
		Network:          n,
		TotalPower:       timeseries.NewWithCap("total-power", len(steps)),
		TotalTraffic:     timeseries.NewWithCap("total-traffic", len(steps)),
		TotalCapacity:    capacity,
		RouterWallMedian: make(map[string]units.Power),
		RouterWallPeak:   make(map[string]units.Power),
		Autopower:        make(map[string]*timeseries.Series),
		SNMPPower:        make(map[string]*timeseries.Series),
		IfaceRates:       make(map[string]map[string]*timeseries.Series),
		IfaceProfiles:    make(map[string]map[string]model.ProfileKey),
		Events:           describeFleetEvents(evs),
	}
	totalPower := make([]float64, len(steps))
	totalTraffic := make([]float64, len(steps))
	var encBuf []byte
	spill := func(router, series string, ts []int64, vs []float64) error {
		for i := 0; i < len(vs); i += streamChunkPoints {
			j := i + streamChunkPoints
			if j > len(vs) {
				j = len(vs)
			}
			encBuf = timeseries.AppendChunk(encBuf[:0], ts[i:j], vs[i:j])
			metricStreamChunks.Inc()
			metricStreamChunkBytes.Add(uint64(len(encBuf)))
			if err := sink.WriteChunk(router, series, encBuf); err != nil {
				return err
			}
		}
		return nil
	}
	spillSeries := func(router string, s *timeseries.Series) error {
		return s.Blocks(streamChunkPoints, func(ts []int64, vs []float64) error {
			encBuf = timeseries.AppendChunk(encBuf[:0], ts, vs)
			metricStreamChunks.Inc()
			metricStreamChunkBytes.Add(uint64(len(encBuf)))
			return sink.WriteChunk(router, s.Name, encBuf)
		})
	}
	fold := func(sh *routerShard) error {
		// Identical addition sequence to Run's reduction: at every step,
		// shard contributions accumulate in fleet order.
		for si := range steps {
			totalPower[si] += sh.power[si]
			totalTraffic[si] += sh.traffic[si]
		}
		if err := spill(sh.router.Name, "power", stepNanos, sh.power); err != nil {
			return err
		}
		if err := spill(sh.router.Name, "traffic", stepNanos, sh.traffic); err != nil {
			return err
		}
		r := sh.router
		if len(sh.wall) > 0 {
			ds.RouterWallMedian[r.Name] = units.Power(medianOf(sh.wall))
			ds.RouterWallPeak[r.Name] = units.Power(sh.wall[len(sh.wall)-1])
		}
		if sh.meter != nil {
			ds.Autopower[r.Name] = sh.autopower
			ds.IfaceRates[r.Name] = sh.rates
			ds.IfaceProfiles[r.Name] = sh.profiles
			if sh.snmp != nil {
				ds.SNMPPower[r.Name] = sh.snmp
			}
			if err := spillSeries(r.Name, sh.autopower); err != nil {
				return err
			}
			if sh.snmp != nil {
				if err := spillSeries(r.Name, sh.snmp); err != nil {
					return err
				}
			}
			// Rates in sorted interface order, so the sink sees a
			// deterministic chunk sequence.
			names := make([]string, 0, len(sh.rates))
			for name := range sh.rates {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if err := spillSeries(r.Name, sh.rates[name]); err != nil {
					return err
				}
			}
		}
		if sh.psus != nil {
			ds.PSUSnapshots = append(ds.PSUSnapshots, psu.RouterPSUs{
				Router: r.Name,
				Model:  r.Device.Model(),
				PSUs:   sh.psus,
			})
		}
		return nil
	}

	var firstErr error
	for s := range slots {
		<-s.done
		sh := s.sh
		if firstErr == nil {
			if sh.err != nil {
				firstErr = sh.err
			} else if err := fold(sh); err != nil {
				firstErr = err
			}
		}
		// Recycle the step buffers (wall may have grown under append).
		s.bufs.power, s.bufs.traffic, s.bufs.wall = sh.power, sh.traffic, sh.wall
		sh.power, sh.traffic, sh.wall = nil, nil, nil
		pool.Put(s.bufs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for si, t := range steps {
		ds.TotalPower.Append(t, totalPower[si])
		ds.TotalTraffic.Append(t, totalTraffic[si])
	}
	return ds, nil
}

// zeroedFloats returns buf resized to n and zero-filled, reallocating
// only when the pooled capacity is short. Pooled buffers carry the
// previous shard's samples; a shard relies on undeployed steps reading 0.
func zeroedFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}
