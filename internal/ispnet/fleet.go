package ispnet

import (
	"fmt"
	"sort"
	"time"

	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/units"
)

// FleetOp names a declarative deployment mutation. Declarative events —
// unlike the closure-based scheduledEvent they compile into — can be
// stored, merged, re-sorted, and re-resolved against freshly rebuilt
// routers, which is what makes incremental replay possible: a dirty
// router is rebuilt pristine and its event queue recompiled against the
// new object.
type FleetOp string

const (
	// OpAdminDown / OpAdminUp toggle an interface's admin state; the
	// transceiver stays plugged.
	OpAdminDown FleetOp = "admin-down"
	OpAdminUp   FleetOp = "admin-up"
	// OpLinkDown / OpLinkUp toggle an interface's link (carrier) state.
	OpLinkDown FleetOp = "link-down"
	OpLinkUp   FleetOp = "link-up"
	// OpUnplug admin-downs the interface, removes it from the deployment
	// records, and unplugs its transceiver (the Fig. 4a removal).
	OpUnplug FleetOp = "unplug"
	// OpAddInterfaces brings Count additional DAC interfaces up on free
	// ports, cloned from the router's template DAC.
	OpAddInterfaces FleetOp = "add-interfaces"
	// OpPowerCycle power-cycles the PSU at index PSU (the Fig. 4b meter
	// installation).
	OpPowerCycle FleetOp = "power-cycle"
	// OpScaleLoad multiplies every deployed interface's mean offered load
	// by Factor — the perturbation the optimizer's what-if loop uses.
	OpScaleLoad FleetOp = "scale-load"
	// OpSleep / OpWake are the optimizer's actuation ops: admin-down /
	// admin-up an interface to stop paying its Pport and Ptrx,up (the
	// transceiver stays plugged, so Ptrx,in keeps accruing — §7's refined
	// accounting). Unlike the strict OpAdmin* ops they are best-effort:
	// actuating an interface the deployment no longer has (e.g. a
	// transceiver unplugged by a later-merged schedule) is a no-op, so a
	// decision trace stays replayable against any deployment history.
	OpSleep FleetOp = "sleep"
	OpWake  FleetOp = "wake"
	// OpPSUOffline / OpPSUOnline take the PSU at index PSU out of or back
	// into the load-sharing pool (the §9.3.4 single-PSU measure). Taking
	// the last online PSU offline fails the replay, exactly as the device
	// refuses it.
	OpPSUOffline FleetOp = "psu-offline"
	OpPSUOnline  FleetOp = "psu-online"
)

// FleetEvent is one declarative deployment event. Zero-valued fields that
// an op does not use are ignored; Desc overrides the generated
// description when set.
type FleetEvent struct {
	At     time.Time
	Router string
	Op     FleetOp
	Iface  string  // OpAdmin*/OpLink*/OpUnplug
	Count  int     // OpAddInterfaces
	PSU    int     // OpPowerCycle
	Factor float64 // OpScaleLoad
	Desc   string
}

// describe returns the event-log description: Desc verbatim when set,
// otherwise a deterministic rendering of the op.
func (e FleetEvent) describe() string {
	if e.Desc != "" {
		return e.Desc
	}
	switch e.Op {
	case OpAdminDown, OpAdminUp, OpLinkDown, OpLinkUp, OpUnplug, OpSleep, OpWake:
		return fmt.Sprintf("%s %s", e.Op, e.Iface)
	case OpAddInterfaces:
		return fmt.Sprintf("%s x%d", e.Op, e.Count)
	case OpPowerCycle, OpPSUOffline, OpPSUOnline:
		return fmt.Sprintf("%s psu%d", e.Op, e.PSU)
	case OpScaleLoad:
		return fmt.Sprintf("%s x%g", e.Op, e.Factor)
	}
	return string(e.Op)
}

// validate rejects events that could not compile: unknown ops and
// missing operands. Router existence is checked at compile time against
// the network.
func (e FleetEvent) validate() error {
	switch e.Op {
	case OpAdminDown, OpAdminUp, OpLinkDown, OpLinkUp, OpUnplug, OpSleep, OpWake:
		if e.Iface == "" {
			return fmt.Errorf("ispnet: event %s on %s: missing interface", e.Op, e.Router)
		}
	case OpAddInterfaces:
		if e.Count <= 0 {
			return fmt.Errorf("ispnet: event %s on %s: count must be positive", e.Op, e.Router)
		}
	case OpPowerCycle, OpPSUOffline, OpPSUOnline:
		if e.PSU < 0 {
			return fmt.Errorf("ispnet: event %s on %s: negative PSU index", e.Op, e.Router)
		}
	case OpScaleLoad:
		if e.Factor <= 0 {
			return fmt.Errorf("ispnet: event %s on %s: factor must be positive", e.Op, e.Router)
		}
	default:
		return fmt.Errorf("ispnet: unknown event op %q on %s", e.Op, e.Router)
	}
	if e.Router == "" {
		return fmt.Errorf("ispnet: event %s: missing router", e.Op)
	}
	return nil
}

// hasInterface reports whether the router's current deployment still has
// an interface by that name. Evaluated at apply time, so a sleep/wake
// schedule recorded against one deployment replays cleanly against a
// deployment that has since unplugged or retired the interface.
func hasInterface(r *Router, name string) bool {
	for i := range r.Interfaces {
		if r.Interfaces[i].Name == name {
			return true
		}
	}
	return false
}

// sortFleetEvents orders a declarative schedule by due time. Stable, so
// events due at the same instant keep their append order — the apply
// order the simulation guarantees at every step.
func sortFleetEvents(evs []FleetEvent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
}

func describeFleetEvents(evs []FleetEvent) []Event {
	out := make([]Event, len(evs))
	for i, e := range evs {
		out[i] = Event{Time: e.At, Router: e.Router, Description: e.describe()}
	}
	return out
}

// compileEvents resolves a sorted declarative schedule against the
// network's current router objects, producing the closure form the shard
// replay consumes. Compile each replay: after a dirty router is rebuilt,
// the closures must capture the new *Router.
func (n *Network) compileEvents(evs []FleetEvent) ([]scheduledEvent, error) {
	out := make([]scheduledEvent, 0, len(evs))
	for _, e := range evs {
		if err := e.validate(); err != nil {
			return nil, err
		}
		r, ok := n.byName[e.Router]
		if !ok {
			return nil, fmt.Errorf("ispnet: event %s: unknown router %q", e.Op, e.Router)
		}
		e := e
		var apply func() error
		switch e.Op {
		case OpAdminDown:
			apply = func() error { return r.Device.SetAdmin(e.Iface, false) }
		case OpAdminUp:
			apply = func() error { return r.Device.SetAdmin(e.Iface, true) }
		case OpLinkDown:
			apply = func() error { return r.Device.SetLink(e.Iface, false) }
		case OpLinkUp:
			apply = func() error { return r.Device.SetLink(e.Iface, true) }
		case OpUnplug:
			apply = func() error {
				if err := r.Device.SetAdmin(e.Iface, false); err != nil {
					return err
				}
				n.dropInterface(r, e.Iface)
				return r.Device.UnplugTransceiver(e.Iface)
			}
		case OpSleep:
			apply = func() error {
				if !hasInterface(r, e.Iface) {
					return nil
				}
				return r.Device.SetAdmin(e.Iface, false)
			}
		case OpWake:
			apply = func() error {
				if !hasInterface(r, e.Iface) {
					return nil
				}
				return r.Device.SetAdmin(e.Iface, true)
			}
		case OpAddInterfaces:
			apply = func() error { return n.addInterfaces(r, e.Count) }
		case OpPowerCycle:
			apply = func() error { return r.Device.PowerCycle(e.PSU) }
		case OpPSUOffline:
			apply = func() error { return r.Device.SetPSUOnline(e.PSU, false) }
		case OpPSUOnline:
			apply = func() error { return r.Device.SetPSUOnline(e.PSU, true) }
		case OpScaleLoad:
			apply = func() error {
				for i := range r.Interfaces {
					if r.Interfaces[i].Spare {
						continue
					}
					r.Interfaces[i].MeanLoad = units.BitRate(r.Interfaces[i].MeanLoad.BitsPerSecond() * e.Factor)
					// Hierarchical loads are evaluated from the per-cohort
					// demand, not MeanLoad; scale both so the op means the
					// same thing on generated fleets (SubDemand is all-zero
					// on the calibrated build, where this is a no-op).
					for c := range r.Interfaces[i].SubDemand {
						r.Interfaces[i].SubDemand[c] *= e.Factor
					}
				}
				return nil
			}
		}
		out = append(out, scheduledEvent{at: e.At, desc: e.describe(), router: e.Router, apply: apply})
	}
	return out, nil
}

// Fleet is the retained-state form of Simulate. It keeps the built
// network, the per-router shard results, and the merged event schedule,
// so that after Perturb only the routers named by the new events — the
// dirty set — are rebuilt and replayed; every clean shard's columnar
// series and summaries are spliced back into the dataset untouched.
// Resimulate is bit-identical to a cold SimulateWithEvents over the same
// merged event list (the golden and property tests pin this), because:
//
//   - every router's replay is already independent (shards share no
//     mutable state, per-router rng streams are seeded by fleet index),
//   - dirty routers are rebuilt from a fresh Build of the same config,
//     which reproduces their pristine deployment exactly,
//   - the PSU snapshot is captured inside each shard's replay, so clean
//     routers' rng streams are never re-advanced,
//   - the dataset reduction runs over the full shard list in fleet
//     order, exactly as the cold path does.
//
// A Fleet is not safe for concurrent use; a failed Resimulate leaves it
// unusable (the retained routers may be partially replayed).
type Fleet struct {
	cfg Config
	net *Network

	steps    []time.Time
	capacity units.BitRate
	// base is the built-in schedule resolved against the pristine build;
	// it must never be regenerated from the retained (mutated) network.
	base []FleetEvent
	// extra accumulates every perturbation ever applied, so a cold
	// SimulateWithEvents(cfg, extra) reproduces the current state.
	extra []FleetEvent
	// meterSeeds maps instrumented router name → external-meter seed,
	// captured once (the AutopowerRouters order of the pristine build).
	meterSeeds map[string]int64

	// Exactly one retention representation is populated. The calibrated
	// fleet keeps live shards (their instrumented traces are part of the
	// dataset); hierarchical fleets keep the bounded chunk retention of
	// fleet_chunks.go.
	shards    []*routerShard
	chunked   bool
	chunks    []routerChunks
	stepNanos []int64

	dirty map[string]bool
	ds    *Dataset
}

// NewFleet builds the network and plays the full study window once,
// retaining every shard's results for later incremental replays.
func NewFleet(cfg Config) (*Fleet, error) {
	n, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:        n.Config, // defaults applied by Build
		net:        n,
		steps:      n.stepGrid(),
		capacity:   n.totalCapacity(),
		base:       n.baseEvents(),
		meterSeeds: make(map[string]int64),
		dirty:      make(map[string]bool),
	}
	for i, r := range n.AutopowerRouters() {
		f.meterSeeds[r.Name] = n.meterSeed(i)
	}
	// Generated hierarchical fleets retain encoded chunks instead of live
	// shards (fleet_chunks.go): they carry no instrumented routers, and at
	// 10k+ routers the live-shard working set would not fit a bounded
	// heap. The calibrated build keeps the shard path and its traces.
	f.chunked = n.Hierarchical() && len(f.meterSeeds) == 0
	metricRuns.Inc()
	if err := f.replay(nil); err != nil {
		return nil, err
	}
	return f, nil
}

// ChunkRetained reports whether the fleet runs in the bounded-memory
// chunk-retained mode (hierarchical configs) rather than retaining live
// shards.
func (f *Fleet) ChunkRetained() bool { return f.chunked }

// Dataset returns the dataset of the last (re)simulation. The caller must
// treat it as immutable; Resimulate replaces it.
func (f *Fleet) Dataset() *Dataset { return f.ds }

// Network returns the retained network. Mutating it outside Perturb
// voids the bit-identity guarantee.
func (f *Fleet) Network() *Network { return f.net }

// Events returns the merged declarative schedule (built-in plus every
// perturbation), sorted by due time — the event list a cold
// SimulateWithEvents needs to reproduce the current dataset. Like
// ExtraEvents it returns a defensive copy: callers may mutate or re-sort
// the slice without corrupting the retained replay state.
func (f *Fleet) Events() []FleetEvent {
	evs := f.mergedEvents()
	out := make([]FleetEvent, len(evs))
	copy(out, evs)
	return out
}

// ExtraEvents returns a copy of every perturbation applied since the
// fleet was built (the schedule beyond the built-in base events). A cold
// SimulateWithEvents(cfg, ExtraEvents()...) reproduces the current
// dataset bit for bit.
func (f *Fleet) ExtraEvents() []FleetEvent {
	out := make([]FleetEvent, len(f.extra))
	copy(out, f.extra)
	return out
}

// DirtyRouters returns the number of routers queued for replay by
// perturbations since the last Resimulate.
func (f *Fleet) DirtyRouters() int { return len(f.dirty) }

// Perturb queues declarative events and marks their routers dirty. The
// events take effect at the next Resimulate; nothing is replayed here.
// An event batch is validated as a whole before any of it is queued.
func (f *Fleet) Perturb(events ...FleetEvent) error {
	for _, e := range events {
		if err := e.validate(); err != nil {
			return err
		}
		if _, ok := f.net.byName[e.Router]; !ok {
			return fmt.Errorf("ispnet: perturb: unknown router %q", e.Router)
		}
	}
	for _, e := range events {
		f.extra = append(f.extra, e)
		f.dirty[e.Router] = true
	}
	return nil
}

// Resimulate replays the dirty routers against the merged event schedule
// and splices their fresh shard results into the retained dataset. With
// no pending perturbations it returns the current dataset unchanged.
func (f *Fleet) Resimulate() (*Dataset, error) {
	if len(f.dirty) == 0 {
		return f.ds, nil
	}
	// Rebuild the dirty routers pristine. Build is deterministic for the
	// config, and router identity is index-stable across builds, so the
	// fresh fleet's router i is bit-for-bit the pristine form of the
	// retained fleet's router i.
	fresh, err := Build(f.cfg)
	if err != nil {
		return nil, err
	}
	for i, r := range f.net.Routers {
		if !f.dirty[r.Name] {
			continue
		}
		nr := fresh.Routers[i]
		if nr.Name != r.Name {
			return nil, fmt.Errorf("ispnet: rebuild fleet order changed: %q != %q", nr.Name, r.Name)
		}
		f.net.Routers[i] = nr
		f.net.byName[nr.Name] = nr
	}
	dirty := f.dirty
	f.dirty = make(map[string]bool)
	if err := f.replay(dirty); err != nil {
		return nil, err
	}
	return f.ds, nil
}

func (f *Fleet) mergedEvents() []FleetEvent {
	evs := make([]FleetEvent, 0, len(f.base)+len(f.extra))
	evs = append(evs, f.base...)
	evs = append(evs, f.extra...)
	sortFleetEvents(evs)
	return evs
}

// replay plays the shards in the dirty set (nil means every shard) and
// reassembles the dataset from the full — part fresh, part retained —
// shard list. The merged schedule is recompiled each time so event
// closures capture the current router objects.
func (f *Fleet) replay(dirty map[string]bool) error {
	if f.chunked {
		return f.replayChunked(dirty)
	}
	n := f.net
	evs := f.mergedEvents()
	compiled, err := n.compileEvents(evs)
	if err != nil {
		return err
	}
	byRouter := partitionEvents(compiled)

	if f.shards == nil {
		f.shards = make([]*routerShard, len(n.Routers))
	}
	replay := make([]*routerShard, 0, len(n.Routers))
	for i, r := range n.Routers {
		if dirty != nil && !dirty[r.Name] {
			metricShardsReused.Inc()
			continue
		}
		var m *meter.Meter
		if seed, ok := f.meterSeeds[r.Name]; ok {
			m = meter.New(seed)
			if err := m.Attach(0, r.Device); err != nil {
				return err
			}
		}
		sh := n.newShard(r, m, byRouter[r.Name], f.steps)
		f.shards[i] = sh
		replay = append(replay, sh)
	}
	metricShardsReplayed.Add(uint64(len(replay)))
	if err := playShards(replay, f.cfg.Workers); err != nil {
		return err
	}
	f.ds = n.assembleDataset(f.steps, f.shards, evs, f.capacity)
	return nil
}
