package ispnet

import (
	"fmt"
	"math"
	"reflect"

	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// diffSeries reports the first bit-level difference between two series:
// same length, same timestamps, same IEEE-754 value bits at every point.
func diffSeries(label string, a, b *timeseries.Series) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("%s: nil mismatch", label)
	}
	if a == nil {
		return nil
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("%s: len %d vs %d", label, a.Len(), b.Len())
	}
	ap, bp := a.Points(), b.Points()
	for i := range ap {
		if !ap[i].T.Equal(bp[i].T) {
			return fmt.Errorf("%s: point %d timestamp %v vs %v", label, i, ap[i].T, bp[i].T)
		}
		if math.Float64bits(ap[i].V) != math.Float64bits(bp[i].V) {
			return fmt.Errorf("%s: point %d value %v (%#x) vs %v (%#x)",
				label, i, ap[i].V, math.Float64bits(ap[i].V), bp[i].V, math.Float64bits(bp[i].V))
		}
	}
	return nil
}

// diffPowerMap reports the first bit-level difference between two
// router-name → power maps.
func diffPowerMap(label string, a, b map[string]units.Power) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s sizes %d vs %d", label, len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			return fmt.Errorf("%s for %s missing in second dataset", label, name)
		}
		if math.Float64bits(av.Watts()) != math.Float64bits(bv.Watts()) {
			return fmt.Errorf("%s for %s: %v vs %v", label, name, av, bv)
		}
	}
	return nil
}

// DiffDatasets compares every artifact of two datasets at full precision
// — series point for point at Float64bits, maps key for key, events and
// PSU snapshots structurally — and returns a description of the first
// difference found, or nil when the datasets are bit-identical. It is the
// equality oracle behind the golden determinism tests and the
// cold-vs-incremental replay property: Resimulate after Perturb must
// match a cold SimulateWithEvents under this comparison, not merely
// within a tolerance.
func DiffDatasets(a, b *Dataset) error {
	if err := diffSeries("TotalPower", a.TotalPower, b.TotalPower); err != nil {
		return err
	}
	if err := diffSeries("TotalTraffic", a.TotalTraffic, b.TotalTraffic); err != nil {
		return err
	}
	if a.TotalCapacity != b.TotalCapacity {
		return fmt.Errorf("TotalCapacity %v vs %v", a.TotalCapacity, b.TotalCapacity)
	}

	if err := diffPowerMap("RouterWallMedian", a.RouterWallMedian, b.RouterWallMedian); err != nil {
		return err
	}
	if err := diffPowerMap("RouterWallPeak", a.RouterWallPeak, b.RouterWallPeak); err != nil {
		return err
	}

	if len(a.Autopower) != len(b.Autopower) {
		return fmt.Errorf("Autopower sizes %d vs %d", len(a.Autopower), len(b.Autopower))
	}
	for name, as := range a.Autopower {
		if err := diffSeries("Autopower["+name+"]", as, b.Autopower[name]); err != nil {
			return err
		}
	}
	if len(a.SNMPPower) != len(b.SNMPPower) {
		return fmt.Errorf("SNMPPower sizes %d vs %d", len(a.SNMPPower), len(b.SNMPPower))
	}
	for name, as := range a.SNMPPower {
		if err := diffSeries("SNMPPower["+name+"]", as, b.SNMPPower[name]); err != nil {
			return err
		}
	}

	if len(a.IfaceRates) != len(b.IfaceRates) {
		return fmt.Errorf("IfaceRates sizes %d vs %d", len(a.IfaceRates), len(b.IfaceRates))
	}
	for name, am := range a.IfaceRates {
		bm := b.IfaceRates[name]
		if len(am) != len(bm) {
			return fmt.Errorf("IfaceRates[%s] sizes %d vs %d", name, len(am), len(bm))
		}
		for ifName, as := range am {
			if err := diffSeries("IfaceRates["+name+"]["+ifName+"]", as, bm[ifName]); err != nil {
				return err
			}
		}
	}
	if !reflect.DeepEqual(a.IfaceProfiles, b.IfaceProfiles) {
		return fmt.Errorf("IfaceProfiles differ")
	}

	if !reflect.DeepEqual(a.Events, b.Events) {
		return fmt.Errorf("Events differ: %v vs %v", a.Events, b.Events)
	}
	if !reflect.DeepEqual(a.PSUSnapshots, b.PSUSnapshots) {
		return fmt.Errorf("PSUSnapshots differ")
	}
	return nil
}
