package ispnet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/timeseries"
)

// routerShard is the unit of parallelism in Run: one router's complete
// timeline — its filtered event queue, its device advances, its wall
// samples and, for instrumented routers, its Autopower/SNMP/rate traces.
//
// Everything a shard touches while play runs is owned by exactly one
// worker goroutine (goroutine confinement): the *device.Router and
// *meter.Meter belong to this router alone, LoadAt is pure, and the events
// in the queue mutate only this router. The hot path therefore contends on
// no locks. The result fields are read by the merge step only after the
// worker pool has joined.
type routerShard struct {
	net    *Network
	router *Router
	meter  *meter.Meter // nil unless instrumented
	events []scheduledEvent
	steps  []time.Time

	// Per-step contributions to the network totals, indexed like steps.
	// Steps where the router is not deployed contribute exactly 0, which
	// keeps the merged floating-point sums independent of deployment gaps.
	power   []float64
	traffic []float64
	// wall collects the wall-power samples of deployed steps in time
	// order; the merge derives RouterWallMedian from it.
	wall []float64

	// Instrumented-router traces (nil otherwise).
	autopower *timeseries.Series
	snmp      *timeseries.Series
	rates     map[string]*timeseries.Series
	profiles  map[string]model.ProfileKey

	// eventsApplied counts the scheduled events play actually applied
	// (telemetry only; never read by the simulation).
	eventsApplied int

	err error
}

// play replays the router's full study window. It is the sharded port of
// the former time×routers loop: the same event application, traffic
// offering, metering cadence, and device advances, restricted to one
// router.
func (sh *routerShard) play() error {
	n, r := sh.net, sh.router
	cfg := n.Config
	sh.power = make([]float64, len(sh.steps))
	sh.traffic = make([]float64, len(sh.steps))
	if sh.meter != nil {
		sh.autopower = timeseries.New(r.Name + ".autopower")
		sh.rates = make(map[string]*timeseries.Series)
		sh.profiles = make(map[string]model.ProfileKey)
	}

	events := sh.events
	for si, t := range sh.steps {
		// Apply this router's due events in schedule order.
		for len(events) > 0 && !events[0].at.After(t) {
			if err := events[0].apply(); err != nil {
				return fmt.Errorf("ispnet: event %q: %w", events[0].desc, err)
			}
			events = events[1:]
			sh.eventsApplied++
		}
		if !r.Active(t) {
			continue
		}

		// Offer this step's loads.
		var stepTraffic float64
		for i := range r.Interfaces {
			itf := &r.Interfaces[i]
			if itf.Spare {
				continue
			}
			present, admin, oper, _, err := r.Device.InterfaceState(itf.Name)
			if err != nil {
				return err
			}
			if !present || !admin || !oper {
				continue
			}
			load := n.LoadAt(itf, r, t)
			if err := r.Device.SetTraffic(itf.Name, load, PacketRateAt(load)); err != nil {
				return fmt.Errorf("ispnet: %s/%s: %w", r.Name, itf.Name, err)
			}
			stepTraffic += load.BitsPerSecond() / 2
		}

		if sh.meter != nil {
			// Fine-grained external metering plus per-interface rates.
			for sub := time.Duration(0); sub < cfg.SNMPStep; sub += cfg.AutopowerStep {
				v, err := sh.meter.Read(0)
				if err != nil {
					return err
				}
				sh.autopower.Append(t.Add(sub), v.Watts())
				r.Device.Advance(cfg.AutopowerStep)
			}
			for i := range r.Interfaces {
				itf := &r.Interfaces[i]
				sh.profiles[itf.Name] = itf.Profile
				rates, ok := sh.rates[itf.Name]
				if !ok {
					rates = timeseries.New(r.Name + "." + itf.Name + ".rate")
					sh.rates[itf.Name] = rates
				}
				_, _, oper, _, err := r.Device.InterfaceState(itf.Name)
				if err != nil {
					return err
				}
				if oper {
					rates.Append(t, n.LoadAt(itf, r, t).BitsPerSecond())
				} else {
					rates.Append(t, 0)
				}
			}
			if rep, err := r.Device.ReportedTotalPower(); err == nil {
				if sh.snmp == nil {
					sh.snmp = timeseries.New(r.Name + ".snmp")
				}
				sh.snmp.Append(t, rep.Watts())
			}
		} else {
			r.Device.Advance(cfg.SNMPStep)
		}

		w := r.Device.WallPower().Watts()
		sh.power[si] = w
		sh.traffic[si] = stepTraffic
		sh.wall = append(sh.wall, w)
	}
	return nil
}

// playShards drives every shard to completion. workers ≤ 0 selects
// runtime.GOMAXPROCS(0); 1 plays the shards sequentially on the calling
// goroutine with zero pool overhead. The produced data is identical for
// every worker count: shards share no mutable state and the caller reduces
// their results in fleet order.
func playShards(shards []*routerShard, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, sh := range shards {
			if err := sh.playInstrumented(); err != nil {
				return err
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	work := make(chan *routerShard)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range work {
				sh.err = sh.playInstrumented()
			}
		}()
	}
	for _, sh := range shards {
		work <- sh
	}
	close(work)
	wg.Wait()

	// Report the first failure in fleet order, so errors — like the data —
	// do not depend on goroutine scheduling.
	for _, sh := range shards {
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// partitionEvents splits a time-sorted schedule into per-router queues.
// Append order is preserved, so each router sees its events exactly as the
// global schedule ordered them — including events due at the same step.
func partitionEvents(evs []scheduledEvent) map[string][]scheduledEvent {
	out := make(map[string][]scheduledEvent, len(evs))
	for _, e := range evs {
		out[e.router] = append(out[e.router], e)
	}
	return out
}

// medianOf returns the median of the samples, sorting them in place.
func medianOf(samples []float64) float64 {
	sort.Float64s(samples)
	mid := len(samples) / 2
	if len(samples)%2 == 0 {
		return (samples[mid-1] + samples[mid]) / 2
	}
	return samples[mid]
}
