package ispnet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/meter"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

// routerShard is the unit of parallelism in Run: one router's complete
// timeline — its filtered event queue, its device advances, its wall
// samples and, for instrumented routers, its Autopower/SNMP/rate traces.
//
// Everything a shard touches while play runs is owned by exactly one
// worker goroutine (goroutine confinement): the *device.Router and
// *meter.Meter belong to this router alone, LoadAt is pure, and the events
// in the queue mutate only this router. The hot path therefore contends on
// no locks. The result fields are read by the merge step only after the
// worker pool has joined.
type routerShard struct {
	net    *Network
	router *Router
	meter  *meter.Meter // nil unless instrumented
	events []scheduledEvent
	steps  []time.Time
	// snapAt is the mid-window instant of the one-time PSU sensor export.
	// The snapshot is taken by the shard itself (not by the dataset
	// assembly) because EnvSnapshot draws from the router's private rng:
	// capturing it at a fixed point in the shard's replay keeps the rng
	// stream — and therefore every later draw — identical whether the
	// shard ran in a cold Simulate or an incremental Fleet replay.
	snapAt time.Time

	// Per-step contributions to the network totals, indexed like steps.
	// Steps where the router is not deployed contribute exactly 0, which
	// keeps the merged floating-point sums independent of deployment gaps.
	power   []float64
	traffic []float64
	// wall collects the wall-power samples of deployed steps in time
	// order; the merge derives RouterWallMedian from it.
	wall []float64

	// Instrumented-router traces (nil otherwise).
	autopower *timeseries.Series
	snmp      *timeseries.Series
	rates     map[string]*timeseries.Series
	profiles  map[string]model.ProfileKey
	// psus is the mid-window environment-sensor export (nil when the
	// router was not active at snapAt).
	psus []psu.Snapshot

	// plan is the precomputed per-interface replay state: device handle
	// and profile resolved once, rebuilt only when a scheduled event fires
	// (events are the only thing that mutates router.Interfaces). The oper
	// and load fields are per-step scratch, written by the offering loop
	// and reused by the instrumented rates loop — which previously paid a
	// second InterfaceState lookup and a second LoadAt evaluation per
	// interface per step.
	plan []ifacePlan

	// eventsApplied counts the scheduled events play actually applied
	// (telemetry only; never read by the simulation).
	eventsApplied int

	err error
}

// ifacePlan is one interface's precomputed replay state; see
// routerShard.plan.
type ifacePlan struct {
	itf    *Interface
	handle device.Handle
	spare  bool
	// rateSeries caches the instrumented per-interface rate trace so the
	// per-step rates loop skips the map lookup; relinked lazily after a
	// plan rebuild.
	rateSeries *timeseries.Series

	// Per-step scratch.
	oper bool
	load units.BitRate
}

// buildPlan resolves handles and profile keys for the router's current
// interface list. Called before the step loop and again after every event
// application: events may add, drop, or reorder interfaces, which moves
// the backing array the itf pointers index into.
func (sh *routerShard) buildPlan() error {
	r := sh.router
	sh.plan = sh.plan[:0]
	for i := range r.Interfaces {
		itf := &r.Interfaces[i]
		h, err := r.Device.Handle(itf.Name)
		if err != nil {
			return err
		}
		sh.plan = append(sh.plan, ifacePlan{itf: itf, handle: h, spare: itf.Spare})
		if sh.profiles != nil {
			sh.profiles[itf.Name] = itf.Profile
		}
	}
	return nil
}

// ensureBuffers allocates any step buffers the shard arrived without.
// The streaming path (stream.go) pre-attaches pooled, zeroed buffers so
// a bounded working set cycles through the whole fleet; a cold shard
// allocates its own here, once per window.
func (sh *routerShard) ensureBuffers(cfg Config) {
	r := sh.router
	if sh.power == nil {
		sh.power = make([]float64, len(sh.steps))
	}
	if sh.traffic == nil {
		sh.traffic = make([]float64, len(sh.steps))
	}
	if sh.wall == nil {
		sh.wall = make([]float64, 0, len(sh.steps))
	}
	if sh.meter != nil {
		subSteps := int(cfg.SNMPStep / cfg.AutopowerStep)
		if cfg.SNMPStep%cfg.AutopowerStep != 0 {
			subSteps++
		}
		sh.autopower = timeseries.NewWithCap(r.Name+".autopower", len(sh.steps)*subSteps)
		sh.rates = make(map[string]*timeseries.Series, len(r.Interfaces))
		sh.profiles = make(map[string]model.ProfileKey, len(r.Interfaces))
	}
}

// play replays the router's full study window. It is the sharded port of
// the former time×routers loop: the same event application, traffic
// offering, metering cadence, and device advances, restricted to one
// router.
//
//joules:hotpath
func (sh *routerShard) play() error {
	n, r := sh.net, sh.router
	cfg := n.Config
	//jouleslint:ignore hotpath -- cold start: allocates each shard's working set once, before its window replays
	sh.ensureBuffers(cfg)
	if err := sh.buildPlan(); err != nil {
		return err
	}

	events := sh.events
	var cm [trafficgen.NumCohorts]float64
	for si, t := range sh.steps {
		// Apply this router's due events in schedule order; events are the
		// only mutation of the interface list, so the plan is rebuilt here
		// and nowhere else.
		replan := false
		for len(events) > 0 && !events[0].at.After(t) {
			if err := events[0].apply(); err != nil {
				return fmt.Errorf("ispnet: event %q: %w", events[0].desc, err)
			}
			events = events[1:]
			sh.eventsApplied++
			replan = true
		}
		if replan {
			if err := sh.buildPlan(); err != nil {
				return err
			}
		}
		if !r.Active(t) {
			continue
		}

		// Offer this step's loads: one lock acquisition for the whole
		// batch, handle-addressed interface access, one diurnal (or cohort)
		// multiplier evaluation for the step.
		mult := n.diurnal.Multiplier(t, nil)
		if n.hier {
			trafficgen.CohortMultipliers(t, &cm)
		}
		st := r.Device.BeginStep()
		var stepTraffic float64
		for pi := range sh.plan {
			p := &sh.plan[pi]
			p.oper = false
			p.load = 0
			if p.spare {
				continue
			}
			present, admin, oper := st.InterfaceState(p.handle)
			p.oper = oper
			if !present || !admin || !oper {
				continue
			}
			load := n.loadAt(p.itf, r, t, mult, &cm)
			if err := st.SetTraffic(p.handle, load, PacketRateAt(load)); err != nil {
				st.End()
				return fmt.Errorf("ispnet: %s/%s: %w", r.Name, p.itf.Name, err)
			}
			p.load = load
			stepTraffic += load.BitsPerSecond() / 2
		}

		var w float64
		if sh.meter != nil {
			// Fine-grained external metering plus per-interface rates. The
			// meter samples the router through its own lock, so the batch
			// ends before the metered sub-loop.
			st.End()
			for sub := time.Duration(0); sub < cfg.SNMPStep; sub += cfg.AutopowerStep {
				v, err := sh.meter.Read(0)
				if err != nil {
					return err
				}
				sh.autopower.Append(t.Add(sub), v.Watts())
				r.Device.Advance(cfg.AutopowerStep)
			}
			for pi := range sh.plan {
				p := &sh.plan[pi]
				if p.rateSeries == nil {
					rates, ok := sh.rates[p.itf.Name]
					if !ok {
						//jouleslint:ignore hotpath -- lazy per-interface series creation: first metered step for that interface only
						rates = timeseries.NewWithCap(r.Name+"."+p.itf.Name+".rate", len(sh.steps))
						sh.rates[p.itf.Name] = rates
					}
					p.rateSeries = rates
				}
				// The oper state and load were computed by the offering
				// loop above; advancing the clock changes neither.
				if p.oper {
					p.rateSeries.Append(t, p.load.BitsPerSecond())
				} else {
					p.rateSeries.Append(t, 0)
				}
			}
			if rep, err := r.Device.ReportedTotalPower(); err == nil {
				if sh.snmp == nil {
					//jouleslint:ignore hotpath -- lazy one-time creation of the reported-power series
					sh.snmp = timeseries.NewWithCap(r.Name+".snmp", len(sh.steps))
				}
				sh.snmp.Append(t, rep.Watts())
			}
			w = r.Device.WallPower().Watts()
		} else {
			st.Advance(cfg.SNMPStep)
			w = st.WallPower().Watts()
			st.End()
		}

		sh.power[si] = w
		sh.traffic[si] = stepTraffic
		sh.wall = append(sh.wall, w)
	}
	// One-time PSU export after the window (§9.2). Taken here — not by
	// the caller — so the draws land at the same point of the router's
	// rng stream in cold and incremental replays alike.
	if !sh.snapAt.IsZero() && r.Active(sh.snapAt) {
		//jouleslint:ignore hotpath -- one-time PSU export after the window (§9.2), not per step
		sh.psus = r.Device.EnvSnapshot()
	}
	return nil
}

// playShards drives every shard to completion. workers ≤ 0 selects
// runtime.GOMAXPROCS(0); 1 plays the shards sequentially on the calling
// goroutine with zero pool overhead. The produced data is identical for
// every worker count: shards share no mutable state and the caller reduces
// their results in fleet order.
func playShards(shards []*routerShard, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, sh := range shards {
			if err := sh.playInstrumented(); err != nil {
				return err
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	work := make(chan *routerShard)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range work {
				sh.err = sh.playInstrumented()
			}
		}()
	}
	for _, sh := range shards {
		work <- sh
	}
	close(work)
	wg.Wait()

	// Report the first failure in fleet order, so errors — like the data —
	// do not depend on goroutine scheduling.
	for _, sh := range shards {
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// partitionEvents splits a time-sorted schedule into per-router queues.
// Append order is preserved, so each router sees its events exactly as the
// global schedule ordered them — including events due at the same step.
// A first pass counts events per router so the map is sized to the number
// of routers with events (not the event count) and each queue is allocated
// exactly once at its final length.
func partitionEvents(evs []scheduledEvent) map[string][]scheduledEvent {
	counts := make(map[string]int)
	for _, e := range evs {
		counts[e.router]++
	}
	out := make(map[string][]scheduledEvent, len(counts))
	for _, e := range evs {
		q, ok := out[e.router]
		if !ok {
			q = make([]scheduledEvent, 0, counts[e.router])
		}
		out[e.router] = append(q, e)
	}
	return out
}

// medianOf returns the median of the samples, sorting them in place.
func medianOf(samples []float64) float64 {
	sort.Float64s(samples)
	mid := len(samples) / 2
	if len(samples)%2 == 0 {
		return (samples[mid-1] + samples[mid]) / 2
	}
	return samples[mid]
}
