package ispnet

import (
	"math"
	"testing"
	"time"

	"fantasticjoules/internal/units"
)

// quickCfg is a short window for fast tests: 3 days at 15-minute polls.
func quickCfg() Config {
	return Config{
		Seed:          42,
		Duration:      3 * 24 * time.Hour,
		SNMPStep:      15 * time.Minute,
		AutopowerStep: 5 * time.Minute,
	}
}

// fullCfg covers the whole 9-week window at a coarse step so the
// scheduled events all fire.
func fullCfg() Config {
	return Config{
		Seed:          42,
		SNMPStep:      time.Hour,
		AutopowerStep: 30 * time.Minute,
	}
}

func TestBuildFleetShape(t *testing.T) {
	n, err := Build(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Routers) != NumRouters {
		t.Fatalf("routers = %d, want %d", len(n.Routers), NumRouters)
	}
	var internal, external, spares int
	pops := map[string]bool{}
	for _, r := range n.Routers {
		pops[r.PoP] = true
		for _, itf := range r.Interfaces {
			switch {
			case itf.Spare:
				spares++
			case itf.External:
				external++
			default:
				internal++
			}
		}
	}
	frac := float64(external) / float64(external+internal)
	// §8: 51 % of the interfaces are external.
	if frac < 0.40 || frac > 0.62 {
		t.Errorf("external interface fraction = %.2f, want ≈0.51", frac)
	}
	if spares < 50 {
		t.Errorf("spares = %d; the fleet should stage plenty of plugged spares", spares)
	}
	if len(pops) < 10 {
		t.Errorf("PoPs = %d, want a spread-out network", len(pops))
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Routers {
		if a.Routers[i].Name != b.Routers[i].Name ||
			len(a.Routers[i].Interfaces) != len(b.Routers[i].Interfaces) {
			t.Fatalf("network not deterministic at router %d", i)
		}
	}
}

func TestInternalLinksPairedConsistently(t *testing.T) {
	n, err := Build(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range n.Routers {
		for _, itf := range r.Interfaces {
			if itf.PeerRouter == "" {
				continue
			}
			peer, ok := n.RouterByName(itf.PeerRouter)
			if !ok {
				t.Fatalf("%s/%s points at unknown router %s", r.Name, itf.Name, itf.PeerRouter)
			}
			var back *Interface
			for i := range peer.Interfaces {
				if peer.Interfaces[i].Name == itf.PeerInterface {
					back = &peer.Interfaces[i]
				}
			}
			if back == nil {
				t.Fatalf("%s/%s peer interface %s missing on %s", r.Name, itf.Name, itf.PeerInterface, peer.Name)
			}
			if back.PeerRouter != r.Name || back.PeerInterface != itf.Name {
				t.Fatalf("asymmetric link %s/%s <-> %s/%s", r.Name, itf.Name, peer.Name, back.Name)
			}
			if back.MeanLoad != itf.MeanLoad {
				t.Fatalf("link ends disagree on load: %v vs %v", itf.MeanLoad, back.MeanLoad)
			}
		}
	}
}

func TestAutopowerRouterSelection(t *testing.T) {
	n, err := Build(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	aps := n.AutopowerRouters()
	if len(aps) != 3 {
		t.Fatalf("autopower routers = %d, want 3", len(aps))
	}
	models := map[string]bool{}
	for _, r := range aps {
		models[r.Device.Model()] = true
	}
	for _, want := range []string{"8201-32FH", "NCS-55A1-24H", "N540X-8Z16G-SYS-A"} {
		if !models[want] {
			t.Errorf("missing instrumented %s (the Fig. 4 trio)", want)
		}
	}
}

func TestSimulateHeadlineNumbers(t *testing.T) {
	ds, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1 calibration: ≈21.5–22 kW, ≈0.5–1.5 Tbps carried.
	if mean := ds.TotalPower.Mean(); mean < 20500 || mean > 23000 {
		t.Errorf("total power = %.0f W, want ≈21.5–22 kW", mean)
	}
	tr := ds.TotalTraffic.Mean()
	if tr < 0.4e12 || tr > 1.6e12 {
		t.Errorf("total traffic = %.2f Tbps, want within Fig. 1's band", tr/1e12)
	}
	util := tr / ds.TotalCapacity.BitsPerSecond()
	if util < 0.005 || util > 0.04 {
		t.Errorf("utilization = %.3f, want a lightly loaded network", util)
	}
	// One router is only commissioned in week 5 (a Fig. 1 step), so a short
	// window sees the fleet minus that unit.
	if len(ds.PSUSnapshots) != NumRouters-1 {
		t.Errorf("snapshots = %d, want %d", len(ds.PSUSnapshots), NumRouters-1)
	}
}

func TestSimulateTable1Medians(t *testing.T) {
	ds, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{ // Table 1, "Measured Median" column
		"NCS-55A1-24H":      358,
		"ASR-920-24SZ-M":    73,
		"NCS-55A1-24Q6H-SS": 285,
		"NCS-55A1-48Q6H":    346,
		"ASR-9001":          335,
		"N540-24Z8Q2C-M":    159,
		"8201-32FH":         359,
		"8201-24H8FH":       296,
	}
	medians := map[string][]float64{}
	for name, med := range ds.RouterWallMedian {
		r, ok := ds.Network.RouterByName(name)
		if !ok {
			t.Fatalf("median for unknown router %s", name)
		}
		medians[r.Device.Model()] = append(medians[r.Device.Model()], med.Watts())
	}
	for modelName, target := range want {
		vals := medians[modelName]
		if len(vals) == 0 {
			t.Errorf("no routers of model %s", modelName)
			continue
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		mean := sum / float64(len(vals))
		if math.Abs(mean-target) > 0.08*target {
			t.Errorf("%s mean median = %.0f W, want ≈%.0f (Table 1)", modelName, mean, target)
		}
	}
}

func TestDiurnalVisibleInTraffic(t *testing.T) {
	ds, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalTraffic.Max() < 1.3*ds.TotalTraffic.Min() {
		t.Errorf("traffic swing too flat: min %.2f max %.2f Tbps",
			ds.TotalTraffic.Min()/1e12, ds.TotalTraffic.Max()/1e12)
	}
	// Power barely follows traffic (§7: the correlation is invisible at
	// network scale): the power swing must be a tiny fraction of the mean.
	swing := ds.TotalPower.Max() - ds.TotalPower.Min()
	if swing/ds.TotalPower.Mean() > 0.05 {
		t.Errorf("power swing = %.1f%% of mean; traffic should barely move network power",
			100*swing/ds.TotalPower.Mean())
	}
}

func TestAutopowerTraces(t *testing.T) {
	ds, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Autopower) != 3 {
		t.Fatalf("autopower traces = %d", len(ds.Autopower))
	}
	// The sensorless N540X must have no SNMP trace; the other two must.
	if len(ds.SNMPPower) != 2 {
		t.Fatalf("snmp traces = %d, want 2 (N540X reports nothing)", len(ds.SNMPPower))
	}
	for name := range ds.SNMPPower {
		r, _ := ds.Network.RouterByName(name)
		if r.Device.Model() == "N540X-8Z16G-SYS-A" {
			t.Error("the N540X must not report PSU power")
		}
	}
	// Autopower sampling is denser than SNMP.
	for name, ap := range ds.Autopower {
		if snmp, ok := ds.SNMPPower[name]; ok && ap.Len() <= snmp.Len() {
			t.Errorf("%s: autopower (%d) must be denser than snmp (%d)", name, ap.Len(), snmp.Len())
		}
	}
}

func TestSNMPOffsetOn8201(t *testing.T) {
	// Fig. 4a: the 8201's PSU reports match the shape but sit ≈15–20 W off.
	ds, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for name, snmp := range ds.SNMPPower {
		r, _ := ds.Network.RouterByName(name)
		if r.Device.Model() != "8201-32FH" {
			continue
		}
		diff := snmp.Median() - ds.Autopower[name].Median()
		if diff < 10 || diff > 25 {
			t.Errorf("8201 PSU offset = %.1f W, want ≈15–20", diff)
		}
	}
}

func TestFullWindowEvents(t *testing.T) {
	ds, err := Simulate(fullCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Events) < 5 {
		t.Fatalf("events = %d, want the Fig. 4 set", len(ds.Events))
	}

	// Locate the instrumented 8201 and its trace.
	var name string
	for _, r := range ds.Network.AutopowerRouters() {
		if r.Device.Model() == "8201-32FH" {
			name = r.Name
		}
	}
	ap := ds.Autopower[name]
	start := ds.Network.Config.Start

	// The FR4 removal at day 38 must drop power by ≈10–16 W.
	before := ap.Between(start.Add(36*24*time.Hour), start.Add(38*24*time.Hour)).Mean()
	after := ap.Between(start.Add(38*24*time.Hour+2*time.Hour), start.Add(40*24*time.Hour)).Mean()
	drop := before - after
	if drop < 8 || drop > 20 {
		t.Errorf("FR4 removal dropped %.1f W, want ≈13 (11 W module + port)", drop)
	}

	// The day-60 addition must raise power again.
	preAdd := ap.Between(start.Add(58*24*time.Hour), start.Add(60*24*time.Hour)).Mean()
	postAdd := ap.Between(start.Add(60*24*time.Hour+2*time.Hour), start.Add(62*24*time.Hour)).Mean()
	if postAdd <= preAdd {
		t.Errorf("interface addition did not raise power: %.1f -> %.1f", preAdd, postAdd)
	}

	// Fig. 1 steps: total power in week 4 (after the decommission) must be
	// clearly below week 1.
	w1 := ds.TotalPower.Between(start, start.Add(7*24*time.Hour)).Mean()
	w4 := ds.TotalPower.Between(start.Add(22*24*time.Hour), start.Add(28*24*time.Hour)).Mean()
	if w1-w4 < 100 {
		t.Errorf("decommissioning step too small: week1 %.0f vs week4 %.0f", w1, w4)
	}
	// ... and back up after the week-5 commissioning.
	w8 := ds.TotalPower.Between(start.Add(49*24*time.Hour), start.Add(56*24*time.Hour)).Mean()
	if w8 <= w4 {
		t.Errorf("commissioning step missing: week4 %.0f vs week8 %.0f", w4, w8)
	}

	// Snapshot at mid-window: the decommissioned router (and the
	// not-yet-commissioned one) are absent.
	if len(ds.PSUSnapshots) != NumRouters-2 {
		t.Errorf("snapshots = %d, want %d", len(ds.PSUSnapshots), NumRouters-2)
	}
}

func TestIfaceRatesTrackFlapping(t *testing.T) {
	ds, err := Simulate(fullCfg())
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for _, r := range ds.Network.AutopowerRouters() {
		if r.Device.Model() == "8201-32FH" {
			name = r.Name
		}
	}
	start := ds.Network.Config.Start
	flapStart := start.Add(51 * 24 * time.Hour)
	flapEnd := start.Add(54 * 24 * time.Hour)
	// Exactly one interface must go silent across the repair window and
	// come back after.
	silent := 0
	for _, rates := range ds.IfaceRates[name] {
		during := rates.Between(flapStart.Add(2*time.Hour), flapEnd.Add(-2*time.Hour))
		afterWindow := rates.Between(flapEnd.Add(2*time.Hour), flapEnd.Add(48*time.Hour))
		if during.Len() > 0 && during.Max() == 0 && afterWindow.Max() > 0 {
			silent++
		}
	}
	if silent != 1 {
		t.Errorf("silent-then-recovered interfaces = %d, want exactly the flapping one", silent)
	}
}

func TestSimulateOSUpgrade(t *testing.T) {
	series, upgrade, err := SimulateOSUpgrade(9)
	if err != nil {
		t.Fatal(err)
	}
	before := series.Between(upgrade.Add(-5*24*time.Hour), upgrade).Mean()
	after := series.Between(upgrade, upgrade.Add(5*24*time.Hour)).Mean()
	bump := after - before
	// Fig. 8: ≈45 W (+12 %).
	if bump < 35 || bump > 55 {
		t.Errorf("OS upgrade bump = %.1f W, want ≈45", bump)
	}
	if rel := bump / before; rel < 0.08 || rel > 0.16 {
		t.Errorf("relative bump = %.1f%%, want ≈12%%", rel*100)
	}
}

func TestLoadAtBounds(t *testing.T) {
	n, err := Build(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := n.Routers[0]
	ts := n.Config.Start
	for i := range r.Interfaces {
		itf := &r.Interfaces[i]
		for d := 0; d < 48; d++ {
			load := n.LoadAt(itf, r, ts.Add(time.Duration(d)*30*time.Minute))
			if load < 0 {
				t.Fatalf("negative load on %s", itf.Name)
			}
			if itf.Spare && load != 0 {
				t.Fatalf("spare %s carries traffic", itf.Name)
			}
			if load > itf.Profile.Speed*2 {
				t.Fatalf("load %v exceeds 2x line rate on %s", load, itf.Name)
			}
		}
	}
}

func TestLoadAtDeterministic(t *testing.T) {
	n, _ := Build(quickCfg())
	r := n.Routers[3]
	itf := &r.Interfaces[0]
	ts := n.Config.Start.Add(90 * time.Minute)
	if n.LoadAt(itf, r, ts) != n.LoadAt(itf, r, ts) {
		t.Error("LoadAt must be deterministic per (interface, time)")
	}
}

func TestTotalCapacityCountsLinksOnce(t *testing.T) {
	ds, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var raw units.BitRate
	for _, r := range ds.Network.Routers {
		for _, itf := range r.Interfaces {
			if !itf.Spare {
				raw += itf.Profile.Speed
			}
		}
	}
	if ds.TotalCapacity != raw/2 {
		t.Errorf("capacity = %v, want %v (each link once)", ds.TotalCapacity, raw/2)
	}
}

// TestInventoryMatchesDeviceState checks the invariant between the
// deployment records and the electrical simulation: every non-spare
// record is plugged and admin-up on the device, and every spare is
// plugged but admin-down.
func TestInventoryMatchesDeviceState(t *testing.T) {
	n, err := Build(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range n.Routers {
		for _, itf := range r.Interfaces {
			present, admin, _, key, err := r.Device.InterfaceState(itf.Name)
			if err != nil {
				t.Fatal(err)
			}
			if !present {
				t.Fatalf("%s/%s recorded but not plugged", r.Name, itf.Name)
			}
			if key != itf.Profile {
				t.Fatalf("%s/%s profile mismatch: device %v, record %v",
					r.Name, itf.Name, key, itf.Profile)
			}
			if itf.Spare && admin {
				t.Fatalf("%s/%s is a spare but admin-up", r.Name, itf.Name)
			}
			if !itf.Spare && !admin {
				t.Fatalf("%s/%s configured but admin-down", r.Name, itf.Name)
			}
		}
	}
}
