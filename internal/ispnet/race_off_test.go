//go:build !race

package ispnet

// raceEnabled reports whether the race detector instruments this test
// binary; the large-fleet memory-budget test skips under it (shadow
// memory multiplies the heap several-fold).
const raceEnabled = false
