package ispnet_test

import (
	"fmt"
	"testing"
	"time"

	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
)

// hierTestCfg is the short study window the cross-scale property tests
// simulate: long enough to cover a diurnal swing, cheap enough to run at
// 10k routers.
func hierTestCfg(routers int, d time.Duration) ispnet.Config {
	return ispnet.Config{
		Seed:          42,
		Routers:       routers,
		Duration:      d,
		SNMPStep:      time.Hour,
		AutopowerStep: 30 * time.Minute,
	}
}

// TestTopologyInvariantsAcrossScales asserts the structural invariants the
// hierarchical generator must preserve at every fleet size — on the
// calibrated 107-router build and on generated 1k and 10k fleets:
// external-interface share near the paper's level, full connectivity of
// the internal topology, and deterministic generation (same seed ⇒
// bit-identical datasets under the DiffDatasets oracle).
func TestTopologyInvariantsAcrossScales(t *testing.T) {
	cases := []struct {
		routers int
		dur     time.Duration
	}{
		{107, 24 * time.Hour},
		{1000, 24 * time.Hour},
		{10000, 6 * time.Hour},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("routers=%d", tc.routers), func(t *testing.T) {
			if tc.routers > 1000 && testing.Short() {
				t.Skip("10k fleet build is not a -short test")
			}
			cfg := hierTestCfg(tc.routers, tc.dur)
			n, err := ispnet.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(n.Routers) != tc.routers {
				t.Fatalf("built %d routers, want %d", len(n.Routers), tc.routers)
			}

			// ≈51 % external share (the calibrated fleet sits at ≈45 % of
			// interface count; the generator reuses its deploy templates,
			// so the share must stay in the same band at every size).
			ext, tot := 0, 0
			for _, r := range n.Routers {
				for i := range r.Interfaces {
					if r.Interfaces[i].Spare {
						continue
					}
					tot++
					if r.Interfaces[i].External {
						ext++
					}
				}
			}
			share := float64(ext) / float64(tot)
			if share < 0.40 || share > 0.55 {
				t.Errorf("external interface share %.3f outside [0.40, 0.55] (%d/%d)", share, ext, tot)
			}

			// Connectivity: the internal topology is one component.
			topo, _, err := hypnos.FromNetwork(n)
			if err != nil {
				t.Fatal(err)
			}
			if got := hypnos.Components(topo, make([]bool, len(topo.Links))); got != 1 {
				t.Errorf("internal topology has %d components, want 1", got)
			}

			// Determinism: same seed, same config ⇒ bit-identical dataset.
			ds1, err := ispnet.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ds2, err := ispnet.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := ispnet.DiffDatasets(ds1, ds2); err != nil {
				t.Errorf("same-seed datasets differ: %v", err)
			}
			if ds1.TotalPower.Len() == 0 || ds1.TotalPower.Value(0) <= 0 {
				t.Errorf("implausible total power series: len %d", ds1.TotalPower.Len())
			}
		})
	}
}

// TestHierarchyStructure checks the generated fleet's shape: all three
// tiers present, a subscriber population in the right order of magnitude,
// dual-homed access gateways, and hand-set-demand bookkeeping consistent
// with the cohort vectors.
func TestHierarchyStructure(t *testing.T) {
	cfg := hierTestCfg(1000, time.Hour)
	n, err := ispnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Hierarchical() {
		t.Fatal("1000-router build must be hierarchical")
	}
	tiers := map[string]int{}
	for _, r := range n.Routers {
		tiers[r.Tier]++
	}
	for _, tier := range []string{"access", "metro", "core"} {
		if tiers[tier] == 0 {
			t.Errorf("no %s routers in a 1000-router fleet (%v)", tier, tiers)
		}
	}
	if tiers["access"] <= tiers["metro"] || tiers["metro"] <= tiers["core"] {
		t.Errorf("tier pyramid violated: %v", tiers)
	}

	// ~520 access routers × O(1000) subscribers each.
	if subs := n.TotalSubscribers(); subs < 100_000 || subs > 5_000_000 {
		t.Errorf("synthetic subscriber count %d outside the plausible band for 1k routers", subs)
	}

	// MeanLoad must equal the cohort-demand sum on every interface, and
	// subscriber populations live only on access external interfaces.
	for _, r := range n.Routers {
		for i := range r.Interfaces {
			itf := &r.Interfaces[i]
			sum := itf.SubDemand[0] + itf.SubDemand[1] + itf.SubDemand[2]
			if diff := itf.MeanLoad.BitsPerSecond() - sum; diff > 1 || diff < -1 {
				t.Fatalf("%s/%s: MeanLoad %v != cohort sum %v", r.Name, itf.Name, itf.MeanLoad.BitsPerSecond(), sum)
			}
			if itf.Subscribers > 0 && (r.Tier != "access" || !itf.External) {
				t.Fatalf("%s/%s: subscribers on a %s %s interface", r.Name, itf.Name, r.Tier, map[bool]string{true: "external", false: "internal"}[itf.External])
			}
		}
	}

	// The calibrated build reports no synthetic subscribers.
	legacy, err := ispnet.Build(ispnet.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Hierarchical() || legacy.TotalSubscribers() != 0 {
		t.Errorf("107-router build must stay on the calibrated path (hier=%v subs=%d)", legacy.Hierarchical(), legacy.TotalSubscribers())
	}
}

// TestHierarchyRejectsTinyFleets pins the minimum size error.
func TestHierarchyRejectsTinyFleets(t *testing.T) {
	if _, err := ispnet.Build(ispnet.Config{Seed: 1, Routers: 4}); err == nil {
		t.Fatal("want an error for a 4-router hierarchical fleet")
	}
}
