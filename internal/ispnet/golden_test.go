package ispnet

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"
)

// fleetFingerprint hashes everything a simulation reads from a built
// fleet: router names, models, tiers, and for every interface (spares
// included) its name, speed, external flag, the Float64bits of its mean
// load and cohort demand split, and its noise key. Any change to the
// builder that would shift simulated output shifts this hash.
func fleetFingerprint(n *Network) uint64 {
	h := fnv.New64a()
	put := func(format string, args ...any) {
		fmt.Fprintf(h, format, args...)
	}
	for _, r := range n.Routers {
		put("R|%s|%s|%s|%v\n", r.Name, r.Device.Model(), r.Tier, r.Autopower)
		for _, itf := range r.Interfaces {
			put("I|%s|%v|%v|%v|%x|%d|%x|%x|%x|%x\n",
				itf.Name, itf.Profile, itf.External, itf.Spare,
				math.Float64bits(float64(itf.MeanLoad)), itf.Subscribers,
				math.Float64bits(itf.SubDemand[0]),
				math.Float64bits(itf.SubDemand[1]),
				math.Float64bits(itf.SubDemand[2]),
				itf.noiseKey)
		}
	}
	return h.Sum64()
}

// golden107Fingerprint pins the calibrated 107-router fleet. The noise
// rekey satellite and the hierarchy generator must leave this build
// byte-for-byte untouched; if an intentional calibration change moves
// it, re-pin with the value from the failure message.
const golden107Fingerprint uint64 = 0xe522778e04305d93

func TestGolden107Fingerprint(t *testing.T) {
	n, err := Build(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if n.Hierarchical() {
		t.Fatal("default config must take the calibrated build path")
	}
	if got := fleetFingerprint(n); got != golden107Fingerprint {
		t.Fatalf("calibrated 107-router fleet changed: fingerprint %#x, want %#x", got, golden107Fingerprint)
	}
}

// TestNoiseKeyInjectivity is the collision audit the rekey satellite
// demanded: at 100k-interface cardinality the legacy name-keyed FNV hash
// risks birthday collisions that would correlate noise across unrelated
// interfaces. The structural (router index, interface index) key is
// injective by construction; this verifies it on a generated fleet.
func TestNoiseKeyInjectivity(t *testing.T) {
	n, err := Build(Config{Seed: 42, Routers: 1000})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]string)
	ifaces := 0
	for _, r := range n.Routers {
		for _, itf := range r.Interfaces {
			ifaces++
			if itf.noiseKey == 0 {
				t.Fatalf("%s/%s has no noise key", r.Name, itf.Name)
			}
			if prev, dup := seen[itf.noiseKey]; dup {
				t.Fatalf("noise key collision: %s/%s and %s", r.Name, itf.Name, prev)
			}
			seen[itf.noiseKey] = r.Name + "/" + itf.Name
		}
	}
	if ifaces < 10000 {
		t.Fatalf("1k-router fleet has only %d interfaces; audit sample too small", ifaces)
	}
}
