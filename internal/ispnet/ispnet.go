// Package ispnet synthesizes the Tier-2 ISP network the paper studies
// (Switch): 107 deployed routers across points of presence, their
// transceiver inventories, internal and external links, and the
// 5-minute SNMP / sub-minute Autopower traces every analysis consumes.
//
// This is the substitute for the paper's production dataset. The network
// is calibrated to the concrete numbers the paper reports: ≈21.5–22 kW
// total power at ≈1–2 Tbps total traffic (Fig. 1), ≈10 % of power in
// transceivers (§7), ≈51 % external interfaces (§8), per-model median
// powers near Table 1, and the trace events of Fig. 4 (transceiver
// removal, interface flapping, PSU power cycling at Autopower install).
//
// The replay is sharded per router (shard.go) and instrumented on the
// process-wide telemetry registry (metrics.go): shard replay durations,
// routers/events/samples processed, and worker-pool occupancy — without
// perturbing the bit-identical-at-any-worker-count guarantee that
// determinism_test.go pins.
package ispnet

import (
	"fmt"
	"math/rand"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

// Config parameterizes the synthetic network.
type Config struct {
	// Seed drives all randomness; equal seeds give identical networks.
	Seed int64
	// Start is the beginning of the study window (default 2024-09-01 UTC,
	// matching the Fig. 1/4 x-axes).
	Start time.Time
	// Duration is the study window length (default 9 weeks — the window
	// the paper's figures show; the full 10-month collection is just a
	// longer run of the same generator).
	Duration time.Duration
	// SNMPStep is the SNMP polling interval (default 5 min, as deployed).
	SNMPStep time.Duration
	// AutopowerStep is the external-meter sampling interval used for the
	// three instrumented routers. The hardware samples at 0.5 s; traces
	// default to 1 min here, which is already far denser than the
	// 30-minute smoothing the analyses apply.
	AutopowerStep time.Duration
	// Routers selects the fleet size. The default (0, normalized to
	// NumRouters) builds the paper's calibrated 107-router Switch network,
	// bit-identical to every prior release. Any other value builds the
	// hierarchical access → metro → core fleet of that many routers
	// (hierarchy.go) with subscriber-synthesized demand; 8 is the minimum,
	// 100k the intended ceiling.
	Routers int
	// Workers bounds how many router shards Run simulates concurrently.
	// Per-router state is independent (each router owns its device, its
	// meter, and its events), so the fleet replay is embarrassingly
	// parallel; only the network-total reduction is shared, and Run
	// performs it in fixed fleet order after the shards join. 0 (the
	// default) uses runtime.GOMAXPROCS(0); 1 plays the shards one after
	// another on the calling goroutine (the serial reference path). Every
	// worker count produces a bit-identical Dataset for the same seed.
	Workers int
}

func (c *Config) applyDefaults() {
	if c.Routers == 0 {
		c.Routers = NumRouters
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Duration == 0 {
		c.Duration = 9 * 7 * 24 * time.Hour
	}
	if c.SNMPStep == 0 {
		c.SNMPStep = 5 * time.Minute
	}
	if c.AutopowerStep == 0 {
		c.AutopowerStep = time.Minute
	}
}

// NumRouters is the size of the studied network.
const NumRouters = 107

// Interface describes one deployed interface: its power profile, role,
// and offered mean load.
type Interface struct {
	Name string
	// Profile is the port/transceiver/speed class.
	Profile model.ProfileKey
	// External reports whether the interface connects to another network
	// (§8: such links cannot be slept by an intra-domain scheme).
	External bool
	// Spare marks a transceiver left plugged into an admin-down port
	// (operators stage spares this way, §6.2) — it draws Ptrx,in but
	// carries no configuration or traffic.
	Spare bool
	// MeanLoad is the long-term mean bidirectional traffic.
	MeanLoad units.BitRate
	// PeerRouter and PeerInterface name the far end for internal links;
	// empty for external and spare interfaces.
	PeerRouter    string
	PeerInterface string
	// Subscribers counts the synthetic subscribers homed on this interface.
	// Only hierarchical fleets populate it; the calibrated 107-router
	// build hand-sets MeanLoad instead and leaves it 0.
	Subscribers int
	// SubDemand is the per-cohort aggregate mean demand in bit/s
	// (hierarchical fleets only; see trafficgen's subscriber synthesis).
	// MeanLoad is its sum.
	SubDemand [trafficgen.NumCohorts]float64
	// noiseKey seeds the per-(interface, step) traffic noise on
	// hierarchical fleets. It is derived from the (router index, interface
	// index) pair through a bijective mixer, so it is collision-free by
	// construction at any fleet size — unlike hashing the interface's
	// name, which at 100k-router cardinality (millions of names) would
	// correlate the noise of birthday-colliding interfaces.
	noiseKey uint64
}

// Router is one deployed router: the simulated device plus its deployment
// metadata.
type Router struct {
	// Name is the anonymized router name; the PoP is encoded in the
	// prefix so intra-PoP relations stay visible (the paper's
	// anonymization preserves this).
	Name string
	PoP  string
	// Tier is the PoP tier on hierarchical fleets ("access", "metro",
	// "core"); empty on the calibrated 107-router build.
	Tier string
	// Device is the electrical simulation.
	Device *device.Router
	// Interfaces lists the deployed interfaces (configured or spare).
	Interfaces []Interface
	// Autopower marks the three externally metered routers.
	Autopower bool
	// retired records ports whose interface was removed mid-run; they are
	// never reused, so trace labels stay unambiguous.
	retired map[string]bool
	// ActiveFrom/ActiveTo bound the router's deployment within the study
	// window (hardware (de)commissioning, visible as steps in Fig. 1).
	// Zero values mean "the whole window".
	ActiveFrom, ActiveTo time.Time
}

// Active reports whether the router is deployed at time t.
func (r *Router) Active(t time.Time) bool {
	if !r.ActiveFrom.IsZero() && t.Before(r.ActiveFrom) {
		return false
	}
	if !r.ActiveTo.IsZero() && !t.Before(r.ActiveTo) {
		return false
	}
	return true
}

// Network is the deployed fleet.
type Network struct {
	Config  Config
	Routers []*Router

	rng     *rand.Rand
	diurnal trafficgen.Diurnal
	byName  map[string]*Router
	// hier marks a hierarchical fleet: loads come from the per-interface
	// cohort demand vectors instead of the calibrated MeanLoad path.
	hier bool
	// subscribers is the fleet-wide synthetic subscriber count.
	subscribers int64
}

// Hierarchical reports whether the network was built by the hierarchical
// topology generator (Config.Routers != NumRouters) rather than the
// calibrated 107-router plan.
func (n *Network) Hierarchical() bool { return n.hier }

// TotalSubscribers returns the number of synthetic subscribers the fleet
// serves. The calibrated 107-router build reports 0 — its demand is
// hand-set per interface, not synthesized from a population.
func (n *Network) TotalSubscribers() int64 { return n.subscribers }

// RouterByName looks a router up by its anonymized name.
func (n *Network) RouterByName(name string) (*Router, bool) {
	r, ok := n.byName[name]
	return r, ok
}

// AutopowerRouters returns the externally metered routers in name order.
func (n *Network) AutopowerRouters() []*Router {
	var out []*Router
	for _, r := range n.Routers {
		if r.Autopower {
			out = append(out, r)
		}
	}
	return out
}

// deployment templates: per hardware model, how a typical deployed unit is
// populated. Loads are small fractions of line rate — the network runs at
// ≈1.3 % utilization (Fig. 1).
type deployTemplate struct {
	count int // routers of this model in the fleet
	// interface groups: count × profile at a mean utilization.
	groups []deployGroup
	spares int // transceivers plugged into admin-down ports
	// spareGroup selects which group's transceiver type the spares use,
	// as a 1-based index; 0 means the last group (spares tend to be the
	// pricey optics staged for the backbone).
	spareGroup int
}

// spareGroupIndex resolves the spare transceiver group.
func (t deployTemplate) spareGroupIndex() int {
	if t.spareGroup > 0 && t.spareGroup <= len(t.groups) {
		return t.spareGroup - 1
	}
	return len(t.groups) - 1
}

type deployGroup struct {
	n           int
	trx         model.TransceiverType
	speed       units.BitRate
	utilization float64 // mean load as a fraction of speed
	external    bool
}

func fleetPlan() map[string]deployTemplate {
	g := units.GigabitPerSecond
	return map[string]deployTemplate{
		// Access/edge: many small ASR-920s, customer-facing optics plus a
		// couple of backbone uplinks.
		"ASR-920-24SZ-M": {count: 33, groups: []deployGroup{
			{n: 4, trx: model.LR, speed: 10 * g, utilization: 0.08, external: true},
			{n: 3, trx: model.BaseT, speed: 1 * g, utilization: 0.10, external: true},
			{n: 3, trx: model.LR, speed: 10 * g, utilization: 0.06},
			{n: 4, trx: model.PassiveDAC, speed: 10 * g, utilization: 0.03},
		}, spares: 1},
		"N540-24Z8Q2C-M": {count: 15, groups: []deployGroup{
			{n: 5, trx: model.LR, speed: 10 * g, utilization: 0.08, external: true},
			{n: 3, trx: model.LR, speed: 10 * g, utilization: 0.06},
			{n: 4, trx: model.PassiveDAC, speed: 25 * g, utilization: 0.02},
		}, spares: 1},
		"N540X-8Z16G-SYS-A": {count: 8, groups: []deployGroup{
			{n: 2, trx: model.BaseT, speed: 1 * g, utilization: 0.08, external: true},
			{n: 2, trx: model.LR, speed: 10 * g, utilization: 0.02},
		}, spares: 1, spareGroup: 1},
		// Aggregation: NCS 5500s on 100G, LR4 optics toward other PoPs.
		"NCS-55A1-24H": {count: 9, groups: []deployGroup{
			{n: 6, trx: model.LR4, speed: 100 * g, utilization: 0.026, external: true},
			{n: 6, trx: model.LR4, speed: 100 * g, utilization: 0.02},
			{n: 6, trx: model.PassiveDAC, speed: 100 * g, utilization: 0.013},
		}, spares: 2, spareGroup: 1},
		"NCS-55A1-24Q6H-SS": {count: 7, groups: []deployGroup{
			{n: 6, trx: model.LR4, speed: 100 * g, utilization: 0.026, external: true},
			{n: 4, trx: model.LR4, speed: 100 * g, utilization: 0.02},
			{n: 5, trx: model.PassiveDAC, speed: 100 * g, utilization: 0.013},
		}, spares: 1, spareGroup: 1},
		"NCS-55A1-48Q6H": {count: 7, groups: []deployGroup{
			{n: 7, trx: model.LR4, speed: 100 * g, utilization: 0.026, external: true},
			{n: 5, trx: model.LR4, speed: 100 * g, utilization: 0.02},
			{n: 8, trx: model.PassiveDAC, speed: 100 * g, utilization: 0.013},
		}, spares: 1, spareGroup: 1},
		"ASR-9001": {count: 9, groups: []deployGroup{
			{n: 7, trx: model.LR, speed: 10 * g, utilization: 0.06, external: true},
			{n: 2, trx: model.LR, speed: 10 * g, utilization: 0.06},
			{n: 3, trx: model.PassiveDAC, speed: 10 * g, utilization: 0.03},
		}, spares: 1},
		// Core: Cisco 8000s on 100G/400G.
		"8201-32FH": {count: 7, groups: []deployGroup{
			{n: 3, trx: model.FR4, speed: 400 * g, utilization: 0.05, external: true},
			{n: 8, trx: model.PassiveDAC, speed: 100 * g, utilization: 0.04},
			{n: 4, trx: model.PassiveDAC, speed: 100 * g, utilization: 0.04, external: true},
		}, spares: 1, spareGroup: 1},
		"8201-24H8FH": {count: 6, groups: []deployGroup{
			{n: 3, trx: model.FR4, speed: 400 * g, utilization: 0.02, external: true},
			{n: 6, trx: model.PassiveDAC, speed: 100 * g, utilization: 0.013},
			{n: 4, trx: model.PassiveDAC, speed: 100 * g, utilization: 0.013, external: true},
		}, spares: 1},
		"Nexus9336-FX2": {count: 6, groups: []deployGroup{
			{n: 6, trx: model.LR, speed: 100 * g, utilization: 0.026, external: true},
			{n: 4, trx: model.LR, speed: 100 * g, utilization: 0.02},
			{n: 4, trx: model.PassiveDAC, speed: 100 * g, utilization: 0.013},
		}, spares: 1},
	}
}

// Build constructs the deterministic synthetic network. The default
// Config.Routers builds the paper's calibrated 107-router fleet — that
// path is frozen and bit-identical across releases (golden_test.go pins
// it); any other size dispatches to the hierarchical generator.
func Build(cfg Config) (*Network, error) {
	cfg.applyDefaults()
	if cfg.Routers != NumRouters {
		return buildHierarchy(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{
		Config:  cfg,
		rng:     rng,
		diurnal: trafficgen.DefaultDiurnal(),
		byName:  make(map[string]*Router),
	}

	plan := fleetPlan()
	total := 0
	for _, t := range plan {
		total += t.count
	}
	if total != NumRouters {
		return nil, fmt.Errorf("ispnet: fleet plan has %d routers, want %d", total, NumRouters)
	}

	pops := make([]string, 20)
	for i := range pops {
		pops[i] = fmt.Sprintf("pop%02d", i+1)
	}

	// Deterministic ordering over models.
	idx := 0
	for _, modelName := range device.CatalogNames() {
		tpl, ok := plan[modelName]
		if !ok {
			continue
		}
		spec, err := device.Spec(modelName)
		if err != nil {
			return nil, err
		}
		for i := 0; i < tpl.count; i++ {
			pop := pops[idx%len(pops)]
			name := fmt.Sprintf("%s-rtr%02d", pop, idx)
			dev, err := device.New(spec, name, cfg.Seed+int64(idx)*7919)
			if err != nil {
				return nil, fmt.Errorf("ispnet: %s: %w", name, err)
			}
			r := &Router{Name: name, PoP: pop, Device: dev}
			if err := deploy(r, tpl, rng); err != nil {
				return nil, fmt.Errorf("ispnet: deploy %s: %w", name, err)
			}
			n.Routers = append(n.Routers, r)
			n.byName[name] = r
			idx++
		}
	}

	n.wireInternalLinks()
	n.markSpecialRouters()
	return n, nil
}

// deploy populates a router from its template.
func deploy(r *Router, tpl deployTemplate, rng *rand.Rand) error {
	names := r.Device.InterfaceNames()
	next := 0
	take := func() (string, error) {
		if next >= len(names) {
			return "", fmt.Errorf("out of ports (%d)", len(names))
		}
		name := names[next]
		next++
		return name, nil
	}
	for _, grp := range tpl.groups {
		for i := 0; i < grp.n; i++ {
			ifName, err := take()
			if err != nil {
				return err
			}
			if err := r.Device.PlugTransceiver(ifName, grp.trx, grp.speed); err != nil {
				return err
			}
			if err := r.Device.SetAdmin(ifName, true); err != nil {
				return err
			}
			if err := r.Device.SetLink(ifName, true); err != nil {
				return err
			}
			// ±40 % spread around the template utilization.
			util := grp.utilization * (0.6 + 0.8*rng.Float64())
			r.Interfaces = append(r.Interfaces, Interface{
				Name:     ifName,
				Profile:  model.ProfileKey{Port: r.Device.Spec().PortType, Transceiver: grp.trx, Speed: grp.speed},
				External: grp.external,
				MeanLoad: units.BitRate(util * grp.speed.BitsPerSecond()),
			})
		}
	}
	// Spares: plugged, admin-down.
	for i := 0; i < tpl.spares && len(tpl.groups) > 0; i++ {
		ifName, err := take()
		if err != nil {
			return err
		}
		grp := tpl.groups[tpl.spareGroupIndex()]
		if err := r.Device.PlugTransceiver(ifName, grp.trx, grp.speed); err != nil {
			return err
		}
		r.Interfaces = append(r.Interfaces, Interface{
			Name:    ifName,
			Profile: model.ProfileKey{Port: r.Device.Spec().PortType, Transceiver: grp.trx, Speed: grp.speed},
			Spare:   true,
		})
	}
	return nil
}

// wireInternalLinks builds the backbone Hypnos works over: routers chain
// up inside each PoP, the PoPs form a ring through their gateway routers,
// a few chords add redundancy, and leftover internal interfaces form
// parallel bundle members on inter-PoP adjacencies. Internal interfaces
// that remain unpaired stay up as locally attached infrastructure (they
// draw power and carry traffic but are not sleepable backbone links).
func (n *Network) wireInternalLinks() {
	// Free internal interface indices per router.
	free := make(map[string][]int)
	for _, r := range n.Routers {
		for i := range r.Interfaces {
			itf := &r.Interfaces[i]
			if !itf.External && !itf.Spare {
				free[r.Name] = append(free[r.Name], i)
			}
		}
	}
	pair := func(a, b *Router) bool {
		if a == b {
			return false
		}
		fa, fb := free[a.Name], free[b.Name]
		if len(fa) == 0 || len(fb) == 0 {
			return false
		}
		ai := &a.Interfaces[fa[0]]
		bi := &b.Interfaces[fb[0]]
		free[a.Name] = fa[1:]
		free[b.Name] = fb[1:]
		ai.PeerRouter, ai.PeerInterface = b.Name, bi.Name
		bi.PeerRouter, bi.PeerInterface = a.Name, ai.Name
		mean := (ai.MeanLoad + bi.MeanLoad) / 2
		ai.MeanLoad, bi.MeanLoad = mean, mean
		return true
	}

	// Routers per PoP, in fleet order.
	popOrder := []string{}
	byPop := map[string][]*Router{}
	for _, r := range n.Routers {
		if len(byPop[r.PoP]) == 0 {
			popOrder = append(popOrder, r.PoP)
		}
		byPop[r.PoP] = append(byPop[r.PoP], r)
	}

	// Intra-PoP chains.
	for _, pop := range popOrder {
		rs := byPop[pop]
		for i := 0; i+1 < len(rs); i++ {
			pair(rs[i], rs[i+1])
		}
	}
	// PoP ring between gateways, plus chords every fourth PoP for
	// redundancy. The gateway is the PoP router with the most internal
	// capacity left (in practice an NCS or 8200 core box with optics).
	gateway := func(pop string) *Router {
		rs := byPop[pop]
		best := rs[0]
		for _, r := range rs[1:] {
			if len(free[r.Name]) > len(free[best.Name]) {
				best = r
			}
		}
		return best
	}
	type edge struct{ a, b *Router }
	var interPop []edge
	for i, pop := range popOrder {
		next := gateway(popOrder[(i+1)%len(popOrder)])
		interPop = append(interPop, edge{gateway(pop), next})
		if i%4 == 0 {
			far := gateway(popOrder[(i+len(popOrder)/2)%len(popOrder)])
			interPop = append(interPop, edge{gateway(pop), far})
		}
	}
	for _, e := range interPop {
		pair(e.a, e.b)
	}
	// Parallel bundle members: up to two extra links on every inter-PoP
	// adjacency, and one on the first chain hop of half the PoPs. These
	// are the individually sleepable links Hypnos feeds on.
	for pass := 0; pass < 2; pass++ {
		for _, e := range interPop {
			pair(e.a, e.b)
		}
	}
	for i, pop := range popOrder {
		rs := byPop[pop]
		if i%2 == 0 && len(rs) >= 2 {
			pair(rs[0], rs[1])
		}
	}
}

// markSpecialRouters selects the three Autopower-instrumented routers
// (§6.2: an 8201-32FH, an NCS-55A1-24H, and an N540X) and schedules the
// fleet's (de)commissioning events.
func (n *Network) markSpecialRouters() {
	want := map[string]bool{"8201-32FH": true, "NCS-55A1-24H": true, "N540X-8Z16G-SYS-A": true}
	for _, r := range n.Routers {
		if want[r.Device.Model()] {
			r.Autopower = true
			delete(want, r.Device.Model())
		}
	}
	// Fig. 1 power steps: one mid-size router decommissioned in week 3,
	// one commissioned in week 5. Pick deterministic victims that are not
	// Autopower routers.
	var candidates []*Router
	for _, r := range n.Routers {
		if !r.Autopower && (r.Device.Model() == "ASR-9001" || r.Device.Model() == "NCS-55A1-48Q6H") {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) >= 2 {
		start := n.Config.Start
		candidates[0].ActiveTo = start.Add(3 * 7 * 24 * time.Hour)
		candidates[1].ActiveFrom = start.Add(5 * 7 * 24 * time.Hour)
	}
}

// LoadAt returns an interface's bidirectional load at time t: the mean
// modulated by the diurnal pattern plus deterministic per-interface
// noise. On the calibrated fleet the mean is the hand-set MeanLoad under
// the network-wide diurnal shape; on hierarchical fleets it is the
// subscriber-cohort aggregate under per-cohort shapes.
//
//joules:hotpath
func (n *Network) LoadAt(itf *Interface, r *Router, t time.Time) units.BitRate {
	var cm [trafficgen.NumCohorts]float64
	if n.hier {
		trafficgen.CohortMultipliers(t, &cm)
	}
	return n.loadAt(itf, r, t, n.diurnal.Multiplier(t, nil), &cm)
}

// loadAt is LoadAt with the time-dependent multipliers hoisted: the
// network-wide diurnal multiplier and the cohort multiplier vector depend
// only on t, so the replay computes them once per step instead of once
// per interface (they are a handful of trigonometric evaluations). The
// per-interface work is O(1) and allocation-free on both paths.
func (n *Network) loadAt(itf *Interface, r *Router, t time.Time, mult float64, cm *[trafficgen.NumCohorts]float64) units.BitRate {
	if n.hier {
		if itf.Spare {
			return 0
		}
		// Closed-form cohort aggregation: a NumCohorts-term dot product,
		// never a per-subscriber loop.
		d := itf.SubDemand[0]*cm[0] + itf.SubDemand[1]*cm[1] + itf.SubDemand[2]*cm[2]
		if d == 0 {
			return 0
		}
		h := mixKey(itf.noiseKey, t.Unix())
		load := units.BitRate(d * (1 + 0.15*(float64(h%2000)/1000-1)))
		if load < 0 {
			load = 0
		}
		if max := itf.Profile.Speed * 2; load > max {
			load = max
		}
		return load
	}
	if itf.Spare || itf.MeanLoad == 0 {
		return 0
	}
	// Deterministic per-(interface, step) noise so repeated queries agree.
	h := hash64(r.Name, itf.Name, t.Unix())
	noise := 1 + 0.15*(float64(h%2000)/1000-1)
	load := units.BitRate(itf.MeanLoad.BitsPerSecond() * mult * noise)
	if load < 0 {
		load = 0
	}
	if max := itf.Profile.Speed * 2; load > max {
		load = max
	}
	return load
}

// PacketRateAt derives the packet rate for a load using the IMIX mean
// packet size.
func PacketRateAt(load units.BitRate) units.PacketRate {
	return units.PacketRateFor(load, trafficgen.IMIXMeanSize(), trafficgen.EthernetOverhead)
}

// hash64 is a small FNV-style mix for deterministic noise. The signature
// is concrete — it runs once per interface per step, and a variadic
// interface{} version boxes every argument onto the heap. The byte
// sequence matches the original variadic implementation exactly, so the
// noise values (and with them every published dataset figure) are
// unchanged.
//
// Audit note (scale): hash64 keys the noise on interface *names*, which
// is fine for the calibrated 107-router fleet the published figures pin,
// but at 100k-router cardinality (millions of (router, iface) strings in
// a 64-bit space) birthday collisions become likely, and two colliding
// interfaces would share their entire noise trajectory. Hierarchical
// fleets therefore key their noise on ifaceNoiseKey — a bijective mix of
// (router index, interface index), collision-free by construction — and
// hash64 remains, byte for byte, the frozen legacy path.
func hash64(router, iface string, unix int64) uint64 {
	var h uint64 = 1469598103934665603
	const prime = 1099511628211
	for i := 0; i < len(router); i++ {
		h ^= uint64(router[i])
		h *= prime
	}
	h ^= 0xff
	h *= prime
	for i := 0; i < len(iface); i++ {
		h ^= uint64(iface[i])
		h *= prime
	}
	h ^= 0xff
	h *= prime
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(unix >> (8 * i)))
		h *= prime
	}
	h ^= 0xff
	h *= prime
	return h
}

// splitmix64 is the SplitMix64 finalizer: a bijection on uint64 with
// strong avalanche behavior. Being a bijection, distinct inputs give
// distinct outputs — the property the hierarchical noise keys rely on.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ifaceNoiseKey derives the per-interface noise key for hierarchical
// fleets from the (router index, interface index) pair. The packing is
// injective for fleets below 2^43 routers with fewer than 2^20 ports
// each, and splitmix64 is a bijection, so no two interfaces in any
// buildable fleet share a key (golden_test.go checks this exhaustively
// on a generated fleet).
func ifaceNoiseKey(routerIdx, ifaceIdx int) uint64 {
	return splitmix64(uint64(routerIdx+1)<<20 | uint64(ifaceIdx))
}

// mixKey folds a step time into an interface noise key, giving the
// per-(interface, step) noise hash for hierarchical fleets — the
// structural-key counterpart of hash64.
func mixKey(key uint64, unix int64) uint64 {
	return splitmix64(key ^ uint64(unix)*0x9e3779b97f4a7c15)
}
