package ispnet

import (
	"fmt"
	"runtime"
	"sync"

	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/telemetry"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// Chunk-retained fleet mode: the bounded-memory form of the incremental
// Fleet used for hierarchical (generated) configs, where retaining every
// router's live shard — three full-window float columns plus the replay
// plan — would put the fleet-size × duration product back on the heap
// that stream.go worked to get off it.
//
// Instead of live shards, the fleet retains each router's power and
// traffic columns as the same delta-of-delta columnar chunks RunStream
// spills (timeseries.AppendChunk), plus the two wall-power scalars and
// the PSU snapshot the dataset assembly needs. Encoded timestamps cost
// ≈1 byte/point on the regular SNMP grid and values keep their raw
// Float64bits — which is what makes the mode exact: a Resimulate decodes
// every clean router's chunks back into the fold (decode-on-splice) and
// accumulates the identical addition sequence, in fleet order, that the
// cold path's reduction performs. The golden and property tests pin
// DiffDatasets-bit-identity to cold SimulateWithEvents at 1k and 10k.
//
// The replay itself runs the bounded producer/worker/consumer pipeline of
// RunStream: at most workers+streamWindowSlack live shards exist at any
// instant, their step buffers pooled, so peak heap is O(fleet metadata) +
// O(window × steps) and steady-state heap is the encoded chunks.
//
// The mode is reserved for hierarchical fleets, which have no
// instrumented (Autopower) routers: the calibrated 107-router build keeps
// the live-shard path so its meter/SNMP/rate traces stay retained.

var (
	metricFleetChunkBytes = telemetry.Default().Gauge("ispnet_fleet_chunk_bytes",
		"encoded bytes retained by chunk-mode Fleets (all live fleets)")
	metricFleetChunkSplices = telemetry.Default().Counter("ispnet_fleet_chunk_splices_total",
		"clean-router chunk decodes spliced into Resimulate folds")
)

// routerChunks is one router's retained replay result in chunk mode: the
// encoded step columns plus the scalars assembleDataset derives from a
// live shard.
type routerChunks struct {
	power   []byte // AppendChunk-encoded (stepNanos, power) column
	traffic []byte // AppendChunk-encoded (stepNanos, traffic) column
	// wallMedian / wallPeak are the router's median and peak wall power
	// over its deployed steps, in watts; hasWall distinguishes "never
	// deployed" from zero.
	wallMedian float64
	wallPeak   float64
	hasWall    bool
	// psus is the mid-window environment-sensor export (nil when the
	// router was not active at snapAt).
	psus []psu.Snapshot
}

// retainedBytes is the encoded footprint of one router's retention.
func (rc *routerChunks) retainedBytes() int { return len(rc.power) + len(rc.traffic) }

// appendChunked encodes parallel columns as a sequence of
// streamChunkPoints-sized chunks, appending to dst — the retention-side
// twin of the RunStream spill.
func appendChunked(dst []byte, ts []int64, vs []float64) []byte {
	for i := 0; i < len(vs); i += streamChunkPoints {
		j := i + streamChunkPoints
		if j > len(vs) {
			j = len(vs)
		}
		dst = timeseries.AppendChunk(dst, ts[i:j], vs[i:j])
	}
	return dst
}

// decodeChunkedInto decodes an encoded column into scratch and adds its
// values element-wise onto totals — the clean-router splice. The decoded
// bits are exactly the encoded bits (AppendChunk stores raw Float64bits),
// so the addition contributes the same sequence a live shard would.
func decodeChunkedInto(totals []float64, data []byte, scratch *timeseries.Series) error {
	scratch.Reset()
	for len(data) > 0 {
		rest, err := timeseries.DecodeChunk(scratch, data)
		if err != nil {
			return fmt.Errorf("ispnet: retained chunk: %w", err)
		}
		data = rest
	}
	if scratch.Len() != len(totals) {
		return fmt.Errorf("ispnet: retained chunk decoded %d points, want %d", scratch.Len(), len(totals))
	}
	for si := range totals {
		totals[si] += scratch.Value(si)
	}
	return nil
}

// replayChunked is the chunk-retained form of Fleet.replay: play the
// dirty routers (nil means all) through a bounded pipeline, fold their
// fresh columns into the step totals in fleet order, re-encode their
// retention, and splice every clean router in by decoding its retained
// chunks — never holding more than the worker window of live shards.
func (f *Fleet) replayChunked(dirty map[string]bool) error {
	n := f.net
	evs := f.mergedEvents()
	compiled, err := n.compileEvents(evs)
	if err != nil {
		return err
	}
	byRouter := partitionEvents(compiled)

	if f.chunks == nil {
		f.chunks = make([]routerChunks, len(n.Routers))
	}
	if f.stepNanos == nil {
		f.stepNanos = make([]int64, len(f.steps))
		for i, t := range f.steps {
			f.stepNanos[i] = t.UnixNano()
		}
	}

	ndirty := 0
	for _, r := range n.Routers {
		if dirty == nil || dirty[r.Name] {
			ndirty++
		}
	}
	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ndirty {
		workers = ndirty
	}
	if workers < 1 {
		workers = 1
	}
	window := workers + streamWindowSlack

	// Bounded pipeline over the dirty routers, exactly as RunStream admits
	// the whole fleet: slots preserves fleet order and its buffer is the
	// admission window.
	pool := sync.Pool{New: func() any { return &streamBufs{} }}
	slots := make(chan *streamSlot, window)
	work := make(chan *streamSlot)
	go func() {
		for _, r := range n.Routers {
			if dirty != nil && !dirty[r.Name] {
				continue
			}
			sh := n.newShard(r, nil, byRouter[r.Name], f.steps)
			bufs := pool.Get().(*streamBufs)
			sh.power = zeroedFloats(bufs.power, len(f.steps))
			sh.traffic = zeroedFloats(bufs.traffic, len(f.steps))
			sh.wall = bufs.wall[:0]
			//jouleslint:ignore scratchsafety -- bounded handoff: the fold is the slot's only consumer and puts the buffers back before admitting another slot past the window
			s := &streamSlot{sh: sh, bufs: bufs, done: make(chan struct{})}
			slots <- s
			work <- s
		}
		close(slots)
		close(work)
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				s.sh.err = s.sh.playInstrumented()
				close(s.done)
			}
		}()
	}

	// The consumer walks the whole fleet in order: dirty routers are taken
	// from the pipeline (which emits them in fleet order), clean routers
	// are decoded from their retention. Either way the totals accumulate
	// router contributions in fleet order — the cold reduction's exact
	// floating-point sequence.
	totalPower := make([]float64, len(f.steps))
	totalTraffic := make([]float64, len(f.steps))
	scratch := timeseries.NewWithCap("chunk-splice", len(f.steps))
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	retainedDelta := 0
	for i, r := range n.Routers {
		if dirty != nil && !dirty[r.Name] {
			metricShardsReused.Inc()
			metricFleetChunkSplices.Inc()
			if firstErr == nil {
				rc := &f.chunks[i]
				if err := decodeChunkedInto(totalPower, rc.power, scratch); err != nil {
					fail(err)
				} else if err := decodeChunkedInto(totalTraffic, rc.traffic, scratch); err != nil {
					fail(err)
				}
			}
			continue
		}
		s, ok := <-slots
		if !ok {
			return fmt.Errorf("ispnet: chunk replay pipeline ended before router %q", r.Name)
		}
		<-s.done
		sh := s.sh
		if sh.router != r {
			fail(fmt.Errorf("ispnet: chunk replay order: got %q, want %q", sh.router.Name, r.Name))
		}
		if sh.err != nil {
			fail(sh.err)
		}
		if firstErr == nil {
			for si := range f.steps {
				totalPower[si] += sh.power[si]
				totalTraffic[si] += sh.traffic[si]
			}
			rc := &f.chunks[i]
			retainedDelta -= rc.retainedBytes()
			rc.power = appendChunked(rc.power[:0], f.stepNanos, sh.power)
			rc.traffic = appendChunked(rc.traffic[:0], f.stepNanos, sh.traffic)
			retainedDelta += rc.retainedBytes()
			rc.hasWall = len(sh.wall) > 0
			if rc.hasWall {
				rc.wallMedian = medianOf(sh.wall)
				// medianOf sorted in place; the peak is the last sample.
				rc.wallPeak = sh.wall[len(sh.wall)-1]
			} else {
				rc.wallMedian, rc.wallPeak = 0, 0
			}
			rc.psus = sh.psus
		}
		// Recycle the step buffers (wall may have grown under append).
		s.bufs.power, s.bufs.traffic, s.bufs.wall = sh.power, sh.traffic, sh.wall
		sh.power, sh.traffic, sh.wall = nil, nil, nil
		pool.Put(s.bufs)
	}
	wg.Wait()
	metricShardsReplayed.Add(uint64(ndirty))
	metricFleetChunkBytes.Add(float64(retainedDelta))
	if firstErr != nil {
		return firstErr
	}

	ds := &Dataset{
		Network:          n,
		TotalPower:       timeseries.NewWithCap("total-power", len(f.steps)),
		TotalTraffic:     timeseries.NewWithCap("total-traffic", len(f.steps)),
		TotalCapacity:    f.capacity,
		RouterWallMedian: make(map[string]units.Power),
		RouterWallPeak:   make(map[string]units.Power),
		Autopower:        make(map[string]*timeseries.Series),
		SNMPPower:        make(map[string]*timeseries.Series),
		IfaceRates:       make(map[string]map[string]*timeseries.Series),
		IfaceProfiles:    make(map[string]map[string]model.ProfileKey),
		Events:           describeFleetEvents(evs),
	}
	for si, t := range f.steps {
		ds.TotalPower.Append(t, totalPower[si])
		ds.TotalTraffic.Append(t, totalTraffic[si])
	}
	for i, r := range n.Routers {
		rc := &f.chunks[i]
		if rc.hasWall {
			ds.RouterWallMedian[r.Name] = units.Power(rc.wallMedian)
			ds.RouterWallPeak[r.Name] = units.Power(rc.wallPeak)
		}
		if rc.psus != nil {
			ds.PSUSnapshots = append(ds.PSUSnapshots, psu.RouterPSUs{
				Router: r.Name,
				Model:  r.Device.Model(),
				PSUs:   rc.psus,
			})
		}
	}
	f.ds = ds
	return nil
}
