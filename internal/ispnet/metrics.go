package ispnet

import (
	"time"

	"fantasticjoules/internal/telemetry"
)

// Fleet-replay instrumentation. The metrics are write-only observers on
// the process-wide telemetry registry: the simulation never reads them
// back, each update is a handful of atomics at per-shard (not per-step)
// frequency, and the per-shard tallies are accumulated locally while the
// shard plays — so instrumented runs stay byte-identical (the golden
// Workers-1-vs-8 determinism test runs with these permanently enabled).
var (
	metricRuns = telemetry.Default().Counter("ispnet_runs_total",
		"fleet replays started (Network.Run calls)")
	metricShardSeconds = telemetry.Default().Histogram("ispnet_shard_replay_seconds",
		"wall-clock duration of one router shard's full-window replay", nil)
	metricRouters = telemetry.Default().Counter("ispnet_routers_replayed_total",
		"router shards fully replayed")
	metricEvents = telemetry.Default().Counter("ispnet_events_applied_total",
		"scheduled deployment events applied during replays")
	metricSteps = telemetry.Default().Counter("ispnet_steps_total",
		"router×step simulation slots processed (deployed or not)")
	metricWallSamples = telemetry.Default().Counter("ispnet_wall_samples_total",
		"wall-power samples produced by deployed routers")
	metricMeterSamples = telemetry.Default().Counter("ispnet_meter_samples_total",
		"fine-grained external-meter (Autopower) samples produced")
	metricBusyWorkers = telemetry.Default().Gauge("ispnet_busy_workers",
		"replay workers currently playing a shard")
	metricShardsReplayed = telemetry.Default().Counter("ispnet_shards_replayed_total",
		"router shards replayed by the incremental Fleet path (dirty or cold)")
	metricShardsReused = telemetry.Default().Counter("ispnet_shards_reused_total",
		"router shards spliced back unchanged by Fleet.Resimulate")
)

// playInstrumented wraps one shard replay with its telemetry: worker-pool
// occupancy, replay duration, and the shard's sample/event tallies.
func (sh *routerShard) playInstrumented() error {
	metricBusyWorkers.Add(1)
	defer metricBusyWorkers.Add(-1)
	defer metricShardSeconds.ObserveSince(time.Now())
	err := sh.play()
	metricRouters.Inc()
	metricEvents.Add(uint64(sh.eventsApplied))
	metricSteps.Add(uint64(len(sh.steps)))
	metricWallSamples.Add(uint64(len(sh.wall)))
	if sh.autopower != nil {
		metricMeterSamples.Add(uint64(sh.autopower.Len()))
	}
	return err
}
