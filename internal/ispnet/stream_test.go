package ispnet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"fantasticjoules/internal/timeseries"
)

// memSink retains every spilled chunk decoded back into series, keyed by
// router then series name — the test double proving the spill stream
// reconstructs full-resolution traces.
type memSink struct {
	series map[string]map[string]*timeseries.Series
	chunks int
}

func (m *memSink) WriteChunk(router, series string, chunk []byte) error {
	if m.series == nil {
		m.series = make(map[string]map[string]*timeseries.Series)
	}
	byName := m.series[router]
	if byName == nil {
		byName = make(map[string]*timeseries.Series)
		m.series[router] = byName
	}
	s := byName[series]
	if s == nil {
		s = timeseries.New(router + "." + series)
		byName[series] = s
	}
	rest, err := timeseries.DecodeChunk(s, chunk)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("chunk for %s/%s carries %d trailing bytes", router, series, len(rest))
	}
	m.chunks++
	return nil
}

// TestStreamMatchesSimulate107 is the golden equivalence: the streaming
// fold over the calibrated 107-router fleet must produce a Dataset
// bit-identical to the retained-memory Simulate under the DiffDatasets
// Float64bits oracle — aggregates, wall statistics, instrumented traces,
// PSU snapshots, events, everything.
func TestStreamMatchesSimulate107(t *testing.T) {
	cold, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	streamed, err := SimulateStream(quickCfg(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffDatasets(cold, streamed); err != nil {
		t.Fatalf("streamed dataset differs from cold Simulate: %v", err)
	}
	if sink.chunks == 0 {
		t.Fatal("no chunks spilled")
	}

	// The spilled per-router power series must re-sum, step for step, to
	// the published network total — the identical addition order makes
	// this exact, not approximate.
	steps := cold.TotalPower.Len()
	names := make([]string, 0, len(streamed.Network.Routers))
	for _, r := range streamed.Network.Routers {
		names = append(names, r.Name)
		got := sink.series[r.Name]["power"]
		if got == nil || got.Len() != steps {
			t.Fatalf("router %s spilled %v power points, want %d", r.Name, got.Len(), steps)
		}
	}
	for si := 0; si < steps; si++ {
		var sum float64
		for _, name := range names {
			sum += sink.series[name]["power"].Value(si)
		}
		if sum != cold.TotalPower.Value(si) {
			t.Fatalf("step %d: spilled per-router sum %v != total %v", si, sum, cold.TotalPower.Value(si))
		}
	}

	// Instrumented traces spill too, and round-trip exactly.
	for name, want := range cold.Autopower {
		got := sink.series[name][name+".autopower"]
		if got == nil || got.Len() != want.Len() {
			t.Fatalf("autopower spill for %s missing or short", name)
		}
	}
}

// TestStreamMatchesSimulateHierarchy extends the golden equivalence to a
// generated fleet: same seed, same size ⇒ the streaming and retained
// paths agree bit for bit.
func TestStreamMatchesSimulateHierarchy(t *testing.T) {
	cfg := Config{
		Seed:          7,
		Routers:       240,
		Duration:      2 * 24 * time.Hour,
		SNMPStep:      time.Hour,
		AutopowerStep: 30 * time.Minute,
	}
	cold, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sink DiscardSink
	streamed, err := SimulateStream(cfg, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffDatasets(cold, streamed); err != nil {
		t.Fatalf("hierarchical streamed dataset differs: %v", err)
	}
	if sink.Points == 0 || sink.Bytes == 0 {
		t.Fatalf("discard sink saw nothing: %+v", sink)
	}
}

// TestStreamWorkerCounts pins bit-identical output across worker counts
// on the streaming path, as determinism_test.go does for Run.
func TestStreamWorkerCounts(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 1
	var s1 DiscardSink
	serial, err := SimulateStream(cfg, &s1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	var s8 DiscardSink
	parallel, err := SimulateStream(cfg, &s8)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffDatasets(serial, parallel); err != nil {
		t.Fatalf("streaming workers=1 vs workers=8 differ: %v", err)
	}
	if s1.Chunks != s8.Chunks || s1.Bytes != s8.Bytes || s1.Points != s8.Points {
		t.Fatalf("spill volume depends on worker count: %+v vs %+v", s1, s8)
	}
}

// TestStreamScaleSmoke1k streams a 1k-router fleet through a full week —
// the CI scale-smoke job runs exactly this test under -race with a
// wall-clock timeout.
func TestStreamScaleSmoke1k(t *testing.T) {
	cfg := Config{
		Seed:          42,
		Routers:       1000,
		Duration:      7 * 24 * time.Hour,
		SNMPStep:      time.Hour,
		AutopowerStep: time.Hour,
	}
	var sink DiscardSink
	ds, err := SimulateStream(cfg, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalPower.Len() != 168 {
		t.Fatalf("got %d steps, want 168", ds.TotalPower.Len())
	}
	if ds.TotalPower.Value(0) <= 0 {
		t.Fatal("zero total power")
	}
	if subs := ds.Network.TotalSubscribers(); subs < 100_000 {
		t.Fatalf("1k-router fleet serves %d subscribers, want ≥ 100k", subs)
	}
	// 1000 routers × 2 series × 168 points.
	if want := int64(1000 * 2 * 168); sink.Points != want {
		t.Fatalf("spilled %d points, want %d", sink.Points, want)
	}
}

// TestStreamBounded10k is the acceptance run: a seeded 10k-router 9-week
// streaming simulation completes with peak heap bounded independent of
// the fleet-duration product. The naive retained layout would hold
// 10k routers × 504 steps × (2×8 B step columns + 8 B wall) ≈ 120 MB of
// sample buffers alone; the assertion pins the streaming path's heap
// growth over the run to a small fraction of that.
func TestStreamBounded10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-router 9-week run is not a -short test")
	}
	if raceEnabled {
		t.Skip("race shadow memory breaks the heap-budget assertion; CI covers -race at 1k")
	}
	cfg := Config{
		Seed:          42,
		Routers:       10000,
		Duration:      9 * 7 * 24 * time.Hour,
		SNMPStep:      3 * time.Hour,
		AutopowerStep: 3 * time.Hour,
	}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	peak := &peakSink{}
	ds, err := n.RunStream(peak)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.TotalPower.Len(); got != 504 {
		t.Fatalf("got %d steps, want 504", got)
	}

	// Peak heap during the run, minus the built fleet itself, must stay
	// far below the ~120 MB the retained layout would pin. The 64 MB
	// budget holds the bounded window plus allocator slack with margin,
	// and fails loudly if anyone reintroduces per-fleet sample retention.
	delta := int64(peak.peakHeap) - int64(before.HeapAlloc)
	t.Logf("fleet heap %d MB, peak during run +%d MB, %d chunks / %d MB spilled",
		before.HeapAlloc>>20, delta>>20, peak.Chunks, peak.Bytes>>20)
	if delta > 64<<20 {
		t.Fatalf("streaming run grew the heap by %d MB; want bounded (< 64 MB) regardless of fleet×duration", delta>>20)
	}
	if subs := ds.Network.TotalSubscribers(); subs < 1_000_000 {
		t.Fatalf("10k-router fleet serves %d subscribers, want millions", subs)
	}
}

// peakSink discards chunks while sampling the live heap, recording the
// peak it observes.
type peakSink struct {
	DiscardSink
	peakHeap uint64
	calls    int
}

func (p *peakSink) WriteChunk(router, series string, chunk []byte) error {
	p.calls++
	// ReadMemStats stops the world; sample sparsely.
	if p.calls%256 == 1 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > p.peakHeap {
			p.peakHeap = ms.HeapAlloc
		}
	}
	return p.DiscardSink.WriteChunk(router, series, chunk)
}

// TestStreamSinkError checks a failing sink aborts the run cleanly (no
// hang, no partial success).
func TestStreamSinkError(t *testing.T) {
	cfg := quickCfg()
	cfg.Duration = 12 * time.Hour
	if _, err := SimulateStream(cfg, failSink{}); err == nil {
		t.Fatal("want the sink error to surface")
	}
}

type failSink struct{}

func (failSink) WriteChunk(string, string, []byte) error {
	return fmt.Errorf("sink full")
}
