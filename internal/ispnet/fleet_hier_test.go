package ispnet

import (
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// Chunk-retained fleet tests: the incremental Perturb/Resimulate contract
// extended to generated hierarchical fleets (1k and 10k routers). Every
// comparison runs through the DiffDatasets Float64bits oracle against a
// cold SimulateWithEvents of the same merged schedule — the same
// bit-identity the 107-router golden/property tests pin for the
// live-shard path.

// hierFleetCfg is a hierarchical fleet config sized for incremental
// tests: big enough to exercise the generated tiers, short enough that a
// cold reference replay stays cheap.
func hierFleetCfg(routers, workers int, d time.Duration, step time.Duration) Config {
	return Config{
		Seed:          42,
		Start:         time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC),
		Duration:      d,
		SNMPStep:      step,
		AutopowerStep: step,
		Routers:       routers,
		Workers:       workers,
	}
}

// hierPerturbation is a fixed schedule against generated names covering
// the optimizer's actuation ops (sleep/wake/PSU) plus a load scale and a
// strict admin toggle — the hierarchical twin of goldenPerturbation.
func hierPerturbation(n *Network, start time.Time) []FleetEvent {
	// a00000-r0 is the first access gateway, c00000-r0 the first core
	// gateway: both exist at every size ≥ hierMinRouters.
	gw := n.Routers[0]                    // core gateway (core is deployed first)
	access := n.Routers[len(n.Routers)-1] // last access member
	var iface string
	for _, itf := range access.Interfaces {
		if !itf.Spare {
			iface = itf.Name
			break
		}
	}
	var coreIface string
	for _, itf := range gw.Interfaces {
		if !itf.Spare && itf.PeerRouter != "" {
			coreIface = itf.Name
			break
		}
	}
	return []FleetEvent{
		{At: start.Add(2 * time.Hour), Router: access.Name, Op: OpSleep, Iface: iface},
		{At: start.Add(3 * time.Hour), Router: gw.Name, Op: OpScaleLoad, Factor: 1.2},
		{At: start.Add(4 * time.Hour), Router: gw.Name, Op: OpPSUOffline, PSU: 1},
		{At: start.Add(6 * time.Hour), Router: access.Name, Op: OpWake, Iface: iface},
		{At: start.Add(8 * time.Hour), Router: gw.Name, Op: OpSleep, Iface: coreIface},
		{At: start.Add(9 * time.Hour), Router: gw.Name, Op: OpPSUOnline, PSU: 1},
		{At: start.Add(10 * time.Hour), Router: gw.Name, Op: OpWake, Iface: coreIface},
	}
}

// TestFleetChunkedColdMatchesSimulate pins the chunk-retained initial
// replay: a hierarchical NewFleet's dataset is bit-identical to the cold
// Simulate of the same config, at serial and parallel worker counts.
func TestFleetChunkedColdMatchesSimulate(t *testing.T) {
	for _, workers := range []int{1, 8} {
		cfg := hierFleetCfg(1000, workers, 24*time.Hour, time.Hour)
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !f.ChunkRetained() {
			t.Fatal("hierarchical fleet should retain chunks, not live shards")
		}
		cold, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		datasetsIdentical(t, cold, f.Dataset())
	}
}

// TestFleetChunkedResimulateGolden is the hierarchical golden test:
// Perturb+Resimulate on a 1k-router chunk-retained fleet reproduces a
// cold SimulateWithEvents of the merged schedule bit for bit, at Workers
// 1 and 8, across two perturbation rounds (so retained chunks from round
// one splice into round two's fold).
func TestFleetChunkedResimulateGolden(t *testing.T) {
	cfg := hierFleetCfg(1000, 0, 24*time.Hour, time.Hour)
	var want []*Dataset
	for i, workers := range []int{1, 8} {
		cfg.Workers = workers
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		evs := hierPerturbation(f.Network(), cfg.Start)
		if err := f.Perturb(evs[:4]...); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Resimulate(); err != nil {
			t.Fatal(err)
		}
		if err := f.Perturb(evs[4:]...); err != nil {
			t.Fatal(err)
		}
		ds, err := f.Resimulate()
		if err != nil {
			t.Fatal(err)
		}
		cold, err := SimulateWithEvents(cfg, f.ExtraEvents())
		if err != nil {
			t.Fatal(err)
		}
		datasetsIdentical(t, cold, ds)
		want = append(want, ds)
		if i == 1 {
			// Worker-count independence of the incremental path itself.
			datasetsIdentical(t, want[0], want[1])
		}
	}
}

// TestFleetChunkedOps covers the optimizer actuation ops against
// generated interface and PSU names at 1k routers, including the
// best-effort no-op path: sleeping an interface the generated deployment
// lacks must change nothing, bit for bit.
func TestFleetChunkedOps(t *testing.T) {
	cfg := hierFleetCfg(1000, 8, 12*time.Hour, time.Hour)
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := f.Dataset()

	// Best-effort no-op: the generated deployment has no interface by
	// this name anywhere, so OpSleep/OpWake compile and replay to nothing.
	r := f.Network().Routers[42]
	if err := f.Perturb(
		FleetEvent{At: cfg.Start.Add(time.Hour), Router: r.Name, Op: OpSleep, Iface: "no-such-port-9/9"},
		FleetEvent{At: cfg.Start.Add(2 * time.Hour), Router: r.Name, Op: OpWake, Iface: "no-such-port-9/9"},
	); err != nil {
		t.Fatal(err)
	}
	ds, err := f.Resimulate()
	if err != nil {
		t.Fatal(err)
	}
	// The no-op actuation lands in the event log but must leave every
	// measurement bit-identical; the cold reference pins the whole dataset.
	for si := 0; si < baseline.TotalPower.Len(); si++ {
		if baseline.TotalPower.Value(si) != ds.TotalPower.Value(si) {
			t.Fatalf("no-op sleep changed total power at step %d", si)
		}
	}
	cold0, err := SimulateWithEvents(cfg, f.ExtraEvents())
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, cold0, ds)

	// Real actuation: sleep a generated internal link endpoint and take a
	// PSU offline; both must change power and match the cold reference.
	var iface string
	for _, itf := range r.Interfaces {
		if !itf.Spare && itf.PeerRouter != "" {
			iface = itf.Name
			break
		}
	}
	if iface == "" {
		t.Fatalf("router %s has no internal link to actuate", r.Name)
	}
	if err := f.Perturb(
		FleetEvent{At: cfg.Start.Add(3 * time.Hour), Router: r.Name, Op: OpSleep, Iface: iface},
		FleetEvent{At: cfg.Start.Add(4 * time.Hour), Router: r.Name, Op: OpPSUOffline, PSU: 1},
	); err != nil {
		t.Fatal(err)
	}
	ds, err = f.Resimulate()
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalPower.Mean() >= baseline.TotalPower.Mean() {
		t.Fatal("sleeping a link and shedding a PSU should reduce mean fleet power")
	}
	cold, err := SimulateWithEvents(cfg, f.ExtraEvents())
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, cold, ds)
}

// randomHierEvents draws a random batch of declarative events against
// generated routers — sleeps/wakes of real (and sometimes absent)
// interfaces, PSU cycling, and load scaling.
func randomHierEvents(rng *rand.Rand, n *Network, start time.Time, d time.Duration) []FleetEvent {
	count := 2 + rng.Intn(4)
	evs := make([]FleetEvent, 0, count)
	for len(evs) < count {
		r := n.Routers[rng.Intn(len(n.Routers))]
		at := start.Add(time.Duration(rng.Int63n(int64(d))))
		switch rng.Intn(5) {
		case 0, 1:
			var ifaces []string
			for _, itf := range r.Interfaces {
				if !itf.Spare {
					ifaces = append(ifaces, itf.Name)
				}
			}
			if len(ifaces) == 0 {
				continue
			}
			name := ifaces[rng.Intn(len(ifaces))]
			op := OpSleep
			if rng.Intn(2) == 0 {
				op = OpWake
			}
			evs = append(evs, FleetEvent{At: at, Router: r.Name, Op: op, Iface: name})
		case 2:
			// Best-effort path against a name the deployment lacks.
			evs = append(evs, FleetEvent{At: at, Router: r.Name, Op: OpSleep, Iface: "absent-port"})
		case 3:
			evs = append(evs, FleetEvent{At: at, Router: r.Name, Op: OpScaleLoad, Factor: 0.5 + rng.Float64()})
		case 4:
			evs = append(evs, FleetEvent{At: at, Router: r.Name, Op: OpPSUOffline, PSU: 1})
			evs = append(evs, FleetEvent{At: at.Add(time.Hour), Router: r.Name, Op: OpPSUOnline, PSU: 1})
		}
	}
	return evs
}

// TestFleetChunkedResimulatePropertyRandom is the randomized form: seeded
// random perturbation rounds against a 1k-router chunk-retained fleet,
// each round's Resimulate compared bit-for-bit against a cold
// SimulateWithEvents of everything applied so far, at Workers 1 and 8.
func TestFleetChunkedResimulatePropertyRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized 1k-router rounds are not a -short test")
	}
	for _, workers := range []int{1, 8} {
		cfg := hierFleetCfg(1000, workers, 12*time.Hour, time.Hour)
		rng := rand.New(rand.NewSource(1234))
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			evs := randomHierEvents(rng, f.Network(), cfg.Start, cfg.Duration)
			if err := f.Perturb(evs...); err != nil {
				t.Fatal(err)
			}
			ds, err := f.Resimulate()
			if err != nil {
				t.Fatalf("workers=%d round %d: %v", workers, round, err)
			}
			cold, err := SimulateWithEvents(cfg, f.ExtraEvents())
			if err != nil {
				t.Fatal(err)
			}
			datasetsIdentical(t, cold, ds)
		}
	}
}

// TestFleetChunkedResimulate10k extends the golden bit-identity to the
// 10k-router tier over a short window, Workers 1 and 8.
func TestFleetChunkedResimulate10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-router replay is not a -short test")
	}
	for _, workers := range []int{1, 8} {
		cfg := hierFleetCfg(10000, workers, 12*time.Hour, 2*time.Hour)
		f, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		evs := hierPerturbation(f.Network(), cfg.Start)
		if err := f.Perturb(evs...); err != nil {
			t.Fatal(err)
		}
		ds, err := f.Resimulate()
		if err != nil {
			t.Fatal(err)
		}
		cold, err := SimulateWithEvents(cfg, f.ExtraEvents())
		if err != nil {
			t.Fatal(err)
		}
		datasetsIdentical(t, cold, ds)
	}
}

// TestFleetChunked10kHeapBudget is the bounded-memory acceptance run: a
// 10k-router 9-week NewFleet must retain its results within a fixed
// encoded-chunk budget over the cost of the built network itself. The
// live-shard layout would pin 10k × 504 steps × (2×8 B columns + 8 B
// wall) ≈ 120 MB of sample buffers plus per-shard replay plans; the
// chunk retention measures ≈ 86 MB encoded and the assertion holds it —
// plus dataset maps and allocator slack — under 128 MB.
func TestFleetChunked10kHeapBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-router 9-week fleet is not a -short test")
	}
	if raceEnabled {
		t.Skip("race shadow memory breaks the heap-budget assertion; CI covers -race at 1k")
	}
	cfg := Config{
		Seed:          42,
		Routers:       10000,
		Duration:      9 * 7 * 24 * time.Hour,
		SNMPStep:      3 * time.Hour,
		AutopowerStep: 3 * time.Hour,
	}
	// Price the network itself first, so the assertion is about what the
	// fleet retains beyond it and stays valid if the build grows.
	var m0, m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	networkBytes := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if len(n.Routers) != 10000 { // keep n alive to here, then release it
		t.Fatal("bad build")
	}
	n = nil
	runtime.GC()
	runtime.ReadMemStats(&m0)

	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&m2)
	growth := int64(m2.HeapAlloc) - int64(m0.HeapAlloc)
	retained := growth - networkBytes
	t.Logf("network %d MB, fleet growth %d MB, retention %d MB (chunked=%v)",
		networkBytes>>20, growth>>20, retained>>20, f.ChunkRetained())
	if !f.ChunkRetained() {
		t.Fatal("10k fleet should run chunk-retained")
	}
	if retained > 128<<20 {
		t.Fatalf("fleet retains %d MB beyond the network; want < 128 MB (encoded chunks, not live shards)", retained>>20)
	}
	if got := f.Dataset().TotalPower.Len(); got != 504 {
		t.Fatalf("got %d steps, want 504", got)
	}
}

// TestFleetEventsCopy is the aliasing regression test: mutating the
// slices returned by Events and ExtraEvents must not corrupt the
// retained schedule the next Resimulate compiles from.
func TestFleetEventsCopy(t *testing.T) {
	cfg := quickCfg()
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pert := FleetEvent{
		At:     cfg.Start.Add(time.Hour),
		Router: f.Network().Routers[0].Name,
		Op:     OpScaleLoad,
		Factor: 1.5,
	}
	if err := f.Perturb(pert); err != nil {
		t.Fatal(err)
	}
	evs := f.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for i := range evs {
		evs[i].Router = "corrupted"
		evs[i].Op = FleetOp("corrupted")
	}
	extra := f.ExtraEvents()
	for i := range extra {
		extra[i].Router = "corrupted"
	}
	ds, err := f.Resimulate()
	if err != nil {
		t.Fatalf("mutating Events() corrupted the retained schedule: %v", err)
	}
	cold, err := SimulateWithEvents(cfg, []FleetEvent{pert})
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, cold, ds)
}
