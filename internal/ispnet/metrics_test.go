package ispnet

import (
	"testing"
)

// TestReplayMetricsAdvance checks the fleet-replay instrumentation
// tallies a run correctly. Metrics live on the process-wide registry and
// other tests in the package also advance them, so every assertion is on
// the delta across one Simulate call.
func TestReplayMetricsAdvance(t *testing.T) {
	runs0 := metricRuns.Value()
	routers0 := metricRouters.Value()
	steps0 := metricSteps.Value()
	wall0 := metricWallSamples.Value()
	meter0 := metricMeterSamples.Value()
	shards0 := metricShardSeconds.Count()

	cfg := quickCfg()
	ds, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got := metricRuns.Value() - runs0; got != 1 {
		t.Errorf("runs delta = %d, want 1", got)
	}
	if got := metricRouters.Value() - routers0; got != NumRouters {
		t.Errorf("routers delta = %d, want %d", got, NumRouters)
	}
	if got := metricShardSeconds.Count() - shards0; got != NumRouters {
		t.Errorf("shard duration observations delta = %d, want %d", got, NumRouters)
	}
	wantSteps := uint64(NumRouters) * uint64(ds.TotalPower.Len())
	if got := metricSteps.Value() - steps0; got != wantSteps {
		t.Errorf("steps delta = %d, want %d", got, wantSteps)
	}
	// Every router is deployed for at least part of the window, so wall
	// samples advance; the three instrumented routers produce meter
	// samples at the finer cadence.
	if got := metricWallSamples.Value() - wall0; got == 0 || got > wantSteps {
		t.Errorf("wall samples delta = %d (steps %d)", got, wantSteps)
	}
	var wantMeter uint64
	for _, s := range ds.Autopower {
		wantMeter += uint64(s.Len())
	}
	if got := metricMeterSamples.Value() - meter0; got != wantMeter {
		t.Errorf("meter samples delta = %d, want %d", got, wantMeter)
	}
	// The pool has fully drained: no worker is still marked busy.
	if v := metricBusyWorkers.Value(); v != 0 {
		t.Errorf("busy workers after run = %v, want 0", v)
	}
}
