package ispnet

import (
	"fmt"
	"math"
	"math/rand"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/trafficgen"
	"fantasticjoules/internal/units"
)

// The hierarchical topology generator: Config.Routers != NumRouters builds
// a continental-scale access → metro → core fleet instead of the paper's
// calibrated 107-router network.
//
// The generator preserves the calibrated fleet's structural invariants at
// every size (hierarchy_test.go asserts them at 107, 1k, and 10k):
//
//   - The per-model deployment templates are reused verbatim, so the
//     external-interface share stays at the paper's ≈51 %-of-capacity /
//     ≈45 %-of-count level and the spare-transceiver discipline carries
//     over.
//   - The tier proportions mirror the calibrated fleet's model mix
//     (56 access / 32 aggregation / 19 core out of 107).
//   - Redundancy: access PoPs dual-home into their metro PoP, metro PoPs
//     dual-home into two core PoPs, core PoP gateways form a ring with
//     chords — every fleet is connected (hypnos.Components == 1) and
//     single-link failures between PoPs do not partition it.
//
// Demand is synthesized bottom-up instead of hand-set: access interfaces
// home subscriber populations (trafficgen.SubscribersFor), uplinks carry
// the closed-form per-cohort aggregate of everything below them, clamped
// to half the slower end's line rate. Everything is derived from seeded,
// structurally keyed mixers — no name hashing, no map iteration — so
// generation is deterministic and O(N).

// hierMinRouters is the smallest hierarchical fleet: two routers per tier
// leave nothing to wire below that.
const hierMinRouters = 8

// Per-tier PoP sizes and model rotations. The gateway (position 0) is the
// member with the richest internal port budget — it terminates the chain,
// the intra-PoP ring closure, and the inter-tier uplinks.
const (
	accessPopSize = 6
	metroPopSize  = 4
	corePopSize   = 4
)

var (
	accessGatewayModel = "ASR-920-24SZ-M"
	accessMemberModels = []string{"N540-24Z8Q2C-M", "ASR-920-24SZ-M", "N540X-8Z16G-SYS-A", "ASR-920-24SZ-M", "N540-24Z8Q2C-M"}
	metroGatewayModel  = "NCS-55A1-24H"
	metroMemberModels  = []string{"ASR-9001", "NCS-55A1-24Q6H-SS", "NCS-55A1-48Q6H"}
	coreGatewayModel   = "8201-32FH"
	coreMemberModels   = []string{"Nexus9336-FX2", "8201-24H8FH", "8201-32FH"}
)

// hierPop is one point of presence under construction.
type hierPop struct {
	name string
	tier string
	// sizeHint is the member count splitPops assigned; routers is filled
	// to that size by deployment.
	sizeHint int
	routers  []*Router
	// demand is the per-cohort mean traffic (bit/s) the PoP aggregates
	// toward the core: its own external demand plus, for metro and core
	// PoPs, the demand of every PoP homed beneath it.
	demand [trafficgen.NumCohorts]float64
}

// buildHierarchy generates the hierarchical fleet for cfg. It is the
// Config.Routers != NumRouters arm of Build.
func buildHierarchy(cfg Config) (*Network, error) {
	if cfg.Routers < hierMinRouters {
		return nil, fmt.Errorf("ispnet: hierarchical fleet needs ≥ %d routers, got %d", hierMinRouters, cfg.Routers)
	}
	n := &Network{
		Config:  cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		diurnal: trafficgen.DefaultDiurnal(),
		byName:  make(map[string]*Router, cfg.Routers),
		hier:    true,
	}

	// Tier split, proportional to the calibrated fleet's model mix.
	nCore, nMetro, nAccess, err := tierSplit(cfg.Routers)
	if err != nil {
		return nil, err
	}

	corePops := splitPops("c", "core", nCore, corePopSize)
	metroPops := splitPops("m", "metro", nMetro, metroPopSize)
	accessPops := splitPops("a", "access", nAccess, accessPopSize)

	// Instantiate routers tier by tier, core outward, so router indices —
	// and with them device seeds and noise keys — depend only on
	// (Routers, Seed).
	specs := map[string]device.ModelSpec{}
	plan := fleetPlan()
	idx := 0
	deployPop := func(p *hierPop, size int, gatewayModel string, memberModels []string) error {
		for j := 0; j < size; j++ {
			modelName := gatewayModel
			if j > 0 {
				modelName = memberModels[(j-1)%len(memberModels)]
			}
			spec, ok := specs[modelName]
			if !ok {
				s, err := device.Spec(modelName)
				if err != nil {
					return err
				}
				specs[modelName] = s
				spec = s
			}
			name := fmt.Sprintf("%s-r%d", p.name, j)
			dev, err := device.New(spec, name, cfg.Seed+int64(idx)*7919)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			r := &Router{Name: name, PoP: p.name, Tier: p.tier, Device: dev}
			if err := n.deployHier(r, plan[modelName], p.tier, idx); err != nil {
				return fmt.Errorf("deploy %s: %w", name, err)
			}
			n.Routers = append(n.Routers, r)
			n.byName[name] = r
			p.routers = append(p.routers, r)
			idx++
		}
		return nil
	}
	for _, tier := range []struct {
		pops    []*hierPop
		gateway string
		members []string
	}{
		{corePops, coreGatewayModel, coreMemberModels},
		{metroPops, metroGatewayModel, metroMemberModels},
		{accessPops, accessGatewayModel, accessMemberModels},
	} {
		for _, p := range tier.pops {
			if err := deployPop(p, p.sizeHint, tier.gateway, tier.members); err != nil {
				return nil, fmt.Errorf("ispnet: %w", err)
			}
		}
	}

	if err := n.wireHierarchy(corePops, metroPops, accessPops); err != nil {
		return nil, err
	}
	for _, r := range n.Routers {
		for i := range r.Interfaces {
			n.subscribers += int64(r.Interfaces[i].Subscribers)
		}
	}
	return n, nil
}

// tierMin is the per-tier connectivity minimum: one router to terminate
// the required uplinks/ring links plus one for the redundant path.
const tierMin = 2

// tierSplit apportions the fleet into core/metro/access counts
// proportional to the calibrated network's 19/32/56 model mix. The split
// is exact by construction — largest-remainder apportionment, so the
// three tiers always sum to routers — and every tier is then topped up to
// its connectivity minimum from the largest tier. (The former independent
// math.Round calls could overdraw the access remainder at small or
// awkward sizes; at the sizes the suite exercises — 240, 1k, 10k — the
// apportionment reproduces the rounded split bit for bit.)
func tierSplit(routers int) (nCore, nMetro, nAccess int, err error) {
	if routers < hierMinRouters {
		return 0, 0, 0, fmt.Errorf("ispnet: hierarchical fleet needs ≥ %d routers, got %d", hierMinRouters, routers)
	}
	weights := [3]float64{19, 32, 56} // core, metro, access
	var counts [3]int
	var rem [3]float64
	total := 0
	for i, w := range weights {
		q := float64(routers) * w / 107.0
		counts[i] = int(q)
		rem[i] = q - float64(counts[i])
		total += counts[i]
	}
	// Hand the flooring leftovers (at most two) to the largest fractional
	// remainders; ties break toward the core so the order is fixed.
	for total < routers {
		best := 0
		for i := 1; i < len(counts); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		total++
	}
	// Top up any tier below its connectivity minimum from the largest
	// tier. With routers ≥ hierMinRouters = 8 the largest tier always has
	// slack: the quotas sum to routers and access alone holds > half.
	for i := range counts {
		for counts[i] < tierMin {
			big := 0
			for j := 1; j < len(counts); j++ {
				if counts[j] > counts[big] {
					big = j
				}
			}
			counts[big]--
			counts[i]++
		}
	}
	return counts[0], counts[1], counts[2], nil
}

// splitPops partitions count routers into PoPs of at most per members,
// sizes as even as possible, every PoP non-empty.
func splitPops(prefix, tier string, count, per int) []*hierPop {
	numPops := (count + per - 1) / per
	base := count / numPops
	extra := count % numPops
	pops := make([]*hierPop, numPops)
	for i := range pops {
		size := base
		if i < extra {
			size++
		}
		pops[i] = &hierPop{
			name:     fmt.Sprintf("%s%05d", prefix, i),
			tier:     tier,
			sizeHint: size,
		}
	}
	return pops
}

// deployHier populates one hierarchical router from its model template.
// It mirrors the calibrated deploy() — same groups, same spare
// discipline, same ±40 % utilization spread — but the spread comes from
// the interface's structural noise key (not the shared build rng, whose
// consumption order would couple distant routers), and the mean load is
// expressed as per-cohort subscriber demand:
//
//   - access external interfaces home subscriber populations sized to the
//     template's target utilization;
//   - metro/core external interfaces carry the same target as a wholesale
//     (transit/peering) aggregate;
//   - internal interfaces get a provisional wholesale load standing in
//     for locally attached infrastructure; wiring overwrites it on every
//     interface that becomes an inter-router link.
func (n *Network) deployHier(r *Router, tpl deployTemplate, tier string, routerIdx int) error {
	names := r.Device.InterfaceNames()
	next := 0
	take := func() (string, error) {
		if next >= len(names) {
			return "", fmt.Errorf("out of ports (%d)", len(names))
		}
		name := names[next]
		next++
		return name, nil
	}
	for _, grp := range tpl.groups {
		for i := 0; i < grp.n; i++ {
			ifName, err := take()
			if err != nil {
				return err
			}
			if err := r.Device.PlugTransceiver(ifName, grp.trx, grp.speed); err != nil {
				return err
			}
			if err := r.Device.SetAdmin(ifName, true); err != nil {
				return err
			}
			if err := r.Device.SetLink(ifName, true); err != nil {
				return err
			}
			key := ifaceNoiseKey(routerIdx, next-1)
			// ±40 % spread around the template utilization, as deploy()
			// applies, but keyed structurally.
			spread := 0.6 + 0.8*keyFloat(key, n.Config.Seed)
			target := grp.utilization * spread * grp.speed.BitsPerSecond()
			var sub [trafficgen.NumCohorts]float64
			subs := 0
			if grp.external && tier == "access" {
				counts, demand := trafficgen.SubscribersFor(units.BitRate(target))
				sub = demand
				subs = counts[trafficgen.Residential] + counts[trafficgen.Business] + counts[trafficgen.Wholesale]
			} else {
				sub[trafficgen.Wholesale] = target
			}
			r.Interfaces = append(r.Interfaces, Interface{
				Name:        ifName,
				Profile:     model.ProfileKey{Port: r.Device.Spec().PortType, Transceiver: grp.trx, Speed: grp.speed},
				External:    grp.external,
				MeanLoad:    units.BitRate(sub[0] + sub[1] + sub[2]),
				Subscribers: subs,
				SubDemand:   sub,
				noiseKey:    key,
			})
		}
	}
	for i := 0; i < tpl.spares && len(tpl.groups) > 0; i++ {
		ifName, err := take()
		if err != nil {
			return err
		}
		grp := tpl.groups[tpl.spareGroupIndex()]
		if err := r.Device.PlugTransceiver(ifName, grp.trx, grp.speed); err != nil {
			return err
		}
		r.Interfaces = append(r.Interfaces, Interface{
			Name:     ifName,
			Profile:  model.ProfileKey{Port: r.Device.Spec().PortType, Transceiver: grp.trx, Speed: grp.speed},
			Spare:    true,
			noiseKey: ifaceNoiseKey(routerIdx, next-1),
		})
	}
	return nil
}

// keyFloat maps a structural key and the build seed to a uniform [0, 1)
// double — the rng-free spread source of the hierarchical deploy.
func keyFloat(key uint64, seed int64) float64 {
	return float64(mixKey(key, seed)>>11) / (1 << 53)
}

// wireHierarchy builds the inter-router links: intra-PoP chains with ring
// closures, dual-homed access→metro and metro→core uplinks, and the core
// gateway ring with chords. Link demand is propagated bottom-up so every
// uplink carries the cohort aggregate of the demand below it.
func (n *Network) wireHierarchy(corePops, metroPops, accessPops []*hierPop) error {
	// Free internal (non-spare) interface indices per router, in port order.
	free := make(map[string][]int, len(n.Routers))
	for _, r := range n.Routers {
		for i := range r.Interfaces {
			itf := &r.Interfaces[i]
			if !itf.External && !itf.Spare {
				free[r.Name] = append(free[r.Name], i)
			}
		}
	}
	// pair links the next free internal interface of each end and installs
	// the given cohort demand on the link, clamped to half the slower
	// end's line rate (cohort mix preserved).
	pair := func(a, b *Router, d [trafficgen.NumCohorts]float64) bool {
		if a == b {
			return false
		}
		fa, fb := free[a.Name], free[b.Name]
		if len(fa) == 0 || len(fb) == 0 {
			return false
		}
		ai, bi := &a.Interfaces[fa[0]], &b.Interfaces[fb[0]]
		free[a.Name], free[b.Name] = fa[1:], fb[1:]
		ai.PeerRouter, ai.PeerInterface = b.Name, bi.Name
		bi.PeerRouter, bi.PeerInterface = a.Name, ai.Name
		tot := d[0] + d[1] + d[2]
		if lim := 0.5 * math.Min(ai.Profile.Speed.BitsPerSecond(), bi.Profile.Speed.BitsPerSecond()); tot > lim && tot > 0 {
			scale := lim / tot
			for c := range d {
				d[c] *= scale
			}
			tot = lim
		}
		ai.SubDemand, bi.SubDemand = d, d
		ai.MeanLoad, bi.MeanLoad = units.BitRate(tot), units.BitRate(tot)
		return true
	}

	// extDemand is the cohort demand a router injects (its external
	// interfaces); homed accumulates demand terminated on a router by
	// uplinks from the tier below.
	extDemand := func(r *Router) (d [trafficgen.NumCohorts]float64) {
		for i := range r.Interfaces {
			itf := &r.Interfaces[i]
			if itf.External && !itf.Spare {
				for c := range d {
					d[c] += itf.SubDemand[c]
				}
			}
		}
		return d
	}
	homed := make(map[*Router][trafficgen.NumCohorts]float64)

	// wirePop chains the PoP members in order and closes a best-effort
	// ring; chain link i→i+1 carries everything that funnels from the
	// tail of the chain toward the gateway at position 0.
	wirePop := func(p *hierPop) {
		rs := p.routers
		agg := make([][trafficgen.NumCohorts]float64, len(rs)+1)
		for i := len(rs) - 1; i >= 0; i-- {
			agg[i] = agg[i+1]
			d := extDemand(rs[i])
			h := homed[rs[i]]
			for c := range agg[i] {
				agg[i][c] += d[c] + h[c]
			}
		}
		p.demand = agg[0]
		for i := 0; i+1 < len(rs); i++ {
			pair(rs[i], rs[i+1], agg[i+1])
		}
		if len(rs) >= 3 {
			pair(rs[len(rs)-1], rs[0], scaleDemand(p.demand, 0.25))
		}
	}

	// uplink dual-homes a PoP gateway (and deputy, when the PoP has one)
	// into the parent PoP: the first termination is required — it is what
	// keeps the fleet connected — the second is redundancy, best-effort.
	// Each uplink link is sized to half the child's aggregate; the full
	// aggregate is accounted upstream either way.
	uplink := func(child *hierPop, parent *hierPop, k int, deputy bool) error {
		gw := child.routers[0]
		half := scaleDemand(child.demand, 0.5)
		t1 := parent.routers[(2*k)%len(parent.routers)]
		if !pair(gw, t1, half) {
			ok := false
			for _, m := range parent.routers {
				if pair(gw, m, half) {
					t1, ok = m, true
					break
				}
			}
			if !ok {
				return fmt.Errorf("ispnet: no free %s port terminates %s", parent.name, child.name)
			}
		}
		src := gw
		if deputy && len(child.routers) > 1 {
			src = child.routers[1]
		}
		if t2 := parent.routers[(2*k+1)%len(parent.routers)]; t2 != t1 && pair(src, t2, half) {
			addDemand(homed, t1, half)
			addDemand(homed, t2, half)
		} else {
			addDemand(homed, t1, child.demand)
		}
		return nil
	}

	// Bottom-up: access PoPs first (their demand is fixed by deployment),
	// then their uplinks feed the metro aggregates, and so on to the core.
	for _, p := range accessPops {
		wirePop(p)
	}
	for k, p := range accessPops {
		if err := uplink(p, metroPops[k%len(metroPops)], k, false); err != nil {
			return err
		}
	}
	for _, p := range metroPops {
		wirePop(p)
	}
	for k, p := range metroPops {
		if err := uplink(p, corePops[k%len(corePops)], k, true); err != nil {
			return err
		}
		if len(corePops) > 1 {
			// Second core PoP: metro dual-homes across PoPs, not just
			// across routers — a whole core PoP can fail.
			second := corePops[(k+1)%len(corePops)]
			if pair(p.routers[0], second.routers[k%len(second.routers)], scaleDemand(p.demand, 0.25)) {
				addDemand(homed, second.routers[k%len(second.routers)], scaleDemand(p.demand, 0.25))
			}
		}
	}
	for _, p := range corePops {
		wirePop(p)
	}

	// Core backbone: gateway ring plus chords every fourth PoP. The ring
	// links are required — they are what joins the core PoPs (and through
	// them everything else) into one component.
	if len(corePops) > 1 {
		var fleet [trafficgen.NumCohorts]float64
		for _, p := range corePops {
			for c := range fleet {
				fleet[c] += p.demand[c]
			}
		}
		ringShare := scaleDemand(fleet, 1/float64(2*len(corePops)))
		for i, p := range corePops {
			q := corePops[(i+1)%len(corePops)]
			if !ringLink(pair, p, q, ringShare) {
				return fmt.Errorf("ispnet: core ring cannot link %s to %s", p.name, q.name)
			}
			if i%4 == 0 && len(corePops) > 4 {
				far := corePops[(i+len(corePops)/2)%len(corePops)]
				pair(p.routers[0], far.routers[0], scaleDemand(ringShare, 0.5))
			}
		}
	}
	return nil
}

// ringLink joins two core PoPs, preferring their gateways and falling
// back over every member pair before giving up.
func ringLink(pair func(a, b *Router, d [trafficgen.NumCohorts]float64) bool, p, q *hierPop, d [trafficgen.NumCohorts]float64) bool {
	if pair(p.routers[0], q.routers[0], d) {
		return true
	}
	for _, a := range p.routers {
		for _, b := range q.routers {
			if pair(a, b, d) {
				return true
			}
		}
	}
	return false
}

// scaleDemand returns d scaled by f.
func scaleDemand(d [trafficgen.NumCohorts]float64, f float64) [trafficgen.NumCohorts]float64 {
	for c := range d {
		d[c] *= f
	}
	return d
}

// addDemand accumulates d onto m[r].
func addDemand(m map[*Router][trafficgen.NumCohorts]float64, r *Router, d [trafficgen.NumCohorts]float64) {
	cur := m[r]
	for c := range cur {
		cur[c] += d[c]
	}
	m[r] = cur
}
