package device

import (
	"fmt"
	"time"

	"fantasticjoules/internal/model"
	"fantasticjoules/internal/units"
)

// Hot-path batch API. The fleet simulator drives every router through the
// same tight loop — set offered load on each interface, advance the clock,
// sample wall power — tens of thousands of times per replay. The
// name-keyed methods (SetTraffic, InterfaceState) pay a map lookup and a
// mutex round-trip per call; the handle API resolves each name to a dense
// index once, and a Step batches a whole simulation step under a single
// lock acquisition.

// Handle identifies one interface of one router by its dense port index.
// Resolve it once with Router.Handle; it stays valid for the router's
// lifetime (the physical port set is fixed at New — config events change
// what is plugged into a port, never the port itself).
type Handle int

// Handle resolves an interface name to its handle.
func (r *Router) Handle(ifName string) (Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, itf := range r.interfaces {
		if itf.name == ifName {
			return Handle(i), nil
		}
	}
	return -1, fmt.Errorf("device: %s has no interface %q", r.name, ifName)
}

// valid reports whether h indexes an interface; hot-path methods use it to
// fail loudly on programmer error instead of constructing errors.
func (r *Router) valid(h Handle) bool { return h >= 0 && int(h) < len(r.interfaces) }

// setTrafficLocked is the validation core shared by SetTraffic,
// SetTrafficAt, and Step.SetTraffic. Callers hold r.mu. The success path
// constructs nothing.
func (r *Router) setTrafficLocked(itf *Interface, bits units.BitRate, packets units.PacketRate) error {
	if bits < 0 || packets < 0 {
		return fmt.Errorf("device: negative traffic on %s", itf.name)
	}
	if (bits > 0 || packets > 0) && !itf.OperUp() {
		return fmt.Errorf("device: interface %s is down, cannot carry traffic", itf.name)
	}
	if bits > itf.speed*2 {
		return fmt.Errorf("device: %s offered %v exceeds 2×%v line rate", itf.name, bits, itf.speed)
	}
	itf.bits = bits
	itf.packets = packets
	return nil
}

// SetTrafficAt is SetTraffic addressed by handle: no map lookup, and no
// allocation on the success path. An out-of-range handle panics — handles
// come from Handle, so that is a caller bug, not an input condition.
func (r *Router) SetTrafficAt(h Handle, bits units.BitRate, packets units.PacketRate) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.valid(h) {
		panic(fmt.Sprintf("device: %s has no interface handle %d", r.name, h))
	}
	return r.setTrafficLocked(r.interfaces[h], bits, packets)
}

// InterfaceStateAt is InterfaceState addressed by handle: no map lookup
// and no error return. An out-of-range handle panics.
func (r *Router) InterfaceStateAt(h Handle) (present, adminUp, operUp bool, key model.ProfileKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.valid(h) {
		panic(fmt.Sprintf("device: %s has no interface handle %d", r.name, h))
	}
	itf := r.interfaces[h]
	return itf.transceiverPresent, itf.adminUp, itf.OperUp(), itf.ProfileKey()
}

// Step is a single-owner batch view of a router: BeginStep acquires the
// router's lock once, the Step methods run lock-free on the already-held
// lock, and End releases it. Between BeginStep and End the caller owns the
// router exclusively — calling any locking Router method (including
// meter reads, which sample WallPower through the router) deadlocks, so
// End the step before handing the router to anything else. A Step is a
// value; passing it around copies only the router pointer.
type Step struct {
	r *Router
}

// BeginStep locks the router and returns the batch view.
//
//joules:hotpath
func (r *Router) BeginStep() Step {
	r.mu.Lock()
	return Step{r: r}
}

// End releases the router. The Step must not be used afterwards.
//
//joules:hotpath
func (s Step) End() { s.r.mu.Unlock() }

// SetTraffic sets the offered load on the interface with the given handle.
//
//joules:hotpath
func (s Step) SetTraffic(h Handle, bits units.BitRate, packets units.PacketRate) error {
	if !s.r.valid(h) {
		panic(fmt.Sprintf("device: %s has no interface handle %d", s.r.name, h))
	}
	return s.r.setTrafficLocked(s.r.interfaces[h], bits, packets)
}

// InterfaceState returns the present/admin/oper state of the interface
// with the given handle.
//
//joules:hotpath
func (s Step) InterfaceState(h Handle) (present, adminUp, operUp bool) {
	if !s.r.valid(h) {
		panic(fmt.Sprintf("device: %s has no interface handle %d", s.r.name, h))
	}
	itf := s.r.interfaces[h]
	return itf.transceiverPresent, itf.adminUp, itf.OperUp()
}

// WallPower samples the true wall power within the batch (one jitter draw,
// exactly as Router.WallPower).
//
//joules:hotpath
func (s Step) WallPower() units.Power { return s.r.wallPowerLocked() }

// Advance moves the simulation clock within the batch.
//
//joules:hotpath
func (s Step) Advance(dt time.Duration) time.Time { return s.r.advanceLocked(dt) }
