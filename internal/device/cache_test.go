package device

import (
	"math/rand"
	"testing"
	"time"

	"fantasticjoules/internal/units"
)

// cacheSpec is flatSpec extended with everything the invalidation matrix
// needs: a modular chassis (linecard events) and an OS version with a fan
// regression. Jitter stays zero so wall-power comparisons can be exact.
func cacheSpec() ModelSpec {
	spec := flatSpec()
	spec.Slots = 2
	spec.Linecards = []LinecardType{{Name: "LC-TEST", PowerDC: 30}}
	spec.OSFanRegression = map[string]units.Power{"2.0-fanbug": 45}
	return spec
}

func staticCached(r *Router) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.staticOK
}

// wallPowerCacheFree recomputes wall power with the static cache force-
// dropped, i.e. the answer a cache-less implementation would give.
func wallPowerCacheFree(r *Router) units.Power {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.invalidateStaticLocked()
	return r.wallPowerLocked()
}

// warm populates the cache and asserts it stuck.
func warm(t *testing.T, r *Router) {
	t.Helper()
	r.WallPower()
	if !staticCached(r) {
		t.Fatal("static cache not populated by WallPower")
	}
}

// TestStaticCacheInvalidatedByConfigEvents drives every config-changing
// event and asserts each one drops the static-power cache.
func TestStaticCacheInvalidatedByConfigEvents(t *testing.T) {
	r := mustRouter(t, cacheSpec())
	if err := r.PlugTransceiver("eth0", "Passive DAC", 100*g); err != nil {
		t.Fatal(err)
	}

	events := []struct {
		name  string
		apply func() error
	}{
		{"PlugTransceiver", func() error { return r.PlugTransceiver("eth1", "Passive DAC", 100*g) }},
		{"SetAdmin", func() error { return r.SetAdmin("eth0", true) }},
		{"SetLink", func() error { return r.SetLink("eth0", true) }},
		{"UpgradeOS", func() error { r.UpgradeOS("2.0-fanbug"); return nil }},
		{"SetPSUOnline(false)", func() error { return r.SetPSUOnline(1, false) }},
		{"SetPSUOnline(true)", func() error { return r.SetPSUOnline(1, true) }},
		{"InstallLinecard", func() error { return r.InstallLinecard("LC-TEST") }},
		{"RemoveLinecard", func() error { return r.RemoveLinecard("LC-TEST") }},
		{"UnplugTransceiver", func() error { return r.UnplugTransceiver("eth1") }},
	}
	for _, ev := range events {
		warm(t, r)
		if err := ev.apply(); err != nil {
			t.Fatalf("%s: %v", ev.name, err)
		}
		if staticCached(r) {
			t.Errorf("%s did not invalidate the static-power cache", ev.name)
		}
		if got, want := r.WallPower(), wallPowerCacheFree(r); got != want {
			t.Errorf("%s: cached wall power %v != cache-free %v", ev.name, got, want)
		}
	}
}

// TestSetTrafficKeepsStaticCache pins the other half of the contract:
// offered load is part of the dynamic term, so the per-step SetTraffic
// path must NOT rebuild the static sum.
func TestSetTrafficKeepsStaticCache(t *testing.T) {
	r := mustRouter(t, cacheSpec())
	if err := r.PlugTransceiver("eth0", "Passive DAC", 100*g); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAdmin("eth0", true); err != nil {
		t.Fatal(err)
	}
	if err := r.SetLink("eth0", true); err != nil {
		t.Fatal(err)
	}
	warm(t, r)
	if err := r.SetTraffic("eth0", 40*g, 3e6); err != nil {
		t.Fatal(err)
	}
	if !staticCached(r) {
		t.Error("SetTraffic invalidated the static cache; traffic is a dynamic term")
	}
	h, err := r.Handle("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetTrafficAt(h, 20*g, 2e6); err != nil {
		t.Fatal(err)
	}
	if !staticCached(r) {
		t.Error("SetTrafficAt invalidated the static cache")
	}
	if got, want := r.WallPower(), wallPowerCacheFree(r); got != want {
		t.Errorf("cached wall power %v != cache-free %v", got, want)
	}
}

// TestStaticCachePropertyRandomWalk runs a randomized event/traffic walk
// and, after every operation, asserts the cached WallPower is bit-equal
// to a cache-free recompute — the property that makes the cache safe for
// the deterministic fleet replay.
func TestStaticCachePropertyRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	r := mustRouter(t, cacheSpec())
	names := r.InterfaceNames()

	ops := []func(){
		func() {
			n := names[rng.Intn(len(names))]
			_ = r.PlugTransceiver(n, "Passive DAC", 100*g)
		},
		func() { _ = r.UnplugTransceiver(names[rng.Intn(len(names))]) },
		func() { _ = r.SetAdmin(names[rng.Intn(len(names))], rng.Intn(2) == 0) },
		func() { _ = r.SetLink(names[rng.Intn(len(names))], rng.Intn(2) == 0) },
		func() {
			if rng.Intn(2) == 0 {
				r.UpgradeOS("2.0-fanbug")
			} else {
				r.UpgradeOS("1.0")
			}
		},
		func() { _ = r.SetPSUOnline(rng.Intn(r.PSUCount()), rng.Intn(2) == 0) },
		func() { _ = r.InstallLinecard("LC-TEST") },
		func() { _ = r.RemoveLinecard("LC-TEST") },
		func() {
			n := names[rng.Intn(len(names))]
			_ = r.SetTraffic(n, units.BitRate(rng.Float64())*100*g, units.PacketRate(rng.Float64()*1e7))
		},
		func() { r.SetTemperature(15 + rng.Float64()*30) },
		func() { r.Advance(30 * time.Second) },
	}
	for i := 0; i < 500; i++ {
		ops[rng.Intn(len(ops))]()
		cached := r.WallPower()
		free := wallPowerCacheFree(r)
		if cached != free {
			t.Fatalf("step %d: cached wall power %v != cache-free recompute %v", i, cached, free)
		}
	}
}
