package device

import (
	"fmt"

	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/units"
)

// pseudoConstantSnapThreshold is how far the true input power must move
// before a pseudo-constant sensor re-snaps to it. The Fig. 4b trace shows
// exactly this: long flat segments with sharp jumps.
const pseudoConstantSnapThreshold = 8 // watts

// ErrNoPowerSensor is returned for router models that do not report PSU
// power at all (the Fig. 4c router).
var ErrNoPowerSensor = fmt.Errorf("device: model does not report PSU power")

// ReportedPSUPower returns what the router itself claims PSU index draws
// from the wall — the value an SNMP poller would collect. Depending on the
// model this is accurate, offset, pseudo-constant, or unavailable
// (ErrNoPowerSensor). Reading the sensor samples the electrical state.
func (r *Router) ReportedPSUPower(index int) (units.Power, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if index < 0 || index >= len(r.psus) {
		return 0, fmt.Errorf("device: %s has no PSU %d", r.name, index)
	}
	if r.spec.PSUSensor == SensorNone {
		return 0, ErrNoPowerSensor
	}
	r.wallPowerLocked() // refresh lastIn/lastOut
	p := r.psus[index]
	switch r.spec.PSUSensor {
	case SensorAccurate:
		return p.lastIn + units.Power(r.rng.NormFloat64()*0.5), nil
	case SensorOffset:
		return p.lastIn + units.Power(r.spec.PSUSensorOffset.Watts()/float64(len(r.psus))) +
			units.Power(r.rng.NormFloat64()*0.3), nil
	case SensorPseudoConstant:
		truth := p.lastIn
		if !p.heldValid || absW(truth-p.held) > pseudoConstantSnapThreshold {
			p.held = units.Power(float64(int(truth.Watts() + 0.5)))
			p.heldValid = true
		}
		return p.held, nil
	}
	return 0, fmt.Errorf("device: unknown sensor behaviour %v", r.spec.PSUSensor)
}

// ReportedTotalPower sums the reported power of all PSUs. It returns
// ErrNoPowerSensor for models without sensors.
func (r *Router) ReportedTotalPower() (units.Power, error) {
	var total units.Power
	for i := 0; i < r.PSUCount(); i++ {
		p, err := r.ReportedPSUPower(i)
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total, nil
}

// PowerCycle simulates unplugging and re-plugging PSU index (as happens
// when an Autopower meter is installed, §6.2). Pseudo-constant sensors
// re-baseline on power-up and may report a different value afterwards —
// the unexplained 7 W step of Fig. 4b.
func (r *Router) PowerCycle(index int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if index < 0 || index >= len(r.psus) {
		return fmt.Errorf("device: %s has no PSU %d", r.name, index)
	}
	p := r.psus[index]
	if r.spec.PSUSensor == SensorPseudoConstant {
		r.wallPowerLocked()
		// Re-baseline with a sensor-calibration shift of a few watts.
		shift := units.Power(r.rng.NormFloat64() * 4)
		p.held = units.Power(float64(int(p.lastIn.Watts() + shift.Watts() + 0.5)))
		p.heldValid = true
	}
	return nil
}

// EnvSnapshot exports the environment-sensor view of every PSU: input and
// output power with sensor noise, plus the rated capacity. This is the
// one-time export the paper's §9 analysis builds on. The readings of the
// two directions are taken asynchronously, so a lightly loaded PSU can
// report Pout > Pin — physically impossible, present in the real dataset,
// and deliberately reproduced here.
func (r *Router) EnvSnapshot() []psu.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wallPowerLocked()
	out := make([]psu.Snapshot, 0, len(r.psus))
	for _, p := range r.psus {
		if !p.online {
			out = append(out, psu.Snapshot{Capacity: p.unit.Capacity()})
			continue
		}
		noiseIn := 1 + r.rng.NormFloat64()*0.015
		noiseOut := 1 + r.rng.NormFloat64()*0.015
		out = append(out, psu.Snapshot{
			Pin:      units.Power(p.lastIn.Watts() * noiseIn),
			Pout:     units.Power(p.lastOut.Watts() * noiseOut),
			Capacity: p.unit.Capacity(),
		})
	}
	return out
}

func absW(p units.Power) units.Power {
	if p < 0 {
		return -p
	}
	return p
}
