package device

import (
	"math"
	"testing"
)

func modularSpec() ModelSpec {
	spec := flatSpec()
	spec.Name = "modular-router"
	spec.Slots = 4
	spec.Linecards = []LinecardType{
		{Name: "LC-48x10G", PowerDC: 75},
		{Name: "LC-8x100G", PowerDC: 120},
	}
	return spec
}

func TestLinecardPower(t *testing.T) {
	r := mustRouter(t, modularSpec())
	base := r.WallPower().Watts()
	if err := r.InstallLinecard("LC-48x10G"); err != nil {
		t.Fatal(err)
	}
	one := r.WallPower().Watts()
	if math.Abs(one-base-75) > 1e-9 {
		t.Errorf("one card added %v W, want 75", one-base)
	}
	if err := r.InstallLinecard("LC-8x100G"); err != nil {
		t.Fatal(err)
	}
	two := r.WallPower().Watts()
	if math.Abs(two-base-195) > 1e-9 {
		t.Errorf("two cards added %v W, want 195", two-base)
	}
	if err := r.RemoveLinecard("LC-48x10G"); err != nil {
		t.Fatal(err)
	}
	if got := r.WallPower().Watts(); math.Abs(got-base-120) > 1e-9 {
		t.Errorf("after removal %v W above base, want 120", got-base)
	}
}

func TestLinecardErrors(t *testing.T) {
	fixed := mustRouter(t, flatSpec())
	if err := fixed.InstallLinecard("LC-48x10G"); err == nil {
		t.Error("fixed chassis must reject linecards")
	}
	r := mustRouter(t, modularSpec())
	if err := r.InstallLinecard("LC-unknown"); err == nil {
		t.Error("unknown card type must error")
	}
	if err := r.RemoveLinecard("LC-48x10G"); err == nil {
		t.Error("removing a card that is not installed must error")
	}
	for i := 0; i < 4; i++ {
		if err := r.InstallLinecard("LC-48x10G"); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.InstallLinecard("LC-48x10G"); err == nil {
		t.Error("full chassis must reject a fifth card")
	}
}

func TestInstalledLinecards(t *testing.T) {
	r := mustRouter(t, modularSpec())
	if got := r.InstalledLinecards(); len(got) != 0 {
		t.Errorf("fresh chassis lists cards: %v", got)
	}
	_ = r.InstallLinecard("LC-8x100G")
	_ = r.InstallLinecard("LC-48x10G")
	got := r.InstalledLinecards()
	if len(got) != 2 || got[0] != "LC-48x10G" || got[1] != "LC-8x100G" {
		t.Errorf("installed = %v, want sorted pair", got)
	}
}

func TestModularCatalogEntry(t *testing.T) {
	spec, err := Spec("ASR-9910")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Slots != 8 || len(spec.Linecards) != 2 {
		t.Errorf("ASR-9910 spec: slots=%d cards=%d", spec.Slots, len(spec.Linecards))
	}
	r, err := New(spec, "chassis", 1)
	if err != nil {
		t.Fatal(err)
	}
	empty := r.WallPower().Watts()
	for i := 0; i < 4; i++ {
		if err := r.InstallLinecard("A99-48X10GE"); err != nil {
			t.Fatal(err)
		}
	}
	loaded := r.WallPower().Watts()
	// Four 420 W cards through lossy PSUs: clearly more than 4×420.
	if loaded-empty < 4*420 {
		t.Errorf("4 cards added %v W at the wall, want ≥1680 (conversion losses included)", loaded-empty)
	}
}
