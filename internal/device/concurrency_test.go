package device

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentAccess hammers one router from many goroutines — the SNMP
// agent, Autopower sampling, and the simulation loop all touch a router
// concurrently in production, so every public method must be safe.
func TestConcurrentAccess(t *testing.T) {
	spec := flatSpec()
	spec.PowerJitter = 0.5
	r := mustRouter(t, spec)
	upInterface(t, r, "eth0")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	work := []func(){
		func() { _ = r.WallPower() },
		func() { _, _ = r.ReportedTotalPower() },
		func() { _ = r.EnvSnapshot() },
		func() { _, _ = r.CountersOf("eth0") },
		func() { r.Advance(time.Millisecond) },
		func() { _ = r.SetTraffic("eth0", 10*g, 1000) },
		func() { _, _, _, _, _ = r.InterfaceState("eth3") },
		func() { _ = r.Inventory() },
		func() { r.SetTemperature(26) },
		func() { _ = r.PlugTransceiver("eth5", "Passive DAC", 100*g) },
		func() { _ = r.UnplugTransceiver("eth5") },
	}
	for _, fn := range work {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}(fn)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The router must still be consistent.
	if p := r.WallPower(); p <= 0 {
		t.Errorf("router broken after concurrent access: %v", p)
	}
}
