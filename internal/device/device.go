// Package device simulates fixed-chassis routers at the electrical level.
//
// It is the substitute for the physical hardware of the paper (the lab DUTs
// of §5 and the deployed Switch routers of §6): each simulated router
// computes its true wall power from hidden ground-truth parameters — the
// per-interface terms of the power model plus everything the model
// deliberately omits (fans, temperature, control-plane load, PSU conversion
// losses, per-unit manufacturing variation). The modeling methodology in
// internal/labbench must *recover* the interface terms from experiments
// against this package, and the deployment analyses observe the same
// offsets the paper reports, because the unmodeled terms are really here.
//
// The separation is deliberate: nothing in this package ever consults
// internal/model for a power value at runtime; power flows only from the
// hidden spec.
package device

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/units"
)

// Interface is the state of one router port and whatever is plugged into
// it. All mutation goes through Router methods; reads through accessors.
type Interface struct {
	name string
	port model.PortType

	transceiver        model.TransceiverType
	speed              units.BitRate
	transceiverPresent bool

	adminUp bool
	// linkUp models the far end: true when a powered, admin-up peer is
	// attached (the lab cabling or a deployed circuit).
	linkUp bool

	// Offered load, bidirectional sums.
	bits    units.BitRate
	packets units.PacketRate

	// truth caches the resolved ground-truth profile for the interface's
	// current configuration, rebuilt together with the router's static
	// power sum (rebuildStaticLocked) so the per-step load terms read a
	// struct field instead of hashing a profile key into the Truth map.
	truth      model.InterfaceProfile
	truthKnown bool

	// Cumulative counters (SNMP ifHC* semantics), advanced by Router.Advance.
	inOctets, outOctets   uint64
	inPackets, outPackets uint64
}

// Name returns the interface name, e.g. "eth7".
func (i *Interface) Name() string { return i.name }

// Port returns the physical port type.
func (i *Interface) Port() model.PortType { return i.port }

// OperUp reports whether the interface is operationally up: admin-up with a
// transceiver plugged in and a live far end.
func (i *Interface) OperUp() bool {
	return i.adminUp && i.transceiverPresent && i.linkUp
}

// ProfileKey returns the model profile key for the interface's current
// transceiver and speed. It is only meaningful while a transceiver is
// present.
func (i *Interface) ProfileKey() model.ProfileKey {
	return model.ProfileKey{Port: i.port, Transceiver: i.transceiver, Speed: i.speed}
}

// Counters is a snapshot of an interface's cumulative traffic counters.
type Counters struct {
	InOctets, OutOctets   uint64
	InPackets, OutPackets uint64
}

// PSUState is one installed power supply: the electrical unit plus its
// per-unit efficiency offset (manufacturing/aging variation, §9.3.1) and
// the last input power it delivered, for the sensor mocks.
type PSUState struct {
	unit   *psu.Unit
	offset float64 // added to the unit's curve
	// curve is the unit's efficiency curve shifted by offset, materialized
	// once at construction: Offset allocates a fresh point slice, and the
	// wall-power path evaluates the curve for every PSU at every sample.
	curve  psu.Curve
	online bool

	lastIn  units.Power
	lastOut units.Power

	// Pseudo-constant sensor state (see sensors.go).
	held      units.Power
	heldValid bool
}

// Capacity returns the PSU's rated capacity.
func (p *PSUState) Capacity() units.Power { return p.unit.Capacity() }

// Online reports whether the PSU participates in load sharing.
func (p *PSUState) Online() bool { return p.online }

func (p *PSUState) inputFor(out units.Power) units.Power {
	if out <= 0 {
		return 0
	}
	load := out.Watts() / p.unit.Capacity().Watts()
	return units.Power(out.Watts() / p.curve.Efficiency(load))
}

// Router is a simulated fixed-chassis router. Create instances with New;
// all methods are safe for concurrent use (one mutex guards all state).
//
// Concurrency audit for the sharded fleet simulation: a Router carries its
// own rand source (seeded at New) and clock, and shares nothing with other
// Router instances, so each router can be confined to one shard goroutine
// and replayed independently. On that hot path the mutex is uncontended —
// the per-router lock exists for callers that do share a device across
// goroutines (e.g. an SNMP agent polling while a meter samples), not for
// the simulation itself.
type Router struct {
	mu sync.Mutex

	name string
	spec ModelSpec
	rng  *rand.Rand

	osVersion   string
	temperature float64 // ambient °C
	// internalTemp is the chassis temperature when the spec enables
	// thermal coupling; otherwise it tracks ambient exactly.
	internalTemp float64
	fanBoost     units.Power

	interfaces []*Interface
	byName     map[string]*Interface
	psus       []*PSUState
	linecards  []LinecardType

	// Static-power cache: the configuration-dependent part of dcLoadLocked —
	// chassis base, control plane, linecards, and the per-port /
	// per-transceiver terms — changes only when a config event fires
	// (plug/unplug, admin, link, OS upgrade, linecard install/remove), not
	// per simulation step. staticDC holds that sum, trafficIfs the
	// operationally-up interfaces whose load terms still need evaluating
	// every step, and staticOK is the dirty flag every config mutator
	// clears. See rebuildStaticLocked.
	staticDC   units.Power
	trafficIfs []*Interface
	staticOK   bool

	clock time.Time
}

// New creates a router of the given hardware spec. The seed drives all of
// the router's stochastic behaviour (sensor noise, per-PSU variation), so
// equal seeds give bit-identical simulations.
func New(spec ModelSpec, name string, seed int64) (*Router, error) {
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	r := &Router{
		name:         name,
		spec:         spec,
		rng:          rng,
		osVersion:    spec.InitialOSVersion,
		temperature:  25,
		internalTemp: 25,
		byName:       make(map[string]*Interface),
		clock:        time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC),
	}
	for i := 0; i < spec.NumPorts; i++ {
		itf := &Interface{
			name: fmt.Sprintf("eth%d", i),
			port: spec.PortType,
		}
		r.interfaces = append(r.interfaces, itf)
		r.byName[itf.name] = itf
	}
	for i := 0; i < spec.PSUCount; i++ {
		unit, err := psu.NewUnit(spec.PSUCapacity, spec.PSUCurve)
		if err != nil {
			return nil, fmt.Errorf("device: psu %d: %w", i, err)
		}
		// Model-level efficiency bias plus per-unit variation: the paper
		// observes same-model PSUs spanning a wide efficiency range
		// (§9.3.1, Fig. 6d) and whole models faring poorly (Fig. 6c).
		off := spec.PSUEfficiencyBias + rng.NormFloat64()*spec.PSUEfficiencySpread
		r.psus = append(r.psus, &PSUState{
			unit:   unit,
			offset: off,
			curve:  unit.Curve().Offset(off),
			online: true,
		})
	}
	return r, nil
}

// Name returns the router's deployment name.
func (r *Router) Name() string { return r.name }

// Model returns the hardware model name.
func (r *Router) Model() string { return r.spec.Name }

// Spec returns a copy of the router's hardware spec.
func (r *Router) Spec() ModelSpec { return r.spec }

// Now returns the router's simulation clock.
func (r *Router) Now() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock
}

// InterfaceNames lists the interface names in port order.
func (r *Router) InterfaceNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.interfaces))
	for i, itf := range r.interfaces {
		out[i] = itf.name
	}
	return out
}

func (r *Router) iface(name string) (*Interface, error) {
	itf, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("device: %s has no interface %q", r.name, name)
	}
	return itf, nil
}

// PlugTransceiver inserts a transceiver module into the named port. The
// power cost Ptrx,in starts immediately, whatever the port's admin state —
// the "down does not mean off" behaviour of §7.
func (r *Router) PlugTransceiver(ifName string, trx model.TransceiverType, speed units.BitRate) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	itf, err := r.iface(ifName)
	if err != nil {
		return err
	}
	key := model.ProfileKey{Port: itf.port, Transceiver: trx, Speed: speed}
	if _, ok := r.spec.Truth[key]; !ok {
		return fmt.Errorf("device: %s does not support %s", r.spec.Name, key)
	}
	itf.transceiver = trx
	itf.speed = speed
	itf.transceiverPresent = true
	r.invalidateStaticLocked()
	return nil
}

// UnplugTransceiver removes the module from the named port.
func (r *Router) UnplugTransceiver(ifName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	itf, err := r.iface(ifName)
	if err != nil {
		return err
	}
	itf.transceiverPresent = false
	itf.bits, itf.packets = 0, 0
	r.invalidateStaticLocked()
	return nil
}

// SetAdmin sets the configured (admin) state of the named interface.
// Taking a port down stops its traffic but — per §7 — does not power off a
// plugged transceiver.
func (r *Router) SetAdmin(ifName string, up bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	itf, err := r.iface(ifName)
	if err != nil {
		return err
	}
	itf.adminUp = up
	if !up {
		itf.bits, itf.packets = 0, 0
	}
	r.invalidateStaticLocked()
	return nil
}

// SetLink sets the far-end state of the named interface: whether a powered,
// admin-up peer is attached. The lab harness uses this to emulate its pair
// cabling; the fleet simulator uses it for deployed circuits.
func (r *Router) SetLink(ifName string, up bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	itf, err := r.iface(ifName)
	if err != nil {
		return err
	}
	itf.linkUp = up
	if !up {
		itf.bits, itf.packets = 0, 0
	}
	r.invalidateStaticLocked()
	return nil
}

// SetTraffic sets the instantaneous offered load on an operationally up
// interface (bidirectional sums). Setting traffic on a down interface is an
// error: nothing would forward it.
func (r *Router) SetTraffic(ifName string, bits units.BitRate, packets units.PacketRate) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	itf, err := r.iface(ifName)
	if err != nil {
		return err
	}
	if bits < 0 || packets < 0 {
		return fmt.Errorf("device: negative traffic on %s", ifName)
	}
	if (bits > 0 || packets > 0) && !itf.OperUp() {
		return fmt.Errorf("device: interface %s is down, cannot carry traffic", ifName)
	}
	if bits > itf.speed*2 {
		return fmt.Errorf("device: %s offered %v exceeds 2×%v line rate", ifName, bits, itf.speed)
	}
	itf.bits = bits
	itf.packets = packets
	return nil
}

// InterfaceState returns the current state of the named interface.
func (r *Router) InterfaceState(ifName string) (present, adminUp, operUp bool, key model.ProfileKey, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	itf, err := r.iface(ifName)
	if err != nil {
		return false, false, false, model.ProfileKey{}, err
	}
	return itf.transceiverPresent, itf.adminUp, itf.OperUp(), itf.ProfileKey(), nil
}

// CountersOf returns the cumulative counters of the named interface.
func (r *Router) CountersOf(ifName string) (Counters, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	itf, err := r.iface(ifName)
	if err != nil {
		return Counters{}, err
	}
	return Counters{
		InOctets: itf.inOctets, OutOctets: itf.outOctets,
		InPackets: itf.inPackets, OutPackets: itf.outPackets,
	}, nil
}

// SetTemperature sets the ambient temperature in °C, which drives fan
// power. Without thermal coupling in the spec, the chassis temperature
// follows ambient instantly.
func (r *Router) SetTemperature(celsius float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.temperature = celsius
	if r.spec.ThermalTimeConstant <= 0 {
		r.internalTemp = celsius
	}
}

// InternalTemperature returns the chassis temperature the fans react to.
func (r *Router) InternalTemperature() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.internalTemp
}

// OSVersion returns the running software version.
func (r *Router) OSVersion() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.osVersion
}

// UpgradeOS installs a new software version. If the spec declares a fan
// regression for that version (the Fig. 8 event: a temperature-management
// change raising fan speeds by ≈45 W), the extra draw applies from now on.
func (r *Router) UpgradeOS(version string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.osVersion = version
	if boost, ok := r.spec.OSFanRegression[version]; ok {
		r.fanBoost = boost
	} else {
		r.fanBoost = 0
	}
	r.invalidateStaticLocked()
}

// SetPSUOnline brings a PSU in or out of the load-sharing pool (the
// single-PSU experiments of §9.3.4). Taking the last online PSU offline is
// an error: the router would lose power.
func (r *Router) SetPSUOnline(index int, online bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if index < 0 || index >= len(r.psus) {
		return fmt.Errorf("device: %s has no PSU %d", r.name, index)
	}
	if !online {
		live := 0
		for _, p := range r.psus {
			if p.online {
				live++
			}
		}
		if live == 1 && r.psus[index].online {
			return fmt.Errorf("device: cannot take the last online PSU of %s offline", r.name)
		}
	}
	r.psus[index].online = online
	// PSU membership does not enter the DC-side static sum, but it changes
	// the wall-power conversion; invalidating keeps the rule simple — every
	// config-changing event drops the cache.
	r.invalidateStaticLocked()
	return nil
}

// PSUCount returns the number of installed PSUs.
func (r *Router) PSUCount() int { return len(r.psus) }

// invalidateStaticLocked marks the static-power cache dirty. Every mutator
// that can change the configuration-dependent power terms calls it; the
// next dcLoadLocked rebuilds. Callers must hold r.mu.
func (r *Router) invalidateStaticLocked() { r.staticOK = false }

// rebuildStaticLocked recomputes the configuration-dependent part of the
// DC load — everything except the fan/thermal terms and the per-interface
// traffic terms — and refreshes each interface's cached truth profile plus
// the list of operationally-up interfaces whose load terms the per-step
// path must still evaluate. Callers must hold r.mu.
func (r *Router) rebuildStaticLocked() {
	s := &r.spec
	p := s.PBaseDC
	p += r.fanBoost
	p += s.ControlPlanePower
	p += r.linecardLoad()
	r.trafficIfs = r.trafficIfs[:0]
	for _, itf := range r.interfaces {
		itf.truthKnown = false
		if itf.transceiverPresent || itf.adminUp {
			itf.truth, itf.truthKnown = s.Truth[itf.ProfileKey()]
			if !itf.truthKnown {
				// Port admin-up with no transceiver: charge the port cost of
				// the spec's default profile for this port type.
				itf.truth, itf.truthKnown = s.portOnlyTruth(itf.port)
			}
		}
		if !itf.truthKnown {
			continue
		}
		if itf.transceiverPresent {
			p += itf.truth.PTrxIn
		}
		if itf.adminUp {
			p += itf.truth.PPort
		}
		if itf.OperUp() {
			p += itf.truth.PTrxUp
			r.trafficIfs = append(r.trafficIfs, itf)
		}
	}
	r.staticDC = p
	r.staticOK = true
}

// dcLoadLocked computes the true DC-side power demand from the hidden spec:
// the cached static configuration terms plus the per-step dynamic part
// (fan power follows the chassis temperature, load terms follow the
// offered traffic). Callers must hold r.mu.
func (r *Router) dcLoadLocked() units.Power {
	if !r.staticOK {
		//jouleslint:ignore hotpath -- static-term cache rebuild: runs only after a config event invalidates it, amortized across steps
		r.rebuildStaticLocked()
	}
	s := &r.spec
	p := r.staticDC
	p += s.FanBasePower + units.Power(s.FanTempCoeff*(r.internalTemp-25))
	for _, itf := range r.trafficIfs {
		if itf.bits > 0 || itf.packets > 0 {
			p += units.Power(itf.truth.EBit.Joules()*itf.bits.BitsPerSecond() +
				itf.truth.EPkt.Joules()*itf.packets.PacketsPerSecond())
			p += itf.truth.POffset
		}
	}
	return p
}

// WallPower returns the true AC power currently drawn from the outlet: the
// DC load split across the online PSUs, each converting at its own
// efficiency point, plus a small control-plane jitter. This is what an
// external power meter observes.
func (r *Router) WallPower() units.Power {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wallPowerLocked()
}

func (r *Router) wallPowerLocked() units.Power {
	dc := r.dcLoadLocked()
	// Zero-mean jitter models control-plane and environmental churn.
	if r.spec.PowerJitter > 0 {
		dc += units.Power(r.rng.NormFloat64() * r.spec.PowerJitter.Watts())
	}
	if dc < 0 {
		dc = 0
	}
	online := 0
	for _, p := range r.psus {
		if p.online {
			online++
		}
	}
	if online == 0 {
		return 0
	}
	share := units.Power(dc.Watts() / float64(online))
	var wall units.Power
	for _, p := range r.psus {
		if !p.online {
			p.lastIn, p.lastOut = 0, 0
			continue
		}
		in := p.inputFor(share)
		p.lastIn, p.lastOut = in, share
		wall += in
	}
	return wall
}

// Advance moves the simulation clock forward, accumulating interface
// counters from the offered loads and — when the spec enables thermal
// coupling — letting the chassis temperature approach its load-dependent
// equilibrium. It returns the new clock time.
func (r *Router) Advance(dt time.Duration) time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.advanceLocked(dt)
}

func (r *Router) advanceLocked(dt time.Duration) time.Time {
	sec := dt.Seconds()
	if sec < 0 {
		sec = 0
	}
	if tau := r.spec.ThermalTimeConstant.Seconds(); tau > 0 && sec > 0 {
		// Equilibrium: ambient plus the dissipated load heating the
		// chassis through its thermal resistance.
		target := r.temperature + r.spec.ThermalResistance*r.dcLoadLocked().Watts()
		alpha := 1 - math.Exp(-sec/tau)
		r.internalTemp += (target - r.internalTemp) * alpha
	}
	for _, itf := range r.interfaces {
		if !itf.OperUp() {
			continue
		}
		// Offered rates are bidirectional sums; split evenly for counters.
		octets := itf.bits.BitsPerSecond() / 8 * sec / 2
		pkts := itf.packets.PacketsPerSecond() * sec / 2
		itf.inOctets += uint64(octets)
		itf.outOctets += uint64(octets)
		itf.inPackets += uint64(pkts)
		itf.outPackets += uint64(pkts)
	}
	r.clock = r.clock.Add(dt)
	return r.clock
}

// Inventory returns the interfaces that currently carry a transceiver, in
// port order — the module inventory file the paper combines with power
// models in §6.2.
func (r *Router) Inventory() []InventoryEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []InventoryEntry
	for _, itf := range r.interfaces {
		if !itf.transceiverPresent {
			continue
		}
		out = append(out, InventoryEntry{
			Interface: itf.name,
			Profile:   itf.ProfileKey(),
			AdminUp:   itf.adminUp,
			OperUp:    itf.OperUp(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Interface < out[j].Interface })
	return out
}

// InventoryEntry is one row of a router's transceiver inventory.
type InventoryEntry struct {
	Interface string
	Profile   model.ProfileKey
	AdminUp   bool
	OperUp    bool
}
