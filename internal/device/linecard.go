package device

import (
	"fmt"
	"sort"

	"fantasticjoules/internal/units"
)

// Modular-chassis support: the paper's model targets fixed chassis and
// leaves pluggable linecards as future work (§4.3), suggesting a Plinecard
// term measured like Ptrx. This file implements that extension on the
// simulation side: slots, installable linecard types with hidden power
// draws, and the same observable surface (wall power) the methodology
// uses for everything else.

// LinecardType is the hidden ground truth for one linecard model.
type LinecardType struct {
	// Name identifies the card, e.g. "LC-48x10G".
	Name string
	// PowerDC is the card's DC draw once seated, before any port is
	// configured (ports on cards are out of scope, as in the paper).
	PowerDC units.Power
}

// InstallLinecard seats a card of the given type in a free slot. The spec
// must declare the chassis modular (Slots > 0) and know the card type.
func (r *Router) InstallLinecard(typeName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spec.Slots == 0 {
		return fmt.Errorf("device: %s is a fixed chassis", r.spec.Name)
	}
	var lt *LinecardType
	for i := range r.spec.Linecards {
		if r.spec.Linecards[i].Name == typeName {
			lt = &r.spec.Linecards[i]
		}
	}
	if lt == nil {
		return fmt.Errorf("device: %s does not support linecard %q", r.spec.Name, typeName)
	}
	if len(r.linecards) >= r.spec.Slots {
		return fmt.Errorf("device: all %d slots of %s are occupied", r.spec.Slots, r.name)
	}
	r.linecards = append(r.linecards, *lt)
	r.invalidateStaticLocked()
	return nil
}

// RemoveLinecard unseats one card of the given type.
func (r *Router) RemoveLinecard(typeName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.linecards {
		if r.linecards[i].Name == typeName {
			r.linecards = append(r.linecards[:i], r.linecards[i+1:]...)
			r.invalidateStaticLocked()
			return nil
		}
	}
	return fmt.Errorf("device: no %q linecard installed in %s", typeName, r.name)
}

// InstalledLinecards returns the installed card type names, sorted, with
// multiplicity.
func (r *Router) InstalledLinecards() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.linecards))
	for i, lc := range r.linecards {
		out[i] = lc.Name
	}
	sort.Strings(out)
	return out
}

// linecardLoad sums the installed cards' DC draw. Callers hold r.mu.
func (r *Router) linecardLoad() units.Power {
	var p units.Power
	for _, lc := range r.linecards {
		p += lc.PowerDC
	}
	return p
}
