package device

import (
	"errors"
	"math"
	"testing"
	"time"

	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/units"
)

var g = units.GigabitPerSecond

func dacKey(speed units.BitRate) model.ProfileKey {
	return model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: speed}
}

// flatSpec returns a deterministic spec with a lossless PSU and no jitter,
// so power assertions can be exact.
func flatSpec() ModelSpec {
	curve, _ := psu.NewCurve([]psu.CurvePoint{{Load: 0, Efficiency: 1}, {Load: 1, Efficiency: 1}})
	return ModelSpec{
		Name: "flat-router", NumPorts: 8, PortType: model.QSFP28,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			dacKey(100 * g): {
				Key:   dacKey(100 * g),
				PPort: 1, PTrxIn: 0.5, PTrxUp: 0.25,
				EBit: 10 * units.Picojoule, EPkt: 20 * units.Nanojoule, POffset: 0.1,
			},
		},
		PBaseDC: 100, FanBasePower: 10, FanTempCoeff: 2, ControlPlanePower: 5,
		PSUCount: 2, PSUCapacity: 1000, PSUCurve: curve,
		PSUSensor:        SensorAccurate,
		InitialOSVersion: "1.0",
	}
}

func mustRouter(t *testing.T, spec ModelSpec) *Router {
	t.Helper()
	r, err := New(spec, "r1", 42)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// upInterface plugs, admin-ups and links eth0 on r.
func upInterface(t *testing.T, r *Router, name string) {
	t.Helper()
	if err := r.PlugTransceiver(name, model.PassiveDAC, 100*g); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAdmin(name, true); err != nil {
		t.Fatal(err)
	}
	if err := r.SetLink(name, true); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidatesSpec(t *testing.T) {
	if _, err := New(ModelSpec{}, "x", 1); err == nil {
		t.Error("empty spec must be rejected")
	}
	bad := flatSpec()
	bad.PSUCount = 0
	if _, err := New(bad, "x", 1); err == nil {
		t.Error("zero PSUs must be rejected")
	}
}

func TestBasePower(t *testing.T) {
	r := mustRouter(t, flatSpec())
	// Lossless PSUs, T=25: wall = 100 + 10 + 5 = 115 W exactly.
	if got := r.WallPower(); math.Abs(got.Watts()-115) > 1e-9 {
		t.Errorf("base wall power = %v, want 115", got)
	}
}

func TestPowerStateLadder(t *testing.T) {
	r := mustRouter(t, flatSpec())
	base := r.WallPower().Watts()

	if err := r.PlugTransceiver("eth0", model.PassiveDAC, 100*g); err != nil {
		t.Fatal(err)
	}
	plugged := r.WallPower().Watts()
	if math.Abs(plugged-base-0.5) > 1e-9 {
		t.Errorf("plugging transceiver added %v W, want 0.5 (Ptrx,in)", plugged-base)
	}

	if err := r.SetAdmin("eth0", true); err != nil {
		t.Fatal(err)
	}
	adminUp := r.WallPower().Watts()
	if math.Abs(adminUp-plugged-1) > 1e-9 {
		t.Errorf("admin-up added %v W, want 1 (Pport)", adminUp-plugged)
	}

	if err := r.SetLink("eth0", true); err != nil {
		t.Fatal(err)
	}
	operUp := r.WallPower().Watts()
	if math.Abs(operUp-adminUp-0.25) > 1e-9 {
		t.Errorf("oper-up added %v W, want 0.25 (Ptrx,up)", operUp-adminUp)
	}
}

func TestDownDoesNotMeanOff(t *testing.T) {
	// §7: taking the port down keeps paying Ptrx,in while the transceiver
	// stays plugged in.
	r := mustRouter(t, flatSpec())
	base := r.WallPower().Watts()
	upInterface(t, r, "eth0")
	if err := r.SetAdmin("eth0", false); err != nil {
		t.Fatal(err)
	}
	down := r.WallPower().Watts()
	if math.Abs(down-base-0.5) > 1e-9 {
		t.Errorf("down interface with plugged transceiver draws %v W above base, want 0.5", down-base)
	}
	if err := r.UnplugTransceiver("eth0"); err != nil {
		t.Fatal(err)
	}
	if got := r.WallPower().Watts(); math.Abs(got-base) > 1e-9 {
		t.Errorf("after unplug, power = %v, want base %v", got, base)
	}
}

func TestTrafficPower(t *testing.T) {
	r := mustRouter(t, flatSpec())
	upInterface(t, r, "eth0")
	idle := r.WallPower().Watts()
	if err := r.SetTraffic("eth0", 100*g, 1e6); err != nil {
		t.Fatal(err)
	}
	loaded := r.WallPower().Watts()
	// Ebit·r + Epkt·p + Poffset = 1 + 0.02 + 0.1 = 1.12 W.
	if math.Abs(loaded-idle-1.12) > 1e-9 {
		t.Errorf("traffic added %v W, want 1.12", loaded-idle)
	}
}

func TestTrafficErrors(t *testing.T) {
	r := mustRouter(t, flatSpec())
	if err := r.SetTraffic("eth0", 1*g, 10); err == nil {
		t.Error("traffic on a down interface must error")
	}
	upInterface(t, r, "eth0")
	if err := r.SetTraffic("eth0", -1, 0); err == nil {
		t.Error("negative traffic must error")
	}
	if err := r.SetTraffic("eth0", 300*g, 0); err == nil {
		t.Error("traffic above 2x line rate must error")
	}
	if err := r.SetTraffic("nope", 1*g, 1); err == nil {
		t.Error("unknown interface must error")
	}
}

func TestUnsupportedTransceiver(t *testing.T) {
	r := mustRouter(t, flatSpec())
	if err := r.PlugTransceiver("eth0", model.LR4, 400*g); err == nil {
		t.Error("unsupported profile must be rejected")
	}
}

func TestAdminDownClearsTraffic(t *testing.T) {
	r := mustRouter(t, flatSpec())
	upInterface(t, r, "eth0")
	if err := r.SetTraffic("eth0", 10*g, 1000); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAdmin("eth0", false); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAdmin("eth0", true); err != nil {
		t.Fatal(err)
	}
	// Interface is up again but traffic must have been cleared.
	up := r.WallPower().Watts()
	r2 := mustRouter(t, flatSpec())
	upInterface(t, r2, "eth0")
	if math.Abs(up-r2.WallPower().Watts()) > 1e-9 {
		t.Errorf("traffic survived an admin bounce: %v", up)
	}
}

func TestTemperatureAndFans(t *testing.T) {
	r := mustRouter(t, flatSpec())
	base := r.WallPower().Watts()
	r.SetTemperature(35)
	hot := r.WallPower().Watts()
	if math.Abs(hot-base-20) > 1e-9 { // 2 W/°C × 10 °C
		t.Errorf("10°C rise added %v W, want 20", hot-base)
	}
}

func TestOSUpgradeFanRegression(t *testing.T) {
	spec := flatSpec()
	spec.OSFanRegression = map[string]units.Power{"2.0-bad": 45}
	r := mustRouter(t, spec)
	base := r.WallPower().Watts()
	r.UpgradeOS("2.0-bad")
	if got := r.WallPower().Watts(); math.Abs(got-base-45) > 1e-9 {
		t.Errorf("bad OS added %v W, want 45 (Fig. 8)", got-base)
	}
	if r.OSVersion() != "2.0-bad" {
		t.Error("OSVersion not updated")
	}
	r.UpgradeOS("2.1-fixed")
	if got := r.WallPower().Watts(); math.Abs(got-base) > 1e-9 {
		t.Errorf("fixed OS still draws %v W above base", got-base)
	}
}

func TestPSUConversionLoss(t *testing.T) {
	spec := flatSpec()
	spec.PSUCurve = psu.PFE600()
	r := mustRouter(t, spec)
	// DC load 115 W over two 1000 W PSUs → 57.5 W each ≈ 5.75% load; the
	// PFE600 is poor there, so wall must exceed DC clearly.
	wall := r.WallPower().Watts()
	if wall <= 115*1.05 {
		t.Errorf("wall power %v should show conversion losses above DC 115", wall)
	}
}

func TestSetPSUOnline(t *testing.T) {
	spec := flatSpec()
	spec.PSUCurve = psu.PFE600()
	r := mustRouter(t, spec)
	two := r.WallPower().Watts()
	if err := r.SetPSUOnline(1, false); err != nil {
		t.Fatal(err)
	}
	one := r.WallPower().Watts()
	// Single PSU runs at double load — a better point on the curve.
	if one >= two {
		t.Errorf("single PSU (%v) should beat two lightly-loaded PSUs (%v)", one, two)
	}
	if err := r.SetPSUOnline(0, false); err == nil {
		t.Error("taking the last PSU offline must error")
	}
	if err := r.SetPSUOnline(5, false); err == nil {
		t.Error("bad index must error")
	}
}

func TestAdvanceCounters(t *testing.T) {
	r := mustRouter(t, flatSpec())
	upInterface(t, r, "eth0")
	// 8 Gbps bidirectional (= 4 Gbps each way), 1000 pps for 10 s.
	if err := r.SetTraffic("eth0", 8*g, 1000); err != nil {
		t.Fatal(err)
	}
	r.Advance(10 * time.Second)
	c, err := r.CountersOf("eth0")
	if err != nil {
		t.Fatal(err)
	}
	wantOctets := uint64(8e9 / 8 / 2 * 10)
	if c.InOctets != wantOctets || c.OutOctets != wantOctets {
		t.Errorf("octets = %d/%d, want %d", c.InOctets, c.OutOctets, wantOctets)
	}
	if c.InPackets != 5000 || c.OutPackets != 5000 {
		t.Errorf("packets = %d/%d, want 5000", c.InPackets, c.OutPackets)
	}
	// Down interfaces accumulate nothing.
	before := r.Now()
	if err := r.SetLink("eth0", false); err != nil {
		t.Fatal(err)
	}
	r.Advance(10 * time.Second)
	c2, _ := r.CountersOf("eth0")
	if c2.InOctets != c.InOctets {
		t.Error("down interface accumulated octets")
	}
	if !r.Now().After(before) {
		t.Error("clock did not advance")
	}
}

func TestInventory(t *testing.T) {
	r := mustRouter(t, flatSpec())
	upInterface(t, r, "eth3")
	if err := r.PlugTransceiver("eth1", model.PassiveDAC, 100*g); err != nil {
		t.Fatal(err)
	}
	inv := r.Inventory()
	if len(inv) != 2 {
		t.Fatalf("inventory = %d entries, want 2", len(inv))
	}
	if inv[0].Interface != "eth1" || inv[1].Interface != "eth3" {
		t.Errorf("inventory order = %v", inv)
	}
	if inv[0].OperUp || !inv[1].OperUp {
		t.Errorf("oper flags wrong: %+v", inv)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() float64 {
		spec := flatSpec()
		spec.PowerJitter = 1
		spec.PSUEfficiencySpread = 0.05
		spec.PSUCurve = psu.PFE600()
		r := mustRouter(t, spec)
		var sum float64
		for i := 0; i < 10; i++ {
			sum += r.WallPower().Watts()
		}
		return sum
	}
	if build() != build() {
		t.Error("equal seeds must give identical simulations")
	}
}

func TestCatalogSpecsValid(t *testing.T) {
	for _, name := range CatalogNames() {
		spec, err := Spec(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New(spec, "r-"+name, 1); err != nil {
			t.Errorf("catalog spec %s unusable: %v", name, err)
		}
	}
	if _, err := Spec("no-such-router"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestCatalogCoversPaperRouters(t *testing.T) {
	want := []string{
		// Lab-modeled (Tables 2 and 6).
		"NCS-55A1-24H", "Nexus9336-FX2", "8201-32FH", "N540X-8Z16G-SYS-A",
		"Wedge100BF-32X", "Nexus93108TC-FX3P", "VSP-4900", "Catalyst3560",
		// Deployment-only (Table 1).
		"ASR-920-24SZ-M", "NCS-55A1-24Q6H-SS", "NCS-55A1-48Q6H",
		"ASR-9001", "N540-24Z8Q2C-M", "8201-24H8FH",
	}
	cat := Catalog()
	for _, name := range want {
		if _, ok := cat[name]; !ok {
			t.Errorf("catalog missing %s", name)
		}
	}
}

func TestInterfaceStateAccessor(t *testing.T) {
	r := mustRouter(t, flatSpec())
	upInterface(t, r, "eth0")
	present, admin, oper, key, err := r.InterfaceState("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if !present || !admin || !oper {
		t.Errorf("state = %v/%v/%v, want all true", present, admin, oper)
	}
	if key != dacKey(100*g) {
		t.Errorf("key = %v", key)
	}
	if _, _, _, _, err := r.InterfaceState("nope"); err == nil {
		t.Error("unknown interface must error")
	}
}

func TestInterfaceNames(t *testing.T) {
	r := mustRouter(t, flatSpec())
	names := r.InterfaceNames()
	if len(names) != 8 || names[0] != "eth0" || names[7] != "eth7" {
		t.Errorf("names = %v", names)
	}
}

func TestSensorAccurate(t *testing.T) {
	r := mustRouter(t, flatSpec())
	wall := r.WallPower().Watts()
	total, err := r.ReportedTotalPower()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total.Watts()-wall) > 5 {
		t.Errorf("accurate sensor total %v too far from wall %v", total, wall)
	}
}

func TestSensorOffset(t *testing.T) {
	spec := flatSpec()
	spec.PSUSensor = SensorOffset
	spec.PSUSensorOffset = 17
	r := mustRouter(t, spec)
	wall := r.WallPower().Watts()
	var sum float64
	n := 50
	for i := 0; i < n; i++ {
		total, err := r.ReportedTotalPower()
		if err != nil {
			t.Fatal(err)
		}
		sum += total.Watts()
	}
	if got := sum/float64(n) - wall; math.Abs(got-17) > 1 {
		t.Errorf("offset sensor error = %v, want ≈17", got)
	}
}

func TestSensorPseudoConstant(t *testing.T) {
	spec := flatSpec()
	spec.PSUSensor = SensorPseudoConstant
	r := mustRouter(t, spec)
	v1, err := r.ReportedPSUPower(0)
	if err != nil {
		t.Fatal(err)
	}
	// Small load changes must not move the report.
	upInterface(t, r, "eth0") // ±~1.75 W: below the snap threshold
	v2, _ := r.ReportedPSUPower(0)
	if v1 != v2 {
		t.Errorf("pseudo-constant sensor moved on a small change: %v -> %v", v1, v2)
	}
	// A large change must snap.
	r.SetTemperature(50) // +50 W via fans
	v3, _ := r.ReportedPSUPower(0)
	if v3 == v1 {
		t.Error("pseudo-constant sensor must re-snap on a large change")
	}
}

func TestSensorNone(t *testing.T) {
	spec := flatSpec()
	spec.PSUSensor = SensorNone
	r := mustRouter(t, spec)
	if _, err := r.ReportedPSUPower(0); !errors.Is(err, ErrNoPowerSensor) {
		t.Errorf("err = %v, want ErrNoPowerSensor", err)
	}
	if _, err := r.ReportedTotalPower(); !errors.Is(err, ErrNoPowerSensor) {
		t.Errorf("total err = %v, want ErrNoPowerSensor", err)
	}
}

func TestPowerCycleRebaselines(t *testing.T) {
	spec := flatSpec()
	spec.PSUSensor = SensorPseudoConstant
	r := mustRouter(t, spec)
	v1, _ := r.ReportedPSUPower(0)
	moved := false
	// A power cycle re-baselines with a random shift; with several tries at
	// least one must land on a different integer watt.
	for i := 0; i < 10 && !moved; i++ {
		if err := r.PowerCycle(0); err != nil {
			t.Fatal(err)
		}
		v2, _ := r.ReportedPSUPower(0)
		moved = v2 != v1
	}
	if !moved {
		t.Error("power cycle never moved the pseudo-constant baseline")
	}
	if err := r.PowerCycle(9); err == nil {
		t.Error("bad PSU index must error")
	}
}

func TestEnvSnapshot(t *testing.T) {
	spec := flatSpec()
	spec.PSUCurve = psu.PFE600()
	r := mustRouter(t, spec)
	snaps := r.EnvSnapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	for i, s := range snaps {
		if s.Capacity != 1000 {
			t.Errorf("psu %d capacity = %v", i, s.Capacity)
		}
		if s.Pin <= 0 || s.Pout <= 0 {
			t.Errorf("psu %d powers = %v/%v, want positive", i, s.Pin, s.Pout)
		}
		// Efficiency (capped) must be plausible.
		if e := s.Efficiency(); e < 0.5 {
			t.Errorf("psu %d efficiency = %v, implausible", i, e)
		}
	}
	// Offline PSUs report zero.
	if err := r.SetPSUOnline(1, false); err != nil {
		t.Fatal(err)
	}
	snaps = r.EnvSnapshot()
	if snaps[1].Pin != 0 || snaps[1].Pout != 0 {
		t.Errorf("offline PSU reported power: %+v", snaps[1])
	}
}

func TestSensorBehaviorString(t *testing.T) {
	if SensorAccurate.String() != "accurate" || SensorNone.String() != "none" {
		t.Error("behaviour names")
	}
	if SensorBehavior(42).String() != "SensorBehavior(42)" {
		t.Error("unknown behaviour formatting")
	}
}

func TestThermalCouplingDisabledByDefault(t *testing.T) {
	r := mustRouter(t, flatSpec())
	before := r.WallPower().Watts()
	r.Advance(24 * time.Hour)
	after := r.WallPower().Watts()
	if math.Abs(after-before) > 1e-9 {
		t.Errorf("power drifted without thermal coupling: %v -> %v", before, after)
	}
	r.SetTemperature(40)
	if got := r.InternalTemperature(); got != 40 {
		t.Errorf("uncoupled internal temp = %v, want ambient 40", got)
	}
}

func TestThermalCouplingWarmsUp(t *testing.T) {
	spec := flatSpec()
	spec.ThermalTimeConstant = 10 * time.Minute
	spec.ThermalResistance = 0.05 // °C per DC watt: 115 W base → +5.75 °C
	r := mustRouter(t, spec)
	cold := r.WallPower().Watts()

	// Warm-up: power rises as the chassis approaches equilibrium.
	var prev float64 = cold
	for i := 0; i < 6; i++ {
		r.Advance(10 * time.Minute)
		cur := r.WallPower().Watts()
		if cur < prev-1e-9 {
			t.Fatalf("power fell during warm-up: %v -> %v", prev, cur)
		}
		prev = cur
	}
	warm := prev
	// Equilibrium: ~115 dc + fan increase; fan adds 2 W/°C × ~6 °C ≈ 12 W
	// (plus the small feedback of fans heating the chassis further).
	if warm-cold < 8 || warm-cold > 20 {
		t.Errorf("warm-up added %v W, want ≈12", warm-cold)
	}
	// The internal temperature sits above ambient.
	if r.InternalTemperature() <= 25 {
		t.Errorf("internal temp = %v, want above ambient", r.InternalTemperature())
	}
	// Cooling: raising ambient and dropping it again converges back.
	r.SetTemperature(25)
	for i := 0; i < 12; i++ {
		r.Advance(10 * time.Minute)
	}
	settled := r.WallPower().Watts()
	if math.Abs(settled-warm) > 1 {
		t.Errorf("steady state drifted: %v vs %v", settled, warm)
	}
}
