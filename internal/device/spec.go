package device

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/units"
)

// SensorBehavior classifies how a router's PSUs report their own power —
// the paper finds this varies wildly between models (§6.2, Q2).
type SensorBehavior int

const (
	// SensorAccurate reports the true input power with small noise.
	SensorAccurate SensorBehavior = iota
	// SensorOffset reports the true shape with a constant offset — the
	// Fig. 4a behaviour ("precise but not accurate").
	SensorOffset
	// SensorPseudoConstant reports a stale held value with occasional
	// re-snaps, and shifts at power cycles — the Fig. 4b behaviour.
	SensorPseudoConstant
	// SensorNone means the model does not report PSU power at all — the
	// Fig. 4c router.
	SensorNone
)

// String names the behaviour.
func (s SensorBehavior) String() string {
	switch s {
	case SensorAccurate:
		return "accurate"
	case SensorOffset:
		return "offset"
	case SensorPseudoConstant:
		return "pseudo-constant"
	case SensorNone:
		return "none"
	}
	return fmt.Sprintf("SensorBehavior(%d)", int(s))
}

// ModelSpec is the hidden ground truth for one router hardware model: the
// physical parameters the simulation draws power from. The modeling
// methodology never reads a ModelSpec; it only measures routers built from
// one.
type ModelSpec struct {
	// Name is the hardware model, e.g. "8201-32FH".
	Name string

	// NumPorts is the number of physical ports; PortType their cage type.
	NumPorts int
	PortType model.PortType

	// Truth holds the true DC-side per-interface power terms by profile.
	Truth map[model.ProfileKey]model.InterfaceProfile

	// PBaseDC is the DC power of the chassis electronics with no ports
	// configured, excluding fans and control plane.
	PBaseDC units.Power
	// FanBasePower is fan power at 25 °C; FanTempCoeff adds W per °C above.
	FanBasePower units.Power
	FanTempCoeff float64
	// ControlPlanePower is the route-processor draw.
	ControlPlanePower units.Power
	// PowerJitter is the standard deviation of the zero-mean churn added
	// to every wall-power sample.
	PowerJitter units.Power

	// PSU configuration.
	PSUCount    int
	PSUCapacity units.Power
	PSUCurve    psu.Curve
	// PSUEfficiencyBias shifts every unit's curve (model-level quality);
	// PSUEfficiencySpread is the stddev of per-unit variation around it.
	PSUEfficiencyBias   float64
	PSUEfficiencySpread float64

	// PSUSensor selects the power-report behaviour; PSUSensorOffset is the
	// constant error applied by SensorOffset.
	PSUSensor       SensorBehavior
	PSUSensorOffset units.Power

	// OSFanRegression maps OS versions to extra fan draw (the Fig. 8
	// +45 W event).
	OSFanRegression  map[string]units.Power
	InitialOSVersion string

	// Slots and Linecards describe a modular chassis (the §4.3 Plinecard
	// extension); zero Slots means a fixed chassis.
	Slots     int
	Linecards []LinecardType

	// ThermalTimeConstant and ThermalResistance optionally couple the
	// chassis temperature to its own dissipation: the internal
	// temperature approaches ambient + R·Pdc with the given time
	// constant, and the fans react to it (a §4.3 omitted factor the
	// model folds into Pbase). Zero time constant disables coupling.
	ThermalTimeConstant time.Duration
	ThermalResistance   float64 // °C per DC watt

	// Datasheet values, for the §3 analyses. Zero means "not stated".
	DatasheetTypical   units.Power
	DatasheetMax       units.Power
	DatasheetBandwidth units.BitRate
	ReleaseYear        int
}

func (s ModelSpec) validate() error {
	var errs []error
	if s.Name == "" {
		errs = append(errs, errors.New("spec needs a name"))
	}
	if s.NumPorts <= 0 {
		errs = append(errs, fmt.Errorf("spec %s: non-positive port count %d", s.Name, s.NumPorts))
	}
	if s.PSUCount <= 0 {
		errs = append(errs, fmt.Errorf("spec %s: needs at least one PSU", s.Name))
	}
	if s.PSUCapacity <= 0 {
		errs = append(errs, fmt.Errorf("spec %s: non-positive PSU capacity", s.Name))
	}
	if s.PBaseDC < 0 {
		errs = append(errs, fmt.Errorf("spec %s: negative base power", s.Name))
	}
	if len(s.Truth) == 0 {
		errs = append(errs, fmt.Errorf("spec %s: no interface truth profiles", s.Name))
	}
	return errors.Join(errs...)
}

// portOnlyTruth returns a profile whose PPort applies when a bare port (no
// transceiver) is admin-up: the first truth profile matching the port type.
func (s ModelSpec) portOnlyTruth(port model.PortType) (model.InterfaceProfile, bool) {
	var keys []model.ProfileKey
	for k := range s.Truth {
		if k.Port == port {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return model.InterfaceProfile{}, false
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	p := s.Truth[keys[0]]
	// Only the port cost applies without a module.
	return model.InterfaceProfile{Key: p.Key, PPort: p.PPort}, true
}

// truthProfile builds a DC-side truth profile by scaling wall-referenced
// published terms with the given conversion factor (wall terms include PSU
// loss; DC terms must not).
func truthProfile(port model.PortType, trx model.TransceiverType, speed units.BitRate,
	pport, ptrxin, ptrxup, ebitPJ, epktNJ, poffset, dcScale float64) model.InterfaceProfile {
	return model.InterfaceProfile{
		Key:     model.ProfileKey{Port: port, Transceiver: trx, Speed: speed},
		PPort:   units.Power(pport * dcScale),
		PTrxIn:  units.Power(ptrxin * dcScale),
		PTrxUp:  units.Power(ptrxup * dcScale),
		EBit:    units.Energy(ebitPJ*dcScale) * units.Picojoule,
		EPkt:    units.Energy(epktNJ*dcScale) * units.Nanojoule,
		POffset: units.Power(poffset * dcScale),
	}
}

// Catalog returns the hidden hardware specs of every router model in the
// simulated fleet: the eight lab-modeled routers of Tables 2 and 6 plus the
// deployment-only models of Table 1. Specs are freshly built on each call;
// mutations do not leak.
func Catalog() map[string]ModelSpec {
	g := units.GigabitPerSecond
	curve := psu.PFE600()
	specs := map[string]ModelSpec{}

	// dcScale converts the paper's wall-referenced terms to DC-side truth
	// at the typical ~92 % lab conversion efficiency.
	const dcScale = 0.92

	// --- Lab routers (Tables 2 and 6) ---

	specs["NCS-55A1-24H"] = ModelSpec{
		Name: "NCS-55A1-24H", NumPorts: 24, PortType: model.QSFP28,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}: truthProfile(model.QSFP28, model.PassiveDAC, 100*g, 0.32, 0.02, 0.19, 22, 58, 0.37, dcScale),
			{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 50 * g}:  truthProfile(model.QSFP28, model.PassiveDAC, 50*g, 0.18, 0.02, 0.16, 21, 57, 0.34, dcScale),
			{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 25 * g}:  truthProfile(model.QSFP28, model.PassiveDAC, 25*g, 0.10, 0.02, 0.08, 21, 55, 0.21, dcScale),
			{Port: model.QSFP28, Transceiver: model.LR4, Speed: 100 * g}:        truthProfile(model.QSFP28, model.LR4, 100*g, 0.32, 4.1, 0.4, 22, 58, 0.37, dcScale),
		},
		PBaseDC: 225, FanBasePower: 16, FanTempCoeff: 1.2, ControlPlanePower: 10.4,
		PowerJitter: 0.4,
		PSUCount:    2, PSUCapacity: 1100, PSUCurve: curve,
		PSUEfficiencyBias: -0.01, PSUEfficiencySpread: 0.006,
		PSUSensor:        SensorPseudoConstant,
		DatasheetTypical: 600, DatasheetMax: 1000, DatasheetBandwidth: 2.4 * units.TerabitPerSecond,
		ReleaseYear: 2017, InitialOSVersion: "7.3.2",
	}

	specs["Nexus9336-FX2"] = ModelSpec{
		Name: "Nexus9336-FX2", NumPorts: 36, PortType: model.QSFP28,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.QSFP28, Transceiver: model.LR, Speed: 100 * g}:         truthProfile(model.QSFP28, model.LR, 100*g, 1.9, 2.79, -0.06, 8, 24, -0.43, dcScale),
			{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}: truthProfile(model.QSFP28, model.PassiveDAC, 100*g, 1.13, 0.09, -0.02, 8, 26, 0.07, dcScale),
		},
		PBaseDC: 238, FanBasePower: 15, FanTempCoeff: 1.0, ControlPlanePower: 9.2,
		PowerJitter: 0.4,
		PSUCount:    2, PSUCapacity: 1100, PSUCurve: curve,
		PSUEfficiencyBias: -0.02, PSUEfficiencySpread: 0.02,
		PSUSensor:        SensorAccurate,
		DatasheetTypical: 429, DatasheetMax: 743, DatasheetBandwidth: 7.2 * units.TerabitPerSecond,
		ReleaseYear: 2018, InitialOSVersion: "9.3.5",
	}

	specs["8201-32FH"] = ModelSpec{
		Name: "8201-32FH", NumPorts: 32, PortType: model.QSFP,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.QSFP, Transceiver: model.PassiveDAC, Speed: 100 * g}: truthProfile(model.QSFP, model.PassiveDAC, 100*g, 0.94, 0.35, 0.21, 3, 13, -0.04, dcScale),
			{Port: model.QSFP, Transceiver: model.FR4, Speed: 400 * g}:        truthProfile(model.QSFP, model.FR4, 400*g, 1.0, 11.0, 1.0, 3, 13, -0.04, dcScale),
		},
		PBaseDC: 180, FanBasePower: 14, FanTempCoeff: 1.5, ControlPlanePower: 6.8,
		PowerJitter: 0.25,
		PSUCount:    2, PSUCapacity: 2000, PSUCurve: curve,
		// Fig. 6c: the 8201-32FH PSUs are 76 % efficient or worse at their
		// ~9 % load points.
		PSUEfficiencyBias: -0.12, PSUEfficiencySpread: 0.012,
		PSUSensor: SensorOffset, PSUSensorOffset: 17,
		OSFanRegression:  map[string]units.Power{"7.11.1": 34},
		InitialOSVersion: "7.9.2",
		DatasheetTypical: 288, DatasheetMax: 1150, DatasheetBandwidth: 12.8 * units.TerabitPerSecond,
		ReleaseYear: 2021,
	}

	specs["N540X-8Z16G-SYS-A"] = ModelSpec{
		Name: "N540X-8Z16G-SYS-A", NumPorts: 24, PortType: model.SFP,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.SFP, Transceiver: model.BaseT, Speed: 1 * g}: truthProfile(model.SFP, model.BaseT, 1*g, 0.0, 3.41, 0.0, 37, 10, 0.01, dcScale),
			{Port: model.SFP, Transceiver: model.LR, Speed: 10 * g}:   truthProfile(model.SFP, model.LR, 10*g, 0.2, 0.9, 0.1, 30, 15, 0.02, dcScale),
		},
		PBaseDC: 22, FanBasePower: 3, FanTempCoeff: 0.3, ControlPlanePower: 3.4,
		PowerJitter: 0.08,
		PSUCount:    2, PSUCapacity: 250, PSUCurve: curve,
		PSUEfficiencyBias: -0.03, PSUEfficiencySpread: 0.02,
		PSUSensor:        SensorNone,
		DatasheetTypical: 0, DatasheetMax: 150, DatasheetBandwidth: 180 * g,
		ReleaseYear: 2019, InitialOSVersion: "7.4.1",
	}

	specs["Wedge100BF-32X"] = ModelSpec{
		Name: "Wedge100BF-32X", NumPorts: 32, PortType: model.QSFP28,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}: truthProfile(model.QSFP28, model.PassiveDAC, 100*g, 0.88, 0, 0.69, 1.7, 7.2, 0, dcScale),
			{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 50 * g}:  truthProfile(model.QSFP28, model.PassiveDAC, 50*g, 0.21, 0, 0.31, 2.5, 5.6, 0.05, dcScale),
			{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 25 * g}:  truthProfile(model.QSFP28, model.PassiveDAC, 25*g, 0.21, 0, 0.1, 2.7, 4.7, 0.06, dcScale),
		},
		PBaseDC: 82, FanBasePower: 9, FanTempCoeff: 0.8, ControlPlanePower: 8.4,
		PowerJitter: 0.3,
		PSUCount:    2, PSUCapacity: 600, PSUCurve: curve,
		PSUEfficiencyBias: 0.0, PSUEfficiencySpread: 0.01,
		PSUSensor:        SensorAccurate,
		DatasheetTypical: 210, DatasheetMax: 480, DatasheetBandwidth: 3.2 * units.TerabitPerSecond,
		ReleaseYear: 2017, InitialOSVersion: "sonic-4.1",
	}

	specs["Nexus93108TC-FX3P"] = ModelSpec{
		Name: "Nexus93108TC-FX3P", NumPorts: 54, PortType: model.RJ45,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.RJ45, Transceiver: model.BaseT, Speed: 10 * g}:         truthProfile(model.RJ45, model.BaseT, 10*g, 2.06, 0.11, 0, 6.7, 16.9, 0.03, dcScale),
			{Port: model.RJ45, Transceiver: model.BaseT, Speed: 1 * g}:          truthProfile(model.RJ45, model.BaseT, 1*g, 0.93, 0.11, 0, 33.8, 18.2, 0.03, dcScale),
			{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}: truthProfile(model.QSFP28, model.PassiveDAC, 100*g, 0.17, 0.11, 0.23, 5.4, 21.2, 0, dcScale),
			{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 40 * g}:  truthProfile(model.QSFP28, model.PassiveDAC, 40*g, 0.07, 0.11, 0.16, 6.5, 17.4, 0.03, dcScale),
		},
		PBaseDC: 115, FanBasePower: 10, FanTempCoeff: 0.7, ControlPlanePower: 10.2,
		PowerJitter: 0.3,
		PSUCount:    2, PSUCapacity: 1100, PSUCurve: curve,
		PSUEfficiencyBias: -0.02, PSUEfficiencySpread: 0.02,
		PSUSensor:        SensorAccurate,
		DatasheetTypical: 233, DatasheetMax: 572, DatasheetBandwidth: 2.16 * units.TerabitPerSecond,
		ReleaseYear: 2020, InitialOSVersion: "10.2.3",
	}

	specs["VSP-4900"] = ModelSpec{
		Name: "VSP-4900", NumPorts: 48, PortType: model.SFPP,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.SFPP, Transceiver: model.BaseT, Speed: 10 * g}: truthProfile(model.SFPP, model.BaseT, 10*g, 0.08, 0.06, 0, 25.6, 26.5, 0.04, dcScale),
			{Port: model.SFPP, Transceiver: model.LR, Speed: 10 * g}:    truthProfile(model.SFPP, model.LR, 10*g, 0.08, 0.95, 0.05, 25.6, 26.5, 0.04, dcScale),
		},
		PBaseDC: 4.1, FanBasePower: 1.5, FanTempCoeff: 0.2, ControlPlanePower: 1.9,
		PowerJitter: 0.05,
		PSUCount:    2, PSUCapacity: 250, PSUCurve: curve,
		PSUEfficiencyBias: -0.02, PSUEfficiencySpread: 0.015,
		PSUSensor:        SensorAccurate,
		DatasheetTypical: 120, DatasheetMax: 260, DatasheetBandwidth: 680 * g,
		ReleaseYear: 2019, InitialOSVersion: "8.10",
	}

	specs["Catalyst3560"] = ModelSpec{
		Name: "Catalyst3560", NumPorts: 48, PortType: model.RJ45,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.RJ45, Transceiver: model.BaseT, Speed: 0.1 * g}: truthProfile(model.RJ45, model.BaseT, 0.1*g, 0.21, 0, 0, 15.7, 193.1, 0.01, dcScale),
		},
		PBaseDC: 29, FanBasePower: 4, FanTempCoeff: 0.3, ControlPlanePower: 3.8,
		PowerJitter: 0.1,
		PSUCount:    1, PSUCapacity: 250, PSUCurve: curve,
		PSUEfficiencyBias: -0.08, PSUEfficiencySpread: 0.02,
		PSUSensor:        SensorNone,
		DatasheetTypical: 0, DatasheetMax: 110,
		ReleaseYear: 2005, InitialOSVersion: "12.2",
	}

	// --- Deployment-only routers (Table 1) ---
	// No lab models exist for these; their truth profiles reuse the closest
	// lab-modeled sibling, and the base power is calibrated so the deployed
	// median wall power lands near the Table 1 "Measured" column.

	specs["ASR-920-24SZ-M"] = ModelSpec{
		Name: "ASR-920-24SZ-M", NumPorts: 28, PortType: model.SFPP,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.SFPP, Transceiver: model.LR, Speed: 10 * g}:         truthProfile(model.SFPP, model.LR, 10*g, 0.55, 0.95, 0.05, 25.6, 26.5, 0.04, dcScale),
			{Port: model.SFPP, Transceiver: model.BaseT, Speed: 1 * g}:       truthProfile(model.SFPP, model.BaseT, 1*g, 0.3, 0.5, 0.02, 33.8, 18.2, 0.03, dcScale),
			{Port: model.SFPP, Transceiver: model.PassiveDAC, Speed: 10 * g}: truthProfile(model.SFPP, model.PassiveDAC, 10*g, 0.55, 0.15, 0.02, 25.6, 26.5, 0.04, dcScale),
		},
		PBaseDC: 32, FanBasePower: 5, FanTempCoeff: 0.4, ControlPlanePower: 5.2,
		PowerJitter: 0.15,
		PSUCount:    2, PSUCapacity: 250, PSUCurve: curve,
		// Fig. 6d: same-model PSUs spanning the entire efficiency range.
		PSUEfficiencyBias: -0.08, PSUEfficiencySpread: 0.10,
		PSUSensor:        SensorAccurate,
		DatasheetTypical: 110, DatasheetMax: 250, DatasheetBandwidth: 128 * g,
		ReleaseYear: 2015, InitialOSVersion: "16.12",
	}

	specs["NCS-55A1-24Q6H-SS"] = ModelSpec{
		Name: "NCS-55A1-24Q6H-SS", NumPorts: 30, PortType: model.QSFP28,
		Truth:   specs["NCS-55A1-24H"].Truth,
		PBaseDC: 167, FanBasePower: 13, FanTempCoeff: 1.0, ControlPlanePower: 9.6,
		PowerJitter: 0.4,
		PSUCount:    2, PSUCapacity: 1100, PSUCurve: curve,
		PSUEfficiencyBias: -0.02, PSUEfficiencySpread: 0.02,
		PSUSensor:        SensorAccurate,
		DatasheetTypical: 400, DatasheetMax: 700, DatasheetBandwidth: 3.6 * units.TerabitPerSecond,
		ReleaseYear: 2018, InitialOSVersion: "7.3.2",
	}

	specs["NCS-55A1-48Q6H"] = ModelSpec{
		Name: "NCS-55A1-48Q6H", NumPorts: 54, PortType: model.QSFP28,
		Truth:   specs["NCS-55A1-24H"].Truth,
		PBaseDC: 213, FanBasePower: 15, FanTempCoeff: 1.1, ControlPlanePower: 10.5,
		PowerJitter: 0.4,
		PSUCount:    2, PSUCapacity: 1100, PSUCurve: curve,
		PSUEfficiencyBias: -0.02, PSUEfficiencySpread: 0.02,
		PSUSensor:        SensorAccurate,
		DatasheetTypical: 460, DatasheetMax: 800, DatasheetBandwidth: 6 * units.TerabitPerSecond,
		ReleaseYear: 2018, InitialOSVersion: "7.3.2",
	}

	specs["ASR-9001"] = ModelSpec{
		Name: "ASR-9001", NumPorts: 20, PortType: model.SFPP,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.SFPP, Transceiver: model.LR, Speed: 10 * g}:         truthProfile(model.SFPP, model.LR, 10*g, 0.55, 0.95, 0.05, 25.6, 26.5, 0.04, dcScale),
			{Port: model.SFPP, Transceiver: model.PassiveDAC, Speed: 10 * g}: truthProfile(model.SFPP, model.PassiveDAC, 10*g, 0.55, 0.15, 0.02, 25.6, 26.5, 0.04, dcScale),
		},
		PBaseDC: 243, FanBasePower: 18, FanTempCoeff: 1.4, ControlPlanePower: 16.4,
		PowerJitter: 0.5,
		PSUCount:    2, PSUCapacity: 750, PSUCurve: curve,
		PSUEfficiencyBias: -0.05, PSUEfficiencySpread: 0.03,
		PSUSensor:        SensorAccurate,
		DatasheetTypical: 425, DatasheetMax: 750, DatasheetBandwidth: 120 * g,
		ReleaseYear: 2012, InitialOSVersion: "6.7.3",
	}

	specs["N540-24Z8Q2C-M"] = ModelSpec{
		Name: "N540-24Z8Q2C-M", NumPorts: 34, PortType: model.SFPP,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.SFPP, Transceiver: model.LR, Speed: 10 * g}:         truthProfile(model.SFPP, model.LR, 10*g, 0.4, 0.95, 0.05, 25.6, 26.5, 0.04, dcScale),
			{Port: model.SFPP, Transceiver: model.PassiveDAC, Speed: 25 * g}: truthProfile(model.SFPP, model.PassiveDAC, 25*g, 0.3, 0.15, 0.05, 21, 55, 0.21, dcScale),
		},
		PBaseDC: 111, FanBasePower: 8, FanTempCoeff: 0.6, ControlPlanePower: 8.4,
		PowerJitter: 0.3,
		PSUCount:    2, PSUCapacity: 400, PSUCurve: curve,
		PSUEfficiencyBias: -0.03, PSUEfficiencySpread: 0.02,
		PSUSensor:        SensorAccurate,
		DatasheetTypical: 200, DatasheetMax: 350, DatasheetBandwidth: 440 * g,
		ReleaseYear: 2019, InitialOSVersion: "7.1.2",
	}

	// --- Modular chassis (the §4.3 Plinecard extension) ---
	// The paper's model targets fixed chassis; this entry exercises the
	// proposed extension: a line-card chassis whose cards are measured
	// like transceivers.
	specs["ASR-9910"] = ModelSpec{
		Name: "ASR-9910", NumPorts: 8, PortType: model.SFPP,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			{Port: model.SFPP, Transceiver: model.LR, Speed: 10 * g}: truthProfile(model.SFPP, model.LR, 10*g, 0.55, 0.95, 0.05, 25.6, 26.5, 0.04, dcScale),
		},
		PBaseDC: 610, FanBasePower: 120, FanTempCoeff: 4.0, ControlPlanePower: 85,
		PowerJitter: 1.2,
		PSUCount:    4, PSUCapacity: 3000, PSUCurve: curve,
		PSUEfficiencyBias: -0.03, PSUEfficiencySpread: 0.02,
		PSUSensor: SensorAccurate,
		Slots:     8,
		Linecards: []LinecardType{
			{Name: "A99-48X10GE", PowerDC: 420},
			{Name: "A99-8X100GE", PowerDC: 560},
		},
		DatasheetTypical: 2800, DatasheetMax: 6000, DatasheetBandwidth: 6.4 * units.TerabitPerSecond,
		ReleaseYear: 2016, InitialOSVersion: "7.3.2",
	}

	specs["8201-24H8FH"] = ModelSpec{
		Name: "8201-24H8FH", NumPorts: 32, PortType: model.QSFP,
		Truth:   specs["8201-32FH"].Truth,
		PBaseDC: 148, FanBasePower: 12, FanTempCoeff: 1.3, ControlPlanePower: 6.2,
		PowerJitter: 0.4,
		PSUCount:    2, PSUCapacity: 2000, PSUCurve: curve,
		PSUEfficiencyBias: -0.10, PSUEfficiencySpread: 0.015,
		PSUSensor: SensorOffset, PSUSensorOffset: 15,
		DatasheetTypical: 205, DatasheetMax: 960, DatasheetBandwidth: 5.6 * units.TerabitPerSecond,
		ReleaseYear: 2021, InitialOSVersion: "7.9.2",
	}

	return specs
}

// Spec returns the catalog spec for the named router model.
func Spec(name string) (ModelSpec, error) {
	s, ok := Catalog()[name]
	if !ok {
		return ModelSpec{}, fmt.Errorf("device: no spec for %q (known: %v)", name, CatalogNames())
	}
	return s, nil
}

// CatalogNames lists the hardware models in the catalog, sorted.
func CatalogNames() []string {
	c := Catalog()
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
