package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearRegressionExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %v, want slope 2 intercept 1", fit)
	}
	if fit.R2 != 1 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if fit.Eval(10) != 21 {
		t.Errorf("Eval(10) = %v, want 21", fit.Eval(10))
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 500)
	y := make([]float64, 500)
	for i := range x {
		x[i] = float64(i)
		y[i] = 0.5*x[i] + 10 + rng.NormFloat64()*0.1
	}
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.5) > 0.01 {
		t.Errorf("slope = %v, want ≈0.5", fit.Slope)
	}
	if math.Abs(fit.Intercept-10) > 0.1 {
		t.Errorf("intercept = %v, want ≈10", fit.Intercept)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
	if fit.ResidualStdDev < 0.05 || fit.ResidualStdDev > 0.2 {
		t.Errorf("ResidualStdDev = %v, want ≈0.1", fit.ResidualStdDev)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must error")
	}
	if _, err := LinearRegression([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("identical x values must error")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths must error")
	}
}

func TestLinearRegressionConstantY(t *testing.T) {
	fit, err := LinearRegression([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 5 {
		t.Errorf("fit = %+v, want slope 0 intercept 5", fit)
	}
	if fit.R2 != 1 {
		t.Errorf("R2 for perfectly reproduced constant = %v, want 1", fit.R2)
	}
}

func TestWeightedLinearRegression(t *testing.T) {
	// Outlier with zero weight should not perturb the fit.
	x := []float64{0, 1, 2, 3, 100}
	y := []float64{1, 3, 5, 7, -1000}
	w := []float64{1, 1, 1, 1, 0}
	fit, err := WeightedLinearRegression(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-1) > 1e-9 {
		t.Errorf("fit = %v, want slope 2 intercept 1", fit)
	}
	if _, err := WeightedLinearRegression(x, y, []float64{1, 1, 1, 1, -1}); err == nil {
		t.Error("negative weight must error")
	}
}

func TestWeightedMatchesUnweighted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		w := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = 3*x[i] - 7 + rng.NormFloat64()
			w[i] = 1
		}
		a, err1 := LinearRegression(x, y)
		b, err2 := WeightedLinearRegression(x, y, w)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return math.Abs(a.Slope-b.Slope) < 1e-9 && math.Abs(a.Intercept-b.Intercept) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tt := range tests {
		if got := Median(tt.in); got != tt.want {
			t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q0.25 = %v, want 2", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("q0.5 = %v, want 3", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of single value must be 0")
	}
	if Mean(nil) != 0 {
		t.Error("Mean of empty must be 0")
	}
}

func TestErrorsMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	obs := []float64{2, 2, 5}
	mae, err := MeanAbsoluteError(pred, obs)
	if err != nil {
		t.Fatal(err)
	}
	if mae != 1 {
		t.Errorf("MAE = %v, want 1", mae)
	}
	rmse, err := RootMeanSquareError(pred, obs)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((1 + 0 + 4) / 3.0)
	if math.Abs(rmse-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", rmse, want)
	}
	if _, err := MeanAbsoluteError(pred, obs[:2]); err == nil {
		t.Error("mismatched lengths must error")
	}
	if _, err := RootMeanSquareError(nil, nil); err == nil {
		t.Error("empty must error")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if c, _ := PearsonCorrelation(x, []float64{2, 4, 6, 8}); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %v, want 1", c)
	}
	if c, _ := PearsonCorrelation(x, []float64{8, 6, 4, 2}); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %v, want -1", c)
	}
	if c, _ := PearsonCorrelation(x, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("constant series correlation = %v, want 0", c)
	}
	if _, err := PearsonCorrelation(x, x[:2]); err == nil {
		t.Error("mismatched lengths must error")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Window 1 returns a copy.
	cp := MovingAverage(xs, 1)
	cp[0] = 99
	if xs[0] == 99 {
		t.Error("MovingAverage(_,1) must not alias its input")
	}
}

func TestMovingAveragePreservesMeanOfConstant(t *testing.T) {
	f := func(v float64, n, w uint8) bool {
		if n == 0 {
			return true
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		// Keep magnitudes bounded so the internal prefix sums stay finite.
		v = math.Mod(v, 1e12)
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = v
		}
		out := MovingAverage(xs, int(w))
		for _, o := range out {
			if math.IsNaN(v) {
				return true
			}
			if math.Abs(o-v) > 1e-9*math.Max(1, math.Abs(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStandardErrors(t *testing.T) {
	// Known dataset: y = 2x + 1 + noise with fixed residuals.
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1.1, 2.9, 5.1, 6.9, 9.1}
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.SlopeStderr <= 0 || fit.InterceptStderr <= 0 {
		t.Fatalf("stderr = %v / %v, want positive", fit.SlopeStderr, fit.InterceptStderr)
	}
	// The true slope 2 must lie inside the 95% CI.
	if math.Abs(fit.Slope-2) > fit.SlopeCI95() {
		t.Errorf("true slope outside CI: %v ± %v", fit.Slope, fit.SlopeCI95())
	}
	if math.Abs(fit.Intercept-1) > fit.InterceptCI95() {
		t.Errorf("true intercept outside CI: %v ± %v", fit.Intercept, fit.InterceptCI95())
	}
}

func TestStandardErrorsShrinkWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	build := func(n int) LinearFit {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = 3*xs[i] + rng.NormFloat64()
		}
		fit, err := LinearRegression(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		return fit
	}
	small, large := build(10), build(1000)
	if large.SlopeStderr >= small.SlopeStderr {
		t.Errorf("stderr must shrink with n: %v (n=10) vs %v (n=1000)",
			small.SlopeStderr, large.SlopeStderr)
	}
}

func TestStandardErrorCoverageProperty(t *testing.T) {
	// Frequentist sanity: across many noisy fits, the true slope lands in
	// the 95% CI roughly 95% of the time (loose band: ≥85%).
	rng := rand.New(rand.NewSource(11))
	hits, trials := 0, 300
	for i := 0; i < trials; i++ {
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		for j := range xs {
			xs[j] = float64(j)
			ys[j] = 5*xs[j] - 2 + rng.NormFloat64()*3
		}
		fit, err := LinearRegression(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Slope-5) <= fit.SlopeCI95() {
			hits++
		}
	}
	if rate := float64(hits) / float64(trials); rate < 0.85 || rate > 1.0 {
		t.Errorf("CI coverage = %.2f, want ≈0.95", rate)
	}
}

func TestTwoPointFitHasNoStderr(t *testing.T) {
	fit, err := LinearRegression([]float64{0, 1}, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if fit.SlopeStderr != 0 || fit.SlopeCI95() != 0 {
		t.Errorf("n=2 stderr = %v, want 0 (undefined)", fit.SlopeStderr)
	}
}
