// Package stats implements the statistical machinery the power-modeling
// methodology relies on: ordinary least-squares linear regression, robust
// summaries (median, quantiles), and residual metrics.
//
// The paper (§5) derives every power-model parameter from linear
// regressions: P_port from a regression over the number of active port
// pairs, the traffic slope α_L from a regression over bit rate, and
// (E_bit, E_pkt) from a second-level regression over packet size. This
// package provides those primitives with the small-sample care they need
// (exact medians, no hidden normalization).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator is given fewer points
// than its degrees of freedom require.
var ErrInsufficientData = errors.New("stats: insufficient data")

// LinearFit is the result of an ordinary least-squares fit y = Slope*x +
// Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit; 1 means the line
	// explains all variance. For a perfectly constant y it is defined as 1
	// when the fit is exact and 0 otherwise.
	R2 float64
	// N is the number of points used.
	N int
	// ResidualStdDev is the standard deviation of the fit residuals
	// (denominator N-2, the unbiased estimate).
	ResidualStdDev float64
	// SlopeStderr and InterceptStderr are the standard errors of the
	// estimated coefficients (0 when N ≤ 2, where they are undefined).
	SlopeStderr     float64
	InterceptStderr float64
}

// SlopeCI95 returns the half-width of the slope's 95 % confidence
// interval (Student-t with N−2 degrees of freedom).
func (f LinearFit) SlopeCI95() float64 {
	return tQuantile975(f.N-2) * f.SlopeStderr
}

// InterceptCI95 returns the half-width of the intercept's 95 % confidence
// interval.
func (f LinearFit) InterceptCI95() float64 {
	return tQuantile975(f.N-2) * f.InterceptStderr
}

// tQuantile975 returns the 97.5 % quantile of Student's t distribution
// for the given degrees of freedom (the normal 1.96 beyond the table).
func tQuantile975(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
		2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
		2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Eval evaluates the fitted line at x.
func (f LinearFit) Eval(x float64) float64 { return f.Slope*x + f.Intercept }

// String renders the fit in a compact human-readable form.
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.6g*x + %.6g (R²=%.4f, n=%d)", f.Slope, f.Intercept, f.R2, f.N)
}

// LinearRegression fits y = a*x + b by ordinary least squares. It requires
// at least two points with distinct x values.
func LinearRegression(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: all x values identical: %w", ErrInsufficientData)
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	var ssRes float64
	for i := 0; i < n; i++ {
		r := y[i] - (slope*x[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if syy > 0 {
		r2 = 1 - ssRes/syy
	} else if ssRes > 0 {
		r2 = 0
	}
	var resStd, slopeSE, interceptSE float64
	if n > 2 {
		resStd = math.Sqrt(ssRes / float64(n-2))
		slopeSE = resStd / math.Sqrt(sxx)
		interceptSE = resStd * math.Sqrt(1/float64(n)+mx*mx/sxx)
	}
	return LinearFit{
		Slope: slope, Intercept: intercept, R2: r2, N: n,
		ResidualStdDev: resStd, SlopeStderr: slopeSE, InterceptStderr: interceptSE,
	}, nil
}

// WeightedLinearRegression fits y = a*x + b minimizing the weighted sum of
// squared residuals. Weights must be non-negative; zero-weight points are
// ignored.
func WeightedLinearRegression(x, y, w []float64) (LinearFit, error) {
	if len(x) != len(y) || len(x) != len(w) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths")
	}
	var sw, swx, swy float64
	n := 0
	for i := range x {
		if w[i] < 0 {
			return LinearFit{}, fmt.Errorf("stats: negative weight %v at index %d", w[i], i)
		}
		if w[i] == 0 {
			continue
		}
		n++
		sw += w[i]
		swx += w[i] * x[i]
		swy += w[i] * y[i]
	}
	if n < 2 || sw == 0 {
		return LinearFit{}, ErrInsufficientData
	}
	mx, my := swx/sw, swy/sw
	var sxx, sxy float64
	for i := range x {
		if w[i] == 0 {
			continue
		}
		dx, dy := x[i]-mx, y[i]-my
		sxx += w[i] * dx * dx
		sxy += w[i] * dx * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: all weighted x values identical: %w", ErrInsufficientData)
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	var ssRes, ssTot float64
	for i := range x {
		if w[i] == 0 {
			continue
		}
		r := y[i] - (slope*x[i] + intercept)
		ssRes += w[i] * r * r
		d := y[i] - my
		ssTot += w[i] * d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes > 0 {
		r2 = 0
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// Mean returns the arithmetic mean of xs; it returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (denominator n-1). It
// returns 0 for fewer than two values.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the exact median of xs (the mean of the two central
// elements for even lengths). It returns 0 for an empty slice and does not
// modify its input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice
// and does not modify its input.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanAbsoluteError returns the mean absolute difference between predicted
// and observed series of equal length.
func MeanAbsoluteError(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(pred), len(obs))
	}
	if len(pred) == 0 {
		return 0, ErrInsufficientData
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - obs[i])
	}
	return s / float64(len(pred)), nil
}

// RootMeanSquareError returns the RMS difference between two equal-length
// series.
func RootMeanSquareError(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(pred), len(obs))
	}
	if len(pred) == 0 {
		return 0, ErrInsufficientData
	}
	var s float64
	for i := range pred {
		d := pred[i] - obs[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}

// PearsonCorrelation returns the linear correlation coefficient between two
// equal-length series. It returns 0 when either series is constant.
func PearsonCorrelation(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MovingAverage returns the centered moving average of xs with the given
// window size (clamped at the series edges). A window of 1 or less returns
// a copy of the input.
func MovingAverage(xs []float64, window int) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if window <= 1 {
		copy(out, xs)
		return out
	}
	half := window / 2
	// Prefix sums for O(n) averaging.
	prefix := make([]float64, n+1)
	for i, v := range xs {
		prefix[i+1] = prefix[i] + v
	}
	for i := 0; i < n; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= n {
			hi = n - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out
}
