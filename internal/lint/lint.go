// Package lint assembles the jouleslint analyzer suite: the static
// checks that machine-enforce the repository's simulation, locking,
// wire-protocol, telemetry, unit-dimension, allocation, and epoch
// invariants.
//
// The suite runs from cmd/jouleslint (and scripts/lint.sh in CI). Each
// analyzer lives in its own subpackage with an analysistest golden
// suite; this package only registers them and drives a run over build
// patterns. A finding can be suppressed at a specific line with
//
//	//jouleslint:ignore <analyzer> -- <why this site is exempt>
//
// which is itself auditable by grep (and budgeted by
// scripts/lintratchet.sh).
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"time"

	"fantasticjoules/internal/lint/analysis"
	"fantasticjoules/internal/lint/deadline"
	"fantasticjoules/internal/lint/determinism"
	"fantasticjoules/internal/lint/epochdiscipline"
	"fantasticjoules/internal/lint/hotpath"
	"fantasticjoules/internal/lint/loader"
	"fantasticjoules/internal/lint/lockdiscipline"
	"fantasticjoules/internal/lint/metricname"
	"fantasticjoules/internal/lint/scratchsafety"
	"fantasticjoules/internal/lint/unitsafety"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		deadline.Analyzer,
		determinism.Analyzer,
		epochdiscipline.Analyzer,
		hotpath.Analyzer,
		lockdiscipline.Analyzer,
		metricname.Analyzer,
		scratchsafety.Analyzer,
		unitsafety.Analyzer,
	}
}

// ByName returns the named analyzers in request order, erroring on
// unknown names. Repeated names are deduplicated — asking for
// "hotpath,hotpath" runs the analyzer once — and a registry in which two
// analyzers collide on a name is itself an error rather than a silent
// last-one-wins shadow.
func ByName(names []string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("lint: analyzer name %q registered twice", a.Name)
		}
		byName[a.Name] = a
	}
	out := make([]*analysis.Analyzer, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, a)
	}
	return out, nil
}

// Finding is one reported diagnostic, positioned for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// FixMessage describes the diagnostic's first suggested fix, and Fix
	// holds its edits resolved to byte offsets; both are empty when the
	// analyzer offered no mechanical rewrite.
	FixMessage string
	Fix        []FixEdit
}

// FixEdit is one resolved suggested-fix edit: replace the byte range
// [Start, End) of Filename with NewText. cmd/jouleslint -fix applies
// these directly against file contents.
type FixEdit struct {
	Filename string
	Start    int
	End      int
	NewText  string
}

// String renders the finding in the file:line:col: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Stat is one timed phase of a run: a shared fact construction
// ("fact:callgraph") or an analyzer's Run total across packages.
type Stat struct {
	Name    string
	Elapsed time.Duration
}

// Run loads the patterns and applies the analyzers to every target
// package, returning the post-suppression findings sorted by position.
func Run(cfg loader.Config, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	findings, _, err := RunWithStats(cfg, analyzers, patterns...)
	return findings, err
}

// RunWithStats is Run plus per-phase wall times: one Stat per distinct
// required fact (in first-use order) and one per analyzer (in argument
// order). scripts/lint.sh surfaces them via jouleslint -time.
func RunWithStats(cfg loader.Config, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, []Stat, error) {
	res, err := loader.Load(cfg, patterns...)
	if err != nil {
		return nil, nil, err
	}
	unit := res.Unit()

	// Precompute the shared facts up front so their cost is attributed to
	// the fact, not to whichever analyzer happens to run first.
	var stats []Stat
	seenFact := make(map[*analysis.Fact]bool)
	for _, a := range analyzers {
		for _, f := range a.Requires {
			if seenFact[f] {
				continue
			}
			seenFact[f] = true
			start := time.Now()
			if _, err := unit.FactOf(f); err != nil {
				return nil, nil, fmt.Errorf("lint: fact %s (required by %s): %v", f.Name, a.Name, err)
			}
			stats = append(stats, Stat{Name: "fact:" + f.Name, Elapsed: time.Since(start)})
		}
	}

	var findings []Finding
	perAnalyzer := make(map[string]time.Duration, len(analyzers))
	for _, pkg := range res.Packages {
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      res.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Dep:       res.Dep,
				Unit:      unit,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			start := time.Now()
			err := a.Run(pass)
			perAnalyzer[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range analysis.FilterSuppressed(res.Fset, pkg.Syntax, a.Name, diags) {
				findings = append(findings, resolveFinding(res.Fset, a.Name, d))
			}
		}
	}
	for _, a := range analyzers {
		stats = append(stats, Stat{Name: a.Name, Elapsed: perAnalyzer[a.Name]})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, stats, nil
}

// resolveFinding converts a diagnostic into a Finding, resolving the
// first suggested fix's token ranges to file byte offsets.
func resolveFinding(fset *token.FileSet, analyzer string, d analysis.Diagnostic) Finding {
	f := Finding{Analyzer: analyzer, Pos: fset.Position(d.Pos), Message: d.Message}
	if len(d.SuggestedFixes) == 0 {
		return f
	}
	fix := d.SuggestedFixes[0]
	f.FixMessage = fix.Message
	for _, e := range fix.TextEdits {
		start := fset.Position(e.Pos)
		end := fset.Position(e.End)
		f.Fix = append(f.Fix, FixEdit{Filename: start.Filename, Start: start.Offset, End: end.Offset, NewText: e.NewText})
	}
	return f
}
