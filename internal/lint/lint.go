// Package lint assembles the jouleslint analyzer suite: the static
// checks that machine-enforce the repository's simulation, locking,
// wire-protocol, telemetry, and unit-dimension invariants.
//
// The suite runs from cmd/jouleslint (and scripts/lint.sh in CI). Each
// analyzer lives in its own subpackage with an analysistest golden
// suite; this package only registers them and drives a run over build
// patterns. A finding can be suppressed at a specific line with
//
//	//jouleslint:ignore <analyzer> -- <why this site is exempt>
//
// which is itself auditable by grep.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"fantasticjoules/internal/lint/analysis"
	"fantasticjoules/internal/lint/deadline"
	"fantasticjoules/internal/lint/determinism"
	"fantasticjoules/internal/lint/loader"
	"fantasticjoules/internal/lint/lockdiscipline"
	"fantasticjoules/internal/lint/metricname"
	"fantasticjoules/internal/lint/unitsafety"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		deadline.Analyzer,
		determinism.Analyzer,
		lockdiscipline.Analyzer,
		metricname.Analyzer,
		unitsafety.Analyzer,
	}
}

// ByName returns the named analyzers, erroring on unknown names.
func ByName(names []string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	out := make([]*analysis.Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Finding is one reported diagnostic, positioned for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the file:line:col: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run loads the patterns and applies the analyzers to every target
// package, returning the post-suppression findings sorted by position.
func Run(cfg loader.Config, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	res, err := loader.Load(cfg, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range res.Packages {
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      res.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Dep:       res.Dep,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range analysis.FilterSuppressed(res.Fset, pkg.Syntax, a.Name, diags) {
				findings = append(findings, Finding{Analyzer: a.Name, Pos: res.Fset.Position(d.Pos), Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
