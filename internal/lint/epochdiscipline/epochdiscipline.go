// Package epochdiscipline implements the jouleslint analyzer that keeps
// memo-cell staleness from being reintroduced: any write to state the
// registered experiments artifacts read must be followed by an epoch
// bump so the dependent cells recompute.
//
// The analyzer derives three interprocedural sets from the shared call
// graph:
//
//   - compute roots: functions that pass a compute closure to an epoch
//     cell's get method (a method named get on a receiver whose method
//     set carries invalidate). The closures are what registered
//     artifacts run to produce their values.
//   - R, the compute region: everything reachable from the roots. A
//     field of an epoch-owning type (one with a Perturb, Invalidate, or
//     invalidate method) that is read inside R is artifact input —
//     "tracked".
//   - bump-reaching functions: everything from which a Perturb,
//     Invalidate, or invalidate method is reachable.
//
// A write to a tracked field is then flagged unless it is itself inside
// R (computes may fill caches), inside a bump method or a constructor
// (New*/new*/init — the cells don't exist yet), or lexically followed
// in the same function by a call that reaches a bump: the approximation
// of "post-dominated by an epoch bump" that matches how the suite's
// mutators are written (mutate, then Perturb/Invalidate).
//
// Deliberate exceptions carry
//
//	//jouleslint:ignore epochdiscipline -- <why staleness cannot result>
package epochdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"fantasticjoules/internal/lint/analysis"
	"fantasticjoules/internal/lint/callgraph"
)

// name is the analyzer name, named apart from Analyzer so the fact
// computation can use it without an initialization cycle.
const name = "epochdiscipline"

// Analyzer flags epoch-owner field writes that no epoch bump follows.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "writes to fields read by registered artifacts must be followed by a Perturb/Invalidate epoch bump",
	Requires: []*analysis.Fact{callgraph.Fact, InfoFact},
	Run:      run,
}

// InfoFact is the memoized epoch-discipline view of the unit.
var InfoFact = &analysis.Fact{
	Name:    "epochinfo",
	Compute: computeInfo,
}

// Info is InfoFact's value.
type Info struct {
	// InR marks the compute region: functions reachable from compute
	// roots.
	InR map[*types.Func]bool
	// Tracked holds the epoch-owner fields read inside R.
	Tracked map[*types.Var]bool
	// BumpReaching marks functions from which an epoch bump method is
	// reachable (bump methods included).
	BumpReaching map[*types.Func]bool
}

// bumpNames are the method names that advance an epoch.
var bumpNames = map[string]bool{"Perturb": true, "Invalidate": true, "invalidate": true}

// computeInfo builds the three sets.
func computeInfo(u *analysis.Unit) (any, error) {
	gv, err := u.FactOf(callgraph.Fact)
	if err != nil {
		return nil, err
	}
	g := gv.(*callgraph.Graph)
	info := &Info{
		InR:          make(map[*types.Func]bool),
		Tracked:      make(map[*types.Var]bool),
		BumpReaching: make(map[*types.Func]bool),
	}

	// Bump methods, and reverse reachability toward them.
	var bumps []*types.Func
	for _, fn := range g.Funcs {
		if isBumpMethod(fn) {
			bumps = append(bumps, fn)
		}
	}
	rev := make(map[*types.Func][]*types.Func)
	for _, fn := range g.Funcs {
		for _, e := range g.Edges(fn) {
			rev[e.Callee] = append(rev[e.Callee], e.Caller)
		}
	}
	queue := append([]*types.Func(nil), bumps...)
	for _, b := range bumps {
		info.BumpReaching[b] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range rev[fn] {
			if !info.BumpReaching[caller] {
				info.BumpReaching[caller] = true
				queue = append(queue, caller)
			}
		}
	}

	// Compute roots: enclosing declarations of closures handed to epoch
	// cell get methods.
	var roots []*types.Func
	for _, up := range u.Packages {
		if up.TypesInfo == nil {
			continue
		}
		for _, f := range up.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := up.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				isRoot := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isCellGet(up.TypesInfo, call) {
						return true
					}
					for _, arg := range call.Args {
						if _, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							isRoot = true
							return false
						}
					}
					return true
				})
				if isRoot {
					roots = append(roots, fn)
				}
			}
		}
	}
	for fn := range g.Reach(roots, nil) {
		info.InR[fn] = true
	}

	// Tracked fields: epoch-owner fields read inside R. Writes (selector
	// as assignment target) do not count as reads.
	for fn := range info.InR {
		fd, up := u.FuncDeclOf(fn)
		if fd == nil || fd.Body == nil {
			continue
		}
		writes := writeTargets(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || writes[sel] {
				return true
			}
			if fieldVar := ownerField(up.TypesInfo, sel); fieldVar != nil {
				info.Tracked[fieldVar] = true
			}
			return true
		})
	}
	return info, nil
}

// isBumpMethod reports whether fn is a method named like an epoch bump.
func isBumpMethod(fn *types.Func) bool {
	if !bumpNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isCellGet reports whether the call is an epoch cell's get: a method
// named get whose receiver's method set includes invalidate.
func isCellGet(info *types.Info, call *ast.CallExpr) bool {
	fn := callgraph.StaticCallee(info, call)
	if fn == nil || fn.Name() != "get" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return hasBumpMethod(sig.Recv().Type())
}

// hasBumpMethod reports whether t's (pointer) method set carries an
// epoch bump method.
func hasBumpMethod(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if bumpNames[ms.At(i).Obj().Name()] {
			return true
		}
	}
	return false
}

// ownerField resolves a selector to the field object it reads when the
// base value's type is an epoch owner; nil otherwise.
func ownerField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fieldVar, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	if !hasBumpMethod(s.Recv()) {
		return nil
	}
	return fieldVar
}

// writeTargets collects the selector expressions that are assignment or
// inc/dec targets within body.
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					out[sel] = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				out[sel] = true
			}
		}
		return true
	})
	return out
}

// run flags tracked-field writes in this package that no bump follows.
func run(pass *analysis.Pass) error {
	iv, err := pass.Unit.FactOf(InfoFact)
	if err != nil {
		return err
	}
	info := iv.(*Info)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if info.InR[fn] || isBumpMethod(fn) || isConstructor(fd) {
				continue
			}
			checkFunc(pass, info, fd)
		}
	}
	return nil
}

// isConstructor exempts New*/new*/init functions: they run before any
// cell has memoized a value.
func isConstructor(fd *ast.FuncDecl) bool {
	n := fd.Name.Name
	return n == "init" ||
		(len(n) >= 3 && (n[:3] == "New" || n[:3] == "new"))
}

// checkFunc reports tracked writes in fd not lexically followed by a
// bump-reaching call.
func checkFunc(pass *analysis.Pass, info *Info, fd *ast.FuncDecl) {
	tinfo := pass.TypesInfo
	type write struct {
		pos   token.Pos
		owner string
		field string
	}
	var writes []write
	record := func(sel *ast.SelectorExpr, pos token.Pos) {
		fieldVar := ownerField(tinfo, sel)
		if fieldVar == nil || !info.Tracked[fieldVar] {
			return
		}
		owner := "epoch owner"
		if s, ok := tinfo.Selections[sel]; ok {
			owner = ownerName(s.Recv())
		}
		writes = append(writes, write{pos: pos, owner: owner, field: fieldVar.Name()})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					record(sel, n.Pos())
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				record(sel, n.Pos())
			}
		}
		return true
	})
	for _, w := range writes {
		if bumpFollows(tinfo, info, fd, w.pos) {
			continue
		}
		pass.Reportf(w.pos, "write to %s field %s (artifact input) is not followed by an epoch bump (Perturb/Invalidate); memo cells may serve stale values", w.owner, w.field)
	}
}

// ownerName prints the receiver type of a selection.
func ownerName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// bumpFollows reports whether some call after pos in fd's body reaches
// an epoch bump method.
func bumpFollows(tinfo *types.Info, info *Info, fd *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		if fn := callgraph.StaticCallee(tinfo, call); fn != nil && (info.BumpReaching[fn] || isBumpMethod(fn)) {
			found = true
			return false
		}
		return true
	})
	return found
}
