// Package epoch exercises the epochdiscipline analyzer against a
// miniature of the experiments suite: memo cells keyed by validity, a
// Perturb that bumps the epoch, and mutators that do or do not follow
// their writes with a bump.
package epoch

// node carries the validity flag and the invalidate cascade.
type node struct {
	valid bool
	deps  []*node
}

// invalidate marks the node and its dependents stale.
func (n *node) invalidate() {
	n.valid = false
	for _, d := range n.deps {
		d.invalidate()
	}
}

// cell is a memo cell; get recomputes when stale.
type cell struct {
	node
	val int
}

// get returns the cached value, recomputing when invalid.
func (c *cell) get(compute func() (int, error)) (int, error) {
	if c.valid {
		return c.val, nil
	}
	c.valid = true
	v, err := compute()
	c.val = v
	return v, err
}

// Suite owns artifact inputs: cfg and workers feed the dataset compute.
type Suite struct {
	cfg     int
	workers int
	label   string
	data    *cell
}

// New constructs a suite; constructor writes are exempt.
func New(cfg int) *Suite {
	s := &Suite{data: &cell{}}
	s.cfg = cfg
	s.workers = 1
	return s
}

// Dataset is the registered artifact: its compute closure reads cfg and
// workers, making them tracked fields.
func (s *Suite) Dataset() (int, error) {
	return s.data.get(func() (int, error) {
		return s.cfg * s.workers, nil
	})
}

// Perturb is the epoch bump; its own writes are exempt.
func (s *Suite) Perturb(delta int) {
	s.cfg += delta
	s.data.invalidate()
}

// SetCfg mutates artifact input with no bump: stale cells would follow.
func (s *Suite) SetCfg(v int) {
	s.cfg = v // want "write to Suite field cfg .artifact input. is not followed by an epoch bump"
}

// SetWorkers bumps via Perturb directly after the write: clean.
func (s *Suite) SetWorkers(n int) {
	s.workers = n
	s.Perturb(0)
}

// SetCfgIndirect bumps through a helper that reaches Perturb: clean.
func (s *Suite) SetCfgIndirect(v int) {
	s.cfg = v
	s.refresh()
}

// refresh reaches the bump through one more call.
func (s *Suite) refresh() { s.Perturb(0) }

// SetLabel writes a field no artifact reads: clean.
func (s *Suite) SetLabel(v string) {
	s.label = v
}

// SetCfgDeliberate documents a batched-perturb contract and suppresses
// the finding with a reason.
func (s *Suite) SetCfgDeliberate(v int) {
	//jouleslint:ignore epochdiscipline -- caller batches one Perturb after a run of setters
	s.cfg = v
}
