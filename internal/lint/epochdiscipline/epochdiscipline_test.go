package epochdiscipline_test

import (
	"testing"

	"fantasticjoules/internal/lint/analysistest"
	"fantasticjoules/internal/lint/epochdiscipline"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), epochdiscipline.Analyzer, "example.com/epoch/...")
}
