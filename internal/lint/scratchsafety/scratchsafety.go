// Package scratchsafety implements the jouleslint analyzer that keeps
// sync.Pool-backed scratch values from outliving their pool cycle — the
// static generalization of the Fleet.Events() aliasing bug PR 9 fixed
// by hand.
//
// The experiments suite and the streaming fold hand out scratch buffers
// from pool arenas; once Put returns a buffer to the pool, any retained
// alias is silently overwritten by the next cycle. This analyzer tracks
// values that flow out of a direct (*sync.Pool).Get call or out of a
// pool-getter function (any function in the unit whose body calls Get
// directly — the arena accessor pattern), follows same-function ident
// aliases, and flags the escapes that outlive the cycle:
//
//   - returning a pool value obtained through a getter call (a direct
//     Get followed by return is the accessor itself, and stays legal);
//   - storing a pool value into a struct field or package variable;
//   - sending a pool value on a channel;
//   - placing a pool value in a composite literal (the escape shape of
//     the PR 9 bug: a retained struct holding an arena buffer).
//
// When the escaping value's type has a niladic Clone method the finding
// carries a suggested fix that inserts the copy; otherwise the cure is
// copying into caller-owned memory before the escape, or annotating a
// deliberate bounded handoff with
//
//	//jouleslint:ignore scratchsafety -- <why the alias cannot outlive the cycle>
package scratchsafety

import (
	"go/ast"
	"go/types"

	"fantasticjoules/internal/lint/analysis"
	"fantasticjoules/internal/lint/callgraph"
)

// name is the analyzer name, named apart from Analyzer so the fact
// computation can use it without an initialization cycle.
const name = "scratchsafety"

// Analyzer flags pool-arena values escaping their pool cycle.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "values from sync.Pool arenas must not escape the pool cycle via returns, stores, sends, or literals",
	Requires: []*analysis.Fact{GettersFact},
	Run:      run,
}

// GettersFact is the unit-wide set of pool getters: functions that call
// (*sync.Pool).Get directly and return the obtained value — the arena
// accessor pattern. Calls to them yield tracked scratch values in every
// package of the unit. A function that merely uses a pool internally
// (gets, works, puts back) is not a getter: its return values are its
// own.
var GettersFact = &analysis.Fact{
	Name:    "poolgetters",
	Compute: computeGetters,
}

// Getters is GettersFact's value.
type Getters map[*types.Func]bool

// computeGetters scans every unit function for the get-and-return shape.
func computeGetters(u *analysis.Unit) (any, error) {
	getters := make(Getters)
	for _, up := range u.Packages {
		if up.TypesInfo == nil {
			continue
		}
		for _, f := range up.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := up.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if returnsPoolValue(up.TypesInfo, fd) {
					getters[fn] = true
				}
			}
		}
	}
	return getters, nil
}

// returnsPoolValue reports whether some return statement of fd hands
// out a value derived from a direct pool Get in the same body.
func returnsPoolValue(info *types.Info, fd *ast.FuncDecl) bool {
	// First pass: variables assigned from a direct Get (through type
	// asserts and ident aliases, in source order).
	tracked := make(map[*types.Var]bool)
	fromGet := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ast.Unparen(ta.X)
		}
		switch e := e.(type) {
		case *ast.CallExpr:
			return isPoolGet(info, e)
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				return tracked[v]
			}
		}
		return false
	}
	assign := func(lhs, rhs ast.Expr) {
		if !fromGet(rhs) {
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if v, ok := objOf(info, id).(*types.Var); ok {
				tracked[v] = true
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch {
			case len(n.Lhs) == len(n.Rhs):
				for i := range n.Rhs {
					assign(n.Lhs[i], n.Rhs[i])
				}
			case len(n.Rhs) == 1:
				// Comma-ok type assert: v, ok := pool.Get().(*T).
				assign(n.Lhs[0], n.Rhs[0])
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				if i < len(n.Names) && fromGet(rhs) {
					if v, ok := info.Defs[n.Names[i]].(*types.Var); ok {
						tracked[v] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if fromGet(res) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isPoolGet reports whether the call is (*sync.Pool).Get.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	fn := callgraph.StaticCallee(info, call)
	if fn == nil || fn.Name() != "Get" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// origin classifies how a tracked value was obtained.
type origin int

const (
	// direct marks values from a (*sync.Pool).Get call in this very
	// function: the accessor itself, allowed to return them.
	direct origin = iota
	// derived marks values from a getter call or alias: scratch on loan,
	// never allowed to escape.
	derived
)

// run checks every function of the package independently: tracking is
// intra-procedural, the getter set is the interprocedural ingredient.
func run(pass *analysis.Pass) error {
	gv, err := pass.Unit.FactOf(GettersFact)
	if err != nil {
		return err
	}
	getters := gv.(Getters)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, getters, fd)
		}
	}
	return nil
}

// checkFunc tracks pool values through one function body in source
// order and reports escapes.
func checkFunc(pass *analysis.Pass, getters Getters, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	tracked := make(map[*types.Var]origin)

	// trackedExpr resolves an expression to its tracked origin, seeing
	// through parens and type assertions.
	trackedExpr := func(e ast.Expr) (origin, bool) {
		e = ast.Unparen(e)
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ast.Unparen(ta.X)
		}
		switch e := e.(type) {
		case *ast.CallExpr:
			if isPoolGet(info, e) {
				return direct, true
			}
			if fn := callgraph.StaticCallee(info, e); fn != nil && getters[fn] {
				return derived, true
			}
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				if o, ok := tracked[v]; ok {
					return o, true
				}
			}
		}
		return 0, false
	}

	report := func(pos ast.Node, what string, escapee ast.Expr) {
		d := analysis.Diagnostic{
			Pos:     pos.Pos(),
			Message: "pool-arena scratch value " + render(escapee) + " escapes the pool cycle via " + what,
		}
		if fix, ok := cloneFix(info, escapee); ok {
			d.SuggestedFixes = []analysis.SuggestedFix{fix}
		}
		pass.Report(d)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// First record fresh tracked values, then check stores: for
			// aligned assignments each LHS pairs with its RHS; a comma-ok
			// type assert pairs its single RHS with the first LHS.
			rhsFor := n.Rhs
			if len(n.Lhs) != len(n.Rhs) {
				rhsFor = nil
				if len(n.Rhs) == 1 {
					rhsFor = n.Rhs[:1]
				}
			}
			for i, rhs := range rhsFor {
				o, ok := trackedExpr(rhs)
				if !ok {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						continue
					}
					if v, ok := objOf(info, lhs).(*types.Var); ok {
						if v.Parent() == pass.Pkg.Scope() {
							report(n, "package-variable store", rhs)
							continue
						}
						tracked[v] = o
					}
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
						report(n, "field store", rhs)
					} else if _, ok := info.Uses[lhs.Sel].(*types.Var); ok {
						report(n, "package-variable store", rhs)
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				o, ok := trackedExpr(rhs)
				if !ok || i >= len(n.Names) {
					continue
				}
				if v, ok := info.Defs[n.Names[i]].(*types.Var); ok {
					tracked[v] = o
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if o, ok := trackedExpr(res); ok && o == derived {
					report(n, "return", res)
				}
			}
		case *ast.SendStmt:
			if _, ok := trackedExpr(n.Value); ok {
				report(n, "channel send", n.Value)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if _, ok := trackedExpr(val); ok {
					report(val, "composite literal", val)
				}
			}
		}
		return true
	})
}

// objOf resolves an identifier whether it is a definition (:=) or a use
// (=).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// render prints the escaping expression for the message (identifiers
// print as themselves; anything else as its shape).
func render(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "(pool value)"
}

// cloneFix offers x -> x.Clone() when the escaping expression is an
// identifier whose type has a niladic single-result Clone method.
func cloneFix(info *types.Info, e ast.Expr) (analysis.SuggestedFix, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	t := info.TypeOf(id)
	if t == nil {
		return analysis.SuggestedFix{}, false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Clone")
	m, ok := obj.(*types.Func)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{
		Message: "copy the scratch value with " + id.Name + ".Clone() before it escapes",
		TextEdits: []analysis.TextEdit{{
			Pos:     id.Pos(),
			End:     id.End(),
			NewText: id.Name + ".Clone()",
		}},
	}, true
}
