package scratchsafety_test

import (
	"path/filepath"
	"strings"
	"testing"

	"fantasticjoules/internal/lint/analysis"
	"fantasticjoules/internal/lint/analysistest"
	"fantasticjoules/internal/lint/loader"
	"fantasticjoules/internal/lint/scratchsafety"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), scratchsafety.Analyzer, "example.com/scratch/...")
}

// TestCloneFix pins the suggested fix on escapes of Clone-able values:
// the finding on `return b` must offer rewriting it to b.Clone().
func TestCloneFix(t *testing.T) {
	dir := analysistest.TestData()
	res, err := loader.Load(loader.Config{
		Dir: filepath.Join(dir, "src"),
		Env: []string{"GOPATH=" + dir, "GO111MODULE=off", "GOFLAGS=", "GOWORK=off"},
	}, "example.com/scratch/...")
	if err != nil {
		t.Fatal(err)
	}
	pkg := res.Packages[0]
	var fixes []string
	pass := &analysis.Pass{
		Analyzer:  scratchsafety.Analyzer,
		Fset:      res.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Dep:       res.Dep,
		Unit:      res.Unit(),
		Report: func(d analysis.Diagnostic) {
			for _, f := range d.SuggestedFixes {
				for _, e := range f.TextEdits {
					fixes = append(fixes, e.NewText)
				}
			}
		},
	}
	if err := scratchsafety.Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(fixes, "\n")
	if !strings.Contains(joined, "b.Clone()") {
		t.Fatalf("expected a b.Clone() suggested fix, got fixes:\n%q", joined)
	}
}
