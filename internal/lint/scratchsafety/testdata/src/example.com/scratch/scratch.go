// Package scratch exercises the scratchsafety analyzer: pool-arena
// values may be used within a cycle but must not be returned
// second-hand, stored into retained state, sent on channels, or placed
// in composite literals.
package scratch

import "sync"

type buf struct {
	vals []float64
}

// Clone deep-copies the buffer; escaping findings on buf values carry
// it as the suggested fix.
func (b *buf) Clone() *buf {
	out := &buf{vals: make([]float64, len(b.vals))}
	copy(out.vals, b.vals)
	return out
}

type arena struct {
	pool sync.Pool
}

// get is the accessor: a direct pool Get followed by return is the
// legal way scratch values enter circulation.
func (a *arena) get() *buf {
	v, ok := a.pool.Get().(*buf)
	if !ok {
		v = &buf{}
	}
	return v
}

// put returns a buffer to the pool, ending its cycle.
func (a *arena) put(b *buf) { a.pool.Put(b) }

type holder struct {
	b *buf
}

type state struct {
	retained *buf
	results  chan *buf
	scratch  arena
}

var global *buf

// misuse collects every escape shape.
func (s *state) misuse() *buf {
	b := s.scratch.get()
	s.retained = b     // want "escapes the pool cycle via field store"
	global = b         // want "escapes the pool cycle via package-variable store"
	s.results <- b     // want "escapes the pool cycle via channel send"
	h := &holder{b: b} // want "escapes the pool cycle via composite literal"
	_ = h
	return b // want "escapes the pool cycle via return"
}

// aliased proves tracking follows same-function aliases.
func (s *state) aliased() {
	b := s.scratch.get()
	alias := b
	s.retained = alias // want "escapes the pool cycle via field store"
	s.scratch.put(b)
}

// legitimate uses scratch within the cycle and puts it back: clean.
func (s *state) legitimate(out []float64) []float64 {
	b := s.scratch.get()
	b.vals = append(b.vals[:0], 1, 2, 3)
	out = append(out, b.vals...)
	s.scratch.put(b)
	return out
}

// handoff is a deliberate bounded handoff, suppressed with a reason.
func (s *state) handoff() {
	b := s.scratch.get()
	//jouleslint:ignore scratchsafety -- consumer puts the buffer back before the next cycle begins
	s.results <- b
}
