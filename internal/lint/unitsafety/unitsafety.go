// Package unitsafety checks the dimensional discipline of the
// internal/units quantity types.
//
// Go's type identity prevents adding watts to joules, but it cannot
// track dimensions through multiplication: Power × Power type-checks and
// stays Power, and Energy(p) converts watts straight into joules. Both
// compile, both are wrong physics, and both are exactly the W·h-vs-W
// class of mixup the units package exists to prevent. This analyzer
// closes the gap with three rules:
//
//  1. multiplying or dividing two non-constant unit quantities is
//     dimension-blind — extract plain float64s (p.Watts(), e.Joules())
//     and convert the result explicitly;
//  2. converting one unit type directly to another (Energy(power))
//     silently relabels the dimension — route through float64
//     arithmetic that makes the physics visible;
//  3. passing a bare non-zero numeric literal where a function expects a
//     unit quantity hides which unit the number is in — name it with a
//     conversion (units.ByteSize(24)) or a package constant.
//
// Scalar scaling with constants (3 * units.Kilowatt, speed*2) stays
// legal: a constant operand is an untyped scalar in spirit, and zero
// literals are unambiguous.
package unitsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"fantasticjoules/internal/lint/analysis"
)

// unitTypes are the quantity types of internal/units.
var unitTypes = map[string]bool{
	"Power":      true,
	"Energy":     true,
	"BitRate":    true,
	"PacketRate": true,
	"ByteSize":   true,
}

// Analyzer is the unit-safety check.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafety",
	Doc: "flag dimension-blind arithmetic on internal/units quantities: unit×unit products, " +
		"direct cross-unit conversions, and bare numeric literals passed as unit values",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkProduct(pass, n)
		case *ast.CallExpr:
			checkConversion(pass, n)
			checkLiteralArgs(pass, n)
		}
		return true
	})
	return nil
}

// unitName returns the unit type's name when t is one of the
// internal/units quantities.
func unitName(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !unitTypes[obj.Name()] ||
		!analysis.PkgPathMatches(obj.Pkg().Path(), []string{"internal/units"}) {
		return "", false
	}
	return obj.Name(), true
}

// operand describes one side of a binary expression.
func operand(pass *analysis.Pass, e ast.Expr) (name string, isUnit, isConst bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return "", false, false
	}
	name, isUnit = unitName(tv.Type)
	return name, isUnit, tv.Value != nil
}

// checkProduct flags unit×unit and unit÷unit between non-constant
// operands (rule 1).
func checkProduct(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.MUL && bin.Op != token.QUO {
		return
	}
	ln, lUnit, lConst := operand(pass, bin.X)
	rn, rUnit, rConst := operand(pass, bin.Y)
	if !lUnit || !rUnit || lConst || rConst {
		return
	}
	pass.Reportf(bin.OpPos,
		"dimension-blind %s %s %s: the result stays typed %s but is not %s-dimensioned; "+
			"extract plain float64s and convert the result explicitly",
		ln, bin.Op, rn, ln, unitWord(ln))
}

// unitWord names a unit type's dimension for diagnostics.
func unitWord(name string) string {
	switch name {
	case "Power":
		return "watt"
	case "Energy":
		return "joule"
	case "BitRate":
		return "bit-rate"
	case "PacketRate":
		return "packet-rate"
	default:
		return "byte"
	}
}

// checkConversion flags direct conversions between two different unit
// types (rule 2).
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	to, ok := unitName(tv.Type)
	if !ok {
		return
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || argTV.Value != nil { // converting a constant picks its unit; fine
		return
	}
	from, ok := unitName(argTV.Type)
	if !ok || from == to {
		return
	}
	pass.Reportf(call.Pos(),
		"direct conversion %s(%s) relabels the dimension without arithmetic; "+
			"write the physics in plain float64 (e.g. units.%s(x.%ss() * factor))",
		to, from, to, from)
}

// checkLiteralArgs flags bare non-zero numeric literals passed where a
// parameter has a unit type (rule 3).
func checkLiteralArgs(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversions ARE the fix for rule 3
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		lit := bareLiteral(arg)
		if lit == nil {
			continue
		}
		param := paramAt(sig, i)
		if param == nil {
			continue
		}
		name, ok := unitName(param)
		if !ok {
			continue
		}
		if v, ok := pass.TypesInfo.Types[arg]; ok && v.Value != nil && isZero(v) {
			continue // zero is zero in every unit
		}
		pass.Reportf(arg.Pos(),
			"bare literal %s passed as units.%s: name the quantity (units.%s(%s) or a package constant) "+
				"so the unit is visible at the call site", lit.Value, name, name, lit.Value)
	}
}

// bareLiteral unwraps parens and unary +/- down to a numeric literal.
func bareLiteral(e ast.Expr) *ast.BasicLit {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.ADD && v.Op != token.SUB {
				return nil
			}
			e = v.X
		case *ast.BasicLit:
			if v.Kind == token.INT || v.Kind == token.FLOAT {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isZero reports whether a constant value is numerically zero.
func isZero(tv types.TypeAndValue) bool {
	return tv.Value.String() == "0"
}

// paramAt returns the type of the i-th parameter, handling variadics.
func paramAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return slice.Elem()
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}
