// Package physics exercises the three unit-safety rules.
package physics

import "internal/units"

// Products shows rule 1: unit×unit is dimension-blind, scalar scaling
// with constants is fine, and float64 extraction is the approved fix.
func Products(p, q units.Power) units.Power {
	bad := p * q // want "dimension-blind Power \\* Power"
	scaled := p * 3
	halved := q / 2
	wattsSquared := p.Watts() * q.Watts()
	_ = wattsSquared
	return bad + scaled + halved
}

// Conversions shows rule 2: relabeling a dimension via conversion.
func Conversions(p units.Power, dt float64) units.Energy {
	bad := units.Energy(p) // want "direct conversion Energy\\(Power\\)"
	good := units.Energy(p.Watts() * dt)
	fromConst := units.Energy(3600)
	_ = fromConst
	return bad + good
}

// Literals shows rule 3: bare numbers hide which unit they are in.
func Literals(r units.BitRate) units.PacketRate {
	bad := units.PacketRateFor(r, 353, 24) // want "bare literal 353" "bare literal 24"
	good := units.PacketRateFor(r, units.ByteSize(353), units.ByteSize(24))
	zero := units.PacketRateFor(r, 0, 0)
	_ = zero
	return bad + good
}
