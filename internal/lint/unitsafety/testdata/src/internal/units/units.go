// Package units is a golden-test stand-in for the quantity types.
package units

// Power is watts.
type Power float64

// Energy is joules.
type Energy float64

// BitRate is bits per second.
type BitRate float64

// PacketRate is packets per second.
type PacketRate float64

// ByteSize is a size in bytes.
type ByteSize float64

// Watt is one watt.
const Watt Power = 1

// GigabitPerSecond is 1e9 bits per second.
const GigabitPerSecond BitRate = 1e9

// Watts unwraps to a float64.
func (p Power) Watts() float64 { return float64(p) }

// Joules unwraps to a float64.
func (e Energy) Joules() float64 { return float64(e) }

// PacketRateFor derives a packet rate from a bit rate and frame size.
func PacketRateFor(r BitRate, packet, header ByteSize) PacketRate {
	return PacketRate(float64(r) / ((float64(packet) + float64(header)) * 8))
}
