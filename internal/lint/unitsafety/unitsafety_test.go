package unitsafety_test

import (
	"testing"

	"fantasticjoules/internal/lint/analysistest"
	"fantasticjoules/internal/lint/unitsafety"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), unitsafety.Analyzer, "./...")
}
