// Package lockdiscipline checks the repository's two locking
// conventions around the batch device API.
//
// First, the *Locked-suffix convention: a function named fooLocked runs
// with its receiver's mutex already held. Such helpers must not acquire
// a lock themselves (re-entrant deadlock on Go's non-reentrant mutexes),
// and may only be called from a context that demonstrably holds the lock
// — another *Locked function, a method on a lock-owning view type such
// as device.Step, or a function that locked a mutex (or began a batch
// Step) earlier in its body.
//
// Second, the batch-API convention: the per-interface Router accessors
// acquire the router mutex on every call, so calling them inside a loop
// reintroduces exactly the per-step lock churn the BeginStep/Step batch
// API removed. Loops must resolve handles once and drive a Step.
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"fantasticjoules/internal/lint/analysis"
)

// loopMethods are the device.Router accessors whose per-call locking the
// batch API exists to amortize; calling them in a loop is a finding.
var loopMethods = map[string]bool{
	"SetTraffic":       true,
	"SetTrafficAt":     true,
	"InterfaceState":   true,
	"InterfaceStateAt": true,
}

// heldTypes are receiver type names that represent an already-held
// router lock; their methods may call *Locked helpers directly.
// device.Step is the batch view handed out by BeginStep.
var heldTypes = map[string]bool{"Step": true}

// Analyzer is the lock-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "enforce the *Locked helper convention and the BeginStep/Step batch API: " +
		"no re-entrant locking, no unheld *Locked calls, no per-interface Router accessors in loops",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkReentrantLock(pass, call, stack)
		checkUnheldLockedCall(pass, call, stack)
		checkLoopAccessor(pass, call, stack)
		return true
	})
	return nil
}

// lockedFuncFor returns the enclosing *Locked function declaration when
// the call executes on its stack — i.e. with no function literal between
// (a closure runs on its own schedule, possibly after the lock is gone).
func lockedFuncFor(stack []ast.Node) *ast.FuncDecl {
	fn := analysis.FuncFor(stack)
	fd, ok := fn.(*ast.FuncDecl)
	if !ok || !strings.HasSuffix(fd.Name.Name, "Locked") {
		return nil
	}
	return fd
}

// checkReentrantLock flags lock acquisitions inside *Locked helpers.
func checkReentrantLock(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	fd := lockedFuncFor(stack)
	if fd == nil {
		return
	}
	name, ok := acquisitionName(pass, call)
	if !ok {
		return
	}
	pass.Reportf(call.Pos(),
		"%s inside %s: *Locked helpers run with the lock already held; acquiring again deadlocks",
		name, fd.Name.Name)
}

// acquisitionName reports whether call acquires a lock — sync.Mutex/
// RWMutex Lock/RLock, or the router batch BeginStep — and names it.
func acquisitionName(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch {
	case fn.Pkg().Path() == "sync" && (fn.Name() == "Lock" || fn.Name() == "RLock"):
		return "sync " + fn.Name(), true
	case fn.Name() == "BeginStep" && recvIsDeviceType(fn, "Router"):
		return "BeginStep", true
	}
	return "", false
}

// checkUnheldLockedCall flags calls to *Locked helpers from contexts
// that do not hold the lock.
func checkUnheldLockedCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(sel.Sel.Name, "Locked") {
		return
	}
	if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
		return
	}
	fn := analysis.FuncFor(stack)
	if fd, ok := fn.(*ast.FuncDecl); ok {
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			return // Locked → Locked: caller already holds it
		}
		if recvTypeName(fd) != "" && heldTypes[recvTypeName(fd)] {
			return // method on a lock-owning view (device.Step)
		}
	}
	if fn != nil && acquiresBefore(pass, fn, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s without holding the lock: callers must lock the mutex (or hold a BeginStep batch) first",
		sel.Sel.Name)
}

// acquiresBefore reports whether the function body contains a lock
// acquisition lexically before pos, outside nested function literals.
func acquiresBefore(pass *analysis.Pass, fn ast.Node, call *ast.CallExpr) bool {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && c.Pos() < call.Pos() {
			if _, acquires := acquisitionName(pass, c); acquires {
				found = true
			}
		}
		return true
	})
	return found
}

// recvTypeName returns the name of a method's receiver type, or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkLoopAccessor flags per-interface Router accessors called inside a
// loop body (function literals reset the loop context: a closure defined
// in a loop runs per call, not per iteration).
func checkLoopAccessor(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !loopMethods[sel.Sel.Name] {
		return
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || !recvIsDeviceType(fn, "Router") {
		return
	}
	if !insideLoop(stack) {
		return
	}
	pass.Reportf(call.Pos(),
		"per-interface %s in a loop acquires the router lock every iteration; "+
			"resolve handles once and batch the loop under BeginStep/Step", sel.Sel.Name)
}

// insideLoop reports whether the innermost enclosing statement context is
// a for/range loop (stopping at function boundaries).
func insideLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// recvIsDeviceType reports whether fn is a method whose receiver is the
// named type in the device package (by import-path suffix, so the golden
// trees' fake internal/device matches too).
func recvIsDeviceType(fn *types.Func, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil &&
		analysis.PkgPathMatches(obj.Pkg().Path(), []string{"internal/device"})
}
