package lockdiscipline_test

import (
	"testing"

	"fantasticjoules/internal/lint/analysistest"
	"fantasticjoules/internal/lint/lockdiscipline"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockdiscipline.Analyzer, "./...")
}
