// Package device is a golden-test stand-in for the batch device model:
// a Router with per-interface accessors, a BeginStep/Step batch API, and
// *Locked helpers.
package device

import "sync"

// Router is the device under test.
type Router struct {
	mu   sync.Mutex
	bits map[string]float64
}

// Handle is a pre-resolved interface index.
type Handle int

// Step is the lock-owning batch view handed out by BeginStep.
type Step struct{ r *Router }

// Handle resolves an interface name once, ahead of a batch.
func (r *Router) Handle(name string) (Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return 0, nil
}

// BeginStep locks the router and returns the batch view.
func (r *Router) BeginStep() Step {
	r.mu.Lock()
	return Step{r: r}
}

// End releases the router lock.
func (s Step) End() { s.r.mu.Unlock() }

// SetTraffic is the per-interface accessor form: it locks on every call.
func (r *Router) SetTraffic(name string, bits, pkts float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.setTrafficLocked(name, bits)
}

// SetTraffic is the batch form: the Step already holds the lock.
func (s Step) SetTraffic(h Handle, bits, pkts float64) error {
	return s.r.setTrafficLocked("", bits)
}

// InterfaceState is the per-interface accessor form.
func (r *Router) InterfaceState(name string) (bool, bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return true, true, true
}

// setTrafficLocked mutates state with r.mu held.
func (r *Router) setTrafficLocked(name string, bits float64) error {
	r.bits[name] = bits
	return nil
}
