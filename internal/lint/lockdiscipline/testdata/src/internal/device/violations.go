package device

// badLocked acquires inside a *Locked helper: re-entrant deadlock.
func (r *Router) badLocked(name string) {
	r.mu.Lock() // want "sync Lock inside badLocked"
	r.bits[name] = 0
}

// batchLocked begins a batch step inside a *Locked helper: BeginStep
// takes the same mutex the helper's contract says is already held.
func (r *Router) batchLocked() {
	s := r.BeginStep() // want "BeginStep inside batchLocked"
	s.End()
}

// Reset calls a *Locked helper without holding the lock.
func (r *Router) Reset(name string) error {
	return r.setTrafficLocked(name, 0) // want "without holding the lock"
}

// Drain locks first; the *Locked call downstream of it is fine.
func (r *Router) Drain(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.setTrafficLocked(name, 0)
}

// Spawn shows that a closure does not inherit the caller's lock: it may
// run after the mutex is long gone.
func (r *Router) Spawn(name string) func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	return func() {
		_ = r.setTrafficLocked(name, 0) // want "without holding the lock"
	}
}
