// Package consumer drives the fake device both the per-interface way
// (lock churn in loops: flagged) and the batch way (approved).
package consumer

import "internal/device"

// Slow drives per-interface accessors inside loops.
func Slow(r *device.Router, names []string, bits []float64) {
	for i, name := range names {
		_ = r.SetTraffic(name, bits[i], 0) // want "per-interface SetTraffic in a loop"
	}
	for _, name := range names {
		_, _, _ = r.InterfaceState(name) // want "per-interface InterfaceState in a loop"
	}
}

// Batch resolves handles once and drives a Step: the approved shape.
// Step.SetTraffic shares its name with the flagged accessor but carries
// the lock in its receiver, so loops over it are fine.
func Batch(r *device.Router, names []string, bits []float64) error {
	handles := make([]device.Handle, len(names))
	for i, name := range names {
		h, err := r.Handle(name)
		if err != nil {
			return err
		}
		handles[i] = h
	}
	step := r.BeginStep()
	defer step.End()
	for i, h := range handles {
		if err := step.SetTraffic(h, bits[i], 0); err != nil {
			return err
		}
	}
	return nil
}

// Single is a one-off accessor call outside any loop: allowed.
func Single(r *device.Router, name string) error {
	return r.SetTraffic(name, 1, 0)
}

// Deferred shows that a closure defined in a loop runs per call, not
// per iteration: the loop context does not reach its body.
func Deferred(r *device.Router, names []string) func() {
	for _, name := range names {
		return func() { _ = r.SetTraffic(name, 1, 0) }
	}
	return nil
}
