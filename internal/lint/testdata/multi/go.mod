module example.com/multi

go 1.22
