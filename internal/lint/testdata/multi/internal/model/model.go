// Package model seeds a second file of metricname violations so the
// sorted finding order spans multiple files and packages.
package model

import "example.com/multi/internal/telemetry"

var (
	fits    = telemetry.Default().Counter("modelFits", "fits performed")
	rejects = telemetry.Default().Counter("model_rejects", "fits rejected")
)
