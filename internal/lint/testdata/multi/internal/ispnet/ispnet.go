// Package ispnet seeds one determinism violation and one metricname
// violation, so a full-suite run produces findings from two analyzers in
// one file — the raw material for the stable-order golden test.
package ispnet

import (
	"time"

	"example.com/multi/internal/telemetry"
)

var steps = telemetry.Default().Counter("ispnet_steps", "steps played")

// Stamp reads the wall clock inside a simulation-scoped package.
func Stamp() time.Time {
	return time.Now()
}
