// Package telemetry is the minimal registry surface the metricname
// analyzer matches on.
package telemetry

// Registry registers metrics.
type Registry struct{}

// Counter is a metric handle.
type Counter struct{}

// Default returns the process registry.
func Default() *Registry { return &Registry{} }

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }
