package determinism_test

import (
	"testing"

	"fantasticjoules/internal/lint/analysistest"
	"fantasticjoules/internal/lint/determinism"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "./...")
}
