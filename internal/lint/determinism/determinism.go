// Package determinism checks that the simulation packages stay
// bit-identical across runs and worker counts: no wall-clock reads, no
// global math/rand state, and no map-iteration order leaking into
// ordered outputs.
//
// The fleet replay's core guarantee — the golden Workers-1-vs-8 dataset
// equality — holds only because every source of nondeterminism is
// injected and seeded. This analyzer makes that a machine-checked
// property of the simulation packages instead of a convention.
package determinism

import (
	"go/ast"
	"go/types"

	"fantasticjoules/internal/lint/analysis"
)

// SimPackages are the import-path suffixes of the packages whose outputs
// must be deterministic. The batch device model, the sharded fleet
// replay, the suite's artifact graph, the power model, and the columnar
// time series all feed the golden dataset.
var SimPackages = []string{
	"internal/ispnet",
	"internal/device",
	"internal/experiments",
	"internal/hypnos",
	"internal/model",
	"internal/optimizer",
	"internal/timeseries",
	"internal/trafficgen",
}

// randConstructors are the math/rand package functions that build seeded
// generators rather than touching the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand state, and map-ordered output " +
		"in the simulation packages; replays must be bit-identical at any worker count",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathMatches(pass.Pkg.Path(), SimPackages) {
		return nil
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, stack)
		case *ast.RangeStmt:
			checkMapRange(pass, n, stack)
		}
		return true
	})
	return nil
}

// checkCall flags time.Now and global math/rand calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" && !inDeferArgs(call, stack) {
			pass.Reportf(call.Pos(),
				"time.Now in simulation package %s: simulated clocks must come from the replay config; "+
					"telemetry timing is allowed only as a defer argument (defer h.ObserveSince(time.Now()))",
				pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil { // methods on a seeded *rand.Rand are fine
			return
		}
		if randConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"global math/rand.%s in simulation package %s: derive a seeded *rand.Rand from the config seed",
			fn.Name(), pass.Pkg.Name())
	}
}

// calleeFunc resolves a call's static callee, or nil for indirect calls,
// built-ins, and conversions.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// inDeferArgs reports whether call sits in the argument list of a defer
// statement — the hist.ObserveSince(time.Now()) telemetry idiom, whose
// clock reading can only flow into a metric observation, never into
// simulation state. A time.Now inside a deferred function body (executed
// at return, free to flow anywhere) does not qualify.
func inDeferArgs(call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		d, ok := stack[i].(*ast.DeferStmt)
		if !ok {
			continue
		}
		return call.Pos() > d.Call.Lparen && call.End() <= d.Call.End()
	}
	return false
}

// checkMapRange flags loops over maps that append to a slice declared
// outside the loop: the append order is the map's iteration order, which
// differs run to run. Two escapes: function literals inside the body are
// skipped (they execute on their own schedule), and a slice that is
// sorted after the loop is fine — collect-then-sort is the canonical way
// to iterate a map deterministically.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	fn := analysis.FuncFor(stack)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[dst]
		if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()) {
			return true // loop-local accumulator: order never escapes
		}
		if sortedAfter(pass, fn, rng, obj) {
			return true // collect-then-sort: the sort re-establishes order
		}
		pass.Reportf(call.Pos(),
			"append to %s while ranging over a map: the element order is the map's iteration order "+
				"and changes run to run; sort %s afterwards or range over sorted keys", dst.Name, dst.Name)
		return true
	})
}

// sortFuncs are the sort/slices entry points that re-establish a
// deterministic order.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether the enclosing function sorts the appended
// slice lexically after the range loop.
func sortedAfter(pass *analysis.Pass, fn ast.Node, rng *ast.RangeStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil || !sortFuncs[callee.Name()] {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
