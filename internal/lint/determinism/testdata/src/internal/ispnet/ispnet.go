// Package ispnet is a golden-test stand-in for the fleet replay: its
// import-path suffix puts it inside the determinism scope.
package ispnet

import (
	"math/rand"
	"sort"
	"time"
)

// Replay mixes allowed and forbidden clock and randomness use.
func Replay(seed int64) float64 {
	start := time.Now() // want "time.Now in simulation package"
	_ = start

	defer observe(time.Now()) // telemetry defer-arg idiom: allowed

	defer func() {
		_ = time.Now() // want "time.Now in simulation package"
	}()

	rng := rand.New(rand.NewSource(seed)) // seeded constructor: allowed
	jitter := rng.Float64()               // method on a seeded *rand.Rand: allowed
	jitter += rand.Float64()              // want "global math/rand.Float64"
	return jitter
}

// Banner is the suppression escape hatch: audited, reasoned, greppable.
func Banner() time.Time {
	return time.Now() //jouleslint:ignore determinism -- wall clock feeds a log banner, never simulation state
}

// Order shows the map-iteration rules.
func Order(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "map's iteration order"
	}

	for k, v := range m {
		local := make([]int, 0, 1)
		local = append(local, v) // loop-local accumulator: allowed
		_ = local
		_ = k
	}

	for k := range m {
		f := func() { keys = append(keys, k) } // closure body: runs on its own schedule
		_ = f
	}
	return keys
}

// Sorted is the canonical collect-then-sort idiom: the sort after the
// loop re-establishes a deterministic order, so the append is allowed.
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// observe stands in for a telemetry histogram observation.
func observe(time.Time) {}
