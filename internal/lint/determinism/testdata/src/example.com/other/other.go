// Package other sits outside the simulation scope; nothing here is
// flagged even though it reads the wall clock.
package other

import "time"

// Now is allowed: other is not a simulation package.
func Now() time.Time { return time.Now() }
