// Package deadline checks that every network read and write in the
// collection plane is governed by a deadline.
//
// The chaos harness (PR 4) showed what an undeadlined conn costs: a
// silent pre-hello client wedged Server.Close forever, and a stalled
// peer could pin an upload loop until context cancellation. The fixes
// were all of one shape — a SetDeadline-family call before the I/O — and
// this analyzer keeps that shape mandatory in internal/autopower and
// internal/snmp.
//
// The rule is lexical: within the enclosing function (function literals
// are their own scope — a goroutine body cannot inherit the deadline
// discipline of its parent), a Read on a net.Conn/net.PacketConn must be
// preceded by SetReadDeadline or SetDeadline, a Write by
// SetWriteDeadline or SetDeadline. Passing a conn to a function that can
// do I/O but cannot manage deadlines (an io.Reader/io.Writer parameter)
// counts as I/O at the call site; passing it to a function that receives
// deadline control (a net.Conn parameter) transfers the obligation to
// the callee. A deliberately unbounded read is declared with
// SetReadDeadline(time.Time{}) — the absence of a bound must be written
// down, not implied.
package deadline

import (
	"go/ast"
	"go/types"

	"fantasticjoules/internal/lint/analysis"
)

// ConnPackages are the import-path suffixes of the packages under the
// deadline discipline: the two network-facing collection planes.
var ConnPackages = []string{"internal/autopower", "internal/snmp"}

// Analyzer is the deadline check.
var Analyzer = &analysis.Analyzer{
	Name: "deadline",
	Doc: "require every net.Conn/net.PacketConn read and write in the collection plane " +
		"to be dominated by a SetDeadline-family call in the same function",
	Run: run,
}

// direction is a bitset of the I/O sides an operation touches.
type direction int

const (
	reads direction = 1 << iota
	writes
)

var readMethods = map[string]bool{
	"Read": true, "ReadFrom": true, "ReadFromUDP": true, "ReadMsgUDP": true,
}
var writeMethods = map[string]bool{
	"Write": true, "WriteTo": true, "WriteToUDP": true, "WriteMsgUDP": true,
}
var deadlineMethods = map[string]direction{
	"SetDeadline":      reads | writes,
	"SetReadDeadline":  reads,
	"SetWriteDeadline": writes,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathMatches(pass.Pkg.Path(), ConnPackages) {
		return nil
	}
	connIfaces := connInterfaces(pass)
	if len(connIfaces) == 0 {
		return nil // package never touches net
	}
	// WalkStack visits calls in source order, so recording deadline calls
	// as they appear makes "seen[fn] covers d" exactly the lexical
	// domination check.
	seen := make(map[ast.Node]direction)
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.FuncFor(stack)
		if d, ok := deadlineCall(pass, call, connIfaces); ok {
			seen[fn] |= d
			return true
		}
		need, what := ioCall(pass, call, connIfaces)
		if need == 0 {
			return true
		}
		if seen[fn]&need == need {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s on a conn without a deadline: no %s precedes it in this function "+
				"(set one, or declare it explicitly unbounded with SetReadDeadline(time.Time{}))",
			what, missing(need&^seen[fn]))
		return true
	})
	return nil
}

// missing names the deadline calls that would satisfy the unmet needs.
func missing(need direction) string {
	switch need {
	case reads:
		return "SetReadDeadline/SetDeadline"
	case writes:
		return "SetWriteDeadline/SetDeadline"
	default:
		return "SetDeadline"
	}
}

// connInterfaces returns the net.Conn and net.PacketConn interface types
// from the pass's dependency closure.
func connInterfaces(pass *analysis.Pass) []*types.Interface {
	netPkg := pass.Dep("net")
	if netPkg == nil {
		return nil
	}
	var out []*types.Interface
	for _, name := range []string{"Conn", "PacketConn"} {
		if obj := netPkg.Scope().Lookup(name); obj != nil {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				out = append(out, iface)
			}
		}
	}
	return out
}

// isConn reports whether a static type is (or implements) net.Conn or
// net.PacketConn.
func isConn(t types.Type, connIfaces []*types.Interface) bool {
	if t == nil {
		return false
	}
	for _, iface := range connIfaces {
		if types.Implements(t, iface) {
			return true
		}
		if !types.IsInterface(t) && types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}

// methodOnConn returns the called method name when call is a method call
// on a conn-typed receiver.
func methodOnConn(pass *analysis.Pass, call *ast.CallExpr, connIfaces []*types.Interface) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	if !isConn(selection.Recv(), connIfaces) {
		return "", false
	}
	return sel.Sel.Name, true
}

// deadlineCall reports whether call is a SetDeadline-family call on a
// conn and which directions it governs.
func deadlineCall(pass *analysis.Pass, call *ast.CallExpr, connIfaces []*types.Interface) (direction, bool) {
	name, ok := methodOnConn(pass, call, connIfaces)
	if !ok {
		return 0, false
	}
	d, ok := deadlineMethods[name]
	return d, ok
}

// ioCall classifies a call as conn I/O and returns the directions that
// must already be governed, with a description for the diagnostic.
func ioCall(pass *analysis.Pass, call *ast.CallExpr, connIfaces []*types.Interface) (direction, string) {
	if name, ok := methodOnConn(pass, call, connIfaces); ok {
		switch {
		case readMethods[name]:
			return reads, name
		case writeMethods[name]:
			return writes, name
		}
		return 0, ""
	}
	// Passing a conn into a function that can do I/O on it but cannot set
	// deadlines (io.Reader/io.Writer-shaped parameters): the caller owns
	// the deadline.
	sig := calleeSignature(pass, call)
	if sig == nil {
		return 0, ""
	}
	var need direction
	name := "passing a conn"
	for i, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !isConn(tv.Type, connIfaces) {
			continue
		}
		param := paramAt(sig, i)
		if param == nil {
			continue
		}
		iface, ok := param.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		var can direction
		canDeadline := false
		for m := 0; m < iface.NumMethods(); m++ {
			switch n := iface.Method(m).Name(); {
			case readMethods[n]:
				can |= reads
			case writeMethods[n]:
				can |= writes
			case deadlineMethods[n] != 0:
				canDeadline = true
			}
		}
		if canDeadline {
			continue // callee receives deadline control along with the conn
		}
		need |= can
		if fnName := calleeName(call); fnName != "" {
			name = "passing a conn to " + fnName
		}
	}
	return need, name
}

// calleeSignature returns the called function's signature, or nil for
// conversions and built-ins.
func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// calleeName renders a short name for the called function.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}

// paramAt returns the type of the i-th parameter, handling variadics.
func paramAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return slice.Elem()
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}
