// Package snmp is a golden-test stand-in for the SNMP collection plane:
// its import-path suffix puts it inside the deadline scope.
package snmp

import (
	"io"
	"net"
	"time"
)

// Undisciplined does raw I/O with no deadline anywhere.
func Undisciplined(conn net.Conn, buf []byte) {
	conn.Read(buf)  // want "Read on a conn without a deadline"
	conn.Write(buf) // want "Write on a conn without a deadline"
}

// HalfCovered sets only the read deadline; writes stay unbounded.
func HalfCovered(conn net.Conn, buf []byte) {
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	conn.Read(buf)
	conn.Write(buf) // want "Write on a conn without a deadline"
}

// Covered sets a full deadline before both directions.
func Covered(conn net.Conn, buf []byte) {
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	conn.Read(buf)
	conn.Write(buf)
}

// Unbounded declares the missing bound explicitly instead of implying it.
func Unbounded(conn net.Conn, buf []byte) {
	_ = conn.SetReadDeadline(time.Time{})
	conn.Read(buf)
}

// Goroutine shows that function literals are their own scope: the parent
// function's deadline discipline does not reach a goroutine body.
func Goroutine(conn net.Conn, buf []byte) {
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	go func() {
		conn.Read(buf) // want "Read on a conn without a deadline"
	}()
	conn.Read(buf)
}

// Packet covers the net.PacketConn surface.
func Packet(pc net.PacketConn, buf []byte) {
	pc.ReadFrom(buf) // want "ReadFrom on a conn without a deadline"
	_ = pc.SetWriteDeadline(time.Now().Add(time.Second))
	pc.WriteTo(buf, nil)
}

// Handoff passes the conn to a callee that also receives deadline
// control: the obligation moves with it.
func Handoff(conn net.Conn) {
	serve(conn)
}

func serve(c net.Conn) {
	_ = c.SetDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	c.Read(buf)
}

// Leak hands the conn to readers that can do I/O but cannot set
// deadlines, so the deadline is owed here, before the call.
func Leak(conn net.Conn, buf []byte) {
	io.ReadFull(conn, buf) // want "passing a conn to io.ReadFull"
	drain(conn)            // want "passing a conn to drain"
}

// LeakCovered is the same handoff with the deadline paid up front.
func LeakCovered(conn net.Conn, buf []byte) {
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	io.ReadFull(conn, buf)
	drain(conn)
}

func drain(r io.Reader) {
	buf := make([]byte, 64)
	r.Read(buf)
}
