// Package outside sits outside the collection plane; undeadlined I/O
// here is not jouleslint's business.
package outside

import "net"

// Relay reads without a deadline and is not flagged.
func Relay(conn net.Conn, buf []byte) {
	conn.Read(buf)
}
