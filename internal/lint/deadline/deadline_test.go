package deadline_test

import (
	"testing"

	"fantasticjoules/internal/lint/analysistest"
	"fantasticjoules/internal/lint/deadline"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), deadline.Analyzer, "./...")
}
