package metricname_test

import (
	"testing"

	"fantasticjoules/internal/lint/analysistest"
	"fantasticjoules/internal/lint/metricname"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), metricname.Analyzer, "./...")
}
