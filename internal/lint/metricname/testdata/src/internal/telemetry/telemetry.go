// Package telemetry is a golden-test stand-in for the metrics registry.
package telemetry

// Registry registers metrics by name.
type Registry struct{}

// Counter is a monotonic counter.
type Counter struct{}

// Gauge is a point-in-time value.
type Gauge struct{}

// Histogram is a bucketed distribution.
type Histogram struct{}

// Default returns the process-wide registry.
func Default() *Registry { return &Registry{} }

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram { return &Histogram{} }

// Label renders name{k="v",...} from alternating key/value pairs.
func Label(name string, kv ...string) string { return name }
