// Package metrics registers metrics with good and bad names.
package metrics

import "internal/telemetry"

var reg = telemetry.Default()

var (
	good     = reg.Counter("snmp_requests_total", "requests issued")
	noTotal  = reg.Counter("snmp_requests", "requests issued")        // want "must end in _total"
	gaugeTot = reg.Gauge("snmp_inflight_total", "in-flight requests") // want "must not end in _total"
	camel    = reg.Counter("snmpRequests_total", "requests issued")   // want "not snake_case"
	oneWord  = reg.Gauge("inflight", "in-flight requests")            // want "not snake_case"
	okGauge  = reg.Gauge("snmp_inflight_requests", "in-flight requests")
	histOK   = reg.Histogram("snmp_poll_seconds", "poll latency", nil)
	histBad  = reg.Histogram("snmp_poll_duration", "poll latency", nil) // want "base-unit suffix"
	labeled  = reg.Counter(`snmp_errors_total{kind="timeout"}`, "timeouts")
)

// Dynamic shows the compile-time-constant rule and the Label escape:
// label values may be runtime data, base names may not.
func Dynamic(suffix, router string) {
	reg.Counter("snmp_"+suffix+"_total", "per-kind count") // want "not a compile-time constant"
	reg.Histogram(telemetry.Label("snmp_poll_seconds", "router", router), "poll latency", nil)
	reg.Histogram(telemetry.Label("snmpPoll_seconds", "router", router), "poll latency", nil) // want "not snake_case"

	const name = "snmp_polls_total"
	reg.Counter(name, "polls issued")
}
