// Package metricname checks telemetry metric registrations against the
// exposition naming rules the dashboards and docs rely on: snake_case,
// subsystem-prefixed, counters ending in _total, histograms carrying a
// base-unit suffix, and names known at compile time.
//
// The telemetry registry deliberately accepts any string — names are
// data — so nothing at runtime stops a misnamed metric from silently
// diverging from the catalog in README/EXPERIMENTS. This analyzer moves
// that contract to build time.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"fantasticjoules/internal/lint/analysis"
)

// Analyzer is the metric-naming check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "telemetry registrations must use constant snake_case subsystem-prefixed names; " +
		"counters end in _total, histograms in a base-unit suffix",
	Run: run,
}

// registerMethods maps the Registry methods to their metric kind.
var registerMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "histogram",
}

// nameRE is the allowed shape: lower-case snake_case with at least two
// tokens, the first being the owning subsystem.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// unitSuffixes are the histogram base units in use across the repo.
var unitSuffixes = []string{"_seconds", "_bytes", "_joules", "_watts", "_bits", "_ratio"}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, ok := registryCall(pass, call)
		if !ok || len(call.Args) == 0 {
			return true
		}
		name, ok := constantName(pass, call.Args[0])
		if !ok {
			pass.Reportf(call.Args[0].Pos(),
				"%s name is not a compile-time constant: metric names are part of the exposition "+
					"contract and must be auditable statically (labels go through telemetry.Label)", kind)
			return true
		}
		check(pass, call.Args[0].Pos(), kind, name)
		return true
	})
	return nil
}

// check validates one registered base name.
func check(pass *analysis.Pass, pos token.Pos, kind, name string) {
	base, _, _ := strings.Cut(name, "{")
	switch {
	case !nameRE.MatchString(base):
		pass.Reportf(pos, "%s %q is not snake_case with a subsystem prefix (want subsystem_name[_unit])", kind, base)
	case kind == "counter" && !strings.HasSuffix(base, "_total"):
		pass.Reportf(pos, "counter %q must end in _total", base)
	case kind != "counter" && strings.HasSuffix(base, "_total"):
		pass.Reportf(pos, "%s %q must not end in _total (that suffix promises a monotonic counter)", kind, base)
	case kind == "histogram" && !hasUnitSuffix(base):
		pass.Reportf(pos, "histogram %q needs a base-unit suffix (%s)", base, strings.Join(unitSuffixes, ", "))
	}
}

// hasUnitSuffix reports whether a histogram name ends in a known unit.
func hasUnitSuffix(base string) bool {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(base, s) {
			return true
		}
	}
	return false
}

// registryCall reports whether call registers a metric on a
// telemetry.Registry and returns its kind.
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	kind, ok := registerMethods[sel.Sel.Name]
	if !ok {
		return "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil ||
		!analysis.PkgPathMatches(obj.Pkg().Path(), []string{"internal/telemetry"}) {
		return "", false
	}
	return kind, true
}

// constantName resolves a metric-name argument to its constant string
// value, looking through telemetry.Label calls (whose first argument is
// the base name; label values may be dynamic).
func constantName(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	arg = ast.Unparen(arg)
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil || fn.Name() != "Label" || fn.Pkg() == nil ||
		!analysis.PkgPathMatches(fn.Pkg().Path(), []string{"internal/telemetry"}) {
		return "", false
	}
	return constantName(pass, call.Args[0])
}
