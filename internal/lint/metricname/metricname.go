// Package metricname checks telemetry metric registrations against the
// exposition naming rules the dashboards and docs rely on: snake_case,
// subsystem-prefixed, counters ending in _total, histograms carrying a
// base-unit suffix, and names known at compile time.
//
// The telemetry registry deliberately accepts any string — names are
// data — so nothing at runtime stops a misnamed metric from silently
// diverging from the catalog in README/EXPERIMENTS. This analyzer moves
// that contract to build time.
package metricname

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"fantasticjoules/internal/lint/analysis"
)

// Analyzer is the metric-naming check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "telemetry registrations must use constant snake_case subsystem-prefixed names; " +
		"counters end in _total, histograms in a base-unit suffix",
	Run: run,
}

// registerMethods maps the Registry methods to their metric kind.
var registerMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "histogram",
}

// nameRE is the allowed shape: lower-case snake_case with at least two
// tokens, the first being the owning subsystem.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// unitSuffixes are the histogram base units in use across the repo.
var unitSuffixes = []string{"_seconds", "_bytes", "_joules", "_watts", "_bits", "_ratio"}

func run(pass *analysis.Pass) error {
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, ok := registryCall(pass, call)
		if !ok || len(call.Args) == 0 {
			return true
		}
		name, ok := constantName(pass, call.Args[0])
		if !ok {
			pass.Reportf(call.Args[0].Pos(),
				"%s name is not a compile-time constant: metric names are part of the exposition "+
					"contract and must be auditable statically (labels go through telemetry.Label)", kind)
			return true
		}
		check(pass, call.Args[0], kind, name)
		return true
	})
	return nil
}

// check validates one registered base name. When the name reaches the
// registry as a direct string literal, rule violations with a mechanical
// cure carry a suggested fix rewriting the literal.
func check(pass *analysis.Pass, arg ast.Expr, kind, name string) {
	pos := arg.Pos()
	base, rest, hasLabels := strings.Cut(name, "{")
	if hasLabels {
		rest = "{" + rest
	}
	report := func(msg, fixed string) {
		d := analysis.Diagnostic{Pos: pos, Message: msg}
		if fixed != "" && nameRE.MatchString(fixed) {
			if fix, ok := renameFix(arg, kind, fixed+rest); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{fix}
			}
		}
		pass.Report(d)
	}
	switch {
	case !nameRE.MatchString(base):
		// Fold the suffix rules into the rename so one -fix pass converges.
		fixed := sanitize(base)
		if kind == "counter" && !strings.HasSuffix(fixed, "_total") {
			fixed += "_total"
		} else if kind != "counter" {
			fixed = strings.TrimSuffix(fixed, "_total")
		}
		report(fmt.Sprintf("%s %q is not snake_case with a subsystem prefix (want subsystem_name[_unit])", kind, base), fixed)
	case kind == "counter" && !strings.HasSuffix(base, "_total"):
		report(fmt.Sprintf("counter %q must end in _total", base), base+"_total")
	case kind != "counter" && strings.HasSuffix(base, "_total"):
		report(fmt.Sprintf("%s %q must not end in _total (that suffix promises a monotonic counter)", kind, base),
			strings.TrimSuffix(base, "_total"))
	case kind == "histogram" && !hasUnitSuffix(base):
		// No fix: the base unit is semantic, not mechanical.
		report(fmt.Sprintf("histogram %q needs a base-unit suffix (%s)", base, strings.Join(unitSuffixes, ", ")), "")
	}
}

// renameFix rewrites a direct string-literal metric name. Names built
// through constants or concatenation get no fix — rewriting those needs
// human judgment about where the name lives.
func renameFix(arg ast.Expr, kind, newName string) (analysis.SuggestedFix, bool) {
	lit, ok := ast.Unparen(arg).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{
		Message: "rename the " + kind + " to " + strconv.Quote(newName),
		TextEdits: []analysis.TextEdit{{
			Pos:     lit.Pos(),
			End:     lit.End(),
			NewText: strconv.Quote(newName),
		}},
	}, true
}

// sanitize mechanically converts a name to snake_case: camelCase humps
// become underscore-separated tokens, runs of other separators collapse
// to single underscores, and everything lowers.
func sanitize(name string) string {
	var b strings.Builder
	prevUnderscore := true // suppress a leading underscore
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			if !prevUnderscore {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
			prevUnderscore = false
		case (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'):
			b.WriteRune(r)
			prevUnderscore = false
		default:
			if !prevUnderscore {
				b.WriteByte('_')
			}
			prevUnderscore = true
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// hasUnitSuffix reports whether a histogram name ends in a known unit.
func hasUnitSuffix(base string) bool {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(base, s) {
			return true
		}
	}
	return false
}

// registryCall reports whether call registers a metric on a
// telemetry.Registry and returns its kind.
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	kind, ok := registerMethods[sel.Sel.Name]
	if !ok {
		return "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil ||
		!analysis.PkgPathMatches(obj.Pkg().Path(), []string{"internal/telemetry"}) {
		return "", false
	}
	return kind, true
}

// constantName resolves a metric-name argument to its constant string
// value, looking through telemetry.Label calls (whose first argument is
// the base name; label values may be dynamic).
func constantName(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	arg = ast.Unparen(arg)
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil || fn.Name() != "Label" || fn.Pkg() == nil ||
		!analysis.PkgPathMatches(fn.Pkg().Path(), []string{"internal/telemetry"}) {
		return "", false
	}
	return constantName(pass, call.Args[0])
}
