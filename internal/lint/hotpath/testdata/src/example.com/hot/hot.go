// Package hot exercises the hotpath analyzer: allocation sites in an
// annotated kernel and its transitive callees are flagged, cold exit
// paths and amortized-reuse idioms are not, and ignore directives both
// suppress findings and cut call edges.
package hot

import (
	"fmt"

	"example.com/hot/sub"
)

type point struct{ x, y int }

// wrap is a one-pointer-word struct: the runtime stores it directly in
// an interface, so passing it boxes nothing.
type wrap struct{ p *point }

func sink(v any)        { _ = v }
func sum(xs ...int) int { return len(xs) }
func work()             {}

//joules:hotpath
func Kernel(buf []float64, prefix string, n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative n %d", n) // cold: error return operand
	}
	if n > 1<<40 {
		panic(fmt.Sprintf("absurd n %d", n)) // cold: panic argument
	}
	if n > 1<<20 {
		big := make([]float64, n) // cold: block ends by leaving the function
		return float64(len(big)), nil
	}

	total := 0.0
	for i := 0; i < n; i++ {
		total += step(i)
	}

	s := make([]float64, n) // want "make of slice allocates"
	_ = s
	m := map[string]int{} // want "map literal allocates"
	_ = m
	p := new(point) // want "new allocates"
	_ = p
	q := &point{x: 1} // want "address of composite literal allocates"
	_ = q
	pt := point{x: 2} // struct value literal: stack, not flagged
	_ = pt

	f := func() float64 { return total } // want "closure capturing variables allocates"
	total += f()
	g := func(x float64) float64 { return x } // non-capturing: not flagged
	total += g(total)

	name := prefix + "x" // want "string concatenation allocates"
	b := []byte(name)    // want "string to \\[\\]byte conversion allocates"
	_ = b
	fmt.Sprintf("%d", n)        // want "call to fmt.Sprintf allocates"
	sink(n)                     // want "passing int as interface"
	sink(pt)                    // want "passing example.com/hot.point as interface"
	sink(wrap{p: q})            // pointer-shaped wrapper: stored in the data word, not flagged
	total += float64(sum(1, 2)) // want "loose variadic arguments allocates"

	var tmp []int
	tmp = append(tmp, n) // want "append to local slice tmp may allocate"
	_ = tmp
	buf = append(buf, total) // append to parameter: caller-owned, not flagged

	go work() // want "go statement allocates"

	scratch := make([]int, 4) //jouleslint:ignore hotpath -- bounded one-time warmup buffer
	_ = scratch

	//jouleslint:ignore hotpath -- setup path runs once per replay, not per step
	warm := lazy(n)
	_ = warm

	grown := sub.Grow(nil)
	_ = grown

	return total, nil
}

// step is hot transitively: reached from Kernel through the call graph.
func step(i int) float64 {
	vals := make([]float64, 1) // want "make of slice allocates .hot via Kernel -> step."
	vals[0] = float64(i)
	return vals[0]
}

// lazy allocates, but the only call edge into it is ignored above, so
// it never joins the hot region.
func lazy(n int) []float64 {
	return make([]float64, n)
}

// NotHot is unannotated and unreachable from any root: free to allocate.
func NotHot(n int) []int {
	out := make([]int, n)
	return out
}
