// Package sub proves the hot region crosses package boundaries: Grow is
// reached from hot.Kernel, so its allocations are flagged here with the
// discovery chain in the message.
package sub

// Grow is called from the annotated kernel in package hot.
func Grow(xs []int) []int {
	extra := map[int]bool{} // want "map literal allocates .hot via Kernel -> Grow."
	_ = extra
	return xs
}
