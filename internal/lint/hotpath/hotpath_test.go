package hotpath_test

import (
	"testing"

	"fantasticjoules/internal/lint/analysistest"
	"fantasticjoules/internal/lint/hotpath"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpath.Analyzer, "example.com/hot/...")
}
